package multiclust_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"multiclust"
	"multiclust/internal/obs"
)

// Overhead pin for the observability layer: the hot loops must cost the
// same with no recorder installed as they did before instrumentation.
// The comparative benchmarks below measure the disabled path (nil
// recorder) against an active in-memory Collector on the k-means and EM
// hot loops; run them with
//
//	go test -bench 'Obs(KMeans|EM)' -benchmem .
//
// and compare ns/op: the nil-recorder column is the shipped default and
// must stay within 1% of the pre-instrumentation baseline (the Collector
// column shows what opting in costs). The allocation test at the bottom
// turns the sharpest part of that pin — the disabled path performs ZERO
// allocations — into a hard failure instead of a number to eyeball.

// benchObsPoints builds a deterministic blob mixture sized like the hot
// loops the instrumentation rides in.
func benchObsPoints(n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(11))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dim)
		center := float64(i % 3 * 4)
		for d := range row {
			row[d] = center + rng.NormFloat64()
		}
		pts[i] = row
	}
	return pts
}

// withRecorder installs rec as the process default for one benchmark and
// restores the previous recorder afterwards.
func withRecorder(b *testing.B, rec multiclust.Recorder) {
	b.Helper()
	prev := multiclust.RecorderDefault()
	multiclust.SetRecorder(rec)
	b.Cleanup(func() { multiclust.SetRecorder(prev) })
}

func benchKMeans(b *testing.B, rec multiclust.Recorder, workers int) {
	withRecorder(b, rec)
	pts := benchObsPoints(240, 4)
	cfg := multiclust.KMeansConfig{K: 3, MaxIter: 25, Restarts: 2, Seed: 7, Workers: workers}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.KMeans(pts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsKMeansNilRecorder(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchKMeans(b, nil, w) })
	}
}

func BenchmarkObsKMeansCollector(b *testing.B) {
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchKMeans(b, multiclust.NewCollector(), w) })
	}
}

func benchEM(b *testing.B, rec multiclust.Recorder) {
	withRecorder(b, rec)
	pts := benchObsPoints(200, 3)
	cfg := multiclust.EMConfig{K: 3, MaxIter: 40, Seed: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.EM(pts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObsEMNilRecorder(b *testing.B) { benchEM(b, nil) }
func BenchmarkObsEMCollector(b *testing.B)   { benchEM(b, multiclust.NewCollector()) }

// TestDisabledRecorderHotPathDoesNotAllocate replays the exact
// instrumentation sequence the k-means and EM iteration loops execute —
// resolve the recorder once, then per iteration a span, counters and a
// per-iteration observation — with no recorder installed, and fails if
// any of it allocates. This is the mechanism behind the <=1% overhead
// budget: a zero-allocation nil path is a handful of pointer tests the
// branch predictor eats for free.
func TestDisabledRecorderHotPathDoesNotAllocate(t *testing.T) {
	prev := multiclust.RecorderDefault()
	multiclust.SetRecorder(nil)
	defer multiclust.SetRecorder(prev)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		rec := obs.From(ctx)
		end := obs.Span(rec, "kmeans.run")
		for iter := 0; iter < 8; iter++ {
			obs.Count(rec, "kmeans.iterations", 1)
			obs.Count(rec, "kmeans.reassignments", 17)
			obs.Observe(rec, "kmeans.sse", iter, 42.5)
		}
		obs.Histogram(rec, "jobs.exec_seconds", 0.0042)
		end()
	})
	if allocs != 0 {
		t.Fatalf("disabled-recorder hot path allocates %.1f times per run, want 0", allocs)
	}
}
