package main

import (
	"flag"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func report(ns int64, counters map[string]int64) Report {
	return Report{
		Schema: Schema,
		Stamp:  "t",
		Quick:  true,
		Workloads: []Workload{
			{Name: "kmeans/w1", Paradigm: "partitional", Workers: 1, NsOp: ns, Counters: counters},
		},
	}
}

func TestCompareCleanRunPasses(t *testing.T) {
	base := report(1000, map[string]int64{"kmeans.iterations": 10})
	cur := report(1050, map[string]int64{"kmeans.iterations": 10}) // +5% < 10%
	if regs, _ := compare(base, cur, 10, 10); len(regs) != 0 {
		t.Errorf("clean run flagged: %v", regs)
	}
}

// The acceptance contract: an injected regression must be caught and
// reported so main exits non-zero.
func TestCompareDetectsInjectedRegressions(t *testing.T) {
	base := report(1000, map[string]int64{"kmeans.iterations": 10, "kmeans.reassignments": 100})
	cases := []struct {
		name string
		cur  Report
		want string
	}{
		{"ns/op growth", report(1200, map[string]int64{"kmeans.iterations": 10, "kmeans.reassignments": 100}), "ns/op"},
		{"counter growth", report(1000, map[string]int64{"kmeans.iterations": 14, "kmeans.reassignments": 100}), "kmeans.iterations"},
		{"counter shrink", report(1000, map[string]int64{"kmeans.iterations": 10, "kmeans.reassignments": 80}), "kmeans.reassignments"},
		{"counter vanished", report(1000, map[string]int64{"kmeans.iterations": 10}), "disappeared"},
		{"workload missing", Report{Schema: Schema, Quick: true}, "missing from current run"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			regs, _ := compare(base, tc.cur, 10, 10)
			if len(regs) == 0 {
				t.Fatal("regression not detected")
			}
			if !strings.Contains(strings.Join(regs, "\n"), tc.want) {
				t.Errorf("regressions %v do not mention %q", regs, tc.want)
			}
		})
	}
}

func TestCompareRejectsModeAndSchemaMismatch(t *testing.T) {
	base := report(1000, nil)
	full := report(1000, nil)
	full.Quick = false
	if regs, _ := compare(base, full, 10, 10); len(regs) != 1 || !strings.Contains(regs[0], "mode mismatch") {
		t.Errorf("quick-vs-full comparison must be refused, got %v", regs)
	}
	other := report(1000, nil)
	other.Schema = "multiclust-bench/v0"
	if regs, _ := compare(base, other, 10, 10); len(regs) != 1 || !strings.Contains(regs[0], "schema mismatch") {
		t.Errorf("schema mismatch must be refused, got %v", regs)
	}
}

func TestCompareIgnoresNewWorkloads(t *testing.T) {
	base := report(1000, nil)
	cur := report(1000, nil)
	cur.Workloads = append(cur.Workloads, Workload{Name: "new/w1", NsOp: 99})
	if regs, _ := compare(base, cur, 10, 10); len(regs) != 0 {
		t.Errorf("a new workload is not a regression: %v", regs)
	}
}

// TestCompareNotesNewCounters pins the new-counter contract: a counter
// present in the current run but absent from the baseline is NOT a
// regression, but it must surface as a "new, not in baseline" note
// rather than being skipped silently.
func TestCompareNotesNewCounters(t *testing.T) {
	base := report(1000, map[string]int64{"kmeans.iterations": 10})
	cur := report(1000, map[string]int64{"kmeans.iterations": 10, "kmeans.distance_computations": 4242})
	regs, notes := compare(base, cur, 10, 10)
	if len(regs) != 0 {
		t.Errorf("new counter flagged as regression: %v", regs)
	}
	if len(notes) != 1 {
		t.Fatalf("got %d notes, want 1: %v", len(notes), notes)
	}
	if !strings.Contains(notes[0], "kmeans.distance_computations") || !strings.Contains(notes[0], "new, not in baseline") {
		t.Errorf("note %q does not identify the new counter", notes[0])
	}
}

func TestAssertLe(t *testing.T) {
	// Pin a multi-core view so the w1-vs-w4 comparison is active: on a
	// single-CPU machine both sides clamp to the same effective worker
	// count and the check goes vacuous (covered below).
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	cur := Report{Schema: Schema, Quick: true, Workloads: []Workload{
		{Name: "coala/w1", Workers: 1, NsOp: 100},
		{Name: "coala/w4", Workers: 4, NsOp: 90},
	}}
	if v, _ := assertLe(cur, []string{"coala/w4<=coala/w1"}); len(v) != 0 {
		t.Errorf("holding assertion flagged: %v", v)
	}
	if v, _ := assertLe(cur, []string{"coala/w1<=coala/w4"}); len(v) != 1 || !strings.Contains(v[0], "ns/op") {
		t.Errorf("violated assertion not flagged: %v", v)
	}
	if v, _ := assertLe(cur, []string{"coala/w1<=missing/w9"}); len(v) != 1 || !strings.Contains(v[0], "not in current report") {
		t.Errorf("unknown workload not flagged: %v", v)
	}
	if v, _ := assertLe(cur, []string{"garbage"}); len(v) != 1 || !strings.Contains(v[0], "bad -assert-le spec") {
		t.Errorf("malformed spec not flagged: %v", v)
	}
}

// TestAssertLeVacuousOnSingleCPU pins the scheduler-clamp escape hatch: when
// both sides of a relational assertion resolve to the same effective worker
// count (e.g. GOMAXPROCS=1), they run identical code, so the harness must
// report the check as vacuous instead of coin-flipping on timing noise.
func TestAssertLeVacuousOnSingleCPU(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	cur := Report{Schema: Schema, Quick: true, Workloads: []Workload{
		{Name: "coala/w1", Workers: 1, NsOp: 100},
		{Name: "coala/w4", Workers: 4, NsOp: 170}, // would violate if compared
	}}
	v, notes := assertLe(cur, []string{"coala/w4<=coala/w1"})
	if len(v) != 0 {
		t.Errorf("vacuous assertion flagged: %v", v)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "vacuous") {
		t.Errorf("vacuous skip not noted: %v", notes)
	}
}

func TestWorkloadsCoverTheParadigms(t *testing.T) {
	cases, err := workloads()
	if err != nil {
		t.Fatal(err)
	}
	paradigms := map[string]bool{}
	for _, bc := range cases {
		if paradigms[bc.paradigm] {
			t.Errorf("duplicate paradigm %q", bc.paradigm)
		}
		paradigms[bc.paradigm] = true
	}
	if len(paradigms) < 5 {
		t.Errorf("suite covers %d paradigms, want >= 5", len(paradigms))
	}
	for _, want := range []string{"partitional", "ensemble", "multiview"} {
		if !paradigms[want] {
			t.Errorf("paradigm %q missing", want)
		}
	}
}

// End-to-end: run the fastest workload for one iteration, write the
// report, reload it, and compare it against itself (must be clean).
func TestRunSuiteRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	if err := flag.Set("test.benchtime", "1x"); err != nil {
		t.Fatal(err)
	}
	rep, err := runSuite("kmeans", true, "test", func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workloads) != len(workerCounts) {
		t.Fatalf("got %d workloads, want %d", len(rep.Workloads), len(workerCounts))
	}
	for _, w := range rep.Workloads {
		if w.NsOp <= 0 {
			t.Errorf("%s: ns_op = %d, want > 0", w.Name, w.NsOp)
		}
		if w.Counters["kmeans.iterations"] == 0 {
			t.Errorf("%s: instrumented run recorded no kmeans.iterations: %v", w.Name, w.Counters)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(rep, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := loadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Schema != Schema || loaded.Stamp != "test" || !loaded.Quick {
		t.Errorf("round-trip lost fields: %+v", loaded)
	}
	if regs, _ := compare(loaded, rep, 10, 10); len(regs) != 0 {
		t.Errorf("self-comparison flagged regressions: %v", regs)
	}
}

func TestLoadReportRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := writeReport(Report{Schema: "other/v9"}, path); err != nil {
		t.Fatal(err)
	}
	if _, err := loadReport(path); err == nil {
		t.Error("wrong schema accepted")
	}
}

func TestRunSuiteUnknownFilter(t *testing.T) {
	if _, err := runSuite("no-such-workload", true, "t", func(string) {}); err == nil {
		t.Error("empty filter result must error")
	}
}
