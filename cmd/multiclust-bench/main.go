// Command multiclust-bench runs the canonical workload suite — one
// workload per clustering paradigm — and writes a machine-readable
// benchmark report for regression tracking.
//
//	go run ./cmd/multiclust-bench [-quick] [-out file] [-baseline old.json -threshold 10]
//
// Each workload runs at 1 and 4 workers through testing.Benchmark with
// the recorder disabled (so timings measure the algorithms, not the
// telemetry), then once more instrumented with an obs.Collector to
// capture the deterministic per-run work counters (iterations, distance
// evaluations, subspaces examined, ...). The report is JSON with schema
// "multiclust-bench/v1":
//
//	{
//	  "schema": "multiclust-bench/v1",
//	  "stamp": "20260805T120000Z",
//	  "go": "go1.24.0",
//	  "quick": false,
//	  "workloads": [
//	    {"name": "kmeans/w1", "paradigm": "partitional", "workers": 1,
//	     "ns_op": 1234567, "allocs_op": 890, "bytes_op": 45678,
//	     "counters": {"kmeans.iterations": 11, ...}},
//	    ...
//	  ]
//	}
//
// With -baseline the current run is compared against an earlier report:
// ns/op may grow at most -threshold percent (timings are noisy; CI uses
// a loose gate) and the work counters may drift at most
// -counter-threshold percent (they are deterministic for a fixed seed,
// so the strict default of 10 catches real algorithmic regressions).
// A counter present now but absent from the baseline is surfaced as a
// "new, not in baseline" NOTE rather than silently skipped. Any
// regression, a workload missing from the current run, or a quick/full
// mode mismatch with the baseline exits non-zero.
//
// Timings keep the minimum of three repeats (floor estimator; a
// preempted repeat cannot inflate the report) and each measurement is
// preceded by runtime.GC so no workload pays for its predecessor's
// garbage. Relational expectations between workloads are asserted with
// repeatable -assert-le "A<=B" flags (CI: "coala/w4<=coala/w1"); an
// assertion whose two sides clamp to the same effective worker count
// (min(workers, GOMAXPROCS)) is vacuous — the configurations run
// identical code — and is reported as a NOTE instead of compared.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"multiclust"
	"multiclust/internal/jobs/chaos"
	"multiclust/internal/ops"
	"multiclust/serve"
)

// Schema identifies the report format for downstream consumers.
const Schema = "multiclust-bench/v1"

// workerCounts are the parallelism levels every workload runs at.
var workerCounts = []int{1, 4}

// Report is the top-level JSON document.
type Report struct {
	Schema    string     `json:"schema"`
	Stamp     string     `json:"stamp"`
	Go        string     `json:"go"`
	Quick     bool       `json:"quick"`
	Workloads []Workload `json:"workloads"`
}

// Workload is one (paradigm, workers) measurement.
type Workload struct {
	Name     string           `json:"name"` // "<workload>/w<workers>"
	Paradigm string           `json:"paradigm"`
	Workers  int              `json:"workers"`
	NsOp     int64            `json:"ns_op"`
	AllocsOp int64            `json:"allocs_op"`
	BytesOp  int64            `json:"bytes_op"`
	Counters map[string]int64 `json:"counters"`
}

// benchCase couples a workload name with the closure that runs it once.
// The dataset is built by the constructor, outside the timed loop, so
// ns/op covers only the clustering work.
type benchCase struct {
	name     string
	paradigm string
	run      func() error
}

// workloads builds the canonical suite: one representative per paradigm
// of the taxonomy (partitional baseline, grid and density subspace
// search, alternative-given, ensemble meta clustering, multi-view).
// All seeds are fixed; every workload is deterministic.
func workloads() ([]benchCase, error) {
	blobs, _ := multiclust.GaussianBlobs(1, 600, [][]float64{
		{0, 0, 0, 0}, {4, 4, 0, 0}, {0, 4, 4, 0}, {4, 0, 0, 4},
	}, 0.6)
	subDS, _, err := multiclust.SubspaceData(1, 400, 6, []multiclust.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 120, Width: 0.08},
		{Dims: []int{3, 4}, Size: 100, Width: 0.08},
	})
	if err != nil {
		return nil, err
	}
	toy, _, _ := multiclust.FourBlobToy(1, 60)
	given, err := multiclust.KMeans(toy.Points, multiclust.KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		return nil, err
	}
	meta, _, _ := multiclust.FourBlobToy(1, 40)
	viewA, viewB, _ := multiclust.TwoSourceViews(1, 300, 3, 4, 4, 0.5, 0)
	streamBlobs, _ := multiclust.GaussianBlobs(1, 6000, [][]float64{
		{0, 0, 0, 0}, {4, 4, 0, 0}, {0, 4, 4, 0}, {4, 0, 0, 4},
	}, 0.6)

	return []benchCase{
		{"kmeans", "partitional", func() error {
			_, err := multiclust.KMeans(blobs.Points, multiclust.KMeansConfig{K: 4, Restarts: 4, Seed: 1})
			return err
		}},
		{"clique", "subspace-grid", func() error {
			_, err := multiclust.Clique(subDS.Points, multiclust.CliqueConfig{Xi: 10, Tau: 0.08})
			return err
		}},
		{"subclu", "subspace-density", func() error {
			_, err := multiclust.Subclu(subDS.Points, multiclust.SubcluConfig{Eps: 0.06, MinPts: 4, MaxDim: 2})
			return err
		}},
		{"coala", "alternative", func() error {
			_, err := multiclust.Coala(toy.Points, given.Clustering, multiclust.CoalaConfig{K: 2})
			return err
		}},
		{"metaclust", "ensemble", func() error {
			_, err := multiclust.MetaClustering(meta.Points, multiclust.MetaClusteringConfig{
				K: 2, NumSolutions: 12, MetaClusters: 3, Seed: 1,
			})
			return err
		}},
		{"coem", "multiview", func() error {
			_, err := multiclust.CoEM(viewA.Points, viewB.Points, multiclust.CoEMConfig{K: 3, Seed: 2})
			return err
		}},
		{"minibatch", "streaming-partitional", func() error {
			// One pass of the incremental layer: the streaming blob dataset
			// replayed through mini-batch k-means in 1500-row chunks, plus a
			// final snapshot. A fresh learner per op keeps the measured work
			// constant (the learner accumulates state across pushes); the
			// chunks are large enough that the row-sharded assign fan-out
			// dominates dispatch overhead, which is what the w4<=w1 gate
			// checks.
			m, err := multiclust.NewStreamKMeans(multiclust.StreamKMeansConfig{K: 4, Seed: 1})
			if err != nil {
				return err
			}
			for at := 0; at < len(streamBlobs.Points); at += 1500 {
				end := at + 1500
				if end > len(streamBlobs.Points) {
					end = len(streamBlobs.Points)
				}
				if err := m.Push(streamBlobs.Points[at:end]); err != nil {
					return err
				}
			}
			_, err = m.Snapshot()
			return err
		}},
		{"ensemble-window", "streaming-ensemble", func() error {
			// Sliding-window ensemble with eviction on the hot path: six
			// 40-row chunks through a 3-chunk window, so half the stream is
			// evicted before the grouped snapshot.
			e, err := multiclust.NewStreamEnsemble(multiclust.StreamEnsembleConfig{
				K: 2, Seed: 1, Window: 3, PerChunk: 6, MetaClusters: 3,
			})
			if err != nil {
				return err
			}
			for at := 0; at+40 <= 240; at += 40 {
				if err := e.Push(meta.Points[at%len(meta.Points) : at%len(meta.Points)+40]); err != nil {
					return err
				}
			}
			_, err = e.Snapshot()
			return err
		}},
		{"obs-http", "observability", func() error {
			// The full per-request observability path, no clustering: one
			// traced status GET plus one Chrome-trace render against an
			// already-terminal job, through the Instrument middleware
			// (traceparent parse, context plumbing, route histogram,
			// status capture). ns/op is the request-scoped telemetry tax.
			h, id := obsHTTPEnv()
			req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id, nil)
			req.Header.Set("traceparent", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				return fmt.Errorf("obs-http: status GET returned %d", rw.Code)
			}
			req = httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"/trace", nil)
			rw = httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != http.StatusOK {
				return fmt.Errorf("obs-http: trace GET returned %d", rw.Code)
			}
			return nil
		}},
		{"jobs", "service", func() error {
			// Submit one no-op job and wait for its terminal state: the
			// measured ns/op is pure engine overhead — admission, queueing,
			// worker dispatch, state machine — with zero clustering inside.
			j, _, err := jobsEngine().Submit(serve.Spec{Algo: "noop", Points: toy.Points, Seed: 1})
			if err != nil {
				return err
			}
			<-j.Done()
			return j.Err()
		}},
	}, nil
}

// jobsEngine lazily builds the dispatch-overhead engine on first use, so
// -list and filtered runs that skip the jobs workload never start (or leak)
// its worker pool. The bench process exits without a drain, which is fine:
// every measured job is awaited to its terminal state.
var jobsEngine = sync.OnceValue(func() *serve.Engine {
	return serve.New(serve.Config{
		Workers:   2,
		QueueSize: 64,
		Runners:   map[string]serve.Runner{"noop": chaos.Instant()},
	})
})

// obsHTTPEnv lazily builds the obs-http fixture: a no-op job run to its
// terminal state once, outside the timed loop, plus the engine handler
// wrapped in the same Instrument middleware the CLI serves. Lazy for the
// same reason jobsEngine is — a filtered run that skips obs-http must not
// start a worker pool.
var obsHTTPEnv = sync.OnceValues(func() (http.Handler, string) {
	e := serve.New(serve.Config{
		Workers:   1,
		QueueSize: 8,
		Runners:   map[string]serve.Runner{"noop": chaos.Instant()},
	})
	j, _, err := e.Submit(serve.Spec{Algo: "noop", Points: [][]float64{{0, 0}, {1, 1}}, Seed: 1})
	if err != nil {
		panic("obs-http fixture: " + err.Error())
	}
	<-j.Done()
	return ops.Instrument(e.Handler(), nil), j.ID
})

// measureRepeats is how many timed repeats measure keeps the minimum of.
const measureRepeats = 3

// measure times one case with the recorder disabled, then replays it once
// under a Collector for the deterministic work counters.
func measure(bc benchCase, workers int) (Workload, error) {
	multiclust.SetWorkers(workers)
	defer multiclust.SetWorkers(0)

	// Collect before timing so one workload's garbage (subclu allocates tens
	// of MB per op) is not paid for — noisily — inside the next workload's
	// measurement. Quick mode runs only a few iterations, so a stray GC cycle
	// would otherwise dominate the smaller timings.
	runtime.GC()

	multiclust.SetRecorder(nil)
	var runErr error
	// Keep the fastest of a few timed repeats: the minimum is the standard
	// floor estimator for benchmarks on shared machines — one preempted or
	// GC-interrupted repeat cannot inflate the reported ns/op, which matters
	// for the relational gates (-assert-le) comparing workloads measured
	// seconds apart.
	var res testing.BenchmarkResult
	for rep := 0; rep < measureRepeats; rep++ {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := bc.run(); err != nil {
					runErr = err
					b.FailNow()
				}
			}
		})
		if runErr != nil {
			return Workload{}, fmt.Errorf("%s (workers=%d): %w", bc.name, workers, runErr)
		}
		if rep == 0 || r.NsPerOp() < res.NsPerOp() {
			res = r
		}
	}

	col := multiclust.NewCollector()
	multiclust.SetRecorder(col)
	err := bc.run()
	multiclust.SetRecorder(nil)
	if err != nil {
		return Workload{}, fmt.Errorf("%s (workers=%d, instrumented): %w", bc.name, workers, err)
	}
	return Workload{
		Name:     fmt.Sprintf("%s/w%d", bc.name, workers),
		Paradigm: bc.paradigm,
		Workers:  workers,
		NsOp:     res.NsPerOp(),
		AllocsOp: res.AllocsPerOp(),
		BytesOp:  res.AllocedBytesPerOp(),
		Counters: col.Snapshot().Counters,
	}, nil
}

// compare reports every regression of cur against base, plus
// informational notes. Timings (ns/op) may grow at most threshold
// percent; counters may drift — in either direction, a drop in work done
// is as suspicious as growth — at most counterThreshold percent.
// Workloads present only in cur are fine (new benchmarks); workloads
// missing from cur are regressions. Counters present only in cur are NOT
// regressions — new instrumentation lands before the baseline is
// refreshed — but each one is surfaced as a "new, not in baseline" note
// so it cannot slip by silently.
func compare(base, cur Report, threshold, counterThreshold float64) (regressions, notes []string) {
	if base.Schema != cur.Schema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q vs current %q", base.Schema, cur.Schema)}, nil
	}
	if base.Quick != cur.Quick {
		return []string{fmt.Sprintf("mode mismatch: baseline quick=%v vs current quick=%v — timings are not comparable", base.Quick, cur.Quick)}, nil
	}
	curBy := make(map[string]Workload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		curBy[w.Name] = w
	}
	for _, b := range base.Workloads {
		c, ok := curBy[b.Name]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: workload missing from current run", b.Name))
			continue
		}
		if b.NsOp > 0 {
			pct := 100 * float64(c.NsOp-b.NsOp) / float64(b.NsOp)
			if pct > threshold {
				regressions = append(regressions, fmt.Sprintf("%s: ns/op %d -> %d (%+.1f%% > %.0f%%)", b.Name, b.NsOp, c.NsOp, pct, threshold))
			}
		}
		for _, k := range sortedKeys(b.Counters) {
			bv := b.Counters[k]
			cv, ok := c.Counters[k]
			if !ok {
				regressions = append(regressions, fmt.Sprintf("%s: counter %s disappeared (baseline %d)", b.Name, k, bv))
				continue
			}
			if bv == 0 {
				if cv != 0 {
					regressions = append(regressions, fmt.Sprintf("%s: counter %s %d -> %d (baseline zero)", b.Name, k, bv, cv))
				}
				continue
			}
			pct := 100 * float64(cv-bv) / float64(bv)
			if pct > counterThreshold || pct < -counterThreshold {
				regressions = append(regressions, fmt.Sprintf("%s: counter %s %d -> %d (%+.1f%% beyond ±%.0f%%)", b.Name, k, bv, cv, pct, counterThreshold))
			}
		}
		for _, k := range sortedKeys(c.Counters) {
			if _, ok := b.Counters[k]; !ok {
				notes = append(notes, fmt.Sprintf("%s: counter %s = %d — new, not in baseline", b.Name, k, c.Counters[k]))
			}
		}
	}
	return regressions, notes
}

// assertLe evaluates "A<=B" assertions against the current report: the
// ns/op of workload A must not exceed that of workload B. This is how CI
// pins relational performance contracts the percent gates cannot express
// — e.g. that coala at 4 workers is no slower than at 1.
// effectiveWorkers mirrors the parallel layer's scheduler clamp: a resolved
// worker count above the schedulable CPUs cannot add concurrency.
func effectiveWorkers(w int) int {
	if p := runtime.GOMAXPROCS(0); w > p {
		return p
	}
	return w
}

func assertLe(cur Report, specs []string) (violations, notes []string) {
	byName := make(map[string]Workload, len(cur.Workloads))
	for _, w := range cur.Workloads {
		byName[w.Name] = w
	}
	for _, spec := range specs {
		parts := strings.SplitN(spec, "<=", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			violations = append(violations, fmt.Sprintf("bad -assert-le spec %q, want \"A<=B\"", spec))
			continue
		}
		a, okA := byName[parts[0]]
		b, okB := byName[parts[1]]
		if !okA || !okB {
			violations = append(violations, fmt.Sprintf("-assert-le %q: workload not in current report", spec))
			continue
		}
		// When both sides clamp to the same effective parallelism (e.g. a
		// single-CPU runner, where every worker count resolves to 1), the
		// two workloads execute identical code and the relational check is
		// vacuously true — comparing their timings would only compare
		// measurement noise and turn the gate into a coin flip.
		if ea, eb := effectiveWorkers(a.Workers), effectiveWorkers(b.Workers); ea == eb {
			notes = append(notes, fmt.Sprintf("%s: both sides run %d effective worker(s) (GOMAXPROCS=%d) — identical configurations, relational check vacuous",
				spec, ea, runtime.GOMAXPROCS(0)))
			continue
		}
		if a.NsOp > b.NsOp {
			violations = append(violations, fmt.Sprintf("%s: ns/op %d > %s ns/op %d", a.Name, a.NsOp, b.Name, b.NsOp))
		}
	}
	return violations, notes
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runSuite measures every case matching filter at every worker count.
func runSuite(filter string, quick bool, stamp string, progress func(string)) (Report, error) {
	cases, err := workloads()
	if err != nil {
		return Report{}, err
	}
	rep := Report{Schema: Schema, Stamp: stamp, Go: runtime.Version(), Quick: quick}
	// Worker counts innermost: a workload's w1 and w4 runs execute
	// back-to-back, so relational gates like -assert-le compare numbers
	// measured seconds — not minutes — apart, before the machine's load or
	// clock frequency has time to drift between them.
	for _, bc := range cases {
		if filter != "" && !strings.Contains(bc.name, filter) {
			continue
		}
		for _, workers := range workerCounts {
			w, err := measure(bc, workers)
			if err != nil {
				return Report{}, err
			}
			progress(fmt.Sprintf("%-14s %10d ns/op %8d allocs/op %10d B/op", w.Name, w.NsOp, w.AllocsOp, w.BytesOp))
			rep.Workloads = append(rep.Workloads, w)
		}
	}
	if len(rep.Workloads) == 0 {
		return Report{}, fmt.Errorf("no workloads match filter %q", filter)
	}
	return rep, nil
}

func writeReport(rep Report, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func loadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != Schema {
		return Report{}, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, Schema)
	}
	return rep, nil
}

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable below
	var (
		out              = flag.String("out", "", "report file (default BENCH_<stamp>.json)")
		stamp            = flag.String("stamp", "", "report stamp (default UTC timestamp)")
		baseline         = flag.String("baseline", "", "earlier report to compare against; regressions exit non-zero")
		threshold        = flag.Float64("threshold", 10, "max ns/op growth vs baseline, percent")
		counterThreshold = flag.Float64("counter-threshold", 10, "max work-counter drift vs baseline, percent (either direction)")
		quick            = flag.Bool("quick", false, "10 iterations per workload instead of 1s each (CI mode)")
		filter           = flag.String("filter", "", "run only workloads whose name contains this substring")
		list             = flag.Bool("list", false, "list workload names and exit")
		asserts          stringList
	)
	flag.Var(&asserts, "assert-le", "ns/op assertion \"A<=B\" between two workloads of the current run (repeatable); violations exit non-zero")
	flag.Parse()

	if *list {
		cases, err := workloads()
		if err != nil {
			fmt.Fprintln(os.Stderr, "multiclust-bench:", err)
			os.Exit(1)
		}
		for _, bc := range cases {
			fmt.Printf("%-12s %s\n", bc.name, bc.paradigm)
		}
		return
	}
	if *quick {
		if err := flag.Set("test.benchtime", "10x"); err != nil {
			fmt.Fprintln(os.Stderr, "multiclust-bench:", err)
			os.Exit(1)
		}
	}
	if *stamp == "" {
		*stamp = time.Now().UTC().Format("20060102T150405Z")
	}
	if *out == "" {
		*out = "BENCH_" + *stamp + ".json"
	}

	rep, err := runSuite(*filter, *quick, *stamp, func(line string) { fmt.Fprintln(os.Stderr, line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiclust-bench:", err)
		os.Exit(1)
	}
	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintln(os.Stderr, "multiclust-bench:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "multiclust-bench: wrote %s (%d workloads)\n", *out, len(rep.Workloads))

	if *baseline != "" {
		base, err := loadReport(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "multiclust-bench:", err)
			os.Exit(1)
		}
		regressions, notes := compare(base, rep, *threshold, *counterThreshold)
		for _, n := range notes {
			fmt.Fprintln(os.Stderr, "multiclust-bench: NOTE:", n)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "multiclust-bench: REGRESSION:", r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "multiclust-bench: no regressions vs %s\n", *baseline)
	}
	violations, assertNotes := assertLe(rep, asserts)
	for _, n := range assertNotes {
		fmt.Fprintln(os.Stderr, "multiclust-bench: NOTE:", n)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "multiclust-bench: ASSERTION FAILED:", v)
		}
		os.Exit(1)
	}
}
