// multiclust-lint is the determinism and parallel-safety linter for this
// repository (see internal/lint). It walks the requested packages, runs the
// full analyzer suite, and reports findings as
//
//	file:line: [rule] message
//
// exiting 1 when anything is found and 2 on load errors, so it can gate CI
// alongside go vet. Usage:
//
//	multiclust-lint [flags] [./... | dir ...]
//
// Output modes:
//
//	-json    machine-readable findings (positions, rules, suggested fixes)
//	-sarif   SARIF 2.1.0 for GitHub code scanning upload
//	-fix     apply suggested fixes in place; refuses on a dirty git
//	         worktree unless -force is also given
//
// Suppress an individual finding with a comment on the offending line or the
// line above it: //lint:ignore <rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"multiclust/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("multiclust-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	rules := fs.String("rules", "", "comma-separated subset of rules to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	force := fs.Bool("force", false, "with -fix: rewrite files even on a dirty git worktree")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-11s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(stderr, "multiclust-lint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *rules != "" {
		selected, err := selectAnalyzers(analyzers, *rules)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		analyzers = selected
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	dirs, err := resolvePatterns(fs.Args(), cwd)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	exit := 0
	var findings []lint.Finding
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintln(stderr, err)
			exit = 2
			continue
		}
		findings = append(findings, lint.Run(pkg, analyzers)...)
	}

	switch {
	case *fix:
		if code := applyFixes(findings, root, *force, stdout, stderr); code != 0 {
			return code
		}
	case *jsonOut:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{} // emit [], not null
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	case *sarifOut:
		out, err := lint.SARIF(findings, analyzers, root)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintln(stdout, string(out))
	default:
		for _, f := range findings {
			fmt.Fprintln(stdout, relativize(f, cwd))
		}
	}
	if exit == 0 && len(findings) > 0 && !*fix {
		exit = 1
	}
	return exit
}

// applyFixes rewrites every file touched by the findings' suggested fixes.
// It refuses on a dirty worktree (unless forced) so the rewrite is always
// revertable, reports what it changed, and leaves unfixable findings on
// stdout with exit 1.
func applyFixes(findings []lint.Finding, root string, force bool, stdout, stderr io.Writer) int {
	if !force {
		if err := lint.CheckCleanWorktree(root); err != nil {
			fmt.Fprintf(stderr, "multiclust-lint -fix: %v\n(commit or stash first, or pass -force)\n", err)
			return 2
		}
	}
	fixed, err := lint.ApplyFixes(findings, os.ReadFile)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	files := make([]string, 0, len(fixed))
	for f := range fixed {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		if err := os.WriteFile(f, fixed[f], 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "fixed %s\n", f)
	}
	remaining := 0
	for _, f := range findings {
		if len(f.Fixes) == 0 {
			fmt.Fprintln(stdout, f)
			remaining++
		}
	}
	if remaining > 0 {
		fmt.Fprintf(stdout, "%d finding(s) have no mechanical fix\n", remaining)
		return 1
	}
	return 0
}

func selectAnalyzers(all []*lint.Analyzer, names string) ([]*lint.Analyzer, error) {
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (use -list)", n)
		}
		out = append(out, a)
	}
	return out, nil
}

func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// resolvePatterns expands the argument list — "./..." or "dir/..." subtree
// patterns and plain directories — into package directories. No arguments
// means ./... from the current directory.
func resolvePatterns(args []string, cwd string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	seen := map[string]bool{}
	for _, arg := range args {
		recursive := false
		if arg == "..." || strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(strings.TrimSuffix(arg, "..."), "/")
			if arg == "" {
				arg = "."
			}
		}
		base := arg
		if !filepath.IsAbs(base) {
			base = filepath.Join(cwd, base)
		}
		if recursive {
			sub, err := lint.PackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				if !seen[d] {
					seen[d] = true
					dirs = append(dirs, d)
				}
			}
			continue
		}
		if !seen[base] {
			seen[base] = true
			dirs = append(dirs, base)
		}
	}
	return dirs, nil
}

func relativize(f lint.Finding, cwd string) string {
	if rel, err := filepath.Rel(cwd, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}
