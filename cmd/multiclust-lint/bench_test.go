package main

import (
	"io"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// lintRepoBudget is the wall-clock ceiling for one full self-host run —
// parse, type-check, and all thirteen analyzers over every package. The
// interactive contract is "make lint is something you run on every save";
// a run that blows this budget is a performance regression in the engine
// (an accidental quadratic CFG walk, a FlowPass fixpoint that stopped
// converging), not runner noise, which is why the ceiling is ~15x the
// typical dev-machine time rather than a tight pin.
const lintRepoBudget = 60 * time.Second

func lintWholeRepo(tb testing.TB) int {
	root, err := filepath.Abs("../..")
	if err != nil {
		tb.Fatal(err)
	}
	chdir(tb, root)
	var errOut strings.Builder
	code := run([]string{"./..."}, io.Discard, &errOut)
	if code != 0 {
		tb.Fatalf("multiclust-lint ./... exited %d\nstderr:\n%s", code, errOut.String())
	}
	return code
}

// BenchmarkLintRepo times the full self-host run; `go test -bench LintRepo`
// is the profiling entry point when the budget test starts flirting with
// its ceiling.
func BenchmarkLintRepo(b *testing.B) {
	for i := 0; i < b.N; i++ {
		lintWholeRepo(b)
	}
}

// TestLintRepoTimeBudget pins the budget in the ordinary test run, so a
// lint-engine slowdown fails CI even though nobody runs benchmarks there.
func TestLintRepoTimeBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing pin skipped in -short mode")
	}
	start := time.Now()
	lintWholeRepo(t)
	if elapsed := time.Since(start); elapsed > lintRepoBudget {
		t.Fatalf("full-repo lint took %v, budget is %v — profile with go test -bench LintRepo", elapsed, lintRepoBudget)
	}
}
