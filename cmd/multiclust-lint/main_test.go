package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func chdir(t testing.TB, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// The linter must self-host: the whole repository, analyzers included, is
// clean under its own rules. This is the acceptance gate every future PR
// runs through make lint / CI.
func TestSelfHostRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("multiclust-lint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Fatalf("expected no findings, got:\n%s", out.String())
	}
}

// Findings must surface as file:line: [rule] message with exit code 1.
func TestFindingsReportAndExitCode(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/lint/testdata/maporder")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "[maporder]") {
		t.Fatalf("output missing [maporder] tag:\n%s", text)
	}
	first := strings.SplitN(text, "\n", 2)[0]
	if !strings.Contains(first, "maporder.go:") {
		t.Fatalf("finding not in file:line form: %q", first)
	}
}

func TestRuleSelection(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/lint/testdata/maporder")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	// Only floatkey requested: the maporder fixture must come back clean.
	if code := run([]string{"-rules", "floatkey", fixture}, &out, &errOut); code != 0 {
		t.Fatalf("expected exit 0, got %d\n%s%s", code, out.String(), errOut.String())
	}
	if code := run([]string{"-rules", "nosuchrule", fixture}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
}

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"maporder", "globalrand", "sharedrng", "nakedgo", "floatkey",
		"ctxflow", "rngescape", "lockcopy", "goleak", "detsource"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}

// -json must emit a machine-readable array with rule, message, position and
// any suggested fixes.
func TestJSONOutput(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/lint/testdata/fix/maporder")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{"-json", "-rules", "maporder", fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("expected exit 1, got %d (stderr: %s)", code, errOut.String())
	}
	var findings []struct {
		Pos struct {
			Filename string `json:"Filename"`
			Line     int    `json:"Line"`
		} `json:"pos"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
		Fixes   []struct {
			Message string `json:"message"`
			Edits   []struct {
				File    string `json:"file"`
				Offset  int    `json:"offset"`
				End     int    `json:"end"`
				NewText string `json:"newText"`
			} `json:"edits"`
		} `json:"fixes"`
	}
	if err := json.Unmarshal([]byte(out.String()), &findings); err != nil {
		t.Fatalf("-json output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json emitted an empty findings array for a dirty fixture")
	}
	f := findings[0]
	if f.Rule != "maporder" || f.Pos.Line == 0 || !strings.HasSuffix(f.Pos.Filename, "maporder.go") {
		t.Errorf("finding fields wrong: %+v", f)
	}
	if len(f.Fixes) == 0 || len(f.Fixes[0].Edits) == 0 {
		t.Errorf("suggested fix missing from JSON output: %+v", f)
	}
}

// A clean run in -json mode must emit [] (not null) so downstream jq
// pipelines see an array either way.
func TestJSONOutputEmptyArray(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	var out, errOut strings.Builder
	if code := run([]string{"-json", "./internal/parallel"}, &out, &errOut); code != 0 {
		t.Fatalf("expected exit 0, got %d (stderr: %s)", code, errOut.String())
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Fatalf("clean -json run should print [], got %q", out.String())
	}
}

// -json and -sarif cannot be combined.
func TestJSONAndSARIFMutuallyExclusive(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "-sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("expected exit 2, got %d", code)
	}
}

// -fix applies the suggested rewrites in place. The fixture is copied into a
// scratch git repository first: a dirty worktree must refuse (typed gate),
// -force must override, and a committed tree must be rewritten to the golden
// output.
func TestFixApplies(t *testing.T) {
	srcDir, err := filepath.Abs("../../internal/lint/testdata/fix/maporder")
	if err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(srcDir, "maporder.go"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join(srcDir, "maporder.go.golden"))
	if err != nil {
		t.Fatal(err)
	}

	tmp := t.TempDir()
	writeFile := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile("go.mod", []byte("module fixscratch\n\ngo 1.21\n"))
	writeFile("maporder.go", src)
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", tmp}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Skipf("git unavailable (%v): %s", err, out)
		}
	}
	git("init", "-q")
	git("-c", "user.email=t@t", "-c", "user.name=t", "add", ".")

	chdir(t, tmp)

	// Uncommitted work: the gate must refuse with exit 2 and leave the file
	// untouched.
	var out, errOut strings.Builder
	if code := run([]string{"-fix", "-rules", "maporder", "."}, &out, &errOut); code != 2 {
		t.Fatalf("dirty worktree: expected exit 2, got %d\n%s", code, out.String())
	}
	if !strings.Contains(errOut.String(), "uncommitted") {
		t.Fatalf("refusal does not name the dirty worktree: %s", errOut.String())
	}
	after, err := os.ReadFile(filepath.Join(tmp, "maporder.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(src) {
		t.Fatal("refused -fix still modified the file")
	}

	// Committed: -fix rewrites to the golden output and exits 0.
	git("-c", "user.email=t@t", "-c", "user.name=t", "commit", "-q", "-m", "seed")
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "-rules", "maporder", "."}, &out, &errOut); code != 0 {
		t.Fatalf("clean worktree -fix exited %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	after, err = os.ReadFile(filepath.Join(tmp, "maporder.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(golden) {
		t.Fatalf("-fix output differs from golden:\n%s", after)
	}

	// Dirty again (the fix itself dirtied the tree): -force must proceed.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "-force", "-rules", "maporder", "."}, &out, &errOut); code != 0 {
		t.Fatalf("-fix -force exited %d\nstderr: %s", code, errOut.String())
	}
}
