package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

// The linter must self-host: the whole repository, analyzers included, is
// clean under its own rules. This is the acceptance gate every future PR
// runs through make lint / CI.
func TestSelfHostRepoClean(t *testing.T) {
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	chdir(t, root)
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("multiclust-lint ./... exited %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Fatalf("expected no findings, got:\n%s", out.String())
	}
}

// Findings must surface as file:line: [rule] message with exit code 1.
func TestFindingsReportAndExitCode(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/lint/testdata/maporder")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	code := run([]string{fixture}, &out, &errOut)
	if code != 1 {
		t.Fatalf("expected exit 1 on findings, got %d (stderr: %s)", code, errOut.String())
	}
	text := out.String()
	if !strings.Contains(text, "[maporder]") {
		t.Fatalf("output missing [maporder] tag:\n%s", text)
	}
	first := strings.SplitN(text, "\n", 2)[0]
	if !strings.Contains(first, "maporder.go:") {
		t.Fatalf("finding not in file:line form: %q", first)
	}
}

func TestRuleSelection(t *testing.T) {
	fixture, err := filepath.Abs("../../internal/lint/testdata/maporder")
	if err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	// Only floatkey requested: the maporder fixture must come back clean.
	if code := run([]string{"-rules", "floatkey", fixture}, &out, &errOut); code != 0 {
		t.Fatalf("expected exit 0, got %d\n%s%s", code, out.String(), errOut.String())
	}
	if code := run([]string{"-rules", "nosuchrule", fixture}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule should exit 2, got %d", code)
	}
}

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, rule := range []string{"maporder", "globalrand", "sharedrng", "nakedgo", "floatkey"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing %s:\n%s", rule, out.String())
		}
	}
}
