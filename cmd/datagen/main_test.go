package main

import (
	"os"
	"testing"

	"multiclust"
)

// TestRunKinds drives every dataset kind; output goes to /dev/null.
func TestRunKinds(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, kind := range []string{"toy", "multiview", "subspace", "twosource", "hypercube"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			if err := run(kind, 40, 6, 1); err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
		})
	}
	if err := run("nope", 40, 6, 1); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestConcatHelper(t *testing.T) {
	a := multiclust.NewDataset([][]float64{{1}, {2}})
	b := multiclust.NewDataset([][]float64{{3}, {4}})
	out, err := concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim() != 2 || out.Points[1][1] != 4 {
		t.Errorf("concat = %v", out.Points)
	}
}
