// Command datagen emits the module's synthetic benchmark datasets as CSV on
// stdout, with ground-truth labels as trailing columns when available.
//
// Usage:
//
//	datagen -kind toy|multiview|subspace|twosource|hypercube [-n N] [-d D] [-seed S]
package main

import (
	"flag"
	"fmt"
	"os"

	"multiclust"
)

func main() {
	var (
		kind = flag.String("kind", "toy", "dataset kind: toy, multiview, subspace, twosource, hypercube")
		n    = flag.Int("n", 200, "number of objects")
		d    = flag.Int("d", 6, "dimensionality (where applicable)")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*kind, *n, *d, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(kind string, n, d int, seed int64) error {
	switch kind {
	case "toy":
		ds, hor, ver := multiclust.FourBlobToy(seed, n/4)
		return writeWithLabels(ds, [][]int{hor, ver}, []string{"view_horizontal", "view_vertical"})
	case "multiview":
		ds, labelings, _ := multiclust.MultiViewGaussians(seed, n, []multiclust.ViewSpec{
			{Dims: d / 2, K: 2, Sep: 8, Sigma: 0.5},
			{Dims: d - d/2, K: 3, Sep: 6, Sigma: 0.5},
		})
		return writeWithLabels(ds, labelings, []string{"view1", "view2"})
	case "subspace":
		ds, truth, err := multiclust.SubspaceData(seed, n, d, []multiclust.SubspaceSpec{
			{Dims: []int{0, 1}, Size: n * 3 / 10, Width: 0.08},
			{Dims: []int{d - 3, d - 2}, Size: n / 4, Width: 0.08},
		})
		if err != nil {
			return err
		}
		labels := make([][]int, len(truth))
		names := make([]string, len(truth))
		for i, sc := range truth {
			member := make([]int, ds.N())
			for _, o := range sc.Objects {
				member[o] = 1
			}
			labels[i] = member
			names[i] = fmt.Sprintf("in_cluster%d_dims%v", i, sc.Dims)
		}
		return writeWithLabels(ds, labels, names)
	case "twosource":
		a, b, truth := multiclust.TwoSourceViews(seed, n, 3, d/2, d-d/2, 0.5, 0)
		fmt.Fprintln(os.Stderr, "datagen: emitting view A then view B, both with the shared labels")
		if err := writeWithLabels(a, [][]int{truth}, []string{"class"}); err != nil {
			return err
		}
		fmt.Println()
		return writeWithLabels(b, [][]int{truth}, []string{"class"})
	case "hypercube":
		ds := multiclust.UniformHypercube(seed, n, d)
		return ds.WriteCSV(os.Stdout)
	default:
		return fmt.Errorf("unknown dataset kind %q", kind)
	}
}

func writeWithLabels(ds *multiclust.Dataset, labelings [][]int, names []string) error {
	wide := ds.Clone()
	for li, labels := range labelings {
		col := make([][]float64, ds.N())
		for i, l := range labels {
			col[i] = []float64{float64(l)}
		}
		part := multiclust.NewDataset(col)
		part.Names[0] = names[li]
		merged, err := concat(wide, part)
		if err != nil {
			return err
		}
		wide = merged
	}
	return wide.WriteCSV(os.Stdout)
}

func concat(a, b *multiclust.Dataset) (*multiclust.Dataset, error) {
	pts := make([][]float64, a.N())
	for i := range pts {
		row := append(append([]float64(nil), a.Points[i]...), b.Points[i]...)
		pts[i] = row
	}
	out := multiclust.NewDataset(pts)
	copy(out.Names, append(append([]string(nil), a.Names...), b.Names...))
	return out, nil
}
