package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadLabels(t *testing.T) {
	labels, err := readLabels(strings.NewReader("0\n1\n\n 2 \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 3 || labels[2] != 2 {
		t.Errorf("labels = %v", labels)
	}
	if _, err := readLabels(strings.NewReader("x\n")); err == nil {
		t.Error("non-numeric label should fail")
	}
}

func TestLabelString(t *testing.T) {
	s := labelString([]int{1, 2, 3, 4}, 2)
	if !strings.Contains(s, "...") || !strings.Contains(s, "4 total") {
		t.Errorf("labelString = %q", s)
	}
	if labelString([]int{7}, 5) != "7" {
		t.Errorf("short labelString = %q", labelString([]int{7}, 5))
	}
}

// TestRunAlgorithms drives the CLI entry point across every algorithm on
// the built-in toy dataset — the command-level integration test.
func TestRunAlgorithms(t *testing.T) {
	algos := []string{
		"taxonomy", "kmeans", "dbscan", "em", "spectral", "meta",
		"coala", "cib", "mincentropy", "deckmeans", "cami", "contingency",
		"metricflip", "alttransform", "orthproj",
		"clique", "schism", "subclu", "proclus", "orclus", "predecon", "doc", "mineclus", "enclus",
		"condens", "flexible", "universes", "distdbscan", "fires", "ris", "dusc",
	}
	// Silence stdout during the sweep.
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, algo := range algos {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			if err := run(algo, "", true, "", 2, 1, 0.1, 4, 10, 0.15); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
		})
	}
	if err := run("nope", "", true, "", 2, 1, 0.1, 4, 10, 0.1); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

// TestRunStream drives the -stream replay mode across every streaming
// learner on the toy dataset, plus the flag/algorithm error paths.
func TestRunStream(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	for _, algo := range []string{"kmeans", "meta", "coem"} {
		algo := algo
		t.Run(algo, func(t *testing.T) {
			if err := runStream(algo, "", true, 2, 1, 30); err != nil {
				t.Fatalf("%s: %v", algo, err)
			}
		})
	}
	if err := runStream("dbscan", "", true, 2, 1, 30); err == nil {
		t.Error("non-streaming algorithm should fail")
	}
	if err := runStream("kmeans", "", true, 2, 1, 0); err == nil {
		t.Error("non-positive chunk size should fail")
	}
	if err := runStream("kmeans", "missing.csv", true, 2, 1, 30); err == nil {
		t.Error("missing input should fail")
	}
}

func TestRunWithCSVAndGiven(t *testing.T) {
	dir := t.TempDir()
	dataPath := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(dataPath, []byte("a,b\n0,0\n0.1,0\n5,5\n5.1,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	givenPath := filepath.Join(dir, "given.txt")
	if err := os.WriteFile(givenPath, []byte("0\n0\n1\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	os.Stdout = devnull
	defer func() {
		os.Stdout = old
		devnull.Close()
	}()
	if err := run("coala", dataPath, true, givenPath, 2, 1, 0.1, 2, 10, 0.1); err != nil {
		t.Fatal(err)
	}
	// Mismatched given length fails.
	badGiven := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(badGiven, []byte("0\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("coala", dataPath, true, badGiven, 2, 1, 0.1, 2, 10, 0.1); err == nil {
		t.Error("given/data size mismatch should fail")
	}
	// Missing file fails.
	if err := run("kmeans", filepath.Join(dir, "missing.csv"), true, "", 2, 1, 0.1, 2, 10, 0.1); err == nil {
		t.Error("missing input should fail")
	}
}
