// Command multiclust runs a multiple-clustering algorithm on a CSV dataset
// and prints the discovered solutions with quality metrics.
//
// Usage:
//
//	multiclust -algo <name> [-in data.csv] [flags]
//
// Algorithms: kmeans, dbscan, em, spectral, meta, coala, cib, mincentropy,
// deckmeans, cami, contingency, metricflip, alttransform, orthproj, clique,
// schism, subclu, proclus, orclus, predecon, doc, mineclus, enclus,
// condens, flexible, taxonomy.
//
// When -in is omitted a demonstration dataset (the four-blob toy) is used.
// Given-knowledge algorithms (coala, cib, metricflip, alttransform) read the
// known clustering from -given, a CSV with one integer label per line; if
// omitted the result of k-means is used as the given clustering.
//
// With -stream the dataset is replayed through the incremental layer in
// chunks of -chunk rows instead of one batch solve: -algo selects the
// streaming learner (kmeans, meta, or coem), each chunk prints a progress
// line, and the final snapshot is reported when the stream ends.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"multiclust"
	"multiclust/internal/jobs/chaos"
	"multiclust/internal/ops"
	"multiclust/serve"
)

func main() {
	var (
		algo       = flag.String("algo", "taxonomy", "algorithm to run (see doc comment)")
		in         = flag.String("in", "", "input CSV file (default: built-in toy dataset)")
		header     = flag.Bool("header", true, "input CSV has a header row")
		givenF     = flag.String("given", "", "file with one integer label per line (given clustering)")
		k          = flag.Int("k", 2, "number of clusters (per solution)")
		seed       = flag.Int64("seed", 1, "random seed")
		eps        = flag.Float64("eps", 0.1, "DBSCAN epsilon")
		minPts     = flag.Int("minpts", 4, "DBSCAN minPts")
		xi         = flag.Int("xi", 10, "grid intervals per dimension")
		tau        = flag.Float64("tau", 0.1, "grid density threshold / significance")
		workers    = flag.Int("workers", 0, "worker goroutines for parallel hot paths (0 = MULTICLUST_WORKERS env, then GOMAXPROCS); results are identical for any value")
		traceF     = flag.String("trace", "", "write a JSONL instrumentation trace of the run to this file (one JSON event per line)")
		metrics    = flag.Bool("metrics", false, "after the run, dump recorded counters/series in Prometheus text format to stdout")
		metricsOut = flag.String("metrics-out", "", "write the Prometheus dump to this file instead of stdout, keeping clustering output clean (implies -metrics)")
		chromeF    = flag.String("chrome", "", "additionally convert the -trace JSONL into a Chrome trace-event file at this path (open in chrome://tracing); requires -trace")
		serveAddr  = flag.String("serve", "", "serve live ops endpoints (/metrics, /spans, /healthz, /readyz, /debug/pprof/) and the async job API (/v1/jobs) on this host:port during the run, then block until interrupted")
		jobWorkers = flag.Int("jobs-workers", 0, "worker goroutines for the /v1/jobs engine (0 = MULTICLUST_WORKERS env, then GOMAXPROCS)")
		jobQueue   = flag.Int("jobs-queue", 0, "bounded admission queue for /v1/jobs (0 = default 64); a full queue answers 429")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "on SIGINT/SIGTERM, wait this long for running jobs before cutting them to best-so-far")
		streamMode = flag.Bool("stream", false, "replay the dataset through the incremental layer chunk by chunk (-algo kmeans, meta or coem)")
		chunkRows  = flag.Int("chunk", 64, "rows per chunk in -stream mode")
		logF       = flag.String("log", "", "write structured JSONL logs (HTTP access lines, job lifecycle lines) to this file, or '-' for stderr")
		logLevel   = flag.String("log-level", "info", "minimum log level for -log: debug, info, warn or error")
	)
	flag.Parse()
	multiclust.SetWorkers(*workers)

	if *chromeF != "" && *traceF == "" {
		fmt.Fprintln(os.Stderr, "multiclust: -chrome requires -trace")
		os.Exit(1)
	}
	wantCollector := *metrics || *metricsOut != "" || *serveAddr != ""
	cleanup, collector, err := setupObservability(*traceF, wantCollector)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiclust:", err)
		os.Exit(1)
	}
	logger, logClose, err := setupLogger(*logF, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiclust:", err)
		os.Exit(1)
	}

	var handle *ops.Handle
	var engine *serve.Engine
	var poller *multiclust.RuntimePoller
	var sigCh chan os.Signal
	if *serveAddr != "" {
		// Register for shutdown signals before the listener is even up:
		// the moment the URL is printed, clients may probe and orchestrate
		// a SIGTERM, and the main goroutine may not be scheduled again in
		// between — the signal must never reach the default handler.
		sigCh = make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		cfg := serve.Config{Workers: *jobWorkers, QueueSize: *jobQueue, Log: logger}
		if os.Getenv("MULTICLUST_JOBS_TESTRUNNERS") == "1" {
			// Integration tests drive a real -serve process with the
			// deterministic fault battery mounted under chaos-* names.
			cfg.Runners = chaos.TestRunners()
		}
		engine = serve.New(cfg)
		api := engine.Handler()
		handle, err = ops.ServeOpts(*serveAddr, collector, ops.MuxOptions{
			Ready: engine.Ready,
			Mounts: map[string]http.Handler{
				"/v1/jobs":  api,
				"/v1/jobs/": api,
			},
			Log: logger,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "multiclust:", err)
			os.Exit(1)
		}
		// Process-health gauges (goroutines, heap, GC pauses) refresh on a
		// fixed tick while the ops surface is up, so /metrics answers with
		// live runtime state.
		poller = multiclust.StartRuntimePoller(collector, 5*time.Second)
		fmt.Fprintf(os.Stderr, "multiclust: ops endpoints at %s\n", handle.URL)
	}
	if *streamMode {
		err = runStream(*algo, *in, *header, *k, *seed, *chunkRows)
	} else {
		err = run(*algo, *in, *header, *givenF, *k, *seed, *eps, *minPts, *xi, *tau)
	}
	if cerr := cleanup(); err == nil {
		err = cerr
	}
	if err == nil && *chromeF != "" {
		err = writeChrome(*traceF, *chromeF)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "multiclust:", err)
		os.Exit(1)
	}
	if err := dumpMetrics(collector, *metrics, *metricsOut); err != nil {
		fmt.Fprintln(os.Stderr, "multiclust:", err)
		os.Exit(1)
	}
	if handle != nil {
		fmt.Fprintln(os.Stderr, "multiclust: run finished; ops endpoints stay up — interrupt (Ctrl-C) to exit")
		<-sigCh
		// Graceful drain: stop admitting jobs, let running ones finish
		// within the deadline, then cut stragglers to their best-so-far
		// so no admitted job is lost — only then close the listener.
		if engine != nil {
			dctx, dstop := context.WithTimeout(context.Background(), *drainTO)
			rep := engine.Drain(dctx)
			dstop()
			fmt.Fprintf(os.Stderr, "multiclust: drained jobs done=%d partial=%d failed=%d cancelled=%d truncated=%v\n",
				rep.Done, rep.Partial, rep.Failed, rep.Cancelled, rep.Truncated)
		}
		poller.Stop()
		if err := handle.Shutdown(context.Background()); err != nil {
			fmt.Fprintln(os.Stderr, "multiclust:", err)
			os.Exit(1)
		}
	}
	if err := logClose(); err != nil {
		fmt.Fprintln(os.Stderr, "multiclust:", err)
		os.Exit(1)
	}
}

// setupLogger resolves the -log/-log-level flags: no -log means no logger
// (nil is a valid no-op everywhere it is wired), "-" logs to stderr, any
// other value appends to that file. The returned close function flushes
// and reports the first log write error.
func setupLogger(path, level string) (*serve.Logger, func() error, error) {
	if path == "" {
		return nil, func() error { return nil }, nil
	}
	min, err := serve.ParseLogLevel(level)
	if err != nil {
		return nil, nil, err
	}
	if path == "-" {
		logger := serve.NewLogger(os.Stderr, min)
		return logger, logger.Err, nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("open -log file: %w", err)
	}
	logger := serve.NewLogger(f, min)
	return logger, func() error {
		werr := logger.Err()
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		return werr
	}, nil
}

// dumpMetrics renders the collector after the run: to the -metrics-out
// file when given, else to stdout when -metrics was passed (the historic
// behaviour). A collector created only for -serve dumps nowhere.
func dumpMetrics(collector *multiclust.Collector, toStdout bool, outFile string) error {
	if collector == nil {
		return nil
	}
	if outFile != "" {
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		if err := collector.WriteProm(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if !toStdout {
		return nil
	}
	fmt.Println("--- metrics ---")
	return collector.WriteProm(os.Stdout)
}

// writeChrome converts the finished JSONL trace into the Chrome
// trace-event format.
func writeChrome(traceFile, chromeFile string) error {
	in, err := os.Open(traceFile)
	if err != nil {
		return err
	}
	defer in.Close()
	out, err := os.Create(chromeFile)
	if err != nil {
		return err
	}
	if err := multiclust.WriteChromeTrace(in, out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// setupObservability installs the recorders requested by -trace/-metrics
// and returns a cleanup that flushes the trace file and reports any sink
// error. The returned Collector is non-nil only when -metrics was asked
// for; with neither flag the recorder stays nil and the instrumented hot
// paths pay only their nil checks.
func setupObservability(traceF string, metrics bool) (cleanup func() error, collector *multiclust.Collector, err error) {
	cleanup = func() error { return nil }
	var recs []multiclust.Recorder
	if metrics {
		collector = multiclust.NewCollector()
		recs = append(recs, collector)
	}
	if traceF != "" {
		f, err := os.Create(traceF)
		if err != nil {
			return cleanup, nil, err
		}
		bw := bufio.NewWriter(f)
		tw := multiclust.NewTraceWriter(bw)
		recs = append(recs, tw)
		cleanup = func() error {
			if err := tw.Err(); err != nil {
				f.Close()
				return err
			}
			if err := bw.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
	}
	multiclust.SetRecorder(multiclust.TeeRecorders(recs...))
	return cleanup, collector, nil
}

func run(algo, in string, header bool, givenF string, k int, seed int64, eps float64, minPts, xi int, tau float64) error {
	if algo == "taxonomy" {
		return multiclust.WriteTaxonomyTable(os.Stdout)
	}

	ds, truthHor, truthVer, err := loadData(in, header)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: n=%d d=%d\n", ds.N(), ds.Dim())

	given, err := loadGiven(givenF, ds, k, seed)
	if err != nil {
		return err
	}

	printOne := func(name string, c *multiclust.Clustering) {
		fmt.Printf("%s: k=%d noise=%d silhouette=%.3f", name, c.K(), c.NoiseCount(),
			multiclust.Silhouette(ds.Points, c))
		if truthHor != nil {
			fmt.Printf(" ARI(view1)=%.2f ARI(view2)=%.2f",
				multiclust.AdjustedRand(truthHor, c.Labels),
				multiclust.AdjustedRand(truthVer, c.Labels))
		}
		fmt.Println()
		fmt.Printf("  labels: %s\n", labelString(c.Labels, 40))
	}
	printSubspace := func(name string, m multiclust.SubspaceClustering) {
		fmt.Printf("%s: %d subspace clusters in %d subspaces\n", name, len(m), len(m.GroupBySubspace()))
		for i, c := range m {
			if i == 12 {
				fmt.Printf("  ... %d more\n", len(m)-12)
				break
			}
			fmt.Printf("  %s\n", c)
		}
	}

	switch algo {
	case "kmeans":
		res, err := multiclust.KMeans(ds.Points, multiclust.KMeansConfig{K: k, Seed: seed, Restarts: 5})
		if err != nil {
			return err
		}
		printOne("kmeans", res.Clustering)
	case "dbscan":
		res, err := multiclust.DBSCAN(ds.Points, multiclust.DBSCANConfig{Eps: eps, MinPts: minPts})
		if err != nil {
			return err
		}
		printOne("dbscan", res)
	case "em":
		res, err := multiclust.EM(ds.Points, multiclust.EMConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("em", res.Clustering)
		fmt.Printf("  log-likelihood: %.2f\n", res.LogLik)
	case "spectral":
		res, err := multiclust.Spectral(ds.Points, multiclust.SpectralConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("spectral", res.Clustering)
	case "meta":
		res, err := multiclust.MetaClustering(ds.Points, multiclust.MetaClusteringConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		fmt.Printf("meta clustering: %d base solutions, mean pairwise dissimilarity %.3f\n",
			len(res.Generated), res.MeanPairwise)
		for i, r := range res.Representatives {
			printOne(fmt.Sprintf("representative %d", i+1), r)
		}
	case "coala":
		res, err := multiclust.Coala(ds.Points, given, multiclust.CoalaConfig{K: k})
		if err != nil {
			return err
		}
		printOne("coala alternative", res.Clustering)
		fmt.Printf("  merges: %d quality, %d dissimilarity\n", res.QualityMerges, res.DissimilarityMerges)
	case "cib":
		res, err := multiclust.CIB(ds.Points, given, multiclust.CIBConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("cib alternative", res.Clustering)
	case "mincentropy":
		res, err := multiclust.MinCEntropy(ds.Points, []*multiclust.Clustering{given}, multiclust.MinCEntropyConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("minCEntropy alternative", res.Clustering)
	case "deckmeans":
		res, err := multiclust.DecKMeans(ds.Points, multiclust.DecKMeansConfig{Ks: []int{k, k}, Seed: seed})
		if err != nil {
			return err
		}
		for i, c := range res.Clusterings {
			printOne(fmt.Sprintf("solution %d", i+1), c)
		}
		fmt.Printf("  NMI between solutions: %.3f\n",
			multiclust.NMI(res.Clusterings[0].Labels, res.Clusterings[1].Labels))
	case "cami":
		res, err := multiclust.CAMI(ds.Points, multiclust.CAMIConfig{K1: k, K2: k, Mu: 5, Seed: seed})
		if err != nil {
			return err
		}
		printOne("model 1", res.Clustering1)
		printOne("model 2", res.Clustering2)
		fmt.Printf("  soft MI: %.3f\n", res.MutualInfo)
	case "contingency":
		res, err := multiclust.Contingency(ds.Points, multiclust.ContingencyConfig{K1: k, K2: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("solution 1", res.Clustering1)
		printOne("solution 2", res.Clustering2)
		fmt.Printf("  uniformity: %.3f\n", res.Uniformity)
	case "metricflip":
		res, err := multiclust.MetricFlip(ds.Points, given, multiclust.KMeansBase(k, seed))
		if err != nil {
			return err
		}
		printOne("flipped-space alternative", res.Clustering)
	case "alttransform":
		res, err := multiclust.AlternativeTransform(ds.Points, given, multiclust.KMeansBase(k, seed))
		if err != nil {
			return err
		}
		printOne("transformed-space alternative", res.Clustering)
	case "orthproj":
		iters, err := multiclust.OrthogonalProjections(ds.Points, multiclust.KMeansBase(k, seed), multiclust.OrthogonalProjectionsConfig{})
		if err != nil {
			return err
		}
		for i, it := range iters {
			printOne(fmt.Sprintf("round %d (residual var %.2f)", i+1, it.ResidualVariance), it.Clustering)
		}
	case "clique":
		res, err := multiclust.Clique(ds.Normalize().Points, multiclust.CliqueConfig{Xi: xi, Tau: tau})
		if err != nil {
			return err
		}
		printSubspace("clique", res.Clusters)
		fmt.Printf("  candidates counted %d, pruned %d\n", res.Stats.CandidatesGenerated, res.Stats.CandidatesPruned)
	case "schism":
		res, err := multiclust.Schism(ds.Normalize().Points, multiclust.SchismConfig{Xi: xi, Tau: tau})
		if err != nil {
			return err
		}
		printSubspace("schism", res.Clusters)
	case "dusc":
		res, err := multiclust.Dusc(ds.Normalize().Points, multiclust.DuscConfig{Eps: eps, MaxDim: 3})
		if err != nil {
			return err
		}
		printSubspace("dusc", res.Clusters)
	case "subclu":
		res, err := multiclust.Subclu(ds.Normalize().Points, multiclust.SubcluConfig{Eps: eps, MinPts: minPts})
		if err != nil {
			return err
		}
		printSubspace("subclu", res.Clusters)
	case "orclus":
		res, err := multiclust.Orclus(ds.Points, multiclust.OrclusConfig{K: k, L: 2, Seed: seed})
		if err != nil {
			return err
		}
		printOne("orclus", res.Assignment)
		fmt.Printf("  projected energy: %.4f\n", res.Energy)
	case "predecon":
		res, err := multiclust.Predecon(ds.Points, multiclust.PredeconConfig{Eps: eps, MinPts: minPts, Delta: eps * eps / 4})
		if err != nil {
			return err
		}
		printOne("predecon", res.Assignment)
		printSubspace("predecon subspaces", res.Clusters)
	case "proclus":
		res, err := multiclust.Proclus(ds.Points, multiclust.ProclusConfig{K: k, L: 2, Seed: seed})
		if err != nil {
			return err
		}
		printSubspace("proclus", res.Clusters)
	case "fires":
		res, err := multiclust.Fires(ds.Normalize().Points, multiclust.FiresConfig{Eps: eps, MinPts: minPts})
		if err != nil {
			return err
		}
		printSubspace("fires", res.Clusters)
	case "mineclus":
		res, err := multiclust.MineClus(ds.Normalize().Points, multiclust.MineClusConfig{W: eps, Seed: seed})
		if err != nil {
			return err
		}
		printSubspace("mineclus", res.Clusters)
	case "condens":
		res, err := multiclust.CondEns(ds.Points, given, multiclust.CondEnsConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("condens alternative", res.Clustering)
	case "flexible":
		res, err := multiclust.Flexible(ds.Points, []*multiclust.Clustering{given},
			multiclust.SilhouetteQuality(), multiclust.RandDissimilarity(),
			multiclust.FlexibleConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		printOne("flexible alternative", res.Clustering)
		fmt.Printf("  objective=%.3f quality=%.3f diss=%.3f\n", res.Objective, res.Quality, res.Dissimilarity)
	case "doc":
		res, err := multiclust.DOC(ds.Normalize().Points, multiclust.DOCConfig{W: eps, Seed: seed})
		if err != nil {
			return err
		}
		printSubspace("doc", res.Clusters)
	case "universes":
		res, err := multiclust.ParallelUniverses([][][]float64{ds.Points, ds.Points}, multiclust.UniversesConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		for v, c := range res.Clusterings {
			printOne(fmt.Sprintf("universe %d", v), c)
		}
	case "distdbscan":
		res, err := multiclust.DistributedDBSCAN(ds.Points, multiclust.DistributedDBSCANConfig{Eps: eps, MinPts: minPts})
		if err != nil {
			return err
		}
		printOne("distributed dbscan", res.Clustering)
		fmt.Printf("  representatives shipped: %d, local clusters: %d\n", len(res.Representatives), res.LocalClusters)
	case "ris":
		scores, err := multiclust.RIS(ds.Normalize().Points, multiclust.RISConfig{Eps: eps, MinPts: minPts, TopK: 15})
		if err != nil {
			return err
		}
		fmt.Println("ris subspace ranking (best first):")
		for _, s := range scores {
			fmt.Printf("  %v core=%d quality=%.2f\n", s.Dims, s.CoreObjects, s.Quality)
		}
	case "enclus":
		scores, err := multiclust.Enclus(ds.Normalize().Points, multiclust.EnclusConfig{Xi: xi, MaxEntropy: 16})
		if err != nil {
			return err
		}
		fmt.Println("enclus subspace ranking (lowest entropy first):")
		for i, s := range scores {
			if i == 15 {
				fmt.Printf("  ... %d more\n", len(scores)-15)
				break
			}
			fmt.Printf("  %v H=%.3f interest=%.3f\n", s.Dims, s.Entropy, s.Interest)
		}
	default:
		return fmt.Errorf("unknown algorithm %q", algo)
	}
	return nil
}

// runStream replays the dataset through the incremental layer: the rows
// are cut into chunks of chunkRows and pushed through the streaming
// learner selected by algo, printing one progress line per chunk and the
// final snapshot at the end. The result is a pure function of (config,
// chunk sequence): replaying the same file with the same flags reproduces
// it byte for byte.
func runStream(algo, in string, header bool, k int, seed int64, chunkRows int) error {
	if chunkRows <= 0 {
		return fmt.Errorf("-chunk must be positive, got %d", chunkRows)
	}
	ds, _, _, err := loadData(in, header)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: n=%d d=%d, streaming in chunks of %d\n", ds.N(), ds.Dim(), chunkRows)

	var push func(rows [][]float64) error
	var report func() error
	switch algo {
	case "kmeans":
		m, err := multiclust.NewStreamKMeans(multiclust.StreamKMeansConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		push = func(rows [][]float64) error {
			if err := m.Push(rows); err != nil {
				return err
			}
			s, err := m.Snapshot()
			if err != nil {
				return err
			}
			fmt.Printf("chunk %d: rows=%d sse=%.3f reseeds=%d\n", s.Chunks, s.RowsSeen, s.LastSSE, s.Reseeds)
			return nil
		}
		report = func() error {
			s, err := m.Snapshot()
			if err != nil {
				return err
			}
			fmt.Printf("stream kmeans: k=%d rows=%d chunks=%d\n", len(s.Centers), s.RowsSeen, s.Chunks)
			fmt.Printf("  last-chunk labels: %s\n", labelString(s.LastLabels, 40))
			return nil
		}
	case "meta":
		e, err := multiclust.NewStreamEnsemble(multiclust.StreamEnsembleConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		push = func(rows [][]float64) error {
			if err := e.Push(rows); err != nil {
				return err
			}
			fmt.Printf("chunk %d: rows=%d\n", e.Chunks(), e.RowsSeen())
			return nil
		}
		report = func() error {
			s, err := e.Snapshot()
			if err != nil {
				return err
			}
			fmt.Printf("stream ensemble: %d representatives over window of %d chunks (%d rows), %d evicted, mean pairwise %.3f\n",
				len(s.Representatives), s.WindowChunks, s.WindowRows, s.Evicted, s.MeanPairwise)
			for i, r := range s.Representatives {
				fmt.Printf("  representative %d: k=%d labels: %s\n", i+1, r.K(), labelString(r.Labels, 40))
			}
			return nil
		}
	case "coem":
		c, err := multiclust.NewStreamCoEM(multiclust.StreamCoEMConfig{K: k, Seed: seed})
		if err != nil {
			return err
		}
		push = func(rows [][]float64) error {
			if err := c.Push(rows); err != nil {
				return err
			}
			s, err := c.Snapshot()
			if err != nil {
				return err
			}
			fmt.Printf("chunk %d: rows=%d agreement=%.3f loglik=(%.2f, %.2f)\n",
				s.Chunks, s.RowsSeen, s.Agreement, s.LogLikA, s.LogLikB)
			return nil
		}
		report = func() error {
			s, err := c.Snapshot()
			if err != nil {
				return err
			}
			fmt.Printf("stream coem: k=%d rows=%d chunks=%d agreement=%.3f\n",
				s.Clustering.K(), s.RowsSeen, s.Chunks, s.Agreement)
			fmt.Printf("  consensus labels (last chunk): %s\n", labelString(s.Clustering.Labels, 40))
			return nil
		}
	default:
		return fmt.Errorf("algorithm %q has no streaming mode (want kmeans, meta or coem)", algo)
	}

	for at := 0; at < len(ds.Points); at += chunkRows {
		end := at + chunkRows
		if end > len(ds.Points) {
			end = len(ds.Points)
		}
		if err := push(ds.Points[at:end]); err != nil {
			return err
		}
	}
	return report()
}

// loadData reads the CSV, or builds the toy with its two ground truths.
func loadData(path string, header bool) (*multiclust.Dataset, []int, []int, error) {
	if path == "" {
		ds, hor, ver := multiclust.FourBlobToy(1, 25)
		return ds, hor, ver, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()
	ds, err := multiclust.ReadCSV(f, header)
	if err != nil {
		return nil, nil, nil, err
	}
	return ds, nil, nil, nil
}

// loadGiven reads a labels file or derives a k-means clustering.
func loadGiven(path string, ds *multiclust.Dataset, k int, seed int64) (*multiclust.Clustering, error) {
	if path == "" {
		res, err := multiclust.KMeans(ds.Points, multiclust.KMeansConfig{K: k, Seed: seed, Restarts: 5})
		if err != nil {
			return nil, err
		}
		return res.Clustering, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	labels, err := readLabels(f)
	if err != nil {
		return nil, err
	}
	c := multiclust.NewClustering(labels)
	if err := c.Validate(ds.N()); err != nil {
		return nil, err
	}
	return c, nil
}

func readLabels(r io.Reader) ([]int, error) {
	var labels []int
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("bad label %q: %w", line, err)
		}
		labels = append(labels, v)
	}
	return labels, sc.Err()
}

func labelString(labels []int, max int) string {
	var b strings.Builder
	for i, l := range labels {
		if i == max {
			fmt.Fprintf(&b, "... (%d total)", len(labels))
			break
		}
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}
