package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeGracefulDrainOnSIGTERM is the process-level shutdown test: build
// the real binary, start it with -serve and the chaos runner registry, park
// a 60s job on a worker, send SIGTERM, and require (1) exit code 0 within
// the drain deadline plus slack and (2) a drain report on stderr showing
// the stuck job was cut to its best-so-far (partial), not lost.
func TestServeGracefulDrainOnSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the real binary")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}

	bin := filepath.Join(t.TempDir(), "multiclust-test")
	build := exec.Command(goTool, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-serve", "127.0.0.1:0", "-algo", "taxonomy", "-drain-timeout", "2s")
	cmd.Env = append(os.Environ(), "MULTICLUST_JOBS_TESTRUNNERS=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	cmd.Stdout = nil // the taxonomy table is irrelevant here
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	defer cmd.Process.Kill() // no-op on the clean path; insurance on failures

	// The URL line is printed as soon as the listener is up; keep scanning
	// the rest of stderr in the background for the drain report.
	sc := bufio.NewScanner(stderr)
	var url string
	for sc.Scan() {
		line := sc.Text()
		if _, rest, ok := strings.Cut(line, "ops endpoints at "); ok {
			url = rest
			break
		}
	}
	if url == "" {
		t.Fatalf("never saw the ops URL on stderr (scan err %v)", sc.Err())
	}
	restLines := make(chan string, 1)
	go func() {
		var rest strings.Builder
		for sc.Scan() {
			rest.WriteString(sc.Text())
			rest.WriteString("\n")
		}
		restLines <- rest.String()
	}()

	client := &http.Client{Timeout: 5 * time.Second}

	// The server readiness probe must answer before we submit.
	waitFor(t, func() error {
		resp, err := client.Get(url + "/readyz")
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("readyz %d", resp.StatusCode)
		}
		return nil
	})

	// Park a chaos-slow job: it blocks until its context is cut and then
	// returns a best-so-far, exactly like an interrupted real algorithm.
	body := `{"algo":"chaos-slow","points":[[0,0],[1,1],[2,2]],"timeout_ms":60000}`
	resp, err := client.Post(url+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}

	// Wait until the job is actually running so the drain has something
	// in flight to truncate.
	waitFor(t, func() error {
		resp, err := client.Get(url + "/v1/jobs/" + sub.ID)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var st struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			return err
		}
		if st.State != "running" {
			return fmt.Errorf("state %s", st.State)
		}
		return nil
	})

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	// Exit must be clean and inside the 2s drain deadline plus generous
	// slack for process teardown.
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("process exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("process did not exit within 30s of SIGTERM")
	}

	rest := <-restLines
	if !strings.Contains(rest, "drained jobs") {
		t.Fatalf("stderr missing the drain report:\n%s", rest)
	}
	if !strings.Contains(rest, "partial=1") || !strings.Contains(rest, "truncated=true") {
		t.Fatalf("drain report did not cut the stuck job to best-so-far:\n%s", rest)
	}
}

func waitFor(t *testing.T, probe func() error) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	var last error
	for time.Now().Before(deadline) {
		if last = probe(); last == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("condition never held: %v", last)
}

// TestServeFlagsRegistered pins the new service flags into the CLI surface.
func TestServeFlagsRegistered(t *testing.T) {
	var buf bytes.Buffer
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not in PATH")
	}
	cmd := exec.Command(goTool, "run", ".", "-h")
	cmd.Stderr = &buf
	_ = cmd.Run() // -h exits 2 by flag convention
	help := buf.String()
	for _, flagName := range []string{"-jobs-workers", "-jobs-queue", "-drain-timeout"} {
		if !strings.Contains(help, flagName) {
			t.Errorf("help output missing %s:\n%s", flagName, help)
		}
	}
}
