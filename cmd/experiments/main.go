// Command experiments regenerates every figure and table of the tutorial
// (see DESIGN.md for the per-experiment index). With no arguments it runs
// everything; pass experiment ids (e.g. E01 T2) to run a subset.
//
//	go run ./cmd/experiments [-metrics] [-serve addr] [ids...]
//
// Every id is validated against the registry before anything runs: one or
// more unknown ids abort the whole invocation with exit status 1 and a
// line per bad id naming the valid range, instead of failing halfway
// through a partial run. With -metrics each experiment is followed by a
// dump of the instrumentation counters it produced (Prometheus text
// format, deterministic for a fixed seed). With -serve the live ops
// endpoints (/metrics, /spans, /healthz, /debug/pprof/) are served on the
// given host:port for the duration of the sweep, so a long regeneration
// can be watched and profiled while it runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"multiclust/internal/experiments"
	"multiclust/internal/obs"
	"multiclust/internal/ops"
)

func main() {
	metrics := flag.Bool("metrics", false, "after each experiment, dump its recorded obs counters (Prometheus text format)")
	serveAddr := flag.String("serve", "", "serve live ops endpoints (/metrics, /spans, /healthz, /debug/pprof/) on this host:port during the sweep")
	flag.Parse()
	if err := run(flag.Args(), *metrics, *serveAddr, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// run validates ids up front, then executes each experiment in order.
// Unknown ids are all reported before anything runs, so a typo never
// costs a partial sweep.
func run(ids []string, metrics bool, serveAddr string, stdout, stderr io.Writer) error {
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	if unknown := unknownIDs(ids); len(unknown) > 0 {
		for _, id := range unknown {
			fmt.Fprintf(stderr, "experiments: unknown experiment id %q\n", id)
		}
		return fmt.Errorf("%d unknown experiment id(s); valid ids: %s",
			len(unknown), strings.Join(experiments.IDs(), " "))
	}

	var collector *obs.Collector
	if metrics || serveAddr != "" {
		collector = obs.NewCollector()
		prev := obs.Default()
		obs.SetDefault(collector)
		defer obs.SetDefault(prev)
	}
	if serveAddr != "" {
		h, err := ops.Serve(serveAddr, collector)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "experiments: ops endpoints at %s\n", h.URL)
		defer func() {
			if err := h.Shutdown(context.Background()); err != nil {
				fmt.Fprintf(stderr, "experiments: %v\n", err)
			}
		}()
	}
	for _, id := range ids {
		// Per-experiment dumps reset between runs so each block is
		// deterministic; a serve-only collector instead accumulates
		// across the sweep for the live endpoint.
		if metrics {
			collector.Reset()
		}
		t, err := experiments.Run(id)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if err := t.Render(stdout); err != nil {
			return fmt.Errorf("writing %s: %w", id, err)
		}
		if metrics {
			fmt.Fprintf(stdout, "--- %s metrics ---\n", id)
			if err := collector.WriteProm(stdout); err != nil {
				return fmt.Errorf("writing %s metrics: %w", id, err)
			}
			fmt.Fprintln(stdout)
		}
	}
	return nil
}

// unknownIDs returns the sorted distinct ids that are not in the registry.
func unknownIDs(ids []string) []string {
	valid := map[string]bool{}
	for _, id := range experiments.IDs() {
		valid[id] = true
	}
	seen := map[string]bool{}
	var out []string
	for _, id := range ids {
		if !valid[id] && !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
