// Command experiments regenerates every figure and table of the tutorial
// (see DESIGN.md for the per-experiment index). With no arguments it runs
// everything; pass experiment ids (e.g. E01 T2) to run a subset.
//
//	go run ./cmd/experiments [ids...]
package main

import (
	"fmt"
	"os"

	"multiclust/internal/experiments"
)

func main() {
	ids := os.Args[1:]
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		t, err := experiments.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", id, err)
			os.Exit(1)
		}
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: writing %s: %v\n", id, err)
			os.Exit(1)
		}
	}
}
