package main

import (
	"strings"
	"testing"
)

// An unknown experiment id must fail the invocation (main turns the error
// into exit status 1) and must do so BEFORE any experiment runs, naming
// every bad id.
func TestRunUnknownIDFailsUpFront(t *testing.T) {
	var stdout, stderr strings.Builder
	err := run([]string{"E01", "E99", "bogus", "E99"}, false, "", &stdout, &stderr)
	if err == nil {
		t.Fatal("run with unknown ids returned nil; main would exit 0")
	}
	if stdout.Len() != 0 {
		t.Errorf("E01 ran despite unknown ids in the same invocation:\n%s", stdout.String())
	}
	for _, want := range []string{`unknown experiment id "E99"`, `unknown experiment id "bogus"`} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
	if n := strings.Count(stderr.String(), `"E99"`); n != 1 {
		t.Errorf("duplicate unknown id reported %d times, want once", n)
	}
	if !strings.Contains(err.Error(), "2 unknown experiment id(s)") {
		t.Errorf("error does not count the bad ids: %v", err)
	}
}

// A lowercase id is not a registered id; the old behaviour of running the
// prefix of valid ids before dying must not come back.
func TestRunRejectsCaseMismatch(t *testing.T) {
	var stdout, stderr strings.Builder
	if err := run([]string{"e01"}, false, "", &stdout, &stderr); err == nil {
		t.Fatal("lowercase id accepted")
	}
	if stdout.Len() != 0 {
		t.Error("output produced for a rejected invocation")
	}
}

// A valid single id runs, renders a table, and with metrics enabled emits
// a per-experiment Prometheus block.
func TestRunSingleExperimentWithMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var stdout, stderr strings.Builder
	if err := run([]string{"E01"}, true, "", &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	if !strings.Contains(out, "E01") {
		t.Errorf("table output missing experiment id:\n%s", out)
	}
	if !strings.Contains(out, "--- E01 metrics ---") {
		t.Errorf("metrics block missing:\n%s", out)
	}
	if !strings.Contains(out, "multiclust_parallel_tasks_total") {
		t.Errorf("metrics block missing parallel counters:\n%s", out)
	}
}

// -serve without -metrics stands up the ops endpoints for the sweep and
// serves accumulated metrics live, without adding per-experiment dumps
// to stdout.
func TestRunWithServeEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real experiment")
	}
	var stdout, stderr strings.Builder
	if err := run([]string{"E01"}, false, "127.0.0.1:0", &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(stdout.String(), "--- E01 metrics ---") {
		t.Errorf("serve-only run must not dump metrics to stdout:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "experiments: ops endpoints at http://127.0.0.1:") {
		t.Errorf("stderr missing ops endpoint announcement:\n%s", stderr.String())
	}
	// A bad address must fail the run rather than silently skip serving.
	if err := run([]string{"E01"}, false, "256.256.256.256:99999", &stdout, &stderr); err == nil {
		t.Error("invalid -serve address accepted")
	}
}
