// Command sensor plays the tutorial's sensor-surveillance scenario
// (slide 6): sensor nodes carry two measurement representations
// (temperature profile, humidity profile). Multi-represented DBSCAN
// combines the views — union when each view is sparse, intersection when
// one view is unreliable — and co-EM bootstraps a consensus model.
//
//	go run ./examples/sensor
package main

import (
	"fmt"
	"log"

	"multiclust"
)

func main() {
	// 240 sensor nodes, 3 latent environment classes; view A = temperature
	// features, view B = humidity features with 30% unreliable nodes
	// (failing humidity sensors).
	temp, humidity, truth := multiclust.TwoSourceViews(7, 240, 3, 2, 2, 0.35, 0.3)
	fmt.Printf("sensors: %d, views: temperature(%dd) humidity(%dd), 30%% broken humidity sensors\n\n",
		temp.N(), temp.Dim(), humidity.Dim())

	views := [][][]float64{temp.Points, humidity.Points}

	// Single-view DBSCAN on the unreliable view suffers.
	single, err := multiclust.DBSCAN(humidity.Points, multiclust.DBSCANConfig{Eps: 1.0, MinPts: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s purity=%.2f noise=%d\n", "DBSCAN humidity only",
		multiclust.Purity(truth, single.Labels), single.NoiseCount())

	// Intersection handles the unreliable view: both views must agree.
	inter, err := multiclust.MVDBSCAN(views, multiclust.MVDBSCANConfig{
		Eps: []float64{1.0, 1.0}, MinPts: 4, Mode: multiclust.Intersection,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s purity=%.2f noise=%d\n", "MV-DBSCAN intersection",
		multiclust.Purity(truth, inter.Labels), inter.NoiseCount())

	// Union trades purity for coverage.
	union, err := multiclust.MVDBSCAN(views, multiclust.MVDBSCANConfig{
		Eps: []float64{1.0, 1.0}, MinPts: 4, Mode: multiclust.Union,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s purity=%.2f noise=%d\n", "MV-DBSCAN union",
		multiclust.Purity(truth, union.Labels), union.NoiseCount())

	// co-EM: a generative consensus over both views.
	co, err := multiclust.CoEM(temp.Points, humidity.Points, multiclust.CoEMConfig{K: 3, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s ARI=%.2f (agreement %.2f after %d rounds)\n", "co-EM consensus",
		multiclust.AdjustedRand(truth, co.Clustering.Labels),
		co.History[len(co.History)-1].Agreement, len(co.History))

	// Two-view spectral clustering as a second consensus route.
	tv, err := multiclust.TwoViewSpectral(temp.Points, humidity.Points, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s ARI=%.2f\n", "two-view spectral",
		multiclust.AdjustedRand(truth, tv.Labels))
}
