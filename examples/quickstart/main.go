// Command quickstart reproduces the tutorial's slide-26 toy example: one
// 2-D dataset that admits two equally meaningful 2-partitions, and three
// paradigms that each recover the alternative solution.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"multiclust"
)

func main() {
	// Four tight blobs at the unit-square corners. Both the left/right and
	// the bottom/top splits are "correct" — the point of multiple
	// clustering solutions.
	ds, horizontal, vertical := multiclust.FourBlobToy(1, 25)
	fmt.Printf("dataset: n=%d d=%d — two hidden 2-partitions\n\n", ds.N(), ds.Dim())

	given := multiclust.NewClustering(horizontal)
	score := func(name string, labels []int) {
		fmt.Printf("%-24s ARI vs horizontal=%.2f  ARI vs vertical=%.2f\n",
			name,
			multiclust.AdjustedRand(horizontal, labels),
			multiclust.AdjustedRand(vertical, labels))
	}

	// A traditional single-solution algorithm returns ONE of the views.
	km, err := multiclust.KMeans(ds.Points, multiclust.KMeansConfig{K: 2, Seed: 1, Restarts: 5})
	if err != nil {
		log.Fatal(err)
	}
	score("k-means (traditional)", km.Clustering.Labels)

	// Paradigm: alternative clustering in the original space.
	coala, err := multiclust.Coala(ds.Points, given, multiclust.CoalaConfig{K: 2})
	if err != nil {
		log.Fatal(err)
	}
	score("COALA (given=horizontal)", coala.Clustering.Labels)

	// Paradigm: orthogonal space transformation.
	flip, err := multiclust.MetricFlip(ds.Points, given, multiclust.KMeansBase(2, 1))
	if err != nil {
		log.Fatal(err)
	}
	score("metric flip (Davidson&Qi)", flip.Clustering.Labels)

	// Paradigm: simultaneous generation — no given knowledge at all.
	dec, err := multiclust.DecKMeans(ds.Points, multiclust.DecKMeansConfig{Ks: []int{2, 2}, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	score("dec. k-means solution 1", dec.Clusterings[0].Labels)
	score("dec. k-means solution 2", dec.Clusterings[1].Labels)
	fmt.Printf("\nNMI between the two simultaneous solutions: %.3f (0 = independent views)\n",
		multiclust.NMI(dec.Clusterings[0].Labels, dec.Clusterings[1].Labels))
}
