// Command genes follows the tutorial's gene-expression motivation
// (slide 5): genes have several functional roles, so a single partition is
// wrong by construction. The example builds expression data whose "genes"
// participate in two regulatory programs living in different condition
// subsets, then shows (a) orthogonal projections peeling off one program
// per round and (b) CAMI extracting both programs simultaneously.
//
//	go run ./examples/genes
package main

import (
	"fmt"
	"log"

	"multiclust"
)

func main() {
	// 200 genes measured under 6 experimental conditions. Conditions 0-2
	// respond to program A, conditions 3-5 to program B (three regulons
	// each); the programs assign genes independently — each gene has two
	// roles.
	ds, programs, viewDims := multiclust.MultiViewGaussians(11, 200, []multiclust.ViewSpec{
		{Dims: 3, K: 3, Sep: 14, Sigma: 0.5},
		{Dims: 3, K: 3, Sep: 6, Sigma: 0.5},
	})
	fmt.Printf("genes: %d, conditions: %d (program A on %v, program B on %v)\n\n",
		ds.N(), ds.Dim(), viewDims[0], viewDims[1])

	// Orthogonal projections: cluster, remove the explained subspace,
	// repeat. Round 1 finds the dominant program, round 2 the hidden one.
	iters, err := multiclust.OrthogonalProjections(ds.Points,
		multiclust.KMeansBase(3, 1), multiclust.OrthogonalProjectionsConfig{MaxClusterings: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("orthogonal projections (Cui et al. 2007):")
	for r, it := range iters {
		fmt.Printf("  round %d: ARI(program A)=%.2f ARI(program B)=%.2f residual var=%.2f\n",
			r+1,
			multiclust.AdjustedRand(programs[0], it.Clustering.Labels),
			multiclust.AdjustedRand(programs[1], it.Clustering.Labels),
			it.ResidualVariance)
	}

	// CAMI: both programs in one shot, decorrelated by construction.
	cami, err := multiclust.CAMI(ds.Points, multiclust.CAMIConfig{K1: 3, K2: 3, Mu: 8, Restarts: 10, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCAMI (Dang & Bailey 2010):")
	fmt.Printf("  model 1: ARI(program A)=%.2f ARI(program B)=%.2f\n",
		multiclust.AdjustedRand(programs[0], cami.Clustering1.Labels),
		multiclust.AdjustedRand(programs[1], cami.Clustering1.Labels))
	fmt.Printf("  model 2: ARI(program A)=%.2f ARI(program B)=%.2f\n",
		multiclust.AdjustedRand(programs[0], cami.Clustering2.Labels),
		multiclust.AdjustedRand(programs[1], cami.Clustering2.Labels))
	fmt.Printf("  soft MI between the models: %.3f nats\n", cami.MutualInfo)

	// Each gene now carries one role per solution — the multi-role table of
	// slide 16.
	fmt.Println("\nfirst 5 genes, one role per solution:")
	for g := 0; g < 5; g++ {
		fmt.Printf("  gene %d: program A role %d, program B role %d\n",
			g, cami.Clustering1.Labels[g], cami.Clustering2.Labels[g])
	}
}
