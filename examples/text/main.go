// Command text plays the tutorial's text-analysis motivation (slide 7):
// some topics in a document collection are well known (DB, DM, ML); the
// interesting question is what OTHER grouping structure the corpus carries.
// Alternative-clustering methods take the known topic labeling as input and
// return the novel grouping.
//
//	go run ./examples/text
package main

import (
	"fmt"
	"log"

	"multiclust"
)

func main() {
	// Synthetic corpus: 180 documents embedded in a 6-dimensional topic
	// space. Dimensions 0-2 carry the KNOWN research-area signal (DB, DM,
	// ML); dimensions 3-5 carry an independent NOVEL signal (the venue
	// community a paper belongs to: theory-flavoured vs applied). Every
	// document has both coordinates, so the corpus supports two labelings.
	ds, labelings, _ := multiclust.MultiViewGaussians(21, 180, []multiclust.ViewSpec{
		{Dims: 3, K: 3, Sep: 9, Sigma: 0.5}, // known: DB / DM / ML
		{Dims: 3, K: 2, Sep: 7, Sigma: 0.5}, // novel: theory / applied
	})
	knownLabels, novelLabels := labelings[0], labelings[1]
	topicName := []string{"DB", "DM", "ML"}
	known := multiclust.NewClustering(knownLabels)

	fmt.Printf("corpus: %d documents, %d term dimensions\n", ds.N(), ds.Dim())
	fmt.Printf("known topics: %v (given to the algorithms)\n\n", topicName)

	report := func(name string, labels []int) {
		fmt.Printf("%-28s ARI vs known topics=%.2f  ARI vs novel structure=%.2f\n",
			name,
			multiclust.AdjustedRand(knownLabels, labels),
			multiclust.AdjustedRand(novelLabels, labels))
	}

	// Baseline: plain clustering rediscovers the dominant known topics.
	km, err := multiclust.KMeans(ds.Points, multiclust.KMeansConfig{K: 3, Seed: 1, Restarts: 5})
	if err != nil {
		log.Fatal(err)
	}
	report("k-means (no knowledge)", km.Clustering.Labels)

	// minCEntropy: penalize information shared with the known labeling.
	mce, err := multiclust.MinCEntropy(ds.Points, []*multiclust.Clustering{known},
		multiclust.MinCEntropyConfig{K: 2, Lambda: 1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	report("minCEntropy (given known)", mce.Clustering.Labels)

	// Qi & Davidson transform: move documents away from the known topic
	// centroids, then cluster.
	alt, err := multiclust.AlternativeTransform(ds.Points, known, multiclust.KMeansBase(2, 3))
	if err != nil {
		log.Fatal(err)
	}
	report("Qi&Davidson transform", alt.Clustering.Labels)

	// CIB: compress while staying informative beyond the known topics.
	cib, err := multiclust.CIB(ds.Points, known, multiclust.CIBConfig{K: 2, Beta: 10, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	report("cond. information bottleneck", cib.Clustering.Labels)

	// The density-profile dissimilarity confirms the alternative carves the
	// corpus along different attributes than the known labeling.
	adco, err := multiclust.ADCO(ds.Points, known, mce.Clustering, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nADCO(known, minCEntropy alternative) = %.2f (1 = different density structure)\n", adco)

	// Cross-table: known topics x novel grouping — the "multiple roles"
	// table of slide 18.
	fmt.Println("\ndocuments per (known topic, novel group):")
	counts := map[[2]int]int{}
	for i := range knownLabels {
		counts[[2]int{knownLabels[i], mce.Clustering.Labels[i]}]++
	}
	for topic := 0; topic < 3; topic++ {
		fmt.Printf("  %-3s", topicName[topic])
		for g := 0; g < 2; g++ {
			fmt.Printf("  group%d=%3d", g, counts[[2]int{topic, g}])
		}
		fmt.Println()
	}
}
