// Command customer walks the tutorial's customer-segmentation motivation
// (slides 8 and 14–18): customers look unique on the full attribute set,
// but clear groupings hide in attribute subsets. Subspace clustering finds
// them all, OSCLU removes the redundant projections, and ASCLU answers
// "what ELSE is there?" once marketing already knows one segmentation.
//
//	go run ./examples/customer
package main

import (
	"fmt"
	"log"

	"multiclust"
)

func main() {
	// Synthetic customer table: 8 attributes
	//   0 age, 1 income              -> "rich oldies" segment
	//   2 blood pressure, 3 sport    -> "healthy sporties" segment
	//   4 games, 5 profession        -> "unhealthy gamers" segment
	//   6,7                          -> irrelevant noise attributes
	names := []string{"age", "income", "bloodpres", "sport", "games", "profession", "noise1", "noise2"}
	ds, truth, err := multiclust.SubspaceData(42, 300, 8, []multiclust.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 90, Width: 0.07},
		{Dims: []int{2, 3}, Size: 80, Width: 0.07},
		{Dims: []int{4, 5}, Size: 70, Width: 0.07},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("customers: %d, attributes: %v\n\n", ds.N(), names)

	// Full-space clustering is blind here: the curse of dimensionality.
	fmt.Printf("full-space distance contrast for customer 0: %.2f (small = everyone unique)\n\n",
		multiclust.DistanceContrast(ds, 0))

	// Step 1: subspace clustering delivers ALL valid subspace clusters.
	cl, err := multiclust.Clique(ds.Points, multiclust.CliqueConfig{Xi: 10, Tau: 0.15})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CLIQUE: %d clusters across %d subspaces (redundancy %.0f%%)\n",
		len(cl.Clusters), len(cl.Clusters.GroupBySubspace()),
		100*multiclust.Redundancy(cl.Clusters, 0.5))

	// Step 2: OSCLU keeps one cluster per orthogonal concept.
	segments, err := multiclust.Osclu(cl.Clusters, multiclust.OscluConfig{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OSCLU:  %d orthogonal segments (F1 vs planted: %.2f)\n", len(segments),
		multiclust.SubspaceF1(truth, segments))
	for _, seg := range segments {
		fmt.Printf("  segment: %d customers on attributes %v\n", seg.Size(), attrNames(seg.Dims, names))
	}

	// Step 3: marketing already knows the age/income segmentation — ASCLU
	// returns only what is new.
	known := multiclust.SubspaceClustering{truth[0]}
	alternatives, err := multiclust.Asclu(cl.Clusters, multiclust.AscluConfig{
		OscluConfig: multiclust.OscluConfig{Alpha: 0.5, Beta: 0.5},
		Known:       known,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nASCLU given the age/income segmentation -> %d alternative segments:\n", len(alternatives))
	for _, seg := range alternatives {
		fmt.Printf("  alternative: %d customers on attributes %v\n", seg.Size(), attrNames(seg.Dims, names))
	}
}

func attrNames(dims []int, names []string) []string {
	out := make([]string, len(dims))
	for i, d := range dims {
		out[i] = names[d]
	}
	return out
}
