package multiclust

import (
	"bytes"
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the public API the way the README's quick
// start does: one dataset, three paradigms, consistent metrics.
func TestFacadeEndToEnd(t *testing.T) {
	ds, hor, ver := FourBlobToy(1, 20)
	given := NewClustering(hor)

	// Paradigm 1: original space (COALA).
	coala, err := Coala(ds.Points, given, CoalaConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(ver, coala.Clustering.Labels); a < 0.9 {
		t.Errorf("COALA ARI vs vertical = %v", a)
	}

	// Paradigm 2: orthogonal transformation (metric flip).
	flip, err := MetricFlip(ds.Points, given, KMeansBase(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(ver, flip.Clustering.Labels); a < 0.9 {
		t.Errorf("MetricFlip ARI vs vertical = %v", a)
	}

	// Paradigm 3: simultaneous (decorrelated k-means).
	dec, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if nmi := NMI(dec.Clusterings[0].Labels, dec.Clusterings[1].Labels); nmi > 0.3 {
		t.Errorf("DecKMeans solutions correlated: %v", nmi)
	}
}

func TestFacadeBaseLearners(t *testing.T) {
	ds, truth := GaussianBlobs(1, 90, [][]float64{{0, 0}, {8, 8}}, 0.5)
	km, err := KMeans(ds.Points, KMeansConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(truth, km.Clustering.Labels); a < 0.95 {
		t.Errorf("KMeans ARI = %v", a)
	}
	db, err := DBSCAN(ds.Points, DBSCANConfig{Eps: 1.0, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.K() != 2 {
		t.Errorf("DBSCAN K = %d", db.K())
	}
	dg, err := Hierarchical(ds.Points, AverageLink)
	if err != nil {
		t.Fatal(err)
	}
	cut, err := dg.Cut(2)
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(truth, cut.Labels); a < 0.95 {
		t.Errorf("Hierarchical ARI = %v", a)
	}
	gm, err := EM(ds.Points, EMConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(truth, gm.Clustering.Labels); a < 0.95 {
		t.Errorf("EM ARI = %v", a)
	}
	sp, err := Spectral(ds.Points, SpectralConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := AdjustedRand(truth, sp.Clustering.Labels); a < 0.95 {
		t.Errorf("Spectral ARI = %v", a)
	}
}

func TestFacadeSubspacePipeline(t *testing.T) {
	// CLIQUE candidates -> OSCLU selection, through the facade only.
	ds, truth, err := SubspaceData(1, 200, 6, []SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.08},
		{Dims: []int{3, 4}, Size: 50, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Clique(ds.Points, CliqueConfig{Xi: 10, Tau: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Osclu(cl.Clusters, OscluConfig{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) >= len(cl.Clusters) && len(cl.Clusters) > 2 {
		t.Errorf("OSCLU should shrink the result: %d -> %d", len(cl.Clusters), len(sel))
	}
	if f1 := SubspaceF1(truth, sel); f1 < 0.7 {
		t.Errorf("selected F1 = %v", f1)
	}
}

func TestFacadeCSVAndTaxonomy(t *testing.T) {
	var buf bytes.Buffer
	ds := NewDataset([][]float64{{1, 2}, {3, 4}})
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 {
		t.Error("csv round trip failed")
	}

	if len(Taxonomy()) < 20 {
		t.Error("taxonomy incomplete")
	}
	var tb strings.Builder
	if err := WriteTaxonomyTable(&tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "COALA") {
		t.Error("taxonomy table missing entries")
	}
}

func TestFacadeMultiView(t *testing.T) {
	a, b, labels := TwoSourceViews(5, 150, 2, 2, 2, 0.4, 0)
	co, err := CoEM(a.Points, b.Points, CoEMConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := AdjustedRand(labels, co.Clustering.Labels); ari < 0.9 {
		t.Errorf("CoEM ARI = %v", ari)
	}
	mv, err := MVDBSCAN([][][]float64{a.Points, b.Points}, MVDBSCANConfig{
		Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: Intersection,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(labels, mv.Labels); p < 0.9 {
		t.Errorf("MVDBSCAN purity = %v", p)
	}
	cons, err := CSPA([][]int{labels, labels}, ConsensusConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if SharedNMI(cons.Labels, [][]int{labels}) < 0.99 {
		t.Error("CSPA consensus of identical inputs should match them")
	}
}
