# multiclust build/test/benchmark entry points. Stdlib-only; any Go >= 1.22.

GO ?= go

.PHONY: all build vet test race cover bench experiments examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One benchmark per regenerated figure/table plus scalability micro-benches.
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every experiment table (see DESIGN.md / EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customer
	$(GO) run ./examples/sensor
	$(GO) run ./examples/genes
	$(GO) run ./examples/text

# Short fuzz sessions over the parsing and metric surfaces.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzComparisonMeasures -fuzztime=30s ./internal/metrics/

clean:
	$(GO) clean -testcache
