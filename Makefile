# multiclust build/test/benchmark entry points. Stdlib-only; any Go >= 1.22.

GO ?= go

.PHONY: all build vet lint lint-json lint-sarif lint-fix test race cover bench bench-json bench-baseline experiments examples fuzz fuzz-smoke chaos chaos-serve stream-chaos logs-check ci clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Determinism & parallel-safety static analysis (see internal/lint and
# DESIGN.md "Determinism invariants"). Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/multiclust-lint ./...

# Machine-readable findings artifact (findings + suggested edits). The
# leading dash keeps the artifact even when findings make the run exit 1.
lint-json:
	-$(GO) run ./cmd/multiclust-lint -json ./... > lint-findings.json

# SARIF 2.1.0 artifact for GitHub code scanning upload.
lint-sarif:
	-$(GO) run ./cmd/multiclust-lint -sarif ./... > lint-findings.sarif

# Apply the mechanical fixes (ctx forwarding, sorted-keys idiom) in place.
# Refuses on a dirty worktree; -force overrides.
lint-fix:
	$(GO) run ./cmd/multiclust-lint -fix ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package coverage plus an aggregate per-function summary line.
cover:
	$(GO) test -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -n 1

# One benchmark per regenerated figure/table plus scalability micro-benches.
# -run='^$$' skips the unit tests so only benchmarks execute.
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# Canonical paradigm workload suite -> BENCH_<stamp>.json, gated against
# the committed baseline. Timings get a loose gate (they are noisy on
# shared runners); the deterministic work counters get the strict one.
bench-json:
	$(GO) run ./cmd/multiclust-bench -quick -baseline BENCH_baseline.json -threshold 200 -counter-threshold 10 -assert-le "coala/w4<=coala/w1" -assert-le "minibatch/w4<=minibatch/w1"

# Refresh the committed baseline after an intentional performance change.
bench-baseline:
	$(GO) run ./cmd/multiclust-bench -quick -stamp baseline -out BENCH_baseline.json

# Regenerate every experiment table (see DESIGN.md / EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/customer
	$(GO) run ./examples/sensor
	$(GO) run ./examples/genes
	$(GO) run ./examples/text

# Short fuzz sessions over the parsing and metric surfaces.
fuzz:
	$(GO) test -fuzz=FuzzReadCSV -fuzztime=30s ./internal/dataset/
	$(GO) test -fuzz=FuzzComparisonMeasures -fuzztime=30s ./internal/metrics/

# 10-second smoke fuzz, the same step CI runs on every push.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=10s ./internal/dataset/
	$(GO) test -run='^$$' -fuzz=FuzzComparisonMeasures -fuzztime=10s ./internal/metrics/

# Fault-injection property suite under the race detector: seeded corrupters
# (internal/robust/chaos) against every facade algorithm, plus the
# cancellation and validation-gate contracts. The timeout bounds any single
# hang so a wedged iteration fails fast instead of stalling CI.
chaos:
	$(GO) test -race -timeout 120s -run 'TestChaos|TestCancelled|TestValidationGates|TestRobustness' .
	$(GO) test -race -timeout 120s ./internal/robust/...

# Service-layer fault injection under the race detector: the job engine's
# property suite (panic containment, exactly-one terminal state, 429-iff-full
# backpressure, lossless drain), the public serve facade, and the real-binary
# SIGTERM drain integration test.
chaos-serve:
	$(GO) test -race -timeout 180s ./internal/jobs/... ./serve/...
	$(GO) test -race -timeout 180s -run 'TestServe' ./cmd/multiclust/

# Streaming fault injection under the race detector: chunk appends racing
# cancels and a graceful drain against the fault-handle fleet, plus the
# chunked-replay determinism harness at workers 1/2/4/8.
stream-chaos:
	$(GO) test -race -timeout 180s -run 'TestStreamProperty' ./internal/jobs/chaos/
	$(GO) test -race -timeout 180s ./internal/stream/...

# Structured-log schema contract: every JSONL line the logger emits — the
# middleware's http.request access lines and the engine's job.state
# transition lines — must validate against obs.ValidateLogLine. Run after
# any change to the log fields so dashboards parsing the stream never
# break silently.
logs-check:
	$(GO) test -run 'TestLogSchema' -count=1 ./internal/obs/ ./internal/ops/ ./internal/jobs/

# Everything the GitHub Actions workflow runs, locally.
ci: build vet test race lint fuzz-smoke chaos chaos-serve stream-chaos logs-check cover bench-json

clean:
	$(GO) clean -testcache
	rm -f coverage.out lint-findings.json lint-findings.sarif
