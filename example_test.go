package multiclust_test

import (
	"fmt"
	"strings"

	"multiclust"
)

// The slide-26 scenario: a dataset with two equally valid 2-partitions and
// an alternative-clustering method that, given one, returns the other.
func ExampleCoala() {
	ds, horizontal, vertical := multiclust.FourBlobToy(1, 25)
	given := multiclust.NewClustering(horizontal)
	alt, err := multiclust.Coala(ds.Points, given, multiclust.CoalaConfig{K: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("vs given: %.2f\n", multiclust.AdjustedRand(horizontal, alt.Clustering.Labels))
	fmt.Printf("vs hidden: %.2f\n", multiclust.AdjustedRand(vertical, alt.Clustering.Labels))
	// Output:
	// vs given: -0.01
	// vs hidden: 1.00
}

// Simultaneous discovery with no prior knowledge: decorrelated k-means
// returns both hidden views in one run.
func ExampleDecKMeans() {
	ds, _, _ := multiclust.FourBlobToy(1, 25)
	res, err := multiclust.DecKMeans(ds.Points, multiclust.DecKMeansConfig{Ks: []int{2, 2}, Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("solutions: %d\n", len(res.Clusterings))
	fmt.Printf("NMI between them: %.2f\n",
		multiclust.NMI(res.Clusterings[0].Labels, res.Clusterings[1].Labels))
	// Output:
	// solutions: 2
	// NMI between them: 0.00
}

// Subspace clustering: CLIQUE finds every dense subspace region, OSCLU
// keeps one cluster per orthogonal concept.
func ExampleClique() {
	ds, _, err := multiclust.SubspaceData(1, 200, 6, []multiclust.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.08},
		{Dims: []int{3, 4}, Size: 50, Width: 0.08},
	})
	if err != nil {
		panic(err)
	}
	all, err := multiclust.Clique(ds.Points, multiclust.CliqueConfig{Xi: 10, Tau: 0.12})
	if err != nil {
		panic(err)
	}
	selected, err := multiclust.Osclu(all.Clusters, multiclust.OscluConfig{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("candidates: %d, selected: %d\n", len(all.Clusters), len(selected))
	fmt.Printf("top concept dims: %v\n", selected[0].Dims)
	// Output:
	// candidates: 13, selected: 7
	// top concept dims: [3 4]
}

// Multi-source clustering: co-EM bootstraps two views of the same objects.
func ExampleCoEM() {
	viewA, viewB, truth := multiclust.TwoSourceViews(1, 240, 3, 2, 2, 0.4, 0)
	res, err := multiclust.CoEM(viewA.Points, viewB.Points, multiclust.CoEMConfig{K: 3, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Printf("consensus ARI: %.2f\n", multiclust.AdjustedRand(truth, res.Clustering.Labels))
	// Output:
	// consensus ARI: 1.00
}

// The survey's comparison table, regenerated from algorithm metadata.
func ExampleWriteTaxonomyTable() {
	var table strings.Builder
	if err := multiclust.WriteTaxonomyTable(&table); err != nil {
		panic(err)
	}
	fmt.Println("algorithms:", len(multiclust.Taxonomy()))
	fmt.Println("has COALA row:", strings.Contains(table.String(), "COALA"))
	// Output:
	// algorithms: 36
	// has COALA row: true
}
