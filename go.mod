module multiclust

go 1.22
