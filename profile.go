package multiclust

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins capturing a CPU profile to path and returns the
// function that stops the capture and closes the file. Samples taken
// while an obs span is open (any instrumented algorithm, or an
// application span from StartSpan) carry "algo" and "phase" pprof
// labels, so `go tool pprof -tagfocus` can attribute time per algorithm
// phase. Only one CPU profile can be active per process; a second call
// before stop errors.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("multiclust: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("multiclust: cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("multiclust: cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile captures a heap profile to path, running a GC first
// so the profile reflects live objects rather than garbage awaiting
// collection.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("multiclust: heap profile: %w", err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return fmt.Errorf("multiclust: heap profile: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("multiclust: heap profile: %w", err)
	}
	return nil
}
