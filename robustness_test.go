package multiclust

import (
	"errors"
	"math"
	"testing"
)

// Degenerate inputs every algorithm must survive without panicking: all
// points identical, a constant dimension, and a bare-minimum object count.
func degenerateDatasets() map[string][][]float64 {
	dup := make([][]float64, 12)
	for i := range dup {
		dup[i] = []float64{1, 2, 3}
	}
	constDim := make([][]float64, 12)
	for i := range constDim {
		constDim[i] = []float64{float64(i), 5, float64(i % 3)}
	}
	tiny := [][]float64{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}}
	nanRow := make([][]float64, 12)
	for i := range nanRow {
		nanRow[i] = []float64{float64(i), float64(i % 4), 1}
	}
	nanRow[5] = []float64{math.NaN(), math.NaN(), math.NaN()}
	infSpike := make([][]float64, 12)
	for i := range infSpike {
		infSpike[i] = []float64{float64(i), float64(i % 4), 1}
	}
	infSpike[7][1] = math.Inf(1)
	single := [][]float64{{1, 2, 3}}
	return map[string][][]float64{
		"duplicates":  dup,
		"constDim":    constDim,
		"tiny":        tiny,
		"nanRow":      nanRow,
		"infSpike":    infSpike,
		"singlePoint": single,
	}
}

// TestRobustnessTypedRejections pins the gate semantics on the
// contaminated entries of the degenerate matrix: every algorithm family
// rejects them with an error wrapping ErrInvalidInput, never a panic and
// never a silent NaN result.
func TestRobustnessTypedRejections(t *testing.T) {
	all := degenerateDatasets()
	for _, dsName := range []string{"nanRow", "infSpike"} {
		pts := all[dsName]
		given := NewClustering(make([]int, len(pts)))
		t.Run(dsName, func(t *testing.T) {
			calls := map[string]func() error{
				"kmeans":     func() error { _, err := KMeans(pts, KMeansConfig{K: 2, Seed: 1}); return err },
				"dbscan":     func() error { _, err := DBSCAN(pts, DBSCANConfig{Eps: 0.5, MinPts: 2}); return err },
				"em":         func() error { _, err := EM(pts, EMConfig{K: 2, Seed: 1}); return err },
				"spectral":   func() error { _, err := Spectral(pts, SpectralConfig{K: 2, Seed: 1}); return err },
				"hier":       func() error { _, err := Hierarchical(pts, AverageLink); return err },
				"metaclust":  func() error { _, err := MetaClustering(pts, MetaClusteringConfig{K: 2, Seed: 1}); return err },
				"coala":      func() error { _, err := Coala(pts, given, CoalaConfig{K: 2}); return err },
				"proclus":    func() error { _, err := Proclus(pts, ProclusConfig{K: 2, L: 2, Seed: 1}); return err },
				"clique":     func() error { _, err := Clique(pts, CliqueConfig{Xi: 4, Tau: 0.2}); return err },
				"coem":       func() error { _, err := CoEM(pts, pts, CoEMConfig{K: 2, Seed: 1}); return err },
				"rpensemble": func() error { _, err := RandomProjectionEnsemble(pts, RandomProjectionEnsembleConfig{K: 2, Runs: 2, Seed: 1}); return err },
			}
			for name, call := range calls {
				err := call()
				if err == nil {
					t.Errorf("%s accepted %s", name, dsName)
					continue
				}
				if !errors.Is(err, ErrInvalidInput) {
					t.Errorf("%s on %s: err = %v, want wrap of ErrInvalidInput", name, dsName, err)
				}
			}
		})
	}
	// A single point is valid data: algorithms must either cluster it or
	// fail with a typed configuration error, not panic.
	single := all["singlePoint"]
	if res, err := KMeans(single, KMeansConfig{K: 1, Seed: 1}); err != nil {
		t.Errorf("kmeans on single point: %v", err)
	} else {
		checkClustering(t, "kmeans-single", res.Clustering, 1)
	}
	if _, err := KMeans(single, KMeansConfig{K: 2, Seed: 1}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("kmeans K=2 on single point: err = %v, want ErrInvalidInput", err)
	}
}

// checkClustering asserts a structurally valid result: correct length,
// labels either Noise or within a sane range, no NaN contamination implied.
func checkClustering(t *testing.T, name string, c *Clustering, n int) {
	t.Helper()
	if c == nil {
		t.Fatalf("%s: nil clustering", name)
	}
	if err := c.Validate(n); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i, l := range c.Labels {
		if l < Noise || l > n {
			t.Fatalf("%s: label[%d] = %d out of range", name, i, l)
		}
	}
}

func TestRobustnessBaseLearners(t *testing.T) {
	for dsName, pts := range degenerateDatasets() {
		n := len(pts)
		t.Run(dsName, func(t *testing.T) {
			if res, err := KMeans(pts, KMeansConfig{K: 2, Seed: 1}); err == nil {
				checkClustering(t, "kmeans", res.Clustering, n)
				if math.IsNaN(res.SSE) {
					t.Error("kmeans SSE NaN")
				}
			}
			if c, err := DBSCAN(pts, DBSCANConfig{Eps: 0.5, MinPts: 2}); err == nil {
				checkClustering(t, "dbscan", c, n)
			}
			if dg, err := Hierarchical(pts, AverageLink); err == nil {
				if c, err := dg.Cut(2); err == nil {
					checkClustering(t, "hierarchical", c, n)
				}
			}
			if res, err := EM(pts, EMConfig{K: 2, Seed: 1}); err == nil {
				checkClustering(t, "em", res.Clustering, n)
				if math.IsNaN(res.LogLik) {
					t.Error("EM log-likelihood NaN")
				}
			}
			if res, err := Spectral(pts, SpectralConfig{K: 2, Seed: 1}); err == nil {
				checkClustering(t, "spectral", res.Clustering, n)
			}
		})
	}
}

func TestRobustnessAlternativePipelines(t *testing.T) {
	for dsName, pts := range degenerateDatasets() {
		n := len(pts)
		given := make([]int, n)
		for i := range given {
			given[i] = i % 2
		}
		g := NewClustering(given)
		t.Run(dsName, func(t *testing.T) {
			if res, err := Coala(pts, g, CoalaConfig{K: 2}); err == nil {
				checkClustering(t, "coala", res.Clustering, n)
			}
			if res, err := CIB(pts, g, CIBConfig{K: 2, Seed: 1, MaxIter: 20, Restarts: 2}); err == nil {
				checkClustering(t, "cib", res.Clustering, n)
			}
			if res, err := MinCEntropy(pts, []*Clustering{g}, MinCEntropyConfig{K: 2, Seed: 1, MaxIter: 5, Restarts: 1}); err == nil {
				checkClustering(t, "mincentropy", res.Clustering, n)
			}
			if res, err := CondEns(pts, g, CondEnsConfig{K: 2, NumSolutions: 5, Seed: 1}); err == nil {
				checkClustering(t, "condens", res.Clustering, n)
			}
			if res, err := DecKMeans(pts, DecKMeansConfig{Ks: []int{2, 2}, Seed: 1, Restarts: 2, MaxIter: 20}); err == nil {
				for _, c := range res.Clusterings {
					checkClustering(t, "deckmeans", c, n)
				}
				if math.IsNaN(res.Objective) {
					t.Error("deckmeans objective NaN")
				}
			}
			if res, err := CAMI(pts, CAMIConfig{K1: 2, K2: 2, Mu: 2, Seed: 1, Restarts: 2, MaxIter: 20}); err == nil {
				checkClustering(t, "cami1", res.Clustering1, n)
				checkClustering(t, "cami2", res.Clustering2, n)
				if math.IsNaN(res.MutualInfo) {
					t.Error("cami MI NaN")
				}
			}
			// Transformation methods need non-singular scatter; errors are
			// acceptable on degenerate data, panics are not.
			if res, err := MetricFlip(pts, g, KMeansBase(2, 1)); err == nil {
				checkClustering(t, "metricflip", res.Clustering, n)
			}
			if res, err := AlternativeTransform(pts, g, KMeansBase(2, 1)); err == nil {
				checkClustering(t, "alttransform", res.Clustering, n)
			}
			if iters, err := OrthogonalProjections(pts, KMeansBase(2, 1), OrthogonalProjectionsConfig{MaxClusterings: 2}); err == nil {
				for _, it := range iters {
					checkClustering(t, "orthproj", it.Clustering, n)
				}
			}
		})
	}
}

func TestRobustnessSubspace(t *testing.T) {
	for dsName, pts := range degenerateDatasets() {
		t.Run(dsName, func(t *testing.T) {
			if res, err := Clique(pts, CliqueConfig{Xi: 4, Tau: 0.2}); err == nil {
				for _, c := range res.Clusters {
					if c.Size() == 0 || c.Dimensionality() == 0 {
						t.Error("clique produced an empty cluster")
					}
				}
			}
			if res, err := Schism(pts, SchismConfig{Xi: 4, Tau: 0.05}); err == nil {
				_ = res
			}
			if res, err := Subclu(pts, SubcluConfig{Eps: 0.5, MinPts: 2, MaxDim: 2}); err == nil {
				_ = res
			}
			if res, err := Proclus(pts, ProclusConfig{K: 2, L: 2, Seed: 1}); err == nil {
				checkClustering(t, "proclus", res.Assignment, len(pts))
			}
			if res, err := Orclus(pts, OrclusConfig{K: 2, L: 1, Seed: 1}); err == nil {
				checkClustering(t, "orclus", res.Assignment, len(pts))
				if math.IsNaN(res.Energy) {
					t.Error("orclus energy NaN")
				}
			}
			if res, err := DOC(pts, DOCConfig{W: 0.5, Seed: 1, MaxClusters: 2}); err == nil {
				_ = res
			}
			if res, err := MineClus(pts, MineClusConfig{W: 0.5, Seed: 1, MaxClusters: 2}); err == nil {
				_ = res
			}
			if res, err := Predecon(pts, PredeconConfig{Eps: 0.5, MinPts: 2, Delta: 0.1}); err == nil {
				checkClustering(t, "predecon", res.Assignment, len(pts))
			}
			if scores, err := Enclus(pts, EnclusConfig{Xi: 4, MaxEntropy: 16, MaxDim: 2}); err == nil {
				for _, s := range scores {
					if math.IsNaN(s.Entropy) {
						t.Error("enclus entropy NaN")
					}
				}
			}
		})
	}
}

func TestRobustnessMultiView(t *testing.T) {
	for dsName, pts := range degenerateDatasets() {
		n := len(pts)
		t.Run(dsName, func(t *testing.T) {
			if res, err := CoEM(pts, pts, CoEMConfig{K: 2, Seed: 1, MaxIter: 10}); err == nil {
				checkClustering(t, "coem", res.Clustering, n)
			}
			if c, err := MVDBSCAN([][][]float64{pts, pts}, MVDBSCANConfig{
				Eps: []float64{0.5, 0.5}, MinPts: 2, Mode: Union,
			}); err == nil {
				checkClustering(t, "mvdbscan", c, n)
			}
			if c, err := TwoViewSpectral(pts, pts, 2, 1); err == nil {
				checkClustering(t, "twoview", c, n)
			}
			if views, err := MSC(pts, MSCConfig{K: 2, Views: 2, DimsPer: 1, Seed: 1}); err == nil {
				for _, v := range views {
					checkClustering(t, "msc", v.Clustering, n)
				}
			}
			if res, err := RandomProjectionEnsemble(pts, RandomProjectionEnsembleConfig{K: 2, Runs: 3, Seed: 1}); err == nil {
				checkClustering(t, "rpensemble", res.Consensus, n)
			}
		})
	}
}

// TestRobustnessMetricsDegenerate pins metric behaviour on degenerate
// labelings rather than leaving it implementation-defined.
func TestRobustnessMetricsDegenerate(t *testing.T) {
	allNoise := []int{Noise, Noise, Noise}
	plain := []int{0, 1, 2}
	if got := RandIndex(allNoise, plain); got != 1 {
		t.Errorf("Rand with no comparable pairs = %v, want vacuous 1", got)
	}
	if got := NMI(allNoise, plain); got != 1 {
		// Both labelings restricted to comparable objects are empty/trivial.
		t.Errorf("NMI on all-noise = %v", got)
	}
	if got := Purity(plain, allNoise); got != 0 {
		t.Errorf("Purity of all-noise = %v", got)
	}
	pts := [][]float64{{0}, {0}, {0}}
	if got := Silhouette(pts, NewClustering([]int{0, 0, 0})); got != 0 {
		t.Errorf("silhouette of single cluster = %v", got)
	}
	if got := SSE(pts, NewClustering(allNoise)); got != 0 {
		t.Errorf("SSE of all-noise = %v", got)
	}
}
