package multiclust_test

// One benchmark per regenerated figure/table of the tutorial (see DESIGN.md
// for the experiment index and EXPERIMENTS.md for paper-vs-measured), plus
// micro-benchmarks of the core algorithms for scalability tables.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"testing"

	"multiclust"
	"multiclust/internal/dist"
	"multiclust/internal/experiments"
	"multiclust/internal/kmeans"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE01ToyAlternatives(b *testing.B)  { benchExperiment(b, "E01") }
func BenchmarkE02CoalaTradeoff(b *testing.B)    { benchExperiment(b, "E02") }
func BenchmarkE03DecKMeans(b *testing.B)        { benchExperiment(b, "E03") }
func BenchmarkE04CAMI(b *testing.B)             { benchExperiment(b, "E04") }
func BenchmarkE05Contingency(b *testing.B)      { benchExperiment(b, "E05") }
func BenchmarkE06MetricFlip(b *testing.B)       { benchExperiment(b, "E06") }
func BenchmarkE07QiDavidson(b *testing.B)       { benchExperiment(b, "E07") }
func BenchmarkE08CuiOrthogonal(b *testing.B)    { benchExperiment(b, "E08") }
func BenchmarkE09Curse(b *testing.B)            { benchExperiment(b, "E09") }
func BenchmarkE10Clique(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11Schism(b *testing.B)           { benchExperiment(b, "E11") }
func BenchmarkE12Subclu(b *testing.B)           { benchExperiment(b, "E12") }
func BenchmarkE13Redundancy(b *testing.B)       { benchExperiment(b, "E13") }
func BenchmarkE14Osclu(b *testing.B)            { benchExperiment(b, "E14") }
func BenchmarkE15Asclu(b *testing.B)            { benchExperiment(b, "E15") }
func BenchmarkE16Enclus(b *testing.B)           { benchExperiment(b, "E16") }
func BenchmarkE17MSC(b *testing.B)              { benchExperiment(b, "E17") }
func BenchmarkE18CoEM(b *testing.B)             { benchExperiment(b, "E18") }
func BenchmarkE19MVDBSCAN(b *testing.B)         { benchExperiment(b, "E19") }
func BenchmarkE20Consensus(b *testing.B)        { benchExperiment(b, "E20") }
func BenchmarkE21Meta(b *testing.B)             { benchExperiment(b, "E21") }
func BenchmarkT1Taxonomy(b *testing.B)          { benchExperiment(b, "T1") }
func BenchmarkT2ParadigmSummary(b *testing.B)   { benchExperiment(b, "T2") }
func BenchmarkA1DecKMeansRestarts(b *testing.B) { benchExperiment(b, "A1") }
func BenchmarkA2CIBRestarts(b *testing.B)       { benchExperiment(b, "A2") }
func BenchmarkA3EnsembleSize(b *testing.B)      { benchExperiment(b, "A3") }
func BenchmarkA4GridResolution(b *testing.B)    { benchExperiment(b, "A4") }
func BenchmarkA5ExchangeableDefs(b *testing.B)  { benchExperiment(b, "A5") }
func BenchmarkA6OrientedVsAxis(b *testing.B)    { benchExperiment(b, "A6") }
func BenchmarkA7UniversesVsMerged(b *testing.B) { benchExperiment(b, "A7") }

// --- scalability micro-benchmarks (runtime-vs-n and runtime-vs-d tables) ---

func blobs(n, d int) [][]float64 {
	centers := make([][]float64, 3)
	for c := range centers {
		row := make([]float64, d)
		for j := range row {
			row[j] = float64(((c + j) % 3) * 6)
		}
		centers[c] = row
	}
	ds, _ := multiclust.GaussianBlobs(1, n, centers, 0.5)
	return ds.Points
}

func BenchmarkKMeans(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		pts := blobs(n, 8)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multiclust.KMeans(pts, multiclust.KMeansConfig{K: 3, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDBSCAN(b *testing.B) {
	for _, n := range []int{100, 400} {
		pts := blobs(n, 4)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multiclust.DBSCAN(pts, multiclust.DBSCANConfig{Eps: 1.5, MinPts: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEMFit(b *testing.B) {
	pts := blobs(400, 6)
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.EM(pts, multiclust.EMConfig{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpectral(b *testing.B) {
	pts := blobs(150, 4)
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.Spectral(pts, multiclust.SpectralConfig{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoala(b *testing.B) {
	ds, hor, _ := multiclust.FourBlobToy(1, 25)
	given := multiclust.NewClustering(hor)
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.Coala(ds.Points, given, multiclust.CoalaConfig{K: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecKMeans(b *testing.B) {
	ds, _, _ := multiclust.FourBlobToy(1, 50)
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.DecKMeans(ds.Points, multiclust.DecKMeansConfig{Ks: []int{2, 2}, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCliqueDims(b *testing.B) {
	for _, d := range []int{6, 10, 14} {
		ds, _, err := multiclust.SubspaceData(1, 300, d, []multiclust.SubspaceSpec{
			{Dims: []int{0, 1}, Size: 90, Width: 0.08},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := multiclust.Clique(ds.Points, multiclust.CliqueConfig{Xi: 10, Tau: 0.12}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSubclu(b *testing.B) {
	ds, _, err := multiclust.SubspaceData(1, 200, 6, []multiclust.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.06},
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.Subclu(ds.Points, multiclust.SubcluConfig{Eps: 0.05, MinPts: 6, MaxDim: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoEM(b *testing.B) {
	va, vb, _ := multiclust.TwoSourceViews(1, 200, 3, 2, 2, 0.5, 0)
	for i := 0; i < b.N; i++ {
		if _, err := multiclust.CoEM(va.Points, vb.Points, multiclust.CoEMConfig{K: 3, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetricsARI(b *testing.B) {
	_, hor, ver := multiclust.FourBlobToy(1, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multiclust.AdjustedRand(hor, ver)
	}
}

func BenchmarkMetricsNMI(b *testing.B) {
	_, hor, ver := multiclust.FourBlobToy(1, 250)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		multiclust.NMI(hor, ver)
	}
}

// --- worker-scaling micro-benchmarks (serial vs parallel hot paths) ---

func BenchmarkPairwiseMatrix(b *testing.B) {
	pts := blobs(800, 16)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dist.PairwiseMatrixWorkers(pts, dist.Euclidean, w)
			}
		})
	}
}

func BenchmarkKMeansRestarts(b *testing.B) {
	pts := blobs(1000, 8)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kmeans.Run(pts, kmeans.Config{K: 3, Seed: 1, Restarts: 8, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDBSCANWorkers(b *testing.B) {
	pts := blobs(600, 4)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			multiclust.SetWorkers(w)
			defer multiclust.SetWorkers(0)
			for i := 0; i < b.N; i++ {
				if _, err := multiclust.DBSCAN(pts, multiclust.DBSCANConfig{Eps: 1.5, MinPts: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRandomProjectionEnsembleWorkers(b *testing.B) {
	pts := blobs(300, 10)
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := multiclust.RandomProjectionEnsembleConfig{K: 3, Runs: 8, Seed: 1}
			cfg.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := multiclust.RandomProjectionEnsemble(pts, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
