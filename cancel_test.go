package multiclust

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func cancelTestPoints(t *testing.T) [][]float64 {
	t.Helper()
	centers := [][]float64{{0, 0, 0}, {6, 6, 0}, {0, 6, 6}}
	ds, _ := GaussianBlobs(7, 90, centers, 0.6)
	return ds.Points
}

// TestCancelledContextInterrupted verifies the cancellation contract on
// every ...Context variant: an already-cancelled context returns within one
// iteration boundary with an error wrapping ErrInterrupted and a
// structurally valid best-so-far result.
func TestCancelledContextInterrupted(t *testing.T) {
	pts := cancelTestPoints(t)
	n := len(pts)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	t.Run("kmeans", func(t *testing.T) {
		res, err := KMeansContext(ctx, pts, KMeansConfig{K: 3, Seed: 1, Restarts: 2})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		checkClustering(t, "kmeans", res.Clustering, n)
	})
	t.Run("em", func(t *testing.T) {
		res, err := EMContext(ctx, pts, EMConfig{K: 3, Seed: 1})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		checkClustering(t, "em", res.Clustering, n)
	})
	t.Run("spectral", func(t *testing.T) {
		res, err := SpectralContext(ctx, pts, SpectralConfig{K: 3, Seed: 1})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		checkClustering(t, "spectral", res.Clustering, n)
	})
	t.Run("metaclustering", func(t *testing.T) {
		res, err := MetaClusteringContext(ctx, pts, MetaClusteringConfig{K: 3, NumSolutions: 4, Seed: 1})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		for _, c := range res.Representatives {
			checkClustering(t, "metaclustering", c, n)
		}
	})
	t.Run("dbscan", func(t *testing.T) {
		res, err := DBSCANContext(ctx, pts, DBSCANConfig{Eps: 1.0, MinPts: 3})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		checkClustering(t, "dbscan", res, n)
	})
	t.Run("proclus", func(t *testing.T) {
		res, err := ProclusContext(ctx, pts, ProclusConfig{K: 3, L: 2, Seed: 1})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		checkClustering(t, "proclus", res.Assignment, n)
	})
	t.Run("orclus", func(t *testing.T) {
		res, err := OrclusContext(ctx, pts, OrclusConfig{K: 3, L: 2, Seed: 1})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
		checkClustering(t, "orclus", res.Assignment, n)
	})
	t.Run("doc", func(t *testing.T) {
		res, err := DOCContext(ctx, pts, DOCConfig{W: 1.0, Seed: 1, MaxClusters: 3})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
	})
	t.Run("mineclus", func(t *testing.T) {
		res, err := MineClusContext(ctx, pts, MineClusConfig{W: 1.0, Seed: 1, MaxClusters: 3})
		if !errors.Is(err, ErrInterrupted) {
			t.Fatalf("err = %v, want ErrInterrupted", err)
		}
		if res == nil {
			t.Fatal("nil best-so-far result")
		}
	})
}

// TestContextBackgroundIdentical pins the determinism contract: a Context
// variant under context.Background() is byte-identical to the plain call.
func TestContextBackgroundIdentical(t *testing.T) {
	pts := cancelTestPoints(t)
	bg := context.Background()

	plain, err := KMeans(pts, KMeansConfig{K: 3, Seed: 5, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := KMeansContext(bg, pts, KMeansConfig{K: 3, Seed: 5, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if plain.SSE != ctxed.SSE {
		t.Errorf("SSE %v != %v", plain.SSE, ctxed.SSE)
	}
	for i := range plain.Clustering.Labels {
		if plain.Clustering.Labels[i] != ctxed.Clustering.Labels[i] {
			t.Fatalf("label[%d] differs", i)
		}
	}

	emPlain, err := EM(pts, EMConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	emCtx, err := EMContext(bg, pts, EMConfig{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if emPlain.LogLik != emCtx.LogLik {
		t.Errorf("LogLik %v != %v", emPlain.LogLik, emCtx.LogLik)
	}
}

// TestValidationGates verifies the facade rejects contaminated or
// mis-shaped input with typed errors before any algorithm runs.
func TestValidationGates(t *testing.T) {
	nan := [][]float64{{1, 2}, {3, nanValue()}}
	ragged := [][]float64{{1, 2}, {3}}
	var empty [][]float64

	if _, err := KMeans(nan, KMeansConfig{K: 2}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("KMeans(NaN) err = %v, want ErrInvalidInput", err)
	}
	if _, err := KMeans(ragged, KMeansConfig{K: 2}); !errors.Is(err, ErrShape) {
		t.Errorf("KMeans(ragged) err = %v, want ErrShape", err)
	}
	if _, err := KMeans(empty, KMeansConfig{K: 2}); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("KMeans(empty) err = %v, want ErrEmptyDataset", err)
	}
	// Positional detail is part of the contract.
	if _, err := EM(nan, EMConfig{K: 2}); err == nil || !strings.Contains(err.Error(), "row 1 col 1") {
		t.Errorf("EM(NaN) err = %v, want position row 1 col 1", err)
	}
	// Label gates.
	ok := [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	if _, err := Coala(ok, nil, CoalaConfig{K: 2}); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("Coala(nil given) err = %v, want ErrInvalidInput", err)
	}
	short := NewClustering([]int{0, 1})
	if _, err := Coala(ok, short, CoalaConfig{K: 2}); !errors.Is(err, ErrShape) {
		t.Errorf("Coala(short given) err = %v, want ErrShape", err)
	}
	// View gates.
	if _, err := CoEM(ok, ok[:2], CoEMConfig{K: 2}); !errors.Is(err, ErrShape) {
		t.Errorf("CoEM(mismatched views) err = %v, want ErrShape", err)
	}
	if _, err := HSIC(ok, nan); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("HSIC(NaN view) err = %v, want ErrInvalidInput", err)
	}
	// Labeling gates.
	if _, err := CSPA([][]int{{0, 1, 0}, {0, 1}}, ConsensusConfig{K: 2}); !errors.Is(err, ErrShape) {
		t.Errorf("CSPA(ragged labelings) err = %v, want ErrShape", err)
	}
}

func nanValue() float64 {
	zero := 0.0
	return zero / zero
}
