package stats

import (
	"errors"
	"math"

	"multiclust/internal/linalg"
)

const log2Pi = 1.8378770664093453 // log(2*pi)

// Gaussian is a multivariate normal distribution with full covariance.
type Gaussian struct {
	Mean []float64
	Cov  *linalg.Matrix
	chol *linalg.Cholesky
}

// NewGaussian builds a Gaussian and factorizes its covariance. The covariance
// is regularized by reg on the diagonal before factorization; pass 0 to use
// it as-is.
func NewGaussian(mean []float64, cov *linalg.Matrix, reg float64) (*Gaussian, error) {
	if cov.Rows != len(mean) || cov.Cols != len(mean) {
		return nil, errors.New("stats: Gaussian covariance shape mismatch")
	}
	c := cov.Clone()
	if reg > 0 {
		linalg.RegularizeInPlace(c, reg)
	}
	ch, err := linalg.CholeskyDecompose(c)
	if err != nil {
		return nil, err
	}
	return &Gaussian{Mean: append([]float64(nil), mean...), Cov: c, chol: ch}, nil
}

// LogPDF returns the log density at x.
func (g *Gaussian) LogPDF(x []float64) float64 {
	d := len(g.Mean)
	diff := make([]float64, d)
	for i := range diff {
		diff[i] = x[i] - g.Mean[i]
	}
	quad := g.chol.QuadForm(diff)
	return -0.5 * (float64(d)*log2Pi + g.chol.LogDet() + quad)
}

// PDF returns the density at x.
func (g *Gaussian) PDF(x []float64) float64 { return math.Exp(g.LogPDF(x)) }

// Mahalanobis returns the Mahalanobis distance from x to the mean.
func (g *Gaussian) Mahalanobis(x []float64) float64 {
	d := len(g.Mean)
	diff := make([]float64, d)
	for i := range diff {
		diff[i] = x[i] - g.Mean[i]
	}
	return math.Sqrt(g.chol.QuadForm(diff))
}

// KLGaussians returns KL(p||q) in nats for two Gaussians of equal dimension:
//
//	0.5 * ( tr(Σq^{-1}Σp) + (μq-μp)^T Σq^{-1} (μq-μp) - d + ln(detΣq/detΣp) )
func KLGaussians(p, q *Gaussian) float64 {
	d := len(p.Mean)
	qinv, err := linalg.Inverse(q.Cov)
	if err != nil {
		return math.Inf(1)
	}
	tr := qinv.Mul(p.Cov).Trace()
	diff := make([]float64, d)
	for i := range diff {
		diff[i] = q.Mean[i] - p.Mean[i]
	}
	quad := linalg.Dot(diff, qinv.MulVec(diff))
	logdet := q.chol.LogDet() - p.chol.LogDet()
	kl := 0.5 * (tr + quad - float64(d) + logdet)
	if kl < 0 {
		kl = 0
	}
	return kl
}

// DiagGaussianLogPDF returns the log density of a diagonal-covariance
// Gaussian with per-dimension variances vars (clamped below at minVar).
func DiagGaussianLogPDF(x, mean, vars []float64, minVar float64) float64 {
	var lp float64
	for i := range x {
		v := vars[i]
		if v < minVar {
			v = minVar
		}
		diff := x[i] - mean[i]
		lp += -0.5 * (log2Pi + math.Log(v) + diff*diff/v)
	}
	return lp
}

// LogSumExp returns log(sum(exp(xs))) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, v := range xs {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}
