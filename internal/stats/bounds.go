package stats

import "math"

// HoeffdingTail returns the Chernoff–Hoeffding upper bound on
// Pr[Y >= E[Y] + n*t] <= exp(-2 n t^2) for a sum Y of n independent
// [0,1]-valued variables. This is the bound SCHISM (Sequeira & Zaki 2004)
// uses to derive its dimensionality-adaptive density threshold.
func HoeffdingTail(n int, t float64) float64 {
	if t <= 0 {
		return 1
	}
	return math.Exp(-2 * float64(n) * t * t)
}

// SchismThreshold returns the SCHISM support threshold τ(s) for an
// s-dimensional grid cell, as a fraction of the database size:
//
//	τ(s) = (1/ξ)^s + sqrt( ln(1/τ) / (2 n) )
//
// where ξ is the number of intervals per dimension, n the database size and
// τ the significance level. The first term is the expected fraction of
// points in an s-dimensional cell under the uniform-independence null; the
// second is the Hoeffding slack guaranteeing Pr[X_s >= n·τ(s)] <= τ. The
// threshold decreases monotonically in s, which is the property the tutorial
// highlights (slide 73): fixed grid thresholds starve high-dimensional cells.
func SchismThreshold(s int, xi int, n int, tau float64) float64 {
	if xi < 1 {
		xi = 1
	}
	expected := math.Pow(1/float64(xi), float64(s))
	slack := math.Sqrt(math.Log(1/tau) / (2 * float64(n)))
	return expected + slack
}

// BinomialTailUpper returns an upper bound on Pr[X >= k] for
// X ~ Binomial(n, p), using the Chernoff–Hoeffding relative-entropy bound
//
//	Pr[X >= k] <= exp(-n * D(k/n || p))  for k/n > p,
//
// where D is the Bernoulli KL divergence. It returns 1 when k/n <= p.
// STATPC-style significance tests use this to decide whether a region holds
// significantly more points than a model explains.
func BinomialTailUpper(n, k int, p float64) float64 {
	if n <= 0 || k <= 0 {
		return 1
	}
	q := float64(k) / float64(n)
	if q <= p {
		return 1
	}
	if p <= 0 {
		return 0
	}
	if q >= 1 {
		return math.Exp(float64(n) * math.Log(p))
	}
	d := q*math.Log(q/p) + (1-q)*math.Log((1-q)/(1-p))
	return math.Exp(-float64(n) * d)
}

// BinomialTailLower returns an upper bound on Pr[X <= k] via the symmetric
// Chernoff bound, for k/n < p. Returns 1 when k/n >= p.
func BinomialTailLower(n, k int, p float64) float64 {
	if n <= 0 {
		return 1
	}
	q := float64(k) / float64(n)
	if q >= p {
		return 1
	}
	if p >= 1 {
		return 0
	}
	var d float64
	if q <= 0 {
		d = math.Log(1 / (1 - p))
	} else {
		d = q*math.Log(q/p) + (1-q)*math.Log((1-q)/(1-p))
	}
	return math.Exp(-float64(n) * d)
}
