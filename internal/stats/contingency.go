package stats

import (
	"fmt"
	"math"

	"multiclust/internal/core"
)

// ContingencyTable is the joint count table of two labelings over the same
// objects. Rows index the clusters of the first labeling, columns the
// clusters of the second. Noise objects (label < 0 in either labeling) are
// excluded.
type ContingencyTable struct {
	Counts   [][]float64
	RowSums  []float64
	ColSums  []float64
	Total    float64
	RowIDs   []int // original label of each row
	ColIDs   []int // original label of each column
	rowIndex map[int]int
	colIndex map[int]int
}

// NewContingencyTable builds the table for labelings a and b, which must have
// equal length; unequal lengths return an error wrapping core.ErrShape.
func NewContingencyTable(a, b []int) (*ContingencyTable, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("stats: contingency table labelings of length %d and %d: %w",
			len(a), len(b), core.ErrShape)
	}
	t := &ContingencyTable{rowIndex: map[int]int{}, colIndex: map[int]int{}}
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			continue
		}
		ri, ok := t.rowIndex[a[i]]
		if !ok {
			ri = len(t.RowIDs)
			t.rowIndex[a[i]] = ri
			t.RowIDs = append(t.RowIDs, a[i])
			t.Counts = append(t.Counts, nil)
			t.RowSums = append(t.RowSums, 0)
			for r := range t.Counts {
				for len(t.Counts[r]) < len(t.ColIDs) {
					t.Counts[r] = append(t.Counts[r], 0)
				}
			}
		}
		ci, ok := t.colIndex[b[i]]
		if !ok {
			ci = len(t.ColIDs)
			t.colIndex[b[i]] = ci
			t.ColIDs = append(t.ColIDs, b[i])
			t.ColSums = append(t.ColSums, 0)
			for r := range t.Counts {
				for len(t.Counts[r]) < len(t.ColIDs) {
					t.Counts[r] = append(t.Counts[r], 0)
				}
			}
		}
		t.Counts[ri][ci]++
		t.RowSums[ri]++
		t.ColSums[ci]++
		t.Total++
	}
	return t, nil
}

// MutualInformation returns I(A;B) in nats.
func (t *ContingencyTable) MutualInformation() float64 {
	if t.Total == 0 {
		return 0
	}
	var mi float64
	for i, row := range t.Counts {
		for j, nij := range row {
			if nij == 0 {
				continue
			}
			pij := nij / t.Total
			pi := t.RowSums[i] / t.Total
			pj := t.ColSums[j] / t.Total
			mi += pij * math.Log(pij/(pi*pj))
		}
	}
	if mi < 0 { // numerical noise
		mi = 0
	}
	return mi
}

// EntropyRow returns H(A) in nats.
func (t *ContingencyTable) EntropyRow() float64 { return Entropy(t.RowSums) }

// EntropyCol returns H(B) in nats.
func (t *ContingencyTable) EntropyCol() float64 { return Entropy(t.ColSums) }

// JointEntropy returns H(A,B) in nats.
func (t *ContingencyTable) JointEntropy() float64 {
	flat := make([]float64, 0, len(t.Counts)*max(1, len(t.ColIDs)))
	for _, row := range t.Counts {
		flat = append(flat, row...)
	}
	return Entropy(flat)
}

// ConditionalEntropyRowGivenCol returns H(A|B) = H(A,B) - H(B) in nats.
func (t *ContingencyTable) ConditionalEntropyRowGivenCol() float64 {
	h := t.JointEntropy() - t.EntropyCol()
	if h < 0 {
		h = 0
	}
	return h
}

// Uniformity measures how close the table is to the fully independent
// (uniform) profile that Hossain et al. (2010) maximize for disparate
// clusterings. It is 1 - NMI, so 1 means the labelings are independent and
// 0 means they determine each other.
func (t *ContingencyTable) Uniformity() float64 { return 1 - NMI(t) }

// NMI returns the normalized mutual information I(A;B)/sqrt(H(A)H(B)),
// in [0,1]. If either entropy is zero, NMI is defined as 0 unless both are
// zero and the labelings are identical-trivial, in which case it is 1.
func NMI(t *ContingencyTable) float64 {
	ha, hb := t.EntropyRow(), t.EntropyCol()
	if ha == 0 && hb == 0 {
		return 1
	}
	if ha == 0 || hb == 0 {
		return 0
	}
	v := t.MutualInformation() / math.Sqrt(ha*hb)
	if v > 1 {
		v = 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
