// Package stats provides the information-theoretic and probabilistic
// primitives shared by the clustering algorithms: entropy, mutual
// information, contingency tables, Gaussian densities, kernel density
// estimation, Chernoff–Hoeffding tail bounds, and histograms.
package stats

import (
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
)

// Entropy returns the Shannon entropy (in nats) of a discrete distribution
// given as unnormalized non-negative weights. Zero weights contribute zero.
func Entropy(weights []float64) float64 {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return 0
	}
	var h float64
	for _, w := range weights {
		if w <= 0 {
			continue
		}
		p := w / total
		h -= p * math.Log(p)
	}
	return h
}

// Entropy2 is Entropy measured in bits.
func Entropy2(weights []float64) float64 { return Entropy(weights) / math.Ln2 }

// LabelEntropy returns the entropy (nats) of an integer labeling. Negative
// labels (noise) are ignored.
func LabelEntropy(labels []int) float64 {
	counts := map[int]float64{}
	for _, l := range labels {
		if l < 0 {
			continue
		}
		counts[l]++
	}
	// Entropy sums floats, so feed it the counts in sorted-label order:
	// map-iteration order would perturb the last bits between runs.
	distinct := make([]int, 0, len(counts))
	for l := range counts {
		distinct = append(distinct, l)
	}
	sort.Ints(distinct)
	w := make([]float64, 0, len(counts))
	for _, l := range distinct {
		w = append(w, counts[l])
	}
	return Entropy(w)
}

// KLDiscrete returns the Kullback–Leibler divergence KL(p||q) in nats for
// two distributions given as unnormalized weights of equal length. Bins
// where p is zero contribute zero; bins where p>0 and q==0 contribute +Inf.
// Unequal lengths return an error wrapping core.ErrShape.
func KLDiscrete(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KLDiscrete lengths %d and %d: %w", len(p), len(q), core.ErrShape)
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp <= 0 || sq <= 0 {
		return 0, nil
	}
	var kl float64
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		pi := p[i] / sp
		if q[i] <= 0 {
			return math.Inf(1), nil
		}
		qi := q[i] / sq
		kl += pi * math.Log(pi/qi)
	}
	return kl, nil
}

// JensenShannon returns the Jensen–Shannon divergence (nats) between two
// distributions given as unnormalized weights. It is symmetric and bounded
// by ln 2. Unequal lengths return an error wrapping core.ErrShape.
func JensenShannon(p, q []float64) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: JensenShannon lengths %d and %d: %w", len(p), len(q), core.ErrShape)
	}
	var sp, sq float64
	for i := range p {
		sp += p[i]
		sq += q[i]
	}
	if sp <= 0 || sq <= 0 {
		return 0, nil
	}
	m := make([]float64, len(p))
	pn := make([]float64, len(p))
	qn := make([]float64, len(p))
	for i := range p {
		pn[i] = p[i] / sp
		qn[i] = q[i] / sq
		m[i] = 0.5 * (pn[i] + qn[i])
	}
	// The three slices are built above with equal lengths, so the inner
	// calls cannot fail.
	kp, _ := KLDiscrete(pn, m)
	kq, _ := KLDiscrete(qn, m)
	return 0.5*kp + 0.5*kq, nil
}
