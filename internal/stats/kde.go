package stats

import (
	"errors"
	"math"
	"sort"
)

// KDE is a one-dimensional Gaussian kernel density estimator. The
// density-profile clustering comparison of Bae, Bailey & Dong (2010) and the
// non-linear alternative clustering of Dang & Bailey (2010b) both build on
// kernel estimates; this estimator provides the substrate.
type KDE struct {
	Samples   []float64
	Bandwidth float64
}

// NewKDE builds an estimator over samples. If bandwidth <= 0 Silverman's
// rule of thumb is used: 1.06 * sigma * n^{-1/5}.
func NewKDE(samples []float64, bandwidth float64) (*KDE, error) {
	if len(samples) == 0 {
		return nil, errors.New("stats: KDE requires at least one sample")
	}
	s := append([]float64(nil), samples...)
	if bandwidth <= 0 {
		bandwidth = silverman(s)
	}
	return &KDE{Samples: s, Bandwidth: bandwidth}, nil
}

func silverman(s []float64) float64 {
	n := float64(len(s))
	var mean float64
	for _, v := range s {
		mean += v
	}
	mean /= n
	var variance float64
	for _, v := range s {
		variance += (v - mean) * (v - mean)
	}
	if len(s) > 1 {
		variance /= n - 1
	}
	sigma := math.Sqrt(variance)
	if sigma == 0 {
		sigma = 1e-3
	}
	return 1.06 * sigma * math.Pow(n, -0.2)
}

// Density returns the estimated density at x.
func (k *KDE) Density(x float64) float64 {
	const invSqrt2Pi = 0.3989422804014327
	var s float64
	h := k.Bandwidth
	for _, xi := range k.Samples {
		u := (x - xi) / h
		s += invSqrt2Pi * math.Exp(-0.5*u*u)
	}
	return s / (float64(len(k.Samples)) * h)
}

// Profile evaluates the density on m equally spaced points spanning the
// sample range padded by one bandwidth on each side. The returned profile is
// the "density profile" representation used to compare clusterings.
func (k *KDE) Profile(m int) []float64 {
	if m < 2 {
		m = 2
	}
	lo, hi := k.Samples[0], k.Samples[0]
	for _, v := range k.Samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	lo -= k.Bandwidth
	hi += k.Bandwidth
	out := make([]float64, m)
	step := (hi - lo) / float64(m-1)
	for i := range out {
		out[i] = k.Density(lo + float64(i)*step)
	}
	return out
}

// Histogram bins values into k equal-width bins over [min, max] of the data
// and returns the counts. Values are clamped into the edge bins.
func Histogram(values []float64, k int) []float64 {
	counts := make([]float64, k)
	if len(values) == 0 || k == 0 {
		return counts
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	width := (hi - lo) / float64(k)
	if width == 0 {
		counts[0] = float64(len(values))
		return counts
	}
	for _, v := range values {
		b := int((v - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= k {
			b = k - 1
		}
		counts[b]++
	}
	return counts
}

// Quantile returns the q-quantile (0<=q<=1) of values using linear
// interpolation on the sorted order statistics.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[i]*(1-frac) + s[i+1]*frac
}
