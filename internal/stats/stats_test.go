package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEntropyKnown(t *testing.T) {
	if Entropy([]float64{1, 1}) != math.Ln2 {
		t.Errorf("H(uniform2) = %v, want ln2", Entropy([]float64{1, 1}))
	}
	if Entropy([]float64{1, 0}) != 0 {
		t.Errorf("H(point mass) should be 0")
	}
	if Entropy(nil) != 0 {
		t.Errorf("H(empty) should be 0")
	}
	if Entropy([]float64{0, 0}) != 0 {
		t.Errorf("H(all-zero) should be 0")
	}
	if !approxEq(Entropy2([]float64{1, 1, 1, 1}), 2, 1e-12) {
		t.Errorf("H2(uniform4) = %v, want 2 bits", Entropy2([]float64{1, 1, 1, 1}))
	}
}

func TestEntropyMaximizedByUniform(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		w := make([]float64, n)
		for i := range w {
			w[i] = r.Float64()
		}
		uniform := make([]float64, n)
		for i := range uniform {
			uniform[i] = 1
		}
		return Entropy(w) <= Entropy(uniform)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLabelEntropy(t *testing.T) {
	if got := LabelEntropy([]int{0, 0, 1, 1}); !approxEq(got, math.Ln2, 1e-12) {
		t.Errorf("LabelEntropy = %v", got)
	}
	// Noise labels are ignored.
	if got := LabelEntropy([]int{0, 0, -1, -1}); got != 0 {
		t.Errorf("LabelEntropy with noise = %v, want 0", got)
	}
}

// mustKL/mustJS/mustCT unwrap the error-returning constructors for the
// equal-length inputs these tests use.
func mustKL(t *testing.T, p, q []float64) float64 {
	t.Helper()
	v, err := KLDiscrete(p, q)
	if err != nil {
		t.Fatalf("KLDiscrete: %v", err)
	}
	return v
}

func mustJS(t *testing.T, p, q []float64) float64 {
	t.Helper()
	v, err := JensenShannon(p, q)
	if err != nil {
		t.Fatalf("JensenShannon: %v", err)
	}
	return v
}

func mustCT(t *testing.T, a, b []int) *ContingencyTable {
	t.Helper()
	ct, err := NewContingencyTable(a, b)
	if err != nil {
		t.Fatalf("NewContingencyTable: %v", err)
	}
	return ct
}

func TestKLDiscrete(t *testing.T) {
	if got := mustKL(t, []float64{1, 1}, []float64{1, 1}); !approxEq(got, 0, 1e-12) {
		t.Errorf("KL(p||p) = %v", got)
	}
	if got := mustKL(t, []float64{1, 0}, []float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("KL with missing support = %v, want +Inf", got)
	}
	// KL is non-negative.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = r.Float64() + 0.01
			q[i] = r.Float64() + 0.01
		}
		kl, err := KLDiscrete(p, q)
		return err == nil && kl >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKLDiscreteShapeMismatch(t *testing.T) {
	if _, err := KLDiscrete([]float64{1}, []float64{1, 2}); !errors.Is(err, core.ErrShape) {
		t.Errorf("KLDiscrete mismatch: err = %v, want ErrShape", err)
	}
}

func TestJensenShannon(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if got := mustJS(t, p, q); !approxEq(got, math.Ln2, 1e-12) {
		t.Errorf("JS(disjoint) = %v, want ln2", got)
	}
	if got := mustJS(t, p, p); !approxEq(got, 0, 1e-12) {
		t.Errorf("JS(p,p) = %v, want 0", got)
	}
	// Symmetry.
	a := []float64{0.2, 0.5, 0.3}
	b := []float64{0.6, 0.1, 0.3}
	if !approxEq(mustJS(t, a, b), mustJS(t, b, a), 1e-12) {
		t.Error("JS not symmetric")
	}
}

func TestJensenShannonShapeMismatch(t *testing.T) {
	if _, err := JensenShannon([]float64{1}, []float64{1, 2}); !errors.Is(err, core.ErrShape) {
		t.Errorf("JensenShannon mismatch: err = %v, want ErrShape", err)
	}
}

func TestContingencyIdenticalLabelings(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	ct := mustCT(t, a, a)
	if ct.Total != 6 {
		t.Fatalf("Total = %v", ct.Total)
	}
	if !approxEq(ct.MutualInformation(), ct.EntropyRow(), 1e-12) {
		t.Errorf("I(A;A) = %v, H(A) = %v", ct.MutualInformation(), ct.EntropyRow())
	}
	if !approxEq(NMI(ct), 1, 1e-12) {
		t.Errorf("NMI(A,A) = %v, want 1", NMI(ct))
	}
	if !approxEq(ct.Uniformity(), 0, 1e-12) {
		t.Errorf("Uniformity(A,A) = %v, want 0", ct.Uniformity())
	}
}

func TestContingencyIndependentLabelings(t *testing.T) {
	// Perfectly independent 2x2: each combination appears once.
	a := []int{0, 0, 1, 1}
	b := []int{0, 1, 0, 1}
	ct := mustCT(t, a, b)
	if got := ct.MutualInformation(); !approxEq(got, 0, 1e-12) {
		t.Errorf("I(indep) = %v, want 0", got)
	}
	if !approxEq(NMI(ct), 0, 1e-12) {
		t.Errorf("NMI(indep) = %v, want 0", NMI(ct))
	}
	if !approxEq(ct.Uniformity(), 1, 1e-12) {
		t.Errorf("Uniformity(indep) = %v, want 1", ct.Uniformity())
	}
}

func TestContingencyNoiseExcluded(t *testing.T) {
	a := []int{0, 0, -1, 1}
	b := []int{0, 0, 0, -1}
	ct := mustCT(t, a, b)
	if ct.Total != 2 {
		t.Errorf("Total = %v, want 2 (noise excluded)", ct.Total)
	}
}

func TestConditionalEntropy(t *testing.T) {
	// H(A|B) = H(A,B) - H(B); when A is a function of B, H(A|B)=0.
	a := []int{0, 0, 1, 1}
	b := []int{0, 0, 1, 1}
	ct := mustCT(t, a, b)
	if got := ct.ConditionalEntropyRowGivenCol(); !approxEq(got, 0, 1e-12) {
		t.Errorf("H(A|A) = %v, want 0", got)
	}
	// Independent: H(A|B) = H(A).
	b2 := []int{0, 1, 0, 1}
	ct2 := mustCT(t, a, b2)
	if got := ct2.ConditionalEntropyRowGivenCol(); !approxEq(got, ct2.EntropyRow(), 1e-12) {
		t.Errorf("H(A|B_indep) = %v, want H(A)=%v", got, ct2.EntropyRow())
	}
}

// Property: I(A;B) <= min(H(A), H(B)).
func TestQuickMIBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(50)
		a := make([]int, n)
		b := make([]int, n)
		for i := range a {
			a[i] = r.Intn(4)
			b[i] = r.Intn(3)
		}
		ct := mustCT(t, a, b)
		mi := ct.MutualInformation()
		return mi <= ct.EntropyRow()+1e-9 && mi <= ct.EntropyCol()+1e-9 && mi >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGaussianPDFStandardNormal(t *testing.T) {
	cov := linalg.Identity(2)
	g, err := NewGaussian([]float64{0, 0}, cov, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (2 * math.Pi)
	if got := g.PDF([]float64{0, 0}); !approxEq(got, want, 1e-12) {
		t.Errorf("pdf(0) = %v, want %v", got, want)
	}
	if got := g.Mahalanobis([]float64{3, 4}); !approxEq(got, 5, 1e-12) {
		t.Errorf("Mahalanobis = %v, want 5", got)
	}
}

func TestGaussianShapeError(t *testing.T) {
	if _, err := NewGaussian([]float64{0}, linalg.Identity(2), 0); err == nil {
		t.Error("shape mismatch should fail")
	}
}

func TestKLGaussians(t *testing.T) {
	g1, _ := NewGaussian([]float64{0, 0}, linalg.Identity(2), 0)
	g2, _ := NewGaussian([]float64{1, 0}, linalg.Identity(2), 0)
	// KL between unit Gaussians with mean shift m is |m|^2/2.
	if got := KLGaussians(g1, g2); !approxEq(got, 0.5, 1e-10) {
		t.Errorf("KL = %v, want 0.5", got)
	}
	if got := KLGaussians(g1, g1); !approxEq(got, 0, 1e-10) {
		t.Errorf("KL(p||p) = %v, want 0", got)
	}
}

func TestDiagGaussianLogPDF(t *testing.T) {
	// Matches full-covariance Gaussian when covariance is diagonal.
	g, _ := NewGaussian([]float64{1, -1}, linalg.Diag([]float64{2, 3}), 0)
	x := []float64{0.5, 0.25}
	got := DiagGaussianLogPDF(x, []float64{1, -1}, []float64{2, 3}, 1e-9)
	if !approxEq(got, g.LogPDF(x), 1e-10) {
		t.Errorf("diag logpdf = %v, full = %v", got, g.LogPDF(x))
	}
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp([]float64{0, 0}); !approxEq(got, math.Ln2, 1e-12) {
		t.Errorf("LSE = %v, want ln2", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Errorf("LSE(empty) = %v, want -Inf", got)
	}
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Errorf("LSE(-Inf) = %v", got)
	}
	// Stability with large values.
	if got := LogSumExp([]float64{1000, 1000}); !approxEq(got, 1000+math.Ln2, 1e-9) {
		t.Errorf("LSE(large) = %v", got)
	}
}

func TestHoeffdingTail(t *testing.T) {
	if HoeffdingTail(10, 0) != 1 {
		t.Error("t=0 should give trivial bound 1")
	}
	if got := HoeffdingTail(100, 0.1); !approxEq(got, math.Exp(-2), 1e-12) {
		t.Errorf("Hoeffding = %v", got)
	}
}

func TestSchismThresholdDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for s := 1; s <= 10; s++ {
		cur := SchismThreshold(s, 10, 1000, 0.01)
		if cur >= prev {
			t.Fatalf("threshold not strictly decreasing at s=%d: %v >= %v", s, cur, prev)
		}
		prev = cur
	}
	// Asymptote is the Hoeffding slack.
	slack := math.Sqrt(math.Log(1/0.01) / 2000)
	if got := SchismThreshold(50, 10, 1000, 0.01); !approxEq(got, slack, 1e-9) {
		t.Errorf("threshold asymptote = %v, want %v", got, slack)
	}
}

func TestBinomialTails(t *testing.T) {
	if BinomialTailUpper(100, 10, 0.5) != 1 {
		t.Error("k/n <= p should return 1")
	}
	// Bound must upper-bound a crude simulation.
	rng := rand.New(rand.NewSource(42))
	n, p, k := 200, 0.1, 40
	exceed := 0
	const trials = 2000
	for tr := 0; tr < trials; tr++ {
		c := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				c++
			}
		}
		if c >= k {
			exceed++
		}
	}
	bound := BinomialTailUpper(n, k, p)
	if emp := float64(exceed) / trials; emp > bound+0.01 {
		t.Errorf("empirical %v exceeds bound %v", emp, bound)
	}
	if BinomialTailLower(100, 60, 0.5) != 1 {
		t.Error("k/n >= p should return 1")
	}
	if got := BinomialTailLower(100, 10, 0.5); got >= 1e-5 {
		t.Errorf("lower tail bound too weak: %v", got)
	}
}

func TestKDE(t *testing.T) {
	if _, err := NewKDE(nil, 0); err == nil {
		t.Error("empty KDE should fail")
	}
	// Unimodal data: density at the mode exceeds density far away.
	samples := []float64{-0.1, 0, 0.1, 0.05, -0.05}
	k, err := NewKDE(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Density(0) <= k.Density(5) {
		t.Error("KDE density at mode should exceed density in the tail")
	}
	prof := k.Profile(16)
	if len(prof) != 16 {
		t.Fatalf("profile length %d", len(prof))
	}
	// KDE integrates to roughly 1 (trapezoid over a wide window).
	lo, hi := -3.0, 3.0
	m := 2000
	var integral float64
	step := (hi - lo) / float64(m)
	for i := 0; i < m; i++ {
		integral += k.Density(lo+(float64(i)+0.5)*step) * step
	}
	if !approxEq(integral, 1, 0.02) {
		t.Errorf("KDE integral = %v, want about 1", integral)
	}
}

func TestKDEConstantSamples(t *testing.T) {
	k, err := NewKDE([]float64{2, 2, 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth <= 0 {
		t.Error("bandwidth must stay positive for constant samples")
	}
}

func TestHistogram(t *testing.T) {
	// Bins are half-open [lo, lo+w), so 0.5 falls in the second bin.
	h := Histogram([]float64{0, 0.5, 1, 1, 1}, 2)
	if h[0] != 1 || h[1] != 4 {
		t.Errorf("Histogram = %v, want [1 4]", h)
	}
	h = Histogram([]float64{0, 0.4, 1, 1, 1}, 2)
	if h[0] != 2 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [2 3]", h)
	}
	if h := Histogram(nil, 3); h[0] != 0 {
		t.Errorf("empty histogram = %v", h)
	}
	h = Histogram([]float64{7, 7, 7}, 3)
	if h[0] != 3 {
		t.Errorf("constant histogram = %v, want all in first bin", h)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if Quantile(v, 0) != 1 || Quantile(v, 1) != 5 {
		t.Error("extreme quantiles wrong")
	}
	if got := Quantile(v, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(v, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("quantile of empty should be NaN")
	}
}

// Property: Jensen–Shannon divergence is bounded by ln 2 and non-negative.
func TestQuickJSBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		p := make([]float64, n)
		q := make([]float64, n)
		for i := range p {
			p[i] = r.Float64()
			q[i] = r.Float64()
		}
		js, err := JensenShannon(p, q)
		return err == nil && js >= -1e-12 && js <= math.Ln2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: BinomialTailUpper is monotone non-increasing in k.
func TestQuickBinomialTailMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 10 + r.Intn(200)
		p := 0.05 + r.Float64()*0.4
		prev := 2.0
		for k := 0; k <= n; k += 1 + n/20 {
			b := BinomialTailUpper(n, k, p)
			if b > prev+1e-12 {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: SchismThreshold is strictly decreasing in the dimensionality and
// bounded below by the Hoeffding slack.
func TestQuickSchismThresholdShape(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xi := 2 + r.Intn(10)
		n := 50 + r.Intn(1000)
		tau := 0.001 + r.Float64()*0.2
		slack := math.Sqrt(math.Log(1/tau) / (2 * float64(n)))
		prev := math.Inf(1)
		for s := 1; s <= 8; s++ {
			v := SchismThreshold(s, xi, n, tau)
			if v >= prev || v < slack-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
