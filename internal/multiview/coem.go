// Package multiview implements the "multiple given views/sources" paradigm
// of the tutorial's section 5: co-EM over two conditionally independent
// views (Bickel & Scheffer 2004), multi-represented DBSCAN with union and
// intersection neighbourhoods (Kailing et al. 2004a), two-view spectral
// clustering (de Sa 2005), an mSC-style non-redundant multi-view search
// (Niu & Dy 2010), and consensus clustering over random projections
// (Fern & Brodley 2003) with the shared-mutual-information objective of
// Strehl & Ghosh (2002).
package multiview

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/em"
	"multiclust/internal/obs"
)

// CoEMConfig controls a co-EM run.
type CoEMConfig struct {
	K       int
	MaxIter int // default 30; co-EM need not converge (slide 104), so the cap is the termination criterion
	Seed    int64
	MinVar  float64
	Tol     float64 // early-stop tolerance on combined log-likelihood, default 1e-6
}

// CoEMIteration records the state after one interleaved round.
type CoEMIteration struct {
	LogLikA, LogLikB float64
	Agreement        float64 // fraction of objects on which the views' hard labels agree under the best label matching
}

// CoEMResult is a fitted co-EM model pair.
type CoEMResult struct {
	ModelA, ModelB *em.Model
	PosteriorA     [][]float64
	PosteriorB     [][]float64
	Clustering     *core.Clustering // consensus: argmax of averaged posteriors
	History        []CoEMIteration
	Converged      bool // false when the iteration cap stopped a still-moving pair
}

// CoEM runs interleaved expectation–maximization across two views of the
// same objects (slide 102): view A's M-step consumes the posteriors computed
// in view B and vice versa, bootstrapping two hypotheses that maximize
// agreement. Both views must describe the same n objects.
func CoEM(viewA, viewB [][]float64, cfg CoEMConfig) (*CoEMResult, error) {
	n := len(viewA)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if len(viewB) != n {
		return nil, fmt.Errorf("multiview: views disagree on n: %d vs %d", n, len(viewB))
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("multiview: invalid K=%d", cfg.K)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 30
	}
	if cfg.MinVar <= 0 {
		cfg.MinVar = 1e-6
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}

	rec := obs.Default()
	ctx, endSpan := obs.SpanCtx(context.Background(), rec, "coem.run")
	defer endSpan()

	// Initialize view A with a short plain EM fit; view B starts from A's
	// posteriors (the bootstrap step). The span context nests the
	// bootstrap's em.fit under coem.run.
	initA, err := em.FitContext(ctx, viewA, em.Config{K: cfg.K, Seed: cfg.Seed, MaxIter: 10, MinVar: cfg.MinVar})
	if err != nil {
		return nil, err
	}
	modelA := initA.Model
	postA := initA.Posterior
	postB := make([][]float64, n)
	for i := range postB {
		postB[i] = append([]float64(nil), postA[i]...)
	}
	modelB := em.RandomModel(viewB, cfg.K, cfg.Seed+1)

	res := &CoEMResult{}
	prevLL := math.Inf(-1)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// Phase span: one interleaved round, nested under coem.run so the
		// trace tree exposes the per-round cost.
		combined := func() float64 {
			_, end := obs.SpanCtx(ctx, rec, "coem.round")
			defer end()
			// View B: maximize with A's posteriors, then expectation in B.
			em.MStep(viewB, postA, modelB, cfg.MinVar)
			llB := em.EStep(viewB, modelB, postB, cfg.MinVar)
			// View A: maximize with B's posteriors, then expectation in A.
			em.MStep(viewA, postB, modelA, cfg.MinVar)
			llA := em.EStep(viewA, modelA, postA, cfg.MinVar)

			res.History = append(res.History, CoEMIteration{
				LogLikA:   llA,
				LogLikB:   llB,
				Agreement: agreement(postA, postB),
			})
			if rec != nil {
				obs.Count(rec, "coem.rounds", 1)
				obs.Observe(rec, "coem.agreement", iter, res.History[iter].Agreement)
				obs.Observe(rec, "coem.loglik_a", iter, llA)
				obs.Observe(rec, "coem.loglik_b", iter, llB)
			}
			return llA + llB
		}()
		if math.Abs(combined-prevLL) <= cfg.Tol*(1+math.Abs(combined)) {
			res.Converged = true
			break
		}
		prevLL = combined
	}
	res.ModelA, res.ModelB = modelA, modelB
	res.PosteriorA, res.PosteriorB = postA, postB

	// Consensus assignment: average the two posteriors.
	avg := make([][]float64, n)
	for i := range avg {
		row := make([]float64, cfg.K)
		for c := 0; c < cfg.K; c++ {
			row[c] = 0.5 * (postA[i][c] + postB[i][c])
		}
		avg[i] = row
	}
	res.Clustering = em.Harden(avg)
	return res, nil
}

// Agreement returns the fraction of objects whose hard labels agree across
// the two posterior matrices, maximized over a greedy label matching — the
// metric CoEM records per round, exported so the streaming co-EM snapshot
// can report the same number for its online rounds.
func Agreement(a, b [][]float64) float64 { return agreement(a, b) }

// agreement returns the fraction of objects whose hard labels agree across
// the two posterior matrices, maximized over a greedy label matching (the
// label spaces of the two views are not aligned a priori).
func agreement(a, b [][]float64) float64 {
	n := len(a)
	if n == 0 {
		return 0
	}
	la := em.Harden(a).Labels
	lb := em.Harden(b).Labels
	// Greedy matching on the contingency counts, with deterministic
	// tie-breaking (count desc, then pair order).
	counts := map[[2]int]int{}
	for i := range la {
		counts[[2]int{la[i], lb[i]}]++
	}
	type pairCount struct {
		pair  [2]int
		count int
	}
	pairs := make([]pairCount, 0, len(counts))
	for p, c := range counts {
		pairs = append(pairs, pairCount{pair: p, count: c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].count != pairs[j].count {
			return pairs[i].count > pairs[j].count
		}
		if pairs[i].pair[0] != pairs[j].pair[0] {
			return pairs[i].pair[0] < pairs[j].pair[0]
		}
		return pairs[i].pair[1] < pairs[j].pair[1]
	})
	usedA := map[int]bool{}
	usedB := map[int]bool{}
	match := 0
	for _, pc := range pairs {
		if usedA[pc.pair[0]] || usedB[pc.pair[1]] {
			continue
		}
		match += pc.count
		usedA[pc.pair[0]] = true
		usedB[pc.pair[1]] = true
	}
	return float64(match) / float64(n)
}

// ErrViewMismatch is returned by multi-view algorithms whose views disagree
// on the object count.
var ErrViewMismatch = errors.New("multiview: views must describe the same objects")
