package multiview

import (
	"testing"

	"multiclust/internal/dataset"
)

// The ensemble runs fan out over the worker pool; consensus, similarity and
// every per-run clustering must be exactly identical for any worker count.
func TestRandomProjectionEnsembleWorkersDeterministic(t *testing.T) {
	ds, _, _ := dataset.MultiViewGaussians(3, 90, []dataset.ViewSpec{
		{Dims: 2, K: 3, Sep: 4, Sigma: 0.4},
		{Dims: 2, K: 2, Sep: 4, Sigma: 0.4},
	})
	cfg := RandomProjectionEnsembleConfig{K: 3, Runs: 8, TargetDim: 2, Seed: 7}
	cfg.Workers = 1
	serial, err := RandomProjectionEnsemble(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4} {
		cfg.Workers = w
		par, err := RandomProjectionEnsemble(ds.Points, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Consensus.Labels {
			if par.Consensus.Labels[i] != serial.Consensus.Labels[i] {
				t.Fatalf("workers=%d: consensus label %d differs", w, i)
			}
		}
		for i := range serial.Similarity.Data {
			if par.Similarity.Data[i] != serial.Similarity.Data[i] {
				t.Fatalf("workers=%d: similarity cell %d differs", w, i)
			}
		}
		for r := range serial.Runs {
			for i := range serial.Runs[r].Labels {
				if par.Runs[r].Labels[i] != serial.Runs[r].Labels[i] {
					t.Fatalf("workers=%d: run %d label %d differs", w, r, i)
				}
			}
		}
	}
}
