package multiview

import (
	"errors"
	"math"

	"multiclust/internal/core"
	"multiclust/internal/dbscan"
	"multiclust/internal/dist"
)

// DistributedDBSCANConfig controls the scalable distributed clustering.
type DistributedDBSCANConfig struct {
	Eps        float64
	MinPts     int
	Partitions int // number of local sites, default 4
	// RepsPerCluster caps the representatives each local cluster ships to
	// the central site, default 4.
	RepsPerCluster int
}

// DistributedDBSCANResult carries the global clustering plus the
// distributed bookkeeping.
type DistributedDBSCANResult struct {
	Clustering      *core.Clustering
	Representatives []int // global indices of the shipped representatives
	LocalClusters   int   // clusters found across the local sites
}

// DistributedDBSCAN implements scalable density-based distributed
// clustering in the style of Januzaj, Kriegel & Pfeifle (2004, tutorial
// slide 100): the database is split across Partitions sites, each site runs
// DBSCAN locally and ships a few representatives per local cluster to the
// central site, which clusters the representatives (with a widened radius,
// as in the paper) and broadcasts the merged labeling; every object adopts
// the global label of its nearest representative. Noise objects stay noise.
func DistributedDBSCAN(points [][]float64, cfg DistributedDBSCANConfig) (*DistributedDBSCANResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("multiview: Eps and MinPts must be positive")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = 4
	}
	if cfg.Partitions > n {
		cfg.Partitions = n
	}
	if cfg.RepsPerCluster <= 0 {
		cfg.RepsPerCluster = 4
	}

	res := &DistributedDBSCANResult{}
	// Round-robin partitioning (site p owns objects i with i % P == p),
	// standing in for the horizontally split databases of the paper.
	for p := 0; p < cfg.Partitions; p++ {
		var local []int
		for i := p; i < n; i += cfg.Partitions {
			local = append(local, i)
		}
		if len(local) == 0 {
			continue
		}
		sub := make([][]float64, len(local))
		for li, o := range local {
			sub[li] = points[o]
		}
		c, err := dbscan.Run(sub, dist.Euclidean, dbscan.Config{Eps: cfg.Eps, MinPts: cfg.MinPts})
		if err != nil {
			return nil, err
		}
		for _, members := range c.Clusters() {
			res.LocalClusters++
			// Representatives: spread members evenly (first, then strided).
			stride := len(members) / cfg.RepsPerCluster
			if stride < 1 {
				stride = 1
			}
			taken := 0
			for mi := 0; mi < len(members) && taken < cfg.RepsPerCluster; mi += stride {
				res.Representatives = append(res.Representatives, local[members[mi]])
				taken++
			}
		}
	}
	if len(res.Representatives) == 0 {
		// No local structure anywhere: everything is noise.
		labels := make([]int, n)
		for i := range labels {
			labels[i] = core.Noise
		}
		res.Clustering = core.NewClustering(labels)
		return res, nil
	}

	// Central site: cluster the representatives with a widened radius (the
	// paper uses 2*eps to bridge partition-induced gaps).
	repPoints := make([][]float64, len(res.Representatives))
	for ri, o := range res.Representatives {
		repPoints[ri] = points[o]
	}
	central, err := dbscan.Run(repPoints, dist.Euclidean, dbscan.Config{Eps: 2 * cfg.Eps, MinPts: 1})
	if err != nil {
		return nil, err
	}

	// Broadcast: each object adopts the global label of its nearest
	// representative when that representative is within eps-reach of it;
	// otherwise it stays noise.
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		bestRep, bestD := -1, math.Inf(1)
		for ri := range repPoints {
			if d := dist.Euclidean(points[i], repPoints[ri]); d < bestD {
				bestRep, bestD = ri, d
			}
		}
		if bestRep >= 0 && bestD <= 2*cfg.Eps {
			labels[i] = central.Labels[bestRep]
		} else {
			labels[i] = core.Noise
		}
	}
	res.Clustering = core.NewClustering(labels)
	return res, nil
}
