package multiview

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
	"multiclust/internal/spectral"
)

// HSIC returns the (biased) Hilbert–Schmidt independence criterion between
// two feature groups of the same objects, using linear kernels:
//
//	HSIC(X, Y) = trace(Kx H Ky H) / (n-1)^2,   H = I - 11^T/n
//
// (Gretton et al. 2005). Zero means the groups are (linearly) independent;
// mSC uses it to steer view search toward independent subspaces (slide 90).
func HSIC(x, y [][]float64) (float64, error) {
	n := len(x)
	if n == 0 || len(y) != n {
		return 0, ErrViewMismatch
	}
	kx := gram(x)
	ky := gram(y)
	center(kx)
	center(ky)
	// trace(Kx~ Ky~)
	var tr float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tr += kx.At(i, j) * ky.At(j, i)
		}
	}
	den := float64(n-1) * float64(n-1)
	return tr / den, nil
}

func gram(x [][]float64) *linalg.Matrix {
	n := len(x)
	k := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := linalg.Dot(x[i], x[j])
			k.Set(i, j, v)
			k.Set(j, i, v)
		}
	}
	return k
}

// center applies the double-centering H K H in place.
func center(k *linalg.Matrix) {
	n := k.Rows
	rowMean := make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			rowMean[i] += k.At(i, j)
		}
		total += rowMean[i]
		rowMean[i] /= float64(n)
	}
	total /= float64(n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k.Set(i, j, k.At(i, j)-rowMean[i]-rowMean[j]+total)
		}
	}
}

// MSCConfig controls the multiple-non-redundant-views search.
type MSCConfig struct {
	K       int     // clusters per view
	Views   int     // number of views to extract, default 2
	DimsPer int     // dimensions per view, default d/Views
	Lambda  float64 // HSIC penalty weight, default 1
	Sigma   float64 // RBF bandwidth for the spectral step (<=0: median)
	Seed    int64
}

// MSCView is one extracted view: the feature subset and its clustering.
type MSCView struct {
	Dims       []int
	Clustering *core.Clustering
	HSICPrev   float64 // summed HSIC against previously selected views
}

// MSC extracts multiple non-redundant clustering views in the spirit of
// Niu & Dy (2010): each view is a feature subspace chosen to have strong
// cluster structure while being statistically independent (low HSIC) of the
// views already selected; spectral clustering runs inside each view.
//
// Deviation from the original: the subspace is a greedy feature subset
// rather than a learned linear transform — each view is seeded with the
// highest-structure unused dimension and grown with dimensions dependent on
// it (normalized pairwise HSIC), net of Lambda times the dependence on the
// views already selected. The criterion mirrors the original objective
// (cluster structure + inter-view independence) but stays closed-form.
func MSC(points [][]float64, cfg MSCConfig) ([]MSCView, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	d := len(points[0])
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("multiview: invalid K=%d", cfg.K)
	}
	if cfg.Views <= 0 {
		cfg.Views = 2
	}
	if cfg.DimsPer <= 0 {
		cfg.DimsPer = d / cfg.Views
		if cfg.DimsPer < 1 {
			cfg.DimsPer = 1
		}
	}
	if cfg.Lambda < 0 {
		return nil, errors.New("multiview: negative Lambda")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}

	colCache := make([][][]float64, d)
	column := func(j int) [][]float64 {
		if colCache[j] == nil {
			col := make([][]float64, n)
			for i, p := range points {
				col[i] = []float64{p[j]}
			}
			colCache[j] = col
		}
		return colCache[j]
	}
	variance := func(j int) float64 {
		var mean float64
		for _, p := range points {
			mean += p[j]
		}
		mean /= float64(n)
		var v float64
		for _, p := range points {
			diff := p[j] - mean
			v += diff * diff
		}
		return v / float64(n)
	}

	// Pairwise dependence between dimensions, normalized so the scale is
	// comparable to variances: HSIC(j,k)/sqrt(HSIC(j,j)*HSIC(k,k)).
	pairDep := linalg.NewMatrix(d, d)
	self := make([]float64, d)
	for j := 0; j < d; j++ {
		h, err := HSIC(column(j), column(j))
		if err != nil {
			return nil, err
		}
		self[j] = h
	}
	for j := 0; j < d; j++ {
		for k := j; k < d; k++ {
			h, err := HSIC(column(j), column(k))
			if err != nil {
				return nil, err
			}
			den := self[j] * self[k]
			v := 0.0
			if den > 0 {
				v = h / math.Sqrt(den)
			}
			pairDep.Set(j, k, v)
			pairDep.Set(k, j, v)
		}
	}

	var views []MSCView
	used := map[int]bool{}
	for v := 0; v < cfg.Views; v++ {
		depPrev := func(j int) float64 {
			var dep float64
			for _, prev := range views {
				for _, pj := range prev.Dims {
					dep += pairDep.At(j, pj)
				}
			}
			return dep
		}
		// Seed: the unused dimension with the most structure net of
		// dependence on previous views.
		seed, bestScore := -1, 0.0
		for j := 0; j < d; j++ {
			if used[j] {
				continue
			}
			score := variance(j) - cfg.Lambda*depPrev(j)
			if seed < 0 || score > bestScore {
				seed, bestScore = j, score
			}
		}
		if seed < 0 {
			break
		}
		dims := []int{seed}
		used[seed] = true
		// Grow the view with dimensions DEPENDENT on it (same underlying
		// grouping) and independent of previous views.
		for len(dims) < cfg.DimsPer {
			next, bestG := -1, 0.0
			for j := 0; j < d; j++ {
				if used[j] {
					continue
				}
				var coh float64
				for _, sel := range dims {
					coh += pairDep.At(j, sel)
				}
				g := coh - cfg.Lambda*depPrev(j)
				if next < 0 || g > bestG {
					next, bestG = j, g
				}
			}
			if next < 0 {
				break
			}
			dims = append(dims, next)
			used[next] = true
		}
		var dep float64
		for _, j := range dims {
			dep += depPrev(j)
		}
		sort.Ints(dims)
		sub := make([][]float64, n)
		for i, p := range points {
			row := make([]float64, len(dims))
			for jj, dim := range dims {
				row[jj] = p[dim]
			}
			sub[i] = row
		}
		sp, err := spectral.Run(sub, spectral.Config{K: cfg.K, Sigma: cfg.Sigma, Seed: cfg.Seed + int64(v)})
		if err != nil {
			return nil, err
		}
		views = append(views, MSCView{Dims: dims, Clustering: sp.Clustering, HSICPrev: dep})
	}
	if len(views) == 0 {
		return nil, errors.New("multiview: no views extracted")
	}
	return views, nil
}

// TwoViewSpectral clusters objects described by two views by combining the
// views' RBF affinities multiplicatively (an object pair is similar when
// similar in both views) and running spectral clustering on the product —
// the spirit of de Sa (2005). Views must describe the same objects.
func TwoViewSpectral(viewA, viewB [][]float64, k int, seed int64) (*core.Clustering, error) {
	n := len(viewA)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if len(viewB) != n {
		return nil, ErrViewMismatch
	}
	if k <= 0 || k > n {
		return nil, errors.New("multiview: invalid K")
	}
	wa, _ := spectral.RBFAffinity(viewA, 0)
	wb, _ := spectral.RBFAffinity(viewB, 0)
	combined := linalg.NewMatrix(n, n)
	for i := range combined.Data {
		combined.Data[i] = wa.Data[i] * wb.Data[i]
	}
	res, err := spectral.RunAffinity(combined, k, seed, 0)
	if err != nil {
		return nil, err
	}
	return res.Clustering, nil
}
