package multiview

import (
	"math"
	"math/rand"
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

// universeData builds two universes where half the objects have structure
// in universe 0 (noise in universe 1) and vice versa.
func universeData(seed int64, nPer int) (views [][][]float64, universeOf []int, classOf []int) {
	rng := rand.New(rand.NewSource(seed))
	n := 2 * nPer
	viewA := make([][]float64, n)
	viewB := make([][]float64, n)
	universeOf = make([]int, n)
	classOf = make([]int, n)
	for i := 0; i < n; i++ {
		cls := rng.Intn(2)
		classOf[i] = cls
		center := float64(cls * 6)
		if i < nPer {
			universeOf[i] = 0
			viewA[i] = []float64{center + rng.NormFloat64()*0.3, center + rng.NormFloat64()*0.3}
			viewB[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
		} else {
			universeOf[i] = 1
			viewA[i] = []float64{rng.Float64() * 20, rng.Float64() * 20}
			viewB[i] = []float64{center + rng.NormFloat64()*0.3, center + rng.NormFloat64()*0.3}
		}
	}
	return [][][]float64{viewA, viewB}, universeOf, classOf
}

func TestParallelUniversesAssignsObjectsToTheirUniverse(t *testing.T) {
	views, universeOf, classOf := universeData(1, 60)
	res, err := ParallelUniverses(views, UniversesConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Universe recovery.
	agree := 0
	for i, v := range res.UniverseOf {
		if v == universeOf[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(universeOf)); frac < 0.9 {
		t.Errorf("universe recovery = %v", frac)
	}
	// Within each universe, the objects belonging to it must be clustered
	// by class.
	for v := 0; v < 2; v++ {
		var truth, found []int
		for i := range classOf {
			if universeOf[i] == v {
				truth = append(truth, classOf[i])
				found = append(found, res.Clusterings[v].Labels[i])
			}
		}
		if ari := metrics.AdjustedRand(truth, found); ari < 0.9 {
			t.Errorf("universe %d class ARI = %v", v, ari)
		}
	}
	// Membership rows sum to 1.
	for i, row := range res.UniverseWeight {
		var s float64
		for _, w := range row {
			s += w
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("universe weights of object %d sum to %v", i, s)
		}
	}
	if math.IsNaN(res.Objective) {
		t.Error("objective NaN")
	}
}

func TestParallelUniversesErrors(t *testing.T) {
	if _, err := ParallelUniverses(nil, UniversesConfig{K: 2}); err == nil {
		t.Error("no universes should fail")
	}
	if _, err := ParallelUniverses([][][]float64{{}}, UniversesConfig{K: 2}); err == nil {
		t.Error("empty universe should fail")
	}
	v := [][][]float64{{{0}}, {{0}, {1}}}
	if _, err := ParallelUniverses(v, UniversesConfig{K: 1}); err == nil {
		t.Error("mismatched universes should fail")
	}
	v2 := [][][]float64{{{0}, {1}}}
	if _, err := ParallelUniverses(v2, UniversesConfig{K: 5}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestDistributedDBSCANMatchesCentralized(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(1, 240, [][]float64{{0, 0}, {10, 10}, {0, 10}}, 0.5)
	res, err := DistributedDBSCAN(ds.Points, DistributedDBSCANConfig{
		Eps: 1.2, MinPts: 4, Partitions: 4, RepsPerCluster: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(truth, res.Clustering.Labels); ari < 0.95 {
		t.Errorf("distributed ARI = %v", ari)
	}
	// Communication is bounded: far fewer representatives than objects.
	if len(res.Representatives) >= ds.N()/2 {
		t.Errorf("too many representatives shipped: %d of %d", len(res.Representatives), ds.N())
	}
	if res.LocalClusters < 3 {
		t.Errorf("local clusters = %d", res.LocalClusters)
	}
}

func TestDistributedDBSCANAllNoise(t *testing.T) {
	// Far-apart singletons: every site sees only noise.
	pts := [][]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}, {50, 50}, {200, 200}}
	res, err := DistributedDBSCAN(pts, DistributedDBSCANConfig{Eps: 1, MinPts: 2, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.NoiseCount() != len(pts) {
		t.Errorf("noise = %d, want all", res.Clustering.NoiseCount())
	}
}

func TestDistributedDBSCANErrors(t *testing.T) {
	if _, err := DistributedDBSCAN(nil, DistributedDBSCANConfig{Eps: 1, MinPts: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := DistributedDBSCAN([][]float64{{0}}, DistributedDBSCANConfig{Eps: 0, MinPts: 2}); err == nil {
		t.Error("eps=0 should fail")
	}
}
