package multiview

import (
	"errors"
	"fmt"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dbscan"
	"multiclust/internal/dist"
)

// CombineMode selects how local neighbourhoods of the views are merged.
type CombineMode int

const (
	// Union (slide 106): an object is core when the UNION of its local
	// neighbourhoods is large; two objects join when similar in at least one
	// view. Suited to sparse views that each see only part of the structure.
	Union CombineMode = iota
	// Intersection (slide 107): an object is core when the INTERSECTION of
	// its local neighbourhoods is large; objects join only when similar in
	// all views. Suited to unreliable views — purer clusters.
	Intersection
)

func (m CombineMode) String() string {
	if m == Union {
		return "union"
	}
	return "intersection"
}

// MVDBSCANConfig controls multi-represented DBSCAN.
type MVDBSCANConfig struct {
	// Eps per view (must match the number of views).
	Eps    []float64
	MinPts int
	Mode   CombineMode
}

// MVDBSCAN clusters objects described by several representations (views)
// with the multi-represented DBSCAN of Kailing et al. (2004a): the
// epsilon-neighbourhood is evaluated per view with its own radius, and the
// core-object test and reachability use the union or intersection of the
// local neighbourhoods.
func MVDBSCAN(views [][][]float64, cfg MVDBSCANConfig) (*core.Clustering, error) {
	if len(views) == 0 {
		return nil, errors.New("multiview: no views")
	}
	n := len(views[0])
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	for v := 1; v < len(views); v++ {
		if len(views[v]) != n {
			return nil, ErrViewMismatch
		}
	}
	if len(cfg.Eps) != len(views) {
		return nil, fmt.Errorf("multiview: %d eps values for %d views", len(cfg.Eps), len(views))
	}
	for _, e := range cfg.Eps {
		if e <= 0 {
			return nil, errors.New("multiview: eps must be positive")
		}
	}
	if cfg.MinPts <= 0 {
		return nil, errors.New("multiview: minPts must be positive")
	}

	locals := make([]dbscan.NeighborFunc, len(views))
	for v := range views {
		locals[v] = dbscan.EpsNeighbors(views[v], dist.Euclidean, cfg.Eps[v])
	}
	var combined dbscan.NeighborFunc
	switch cfg.Mode {
	case Union:
		combined = func(o int) []int {
			seen := map[int]bool{}
			var out []int
			for _, nf := range locals {
				for _, p := range nf(o) {
					if !seen[p] {
						seen[p] = true
						out = append(out, p)
					}
				}
			}
			return out
		}
	case Intersection:
		combined = func(o int) []int {
			counts := map[int]int{}
			for _, nf := range locals {
				for _, p := range nf(o) {
					counts[p]++
				}
			}
			var out []int
			for p, c := range counts {
				if c == len(locals) {
					out = append(out, p)
				}
			}
			// DBSCAN expands neighbours in list order; sort so cluster
			// shapes do not follow randomized map order.
			sort.Ints(out)
			return out
		}
	default:
		return nil, fmt.Errorf("multiview: unknown combine mode %d", cfg.Mode)
	}
	return dbscan.RunGeneric(n, combined, cfg.MinPts)
}
