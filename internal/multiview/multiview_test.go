package multiview

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/em"
	"multiclust/internal/metrics"
)

func TestCoEMRecoversSharedStructure(t *testing.T) {
	a, b, labels := dataset.TwoSourceViews(1, 240, 3, 2, 2, 0.4, 0)
	res, err := CoEM(a.Points, b.Points, CoEMConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(labels, res.Clustering.Labels); ari < 0.9 {
		t.Errorf("co-EM consensus ARI = %v", ari)
	}
	if len(res.History) == 0 {
		t.Fatal("no history")
	}
	// Agreement between the views should end high.
	last := res.History[len(res.History)-1]
	if last.Agreement < 0.9 {
		t.Errorf("final agreement = %v", last.Agreement)
	}
}

func TestCoEMMultiViewInitBeatsColdSingleView(t *testing.T) {
	// Slide 104's claim: refining a single view from the co-EM final
	// parameters reaches at least the likelihood of a cold single-view EM.
	a, b, _ := dataset.TwoSourceViews(2, 200, 3, 2, 2, 0.5, 0)
	co, err := CoEM(a.Points, b.Points, CoEMConfig{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := em.FitFrom(a.Points, co.ModelA.Clone(), em.Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := em.Fit(a.Points, em.Config{K: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if warm.LogLik < cold.LogLik-1.0 {
		t.Errorf("warm start from co-EM should not be much worse: warm=%v cold=%v", warm.LogLik, cold.LogLik)
	}
}

func TestCoEMErrors(t *testing.T) {
	if _, err := CoEM(nil, nil, CoEMConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	a := [][]float64{{0}, {1}}
	b := [][]float64{{0}}
	if _, err := CoEM(a, b, CoEMConfig{K: 2}); err == nil {
		t.Error("mismatched views should fail")
	}
	if _, err := CoEM(a, a, CoEMConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestMVDBSCANUnionHelpsSparseViews(t *testing.T) {
	// Two sparse views: each view only separates part of the structure
	// (half the objects are junk in each view, complementary halves).
	n := 200
	a, b, labels := dataset.TwoSourceViews(3, n, 2, 2, 2, 0.3, 0)
	// Sparsify: the first 40% of objects are junk in view A, the last 40%
	// junk in view B; the middle 20% stay good in both views and bridge the
	// halves. Junk points are isolated (spacing 10 >> eps).
	for i := 0; i < 2*n/5; i++ {
		a.Points[i][0] += 1000 + 10*float64(i)
	}
	for i := 3 * n / 5; i < n; i++ {
		b.Points[i][0] += 1000 + 10*float64(i)
	}
	views := [][][]float64{a.Points, b.Points}
	union, err := MVDBSCAN(views, MVDBSCANConfig{Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: Union})
	if err != nil {
		t.Fatal(err)
	}
	uARI := metrics.AdjustedRand(labels, union.Labels)
	if uARI < 0.8 {
		t.Errorf("union ARI = %v", uARI)
	}
	inter, err := MVDBSCAN(views, MVDBSCANConfig{Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: Intersection})
	if err != nil {
		t.Fatal(err)
	}
	// Intersection on sparse views drowns: most objects become noise.
	if inter.NoiseCount() <= union.NoiseCount() {
		t.Errorf("intersection should have more noise on sparse views: %d vs %d",
			inter.NoiseCount(), union.NoiseCount())
	}
}

func TestMVDBSCANIntersectionHelpsUnreliableViews(t *testing.T) {
	// View B unreliable for 30% of objects: intersection keeps clusters pure.
	a, b, labels := dataset.TwoSourceViews(4, 200, 2, 2, 2, 0.3, 0.3)
	views := [][][]float64{a.Points, b.Points}
	inter, err := MVDBSCAN(views, MVDBSCANConfig{Eps: []float64{1.2, 1.2}, MinPts: 4, Mode: Intersection})
	if err != nil {
		t.Fatal(err)
	}
	// Purity of non-noise assignments must be high.
	if p := metrics.Purity(labels, inter.Labels); p < 0.95 {
		t.Errorf("intersection purity = %v", p)
	}
}

func TestMVDBSCANErrors(t *testing.T) {
	if _, err := MVDBSCAN(nil, MVDBSCANConfig{}); err == nil {
		t.Error("no views should fail")
	}
	v := [][][]float64{{{0}}, {{0}, {1}}}
	if _, err := MVDBSCAN(v, MVDBSCANConfig{Eps: []float64{1, 1}, MinPts: 1}); err == nil {
		t.Error("mismatched views should fail")
	}
	v2 := [][][]float64{{{0}, {1}}}
	if _, err := MVDBSCAN(v2, MVDBSCANConfig{Eps: []float64{1, 1}, MinPts: 1}); err == nil {
		t.Error("eps count mismatch should fail")
	}
	if _, err := MVDBSCAN(v2, MVDBSCANConfig{Eps: []float64{0}, MinPts: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := MVDBSCAN(v2, MVDBSCANConfig{Eps: []float64{1}, MinPts: 0}); err == nil {
		t.Error("minPts=0 should fail")
	}
}

func TestCoAssociationAndCSPA(t *testing.T) {
	l1 := []int{0, 0, 1, 1}
	l2 := []int{1, 1, 0, 0} // same partition, different labels
	sim, err := CoAssociationFromLabelings([][]int{l1, l2})
	if err != nil {
		t.Fatal(err)
	}
	if sim.At(0, 1) != 1 || sim.At(0, 2) != 0 || sim.At(0, 0) != 1 {
		t.Errorf("co-association wrong: %v", sim)
	}
	c, err := CSPA([][]int{l1, l2}, ConsensusConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(l1, c.Labels); ari != 1 {
		t.Errorf("CSPA consensus ARI = %v", ari)
	}
}

func TestCSPAMajority(t *testing.T) {
	// Two agreeing labelings and one disagreeing: consensus follows the
	// majority.
	maj := []int{0, 0, 0, 1, 1, 1}
	odd := []int{0, 1, 0, 1, 0, 1}
	c, err := CSPA([][]int{maj, maj, odd}, ConsensusConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(maj, c.Labels); ari != 1 {
		t.Errorf("majority consensus ARI = %v", ari)
	}
	if s := SharedNMI(c.Labels, [][]int{maj, maj, odd}); s < 0.6 {
		t.Errorf("SharedNMI = %v", s)
	}
}

func TestConsensusErrors(t *testing.T) {
	if _, err := CoAssociationFromLabelings(nil); err == nil {
		t.Error("no labelings should fail")
	}
	if _, err := CoAssociationFromLabelings([][]int{{0}, {0, 1}}); err == nil {
		t.Error("ragged labelings should fail")
	}
	if _, err := CSPA([][]int{{0, 1}}, ConsensusConfig{K: 5}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestRandomProjectionEnsemble(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(5, 150, [][]float64{
		{0, 0, 0, 0, 0, 0, 0, 0},
		{6, 6, 6, 6, 6, 6, 6, 6},
		{0, 6, 0, 6, 0, 6, 0, 6},
	}, 0.8)
	res, err := RandomProjectionEnsemble(ds.Points, RandomProjectionEnsembleConfig{K: 3, Runs: 12, TargetDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	consensusARI := metrics.AdjustedRand(truth, res.Consensus.Labels)
	if consensusARI < 0.9 {
		t.Errorf("consensus ARI = %v", consensusARI)
	}
	// The consensus should beat the WORST individual run (single random
	// projections are unstable, slide 110).
	worst := 1.0
	for _, r := range res.Runs {
		if a := metrics.AdjustedRand(truth, r.Labels); a < worst {
			worst = a
		}
	}
	if consensusARI < worst {
		t.Errorf("consensus %v worse than worst individual %v", consensusARI, worst)
	}
	if res.Similarity == nil || res.Similarity.Rows != 150 {
		t.Error("similarity matrix missing")
	}
}

func TestRandomProjectionEnsembleErrors(t *testing.T) {
	if _, err := RandomProjectionEnsemble(nil, RandomProjectionEnsembleConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := RandomProjectionEnsemble([][]float64{{0}}, RandomProjectionEnsembleConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestHSIC(t *testing.T) {
	// Dependent: y = x. Independent: y decorrelated from x.
	n := 60
	x := make([][]float64, n)
	same := make([][]float64, n)
	indep := make([][]float64, n)
	for i := 0; i < n; i++ {
		v := float64(i%10) - 4.5
		x[i] = []float64{v}
		same[i] = []float64{2 * v}
		indep[i] = []float64{float64((i*7)%10) - 4.5}
	}
	hSame, err := HSIC(x, same)
	if err != nil {
		t.Fatal(err)
	}
	hIndep, err := HSIC(x, indep)
	if err != nil {
		t.Fatal(err)
	}
	if hSame <= hIndep {
		t.Errorf("HSIC(dependent)=%v should exceed HSIC(independent)=%v", hSame, hIndep)
	}
	if _, err := HSIC(x, x[:10]); err == nil {
		t.Error("mismatched lengths should fail")
	}
}

func TestMSCExtractsIndependentViews(t *testing.T) {
	ds, labelings, viewDims := dataset.MultiViewGaussians(7, 150, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.4},
		{Dims: 2, K: 2, Sep: 6, Sigma: 0.4},
	})
	views, err := MSC(ds.Points, MSCConfig{K: 2, Views: 2, DimsPer: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 {
		t.Fatalf("views = %d", len(views))
	}
	// Each extracted view should match one ground-truth view's labeling.
	bestFirst, bestSecond := 0.0, 0.0
	for _, v := range views {
		if a := metrics.AdjustedRand(labelings[0], v.Clustering.Labels); a > bestFirst {
			bestFirst = a
		}
		if a := metrics.AdjustedRand(labelings[1], v.Clustering.Labels); a > bestSecond {
			bestSecond = a
		}
	}
	if bestFirst < 0.8 || bestSecond < 0.8 {
		t.Errorf("views not recovered: %v %v", bestFirst, bestSecond)
	}
	// Dims of the two views must be disjoint.
	_ = viewDims
	for _, d2 := range views[1].Dims {
		for _, d1 := range views[0].Dims {
			if d1 == d2 {
				t.Fatal("views share dimensions")
			}
		}
	}
}

func TestMSCErrors(t *testing.T) {
	if _, err := MSC(nil, MSCConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := MSC([][]float64{{0, 1}}, MSCConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := MSC([][]float64{{0, 1}, {1, 0}}, MSCConfig{K: 2, Lambda: -1}); err == nil {
		t.Error("negative lambda should fail")
	}
}

func TestTwoViewSpectral(t *testing.T) {
	a, b, labels := dataset.TwoSourceViews(9, 120, 2, 2, 2, 0.4, 0)
	c, err := TwoViewSpectral(a.Points, b.Points, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(labels, c.Labels); ari < 0.9 {
		t.Errorf("two-view spectral ARI = %v", ari)
	}
	if _, err := TwoViewSpectral(a.Points, a.Points[:5], 2, 1); err == nil {
		t.Error("mismatched views should fail")
	}
	if _, err := TwoViewSpectral(nil, nil, 2, 1); err == nil {
		t.Error("empty should fail")
	}
}

func TestCombineModeString(t *testing.T) {
	if Union.String() != "union" || Intersection.String() != "intersection" {
		t.Error("mode names wrong")
	}
}

func TestAgreementLabelMatching(t *testing.T) {
	// Perfectly agreeing posteriors under permuted labels.
	a := [][]float64{{1, 0}, {1, 0}, {0, 1}}
	b := [][]float64{{0, 1}, {0, 1}, {1, 0}}
	if got := agreement(a, b); got != 1 {
		t.Errorf("agreement = %v, want 1 (label permutation)", got)
	}
}
