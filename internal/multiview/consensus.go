package multiview

import (
	"errors"
	"fmt"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/em"
	"multiclust/internal/hierarchical"
	"multiclust/internal/linalg"
	"multiclust/internal/metrics"
	"multiclust/internal/parallel"
)

// ConsensusConfig controls the similarity-based consensus step.
type ConsensusConfig struct {
	K int // clusters in the consensus solution
}

// ConsensusFromCoAssociation merges a set of soft co-association entries
// into one clustering: the n×n matrix sim (entries in [0,1], 1 = always
// together) is converted to a distance and cut with average-link
// agglomeration — the cluster-ensemble step used by Fern & Brodley (2003)
// and CSPA (Strehl & Ghosh 2002).
func ConsensusFromCoAssociation(sim *linalg.Matrix, cfg ConsensusConfig) (*core.Clustering, error) {
	if sim.Rows != sim.Cols || sim.Rows == 0 {
		return nil, errors.New("multiview: similarity matrix must be square and non-empty")
	}
	n := sim.Rows
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("multiview: invalid consensus K=%d", cfg.K)
	}
	ids := make([][]float64, n)
	for i := range ids {
		ids[i] = []float64{float64(i)}
	}
	d := dist.Func(func(a, b []float64) float64 {
		return 1 - sim.At(int(a[0]), int(b[0]))
	})
	dg, err := hierarchical.Run(ids, d, hierarchical.AverageLink)
	if err != nil {
		return nil, err
	}
	return dg.Cut(cfg.K)
}

// CoAssociationFromLabelings builds the co-association similarity from hard
// labelings: sim_ij = fraction of labelings putting i and j in the same
// cluster (noise assignments never co-associate).
func CoAssociationFromLabelings(labelings [][]int) (*linalg.Matrix, error) {
	if len(labelings) == 0 {
		return nil, errors.New("multiview: no labelings")
	}
	n := len(labelings[0])
	for _, l := range labelings {
		if len(l) != n {
			return nil, ErrViewMismatch
		}
	}
	sim := linalg.NewMatrix(n, n)
	for _, l := range labelings {
		for i := 0; i < n; i++ {
			if l[i] < 0 {
				continue
			}
			for j := i; j < n; j++ {
				if l[j] == l[i] {
					sim.Data[i*n+j]++
					sim.Data[j*n+i] = sim.Data[i*n+j]
				}
			}
		}
	}
	inv := 1 / float64(len(labelings))
	for i := range sim.Data {
		sim.Data[i] *= inv
	}
	// The loop above double-scales the diagonal; normalize it to exactly 1.
	for i := 0; i < n; i++ {
		sim.Set(i, i, 1)
	}
	return sim, nil
}

// CSPA runs the cluster-based similarity partitioning consensus of Strehl &
// Ghosh (2002) over hard labelings.
func CSPA(labelings [][]int, cfg ConsensusConfig) (*core.Clustering, error) {
	sim, err := CoAssociationFromLabelings(labelings)
	if err != nil {
		return nil, err
	}
	return ConsensusFromCoAssociation(sim, cfg)
}

// SharedNMI is the ensemble objective of Strehl & Ghosh: the average
// normalized mutual information between a candidate consensus and the input
// labelings. The best consensus maximizes it.
func SharedNMI(consensus []int, labelings [][]int) float64 {
	if len(labelings) == 0 {
		return 0
	}
	var s float64
	for _, l := range labelings {
		s += metrics.NMI(consensus, l)
	}
	return s / float64(len(labelings))
}

// RandomProjectionEnsembleConfig controls the Fern & Brodley pipeline.
type RandomProjectionEnsembleConfig struct {
	K         int // clusters per run and in the consensus
	Runs      int // ensemble size, default 10
	TargetDim int // projected dimensionality, default 2
	Seed      int64
	Workers   int // parallelism; <=0 resolves via internal/parallel
}

// RandomProjectionEnsembleResult keeps the per-run clusterings alongside the
// consensus so the diversity-vs-consensus figure can be regenerated.
type RandomProjectionEnsembleResult struct {
	Consensus  *core.Clustering
	Runs       []*core.Clustering
	Similarity *linalg.Matrix
}

// RandomProjectionEnsemble implements Fern & Brodley (2003, slides 108–110):
// project the data onto Runs random subspaces, soft-cluster each projection
// with EM, aggregate the probabilistic co-association matrix
//
//	P_ij = (1/Runs) * sum_t sum_l post_t[i][l] * post_t[j][l]
//
// and extract the consensus clustering from it. A single random projection
// is unstable; the ensemble's aggregated similarity is not.
func RandomProjectionEnsemble(points [][]float64, cfg RandomProjectionEnsembleConfig) (*RandomProjectionEnsembleResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("multiview: invalid K=%d", cfg.K)
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 10
	}
	d := len(points[0])
	if cfg.TargetDim <= 0 {
		cfg.TargetDim = 2
	}
	if cfg.TargetDim > d {
		cfg.TargetDim = d
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The runs are independent; execute them on the shared worker pool with
	// seeds drawn up front and reduce in run order so the result stays
	// deterministic for any worker count.
	type runOut struct {
		clustering *core.Clustering
		posterior  [][]float64
		err        error
	}
	seeds := make([][2]int64, cfg.Runs)
	for t := range seeds {
		seeds[t] = [2]int64{rng.Int63(), rng.Int63()} // projection seed, EM seed
	}
	outs := parallel.Map(cfg.Runs, cfg.Workers, func(t int) runOut {
		prng := rand.New(rand.NewSource(seeds[t][0]))
		proj := linalg.NewMatrix(cfg.TargetDim, d)
		for i := range proj.Data {
			proj.Data[i] = prng.NormFloat64()
		}
		projected := make([][]float64, n)
		for i, p := range points {
			projected[i] = proj.MulVec(p)
		}
		fit, err := em.Fit(projected, em.Config{K: cfg.K, Seed: seeds[t][1], MaxIter: 60})
		if err != nil {
			return runOut{err: err}
		}
		return runOut{clustering: fit.Clustering, posterior: fit.Posterior}
	})

	sim := linalg.NewMatrix(n, n)
	res := &RandomProjectionEnsembleResult{}
	for t := 0; t < cfg.Runs; t++ {
		if outs[t].err != nil {
			return nil, outs[t].err
		}
		res.Runs = append(res.Runs, outs[t].clustering)
		post := outs[t].posterior
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				var p float64
				for l := 0; l < cfg.K; l++ {
					p += post[i][l] * post[j][l]
				}
				sim.Data[i*n+j] += p
				if i != j {
					sim.Data[j*n+i] += p
				}
			}
		}
	}
	inv := 1 / float64(cfg.Runs)
	for i := range sim.Data {
		sim.Data[i] *= inv
	}
	res.Similarity = sim
	consensus, err := ConsensusFromCoAssociation(sim, ConsensusConfig{K: cfg.K})
	if err != nil {
		return nil, err
	}
	res.Consensus = consensus
	return res, nil
}
