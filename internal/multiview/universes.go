package multiview

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// UniversesConfig controls learning in parallel universes.
type UniversesConfig struct {
	K       int     // clusters per universe
	M       float64 // fuzzifier (>1), default 2
	MaxIter int     // default 100
	Seed    int64
	Tol     float64 // relative objective tolerance, default 1e-6
}

// UniversesResult carries per-universe clusterings and the learned
// object-universe memberships.
type UniversesResult struct {
	// Clusterings holds the hard clustering per universe; objects whose
	// universe membership is low elsewhere are still assigned everywhere
	// (use UniverseOf for the primary universe).
	Clusterings []*core.Clustering
	// UniverseWeight[i][v] is the learned degree to which object i belongs
	// to universe v (rows sum to 1).
	UniverseWeight [][]float64
	// UniverseOf[i] is the argmax universe per object.
	UniverseOf []int
	Objective  float64
	Iterations int
}

// ParallelUniverses implements learning in parallel universes (Wiswedel,
// Höppner & Berthold 2010, tutorial slide 100): fuzzy c-means runs in every
// universe (view) simultaneously while each object learns a membership
// distribution over the universes, so an object shapes the clustering only
// of the universes it belongs to. The joint objective minimized is
//
//	sum_i sum_v w_iv^M * sum_c u_ivc^M * d²(x_iv, center_vc)
//
// with both membership layers updated by the standard FCM closed forms.
func ParallelUniverses(views [][][]float64, cfg UniversesConfig) (*UniversesResult, error) {
	nv := len(views)
	if nv == 0 {
		return nil, errors.New("multiview: no universes")
	}
	n := len(views[0])
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	for v := 1; v < nv; v++ {
		if len(views[v]) != n {
			return nil, ErrViewMismatch
		}
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("multiview: invalid K=%d", cfg.K)
	}
	if cfg.M <= 1 {
		cfg.M = 2
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialize cluster centers per universe from random objects and
	// uniform-ish memberships.
	centers := make([][][]float64, nv)
	for v := range centers {
		d := len(views[v][0])
		centers[v] = make([][]float64, cfg.K)
		perm := rng.Perm(n)
		for c := 0; c < cfg.K; c++ {
			centers[v][c] = append([]float64(nil), views[v][perm[c%n]]...)
			_ = d
		}
	}
	w := make([][]float64, n) // universe memberships
	u := make([][][]float64, n)
	for i := 0; i < n; i++ {
		w[i] = make([]float64, nv)
		u[i] = make([][]float64, nv)
		for v := 0; v < nv; v++ {
			w[i][v] = 1 / float64(nv)
			u[i][v] = make([]float64, cfg.K)
			for c := range u[i][v] {
				u[i][v][c] = rng.Float64() + 0.1
			}
			normalizeRow(u[i][v])
		}
	}

	const epsD = 1e-9
	prev := math.Inf(1)
	var obj float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// Cluster membership update (per universe, standard FCM).
		exp := 2 / (cfg.M - 1)
		for i := 0; i < n; i++ {
			for v := 0; v < nv; v++ {
				for c := 0; c < cfg.K; c++ {
					dc := dist.SqEuclidean(views[v][i], centers[v][c]) + epsD
					var s float64
					for c2 := 0; c2 < cfg.K; c2++ {
						d2 := dist.SqEuclidean(views[v][i], centers[v][c2]) + epsD
						s += math.Pow(dc/d2, exp/2)
					}
					u[i][v][c] = 1 / s
				}
			}
		}
		// Universe membership update: w_iv ∝ (1/J_iv)^{1/(M-1)} with J_iv
		// the object's fuzzy distortion inside universe v.
		for i := 0; i < n; i++ {
			jv := make([]float64, nv)
			for v := 0; v < nv; v++ {
				var s float64
				for c := 0; c < cfg.K; c++ {
					s += math.Pow(u[i][v][c], cfg.M) * (dist.SqEuclidean(views[v][i], centers[v][c]) + epsD)
				}
				jv[v] = s + epsD
			}
			var total float64
			for v := 0; v < nv; v++ {
				w[i][v] = math.Pow(1/jv[v], 1/(cfg.M-1))
				total += w[i][v]
			}
			for v := 0; v < nv; v++ {
				w[i][v] /= total
			}
		}
		// Center update, weighted by both membership layers.
		for v := 0; v < nv; v++ {
			d := len(views[v][0])
			for c := 0; c < cfg.K; c++ {
				num := make([]float64, d)
				var den float64
				for i := 0; i < n; i++ {
					wt := math.Pow(w[i][v], cfg.M) * math.Pow(u[i][v][c], cfg.M)
					den += wt
					for j, x := range views[v][i] {
						num[j] += wt * x
					}
				}
				if den > 0 {
					for j := range num {
						num[j] /= den
					}
					centers[v][c] = num
				}
			}
		}
		// Objective.
		obj = 0
		for i := 0; i < n; i++ {
			for v := 0; v < nv; v++ {
				wm := math.Pow(w[i][v], cfg.M)
				for c := 0; c < cfg.K; c++ {
					obj += wm * math.Pow(u[i][v][c], cfg.M) * dist.SqEuclidean(views[v][i], centers[v][c])
				}
			}
		}
		if math.Abs(prev-obj) <= cfg.Tol*(1+math.Abs(obj)) {
			break
		}
		prev = obj
	}

	res := &UniversesResult{
		UniverseWeight: w,
		UniverseOf:     make([]int, n),
		Objective:      obj,
		Iterations:     iter,
	}
	for i := 0; i < n; i++ {
		best, bestW := 0, -1.0
		for v := 0; v < nv; v++ {
			if w[i][v] > bestW {
				best, bestW = v, w[i][v]
			}
		}
		res.UniverseOf[i] = best
	}
	for v := 0; v < nv; v++ {
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			best, bestU := 0, -1.0
			for c := 0; c < cfg.K; c++ {
				if u[i][v][c] > bestU {
					best, bestU = c, u[i][v][c]
				}
			}
			labels[i] = best
		}
		res.Clusterings = append(res.Clusterings, core.NewClustering(labels))
	}
	return res, nil
}

func normalizeRow(row []float64) {
	var s float64
	for _, v := range row {
		s += v
	}
	if s > 0 {
		for i := range row {
			row[i] /= s
		}
	}
}
