// Package alternative implements the "given knowledge → iterative
// alternative" paradigm of the tutorial's section 2: COALA's constraint-
// driven agglomeration (Bae & Bailey 2006), a conditional information
// bottleneck (Chechik & Tishby 2002; Gondek & Hofmann 2003/2004), and a
// minCEntropy-style conditional objective (Vinh & Epps 2010).
package alternative

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// CoalaConfig controls a COALA run.
type CoalaConfig struct {
	K int // clusters in the alternative solution
	// W trades quality against dissimilarity (slide 33): a quality merge is
	// taken when dQual < W*dDiss. Large W prefers quality merges, small W
	// prefers dissimilarity merges. Default 1.
	W        float64
	Distance dist.Func // default Euclidean
}

// CoalaResult records the alternative clustering and merge statistics.
type CoalaResult struct {
	Clustering *core.Clustering
	// QualityMerges and DissimilarityMerges count which branch of the merge
	// rule fired, exposing the W trade-off directly.
	QualityMerges       int
	DissimilarityMerges int
}

// Coala computes an alternative clustering to given, using cannot-link
// constraints derived from it: objects sharing a cluster in given must not
// be grouped again. Average-link agglomeration proceeds with the dual merge
// rule of the paper:
//
//	q  = best merge ignoring constraints (smallest average-link distance)
//	d  = best merge among constraint-respecting pairs
//	if dist(q) < W*dist(d) take q, else take d.
func Coala(points [][]float64, given *core.Clustering, cfg CoalaConfig) (*CoalaResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if cfg.W <= 0 {
		cfg.W = 1
	}
	if cfg.Distance == nil {
		cfg.Distance = dist.Euclidean
	}

	pd := dist.PairwiseMatrix(points, cfg.Distance)

	// Group state. sumDist[a][b] is the sum of point-pair distances between
	// groups a and b, so the average link is sumDist/(size_a*size_b) and both
	// update in O(groups) per merge (Lance–Williams style).
	type group struct {
		members []int
		origSet map[int]bool // original-cluster labels present in the group
	}
	groups := make(map[int]*group, n)
	for i := 0; i < n; i++ {
		gs := map[int]bool{}
		if l := given.Labels[i]; l >= 0 {
			gs[l] = true
		}
		groups[i] = &group{members: []int{i}, origSet: gs}
	}
	sumDist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sumDist[key(i, j)] = pd.At(i, j)
		}
	}

	compatible := func(a, b *group) bool {
		// A cannot-link exists between the groups iff they share an original
		// cluster label (any two objects of that label are cannot-linked).
		small, large := a.origSet, b.origSet
		if len(small) > len(large) {
			small, large = large, small
		}
		for l := range small {
			if large[l] {
				return false
			}
		}
		return true
	}

	res := &CoalaResult{}
	nextID := n
	for len(groups) > cfg.K {
		bestQA, bestQB, bestQ := -1, -1, math.Inf(1)
		bestDA, bestDB, bestD := -1, -1, math.Inf(1)
		ids := sortedKeys(groups)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				a, b := ids[x], ids[y]
				ga, gb := groups[a], groups[b]
				avg := sumDist[key(a, b)] / float64(len(ga.members)*len(gb.members))
				if avg < bestQ {
					bestQA, bestQB, bestQ = a, b, avg
				}
				if avg < bestD && compatible(ga, gb) {
					bestDA, bestDB, bestD = a, b, avg
				}
			}
		}
		var ma, mb int
		if bestDA < 0 || bestQ < cfg.W*bestD {
			// No constraint-respecting merge exists, or quality wins.
			ma, mb = bestQA, bestQB
			res.QualityMerges++
		} else {
			ma, mb = bestDA, bestDB
			res.DissimilarityMerges++
		}
		ga, gb := groups[ma], groups[mb]
		merged := &group{
			members: append(append([]int(nil), ga.members...), gb.members...),
			origSet: map[int]bool{},
		}
		for l := range ga.origSet {
			merged.origSet[l] = true
		}
		for l := range gb.origSet {
			merged.origSet[l] = true
		}
		// Update linkage sums to every other group.
		for _, other := range ids {
			if other == ma || other == mb {
				continue
			}
			sumDist[key(nextID, other)] = sumDist[key(ma, other)] + sumDist[key(mb, other)]
			delete(sumDist, key(ma, other))
			delete(sumDist, key(mb, other))
		}
		delete(sumDist, key(ma, mb))
		delete(groups, ma)
		delete(groups, mb)
		groups[nextID] = merged
		nextID++
	}

	labels := make([]int, n)
	cid := 0
	for _, id := range sortedKeys(groups) {
		for _, o := range groups[id].members {
			labels[o] = cid
		}
		cid++
	}
	res.Clustering = core.NewClustering(labels)
	return res, nil
}

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// ErrNoAlternative is returned by algorithms that cannot produce a valid
// alternative under the requested constraints.
var ErrNoAlternative = errors.New("alternative: no valid alternative clustering exists under the given constraints")
