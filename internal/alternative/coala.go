// Package alternative implements the "given knowledge → iterative
// alternative" paradigm of the tutorial's section 2: COALA's constraint-
// driven agglomeration (Bae & Bailey 2006), a conditional information
// bottleneck (Chechik & Tishby 2002; Gondek & Hofmann 2003/2004), and a
// minCEntropy-style conditional objective (Vinh & Epps 2010).
package alternative

import (
	"context"
	"errors"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// CoalaConfig controls a COALA run.
type CoalaConfig struct {
	K int // clusters in the alternative solution
	// W trades quality against dissimilarity (slide 33): a quality merge is
	// taken when dQual < W*dDiss. Large W prefers quality merges, small W
	// prefers dissimilarity merges. Default 1.
	W        float64
	Distance dist.Func // default Euclidean
	Workers  int       // parallelism of the pair seeding; <=0 resolves via internal/parallel
}

// CoalaResult records the alternative clustering and merge statistics.
type CoalaResult struct {
	Clustering *core.Clustering
	// QualityMerges and DissimilarityMerges count which branch of the merge
	// rule fired, exposing the W trade-off directly.
	QualityMerges       int
	DissimilarityMerges int
}

// coalaGroup is one active agglomeration group. Groups are identified by a
// monotonically increasing id (singletons 0..n-1, the g-th merge creates id
// n+g) and never mutate after creation, so a heap entry naming two ids
// refers to a fixed pair of member sets with a fixed average-link distance.
type coalaGroup struct {
	members []int
	origSet []int // original-cluster labels present in the group, ascending
}

// pairEntry is one merge candidate: the average-link distance between the
// fixed groups a < b (group ids). Entries are never updated in place —
// merging kills both ids and pushes fresh entries for the merged group —
// so an entry whose ids are both alive always carries the current value.
type pairEntry struct {
	d    float64
	a, b int
}

// pairLess is the candidate order (d, a, b). The id tie-break reproduces
// the full-rescan reference exactly: scanning pairs of sorted group ids
// with a strict < keeps the lexicographically smallest (a, b) among equal
// distances, which is precisely this comparator's minimum. The order is
// total over pair values — a pair pushed twice yields two identical
// entries — so the surfaced minimum is independent of push order and of
// the heap's internal layout.
func pairLess(x, y pairEntry) bool {
	if x.d < y.d {
		return true
	}
	if y.d < x.d {
		return false
	}
	if x.a != y.a {
		return x.a < y.a
	}
	return x.b < y.b
}

// pairHeap is a hand-rolled binary min-heap of merge candidates ordered by
// pairLess. container/heap's interface indirection (a dynamic Less/Swap
// call per level) dominated the merge-loop profile; inlining the sift
// operations over the concrete slice removes it.
type pairHeap []pairEntry

func (h pairHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

func (h pairHeap) siftDown(i int) {
	n := len(h)
	for {
		m := 2*i + 1
		if m >= n {
			return
		}
		if r := m + 1; r < n && pairLess(h[r], h[m]) {
			m = r
		}
		if !pairLess(h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

func (h *pairHeap) push(e pairEntry) {
	s := append(*h, e)
	*h = s
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if !pairLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

// popTop removes the minimum.
func (h *pairHeap) popTop() {
	s := *h
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s[:n].siftDown(0)
}

// unionSorted merges two ascending label sets into a fresh ascending set.
func unionSorted(x, y []int) []int {
	out := make([]int, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			out = append(out, x[i])
			i++
		case y[j] < x[i]:
			out = append(out, y[j])
			j++
		default:
			out = append(out, x[i])
			i++
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// Coala computes an alternative clustering to given, using cannot-link
// constraints derived from it: objects sharing a cluster in given must not
// be grouped again. Average-link agglomeration proceeds with the dual merge
// rule of the paper:
//
//	q  = best merge ignoring constraints (smallest average-link distance)
//	d  = best merge among constraint-respecting pairs
//	if dist(q) < W*dist(d) take q, else take d.
func Coala(points [][]float64, given *core.Clustering, cfg CoalaConfig) (*CoalaResult, error) {
	return CoalaContext(context.Background(), points, given, cfg)
}

// CoalaContext is Coala with cancellation: ctx is polled at every merge
// boundary and, when it fires, the current groups are flattened into a
// valid clustering (more than K clusters, each a completed merge state) and
// returned wrapped in core.ErrInterrupted. With a background context the
// output is byte-identical to Coala.
//
// The agglomeration core keeps the pairwise linkage sums in a dense
// triangular array indexed by group slot (a merged group reuses its first
// parent's slot, so n slots suffice for the whole run) and the merge
// candidates in two lazy-deletion min-heaps — one over all pairs (the
// quality branch q) and one over constraint-respecting pairs (the
// dissimilarity branch d). Each heap holds, for every live group, an entry
// for its current nearest partner (O(n) entries, not O(n²)): a pair's
// average-link distance never changes while both groups are alive (only
// merges create new pairs), so a registered nearest-partner entry stays
// exact until an endpoint dies, and a pair's compatibility is likewise
// fixed at push time. When a stale entry (a dead endpoint) surfaces, the
// surviving endpoint's next nearest partner is rescanned from the dense
// sums and pushed — the repair happens before any larger key can win, so
// the heap minimum is always the true minimum over live pairs and the
// merge sequence is byte-identical to the reference implementation's
// O(G²) rescan (pinned by the property tests). The Lance–Williams
// average-link update (sum additivity) keeps every candidate distance
// exactly equal to the rescan's value.
func CoalaContext(ctx context.Context, points [][]float64, given *core.Clustering, cfg CoalaConfig) (*CoalaResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if cfg.W <= 0 {
		cfg.W = 1
	}
	if cfg.Distance == nil {
		cfg.Distance = dist.Euclidean
	}
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "coala.run")
	defer endSpan()

	// Group state, indexed by id. Ids are never reused: singletons take
	// 0..n-1 and each of the at most n-1 merges allocates the next id, so
	// 2n-1 slots bound the run.
	groups := make([]*coalaGroup, 2*n)
	alive := make([]bool, 2*n)
	idSlot := make([]int, 2*n) // id → slot into the triangular sum array
	for i := 0; i < n; i++ {
		var gs []int
		if l := given.Labels[i]; l >= 0 {
			gs = []int{l}
		}
		groups[i] = &coalaGroup{members: []int{i}, origSet: gs}
		alive[i] = true
		idSlot[i] = i
	}

	// sums[tri(sa,sb)] is the sum of point-pair distances between the groups
	// occupying slots sa and sb, so the average link is sum/(size_a*size_b)
	// and a merge updates the row of the surviving slot by addition.
	sums := make([]float64, n*(n-1)/2)
	tri := func(i, j int) int {
		if i > j {
			i, j = j, i
		}
		return i*n - i*(i+1)/2 + j - i - 1
	}

	// Nearest-partner seeding, fanned out per row: worker i fills row i of
	// the triangular sums and computes singleton i's nearest partner and
	// nearest compatible partner over the full distance row. Every result
	// lands at a fixed slot, so the fill is byte-identical for any worker
	// count. Distances are computed directly into the triangular sums —
	// no n×n pairwise matrix is materialized (the former matrix was ~2x
	// the working set and pure GC churn). Each unordered pair is evaluated
	// as distance(points[a], points[b]) with a < b everywhere, so the o < i
	// re-evaluation of a pair owned by row o yields the identical bits
	// even for an asymmetric distance. The heaps start with one entry per
	// group — its current nearest (compatible) partner — rather than all
	// n(n-1)/2 pairs; stale-pop repair in peek keeps that invariant as
	// groups die.
	const noPartner = -1
	seedAll := make([]pairEntry, n)
	seedCompat := make([]pairEntry, n)
	seedHasCompat := make([]bool, n)
	// parallel.For, not Each: every row costs the same O(n) scan, so static
	// contiguous blocks avoid the per-index cursor and panic-guard overhead.
	parallel.For(n, cfg.Workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			off := i*n - i*(i+1)/2 - i - 1
			li := given.Labels[i]
			bestA := pairEntry{a: noPartner, b: noPartner}
			bestC := pairEntry{}
			haveA, haveC := false, false
			for o := 0; o < n; o++ {
				if o == i {
					continue
				}
				a, b := i, o
				if o < i {
					a, b = o, i
				}
				v := cfg.Distance(points[a], points[b])
				if o > i {
					sums[off+o] = v
				}
				e := pairEntry{d: v, a: a, b: b}
				if !haveA || pairLess(e, bestA) {
					bestA, haveA = e, true
				}
				if l := given.Labels[o]; li < 0 || li != l {
					if !haveC || pairLess(e, bestC) {
						bestC, haveC = e, true
					}
				}
			}
			seedAll[i] = bestA
			seedCompat[i] = bestC
			seedHasCompat[i] = haveC
		}
	})

	// regAll/regCompat record, per live group, the partner named by its
	// registered entry — the best candidate it has pushed so far. A stale
	// pop whose surviving endpoint still registers the dead partner means
	// the group's nearest partner was lost and its next nearest must be
	// rescanned; any other stale entry is dominated garbage (the endpoint
	// registered something better since) and is dropped without a rescan.
	// entAll/entCompat hold the registered entries so the merge loop can
	// push a fresh (o, merged) candidate only when it improves on o's
	// current registration, keeping the heaps at O(live groups) entries.
	regAll := make([]int, 2*n)
	regCompat := make([]int, 2*n)
	entAll := make([]pairEntry, 2*n)
	entCompat := make([]pairEntry, 2*n)
	heapAll := make(pairHeap, 0, 4*n)
	heapCompat := make(pairHeap, 0, 4*n)
	var stalePops, pairsPushed int64
	for i := 0; i < n; i++ {
		if e := seedAll[i]; e.a != noPartner {
			heapAll = append(heapAll, e)
			regAll[i] = e.a + e.b - i
			entAll[i] = e
			pairsPushed++
		} else {
			regAll[i] = noPartner
		}
		if seedHasCompat[i] {
			e := seedCompat[i]
			heapCompat = append(heapCompat, e)
			regCompat[i] = e.a + e.b - i
			entCompat[i] = e
			pairsPushed++
		} else {
			regCompat[i] = noPartner
		}
	}
	heapAll.init()
	heapCompat.init()

	compatible := func(a, b *coalaGroup) bool {
		// A cannot-link exists between the groups iff they share an original
		// cluster label (any two objects of that label are cannot-linked).
		// Both label sets are ascending; a two-pointer sweep finds overlap.
		x, y := a.origSet, b.origSet
		for i, j := 0, 0; i < len(x) && j < len(y); {
			switch {
			case x[i] < y[j]:
				i++
			case y[j] < x[i]:
				j++
			default:
				return false
			}
		}
		return true
	}

	res := &CoalaResult{}
	nextID := n
	activeCount := n

	// live is the compact set of live group ids (arbitrary but
	// deterministic order — maintained by swap-remove in serial code).
	// The merge sweep and the rescans iterate it directly instead of
	// walking all allocated ids with a liveness filter; iteration order is
	// immaterial to the outcome because every minimum is selected under
	// the total order pairLess and every other write lands at a per-group
	// slot.
	live := make([]int, n, 2*n)
	livePos := make([]int, 2*n)
	for i := 0; i < n; i++ {
		live[i] = i
		livePos[i] = i
	}
	dropLive := func(id int) {
		p := livePos[id]
		last := live[len(live)-1]
		live[p] = last
		livePos[last] = p
		live = live[:len(live)-1]
	}

	// avgEntry reads the exact average-link candidate for live groups x and
	// o from the dense sums — the same division expression used for every
	// pushed entry, so a rescanned value is bit-identical to a pushed one.
	avgEntry := func(x, o int) pairEntry {
		d := sums[tri(idSlot[x], idSlot[o])] / float64(len(groups[x].members)*len(groups[o].members))
		a, b := x, o
		if o < x {
			a, b = o, x
		}
		return pairEntry{d: d, a: a, b: b}
	}
	// rescan finds live group x's nearest (optionally compatible) live
	// partner, O(live groups) per call; it runs only when a stale pop just
	// removed x's registered nearest, which happens at most once per heap
	// per merged-away partner.
	rescan := func(x int, compatOnly bool) (pairEntry, bool) {
		var best pairEntry
		have := false
		for _, o := range live {
			if o == x {
				continue
			}
			if compatOnly && !compatible(groups[x], groups[o]) {
				continue
			}
			if e := avgEntry(x, o); !have || pairLess(e, best) {
				best, have = e, true
			}
		}
		return best, have
	}
	// peek surfaces the minimum live candidate of h. Stale entries (a dead
	// endpoint) are popped; when the popped entry was a surviving
	// endpoint's registered nearest, its replacement is rescanned and
	// pushed before the loop re-reads the top — the replacement has a
	// larger key than the stale entry it succeeds, but may undercut
	// whatever currently sits at the top, so the minimum over live pairs
	// is always restored before peek returns.
	peek := func(h *pairHeap, compatOnly bool, reg []int, ent []pairEntry) (pairEntry, bool) {
		for len(*h) > 0 {
			top := (*h)[0]
			if alive[top.a] && alive[top.b] {
				return top, true
			}
			h.popTop()
			stalePops++
			for _, x := range [2]int{top.a, top.b} {
				if !alive[x] || reg[x] != top.a+top.b-x {
					continue
				}
				if e, ok := rescan(x, compatOnly); ok {
					reg[x] = e.a + e.b - x
					ent[x] = e
					h.push(e)
					pairsPushed++
				} else {
					reg[x] = noPartner
				}
			}
		}
		return pairEntry{}, false
	}

	var interrupted error
	for activeCount > cfg.K {
		// Merge-boundary cancellation: every completed merge is kept, so the
		// flattened best-so-far below is a valid (if coarser-than-requested)
		// clustering.
		if err := ctx.Err(); err != nil {
			interrupted = err
			break
		}
		qe, okQ := peek(&heapAll, false, regAll, entAll)
		if !okQ {
			break // unreachable while activeCount >= 2: every live pair has an entry
		}
		de, okD := peek(&heapCompat, true, regCompat, entCompat)
		var ma, mb int
		if !okD || qe.d < cfg.W*de.d {
			// No constraint-respecting merge exists, or quality wins.
			ma, mb = qe.a, qe.b
			res.QualityMerges++
		} else {
			ma, mb = de.a, de.b
			res.DissimilarityMerges++
		}
		ga, gb := groups[ma], groups[mb]
		merged := &coalaGroup{
			members: append(append([]int(nil), ga.members...), gb.members...),
			origSet: unionSorted(ga.origSet, gb.origSet),
		}
		sa, sb := idSlot[ma], idSlot[mb]
		alive[ma], alive[mb] = false, false
		dropLive(ma)
		dropLive(mb)
		// Lance–Williams update against every other live group, in ascending
		// id order. Each fresh (o, merged) candidate is pushed only when it
		// improves on o's registered entry — otherwise the registration
		// (whose key is no larger) covers it, surfacing first and triggering
		// a rescan that rediscovers the pair if it has become o's nearest.
		// The merged group's own nearest (compatible) partner falls out of
		// the same sweep and is registered for the new id.
		msz := len(merged.members)
		var bestM, bestMC pairEntry
		haveM, haveMC := false, false
		for _, o := range live {
			so := idSlot[o]
			ta := tri(sa, so)
			s := sums[ta] + sums[tri(sb, so)]
			sums[ta] = s
			e := pairEntry{d: s / float64(msz*len(groups[o].members)), a: o, b: nextID}
			if !haveM || pairLess(e, bestM) {
				bestM, haveM = e, true
			}
			if regAll[o] == noPartner || pairLess(e, entAll[o]) {
				heapAll.push(e)
				regAll[o] = nextID
				entAll[o] = e
				pairsPushed++
			}
			if compatible(groups[o], merged) {
				if !haveMC || pairLess(e, bestMC) {
					bestMC, haveMC = e, true
				}
				if regCompat[o] == noPartner || pairLess(e, entCompat[o]) {
					heapCompat.push(e)
					regCompat[o] = nextID
					entCompat[o] = e
					pairsPushed++
				}
			}
		}
		groups[nextID] = merged
		alive[nextID] = true
		idSlot[nextID] = sa
		livePos[nextID] = len(live)
		live = append(live, nextID)
		if haveM {
			heapAll.push(bestM)
			regAll[nextID] = bestM.a
			entAll[nextID] = bestM
			pairsPushed++
		} else {
			regAll[nextID] = noPartner
		}
		if haveMC {
			heapCompat.push(bestMC)
			regCompat[nextID] = bestMC.a
			entCompat[nextID] = bestMC
			pairsPushed++
		} else {
			regCompat[nextID] = noPartner
		}
		nextID++
		activeCount--
	}

	if rec != nil {
		obs.Count(rec, "coala.quality_merges", int64(res.QualityMerges))
		obs.Count(rec, "coala.dissimilarity_merges", int64(res.DissimilarityMerges))
		obs.Count(rec, "coala.candidate_pairs", pairsPushed)
		obs.Count(rec, "coala.heap_stale_pops", stalePops)
	}

	// Flatten the live groups in ascending id order — identical to the
	// sorted-key walk of the reference implementation, because merge ids
	// increase monotonically.
	labels := make([]int, n)
	cid := 0
	for id := 0; id < nextID; id++ {
		if !alive[id] {
			continue
		}
		for _, o := range groups[id].members {
			labels[o] = cid
		}
		cid++
	}
	res.Clustering = core.NewClustering(labels)
	if interrupted != nil {
		return res, fmt.Errorf("alternative: coala interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return res, nil
}

// ErrNoAlternative is returned by algorithms that cannot produce a valid
// alternative under the requested constraints.
var ErrNoAlternative = errors.New("alternative: no valid alternative clustering exists under the given constraints")
