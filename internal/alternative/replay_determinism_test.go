package alternative

import (
	"reflect"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
)

// Same-seed replay for the alternative-clustering paradigm: identical
// config, identical labels. COALA has no RNG at all, so replay additionally
// proves its agglomeration (including the sortedKeys iteration) is free of
// map-order dependence.

func TestCIBSameSeedReplay(t *testing.T) {
	ds, hor, _ := dataset.FourBlobToy(1, 20)
	given := core.NewClustering(hor)
	cfg := CIBConfig{K: 2, Beta: 10, Bins: 4, Seed: 3}
	a, err := CIB(ds.Points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CIB(ds.Points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("CIB: identical config produced different results across runs")
	}
}

func TestCoalaReplay(t *testing.T) {
	ds, hor, _ := dataset.FourBlobToy(1, 20)
	given := core.NewClustering(hor)
	cfg := CoalaConfig{K: 2, W: 1}
	a, err := Coala(ds.Points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Coala(ds.Points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("COALA: identical config produced different results across runs")
	}
}

func TestMinCEntropySameSeedReplay(t *testing.T) {
	ds, hor, _ := dataset.FourBlobToy(1, 20)
	given := core.NewClustering(hor)
	cfg := MinCEntropyConfig{K: 2, Lambda: 0.5, Seed: 5}
	a, err := MinCEntropy(ds.Points, []*core.Clustering{given}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCEntropy(ds.Points, []*core.Clustering{given}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("MinCEntropy: identical config produced different results across runs")
	}
}
