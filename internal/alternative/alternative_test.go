package alternative

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

// toy returns the four-blob toy with its two ground-truth 2-partitions.
func toy(t *testing.T) (pts [][]float64, hor, ver []int) {
	t.Helper()
	ds, h, v := dataset.FourBlobToy(1, 20)
	return ds.Points, h, v
}

func TestCoalaFindsOrthogonalAlternative(t *testing.T) {
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := Coala(pts, given, CoalaConfig{K: 2, W: 1})
	if err != nil {
		t.Fatal(err)
	}
	altARI := metrics.AdjustedRand(ver, res.Clustering.Labels)
	givenARI := metrics.AdjustedRand(hor, res.Clustering.Labels)
	if altARI < 0.9 {
		t.Errorf("alternative should match the vertical split: ARI=%v", altARI)
	}
	if givenARI > 0.2 {
		t.Errorf("alternative should differ from the given split: ARI=%v", givenARI)
	}
	if res.DissimilarityMerges == 0 {
		t.Error("expected some dissimilarity merges")
	}
}

func TestCoalaWTradeoff(t *testing.T) {
	// Large W prefers quality merges; tiny W prefers dissimilarity merges
	// (slide 33). Compare the merge mixes.
	pts, hor, _ := toy(t)
	given := core.NewClustering(hor)
	big, err := Coala(pts, given, CoalaConfig{K: 2, W: 100})
	if err != nil {
		t.Fatal(err)
	}
	small, err := Coala(pts, given, CoalaConfig{K: 2, W: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !(big.QualityMerges > small.QualityMerges) {
		t.Errorf("larger W should yield more quality merges: big=%d small=%d",
			big.QualityMerges, small.QualityMerges)
	}
	if !(small.DissimilarityMerges > big.DissimilarityMerges) {
		t.Errorf("smaller W should yield more dissimilarity merges: big=%d small=%d",
			big.DissimilarityMerges, small.DissimilarityMerges)
	}
}

func TestCoalaErrors(t *testing.T) {
	if _, err := Coala(nil, core.NewClustering(nil), CoalaConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := Coala(pts, core.NewClustering([]int{0}), CoalaConfig{K: 2}); err == nil {
		t.Error("label-length mismatch should fail")
	}
	if _, err := Coala(pts, core.NewClustering([]int{0, 0}), CoalaConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
}

func TestCoalaRespectsK(t *testing.T) {
	pts, hor, _ := toy(t)
	for _, k := range []int{2, 3, 4} {
		res, err := Coala(pts, core.NewClustering(hor), CoalaConfig{K: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Clustering.K() != k {
			t.Errorf("K=%d: got %d clusters", k, res.Clustering.K())
		}
	}
}

func TestCIBFindsAlternative(t *testing.T) {
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := CIB(pts, given, CIBConfig{K: 2, Beta: 10, Bins: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The CIB objective cannot distinguish the vertical from the diagonal
	// alternative on the toy — both are orthogonal to the given clustering
	// and maximally informative within each given class. Assert exactly
	// those two properties instead of a specific alternative:
	givenARI := metrics.AdjustedRand(hor, res.Clustering.Labels)
	if givenARI > 0.3 {
		t.Errorf("CIB alternative too similar to given: ARI=%v", givenARI)
	}
	// Product of given and alternative must recover the four blobs.
	blobs := dataset.CombineLabels(hor, ver)
	product := dataset.CombineLabels(hor, res.Clustering.Labels)
	if a := metrics.AdjustedRand(blobs, product); a < 0.8 {
		t.Errorf("given x alternative should refine to the blobs: ARI=%v", a)
	}
	if res.Iterations == 0 {
		t.Error("CIB did not iterate")
	}
}

func TestCIBPosteriorsValid(t *testing.T) {
	pts, hor, _ := toy(t)
	res, err := CIB(pts, core.NewClustering(hor), CIBConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range res.Posterior {
		var s float64
		for _, v := range row {
			if v < 0 || v > 1+1e-9 {
				t.Fatalf("posterior out of range at %d: %v", i, row)
			}
			s += v
		}
		if s < 1-1e-6 || s > 1+1e-6 {
			t.Fatalf("posterior row %d sums to %v", i, s)
		}
	}
}

func TestCIBErrors(t *testing.T) {
	if _, err := CIB(nil, core.NewClustering(nil), CIBConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := CIB(pts, core.NewClustering([]int{0, 0}), CIBConfig{K: 9}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestMinCEntropyFindsAlternative(t *testing.T) {
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := MinCEntropy(pts, []*core.Clustering{given}, MinCEntropyConfig{K: 2, Lambda: 0.5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	altARI := metrics.AdjustedRand(ver, res.Clustering.Labels)
	givenARI := metrics.AdjustedRand(hor, res.Clustering.Labels)
	if altARI < 0.9 {
		t.Errorf("minCEntropy alternative ARI vs vertical = %v", altARI)
	}
	if givenARI > 0.2 {
		t.Errorf("minCEntropy too similar to given: ARI=%v", givenARI)
	}
	if res.Quality <= 0 {
		t.Errorf("quality = %v", res.Quality)
	}
}

func TestMinCEntropyMultipleGivens(t *testing.T) {
	// With BOTH ground-truth views given, the best 2-alternative can match
	// neither view; its penalty must stay low relative to single-given runs.
	pts, hor, ver := toy(t)
	res, err := MinCEntropy(pts, []*core.Clustering{
		core.NewClustering(hor), core.NewClustering(ver),
	}, MinCEntropyConfig{K: 2, Lambda: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a := metrics.AdjustedRand(hor, res.Clustering.Labels); a > 0.5 {
		t.Errorf("should avoid the horizontal view, ARI=%v", a)
	}
	if a := metrics.AdjustedRand(ver, res.Clustering.Labels); a > 0.5 {
		t.Errorf("should avoid the vertical view, ARI=%v", a)
	}
}

func TestMinCEntropyNoGivensIsPlainClustering(t *testing.T) {
	// Without given knowledge the method degenerates to kernel clustering
	// and should find one of the natural splits.
	pts, hor, ver := toy(t)
	res, err := MinCEntropy(pts, nil, MinCEntropyConfig{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.AdjustedRand(hor, res.Clustering.Labels)
	b := metrics.AdjustedRand(ver, res.Clustering.Labels)
	if a < 0.9 && b < 0.9 {
		t.Errorf("plain kernel clustering should find a natural split: hor=%v ver=%v", a, b)
	}
	if res.Penalty != 0 {
		t.Errorf("penalty without givens = %v", res.Penalty)
	}
}

func TestMinCEntropyErrors(t *testing.T) {
	if _, err := MinCEntropy(nil, nil, MinCEntropyConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := MinCEntropy(pts, nil, MinCEntropyConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := MinCEntropy(pts, []*core.Clustering{core.NewClustering([]int{0})}, MinCEntropyConfig{K: 2}); err == nil {
		t.Error("given length mismatch should fail")
	}
	if _, err := MinCEntropy(pts, nil, MinCEntropyConfig{K: 2, Lambda: -1}); err == nil {
		t.Error("negative lambda should fail")
	}
}
