package alternative

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// TestCoalaHeapMatchesReference pins the heap/triangular agglomeration core
// to the full-rescan reference implementation: byte-identical labels and
// identical QualityMerges/DissimilarityMerges on seeded random inputs
// across sizes, dimensionalities, K, and W regimes.
func TestCoalaHeapMatchesReference(t *testing.T) {
	cases := []struct {
		seed      int64
		n, dims   int
		givenK, k int
		w         float64
	}{
		{1, 20, 2, 2, 2, 1},
		{2, 35, 3, 3, 2, 1},
		{3, 50, 2, 2, 4, 1},
		{4, 40, 4, 4, 3, 0.01},
		{5, 40, 4, 4, 3, 100},
		{6, 25, 1, 2, 5, 1},
		{7, 60, 2, 3, 2, 2.5},
		{8, 30, 5, 2, 2, 0.5},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d_n=%d_k=%d_w=%g", tc.seed, tc.n, tc.k, tc.w), func(t *testing.T) {
			points, given := randomCoalaInput(tc.seed, tc.n, tc.dims, tc.givenK)
			cfg := CoalaConfig{K: tc.k, W: tc.w}
			want, err := coalaReference(points, given, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Coala(points, given, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Clustering.Labels, want.Clustering.Labels) {
				t.Errorf("labels diverge from reference:\n got %v\nwant %v", got.Clustering.Labels, want.Clustering.Labels)
			}
			if got.QualityMerges != want.QualityMerges || got.DissimilarityMerges != want.DissimilarityMerges {
				t.Errorf("merge counters diverge: got (%d,%d) want (%d,%d)",
					got.QualityMerges, got.DissimilarityMerges, want.QualityMerges, want.DissimilarityMerges)
			}
		})
	}
}

// TestCoalaHeapMatchesReferenceAnyWorkers repeats the equivalence at several
// worker counts: the parallel pair seeding writes each candidate to a fixed
// offset, so the result must not depend on scheduling.
func TestCoalaHeapMatchesReferenceAnyWorkers(t *testing.T) {
	points, given := randomCoalaInput(11, 45, 3, 3)
	cfg := CoalaConfig{K: 3}
	want, err := coalaReference(points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		cfg.Workers = w
		got, err := Coala(points, given, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(got.Clustering.Labels, want.Clustering.Labels) {
			t.Errorf("workers=%d: labels diverge from reference", w)
		}
		if got.QualityMerges != want.QualityMerges || got.DissimilarityMerges != want.DissimilarityMerges {
			t.Errorf("workers=%d: merge counters diverge", w)
		}
	}
}

// TestCoalaContextBackgroundIdentity pins Run ≡ RunContext(Background).
func TestCoalaContextBackgroundIdentity(t *testing.T) {
	points, given := randomCoalaInput(21, 40, 2, 2)
	cfg := CoalaConfig{K: 2}
	a, err := Coala(points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CoalaContext(context.Background(), points, given, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Coala and CoalaContext(Background) disagree")
	}
}

// TestCoalaContextInterrupted checks the merge-boundary poll: a cancelled
// context yields a valid best-so-far flattening (more clusters than K)
// wrapped in core.ErrInterrupted.
func TestCoalaContextInterrupted(t *testing.T) {
	points, given := randomCoalaInput(31, 60, 2, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := CoalaContext(ctx, points, given, CoalaConfig{K: 2})
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if res == nil || res.Clustering == nil {
		t.Fatal("interrupted run must return a best-so-far clustering")
	}
	if got := res.Clustering.N(); got != len(points) {
		t.Fatalf("best-so-far covers %d objects, want %d", got, len(points))
	}
	// Cancelled before the first merge: every singleton is its own cluster.
	if k := res.Clustering.K(); k != len(points) {
		t.Errorf("immediately cancelled run should keep %d singleton groups, got %d", len(points), k)
	}
}

// TestCoalaRunSpanAndCounters checks the observability satellite: a COALA
// run under a context recorder emits the coala.run span and the merge
// counters, and the counters agree with the returned result.
func TestCoalaRunSpanAndCounters(t *testing.T) {
	points, given := randomCoalaInput(41, 30, 2, 2)
	col := obs.NewCollector()
	ctx := obs.NewContext(context.Background(), col)
	res, err := CoalaContext(ctx, points, given, CoalaConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if _, ok := snap.Spans["coala.run"]; !ok {
		t.Errorf("no coala.run span recorded; spans: %v", snap.Spans)
	}
	if got := col.Counter("coala.quality_merges"); got != int64(res.QualityMerges) {
		t.Errorf("quality_merges counter %d, result says %d", got, res.QualityMerges)
	}
	if got := col.Counter("coala.dissimilarity_merges"); got != int64(res.DissimilarityMerges) {
		t.Errorf("dissimilarity_merges counter %d, result says %d", got, res.DissimilarityMerges)
	}
	// The nearest-partner heaps seed O(n) entries (one per group per heap),
	// not the full O(n²) pair set — just require that pushes were counted.
	if col.Counter("coala.candidate_pairs") <= 0 {
		t.Error("candidate_pairs should count the seeded and repaired pushes")
	}
}
