package alternative

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/metrics"
)

func TestCondEnsSelectsAlternative(t *testing.T) {
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := CondEns(pts, given, CondEnsConfig{K: 2, NumSolutions: 30, Lambda: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := metrics.AdjustedRand(ver, res.Clustering.Labels); a < 0.9 {
		t.Errorf("CondEns alternative ARI = %v", a)
	}
	if a := metrics.AdjustedRand(hor, res.Clustering.Labels); a > 0.2 {
		t.Errorf("too similar to given: %v", a)
	}
	if len(res.Scores) != 30 {
		t.Fatalf("scores = %d", len(res.Scores))
	}
	if res.BestIndex < 0 || res.BestIndex >= 30 {
		t.Fatalf("best index = %d", res.BestIndex)
	}
	// The selected member must have the maximal objective.
	best := res.Scores[res.BestIndex].Objective
	for i, s := range res.Scores {
		if s.Objective > best+1e-12 {
			t.Errorf("member %d beats the selected one: %v > %v", i, s.Objective, best)
		}
	}
}

func TestCondEnsLambdaZeroIsPureQuality(t *testing.T) {
	// Lambda defaults to 1 on 0; explicit tiny Lambda selects by quality
	// alone, which on the toy is either of the natural views.
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := CondEns(pts, given, CondEnsConfig{K: 2, NumSolutions: 20, Lambda: 1e-9, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.AdjustedRand(hor, res.Clustering.Labels)
	b := metrics.AdjustedRand(ver, res.Clustering.Labels)
	if a < 0.9 && b < 0.9 {
		t.Errorf("pure-quality selection should pick a natural view: %v %v", a, b)
	}
}

func TestCondEnsErrors(t *testing.T) {
	if _, err := CondEns(nil, core.NewClustering(nil), CondEnsConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := CondEns(pts, core.NewClustering([]int{0}), CondEnsConfig{K: 2}); err == nil {
		t.Error("given mismatch should fail")
	}
	if _, err := CondEns(pts, core.NewClustering([]int{0, 0}), CondEnsConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := CondEns(pts, core.NewClustering([]int{0, 0}), CondEnsConfig{K: 2, Lambda: -1}); err == nil {
		t.Error("negative lambda should fail")
	}
}
