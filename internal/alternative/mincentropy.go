package alternative

import (
	"fmt"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
	"multiclust/internal/metrics"
	"multiclust/internal/spectral"
)

// MinCEntropyConfig controls the conditional-entropy alternative search.
type MinCEntropyConfig struct {
	K        int
	Lambda   float64 // penalty weight on shared information with the given clusterings, default 1
	Sigma    float64 // RBF kernel bandwidth; <=0 = median heuristic
	MaxIter  int     // local search sweeps, default 50
	Restarts int     // default 4
	Seed     int64
}

// MinCEntropyResult is the fitted alternative clustering.
type MinCEntropyResult struct {
	Clustering *core.Clustering
	Objective  float64 // kernel quality - Lambda * sum of NMI with givens
	Quality    float64
	Penalty    float64
}

// MinCEntropy finds an alternative clustering in the spirit of minCEntropy+
// (Vinh & Epps 2010): maximize the within-cluster kernel similarity
//
//	Q(C) = sum_c (1/|c|) * sum_{i,j in c} K(i,j)
//
// minus Lambda times the normalized mutual information with each given
// clustering. Unlike COALA it accepts a *set* of given clusterings, the
// property the tutorial singles out for this method (slide 34). The search
// is a restarted first-improvement local search over label moves.
func MinCEntropy(points [][]float64, givens []*core.Clustering, cfg MinCEntropyConfig) (*MinCEntropyResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	for _, g := range givens {
		if err := g.Validate(n); err != nil {
			return nil, err
		}
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("alternative: negative Lambda")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 50
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}

	kern, _ := spectral.RBFAffinity(points, cfg.Sigma)
	// Self-similarity is 1 for the quality term (the affinity builder zeroes
	// the diagonal for spectral use).
	for i := 0; i < n; i++ {
		kern.Set(i, i, 1)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *MinCEntropyResult
	for r := 0; r < cfg.Restarts; r++ {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(cfg.K)
		}
		res := localSearch(kern, labels, givens, cfg, rng)
		if best == nil || res.Objective > best.Objective {
			best = res
		}
	}
	return best, nil
}

func localSearch(kern *linalg.Matrix, labels []int, givens []*core.Clustering, cfg MinCEntropyConfig, rng *rand.Rand) *MinCEntropyResult {
	n := len(labels)
	k := cfg.K
	evaluate := func(lab []int) (obj, q, pen float64) {
		q = kernelQuality(kern, lab, k)
		for _, g := range givens {
			pen += metrics.NMI(lab, g.Labels)
		}
		return q - cfg.Lambda*pen, q, pen
	}
	obj, _, _ := evaluate(labels)
	order := rng.Perm(n)
	for iter := 0; iter < cfg.MaxIter; iter++ {
		improved := false
		for _, i := range order {
			bestC, bestObj := labels[i], obj
			orig := labels[i]
			for c := 0; c < k; c++ {
				if c == orig {
					continue
				}
				labels[i] = c
				cand, _, _ := evaluate(labels)
				if cand > bestObj+1e-12 {
					bestC, bestObj = c, cand
				}
			}
			labels[i] = bestC
			if bestC != orig {
				obj = bestObj
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	finalObj, q, pen := evaluate(labels)
	return &MinCEntropyResult{
		Clustering: core.NewClustering(append([]int(nil), labels...)),
		Objective:  finalObj,
		Quality:    q,
		Penalty:    pen,
	}
}

// kernelQuality is sum_c S_c / n_c with S_c the within-cluster kernel sum,
// normalized by n so the value is comparable across dataset sizes.
func kernelQuality(kern *linalg.Matrix, labels []int, k int) float64 {
	n := len(labels)
	sums := make([]float64, k)
	counts := make([]float64, k)
	for i := 0; i < n; i++ {
		li := labels[i]
		counts[li]++
		row := kern.Row(i)
		for j := 0; j < n; j++ {
			if labels[j] == li {
				sums[li] += row[j]
			}
		}
	}
	var q float64
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			q += sums[c] / counts[c]
		}
	}
	return q / float64(n)
}
