package alternative

import (
	"math"
	"math/rand"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// coalaReference is the pre-heap COALA implementation — a full O(G²) rescan
// over sorted group ids per merge with map-held linkage sums — kept
// verbatim as the behavioural oracle for the production heap/triangular
// core. The property tests in coala_property_test.go pin the heap
// implementation to this one: byte-identical labels and merge counters on
// seeded random inputs.
func coalaReference(points [][]float64, given *core.Clustering, cfg CoalaConfig) (*CoalaResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, errInvalidK(cfg.K)
	}
	if cfg.W <= 0 {
		cfg.W = 1
	}
	if cfg.Distance == nil {
		cfg.Distance = dist.Euclidean
	}

	pd := dist.PairwiseMatrix(points, cfg.Distance)

	type group struct {
		members []int
		origSet map[int]bool
	}
	groups := make(map[int]*group, n)
	for i := 0; i < n; i++ {
		gs := map[int]bool{}
		if l := given.Labels[i]; l >= 0 {
			gs[l] = true
		}
		groups[i] = &group{members: []int{i}, origSet: gs}
	}
	sumDist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sumDist[key(i, j)] = pd.At(i, j)
		}
	}

	compatible := func(a, b *group) bool {
		small, large := a.origSet, b.origSet
		if len(small) > len(large) {
			small, large = large, small
		}
		for l := range small {
			if large[l] {
				return false
			}
		}
		return true
	}

	res := &CoalaResult{}
	nextID := n
	for len(groups) > cfg.K {
		bestQA, bestQB, bestQ := -1, -1, math.Inf(1)
		bestDA, bestDB, bestD := -1, -1, math.Inf(1)
		ids := sortedKeys(groups)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				a, b := ids[x], ids[y]
				ga, gb := groups[a], groups[b]
				avg := sumDist[key(a, b)] / float64(len(ga.members)*len(gb.members))
				if avg < bestQ {
					bestQA, bestQB, bestQ = a, b, avg
				}
				if avg < bestD && compatible(ga, gb) {
					bestDA, bestDB, bestD = a, b, avg
				}
			}
		}
		var ma, mb int
		if bestDA < 0 || bestQ < cfg.W*bestD {
			ma, mb = bestQA, bestQB
			res.QualityMerges++
		} else {
			ma, mb = bestDA, bestDB
			res.DissimilarityMerges++
		}
		ga, gb := groups[ma], groups[mb]
		merged := &group{
			members: append(append([]int(nil), ga.members...), gb.members...),
			origSet: map[int]bool{},
		}
		for l := range ga.origSet {
			merged.origSet[l] = true
		}
		for l := range gb.origSet {
			merged.origSet[l] = true
		}
		for _, other := range ids {
			if other == ma || other == mb {
				continue
			}
			sumDist[key(nextID, other)] = sumDist[key(ma, other)] + sumDist[key(mb, other)]
			delete(sumDist, key(ma, other))
			delete(sumDist, key(mb, other))
		}
		delete(sumDist, key(ma, mb))
		delete(groups, ma)
		delete(groups, mb)
		groups[nextID] = merged
		nextID++
	}

	labels := make([]int, n)
	cid := 0
	for _, id := range sortedKeys(groups) {
		for _, o := range groups[id].members {
			labels[o] = cid
		}
		cid++
	}
	res.Clustering = core.NewClustering(labels)
	return res, nil
}

func errInvalidK(k int) error { return &invalidKError{k} }

type invalidKError struct{ k int }

func (e *invalidKError) Error() string { return "alternative: invalid K" }

func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// randomCoalaInput draws a seeded random dataset and a random given
// clustering for the equivalence property tests.
func randomCoalaInput(seed int64, n, dims, givenK int) ([][]float64, *core.Clustering) {
	rng := rand.New(rand.NewSource(seed))
	points := make([][]float64, n)
	for i := range points {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		points[i] = row
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(givenK + 1) // givenK labels plus occasional noise
		if labels[i] == givenK {
			labels[i] = -1
		}
	}
	return points, core.NewClustering(labels)
}
