package alternative

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/metrics"
)

func TestFlexibleWithRandDissimilarity(t *testing.T) {
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := Flexible(pts, []*core.Clustering{given},
		metrics.SilhouetteQuality(), metrics.RandDissimilarity(),
		FlexibleConfig{K: 2, Lambda: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a := metrics.AdjustedRand(ver, res.Clustering.Labels); a < 0.9 {
		t.Errorf("flexible(Rand) alternative ARI = %v", a)
	}
	if a := metrics.AdjustedRand(hor, res.Clustering.Labels); a > 0.2 {
		t.Errorf("too similar to given: %v", a)
	}
	if res.Dissimilarity <= 0 {
		t.Errorf("dissimilarity = %v", res.Dissimilarity)
	}
}

func TestFlexibleWithADCO(t *testing.T) {
	// Exchangeable definitions (taxonomy "flexibility" axis): swap in the
	// density-profile dissimilarity, same search.
	pts, hor, ver := toy(t)
	given := core.NewClustering(hor)
	res, err := Flexible(pts, []*core.Clustering{given},
		metrics.SilhouetteQuality(), metrics.ADCODissimilarity(pts, 5),
		FlexibleConfig{K: 2, Lambda: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The alternative must carve a different density profile...
	adco, err := metrics.ADCO(pts, given, res.Clustering, 5)
	if err != nil {
		t.Fatal(err)
	}
	if adco < 0.2 {
		t.Errorf("density profile unchanged: ADCO = %v", adco)
	}
	// The ADCO objective admits any profile-different alternative (vertical,
	// diagonal, or unbalanced), so assert the contract rather than one
	// specific view: different from the given, and a real clustering.
	if a := metrics.AdjustedRand(hor, res.Clustering.Labels); a > 0.3 {
		t.Errorf("too similar to given: ARI = %v", a)
	}
	if res.Clustering.K() != 2 {
		t.Errorf("degenerate alternative: K = %d", res.Clustering.K())
	}
	_ = ver
}

func TestFlexibleNoGivens(t *testing.T) {
	// With no given knowledge the search degenerates to pure quality
	// maximization.
	pts, hor, ver := toy(t)
	res, err := Flexible(pts, nil, metrics.SilhouetteQuality(), metrics.RandDissimilarity(),
		FlexibleConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := metrics.AdjustedRand(hor, res.Clustering.Labels)
	b := metrics.AdjustedRand(ver, res.Clustering.Labels)
	if a < 0.9 && b < 0.9 {
		t.Errorf("pure quality search should find a natural split: %v %v", a, b)
	}
	if res.Dissimilarity != 0 {
		t.Errorf("dissimilarity without givens = %v", res.Dissimilarity)
	}
}

func TestFlexibleErrors(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	if _, err := Flexible(nil, nil, metrics.SilhouetteQuality(), metrics.RandDissimilarity(), FlexibleConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Flexible(pts, nil, nil, metrics.RandDissimilarity(), FlexibleConfig{K: 2}); err == nil {
		t.Error("nil quality should fail")
	}
	if _, err := Flexible(pts, nil, metrics.SilhouetteQuality(), nil, FlexibleConfig{K: 2}); err == nil {
		t.Error("nil dissimilarity should fail")
	}
	if _, err := Flexible(pts, nil, metrics.SilhouetteQuality(), metrics.RandDissimilarity(), FlexibleConfig{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	bad := core.NewClustering([]int{0})
	if _, err := Flexible(pts, []*core.Clustering{bad}, metrics.SilhouetteQuality(), metrics.RandDissimilarity(), FlexibleConfig{K: 2}); err == nil {
		t.Error("given size mismatch should fail")
	}
	if _, err := Flexible(pts, nil, metrics.SilhouetteQuality(), metrics.RandDissimilarity(), FlexibleConfig{K: 2, Lambda: -1}); err == nil {
		t.Error("negative lambda should fail")
	}
}
