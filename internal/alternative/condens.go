package alternative

import (
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/metaclust"
	"multiclust/internal/metrics"
)

// CondEnsConfig controls the conditional-ensemble alternative search.
type CondEnsConfig struct {
	K            int
	NumSolutions int     // ensemble size, default 20
	Lambda       float64 // weight of the dissimilarity-to-given term, default 1
	Seed         int64
}

// CondEnsResult carries the chosen alternative and the scored ensemble.
type CondEnsResult struct {
	Clustering *core.Clustering
	// Scores holds, per ensemble member, quality (silhouette), NMI to the
	// given clustering, and the combined objective — the data behind the
	// quality/dissimilarity scatter this method reasons over.
	Scores    []CondEnsScore
	BestIndex int
}

// CondEnsScore is one ensemble member's evaluation.
type CondEnsScore struct {
	Quality    float64
	NMIToGiven float64
	Objective  float64
}

// CondEns implements the ensemble route to non-redundant clustering
// (Gondek & Hofmann 2005, tutorial slide 34): generate a diverse ensemble
// of base clusterings (the meta-clustering generator), score every member
// by quality minus Lambda times its information overlap with the given
// clustering, and return the best member. Unlike the iterative methods it
// never modifies a clustering — it selects from independently generated
// candidates, so any base clusterer can supply the ensemble.
func CondEns(points [][]float64, given *core.Clustering, cfg CondEnsConfig) (*CondEnsResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if cfg.NumSolutions <= 0 {
		cfg.NumSolutions = 20
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("alternative: negative Lambda")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	ens, err := metaclust.Run(points, metaclust.Config{
		K:            cfg.K,
		NumSolutions: cfg.NumSolutions,
		MetaClusters: 1, // grouping not needed; we score members directly
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	res := &CondEnsResult{BestIndex: -1}
	best := 0.0
	for i, c := range ens.Generated {
		q := metrics.Silhouette(points, c)
		nmi := metrics.NMI(c.Labels, given.Labels)
		obj := q - cfg.Lambda*nmi
		res.Scores = append(res.Scores, CondEnsScore{Quality: q, NMIToGiven: nmi, Objective: obj})
		if res.BestIndex < 0 || obj > best {
			best = obj
			res.BestIndex = i
		}
	}
	res.Clustering = ens.Generated[res.BestIndex]
	return res, nil
}
