package alternative

import (
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/metaclust"
	"multiclust/internal/metrics"
	"multiclust/internal/parallel"
)

// CondEnsConfig controls the conditional-ensemble alternative search.
type CondEnsConfig struct {
	K            int
	NumSolutions int     // ensemble size, default 20
	Lambda       float64 // weight of the dissimilarity-to-given term, default 1
	Seed         int64
	Workers      int // parallelism; <=0 resolves via internal/parallel
}

// CondEnsResult carries the chosen alternative and the scored ensemble.
type CondEnsResult struct {
	Clustering *core.Clustering
	// Scores holds, per ensemble member, quality (silhouette), NMI to the
	// given clustering, and the combined objective — the data behind the
	// quality/dissimilarity scatter this method reasons over.
	Scores    []CondEnsScore
	BestIndex int
}

// CondEnsScore is one ensemble member's evaluation.
type CondEnsScore struct {
	Quality    float64
	NMIToGiven float64
	Objective  float64
}

// CondEns implements the ensemble route to non-redundant clustering
// (Gondek & Hofmann 2005, tutorial slide 34): generate a diverse ensemble
// of base clusterings (the meta-clustering generator), score every member
// by quality minus Lambda times its information overlap with the given
// clustering, and return the best member. Unlike the iterative methods it
// never modifies a clustering — it selects from independently generated
// candidates, so any base clusterer can supply the ensemble.
func CondEns(points [][]float64, given *core.Clustering, cfg CondEnsConfig) (*CondEnsResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if cfg.NumSolutions <= 0 {
		cfg.NumSolutions = 20
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("alternative: negative Lambda")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	ens, err := metaclust.Run(points, metaclust.Config{
		K:            cfg.K,
		NumSolutions: cfg.NumSolutions,
		MetaClusters: 1, // grouping not needed; we score members directly
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	// Scoring is O(n²) per member (silhouette); members are scored
	// concurrently and the argmax scan stays serial in member order, so the
	// selected alternative never depends on scheduling.
	res := &CondEnsResult{BestIndex: -1}
	res.Scores = parallel.Map(len(ens.Generated), cfg.Workers, func(i int) CondEnsScore {
		c := ens.Generated[i]
		q := metrics.Silhouette(points, c)
		nmi := metrics.NMI(c.Labels, given.Labels)
		return CondEnsScore{Quality: q, NMIToGiven: nmi, Objective: q - cfg.Lambda*nmi}
	})
	best := 0.0
	for i, s := range res.Scores {
		if res.BestIndex < 0 || s.Objective > best {
			best = s.Objective
			res.BestIndex = i
		}
	}
	res.Clustering = ens.Generated[res.BestIndex]
	return res, nil
}
