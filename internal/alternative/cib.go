package alternative

import (
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/stats"
)

// CIBConfig controls the conditional information bottleneck run.
type CIBConfig struct {
	K        int     // clusters in the alternative solution
	Beta     float64 // preservation weight (larger = sharper clusters), default 5
	Bins     int     // feature discretization bins for p(y|x), default 8
	MaxIter  int     // default 100
	Restarts int     // random initializations, best (lowest) objective wins; default 5
	Seed     int64
	Tol      float64 // relative objective tolerance, default 1e-7
}

// CIBResult is a fitted conditional-information-bottleneck clustering.
type CIBResult struct {
	Clustering *core.Clustering
	Posterior  [][]float64 // soft assignments p(c|x)
	Objective  float64     // I(X;C) - Beta * I(Y;C|D), minimized
	Iterations int
}

// CIB computes an alternative clustering via the conditional information
// bottleneck of Gondek & Hofmann (2003): minimize
//
//	F(C) = I(X;C) - Beta * I(Y;C|D)
//
// where D is the given clustering (the known structure to be factored out)
// and Y is a feature variable derived from the data. Compression I(X;C)
// keeps clusters simple; the conditional information term rewards clusters
// that are informative about the features *beyond* what D already explains,
// steering C away from D.
//
// Feature channel: each object x is given a distribution p(y|x) over
// (dimension, bin) feature events by histogram discretization; within each
// given class d the fixed-point update is the IB-like
//
//	p(c|x) ∝ p(c) * exp(-Beta * KL(p(y|x) || p(y|c,d(x)))).
func CIB(points [][]float64, given *core.Clustering, cfg CIBConfig) (*CIBResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if err := given.Validate(n); err != nil {
		return nil, err
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if cfg.Beta <= 0 {
		cfg.Beta = 5
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 8
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-7
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 5
	}

	py := featureChannel(points, cfg.Bins) // n × m, rows sum to 1
	m := len(py[0])
	k := cfg.K

	// Given classes; objects with noise labels form their own class so the
	// conditioning stays total.
	dlab := make([]int, n)
	dmap := map[int]int{}
	for i, l := range given.Labels {
		id, ok := dmap[l]
		if !ok {
			id = len(dmap)
			dmap[l] = id
		}
		dlab[i] = id
	}
	nd := len(dmap)

	rng := rand.New(rand.NewSource(cfg.Seed))
	var best *CIBResult
	for restart := 0; restart < cfg.Restarts; restart++ {
		res := cibOnce(points, py, dlab, nd, m, k, cfg, rng)
		if best == nil || res.Objective < best.Objective {
			best = res
		}
	}
	return best, nil
}

// cibOnce runs one random initialization of the alternating minimization.
func cibOnce(points [][]float64, py [][]float64, dlab []int, nd, m, k int, cfg CIBConfig, rng *rand.Rand) *CIBResult {
	n := len(points)
	post := make([][]float64, n)
	for i := range post {
		row := make([]float64, k)
		var s float64
		for c := range row {
			row[c] = rng.Float64() + 0.1
			s += row[c]
		}
		for c := range row {
			row[c] /= s
		}
		post[i] = row
	}

	pc := make([]float64, k)
	pycd := make([][][]float64, nd) // [d][c][y]
	for d := range pycd {
		pycd[d] = make([][]float64, k)
		for c := range pycd[d] {
			pycd[d][c] = make([]float64, m)
		}
	}

	objective := math.Inf(1)
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		// M-like step: p(c) and p(y|c,d).
		for c := range pc {
			pc[c] = 0
		}
		for d := range pycd {
			for c := range pycd[d] {
				row := pycd[d][c]
				for y := range row {
					row[y] = 0
				}
			}
		}
		for i := 0; i < n; i++ {
			d := dlab[i]
			for c := 0; c < k; c++ {
				w := post[i][c]
				pc[c] += w
				row := pycd[d][c]
				for y := 0; y < m; y++ {
					row[y] += w * py[i][y]
				}
			}
		}
		for c := range pc {
			pc[c] /= float64(n)
			if pc[c] < 1e-12 {
				pc[c] = 1e-12
			}
		}
		const smooth = 1e-9
		for d := range pycd {
			for c := range pycd[d] {
				row := pycd[d][c]
				var s float64
				for y := range row {
					row[y] += smooth
					s += row[y]
				}
				for y := range row {
					row[y] /= s
				}
			}
		}

		// E-like step: fixed-point update of p(c|x).
		logits := make([]float64, k)
		for i := 0; i < n; i++ {
			d := dlab[i]
			for c := 0; c < k; c++ {
				kl := klRow(py[i], pycd[d][c])
				logits[c] = math.Log(pc[c]) - cfg.Beta*kl
			}
			lse := stats.LogSumExp(logits)
			for c := 0; c < k; c++ {
				post[i][c] = math.Exp(logits[c] - lse)
			}
		}

		obj := cibObjective(post, pc, py, pycd, dlab, cfg.Beta)
		if math.Abs(objective-obj) <= cfg.Tol*(1+math.Abs(obj)) {
			objective = obj
			break
		}
		objective = obj
	}

	hard := make([]int, n)
	for i := range post {
		best, bestV := 0, -1.0
		for c, v := range post[i] {
			if v > bestV {
				best, bestV = c, v
			}
		}
		hard[i] = best
	}
	return &CIBResult{
		Clustering: core.NewClustering(hard),
		Posterior:  post,
		Objective:  objective,
		Iterations: iter,
	}
}

// featureChannel builds p(y|x): each dimension is discretized into bins over
// its range, and each object emits one event per dimension (uniform weight
// across dimensions), giving an m = d*bins event space.
func featureChannel(points [][]float64, bins int) [][]float64 {
	n, d := len(points), len(points[0])
	mins := make([]float64, d)
	maxs := make([]float64, d)
	for j := 0; j < d; j++ {
		mins[j], maxs[j] = math.Inf(1), math.Inf(-1)
	}
	for _, p := range points {
		for j, v := range p {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	m := d * bins
	out := make([][]float64, n)
	w := 1 / float64(d)
	for i, p := range points {
		row := make([]float64, m)
		for j, v := range p {
			span := maxs[j] - mins[j]
			b := 0
			if span > 0 {
				b = int((v - mins[j]) / span * float64(bins))
				if b >= bins {
					b = bins - 1
				}
			}
			row[j*bins+b] = w
		}
		out[i] = row
	}
	return out
}

func klRow(p, q []float64) float64 {
	var kl float64
	for y, pv := range p {
		if pv <= 0 {
			continue
		}
		kl += pv * math.Log(pv/q[y])
	}
	return kl
}

// cibObjective evaluates I(X;C) - Beta * I(Y;C|D) from the current soft
// assignment.
func cibObjective(post [][]float64, pc []float64, py [][]float64, pycd [][][]float64, dlab []int, beta float64) float64 {
	n := len(post)
	k := len(pc)
	// I(X;C) = (1/n) sum_x sum_c p(c|x) log(p(c|x)/p(c))
	var ixc float64
	for i := 0; i < n; i++ {
		for c := 0; c < k; c++ {
			v := post[i][c]
			if v <= 0 {
				continue
			}
			ixc += v * math.Log(v/pc[c])
		}
	}
	ixc /= float64(n)

	// I(Y;C|D) = sum_d p(d) sum_{c,y} p(c,y|d) log(p(y|c,d)/p(y|d)).
	nd := len(pycd)
	m := len(py[0])
	counts := make([]float64, nd)
	for _, d := range dlab {
		counts[d]++
	}
	var iycd float64
	for d := 0; d < nd; d++ {
		if counts[d] == 0 {
			continue
		}
		// p(y|d) and p(c|d) from members of class d.
		pyd := make([]float64, m)
		pcd := make([]float64, k)
		for i, di := range dlab {
			if di != d {
				continue
			}
			for y := 0; y < m; y++ {
				pyd[y] += py[i][y]
			}
			for c := 0; c < k; c++ {
				pcd[c] += post[i][c]
			}
		}
		for y := range pyd {
			pyd[y] /= counts[d]
		}
		for c := range pcd {
			pcd[c] /= counts[d]
		}
		var term float64
		for c := 0; c < k; c++ {
			if pcd[c] <= 0 {
				continue
			}
			for y := 0; y < m; y++ {
				pyc := pycd[d][c][y]
				if pyc <= 0 || pyd[y] <= 0 {
					continue
				}
				term += pcd[c] * pyc * math.Log(pyc/pyd[y])
			}
		}
		iycd += counts[d] / float64(n) * term
	}
	return ixc - beta*iycd
}
