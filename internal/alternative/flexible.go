package alternative

import (
	"errors"
	"fmt"
	"math/rand"

	"multiclust/internal/core"
)

// FlexibleConfig controls the generic alternative-clustering search.
type FlexibleConfig struct {
	K        int
	Lambda   float64 // dissimilarity weight, default 1
	MaxIter  int     // local-search sweeps, default 40
	Restarts int     // default 4
	Seed     int64
}

// FlexibleResult is the fitted alternative clustering with its objective
// decomposition.
type FlexibleResult struct {
	Clustering    *core.Clustering
	Objective     float64 // Quality + Lambda * mean dissimilarity to the givens
	Quality       float64
	Dissimilarity float64 // mean Diss to the given clusterings
}

// Flexible is the tutorial's abstract problem statement (slide 27) turned
// into a runnable procedure: maximize
//
//	Q(C) + Lambda * mean_i Diss(C, Given_i)
//
// over flat K-clusterings by restarted first-improvement label moves. Both
// the quality and the dissimilarity definitions are exchangeable — the
// "flexibility" axis of the taxonomy (slide 22). Plugging in silhouette
// plus 1-Rand reproduces a minCEntropy-style search; plugging in the ADCO
// density-profile dissimilarity reproduces the Bae, Bailey & Dong (2010)
// idea of alternatives that realize a different density profile.
func Flexible(points [][]float64, givens []*core.Clustering, q core.QualityFunc, diss core.DissimilarityFunc, cfg FlexibleConfig) (*FlexibleResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("alternative: invalid K=%d", cfg.K)
	}
	if q == nil || diss == nil {
		return nil, errors.New("alternative: quality and dissimilarity functions are required")
	}
	for _, g := range givens {
		if err := g.Validate(n); err != nil {
			return nil, err
		}
	}
	if cfg.Lambda < 0 {
		return nil, errors.New("alternative: negative Lambda")
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 40
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	evaluate := func(c *core.Clustering) (obj, quality, dl float64) {
		quality = q(points, c)
		if len(givens) > 0 {
			for _, g := range givens {
				dl += diss(c, g)
			}
			dl /= float64(len(givens))
		}
		return quality + cfg.Lambda*dl, quality, dl
	}

	var best *FlexibleResult
	for r := 0; r < cfg.Restarts; r++ {
		labels := make([]int, n)
		for i := range labels {
			labels[i] = rng.Intn(cfg.K)
		}
		c := core.NewClustering(labels)
		obj, _, _ := evaluate(c)
		order := rng.Perm(n)
		for iter := 0; iter < cfg.MaxIter; iter++ {
			improved := false
			for _, i := range order {
				orig := labels[i]
				bestC, bestObj := orig, obj
				for k := 0; k < cfg.K; k++ {
					if k == orig {
						continue
					}
					labels[i] = k
					if cand, _, _ := evaluate(c); cand > bestObj+1e-12 {
						bestC, bestObj = k, cand
					}
				}
				labels[i] = bestC
				if bestC != orig {
					obj = bestObj
					improved = true
				}
			}
			if !improved {
				break
			}
		}
		finalObj, quality, dl := evaluate(c)
		if best == nil || finalObj > best.Objective {
			best = &FlexibleResult{
				Clustering:    core.NewClustering(append([]int(nil), labels...)),
				Objective:     finalObj,
				Quality:       quality,
				Dissimilarity: dl,
			}
		}
	}
	return best, nil
}
