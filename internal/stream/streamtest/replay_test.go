package streamtest

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"testing"

	"multiclust/internal/dist"
	"multiclust/internal/kmeans"
	"multiclust/internal/metaclust"
	"multiclust/internal/multiview"
	"multiclust/internal/stream"
)

// blobRows draws n rows around k well-separated centers, deterministic in
// seed.
func blobRows(n, d, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = 10*float64(c) + rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

// assignSSE is the batch cost of centers on rows: every row to its nearest
// center, squared distances summed in row order.
func assignSSE(rows, centers [][]float64) float64 {
	var sse float64
	for _, r := range rows {
		best := -1.0
		for _, c := range centers {
			if sq := dist.SqEuclidean(r, c); best < 0 || sq < best {
				best = sq
			}
		}
		sse += best
	}
	return sse
}

// TestSingleChunkEquivalenceMiniBatch: pushing the whole dataset as one
// chunk is byte-identical to batch k-means on the same rows — centers,
// labels, and SSE all compare exactly, not within tolerance.
func TestSingleChunkEquivalenceMiniBatch(t *testing.T) {
	rows := blobRows(90, 3, 3, 42)
	snap, err := ReplayMiniBatch(stream.MiniBatchConfig{K: 3, Seed: 7}, [][][]float64{rows})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := kmeans.RunContext(context.Background(), rows, kmeans.Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Centers, batch.Centers) {
		t.Fatalf("single-chunk centers differ from batch:\nstream %v\nbatch  %v", snap.Centers, batch.Centers)
	}
	if !reflect.DeepEqual(snap.LastLabels, batch.Clustering.Labels) {
		t.Fatal("single-chunk labels differ from batch")
	}
	if snap.LastSSE != batch.SSE {
		t.Fatalf("single-chunk SSE %v differs from batch %v", snap.LastSSE, batch.SSE)
	}
}

// TestSingleChunkEquivalenceEnsemble: a single-chunk ensemble stream
// reproduces batch metaclust on the same rows byte for byte — meta labels,
// mean pairwise dissimilarity, and every representative's labels.
func TestSingleChunkEquivalenceEnsemble(t *testing.T) {
	rows := blobRows(60, 2, 2, 17)
	cfg := stream.EnsembleConfig{K: 2, PerChunk: 6, MetaClusters: 3, Seed: 5}
	snap, err := ReplayEnsemble(cfg, [][][]float64{rows})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := metaclust.RunContext(context.Background(), rows, metaclust.Config{
		K: 2, NumSolutions: 6, MetaClusters: 3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.MetaLabels, batch.MetaLabels) {
		t.Fatalf("meta labels differ: stream %v batch %v", snap.MetaLabels, batch.MetaLabels)
	}
	if snap.MeanPairwise != batch.MeanPairwise {
		t.Fatalf("mean pairwise differs: stream %v batch %v", snap.MeanPairwise, batch.MeanPairwise)
	}
	if len(snap.Representatives) != len(batch.Representatives) {
		t.Fatalf("representative count differs: %d vs %d", len(snap.Representatives), len(batch.Representatives))
	}
	for i := range snap.Representatives {
		if !reflect.DeepEqual(snap.Representatives[i].Labels, batch.Representatives[i].Labels) {
			t.Fatalf("representative %d labels differ", i)
		}
	}
}

// TestSingleChunkEquivalenceCoEM: a single-chunk co-EM stream reproduces
// the batch multiview.CoEM models and consensus clustering byte for byte.
func TestSingleChunkEquivalenceCoEM(t *testing.T) {
	rows := blobRows(40, 4, 2, 23)
	snap, err := ReplayCoEM(stream.CoEMConfig{K: 2, Seed: 9}, [][][]float64{rows})
	if err != nil {
		t.Fatal(err)
	}
	viewA := make([][]float64, len(rows))
	viewB := make([][]float64, len(rows))
	for i, r := range rows {
		viewA[i] = r[:2]
		viewB[i] = r[2:]
	}
	batch, err := multiview.CoEM(viewA, viewB, multiview.CoEMConfig{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(SnapshotBytes(snap.ModelA), SnapshotBytes(batch.ModelA)) {
		t.Fatal("model A differs from batch co-EM")
	}
	if !bytes.Equal(SnapshotBytes(snap.ModelB), SnapshotBytes(batch.ModelB)) {
		t.Fatal("model B differs from batch co-EM")
	}
	if !reflect.DeepEqual(snap.Clustering.Labels, batch.Clustering.Labels) {
		t.Fatal("consensus clustering differs from batch co-EM")
	}
}

// TestReplayDeterminismAcrossWorkers: same seed + same chunking gives
// byte-identical snapshots at workers 1, 2, 4 and 8, for all three
// learners. Runs under -race in the race/chaos CI lanes.
func TestReplayDeterminismAcrossWorkers(t *testing.T) {
	rows := blobRows(120, 3, 3, 99)
	sizes := []int{40, 25, 35, 20}
	chunks, err := Split(rows, sizes)
	if err != nil {
		t.Fatal(err)
	}
	workerCounts := []int{1, 2, 4, 8}

	var refMB, refEns, refCo []byte
	for _, w := range workerCounts {
		mb, err := ReplayMiniBatch(stream.MiniBatchConfig{K: 3, Seed: 3, Workers: w}, chunks)
		if err != nil {
			t.Fatal(err)
		}
		ens, err := ReplayEnsemble(stream.EnsembleConfig{K: 3, PerChunk: 4, MetaClusters: 2, Window: 3, Seed: 3, Workers: w}, chunks)
		if err != nil {
			t.Fatal(err)
		}
		co, err := ReplayCoEM(stream.CoEMConfig{K: 3, Seed: 3, Workers: w}, chunks)
		if err != nil {
			t.Fatal(err)
		}
		gotMB, gotEns, gotCo := SnapshotBytes(mb), SnapshotBytes(ens), SnapshotBytes(co)
		if refMB == nil {
			refMB, refEns, refCo = gotMB, gotEns, gotCo
			continue
		}
		if !bytes.Equal(gotMB, refMB) {
			t.Fatalf("mini-batch snapshot at workers=%d differs from workers=1", w)
		}
		if !bytes.Equal(gotEns, refEns) {
			t.Fatalf("ensemble snapshot at workers=%d differs from workers=1", w)
		}
		if !bytes.Equal(gotCo, refCo) {
			t.Fatalf("co-EM snapshot at workers=%d differs from workers=1", w)
		}
	}
}

// TestMiniBatchDriftBound: multi-chunk streams are not the batch solution,
// but their cost is pinned — the concatenation's SSE under the streamed
// centers stays within MiniBatchDriftBound of the batch k-means SSE.
func TestMiniBatchDriftBound(t *testing.T) {
	rows := blobRows(200, 3, 3, 7)
	batch, err := kmeans.RunContext(context.Background(), rows, kmeans.Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, sizes := range [][]int{
		{200},
		{100, 100},
		{50, 50, 50, 50},
		{20, 20, 20, 20, 20, 20, 20, 20, 20, 20},
	} {
		chunks, err := Split(rows, sizes)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := ReplayMiniBatch(stream.MiniBatchConfig{K: 3, Seed: 7}, chunks)
		if err != nil {
			t.Fatal(err)
		}
		ratio := assignSSE(rows, snap.Centers) / batch.SSE
		if ratio > MiniBatchDriftBound {
			t.Fatalf("chunking %v: SSE ratio %.3f exceeds pinned bound %.1f", sizes, ratio, MiniBatchDriftBound)
		}
	}
}

// TestChunkingInvarianceMetamorphic: permuting the chunk boundaries of the
// same row sequence keeps the streamed solution inside the drift envelope
// — the learner's quality must not depend on where the row stream happened
// to be cut.
func TestChunkingInvarianceMetamorphic(t *testing.T) {
	rows := blobRows(160, 2, 2, 31)
	batch, err := kmeans.RunContext(context.Background(), rows, kmeans.Config{K: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for trial := int64(0); trial < 8; trial++ {
		sizes := Boundaries(len(rows), 8, 1000+trial)
		chunks, err := Split(rows, sizes)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := ReplayMiniBatch(stream.MiniBatchConfig{K: 2, Seed: 31}, chunks)
		if err != nil {
			t.Fatalf("chunking %v: %v", sizes, err)
		}
		ratio := assignSSE(rows, snap.Centers) / batch.SSE
		if ratio > MiniBatchDriftBound {
			t.Fatalf("chunking %v: SSE ratio %.3f exceeds pinned bound %.1f", sizes, ratio, MiniBatchDriftBound)
		}
	}
}

// TestEnsembleWindowCoversStream: with a window at least as long as the
// stream nothing evicts, so replays are byte-identical and interleaving
// snapshots between pushes does not perturb the final snapshot — the
// mergeable-window half of the equivalence contract.
func TestEnsembleWindowCoversStream(t *testing.T) {
	rows := blobRows(90, 2, 3, 53)
	chunks, err := Split(rows, []int{30, 30, 30})
	if err != nil {
		t.Fatal(err)
	}
	cfg := stream.EnsembleConfig{K: 3, PerChunk: 4, MetaClusters: 2, Window: 8, Seed: 13}
	pure, err := ReplayEnsemble(cfg, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if pure.Evicted != 0 || pure.WindowChunks != len(chunks) {
		t.Fatalf("window should cover the stream: %+v", pure)
	}
	replay, err := ReplayEnsemble(cfg, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(SnapshotBytes(pure), SnapshotBytes(replay)) {
		t.Fatal("identical replays produced different snapshots")
	}
	// Interleaved snapshots: snapshot after every push, then compare the
	// final snapshot against the pure replay.
	e, err := stream.NewEnsemble(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last *stream.EnsembleSnapshot
	for _, c := range chunks {
		if err := e.Push(c); err != nil {
			t.Fatal(err)
		}
		if last, err = e.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(SnapshotBytes(pure), SnapshotBytes(last)) {
		t.Fatal("interleaved snapshots perturbed the final snapshot")
	}
}
