// Package streamtest is the deterministic chunked-replay harness for the
// streaming layer: helpers to split a row sequence into chunks, replay a
// chunk sequence through a fresh learner, and serialize snapshots into
// canonical bytes so equivalence and determinism claims can be asserted as
// byte equality. The property tests in this package pin the streaming
// contract documented in internal/stream:
//
//   - exact equivalence where it is exact: a single-chunk stream is
//     byte-identical to the batch algorithm on the concatenation, and an
//     ensemble whose window covers the whole stream replays byte-identically;
//   - pinned drift bounds where it is not: a multi-chunk mini-batch
//     stream's SSE over the concatenation stays within
//     MiniBatchDriftBound of the batch k-means SSE;
//   - replay determinism: same seed + same chunking gives byte-identical
//     snapshots at workers 1/2/4/8;
//   - chunking-invariance (metamorphic): permuting chunk boundaries of
//     the same row sequence stays within the drift envelope.
package streamtest

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"multiclust/internal/stream"
)

// MiniBatchDriftBound is the pinned drift envelope of the mini-batch
// learner: over any chunking exercised by the harness, the SSE of the full
// row sequence under the streamed centers is at most this multiple of the
// batch k-means SSE on the same rows with the same seed. The bound is a
// regression pin, not a theorem — tightening it is progress, loosening it
// is a behavior change that needs a story.
const MiniBatchDriftBound = 2.5

// Split partitions rows into consecutive chunks of the given sizes. The
// sizes must sum to len(rows) and each must be positive.
func Split(rows [][]float64, sizes []int) ([][][]float64, error) {
	total := 0
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("streamtest: chunk size %d must be positive", s)
		}
		total += s
	}
	if total != len(rows) {
		return nil, fmt.Errorf("streamtest: chunk sizes sum to %d, have %d rows", total, len(rows))
	}
	chunks := make([][][]float64, 0, len(sizes))
	off := 0
	for _, s := range sizes {
		chunks = append(chunks, rows[off:off+s])
		off += s
	}
	return chunks, nil
}

// Boundaries draws a random chunking of n rows into at most maxChunks
// chunks, deterministic in seed: every chunk is non-empty and the sizes
// sum to n.
func Boundaries(n, maxChunks int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	if maxChunks < 1 {
		maxChunks = 1
	}
	k := 1 + rng.Intn(maxChunks)
	if k > n {
		k = n
	}
	sizes := make([]int, k)
	remaining := n
	for i := 0; i < k-1; i++ {
		// Leave at least one row for each later chunk.
		max := remaining - (k - 1 - i)
		s := 1
		if max > 1 {
			s = 1 + rng.Intn(max)
		}
		sizes[i] = s
		remaining -= s
	}
	sizes[k-1] = remaining
	return sizes
}

// SnapshotBytes serializes any snapshot into canonical JSON bytes.
// Byte-equal outputs mean byte-equal snapshots: every float64 round-trips
// through the shortest representation that parses back exactly, so two
// snapshots differing in even one ULP serialize differently.
func SnapshotBytes(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("streamtest: snapshot not serializable: " + err.Error())
	}
	return b
}

// ReplayMiniBatch pushes the chunk sequence through a fresh mini-batch
// learner and returns its final snapshot.
func ReplayMiniBatch(cfg stream.MiniBatchConfig, chunks [][][]float64) (*stream.KMeansSnapshot, error) {
	m, err := stream.NewMiniBatch(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := m.Push(c); err != nil {
			return nil, err
		}
	}
	return m.Snapshot()
}

// ReplayEnsemble pushes the chunk sequence through a fresh ensemble
// learner and returns its final snapshot.
func ReplayEnsemble(cfg stream.EnsembleConfig, chunks [][][]float64) (*stream.EnsembleSnapshot, error) {
	e, err := stream.NewEnsemble(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := e.Push(c); err != nil {
			return nil, err
		}
	}
	return e.Snapshot()
}

// ReplayCoEM pushes the chunk sequence through a fresh co-EM learner and
// returns its final snapshot.
func ReplayCoEM(cfg stream.CoEMConfig, chunks [][][]float64) (*stream.CoEMSnapshot, error) {
	s, err := stream.NewCoEM(cfg)
	if err != nil {
		return nil, err
	}
	for _, c := range chunks {
		if err := s.Push(c); err != nil {
			return nil, err
		}
	}
	return s.Snapshot()
}
