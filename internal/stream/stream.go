// Package stream is the incremental/streaming layer over the batch
// clustering library: three learners — mini-batch k-means, a mergeable
// sliding-window ensemble, and online co-EM — behind a common
// Push(rows) / Snapshot() / Reset() surface, so the service can cluster
// unbounded row streams chunk by chunk instead of one-shot datasets.
//
// Contract (pinned by internal/stream/streamtest):
//
//   - Determinism: a learner's state after pushing a chunk sequence is a
//     pure function of (config, chunk sequence). All randomness derives
//     from the config seed; chunk-sharded work fans out over
//     internal/parallel with per-slot writes only, so snapshots are
//     byte-identical at any worker count.
//   - Equivalence: pushing the whole dataset as a single chunk is
//     byte-identical to the corresponding batch algorithm on the same
//     rows (kmeans.RunContext, metaclust.RunContext, multiview.CoEM).
//     Multi-chunk streams drift from the batch solution; the drift is
//     bounded and the bound is pinned by the harness, not exact.
//   - Cancellation: PushContext polls its context at the chunk boundary
//     (and threads it into any inner batch solve). An interrupted push
//     leaves the learner in its last consistent state — best-so-far —
//     and returns an error wrapping core.ErrInterrupted.
//   - Telemetry: every accepted chunk counts stream.chunks and
//     stream.rows_seen; every snapshot counts stream.snapshots. Counters
//     are additive across workers and runs.
package stream

import (
	"context"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/obs"
	"multiclust/internal/robust"
)

// Counter names of the streaming layer.
const (
	cntChunks    = "stream.chunks"
	cntRowsSeen  = "stream.rows_seen"
	cntSnapshots = "stream.snapshots"
	cntReseeds   = "stream.reseeds"
	cntEvicted   = "stream.evicted_chunks"
)

// checkChunk validates one pushed chunk against the learner's dimension
// (zero until the first chunk fixes it). Every failure is a typed error:
// core.ErrEmptyDataset, core.ErrInvalidInput, or core.ErrShape.
func checkChunk(rows [][]float64, d int) (int, error) {
	if err := robust.ValidateDataset(rows); err != nil {
		return 0, err
	}
	if d > 0 && len(rows[0]) != d {
		return 0, fmt.Errorf("stream: chunk has %d dims, stream has %d: %w", len(rows[0]), d, core.ErrShape)
	}
	return len(rows[0]), nil
}

// boundary polls ctx at a chunk boundary. A cancelled context rejects the
// chunk before any state changes — the learner keeps its last consistent
// (best-so-far) state — with an error wrapping core.ErrInterrupted.
func boundary(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("stream: push interrupted at chunk boundary: %v: %w", err, core.ErrInterrupted)
	}
	return nil
}

// countChunk records the per-chunk counters for one accepted chunk.
func countChunk(rec obs.Recorder, rows int) {
	obs.Count(rec, cntChunks, 1)
	obs.Count(rec, cntRowsSeen, int64(rows))
}
