package stream

import (
	"context"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/metaclust"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// EnsembleConfig controls a sliding-window meta-clustering stream.
type EnsembleConfig struct {
	K             int // clusters per base solution
	PerChunk      int // base solutions generated per chunk (default 8)
	MetaClusters  int // meta clusters per snapshot (default 3)
	FeatureJitter float64
	Window        int // chunks retained; older chunks evict FIFO (default 8)
	Seed          int64
	Workers       int
	Diss          core.DissimilarityFunc // default 1 - Rand index
}

func (cfg EnsembleConfig) withDefaults() EnsembleConfig {
	if cfg.PerChunk <= 0 {
		cfg.PerChunk = 8
	}
	if cfg.MetaClusters <= 0 {
		cfg.MetaClusters = 3
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	return cfg
}

// metaCfg is the metaclust configuration for one chunk's generation. Chunk
// c seeds at Seed+c — the robust.Retry-style schedule — so chunk 0 uses
// the configured seed exactly and a single-chunk stream reproduces the
// batch metaclust run byte for byte.
func (cfg EnsembleConfig) metaCfg(chunk int) metaclust.Config {
	return metaclust.Config{
		K: cfg.K, NumSolutions: cfg.PerChunk, MetaClusters: cfg.MetaClusters,
		FeatureJitter: cfg.FeatureJitter, Seed: cfg.Seed + int64(chunk),
		Workers: cfg.Workers, Diss: cfg.Diss,
	}
}

// EnsembleSnapshot is the grouped view of the current window.
type EnsembleSnapshot struct {
	Representatives []*core.Clustering // one per meta cluster, over the window's rows
	MetaLabels      []int              // meta-cluster id per base solution (window order)
	MeanPairwise    float64
	WindowChunks    int
	WindowRows      int
	Evicted         int // chunks evicted FIFO over the stream's lifetime
	RowsSeen        int64
	Chunks          int
}

type ensembleEntry struct {
	rows [][]float64
	sols []metaclust.BaseSolution
}

// Ensemble is the mergeable sliding-window ensemble: every pushed chunk
// contributes PerChunk perturbed base solutions (metaclust.Generate on the
// chunk's rows), a ring buffer keeps the last Window chunks and evicts
// whole chunks FIFO, and Snapshot extends each retained base solution to
// the whole window — own-chunk rows keep their fitted labels, foreign rows
// are assigned to the solution's centers in its weighted feature space —
// before handing all of them to metaclust.Group. A single-chunk stream is
// byte-identical to batch metaclust.RunContext on the same rows. Not safe
// for concurrent use.
type Ensemble struct {
	cfg EnsembleConfig

	d        int
	window   []ensembleEntry
	evicted  int
	rowsSeen int64
	chunks   int
}

// NewEnsemble validates cfg and returns an empty ensemble stream.
func NewEnsemble(cfg EnsembleConfig) (*Ensemble, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("stream: invalid K=%d: %w", cfg.K, core.ErrInvalidInput)
	}
	cfg = cfg.withDefaults()
	if cfg.MetaClusters > cfg.PerChunk {
		return nil, fmt.Errorf("stream: MetaClusters=%d exceeds PerChunk=%d: %w", cfg.MetaClusters, cfg.PerChunk, core.ErrInvalidInput)
	}
	return &Ensemble{cfg: cfg}, nil
}

// Push appends one chunk of rows; see PushContext.
func (e *Ensemble) Push(rows [][]float64) error {
	return e.PushContext(context.Background(), rows)
}

// PushContext generates the chunk's base solutions and admits them to the
// window, evicting the oldest chunk when the window is full. The context
// is polled at the chunk boundary and threaded into every base k-means
// run; on interruption the best-so-far solutions still enter the window
// and the error wraps core.ErrInterrupted.
func (e *Ensemble) PushContext(ctx context.Context, rows [][]float64) error {
	if err := boundary(ctx); err != nil {
		return err
	}
	d, err := checkChunk(rows, e.d)
	if err != nil {
		return err
	}
	if len(rows) < e.cfg.K {
		return fmt.Errorf("stream: chunk has %d rows, need at least K=%d: %w", len(rows), e.cfg.K, core.ErrInvalidInput)
	}
	rec := obs.From(ctx)
	ctx, end := obs.SpanCtx(ctx, rec, "stream.ensemble.push")
	defer end()

	// Own the rows: the window outlives the caller's buffer.
	owned := make([][]float64, len(rows))
	for i, r := range rows {
		owned[i] = append([]float64(nil), r...)
	}
	sols, gerr := metaclust.Generate(ctx, owned, e.cfg.metaCfg(e.chunks))
	if sols == nil {
		return gerr
	}
	e.d = d
	e.window = append(e.window, ensembleEntry{rows: owned, sols: sols})
	if len(e.window) > e.cfg.Window {
		e.window = e.window[1:]
		e.evicted++
		obs.Count(rec, cntEvicted, 1)
	}
	e.rowsSeen += int64(len(rows))
	e.chunks++
	countChunk(rec, len(rows))
	return gerr // interruption passes through with best-so-far solutions admitted
}

// Snapshot groups the current window; see SnapshotContext.
func (e *Ensemble) Snapshot() (*EnsembleSnapshot, error) {
	return e.SnapshotContext(context.Background())
}

// SnapshotContext extends every retained base solution to the window's
// pooled rows and groups them with metaclust.Group. The extension fans out
// over internal/parallel with per-solution slots, so snapshots are
// byte-identical at any worker count.
func (e *Ensemble) SnapshotContext(ctx context.Context) (*EnsembleSnapshot, error) {
	if e.chunks == 0 {
		return nil, fmt.Errorf("stream: snapshot of an empty stream: %w", core.ErrEmptyDataset)
	}
	if err := boundary(ctx); err != nil {
		return nil, err
	}
	rec := obs.From(ctx)
	ctx, end := obs.SpanCtx(ctx, rec, "stream.ensemble.snapshot")
	defer end()

	// Pool the window's rows in chunk order and record each chunk's offset.
	var windowRows int
	offsets := make([]int, len(e.window))
	for i, entry := range e.window {
		offsets[i] = windowRows
		windowRows += len(entry.rows)
	}
	type solRef struct {
		entry int
		sol   *metaclust.BaseSolution
	}
	var refs []solRef
	for i := range e.window {
		for s := range e.window[i].sols {
			refs = append(refs, solRef{entry: i, sol: &e.window[i].sols[s]})
		}
	}
	extended := parallel.Map(len(refs), e.cfg.Workers, func(r int) *core.Clustering {
		ref := refs[r]
		labels := make([]int, windowRows)
		for i, entry := range e.window {
			off := offsets[i]
			if i == ref.entry {
				copy(labels[off:], ref.sol.Clustering.Labels)
				continue
			}
			for j, row := range entry.rows {
				labels[off+j] = nearestWeighted(row, ref.sol.Weights, ref.sol.Centers)
			}
		}
		return core.NewClustering(labels)
	})

	g, err := metaclust.Group(ctx, extended, e.cfg.MetaClusters, e.cfg.Diss, e.cfg.Workers)
	if err != nil {
		return nil, err
	}
	obs.Count(rec, cntSnapshots, 1)
	snap := &EnsembleSnapshot{
		MetaLabels:   g.MetaLabels,
		MeanPairwise: g.MeanPairwise,
		WindowChunks: len(e.window),
		WindowRows:   windowRows,
		Evicted:      e.evicted,
		RowsSeen:     e.rowsSeen,
		Chunks:       e.chunks,
	}
	for _, idx := range g.Representatives {
		snap.Representatives = append(snap.Representatives, extended[idx])
	}
	return snap, nil
}

// nearestWeighted assigns row to the closest center in the solution's
// weighted feature space — strict < with index-order tie-break, the same
// argmin rule as the batch assignment.
func nearestWeighted(row, weights []float64, centers [][]float64) int {
	best, bestSq := 0, -1.0
	for c, ctr := range centers {
		var sq float64
		for j, v := range row {
			diff := v*weights[j] - ctr[j]
			sq += diff * diff
		}
		if bestSq < 0 || sq < bestSq {
			best, bestSq = c, sq
		}
	}
	return best
}

// RowsSeen reports the total rows accepted so far (including evicted).
func (e *Ensemble) RowsSeen() int64 { return e.rowsSeen }

// Chunks reports the number of chunks accepted so far (including evicted).
func (e *Ensemble) Chunks() int { return e.chunks }

// Reset drops all learned state, keeping the configuration.
func (e *Ensemble) Reset() {
	e.d = 0
	e.window = nil
	e.evicted = 0
	e.rowsSeen = 0
	e.chunks = 0
}
