package stream

import (
	"errors"
	"testing"

	"multiclust/internal/core"
)

// typedStreamError reports whether err wraps one of the library's typed
// sentinels — the only errors a push or snapshot is allowed to surface.
func typedStreamError(err error) bool {
	for _, sentinel := range []error{
		core.ErrEmptyDataset, core.ErrInvalidInput, core.ErrShape,
		core.ErrInterrupted, core.ErrDegenerate, core.ErrPanic,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// fuzzRows decodes the fuzzer's byte stream into an n×d row matrix, capped
// so a single iteration stays fast.
func fuzzRows(data []byte, d int) [][]float64 {
	n := len(data) / d
	if n > 64 {
		n = 64
	}
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		for j := 0; j < d; j++ {
			row[j] = (float64(data[i*d+j]) - 128) / 8
		}
		rows[i] = row
	}
	return rows
}

// fuzzChunks cuts rows at boundaries derived from the fuzzer's second byte
// stream: every byte contributes one chunk of 1..8 rows, the remainder
// becomes the final chunk.
func fuzzChunks(rows [][]float64, boundsRaw []byte) [][][]float64 {
	var chunks [][][]float64
	off := 0
	for _, b := range boundsRaw {
		if off >= len(rows) {
			break
		}
		size := 1 + int(b%8)
		if off+size > len(rows) {
			size = len(rows) - off
		}
		chunks = append(chunks, rows[off:off+size])
		off += size
	}
	if off < len(rows) {
		chunks = append(chunks, rows[off:])
	}
	return chunks
}

// FuzzChunkedReplay replays random row streams under random chunk
// boundaries through all three learners and asserts the streaming
// contract's safety half: no panic ever escapes (the fuzzer itself fails
// on panics), every push error is a typed sentinel, stream.rows_seen is
// monotone and only advances on accepted chunks, and after the replay the
// learner either serves a structurally valid snapshot or reports a typed
// error — never both, never neither.
func FuzzChunkedReplay(f *testing.F) {
	f.Add([]byte{10, 20, 200, 210, 15, 25, 205, 215, 12, 22, 202, 212}, byte(2), byte(2), byte(0), int64(1), []byte{3, 3})
	f.Add([]byte{0, 255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 255, 128, 64, 32, 16}, byte(4), byte(3), byte(1), int64(7), []byte{2})
	f.Add([]byte{100, 101, 102, 103, 104, 105, 106, 107}, byte(1), byte(1), byte(2), int64(42), []byte{})
	f.Add([]byte{}, byte(3), byte(2), byte(0), int64(0), []byte{1, 2, 3})
	f.Add([]byte{50, 60, 70, 80, 90, 100, 110, 120, 130, 140}, byte(2), byte(4), byte(1), int64(-3), []byte{1, 1, 1, 1, 1})
	f.Fuzz(func(t *testing.T, data []byte, dRaw, kRaw, pick byte, seed int64, boundsRaw []byte) {
		d := 1 + int(dRaw%4)
		k := 1 + int(kRaw%5)
		rows := fuzzRows(data, d)
		chunks := fuzzChunks(rows, boundsRaw)

		type learner interface {
			Push(rows [][]float64) error
			RowsSeen() int64
			Chunks() int
		}
		var l learner
		var err error
		switch pick % 3 {
		case 0:
			l, err = NewMiniBatch(MiniBatchConfig{K: k, Seed: seed})
		case 1:
			l, err = NewEnsemble(EnsembleConfig{K: k, PerChunk: 3, MetaClusters: 2, Window: 4, Seed: seed})
		case 2:
			l, err = NewCoEM(CoEMConfig{K: k, Seed: seed})
		}
		if err != nil {
			if !typedStreamError(err) {
				t.Fatalf("constructor error is not typed: %v", err)
			}
			return
		}

		accepted := 0
		for _, chunk := range chunks {
			prevRows, prevChunks := l.RowsSeen(), l.Chunks()
			perr := l.Push(chunk)
			if perr != nil && !typedStreamError(perr) {
				t.Fatalf("push error is not typed: %v", perr)
			}
			if l.RowsSeen() < prevRows {
				t.Fatalf("rows_seen went backwards: %d -> %d", prevRows, l.RowsSeen())
			}
			if perr != nil && !errors.Is(perr, core.ErrInterrupted) && l.RowsSeen() != prevRows {
				t.Fatalf("rejected chunk advanced rows_seen: %d -> %d (err %v)", prevRows, l.RowsSeen(), perr)
			}
			if l.Chunks() > prevChunks {
				accepted++
			}
		}

		// Typed-error XOR valid snapshot: an empty replay must report
		// ErrEmptyDataset, a non-empty one must serve a valid snapshot.
		switch s := l.(type) {
		case *MiniBatch:
			snap, serr := s.Snapshot()
			checkXOR(t, accepted, serr, snap == nil)
			if snap != nil {
				if len(snap.Centers) != k || len(snap.Counts) != k {
					t.Fatalf("snapshot shape: %d centers, %d counts, want K=%d", len(snap.Centers), len(snap.Counts), k)
				}
				if snap.RowsSeen != s.RowsSeen() || snap.Chunks != accepted {
					t.Fatalf("snapshot bookkeeping drifted: %+v vs rows=%d chunks=%d", snap, s.RowsSeen(), accepted)
				}
			}
		case *Ensemble:
			snap, serr := s.Snapshot()
			checkXOR(t, accepted, serr, snap == nil)
			if snap != nil {
				for _, rep := range snap.Representatives {
					if verr := rep.Validate(snap.WindowRows); verr != nil {
						t.Fatalf("invalid representative: %v", verr)
					}
				}
			}
		case *CoEM:
			snap, serr := s.Snapshot()
			checkXOR(t, accepted, serr, snap == nil)
			if snap != nil {
				if verr := snap.Clustering.Validate(snap.LastChunkRows); verr != nil {
					t.Fatalf("invalid consensus clustering: %v", verr)
				}
			}
		}
	})
}

// checkXOR enforces the typed-error XOR valid-snapshot contract.
func checkXOR(t *testing.T, accepted int, serr error, nilSnap bool) {
	t.Helper()
	if serr != nil {
		if !typedStreamError(serr) {
			t.Fatalf("snapshot error is not typed: %v", serr)
		}
		if !nilSnap {
			t.Fatal("snapshot returned both a value and an error")
		}
		if accepted > 0 {
			t.Fatalf("stream accepted %d chunks but refused a snapshot: %v", accepted, serr)
		}
		return
	}
	if nilSnap {
		t.Fatal("snapshot returned neither a value nor an error")
	}
	if accepted == 0 {
		t.Fatal("empty stream served a snapshot instead of ErrEmptyDataset")
	}
}
