package stream

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// blobRows draws n rows around k well-separated centers, deterministic in
// seed, full-width d.
func blobRows(n, d, k int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = 10*float64(c) + rng.NormFloat64()
		}
		rows[i] = row
	}
	return rows
}

func TestNewValidation(t *testing.T) {
	if _, err := NewMiniBatch(MiniBatchConfig{K: 0}); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("NewMiniBatch(K=0) err = %v, want ErrInvalidInput", err)
	}
	if _, err := NewEnsemble(EnsembleConfig{K: 2, PerChunk: 2, MetaClusters: 5}); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("NewEnsemble(MetaClusters>PerChunk) err = %v, want ErrInvalidInput", err)
	}
	if _, err := NewCoEM(CoEMConfig{K: 2, Forgetting: 1.5}); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("NewCoEM(Forgetting>1) err = %v, want ErrInvalidInput", err)
	}
}

func TestPushTypedErrors(t *testing.T) {
	m, err := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Push(nil); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("empty chunk err = %v, want ErrEmptyDataset", err)
	}
	if err := m.Push([][]float64{{1}}); !errors.Is(err, core.ErrInvalidInput) {
		t.Fatalf("first chunk smaller than K err = %v, want ErrInvalidInput", err)
	}
	if err := m.Push(blobRows(8, 2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Push([][]float64{{1, 2, 3}}); !errors.Is(err, core.ErrShape) {
		t.Fatalf("dim mismatch err = %v, want ErrShape", err)
	}
	if got := m.RowsSeen(); got != 8 {
		t.Fatalf("rejected chunks must not advance RowsSeen: got %d, want 8", got)
	}
}

func TestBoundaryCancellationLeavesStateIntact(t *testing.T) {
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 1})
	if err := m.Push(blobRows(10, 2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	before, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.PushContext(ctx, blobRows(10, 2, 2, 2)); !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("cancelled push err = %v, want ErrInterrupted", err)
	}
	after, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if after.Chunks != before.Chunks || after.RowsSeen != before.RowsSeen {
		t.Fatalf("cancelled push mutated state: before %+v after %+v", before, after)
	}
}

func TestSnapshotEmptyStream(t *testing.T) {
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2})
	if _, err := m.Snapshot(); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("empty snapshot err = %v, want ErrEmptyDataset", err)
	}
	e, _ := NewEnsemble(EnsembleConfig{K: 2})
	if _, err := e.Snapshot(); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("empty ensemble snapshot err = %v, want ErrEmptyDataset", err)
	}
	c, _ := NewCoEM(CoEMConfig{K: 2})
	if _, err := c.Snapshot(); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("empty co-EM snapshot err = %v, want ErrEmptyDataset", err)
	}
}

func TestStreamCounters(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.NewContext(context.Background(), col)
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 3})
	for i := 0; i < 3; i++ {
		if err := m.PushContext(ctx, blobRows(10, 2, 2, int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.SnapshotContext(ctx); err != nil {
		t.Fatal(err)
	}
	if got := col.Counter("stream.chunks"); got != 3 {
		t.Fatalf("stream.chunks = %d, want 3", got)
	}
	if got := col.Counter("stream.rows_seen"); got != 30 {
		t.Fatalf("stream.rows_seen = %d, want 30", got)
	}
	if got := col.Counter("stream.snapshots"); got != 1 {
		t.Fatalf("stream.snapshots = %d, want 1", got)
	}
}

func TestMiniBatchReseedsStarvedCentroid(t *testing.T) {
	col := obs.NewCollector()
	ctx := obs.NewContext(context.Background(), col)
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 7, StarveAfter: 2})
	// First chunk has two blobs, so both centroids start alive.
	if err := m.PushContext(ctx, blobRows(12, 2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	// Every later chunk sits near blob 0 only; the far centroid starves
	// after StarveAfter consecutive all-blob-0 chunks and must be reseeded
	// onto a chunk row.
	oneBlob := func(seed int64) [][]float64 {
		rng := rand.New(rand.NewSource(seed))
		rows := make([][]float64, 10)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		return rows
	}
	for i := int64(0); i < 4; i++ {
		if err := m.PushContext(ctx, oneBlob(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := m.SnapshotContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Reseeds == 0 {
		t.Fatal("starved centroid was never reseeded")
	}
	if got := col.Counter("stream.reseeds"); got != snap.Reseeds {
		t.Fatalf("stream.reseeds counter = %d, snapshot says %d", got, snap.Reseeds)
	}
	// The reseeded centroid lands on a chunk row near blob 0, so both
	// centroids are now close to the data: the last chunk's SSE per row
	// should be small rather than the ~100 of a 10-away dead centroid.
	if snap.LastSSE/10 > 50 {
		t.Fatalf("reseed did not move the dead centroid: per-row SSE %v", snap.LastSSE/10)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 5})
	if err := m.Push(blobRows(10, 3, 2, 1)); err != nil {
		t.Fatal(err)
	}
	a, _ := m.Snapshot()
	a.Centers[0][0] = 1e9
	a.Counts[0] = -1
	b, _ := m.Snapshot()
	if b.Centers[0][0] == 1e9 || b.Counts[0] == -1 {
		t.Fatal("snapshot aliases learner state")
	}
}

func TestEnsembleWindowEviction(t *testing.T) {
	e, err := NewEnsemble(EnsembleConfig{K: 2, PerChunk: 4, MetaClusters: 2, Window: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3; i++ {
		if err := e.Push(blobRows(10, 2, 2, i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.WindowChunks != 2 || snap.Evicted != 1 || snap.Chunks != 3 {
		t.Fatalf("window bookkeeping: %+v", snap)
	}
	if snap.WindowRows != 20 {
		t.Fatalf("WindowRows = %d, want 20", snap.WindowRows)
	}
	if len(snap.MetaLabels) != 2*4 {
		t.Fatalf("MetaLabels over %d solutions, want 8", len(snap.MetaLabels))
	}
	if len(snap.Representatives) != 2 {
		t.Fatalf("representatives = %d, want 2", len(snap.Representatives))
	}
	for _, rep := range snap.Representatives {
		if err := rep.Validate(snap.WindowRows); err != nil {
			t.Fatalf("representative invalid over window rows: %v", err)
		}
	}
}

func TestCoEMStreamBasics(t *testing.T) {
	c, err := NewCoEM(CoEMConfig{K: 2, Seed: 13, Forgetting: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Push(blobRows(20, 4, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Push(blobRows(15, 4, 2, 2)); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.LastChunkRows != 15 || snap.RowsSeen != 35 || snap.Chunks != 2 {
		t.Fatalf("bookkeeping: %+v", snap)
	}
	if snap.Agreement < 0 || snap.Agreement > 1 {
		t.Fatalf("agreement %v outside [0, 1]", snap.Agreement)
	}
	if err := snap.Clustering.Validate(15); err != nil {
		t.Fatalf("consensus clustering invalid: %v", err)
	}
	if err := snap.ModelA.Validate(); err != nil {
		t.Fatalf("model A invalid: %v", err)
	}
	if err := snap.ModelB.Validate(); err != nil {
		t.Fatalf("model B invalid: %v", err)
	}
	// One-column rows cannot split into two views.
	c2, _ := NewCoEM(CoEMConfig{K: 1})
	if err := c2.Push([][]float64{{1}, {2}}); !errors.Is(err, core.ErrShape) {
		t.Fatalf("1-dim co-EM err = %v, want ErrShape", err)
	}
}

func TestResetClearsState(t *testing.T) {
	m, _ := NewMiniBatch(MiniBatchConfig{K: 2, Seed: 1})
	if err := m.Push(blobRows(10, 2, 2, 1)); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	if m.RowsSeen() != 0 || m.Chunks() != 0 {
		t.Fatal("reset kept bookkeeping")
	}
	if _, err := m.Snapshot(); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatal("reset stream should have no snapshot")
	}
	// A reset learner accepts a different dimensionality.
	if err := m.Push(blobRows(10, 5, 2, 2)); err != nil {
		t.Fatal(err)
	}
}
