package stream

import (
	"context"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/em"
	"multiclust/internal/multiview"
	"multiclust/internal/obs"
)

// CoEMConfig controls an online co-EM stream. Rows arrive full-width and
// are split by column into the two views at SplitAt, so the learner keeps
// the uniform Push(rows) surface.
type CoEMConfig struct {
	K       int
	SplitAt int // first column of view B; default d/2, must be 1..d-1
	Seed    int64
	MaxIter int     // first-chunk batch co-EM round cap (default 30)
	Tol     float64 // first-chunk early-stop tolerance
	MinVar  float64 // variance floor (default 1e-6)
	// Forgetting is the exponential decay λ in (0, 1] applied to the
	// sufficient statistics before each online chunk is folded in
	// (default 0.9). λ=1 keeps every chunk at full weight. The decay is
	// indexed by chunk arrival order, never by wall-clock time.
	Forgetting float64
	Workers    int
}

func (cfg CoEMConfig) withDefaults() CoEMConfig {
	if cfg.MinVar <= 0 {
		cfg.MinVar = 1e-6
	}
	if cfg.Forgetting <= 0 {
		cfg.Forgetting = 0.9
	}
	return cfg
}

// CoEMSnapshot is the state of an online co-EM stream: the two per-view
// models, the consensus clustering of the most recent chunk, and the
// diagnostics the batch CoEM reports per round.
type CoEMSnapshot struct {
	ModelA, ModelB *em.Model
	Clustering     *core.Clustering // consensus over the last chunk's rows
	Agreement      float64
	LogLikA        float64
	LogLikB        float64
	LastChunkRows  int
	RowsSeen       int64
	Chunks         int
}

// CoEM is streaming co-EM (Bickel & Scheffer 2004 made incremental): the
// first chunk is solved with the batch multiview.CoEM — a single-chunk
// stream reproduces it byte for byte — and every later chunk performs one
// interleaved online round on em.SuffStats with exponential forgetting:
// expectation of the chunk under view A feeds view B's decayed M-step and
// vice versa, the cross-feeding that defines co-EM. E-steps fan out over
// internal/parallel row-sharded, byte-identical at any worker count. Not
// safe for concurrent use.
type CoEM struct {
	cfg CoEMConfig

	d, split       int
	modelA, modelB *em.Model
	statsA, statsB *em.SuffStats
	lastA, lastB   [][]float64 // retained views of the most recent chunk
	rowsSeen       int64
	chunks         int
}

// NewCoEM validates cfg and returns an empty co-EM stream.
func NewCoEM(cfg CoEMConfig) (*CoEM, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("stream: invalid K=%d: %w", cfg.K, core.ErrInvalidInput)
	}
	if cfg.SplitAt < 0 {
		return nil, fmt.Errorf("stream: invalid SplitAt=%d: %w", cfg.SplitAt, core.ErrInvalidInput)
	}
	if cfg.Forgetting > 1 {
		return nil, fmt.Errorf("stream: Forgetting=%v outside (0, 1]: %w", cfg.Forgetting, core.ErrInvalidInput)
	}
	return &CoEM{cfg: cfg.withDefaults()}, nil
}

// Push appends one chunk of rows; see PushContext.
func (s *CoEM) Push(rows [][]float64) error {
	return s.PushContext(context.Background(), rows)
}

// PushContext appends one chunk. The context is polled at the chunk
// boundary; a cancelled context rejects the chunk with the learner's state
// untouched and an error wrapping core.ErrInterrupted.
func (s *CoEM) PushContext(ctx context.Context, rows [][]float64) error {
	if err := boundary(ctx); err != nil {
		return err
	}
	d, err := checkChunk(rows, s.d)
	if err != nil {
		return err
	}
	split := s.split
	if s.chunks == 0 {
		if d < 2 {
			return fmt.Errorf("stream: co-EM needs at least 2 columns to split into views, have %d: %w", d, core.ErrShape)
		}
		split = s.cfg.SplitAt
		if split == 0 {
			split = d / 2
		}
		if split < 1 || split >= d {
			return fmt.Errorf("stream: SplitAt=%d outside 1..%d: %w", split, d-1, core.ErrInvalidInput)
		}
		if len(rows) < s.cfg.K {
			return fmt.Errorf("stream: first chunk has %d rows, need at least K=%d: %w", len(rows), s.cfg.K, core.ErrInvalidInput)
		}
	}
	rec := obs.From(ctx)
	_, end := obs.SpanCtx(ctx, rec, "stream.coem.push")
	defer end()

	viewA := make([][]float64, len(rows))
	viewB := make([][]float64, len(rows))
	for i, r := range rows {
		viewA[i] = append([]float64(nil), r[:split]...)
		viewB[i] = append([]float64(nil), r[split:]...)
	}

	if s.chunks == 0 {
		res, cerr := multiview.CoEM(viewA, viewB, multiview.CoEMConfig{
			K: s.cfg.K, MaxIter: s.cfg.MaxIter, Seed: s.cfg.Seed,
			MinVar: s.cfg.MinVar, Tol: s.cfg.Tol,
		})
		if cerr != nil {
			return cerr
		}
		s.d, s.split = d, split
		s.modelA, s.modelB = res.ModelA, res.ModelB
		// Seed the forgetting accumulators with the bootstrap's cross
		// statistics: each view's model came from the other view's
		// posteriors, and the online rounds keep that pairing.
		s.statsA = em.NewSuffStats(s.cfg.K, split)
		s.statsA.Add(viewA, res.PosteriorB)
		s.statsB = em.NewSuffStats(s.cfg.K, d-split)
		s.statsB.Add(viewB, res.PosteriorA)
	} else {
		n := len(rows)
		postA := newPost(n, s.cfg.K)
		postB := newPost(n, s.cfg.K)
		// One interleaved online round, mirroring the batch order
		// MStep(B)·EStep(B)·MStep(A)·EStep(A) with decayed statistics.
		em.EStepParallel(viewA, s.modelA, postA, s.cfg.MinVar, s.cfg.Workers)
		s.statsB.Scale(s.cfg.Forgetting)
		s.statsB.Add(viewB, postA)
		s.statsB.ModelInto(s.modelB, s.cfg.MinVar)
		em.EStepParallel(viewB, s.modelB, postB, s.cfg.MinVar, s.cfg.Workers)
		s.statsA.Scale(s.cfg.Forgetting)
		s.statsA.Add(viewA, postB)
		s.statsA.ModelInto(s.modelA, s.cfg.MinVar)
	}
	s.lastA, s.lastB = viewA, viewB
	s.rowsSeen += int64(len(rows))
	s.chunks++
	countChunk(rec, len(rows))
	return nil
}

// Snapshot returns the current state; see SnapshotContext.
func (s *CoEM) Snapshot() (*CoEMSnapshot, error) {
	return s.SnapshotContext(context.Background())
}

// SnapshotContext evaluates both models on the most recent chunk and
// returns their consensus clustering plus cloned models. For a
// single-chunk stream the result is byte-identical to the batch
// multiview.CoEM consensus on the same rows.
func (s *CoEM) SnapshotContext(ctx context.Context) (*CoEMSnapshot, error) {
	if s.chunks == 0 {
		return nil, fmt.Errorf("stream: snapshot of an empty stream: %w", core.ErrEmptyDataset)
	}
	if err := boundary(ctx); err != nil {
		return nil, err
	}
	rec := obs.From(ctx)
	_, end := obs.SpanCtx(ctx, rec, "stream.coem.snapshot")
	defer end()

	n := len(s.lastA)
	postA := newPost(n, s.cfg.K)
	postB := newPost(n, s.cfg.K)
	llA := em.EStepParallel(s.lastA, s.modelA, postA, s.cfg.MinVar, s.cfg.Workers)
	llB := em.EStepParallel(s.lastB, s.modelB, postB, s.cfg.MinVar, s.cfg.Workers)
	avg := make([][]float64, n)
	for i := range avg {
		row := make([]float64, s.cfg.K)
		for c := 0; c < s.cfg.K; c++ {
			row[c] = 0.5 * (postA[i][c] + postB[i][c])
		}
		avg[i] = row
	}
	obs.Count(rec, cntSnapshots, 1)
	return &CoEMSnapshot{
		ModelA:        s.modelA.Clone(),
		ModelB:        s.modelB.Clone(),
		Clustering:    em.Harden(avg),
		Agreement:     multiview.Agreement(postA, postB),
		LogLikA:       llA,
		LogLikB:       llB,
		LastChunkRows: n,
		RowsSeen:      s.rowsSeen,
		Chunks:        s.chunks,
	}, nil
}

func newPost(n, k int) [][]float64 {
	post := make([][]float64, n)
	for i := range post {
		post[i] = make([]float64, k)
	}
	return post
}

// RowsSeen reports the total rows accepted so far.
func (s *CoEM) RowsSeen() int64 { return s.rowsSeen }

// Chunks reports the number of chunks accepted so far.
func (s *CoEM) Chunks() int { return s.chunks }

// Reset drops all learned state, keeping the configuration.
func (s *CoEM) Reset() {
	s.d, s.split = 0, 0
	s.modelA, s.modelB = nil, nil
	s.statsA, s.statsB = nil, nil
	s.lastA, s.lastB = nil, nil
	s.rowsSeen = 0
	s.chunks = 0
}
