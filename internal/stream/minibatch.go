package stream

import (
	"context"
	"fmt"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/kmeans"
	"multiclust/internal/obs"
	"multiclust/internal/robust"
)

// MiniBatchConfig controls a mini-batch k-means stream.
type MiniBatchConfig struct {
	K       int
	Seed    int64
	Workers int // parallelism; <=0 resolves via internal/parallel
	// MaxIter and Restarts configure the first-chunk batch solve that
	// initializes the centers (kmeans.Config defaults apply when zero).
	MaxIter  int
	Restarts int
	// StarveAfter is the number of consecutive chunks a centroid may go
	// without a single assignment before it is reseeded (default 3).
	StarveAfter int
	// ReseedBudget is the robust.Retry budget for one reseed draw: the
	// draw walks the deterministic seed schedule until it lands on a chunk
	// row at nonzero distance from its center (default 3).
	ReseedBudget int
}

func (cfg MiniBatchConfig) withDefaults() MiniBatchConfig {
	if cfg.StarveAfter <= 0 {
		cfg.StarveAfter = 3
	}
	if cfg.ReseedBudget <= 0 {
		cfg.ReseedBudget = 3
	}
	return cfg
}

// KMeansSnapshot is the state of a mini-batch k-means stream at one point
// in the chunk sequence. Centers and Counts are deep copies; mutating a
// snapshot never perturbs the learner.
type KMeansSnapshot struct {
	Centers    [][]float64 // current centroid positions
	Counts     []int64     // lifetime assignment mass per centroid (learning-rate denominators)
	LastLabels []int       // assignment of the most recent chunk's rows
	LastSSE    float64     // SSE of the most recent chunk against its assignment
	RowsSeen   int64
	Chunks     int
	Reseeds    int64 // starved centroids reseeded so far
}

// MiniBatch is incremental k-means over a chunked row stream (Sculley
// 2010 web-scale k-means, grafted onto this repo's deterministic batch
// core): the first chunk is solved with the batch kmeans.RunContext —
// so a single-chunk stream is byte-identical to the batch algorithm —
// and every later chunk is assigned with the Hamerly-style pruned
// kmeans.AssignPruned scan, then folded into the centroids with
// per-centroid decaying learning rates η_c = 1/count_c. Centroids starved
// for StarveAfter consecutive chunks are reseeded deterministically on the
// robust.Retry seed schedule with a D²-weighted draw from the current
// chunk. Not safe for concurrent use; the job engine serializes pushes.
type MiniBatch struct {
	cfg MiniBatchConfig

	d          int
	centers    [][]float64
	counts     []int64
	starved    []int // consecutive fully-starved chunks per centroid
	reseeds    int64
	lastLabels []int
	lastSSE    float64
	rowsSeen   int64
	chunks     int
}

// NewMiniBatch validates cfg and returns an empty mini-batch stream.
func NewMiniBatch(cfg MiniBatchConfig) (*MiniBatch, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("stream: invalid K=%d: %w", cfg.K, core.ErrInvalidInput)
	}
	return &MiniBatch{cfg: cfg.withDefaults()}, nil
}

// Push appends one chunk of rows; see PushContext.
func (m *MiniBatch) Push(rows [][]float64) error {
	return m.PushContext(context.Background(), rows)
}

// PushContext appends one chunk of rows to the stream. The context is
// polled at the chunk boundary and threaded into the first chunk's batch
// solve; an interrupted push either rejects the chunk outright (boundary)
// or retains the inner solver's best-so-far state, and in both cases the
// error wraps core.ErrInterrupted while the learner stays consistent.
func (m *MiniBatch) PushContext(ctx context.Context, rows [][]float64) error {
	if err := boundary(ctx); err != nil {
		return err
	}
	d, err := checkChunk(rows, m.d)
	if err != nil {
		return err
	}
	rec := obs.From(ctx)
	ctx, end := obs.SpanCtx(ctx, rec, "stream.minibatch.push")
	defer end()

	if m.chunks == 0 {
		if len(rows) < m.cfg.K {
			return fmt.Errorf("stream: first chunk has %d rows, need at least K=%d: %w", len(rows), m.cfg.K, core.ErrInvalidInput)
		}
		res, kerr := kmeans.RunContext(ctx, rows, kmeans.Config{
			K: m.cfg.K, Seed: m.cfg.Seed, Workers: m.cfg.Workers,
			MaxIter: m.cfg.MaxIter, Restarts: m.cfg.Restarts,
		})
		if res == nil {
			return kerr
		}
		m.d = d
		m.centers = res.Centers
		m.counts = make([]int64, m.cfg.K)
		m.starved = make([]int, m.cfg.K)
		for _, c := range res.Clustering.Labels {
			m.counts[c]++
		}
		m.lastLabels = res.Clustering.Labels
		m.lastSSE = res.SSE
		m.rowsSeen += int64(len(rows))
		m.chunks++
		countChunk(rec, len(rows))
		return kerr // best-so-far on interruption; nil otherwise
	}

	labels, sqd := kmeans.AssignPruned(rows, m.centers, m.cfg.Workers, rec)
	// Fold the chunk into the centroids serially in row order: counts are
	// the learning-rate denominators, so centroid c takes a step of size
	// 1/count_c toward each assigned row — early rows move centers a lot,
	// late rows barely at all.
	var sse float64
	perChunk := make([]int64, m.cfg.K)
	for i, c := range labels {
		m.counts[c]++
		perChunk[c]++
		eta := 1 / float64(m.counts[c])
		ctr := m.centers[c]
		for j, v := range rows[i] {
			ctr[j] += eta * (v - ctr[j])
		}
		sse += sqd[i]
	}
	m.reseedStarved(rec, perChunk, rows, sqd)
	m.lastLabels = labels
	m.lastSSE = sse
	m.rowsSeen += int64(len(rows))
	m.chunks++
	countChunk(rec, len(rows))
	return nil
}

// reseedStarved advances the starvation counters from the chunk's
// per-centroid assignment mass and relocates any centroid starved for
// StarveAfter consecutive chunks. The replacement row is a D²-weighted
// draw from the current chunk on the robust.Retry seed schedule
// (Seed+reseeds, Seed+reseeds+1, ...): a draw that lands on a row already
// sitting on its centroid is a degenerate fit and retries with the next
// seed. A chunk with zero total distance mass has nothing to offer; the
// centroid stays starved and the next chunk tries again.
func (m *MiniBatch) reseedStarved(rec obs.Recorder, perChunk []int64, rows [][]float64, sqd []float64) {
	for c := range perChunk {
		if perChunk[c] > 0 {
			m.starved[c] = 0
			continue
		}
		m.starved[c]++
		if m.starved[c] < m.cfg.StarveAfter {
			continue
		}
		idx, err := robust.RetryValue(m.cfg.Seed+m.reseeds, m.cfg.ReseedBudget, func(seed int64) (int, error) {
			rng := rand.New(rand.NewSource(seed))
			i := weightedPick(rng, sqd)
			if i < 0 || sqd[i] == 0 {
				return -1, fmt.Errorf("stream: reseed draw landed on a zero-distance row: %w", core.ErrDegenerate)
			}
			return i, nil
		})
		m.reseeds++
		if err != nil {
			continue
		}
		copy(m.centers[c], rows[idx])
		m.counts[c] = 1
		m.starved[c] = 0
		obs.Count(rec, cntReseeds, 1)
	}
}

// weightedPick draws an index with probability proportional to the weights
// (the kmeans++ D² rule). Returns -1 when all weights are zero.
func weightedPick(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	// Float accumulation can leave r at a hair above zero; take the last
	// positive-weight index, matching the batch kmeans++ scan.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// Snapshot returns the current state; see SnapshotContext.
func (m *MiniBatch) Snapshot() (*KMeansSnapshot, error) {
	return m.SnapshotContext(context.Background())
}

// SnapshotContext returns a deep copy of the learner state. Snapshots are
// byte-identical for the same (config, chunk sequence) at any worker
// count. An empty stream has no model yet: core.ErrEmptyDataset.
func (m *MiniBatch) SnapshotContext(ctx context.Context) (*KMeansSnapshot, error) {
	if m.chunks == 0 {
		return nil, fmt.Errorf("stream: snapshot of an empty stream: %w", core.ErrEmptyDataset)
	}
	rec := obs.From(ctx)
	obs.Count(rec, cntSnapshots, 1)
	snap := &KMeansSnapshot{
		Centers:    make([][]float64, len(m.centers)),
		Counts:     append([]int64(nil), m.counts...),
		LastLabels: append([]int(nil), m.lastLabels...),
		LastSSE:    m.lastSSE,
		RowsSeen:   m.rowsSeen,
		Chunks:     m.chunks,
		Reseeds:    m.reseeds,
	}
	for i, ctr := range m.centers {
		snap.Centers[i] = append([]float64(nil), ctr...)
	}
	return snap, nil
}

// RowsSeen reports the total rows accepted so far.
func (m *MiniBatch) RowsSeen() int64 { return m.rowsSeen }

// Chunks reports the number of chunks accepted so far.
func (m *MiniBatch) Chunks() int { return m.chunks }

// Reset drops all learned state, keeping the configuration.
func (m *MiniBatch) Reset() {
	m.d = 0
	m.centers = nil
	m.counts = nil
	m.starved = nil
	m.reseeds = 0
	m.lastLabels = nil
	m.lastSSE = 0
	m.rowsSeen = 0
	m.chunks = 0
}
