package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// fixedClock returns a deterministic timestamp source for byte-stable
// log assertions.
func fixedClock() time.Time {
	return time.Date(2026, 8, 9, 12, 30, 45, 123456789, time.UTC)
}

func TestLoggerByteStableOutput(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LogInfo)
	l.SetClock(fixedClock)
	l.Info("http.request",
		LStr("method", "POST"),
		LStr("route", "v1_jobs"),
		LInt("status", 202),
		LInt("bytes", 84),
		LDurMS("dur_ms", 1500*time.Microsecond),
		LStr("trace", "0af7651916cd43dd8448eb211c80319c"),
	)
	want := `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"http.request",` +
		`"method":"POST","route":"v1_jobs","status":202,"bytes":84,"dur_ms":1.500,` +
		`"trace":"0af7651916cd43dd8448eb211c80319c"}` + "\n"
	if got := sb.String(); got != want {
		t.Fatalf("log line mismatch:\n got %q\nwant %q", got, want)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LogWarn)
	l.SetClock(fixedClock)
	l.Debug("job.state", LStr("job", "j-1"), LStr("state", "queued"))
	l.Info("job.state", LStr("job", "j-1"), LStr("state", "running"))
	if sb.Len() != 0 {
		t.Fatalf("below-min lines were written: %q", sb.String())
	}
	if l.Enabled(LogInfo) || !l.Enabled(LogError) {
		t.Fatal("Enabled disagrees with the min level")
	}
	l.Error("job.state", LStr("job", "j-1"), LStr("state", "failed"), LStr("err", "boom"))
	if n := strings.Count(sb.String(), "\n"); n != 1 {
		t.Fatalf("want exactly 1 line, got %d: %q", n, sb.String())
	}
}

func TestLoggerNilReceiverIsNoOp(t *testing.T) {
	var l *Logger
	l.Info("http.request", LStr("method", "GET")) // must not panic
	l.SetClock(fixedClock)
	if l.Enabled(LogError) {
		t.Fatal("nil logger claims to be enabled")
	}
	if l.Err() != nil {
		t.Fatal("nil logger has an error")
	}
}

func TestLoggerRetainsFirstWriteError(t *testing.T) {
	l := NewLogger(logFailWriter{}, LogInfo)
	l.Info("job.state", LStr("job", "j-1"), LStr("state", "queued"))
	if err := l.Err(); err == nil {
		t.Fatal("write error was not retained")
	}
}

type logFailWriter struct{}

func (logFailWriter) Write(p []byte) (int, error) { return 0, errors.New("disk gone") }

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]LogLevel{
		"debug": LogDebug, "info": LogInfo, "WARN": LogWarn,
		"warning": LogWarn, "Error": LogError, "": LogInfo,
	} {
		got, err := ParseLogLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
}

// TestLogSchemaValidator pins the documented schema contract that `make
// logs-check` enforces: real logger output for both events validates,
// and each class of malformation is rejected.
func TestLogSchemaValidator(t *testing.T) {
	var sb strings.Builder
	l := NewLogger(&sb, LogDebug)
	l.SetClock(fixedClock)
	l.Info("http.request",
		LStr("method", "GET"), LStr("route", "metrics"), LInt("status", 200),
		LInt("bytes", 1024), LDurMS("dur_ms", time.Millisecond),
		LStr("trace", "0af7651916cd43dd8448eb211c80319c"), LStr("job", "j-9"))
	l.Warn("job.state", LStr("job", "j-9"), LStr("state", "partial"),
		LStr("trace", "0af7651916cd43dd8448eb211c80319c"), LInt("attempts", 2))
	for _, line := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		if err := ValidateLogLine([]byte(line)); err != nil {
			t.Errorf("emitted line fails its own schema: %v\n%s", err, line)
		}
	}

	bad := map[string]string{
		"not json":       `{"ts":`,
		"missing ts":     `{"level":"info","event":"http.request"}`,
		"bad ts layout":  `{"ts":"2026-08-09 12:30:45","level":"info","event":"job.state","job":"j-1","state":"done"}`,
		"unknown level":  `{"ts":"2026-08-09T12:30:45.123456Z","level":"loud","event":"job.state","job":"j-1","state":"done"}`,
		"unknown event":  `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"mystery"}`,
		"missing field":  `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"http.request","method":"GET"}`,
		"wrong type":     `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"http.request","method":"GET","route":"metrics","status":"200","bytes":1,"dur_ms":1,"trace":"abc"}`,
		"unknown state":  `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"job.state","job":"j-1","state":"exploded"}`,
		"job not string": `{"ts":"2026-08-09T12:30:45.123456Z","level":"info","event":"job.state","job":7,"state":"done"}`,
	}
	for name, line := range bad {
		if err := ValidateLogLine([]byte(line)); err == nil {
			t.Errorf("%s: malformed line passed validation: %s", name, line)
		}
	}
}
