package obs

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestHelpersNilRecorderAreNoOps(t *testing.T) {
	// Must not panic, must not do anything observable.
	Count(nil, "x", 3)
	Gauge(nil, "x", 1.5)
	Observe(nil, "x", 0, 2.5)
	Histogram(nil, "x", 0.001)
	end := Span(nil, "x")
	if end == nil {
		t.Fatal("Span(nil) returned nil end func")
	}
	end()
}

// The zero-overhead contract: every nil-recorder helper, and recorder
// resolution itself, performs zero heap allocations.
func TestNilRecorderPathDoesNotAllocate(t *testing.T) {
	ctx := context.Background()
	cases := map[string]func(){
		"count":     func() { Count(nil, "kmeans.iterations", 1) },
		"gauge":     func() { Gauge(nil, "metaclust.mean_pairwise", 0.5) },
		"observe":   func() { Observe(nil, "kmeans.sse", 3, 12.5) },
		"histogram": func() { Histogram(nil, "jobs.exec_seconds", 0.004) },
		"span":      func() { Span(nil, "kmeans.run")() },
		"spanctx": func() {
			_, end := SpanCtx(ctx, nil, "kmeans.run")
			end()
		},
		"from":    func() { From(ctx) },
		"default": func() { Default() },
	}
	for name, fn := range cases {
		if got := testing.AllocsPerRun(1000, fn); got != 0 {
			t.Errorf("%s: nil-recorder path allocated %.1f times per op, want 0", name, got)
		}
	}
}

func TestCollectorRecordsAndSnapshots(t *testing.T) {
	c := NewCollector()
	c.Count("a.b", 2)
	c.Count("a.b", 3)
	c.Gauge("g", 1.25)
	c.Observe("s", 1, 10)
	c.Observe("s", 0, 20)
	end := c.StartSpan("sp", NewSpanID(), 0)
	end()

	if got := c.Counter("a.b"); got != 5 {
		t.Errorf("Counter = %d, want 5", got)
	}
	if v, ok := c.GaugeValue("g"); !ok || v != 1.25 {
		t.Errorf("GaugeValue = %v,%v want 1.25,true", v, ok)
	}
	ser := c.Series("s")
	if len(ser) != 2 || ser[0].Iter != 0 || ser[1].Iter != 1 {
		t.Errorf("Series not sorted by iter: %v", ser)
	}
	snap := c.Snapshot()
	if snap.Spans["sp"].Count != 1 {
		t.Errorf("span count = %d, want 1", snap.Spans["sp"].Count)
	}
	if snap.Spans["sp"].Total < 0 {
		t.Errorf("span total negative: %v", snap.Spans["sp"].Total)
	}

	c.Reset()
	if c.Counter("a.b") != 0 || len(c.Series("s")) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	c := NewCollector()
	c.Count("n", 1)
	c.Observe("s", 0, 1)
	snap := c.Snapshot()
	c.Count("n", 10)
	c.Observe("s", 1, 2)
	if snap.Counters["n"] != 1 || len(snap.Series["s"]) != 1 {
		t.Error("snapshot aliases live collector state")
	}
}

func TestWritePromDeterministicAndSanitised(t *testing.T) {
	c := NewCollector()
	c.Count("kmeans.iterations", 7)
	c.Gauge("EM.LogLik", -12.5)
	c.Observe("kmeans.sse", 0, 100)
	c.Observe("kmeans.sse", 1, 60)
	c.StartSpan("kmeans.run", NewSpanID(), 0)()

	var a, b strings.Builder
	if err := c.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two WriteProm renders of the same state differ")
	}
	out := a.String()
	for _, want := range []string{
		"multiclust_kmeans_iterations_total 7\n",
		"multiclust_em_loglik -12.5\n",
		"multiclust_kmeans_sse_points 2\n",
		"multiclust_kmeans_sse_first 100\n",
		"multiclust_kmeans_sse_last 60\n",
		"multiclust_kmeans_run_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q in:\n%s", want, out)
		}
	}
}

func TestStripTimingsZeroesOnlySpanDurations(t *testing.T) {
	c := NewCollector()
	c.Count("n", 1)
	c.StartSpan("sp", NewSpanID(), 0)()
	s := c.Snapshot().StripTimings()
	if s.Spans["sp"].Total != 0 {
		t.Error("StripTimings left a nonzero span total")
	}
	if s.Spans["sp"].Count != 1 || s.Counters["n"] != 1 {
		t.Error("StripTimings touched deterministic fields")
	}
	if s.Tree["sp"].Total != 0 || s.Tree["sp"].Count != 1 {
		t.Error("StripTimings mishandled the span tree")
	}
}

func TestDefaultAndContextResolution(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)

	SetDefault(nil)
	if Default() != nil {
		t.Fatal("Default() not nil after SetDefault(nil)")
	}
	if From(context.Background()) != nil {
		t.Fatal("From() should be nil with no default and no ctx recorder")
	}

	def := NewCollector()
	SetDefault(def)
	if From(context.Background()) != Recorder(def) {
		t.Error("From() did not fall back to the default recorder")
	}

	ctxRec := NewCollector()
	ctx := NewContext(context.Background(), ctxRec)
	if From(ctx) != Recorder(ctxRec) {
		t.Error("context recorder must win over the default")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext without a recorder must be nil")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live recorders must be nil (disabled fast path)")
	}
	c := NewCollector()
	if Tee(nil, c) != Recorder(c) {
		t.Error("Tee of one live recorder must return it unwrapped")
	}
	c2 := NewCollector()
	m := Tee(c, c2)
	m.Count("n", 4)
	m.Gauge("g", 1)
	m.Observe("s", 0, 2)
	m.StartSpan("sp", NewSpanID(), 0)()
	for i, cc := range []*Collector{c, c2} {
		if cc.Counter("n") != 4 || len(cc.Series("s")) != 1 {
			t.Errorf("recorder %d missed teed events", i)
		}
		if cc.Snapshot().Spans["sp"].Count != 1 {
			t.Errorf("recorder %d missed teed span", i)
		}
	}
}

func TestTraceWriterEmitsJSONL(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	tw.Count("a", 2)
	tw.Gauge("g", 0.5)
	tw.Observe("s", 3, 1.5)
	tw.StartSpan("sp", 7, 3)()
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), sb.String())
	}
	wants := []string{
		`{"type":"count","name":"a","delta":2}`,
		`{"type":"gauge","name":"g","value":0.5}`,
		`{"type":"observe","name":"s","iter":3,"value":1.5}`,
		`{"type":"span","name":"sp","id":7,"parent":3,"t_us":`,
	}
	for i, w := range wants {
		if !strings.HasPrefix(lines[i], strings.TrimSuffix(w, "}")) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], w)
		}
	}
}

func TestTraceWriterNonFiniteValues(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	tw.Gauge("nan", math.NaN())
	tw.Gauge("inf", math.Inf(1))
	out := sb.String()
	if !strings.Contains(out, `"value":"NaN"`) || !strings.Contains(out, `"value":"+Inf"`) {
		t.Errorf("non-finite values not quoted:\n%s", out)
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errFail }

var errFail = errors.New("sink failed")

func TestTraceWriterRetainsFirstError(t *testing.T) {
	tw := NewTraceWriter(failWriter{})
	tw.Count("a", 1)
	tw.Count("b", 1)
	if err := tw.Err(); !errors.Is(err, errFail) {
		t.Fatalf("Err() = %v, want wrapped sink error", err)
	}
}
