package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sample is one per-iteration observation in a series.
type Sample struct {
	Iter  int
	Value float64
}

// SpanStat aggregates one named span: how many times it ran and the total
// wall-clock time spent inside it. Total is the only wall-clock-dependent
// quantity the Collector records; deterministic comparisons zero it via
// Snapshot.StripTimings.
type SpanStat struct {
	Count int64
	Total time.Duration
}

// Collector is the in-memory Recorder. All methods are safe for
// concurrent use from internal/parallel workers; the recorded state is
// scheduling-independent because counters are additive, gauges are
// last-write-wins on deterministic values, and series are sorted by
// (iter, value) at snapshot time.
type Collector struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	series   map[string][]Sample
	hists    map[string]*HistStat
	spans    map[string]SpanStat
	tree     map[string]SpanStat // keyed by slash-joined root→leaf name path
	active   map[SpanID]string   // live span id → its full path
	traceID  string              // request/job trace id, "" when untraced
}

// NewCollector returns an empty Collector ready for use.
func NewCollector() *Collector {
	return &Collector{
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		series:   map[string][]Sample{},
		hists:    map[string]*HistStat{},
		spans:    map[string]SpanStat{},
		tree:     map[string]SpanStat{},
		active:   map[SpanID]string{},
	}
}

// SetTraceID attaches a W3C trace id to everything this collector
// records: snapshots carry it, so a per-job collector's span tree stays
// correlated with the request that created the job.
func (c *Collector) SetTraceID(id string) {
	c.mu.Lock()
	c.traceID = id
	c.mu.Unlock()
}

// TraceID returns the trace id attached with SetTraceID ("" when none).
func (c *Collector) TraceID() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.traceID
}

// Count implements Recorder.
func (c *Collector) Count(name string, delta int64) {
	c.mu.Lock()
	c.counters[name] += delta
	c.mu.Unlock()
}

// Gauge implements Recorder.
func (c *Collector) Gauge(name string, v float64) {
	c.mu.Lock()
	c.gauges[name] = v
	c.mu.Unlock()
}

// Observe implements Recorder.
func (c *Collector) Observe(name string, iter int, v float64) {
	c.mu.Lock()
	c.series[name] = append(c.series[name], Sample{Iter: iter, Value: v})
	c.mu.Unlock()
}

// Histogram implements Recorder. Bucket counts and the integer-nanosecond
// sum are both additive, so the aggregate state — like the counters — is
// scheduling-independent: any interleaving of the same observations
// yields the same HistStat.
func (c *Collector) Histogram(name string, seconds float64) {
	c.mu.Lock()
	h := c.hists[name]
	if h == nil {
		h = &HistStat{}
		c.hists[name] = h
	}
	h.observe(seconds)
	c.mu.Unlock()
}

// HistValue returns a copy of the named histogram's state and whether it
// was ever observed.
func (c *Collector) HistValue(name string) (HistStat, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hists[name]
	if !ok {
		return HistStat{}, false
	}
	return *h, true
}

// StartSpan implements Recorder. The span is aggregated twice: under its
// bare name (back-compatible flat view, Snapshot.Spans) and under its
// slash-joined root→leaf path (hierarchical view, Snapshot.Tree). The
// path is resolved at open time from the live parent, so a child whose
// parent has already ended — or whose parent id is 0/unknown — roots a
// fresh subtree. Counts are additive and paths depend only on the
// open-time ancestry, so the tree is scheduling-independent for any
// worker count once Totals are stripped.
func (c *Collector) StartSpan(name string, id, parent SpanID) func() {
	c.mu.Lock()
	path := name
	if pp, ok := c.active[parent]; parent != 0 && ok {
		path = pp + "/" + name
	}
	if id != 0 {
		c.active[id] = path
	}
	c.mu.Unlock()
	start := time.Now()
	return func() {
		elapsed := time.Since(start)
		c.mu.Lock()
		if id != 0 {
			delete(c.active, id)
		}
		s := c.spans[name]
		s.Count++
		s.Total += elapsed
		c.spans[name] = s
		ts := c.tree[path]
		ts.Count++
		ts.Total += elapsed
		c.tree[path] = ts
		c.mu.Unlock()
	}
}

// Reset discards everything recorded so far (the trace id, which is
// identity rather than recorded state, survives).
func (c *Collector) Reset() {
	c.mu.Lock()
	c.counters = map[string]int64{}
	c.gauges = map[string]float64{}
	c.series = map[string][]Sample{}
	c.hists = map[string]*HistStat{}
	c.spans = map[string]SpanStat{}
	c.tree = map[string]SpanStat{}
	c.active = map[SpanID]string{}
	c.mu.Unlock()
}

// Counter returns the named counter's current value (0 when never
// touched).
func (c *Collector) Counter(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// GaugeValue returns the named gauge's current value and whether it was
// ever set.
func (c *Collector) GaugeValue(name string) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.gauges[name]
	return v, ok
}

// Series returns a copy of the named series, sorted by (iter, value) so
// concurrent producers (e.g. parallel k-means restarts) yield a
// deterministic order.
func (c *Collector) Series(name string) []Sample {
	c.mu.Lock()
	src := c.series[name]
	out := make([]Sample, len(src))
	copy(out, src)
	c.mu.Unlock()
	sortSamples(out)
	return out
}

// Snapshot is a deep, deterministic copy of a Collector's state. Spans
// holds the flat per-name aggregation; Tree holds the same spans keyed
// by their slash-joined root→leaf name path (e.g.
// "metaclust.run/metaclust.generate/kmeans.run"), reconstructing the
// call hierarchy.
type Snapshot struct {
	Counters map[string]int64
	Gauges   map[string]float64
	Series   map[string][]Sample
	Hists    map[string]HistStat
	Spans    map[string]SpanStat
	Tree     map[string]SpanStat
	// TraceID is the id attached with SetTraceID ("" when the collector
	// is not request-scoped).
	TraceID string
}

// Snapshot copies the recorded state. Series are sorted by (iter, value);
// map iteration order is irrelevant because every consumer below sorts
// keys before rendering.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		Counters: make(map[string]int64, len(c.counters)),
		Gauges:   make(map[string]float64, len(c.gauges)),
		Series:   make(map[string][]Sample, len(c.series)),
		Hists:    make(map[string]HistStat, len(c.hists)),
		Spans:    make(map[string]SpanStat, len(c.spans)),
		Tree:     make(map[string]SpanStat, len(c.tree)),
		TraceID:  c.traceID,
	}
	for k, v := range c.counters {
		snap.Counters[k] = v
	}
	for k, v := range c.gauges {
		snap.Gauges[k] = v
	}
	for k, v := range c.series {
		dup := make([]Sample, len(v))
		copy(dup, v)
		sortSamples(dup)
		snap.Series[k] = dup
	}
	for k, v := range c.hists {
		snap.Hists[k] = *v
	}
	for k, v := range c.spans {
		snap.Spans[k] = v
	}
	for k, v := range c.tree {
		snap.Tree[k] = v
	}
	return snap
}

// StripTimings returns a copy of the snapshot with every span Total
// zeroed, leaving only deterministic quantities. Two runs of the same
// seeded workload must then render byte-identically regardless of worker
// count — the property the obs_test concurrency suite pins.
func (s Snapshot) StripTimings() Snapshot {
	spans := make(map[string]SpanStat, len(s.Spans))
	for k, v := range s.Spans {
		spans[k] = SpanStat{Count: v.Count}
	}
	tree := make(map[string]SpanStat, len(s.Tree))
	for k, v := range s.Tree {
		tree[k] = SpanStat{Count: v.Count}
	}
	hists := make(map[string]HistStat, len(s.Hists))
	for k, v := range s.Hists {
		hists[k] = v.stripped()
	}
	out := s
	out.Spans = spans
	out.Tree = tree
	out.Hists = hists
	return out
}

// WriteSpanTree renders the hierarchical span aggregation as an indented
// text tree, two spaces per depth level, one `name count=N total=D` line
// per path. Paths are sorted lexicographically; '/' sorts before every
// identifier character, so a parent's whole subtree renders contiguously
// beneath it. The output is deterministic for a StripTimings snapshot.
func (s Snapshot) WriteSpanTree(w io.Writer) error {
	var b strings.Builder
	for _, path := range sortedKeys(s.Tree) {
		st := s.Tree[path]
		depth := strings.Count(path, "/")
		name := path[strings.LastIndex(path, "/")+1:]
		fmt.Fprintf(&b, "%s%s count=%d total=%s\n",
			strings.Repeat("  ", depth), name, st.Count, st.Total)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteProm renders the snapshot in the Prometheus text exposition style:
// one `name value` line per sample, names sanitised to [a-z0-9_] with a
// multiclust_ prefix, keys sorted so the dump is reproducible. Spans emit
// _count and _seconds, series emit _points plus _first/_last values, and
// histograms emit the standard cumulative _bucket{le="..."} ladder plus
// _sum and _count.
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	for _, k := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "%s_total %d\n", promName(k), s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "%s %g\n", promName(k), s.Gauges[k])
	}
	for _, k := range sortedKeys(s.Hists) {
		h := s.Hists[k]
		name := promName(k)
		var cum int64
		for i, n := range h.Counts {
			cum += n
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, histogramLabels[i], cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n", name, h.Sum())
		fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
	}
	for _, k := range sortedKeys(s.Series) {
		ser := s.Series[k]
		fmt.Fprintf(&b, "%s_points %d\n", promName(k), len(ser))
		if len(ser) > 0 {
			fmt.Fprintf(&b, "%s_first %g\n", promName(k), ser[0].Value)
			fmt.Fprintf(&b, "%s_last %g\n", promName(k), ser[len(ser)-1].Value)
		}
	}
	for _, k := range sortedKeys(s.Spans) {
		sp := s.Spans[k]
		fmt.Fprintf(&b, "%s_count %d\n", promName(k), sp.Count)
		fmt.Fprintf(&b, "%s_seconds %g\n", promName(k), sp.Total.Seconds())
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteProm renders the Collector's current state; see Snapshot.WriteProm.
func (c *Collector) WriteProm(w io.Writer) error {
	return c.Snapshot().WriteProm(w)
}

func sortSamples(s []Sample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Iter != s[j].Iter {
			return s[i].Iter < s[j].Iter
		}
		return s[i].Value < s[j].Value
	})
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// promName maps a dotted event name to a Prometheus-safe metric name:
// "kmeans.sse" -> "multiclust_kmeans_sse".
func promName(name string) string {
	var b strings.Builder
	b.WriteString("multiclust_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		case r >= 'A' && r <= 'Z':
			b.WriteRune(r - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
