package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// TraceWriter is a Recorder that streams every event to w as one JSON
// object per line (JSONL), suitable for `cmd/multiclust -trace out.jsonl`
// and offline analysis. Events are written in arrival order under a
// mutex; span events carry their instance id, parent id, start offset
// from writer creation (t_us, microseconds) and wall-clock duration
// (dur_ns), enough to reconstruct the span tree offline or convert it
// with WriteChromeTrace. The first write error is retained (and all
// later events dropped) — check Err() after the run.
type TraceWriter struct {
	mu      sync.Mutex
	w       io.Writer
	err     error
	start   time.Time
	traceID string
}

// NewTraceWriter wraps w. The caller owns buffering and closing of w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: w, start: time.Now()}
}

// SetTraceID stamps every subsequently emitted line with a
// `"trace":"<id>"` field, correlating the JSONL stream (and any Chrome
// trace converted from it) with the request that produced it. Pass ""
// to stop stamping.
func (t *TraceWriter) SetTraceID(id string) {
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// Count implements Recorder.
func (t *TraceWriter) Count(name string, delta int64) {
	t.emit(`{"type":"count","name":` + strconv.Quote(name) + `,"delta":` + strconv.FormatInt(delta, 10))
}

// Gauge implements Recorder.
func (t *TraceWriter) Gauge(name string, v float64) {
	t.emit(`{"type":"gauge","name":` + strconv.Quote(name) + `,"value":` + jsonFloat(v))
}

// Observe implements Recorder.
func (t *TraceWriter) Observe(name string, iter int, v float64) {
	t.emit(`{"type":"observe","name":` + strconv.Quote(name) +
		`,"iter":` + strconv.Itoa(iter) + `,"value":` + jsonFloat(v))
}

// Histogram implements Recorder. The raw observation is emitted (value in
// seconds); bucketing is the Collector's concern — the trace keeps full
// resolution for offline percentile analysis.
func (t *TraceWriter) Histogram(name string, seconds float64) {
	t.emit(`{"type":"hist","name":` + strconv.Quote(name) + `,"value":` + jsonFloat(seconds))
}

// StartSpan implements Recorder. The event line is emitted when the span
// ends, so a parent's line follows its children's; consumers rebuild the
// tree from the id/parent fields, not from line order.
func (t *TraceWriter) StartSpan(name string, id, parent SpanID) func() {
	spanStart := time.Now()
	return func() {
		t.emit(`{"type":"span","name":` + strconv.Quote(name) +
			`,"id":` + strconv.FormatUint(uint64(id), 10) +
			`,"parent":` + strconv.FormatUint(uint64(parent), 10) +
			`,"t_us":` + strconv.FormatInt(spanStart.Sub(t.start).Microseconds(), 10) +
			`,"dur_ns":` + strconv.FormatInt(time.Since(spanStart).Nanoseconds(), 10))
	}
}

// Err returns the first write error encountered, or nil.
func (t *TraceWriter) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// emit appends the trace-id field (when set) and the closing brace to the
// partial JSON object and writes the finished line. Callers pass the line
// up to — but excluding — the final `}`.
func (t *TraceWriter) emit(partial string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	line := partial
	if t.traceID != "" {
		line += `,"trace":` + strconv.Quote(t.traceID)
	}
	line += "}\n"
	if _, err := io.WriteString(t.w, line); err != nil {
		t.err = fmt.Errorf("obs: trace write: %w", err)
	}
}

// jsonFloat renders v as a JSON number. JSON has no NaN/Inf literals, so
// non-finite values are quoted strings ("NaN", "+Inf", "-Inf") — lossy
// for generic JSON tooling but unambiguous for humans, and far better
// than emitting invalid JSON mid-trace.
func jsonFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return `"NaN"`
	case math.IsInf(v, 1):
		return `"+Inf"`
	case math.IsInf(v, -1):
		return `"-Inf"`
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
