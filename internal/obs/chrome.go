package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// traceSpanLine is the subset of a TraceWriter JSONL line needed to
// rebuild the span tree; non-span lines and extra fields are ignored.
type traceSpanLine struct {
	Type   string `json:"type"`
	Name   string `json:"name"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent"`
	TUs    int64  `json:"t_us"`
	DurNs  int64  `json:"dur_ns"`
	Trace  string `json:"trace"`
}

// chromeEvent is one Chrome trace-event object. Ph "X" is a complete
// event: a begin timestamp (ts, microseconds) plus a duration (dur).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace converts a JSONL trace (as written by TraceWriter)
// read from r into the Chrome trace-event JSON format on w, loadable in
// chrome://tracing or Perfetto. Only span events convert — each becomes
// one complete ("X") event whose tid is the id of its root ancestor, so
// every top-level operation renders as its own track with its children
// stacked beneath it. Count/gauge/observe lines are skipped. Events are
// sorted by (start, id) so the output is independent of span end order.
func WriteChromeTrace(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var spans []traceSpanLine
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev traceSpanLine
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("obs: chrome trace: line %d: %w", lineNo, err)
		}
		if ev.Type == "span" {
			spans = append(spans, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("obs: chrome trace: %w", err)
	}
	parentOf := make(map[uint64]uint64, len(spans))
	for _, s := range spans {
		parentOf[s.ID] = s.Parent
	}
	// root walks to the top of a span's ancestry; a missing or zero
	// parent ends the walk, and the hop bound guards against id cycles
	// from a corrupted trace.
	root := func(id uint64) uint64 {
		cur := id
		for hops := 0; hops <= len(spans); hops++ {
			p, ok := parentOf[cur]
			if !ok || p == 0 {
				return cur
			}
			cur = p
		}
		return id
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].TUs != spans[j].TUs {
			return spans[i].TUs < spans[j].TUs
		}
		return spans[i].ID < spans[j].ID
	})
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		args := map[string]any{"id": s.ID, "parent": s.Parent}
		if s.Trace != "" {
			args["trace_id"] = s.Trace
		}
		events = append(events, chromeEvent{
			Name: s.Name,
			Cat:  "span",
			Ph:   "X",
			Ts:   float64(s.TUs),
			Dur:  float64(s.DurNs) / 1e3,
			Pid:  1,
			Tid:  root(s.ID),
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
	})
}
