// Package obs is multiclust's observability layer: counters, gauges,
// per-iteration observations and timed spans, recorded through a single
// Recorder interface.
//
// The design contract is zero cost when disabled. Algorithms never call
// Recorder methods directly; they go through the package-level helpers
// (Count, Gauge, Observe, Span), which compile to a nil check and return
// when no recorder is installed. The helpers take only concrete argument
// types, so the disabled path performs no interface boxing and no
// allocation — pinned by TestNilRecorderPathDoesNotAllocate and the
// obs_bench_test.go benchmarks at the repository root. The obsnil lint
// rule (internal/lint) flags any direct method call on a Recorder-typed
// value outside this package, so the guarantee cannot erode silently.
//
// Determinism: counters are additive and series entries carry their own
// iteration index, so the recorded totals are scheduling-independent even
// when hot paths run under internal/parallel with any worker count. Only
// span durations are wall-clock-dependent; the Collector's Snapshot
// exposes them separately so deterministic comparisons can zero them out.
//
// Resolution order mirrors internal/parallel's worker-count idiom: an
// explicit recorder in the context (NewContext / facade WithRecorder)
// wins, else the process-wide default (SetDefault / facade SetRecorder),
// else nil (disabled).
//
// Spans form a tree. Every span instance carries a process-unique SpanID
// and its parent's id; SpanCtx threads the current id through a
// context.Context so multi-stage algorithms (meta-clustering base runs,
// co-EM rounds, subspace lattice levels) nest their phases under the
// enclosing operation. SpanCtx also applies runtime/pprof goroutine
// labels ("algo", "phase") derived from the span name, so CPU profiles
// taken while a span is open attribute their samples to the algorithm
// phase; internal/parallel workers inherit the labels of the goroutine
// that spawned them, so fanned-out shards are attributed to the phase
// that dispatched them.
package obs

import (
	"context"
	"runtime/pprof"
	"sync/atomic"
)

// Recorder receives instrumentation events. Implementations must be safe
// for concurrent use: hot paths invoke them from internal/parallel
// workers. Call sites outside this package must use the nil-guarded
// package helpers instead of invoking these methods directly (enforced by
// the obsnil lint rule).
type Recorder interface {
	// Count adds delta to the named monotonic counter.
	Count(name string, delta int64)
	// Gauge sets the named gauge to v (last write wins).
	Gauge(name string, v float64)
	// Observe appends one (iter, v) sample to the named series, e.g. SSE
	// per k-means iteration or log-likelihood per EM iteration.
	Observe(name string, iter int, v float64)
	// Histogram folds one latency observation (in seconds) into the
	// named fixed-exponential-bucket histogram; see HistogramBounds for
	// the process-wide bucket scheme. Callers outside this package use
	// the nil-guarded Histogram helper.
	Histogram(name string, seconds float64)
	// StartSpan opens a named timed region and returns the function that
	// closes it. Implementations record count and total duration. id
	// identifies this span instance (0 when the caller does not track
	// identity) and parent is the id of the enclosing span (0 for a
	// root), letting implementations reconstruct the span tree. Callers
	// outside this package use the Span/SpanCtx helpers, which allocate
	// ids from NewSpanID.
	StartSpan(name string, id, parent SpanID) func()
}

// SpanID identifies one live span instance for parent/child attribution.
// Ids are process-unique (drawn from NewSpanID) so a Tee'd recorder set
// sees one consistent id per span; 0 means "no span" and is never
// returned by NewSpanID.
type SpanID uint64

var spanIDs atomic.Uint64

// NewSpanID returns the next process-unique span instance id (never 0).
func NewSpanID() SpanID { return SpanID(spanIDs.Add(1)) }

// noopEnd is the shared span terminator for the disabled path, so
// Span(nil, ...) never allocates a closure.
var noopEnd = func() {}

// Count adds delta to rec's named counter; no-op when rec is nil.
func Count(rec Recorder, name string, delta int64) {
	if rec != nil {
		rec.Count(name, delta)
	}
}

// Gauge sets rec's named gauge; no-op when rec is nil.
func Gauge(rec Recorder, name string, v float64) {
	if rec != nil {
		rec.Gauge(name, v)
	}
}

// Observe appends one sample to rec's named series; no-op when rec is nil.
func Observe(rec Recorder, name string, iter int, v float64) {
	if rec != nil {
		rec.Observe(name, iter, v)
	}
}

// Histogram folds one latency observation (seconds) into rec's named
// histogram; no-op when rec is nil. Like the other helpers it takes only
// concrete argument types, so the disabled path is a single pointer test
// with zero allocations.
func Histogram(rec Recorder, name string, seconds float64) {
	if rec != nil {
		rec.Histogram(name, seconds)
	}
}

// Span opens a timed root region on rec and returns its end function.
// When rec is nil it returns a shared no-op, so the disabled path
// allocates nothing. Use SpanCtx instead when the span should nest under
// an enclosing one or when pprof attribution is wanted.
func Span(rec Recorder, name string) func() {
	if rec == nil {
		return noopEnd
	}
	return rec.StartSpan(name, NewSpanID(), 0)
}

// spanKey is the context key carrying the current span's id.
type spanKey struct{}

// SpanFromContext returns the span id carried by ctx (0 when no span is
// open on this call path).
func SpanFromContext(ctx context.Context) SpanID {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(spanKey{}).(SpanID)
	return id
}

// SpanCtx opens a named span as a child of the span carried by ctx and
// returns a derived context (carrying the new span id, for deeper
// nesting) plus the end function. It also applies runtime/pprof
// goroutine labels — algo is the span name up to its last dot, phase the
// part after it — so CPU profile samples taken inside the span are
// attributable to the algorithm phase; the end function restores the
// caller's labels. Goroutines spawned inside the span (internal/parallel
// workers) inherit the labels automatically. When rec is nil it returns
// ctx unchanged and a shared no-op end — zero allocations, preserving
// the disabled-path contract.
func SpanCtx(ctx context.Context, rec Recorder, name string) (context.Context, func()) {
	if rec == nil {
		return ctx, noopEnd
	}
	if ctx == nil {
		ctx = context.Background()
	}
	id := NewSpanID()
	end := rec.StartSpan(name, id, SpanFromContext(ctx))
	algo, phase := splitSpanName(name)
	lctx := pprof.WithLabels(context.WithValue(ctx, spanKey{}, id),
		pprof.Labels("algo", algo, "phase", phase))
	pprof.SetGoroutineLabels(lctx)
	return lctx, func() {
		end()
		// Restore the labels the caller's goroutine had before the span
		// opened. Spans end on the goroutine that started them (the end
		// function is deferred in the opening frame — enforced by the
		// spanend lint rule), so this resets exactly the right goroutine.
		pprof.SetGoroutineLabels(ctx)
	}
}

// splitSpanName maps "kmeans.run" to ("kmeans", "run") and
// "subspace.grid.level" to ("subspace.grid", "level"); a name without a
// dot is both algo and phase.
func splitSpanName(name string) (algo, phase string) {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[:i], name[i+1:]
		}
	}
	return name, name
}

// holder wraps the default recorder so atomic.Value tolerates differing
// concrete types (and nil) across stores.
type holder struct{ rec Recorder }

var defaultRecorder atomic.Value // holder

// SetDefault installs rec as the process-wide recorder consulted by hot
// paths that have no context. Pass nil to disable. Safe for concurrent
// use, but the deterministic-dump guarantee assumes the recorder is not
// swapped mid-run.
func SetDefault(rec Recorder) { defaultRecorder.Store(holder{rec: rec}) }

// Default returns the process-wide recorder, or nil when none is set.
func Default() Recorder {
	if h, ok := defaultRecorder.Load().(holder); ok {
		return h.rec
	}
	return nil
}

// ctxKey is the context key for a request-scoped recorder.
type ctxKey struct{}

// NewContext returns a copy of ctx carrying rec. The facade exposes this
// as WithRecorder.
func NewContext(ctx context.Context, rec Recorder) context.Context {
	return context.WithValue(ctx, ctxKey{}, rec)
}

// FromContext returns the recorder stored in ctx, or nil.
func FromContext(ctx context.Context) Recorder {
	if ctx == nil {
		return nil
	}
	rec, _ := ctx.Value(ctxKey{}).(Recorder)
	return rec
}

// From resolves the recorder for a context-carrying entry point: the
// context's recorder if present, else the process default, else nil.
// Hot paths call this once on entry and thread the result through their
// loops.
func From(ctx context.Context) Recorder {
	if rec := FromContext(ctx); rec != nil {
		return rec
	}
	return Default()
}

// Tee fans every event out to each non-nil recorder. It returns nil when
// no recorder remains (keeping the disabled fast path), and the recorder
// itself when exactly one remains (no fan-out indirection).
func Tee(recs ...Recorder) Recorder {
	var live multiRecorder
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

type multiRecorder []Recorder

func (m multiRecorder) Count(name string, delta int64) {
	for _, r := range m {
		r.Count(name, delta)
	}
}

func (m multiRecorder) Gauge(name string, v float64) {
	for _, r := range m {
		r.Gauge(name, v)
	}
}

func (m multiRecorder) Observe(name string, iter int, v float64) {
	for _, r := range m {
		r.Observe(name, iter, v)
	}
}

func (m multiRecorder) Histogram(name string, seconds float64) {
	for _, r := range m {
		r.Histogram(name, seconds)
	}
}

func (m multiRecorder) StartSpan(name string, id, parent SpanID) func() {
	ends := make([]func(), len(m))
	for i, r := range m {
		ends[i] = r.StartSpan(name, id, parent)
	}
	return func() {
		// Close in reverse order so nesting semantics match defer.
		for i := len(ends) - 1; i >= 0; i-- {
			ends[i]()
		}
	}
}
