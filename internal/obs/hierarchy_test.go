package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime/pprof"
	"strings"
	"testing"
)

func TestSplitSpanName(t *testing.T) {
	cases := []struct{ in, algo, phase string }{
		{"kmeans.run", "kmeans", "run"},
		{"subspace.grid.level", "subspace.grid", "level"},
		{"plain", "plain", "plain"},
	}
	for _, c := range cases {
		if algo, phase := splitSpanName(c.in); algo != c.algo || phase != c.phase {
			t.Errorf("splitSpanName(%q) = %q,%q want %q,%q", c.in, algo, phase, c.algo, c.phase)
		}
	}
}

func TestSpanCtxBuildsCollectorTree(t *testing.T) {
	c := NewCollector()
	rctx, endRoot := SpanCtx(context.Background(), c, "metaclust.run")
	gctx, endGen := SpanCtx(rctx, c, "metaclust.generate")
	for i := 0; i < 3; i++ {
		_, end := SpanCtx(gctx, c, "kmeans.run")
		end()
	}
	endGen()
	_, endGroup := SpanCtx(rctx, c, "metaclust.group")
	endGroup()
	endRoot()

	snap := c.Snapshot()
	wantCounts := map[string]int64{
		"metaclust.run":                               1,
		"metaclust.run/metaclust.generate":            1,
		"metaclust.run/metaclust.generate/kmeans.run": 3,
		"metaclust.run/metaclust.group":               1,
	}
	if len(snap.Tree) != len(wantCounts) {
		t.Fatalf("tree has %d paths, want %d: %v", len(snap.Tree), len(wantCounts), snap.Tree)
	}
	for path, want := range wantCounts {
		if got := snap.Tree[path].Count; got != want {
			t.Errorf("Tree[%q].Count = %d, want %d", path, got, want)
		}
	}
	// The flat per-name view must be unchanged by hierarchy support.
	if snap.Spans["kmeans.run"].Count != 3 || snap.Spans["metaclust.run"].Count != 1 {
		t.Errorf("flat span view wrong: %v", snap.Spans)
	}
	// Every span ended, so no live-span bookkeeping may leak.
	if n := len(c.active); n != 0 {
		t.Errorf("active span map leaked %d entries", n)
	}
}

func TestSpanWithDeadOrUnknownParentRootsFreshSubtree(t *testing.T) {
	c := NewCollector()
	rctx, endRoot := SpanCtx(context.Background(), c, "root.run")
	endRoot()
	// Parent id still in ctx but the span has ended: child roots itself.
	_, end := SpanCtx(rctx, c, "late.child")
	end()
	// Explicit unknown parent id on the raw interface.
	c.StartSpan("orphan", NewSpanID(), SpanID(999999))()
	snap := c.Snapshot()
	for _, path := range []string{"root.run", "late.child", "orphan"} {
		if snap.Tree[path].Count != 1 {
			t.Errorf("Tree[%q].Count = %d, want 1 (tree: %v)", path, snap.Tree[path].Count, snap.Tree)
		}
	}
}

func TestSpanCtxNilContextAndNilRecorder(t *testing.T) {
	c := NewCollector()
	var nilCtx context.Context
	lctx, end := SpanCtx(nilCtx, c, "x")
	if lctx == nil {
		t.Fatal("SpanCtx(nil, rec, ...) returned nil ctx")
	}
	end()
	ctx := context.Background()
	sameCtx, noop := SpanCtx(ctx, nil, "x")
	if sameCtx != ctx {
		t.Error("nil recorder must return ctx unchanged")
	}
	noop()
	if SpanFromContext(nil) != 0 || SpanFromContext(ctx) != 0 {
		t.Error("SpanFromContext must be 0 with no open span")
	}
}

func TestSpanCtxAppliesPprofLabels(t *testing.T) {
	c := NewCollector()
	lctx, end := SpanCtx(context.Background(), c, "subspace.grid.level")
	defer end()
	if v, ok := pprof.Label(lctx, "algo"); !ok || v != "subspace.grid" {
		t.Errorf(`algo label = %q,%v want "subspace.grid",true`, v, ok)
	}
	if v, ok := pprof.Label(lctx, "phase"); !ok || v != "level" {
		t.Errorf(`phase label = %q,%v want "level",true`, v, ok)
	}
}

func TestWriteSpanTreeRendersIndentedDeterministically(t *testing.T) {
	c := NewCollector()
	rctx, endRoot := SpanCtx(context.Background(), c, "alpha.run")
	_, e := SpanCtx(rctx, c, "alpha.phase")
	e()
	endRoot()
	_, eb := SpanCtx(context.Background(), c, "beta.run")
	eb()
	s := c.Snapshot().StripTimings()
	var a, b bytes.Buffer
	if err := s.WriteSpanTree(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSpanTree(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two WriteSpanTree renders of the same snapshot differ")
	}
	want := "alpha.run count=1 total=0s\n" +
		"  alpha.phase count=1 total=0s\n" +
		"beta.run count=1 total=0s\n"
	if a.String() != want {
		t.Errorf("WriteSpanTree =\n%s\nwant\n%s", a.String(), want)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	var sb strings.Builder
	tw := NewTraceWriter(&sb)
	rctx, endRoot := SpanCtx(context.Background(), tw, "root.run")
	_, end := SpanCtx(rctx, tw, "child.step")
	end()
	endRoot()
	tw.Count("noise", 1) // non-span lines must be skipped

	var out bytes.Buffer
	if err := WriteChromeTrace(strings.NewReader(sb.String()), &out); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Tid  uint64            `json:"tid"`
			Args map[string]uint64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d trace events, want 2:\n%s", len(doc.TraceEvents), out.String())
	}
	var rootID uint64
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Name == "root.run" {
			rootID = ev.Args["id"]
		}
	}
	if rootID == 0 {
		t.Fatalf("root.run event missing:\n%s", out.String())
	}
	for _, ev := range doc.TraceEvents {
		if ev.Tid != rootID {
			t.Errorf("event %q tid = %d, want root id %d (shared track)", ev.Name, ev.Tid, rootID)
		}
		if ev.Name == "child.step" && ev.Args["parent"] != rootID {
			t.Errorf("child parent = %d, want %d", ev.Args["parent"], rootID)
		}
	}

	if err := WriteChromeTrace(strings.NewReader("{not json\n"), &out); err == nil {
		t.Error("invalid trace line must error")
	}
}
