package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Trace identity. A trace id is the request-scoped correlation key of the
// service layer: the ops middleware parses one from an incoming W3C
// `traceparent` header (or mints a fresh one), threads it through the
// request context, and echoes it back via the X-Trace-Id response header;
// a job created by a traced request keeps the id for its whole async
// lifetime, so the caller can later pull the job's span tree and Chrome
// trace by the id it already holds. The id is pure telemetry — it never
// influences clustering results — and follows the W3C trace-context
// shape: 32 lowercase hex characters, never all zeros.

// traceIDKey is the context key carrying the request's trace id.
type traceIDKey struct{}

// WithTraceID returns a copy of ctx carrying the trace id.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the trace id carried by ctx, or "" when the call
// path was never traced.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// traceIDFallback feeds MintTraceID when the system entropy source fails:
// a process-unique counter still yields distinct, spec-shaped ids.
var traceIDFallback atomic.Uint64

// MintTraceID returns a fresh random W3C-shaped trace id: 32 lowercase
// hex characters, never all zeros. Entropy comes from crypto/rand (ids
// must be unguessable across processes, and the deterministic-clustering
// contract does not extend to telemetry identifiers); if the entropy
// source fails, a process-unique counter keeps ids distinct.
func MintTraceID() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err == nil {
		allZero := true
		for _, v := range b {
			if v != 0 {
				allZero = false
				break
			}
		}
		if !allZero {
			return hex.EncodeToString(b[:])
		}
	}
	n := traceIDFallback.Add(1)
	for i := 0; i < 8; i++ {
		b[15-i] = byte(n >> (8 * i))
	}
	b[0] = 0xfa // marks the fallback path and guarantees non-zero
	return hex.EncodeToString(b[:])
}
