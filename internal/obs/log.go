package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Structured JSONL logging. Every line is one JSON object with a fixed
// field prefix — ts (UTC, microsecond precision), level, event — followed
// by the caller's fields in exactly the order supplied, hand-rendered so
// the byte layout is deterministic (no map iteration, no reflection).
// The clock is injectable, making log output byte-stable in tests. A nil
// *Logger is a valid no-op receiver, so call sites never guard.
//
// The two service events and their required fields (enforced by
// ValidateLogLine, exercised by `make logs-check`):
//
//	http.request  method route status bytes dur_ms trace   [job]
//	job.state     job state                               [trace] [err] [attempts]
//
// where job.state's state is one of queued, running, partial, done,
// failed, cancelled.

// LogLevel orders log severities. The zero value is LogInfo so a
// zero-configured logger is quiet about debug chatter.
type LogLevel int8

const (
	LogInfo LogLevel = iota
	LogDebug
	LogWarn
	LogError
)

// severity maps a level to its rank for min-level filtering (String
// order and filtering order differ because the zero value is LogInfo).
func (l LogLevel) severity() int {
	switch l {
	case LogDebug:
		return 0
	case LogInfo:
		return 1
	case LogWarn:
		return 2
	default:
		return 3
	}
}

// String returns the lowercase level name used on the wire.
func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "debug"
	case LogInfo:
		return "info"
	case LogWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLogLevel maps a level name (as accepted by the -log-level flag)
// to its LogLevel.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LogDebug, nil
	case "info", "":
		return LogInfo, nil
	case "warn", "warning":
		return LogWarn, nil
	case "error":
		return LogError, nil
	}
	return LogInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, warn or error)", s)
}

// LogField is one pre-rendered key/value pair. Construct with LStr, LInt,
// LFloat, LBool or LDurMS; the value is rendered at construction so the
// logger's hot path only concatenates.
type LogField struct {
	key string
	val string
}

// LStr is a string-valued log field.
func LStr(key, v string) LogField { return LogField{key: key, val: strconv.Quote(v)} }

// LInt is an integer-valued log field.
func LInt(key string, v int64) LogField { return LogField{key: key, val: strconv.FormatInt(v, 10)} }

// LFloat is a float-valued log field (shortest round-trip rendering;
// non-finite values quote like trace output).
func LFloat(key string, v float64) LogField { return LogField{key: key, val: jsonFloat(v)} }

// LBool is a boolean-valued log field.
func LBool(key string, v bool) LogField { return LogField{key: key, val: strconv.FormatBool(v)} }

// LDurMS renders a duration as fractional milliseconds with fixed
// three-decimal precision — fixed, not shortest, so column alignment and
// byte stability survive value changes (1.500 not 1.5).
func LDurMS(key string, d time.Duration) LogField {
	return LogField{key: key, val: strconv.FormatFloat(float64(d.Nanoseconds())/1e6, 'f', 3, 64)}
}

// logTimeLayout renders timestamps in UTC at microsecond precision with a
// fixed width, so lines sort lexicographically by time.
const logTimeLayout = "2006-01-02T15:04:05.000000Z"

// Logger writes leveled JSONL log lines to one writer under a mutex.
// Lines below the minimum level are dropped before rendering. The first
// write error is retained (later lines dropped) — check Err.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min LogLevel
	now func() time.Time
	err error
}

// NewLogger returns a Logger writing to w, dropping lines below min.
func NewLogger(w io.Writer, min LogLevel) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// SetClock replaces the timestamp source (tests inject a fixed clock for
// byte-stable output). The clock's result is rendered in UTC.
func (l *Logger) SetClock(now func() time.Time) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Enabled reports whether a line at the given level would be written.
// Callers building expensive field sets can gate on it; plain call sites
// just call Log and let the level filter drop the line.
func (l *Logger) Enabled(level LogLevel) bool {
	if l == nil {
		return false
	}
	return level.severity() >= l.min.severity()
}

// Log writes one line at the given level. Field order on the wire is the
// argument order. Safe on a nil receiver (no-op).
func (l *Logger) Log(level LogLevel, event string, fields ...LogField) {
	if l == nil || level.severity() < l.min.severity() {
		return
	}
	var b strings.Builder
	b.Grow(96 + 24*len(fields))
	b.WriteString(`{"ts":"`)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	b.WriteString(l.now().UTC().Format(logTimeLayout))
	b.WriteString(`","level":"`)
	b.WriteString(level.String())
	b.WriteString(`","event":`)
	b.WriteString(strconv.Quote(event))
	for _, f := range fields {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(f.key))
		b.WriteByte(':')
		b.WriteString(f.val)
	}
	b.WriteString("}\n")
	if _, err := io.WriteString(l.w, b.String()); err != nil {
		l.err = fmt.Errorf("obs: log write: %w", err)
	}
}

// Debug logs at debug level.
func (l *Logger) Debug(event string, fields ...LogField) { l.Log(LogDebug, event, fields...) }

// Info logs at info level.
func (l *Logger) Info(event string, fields ...LogField) { l.Log(LogInfo, event, fields...) }

// Warn logs at warn level.
func (l *Logger) Warn(event string, fields ...LogField) { l.Log(LogWarn, event, fields...) }

// Error logs at error level.
func (l *Logger) Error(event string, fields ...LogField) { l.Log(LogError, event, fields...) }

// Err returns the first write error encountered, or nil.
func (l *Logger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// jobStates are the legal values of a job.state line's state field —
// exactly the job lifecycle states of internal/jobs.
var jobStates = map[string]bool{
	"queued": true, "running": true, "partial": true,
	"done": true, "failed": true, "cancelled": true,
}

// ValidateLogLine checks one JSONL log line against the documented
// schema: well-formed JSON object, fixed-layout ts, known level, known
// event, and the event's required fields present with the right JSON
// types. It is the contract `make logs-check` enforces in CI.
func ValidateLogLine(line []byte) error {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(line, &m); err != nil {
		return fmt.Errorf("obs: log line is not a JSON object: %w", err)
	}
	ts, err := logStringField(m, "ts")
	if err != nil {
		return err
	}
	if _, err := time.Parse(logTimeLayout, ts); err != nil {
		return fmt.Errorf("obs: log ts %q does not match layout %s", ts, logTimeLayout)
	}
	level, err := logStringField(m, "level")
	if err != nil {
		return err
	}
	switch level {
	case "debug", "info", "warn", "error":
	default:
		return fmt.Errorf("obs: unknown log level %q", level)
	}
	event, err := logStringField(m, "event")
	if err != nil {
		return err
	}
	switch event {
	case "http.request":
		for _, k := range []string{"method", "route", "trace"} {
			if _, err := logStringField(m, k); err != nil {
				return err
			}
		}
		for _, k := range []string{"status", "bytes", "dur_ms"} {
			if err := logNumberField(m, k); err != nil {
				return err
			}
		}
	case "job.state":
		state, err := logStringField(m, "state")
		if err != nil {
			return err
		}
		if !jobStates[state] {
			return fmt.Errorf("obs: job.state line has unknown state %q", state)
		}
		if _, err := logStringField(m, "job"); err != nil {
			return err
		}
	default:
		return fmt.Errorf("obs: unknown log event %q", event)
	}
	return nil
}

func logStringField(m map[string]json.RawMessage, key string) (string, error) {
	raw, ok := m[key]
	if !ok {
		return "", fmt.Errorf("obs: log line missing required field %q", key)
	}
	var s string
	if err := json.Unmarshal(raw, &s); err != nil {
		return "", fmt.Errorf("obs: log field %q is not a string", key)
	}
	return s, nil
}

func logNumberField(m map[string]json.RawMessage, key string) error {
	raw, ok := m[key]
	if !ok {
		return fmt.Errorf("obs: log line missing required field %q", key)
	}
	var f float64
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("obs: log field %q is not a number", key)
	}
	return nil
}
