package obs

import (
	"testing"
	"time"
)

func TestSampleRuntimePopulatesGauges(t *testing.T) {
	c := NewCollector()
	SampleRuntime(c)
	if v, ok := c.GaugeValue("runtime.goroutines"); !ok || v < 1 {
		t.Fatalf("runtime.goroutines = %v (ok=%v), want >= 1", v, ok)
	}
	if v, ok := c.GaugeValue("runtime.heap_live_bytes"); !ok || v <= 0 {
		t.Fatalf("runtime.heap_live_bytes = %v (ok=%v), want > 0", v, ok)
	}
	// The histogram-shaped metrics fold to count+total pairs; they may
	// legitimately be zero early in a process's life, but must be present.
	for _, name := range []string{
		"runtime.gc_pause_count", "runtime.gc_pause_total_seconds",
		"runtime.sched_latency_count", "runtime.sched_latency_total_seconds",
	} {
		if _, ok := c.GaugeValue(name); !ok {
			t.Errorf("gauge %s not sampled", name)
		}
	}
	SampleRuntime(nil) // nil collector is a no-op, not a panic
}

// The poller samples once at start and once per injected tick — no
// sleeping, no wall clock.
func TestRuntimePollerInjectableTick(t *testing.T) {
	c := NewCollector()
	tick := make(chan time.Time)
	p := StartRuntimePollerTick(c, tick)
	if _, ok := c.GaugeValue("runtime.goroutines"); !ok {
		t.Fatal("poller did not sample at start")
	}
	// Drive a tick and wait for its sample to land: gauges are
	// last-write-wins, so watch for the value to be refreshed via a
	// sentinel reset.
	c.Gauge("runtime.goroutines", -1)
	tick <- time.Now()
	deadline := time.After(5 * time.Second)
	for {
		if v, _ := c.GaugeValue("runtime.goroutines"); v >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("tick did not trigger a sample")
		case <-time.After(time.Millisecond):
		}
	}
	p.Stop()
	p.Stop() // idempotent
	// After Stop the goroutine is joined: a tick goes nowhere and the
	// sentinel stays.
	c.Gauge("runtime.goroutines", -1)
	select {
	case tick <- time.Now():
		t.Fatal("tick accepted after Stop; poller goroutine still alive")
	default:
	}
	if v, _ := c.GaugeValue("runtime.goroutines"); v != -1 {
		t.Fatal("sample landed after Stop")
	}
}

func TestRuntimePollerRealTicker(t *testing.T) {
	c := NewCollector()
	p := StartRuntimePoller(c, time.Hour) // interval irrelevant: start sample only
	defer p.Stop()
	if _, ok := c.GaugeValue("runtime.heap_live_bytes"); !ok {
		t.Fatal("no start sample")
	}
}

func TestSummarizeRuntimeHistogramNil(t *testing.T) {
	if n, tot := summarizeRuntimeHistogram(nil); n != 0 || tot != 0 {
		t.Fatalf("nil histogram summarized to %d, %g", n, tot)
	}
}
