package obs

import (
	"math"
	"strconv"
)

// The latency histogram uses one fixed exponential bucket scheme for the
// whole process: 30 upper bounds doubling from 1µs (1e-6 s) up to
// ~537 s, plus a +Inf overflow bucket. The bounds are compile-time
// constants of the format, never derived from the data, so two
// collectors that saw the same multiset of observations render
// byte-identical Prometheus blocks regardless of arrival order or worker
// count. The span covers everything the service records: a sub-10µs
// in-process dispatch at the bottom, the 5-minute job timeout cap with
// headroom at the top.
const (
	// NumHistogramBuckets is how many finite upper bounds the scheme has;
	// every HistStat carries NumHistogramBuckets+1 counts (the last is
	// the +Inf overflow bucket).
	NumHistogramBuckets = 30
	// histogramStart is the smallest upper bound, in seconds.
	histogramStart = 1e-6
)

// histogramBounds holds the finite bucket upper bounds in seconds:
// 1e-6 * 2^i for i in [0, NumHistogramBuckets).
var histogramBounds = func() [NumHistogramBuckets]float64 {
	var b [NumHistogramBuckets]float64
	v := histogramStart
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// histogramLabels are the pre-rendered `le` label values, one per finite
// bound plus "+Inf". Rendering once at init keeps WriteProm free of
// per-call float formatting and guarantees every dump uses identical
// bytes for the same bound.
var histogramLabels = func() [NumHistogramBuckets + 1]string {
	var l [NumHistogramBuckets + 1]string
	for i, b := range histogramBounds {
		l[i] = strconv.FormatFloat(b, 'g', -1, 64)
	}
	l[NumHistogramBuckets] = "+Inf"
	return l
}()

// HistogramBounds returns a copy of the finite bucket upper bounds in
// seconds, smallest first.
func HistogramBounds() []float64 {
	out := make([]float64, NumHistogramBuckets)
	copy(out, histogramBounds[:])
	return out
}

// HistStat is the aggregated state of one latency histogram. Counts are
// per-bucket (not cumulative; WriteProm accumulates at render time), the
// last slot being the +Inf overflow. The sum is kept as an integer
// nanosecond total: each observation is rounded to whole nanoseconds
// independently, so the aggregate is a sum of int64s — commutative and
// associative — and therefore identical for any recording order or
// worker count, unlike a float64 accumulator.
type HistStat struct {
	Counts [NumHistogramBuckets + 1]int64
	Count  int64
	SumNs  int64
}

// Sum returns the observation total in seconds.
func (h HistStat) Sum() float64 { return float64(h.SumNs) / 1e9 }

// observe folds one observation (seconds) into the stat. Negative values
// clamp to zero: durations cannot be negative, and a clock hiccup must
// not corrupt the bucket walk.
func (h *HistStat) observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		seconds = 0
	}
	i := 0
	for i < NumHistogramBuckets && seconds > histogramBounds[i] {
		i++
	}
	h.Counts[i]++
	h.Count++
	h.SumNs += int64(math.Round(seconds * 1e9))
}

// stripped returns the stat with everything wall-clock-derived zeroed.
// Only the observation count survives: how many latencies were recorded
// is deterministic for a seeded workload, but which bucket each landed
// in (and their sum) is scheduling noise — the histogram analogue of
// SpanStat keeping Count while StripTimings zeroes Total.
func (h HistStat) stripped() HistStat {
	return HistStat{Count: h.Count}
}
