// The Collector's concurrency contract, exercised from the real worker
// pool. This lives in package obs_test because internal/parallel imports
// internal/obs (task/panic counters); an in-package test would create an
// import cycle.
package obs_test

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// hammer drives one deterministic seeded workload into c from `workers`
// goroutines via parallel.Each. Everything recorded is a pure function of
// the task index, so the aggregate state must not depend on scheduling.
func hammer(c *obs.Collector, workers int) {
	const tasks = 400
	parallel.Each(tasks, workers, func(i int) {
		c.Count("hammer.tasks", 1)
		c.Count("hammer.weighted", int64(i%7))
		c.Observe("hammer.series", i, float64(i*i%101))
		end := c.StartSpan("hammer.span", obs.NewSpanID(), 0)
		c.Gauge("hammer.fixed", 42)
		end()
	})
}

// TestCollectorSchedulingIndependence is the satellite concurrency test:
// hammer counters/series/spans at workers 1/2/4/8 (under -race in CI) and
// require the exported dump — timings stripped — to be byte-identical
// across worker counts.
func TestCollectorSchedulingIndependence(t *testing.T) {
	dumps := map[int]string{}
	for _, workers := range []int{1, 2, 4, 8} {
		c := obs.NewCollector()
		hammer(c, workers)

		if got := c.Counter("hammer.tasks"); got != 400 {
			t.Fatalf("workers=%d: tasks counter = %d, want 400", workers, got)
		}
		var sb strings.Builder
		if err := c.Snapshot().StripTimings().WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		dumps[workers] = sb.String()
	}
	for _, workers := range []int{2, 4, 8} {
		if dumps[workers] != dumps[1] {
			t.Errorf("workers=%d dump differs from workers=1:\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, dumps[1], workers, dumps[workers])
		}
	}
	// The dump must actually carry the recorded state, not vacuously match.
	if !strings.Contains(dumps[1], "multiclust_hammer_tasks_total 400\n") ||
		!strings.Contains(dumps[1], "multiclust_hammer_span_count 400\n") ||
		!strings.Contains(dumps[1], "multiclust_hammer_series_points 400\n") {
		t.Fatalf("dump missing expected lines:\n%s", dumps[1])
	}
}

// Concurrent mixed-method access, including snapshots taken mid-flight —
// pure -race fodder.
func TestCollectorConcurrentSnapshot(t *testing.T) {
	c := obs.NewCollector()
	parallel.Each(200, 8, func(i int) {
		c.Count("n", 1)
		c.Observe("s", i, float64(i))
		if i%10 == 0 {
			_ = c.Snapshot()
			var sb strings.Builder
			_ = c.WriteProm(&sb)
		}
		c.StartSpan(fmt.Sprintf("span.%d", i%3), obs.NewSpanID(), 0)()
	})
	if c.Counter("n") != 200 {
		t.Fatalf("n = %d, want 200", c.Counter("n"))
	}
	snap := c.Snapshot()
	var spanCount int64
	for _, k := range []string{"span.0", "span.1", "span.2"} {
		spanCount += snap.Spans[k].Count
	}
	if spanCount != 200 {
		t.Fatalf("span count = %d, want 200", spanCount)
	}
}

// The TraceWriter must also tolerate concurrent producers: lines may
// interleave in any order but each line stays intact.
func TestTraceWriterConcurrent(t *testing.T) {
	var sb syncBuilder
	tw := obs.NewTraceWriter(&sb)
	parallel.Each(100, 4, func(i int) {
		tw.Count("c", int64(i))
		tw.Observe("s", i, float64(i))
	})
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 200 {
		t.Fatalf("got %d lines, want 200", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, `{"type":`) || !strings.HasSuffix(l, "}") {
			t.Fatalf("torn trace line: %q", l)
		}
	}
}

// Concurrent span emission through the TraceWriter: lines may land in
// any order (a parent's line follows its children's), but every line
// must be intact JSON, span ids must be unique, and every child's parent
// field must resolve to the shared root — the invariants offline
// consumers (WriteChromeTrace) rebuild the tree from.
func TestTraceWriterConcurrentSpanOrdering(t *testing.T) {
	var sb syncBuilder
	tw := obs.NewTraceWriter(&sb)
	ctx, endRoot := obs.SpanCtx(context.Background(), tw, "root.run")
	parallel.Each(64, 8, func(i int) {
		_, end := obs.SpanCtx(ctx, tw, "child.work")
		end()
	})
	endRoot()
	if err := tw.Err(); err != nil {
		t.Fatal(err)
	}
	type line struct {
		Type   string `json:"type"`
		Name   string `json:"name"`
		ID     uint64 `json:"id"`
		Parent uint64 `json:"parent"`
	}
	var rootID uint64
	ids := map[uint64]bool{}
	var children []line
	for _, raw := range strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n") {
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil {
			t.Fatalf("torn or invalid trace line %q: %v", raw, err)
		}
		if l.Type != "span" {
			t.Fatalf("unexpected event type %q", l.Type)
		}
		if ids[l.ID] {
			t.Fatalf("duplicate span id %d", l.ID)
		}
		ids[l.ID] = true
		switch l.Name {
		case "root.run":
			rootID = l.ID
		case "child.work":
			children = append(children, l)
		default:
			t.Fatalf("unexpected span name %q", l.Name)
		}
	}
	if rootID == 0 {
		t.Fatal("root span line missing")
	}
	if len(children) != 64 {
		t.Fatalf("got %d child spans, want 64", len(children))
	}
	for _, c := range children {
		if c.Parent != rootID {
			t.Fatalf("child span parent = %d, want root id %d", c.Parent, rootID)
		}
	}
}

// syncBuilder is a goroutine-safe strings.Builder stand-in. TraceWriter
// serialises writes itself, but the test reads it afterwards, and -race
// is happier with explicit ownership.
type syncBuilder struct {
	sb strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) { return s.sb.Write(p) }
func (s *syncBuilder) String() string              { return s.sb.String() }
