package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime-metrics polling. A RuntimePoller samples the Go runtime's
// exported metrics on a tick and writes them into a Collector as gauges,
// so /metrics exposes process health next to the workload counters:
//
//	runtime.goroutines               live goroutine count
//	runtime.heap_live_bytes          bytes in live heap objects
//	runtime.gc_pause_count           stop-the-world pauses since start
//	runtime.gc_pause_total_seconds   total pause time (midpoint approx)
//	runtime.sched_latency_count      goroutine scheduling waits sampled
//	runtime.sched_latency_total_seconds  total scheduling wait (midpoint approx)
//
// The histogram-shaped runtime metrics (GC pauses, sched latency) are
// folded to count + approximate-total gauges: the runtime reports bucket
// counts, so the total is reconstructed from bucket midpoints — an
// approximation, clearly marked, good enough for trend dashboards.
//
// Gauge values are wall-clock/runtime state and therefore inherently
// nondeterministic; they live in the Gauges map, which deterministic
// comparisons already exclude by construction (golden dumps compare
// collectors that never had a poller attached).

// runtimeSampleNames are the runtime/metrics names the poller reads, with
// the gauge name each scalar maps to ("" for histogram-shaped metrics,
// which fan out to _count/_total_seconds pairs in SampleRuntime).
var runtimeSampleNames = []struct {
	metric string
	gauge  string
}{
	{"/sched/goroutines:goroutines", "runtime.goroutines"},
	{"/memory/classes/heap/objects:bytes", "runtime.heap_live_bytes"},
	{"/gc/pauses:seconds", "runtime.gc_pause"},
	{"/sched/latencies:seconds", "runtime.sched_latency"},
}

// supportedRuntimeSamples resolves, once, which of the wanted metrics
// this Go runtime actually exports — names vary across releases, and an
// unsupported name yields KindBad samples rather than an error.
var supportedRuntimeSamples = sync.OnceValue(func() []metrics.Sample {
	known := map[string]bool{}
	for _, d := range metrics.All() {
		known[d.Name] = true
	}
	var out []metrics.Sample
	for _, w := range runtimeSampleNames {
		if known[w.metric] {
			out = append(out, metrics.Sample{Name: w.metric})
		}
	}
	return out
})

// SampleRuntime reads the runtime metrics once and writes them into c as
// gauges. Exposed directly (not only via the poller) so tests and
// one-shot dumps can sample without a goroutine.
func SampleRuntime(c *Collector) {
	if c == nil {
		return
	}
	template := supportedRuntimeSamples()
	samples := make([]metrics.Sample, len(template))
	copy(samples, template)
	metrics.Read(samples)
	gaugeFor := map[string]string{}
	for _, w := range runtimeSampleNames {
		gaugeFor[w.metric] = w.gauge
	}
	for _, s := range samples {
		base := gaugeFor[s.Name]
		switch s.Value.Kind() {
		case metrics.KindUint64:
			c.Gauge(base, float64(s.Value.Uint64()))
		case metrics.KindFloat64:
			c.Gauge(base, s.Value.Float64())
		case metrics.KindFloat64Histogram:
			count, total := summarizeRuntimeHistogram(s.Value.Float64Histogram())
			c.Gauge(base+"_count", float64(count))
			c.Gauge(base+"_total_seconds", total)
		}
	}
}

// summarizeRuntimeHistogram folds a runtime bucket histogram into an
// event count and a midpoint-approximated value total, skipping buckets
// whose both edges are non-finite (their contribution is unknowable).
func summarizeRuntimeHistogram(h *metrics.Float64Histogram) (count uint64, total float64) {
	if h == nil {
		return 0, 0
	}
	for i, n := range h.Counts {
		count += n
		if n == 0 || i+1 >= len(h.Buckets) {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		mid := 0.0
		switch {
		case !math.IsInf(lo, 0) && !math.IsInf(hi, 0):
			mid = (lo + hi) / 2
		case !math.IsInf(lo, 0):
			mid = lo
		case !math.IsInf(hi, 0):
			mid = hi
		default:
			continue
		}
		total += mid * float64(n)
	}
	return count, total
}

// RuntimePoller periodically samples runtime metrics into a Collector.
// Stop is idempotent and joins the polling goroutine before returning.
type RuntimePoller struct {
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
	ticker   *time.Ticker // nil when the tick channel was injected
}

// StartRuntimePoller samples into c now and then every interval until
// Stop. Intervals below 100ms clamp up — runtime sampling is cheap but
// not free, and sub-100ms process gauges carry no extra signal.
func StartRuntimePoller(c *Collector, interval time.Duration) *RuntimePoller {
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	p := startRuntimePoller(c, t.C)
	p.ticker = t
	return p
}

// StartRuntimePollerTick is StartRuntimePoller with an injected tick
// channel, so tests drive sampling deterministically without sleeping.
// The caller keeps ownership of the channel.
func StartRuntimePollerTick(c *Collector, tick <-chan time.Time) *RuntimePoller {
	return startRuntimePoller(c, tick)
}

func startRuntimePoller(c *Collector, tick <-chan time.Time) *RuntimePoller {
	p := &RuntimePoller{
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	SampleRuntime(c)
	//lint:ignore nakedgo telemetry lifecycle goroutine joined by Stop via the done channel; it only samples runtime gauges and never touches algorithm state
	go func() {
		defer close(p.done)
		for {
			select {
			case <-p.stopCh:
				return
			case <-tick:
				SampleRuntime(c)
			}
		}
	}()
	return p
}

// Stop halts polling and waits for the goroutine to exit. Safe to call
// more than once.
func (p *RuntimePoller) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stopCh)
		<-p.done
		if p.ticker != nil {
			p.ticker.Stop()
		}
	})
}
