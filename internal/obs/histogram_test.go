// Histogram determinism and rendering, exercised from the real worker
// pool (package obs_test for the same import-cycle reason as race_test.go).
package obs_test

import (
	"strings"
	"testing"

	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

func TestHistogramBucketWalk(t *testing.T) {
	bounds := obs.HistogramBounds()
	if len(bounds) != obs.NumHistogramBuckets {
		t.Fatalf("got %d bounds, want %d", len(bounds), obs.NumHistogramBuckets)
	}
	if bounds[0] != 1e-6 {
		t.Fatalf("first bound = %g, want 1e-6", bounds[0])
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] != 2*bounds[i-1] {
			t.Fatalf("bound[%d] = %g, want double of %g", i, bounds[i], bounds[i-1])
		}
	}

	c := obs.NewCollector()
	c.Histogram("h", 0)      // at/below the first bound -> bucket 0
	c.Histogram("h", 1e-6)   // exactly on a bound counts into it
	c.Histogram("h", 1.5e-6) // above the first bound -> bucket 1
	c.Histogram("h", -3)     // negative clamps to zero -> bucket 0
	c.Histogram("h", 1e9)    // beyond the last bound -> +Inf bucket
	h, ok := c.HistValue("h")
	if !ok {
		t.Fatal("histogram not recorded")
	}
	if h.Count != 5 {
		t.Fatalf("count = %d, want 5", h.Count)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[obs.NumHistogramBuckets] != 1 {
		t.Fatalf("bucket counts wrong: first=%d second=%d inf=%d",
			h.Counts[0], h.Counts[1], h.Counts[obs.NumHistogramBuckets])
	}
	// Sum: 0 + 1e-6 + 1.5e-6 + 0 + 1e9, each rounded to whole nanoseconds.
	wantNs := int64(1e3) + int64(1.5e3) + int64(1e18)
	if h.SumNs != wantNs {
		t.Fatalf("sum = %d ns, want %d", h.SumNs, wantNs)
	}
}

func TestHistogramPromBlock(t *testing.T) {
	c := obs.NewCollector()
	c.Histogram("jobs.exec_seconds", 0.5e-6) // bucket 0
	c.Histogram("jobs.exec_seconds", 3e-6)   // bucket 2 (le=4e-06)
	var sb strings.Builder
	if err := c.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"multiclust_jobs_exec_seconds_bucket{le=\"1e-06\"} 1\n",
		"multiclust_jobs_exec_seconds_bucket{le=\"2e-06\"} 1\n",
		"multiclust_jobs_exec_seconds_bucket{le=\"4e-06\"} 2\n",
		"multiclust_jobs_exec_seconds_bucket{le=\"+Inf\"} 2\n",
		"multiclust_jobs_exec_seconds_sum 3.5e-06\n",
		"multiclust_jobs_exec_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the +Inf line carries the total count.
	if strings.Count(out, "multiclust_jobs_exec_seconds_bucket") != obs.NumHistogramBuckets+1 {
		t.Fatalf("want %d bucket lines, got %d",
			obs.NumHistogramBuckets+1, strings.Count(out, "multiclust_jobs_exec_seconds_bucket"))
	}
}

// hammerHist folds a deterministic per-index latency set into c from
// `workers` goroutines; every recorded value is a pure function of the
// task index, so the aggregate must not depend on scheduling.
func hammerHist(c *obs.Collector, workers int) {
	const tasks = 500
	parallel.Each(tasks, workers, func(i int) {
		c.Histogram("hist.mixed", float64(i%13)*1e-4)
		c.Histogram("hist.fine", float64(i%7)*3e-7)
	})
}

// TestHistogramSchedulingIndependence is the satellite determinism test:
// the full WriteProm histogram blocks — sum included, no stripping —
// must be byte-identical at workers 1/2/4/8 (under -race in CI), because
// bucket counts and the integer-nanosecond sum are both additive.
func TestHistogramSchedulingIndependence(t *testing.T) {
	dumps := map[int]string{}
	for _, workers := range []int{1, 2, 4, 8} {
		c := obs.NewCollector()
		hammerHist(c, workers)
		var sb strings.Builder
		if err := c.WriteProm(&sb); err != nil {
			t.Fatal(err)
		}
		dumps[workers] = sb.String()
	}
	for _, workers := range []int{2, 4, 8} {
		if dumps[workers] != dumps[1] {
			t.Errorf("workers=%d histogram dump differs from workers=1:\n--- w1 ---\n%s--- w%d ---\n%s",
				workers, dumps[1], workers, dumps[workers])
		}
	}
	if !strings.Contains(dumps[1], "multiclust_hist_mixed_count 500\n") ||
		!strings.Contains(dumps[1], "multiclust_hist_fine_count 500\n") {
		t.Fatalf("dump missing expected histogram lines:\n%s", dumps[1])
	}
}

// StripTimings must zero everything wall-clock-derived in a histogram —
// bucket placement and sum — while keeping the observation count, so
// golden dumps of instrumented runs stay stable when real durations flow
// through the histograms.
func TestHistogramStripTimings(t *testing.T) {
	c := obs.NewCollector()
	c.Histogram("h", 0.25)
	c.Histogram("h", 0.003)
	snap := c.Snapshot().StripTimings()
	h, ok := snap.Hists["h"]
	if !ok {
		t.Fatal("stripped snapshot lost the histogram")
	}
	if h.Count != 2 {
		t.Fatalf("stripped count = %d, want 2", h.Count)
	}
	if h.SumNs != 0 {
		t.Fatalf("stripped sum = %d, want 0", h.SumNs)
	}
	for i, n := range h.Counts {
		if n != 0 {
			t.Fatalf("stripped bucket %d = %d, want 0", i, n)
		}
	}
	var sb strings.Builder
	if err := snap.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "multiclust_h_sum 0\n") ||
		!strings.Contains(sb.String(), "multiclust_h_count 2\n") {
		t.Fatalf("stripped prom dump wrong:\n%s", sb.String())
	}
}

// The Tee fan-out and the TraceWriter both receive histogram events; the
// trace stream carries the raw observation.
func TestHistogramTeeAndTrace(t *testing.T) {
	c := obs.NewCollector()
	var sb syncBuilder
	tw := obs.NewTraceWriter(&sb)
	rec := obs.Tee(c, tw)
	obs.Histogram(rec, "h", 0.002)
	if h, ok := c.HistValue("h"); !ok || h.Count != 1 {
		t.Fatalf("collector side of tee missed the observation: %+v ok=%v", h, ok)
	}
	if got := sb.String(); got != "{\"type\":\"hist\",\"name\":\"h\",\"value\":0.002}\n" {
		t.Fatalf("trace line = %q", got)
	}
}

// A snapshot's trace id survives copying and Reset keeps it (identity,
// not recorded state).
func TestCollectorTraceID(t *testing.T) {
	c := obs.NewCollector()
	c.SetTraceID("0af7651916cd43dd8448eb211c80319c")
	if got := c.Snapshot().TraceID; got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("snapshot trace id = %q", got)
	}
	c.Reset()
	if got := c.TraceID(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id after Reset = %q, want preserved", got)
	}
}
