// Package parallel is the shared worker-pool layer of multiclust. Every hot
// path (pairwise distances, k-means assignment and restarts, DBSCAN region
// queries, spectral affinities, ensemble generation) funnels its fan-out
// through this package so one knob governs the whole library.
//
// Worker-count resolution, in priority order:
//
//  1. a positive per-call override (e.g. a Workers field on an algorithm
//     config),
//  2. the process-wide default installed with SetDefault (the facade's
//     multiclust.SetWorkers),
//  3. the MULTICLUST_WORKERS environment variable,
//  4. runtime.GOMAXPROCS(0).
//
// Determinism contract: the helpers here only decide WHERE work runs, never
// what it computes. Callers keep results independent of scheduling by
// pre-deriving per-task seeds and reducing in index order; every wired hot
// path in the library produces byte-identical output for any worker count.
//
// Panic containment: a panic inside a worker is captured — never allowed to
// crash the process from a pool goroutine — and re-raised on the calling
// goroutine as a *PanicError carrying the task index and worker stack. In
// Each/Map every index is still evaluated after a panic, so the re-raised
// panic is the one from the LOWEST panicking index regardless of worker
// count or scheduling. TryEach/TryMap give the same guarantee for ordinary
// errors.
//
// Profiling attribution: worker goroutines inherit the runtime/pprof
// labels of the goroutine that called For/Each/Map (the Go runtime copies
// labels to spawned goroutines), so when a caller opens an obs.SpanCtx
// span — which applies algo/phase labels — CPU samples taken inside the
// fanned-out shards are attributed to the phase that dispatched them. No
// code here touches labels; the guarantee is inheritance.
package parallel

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"multiclust/internal/obs"
)

// EnvVar is the environment variable consulted when no explicit worker count
// is set.
const EnvVar = "MULTICLUST_WORKERS"

var defaultWorkers atomic.Int64

// SetDefault installs a process-wide default worker count, taking precedence
// over the environment and GOMAXPROCS. n <= 0 clears the default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the process-wide default set by SetDefault (0 when unset).
func Default() int { return int(defaultWorkers.Load()) }

// Workers resolves the effective worker count for one call site; see the
// package comment for the priority order. The result is always >= 1.
func Workers(override int) int {
	if override > 0 {
		return override
	}
	if d := Default(); d > 0 {
		return d
	}
	if s := os.Getenv(EnvVar); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError is how a worker panic surfaces on the calling goroutine: the
// pool captures the panic, and after all tasks finish the caller re-panics
// with this wrapper carrying the task index and the worker's stack trace.
// Recover it at an API boundary (the facade's robust.RecoverTo) to turn it
// into an error.
type PanicError struct {
	Index int    // task index (block start for For) that panicked
	Value any    // original panic value
	Stack []byte // worker goroutine stack at the point of the panic
}

// Error formats the panic with its task context.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v", e.Index, e.Value)
}

// Unwrap exposes an underlying error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// panicCapture keeps the panic from the lowest task index seen so far.
type panicCapture struct {
	mu  sync.Mutex
	err *PanicError
}

func (c *panicCapture) protect(idx int, f func()) {
	defer func() {
		if r := recover(); r != nil {
			obs.Count(obs.Default(), "parallel.panics_contained", 1)
			stack := debug.Stack()
			c.mu.Lock()
			if c.err == nil || idx < c.err.Index {
				c.err = &PanicError{Index: idx, Value: r, Stack: stack}
			}
			c.mu.Unlock()
		}
	}()
	f()
}

func (c *panicCapture) rethrow() {
	if c.err != nil {
		panic(c.err)
	}
}

// For splits the index range [0, n) into at most `workers` contiguous blocks
// and runs fn(lo, hi) on each block concurrently, returning when all blocks
// are done. workers <= 0 resolves via Workers(0). Block boundaries depend
// only on n and the resolved worker count, never on scheduling. A panic in
// one block aborts that block only; once every block finishes, the panic
// from the lowest block start is re-raised on the caller as *PanicError.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	noteDispatch(n, w)
	var pc panicCapture
	if w == 1 {
		pc.protect(0, func() { fn(0, n) })
		pc.rethrow()
		return
	}
	chunk, rem := n/w, n%w
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			pc.protect(lo, func() { fn(lo, hi) })
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
	pc.rethrow()
}

// Each runs fn(i) for every i in [0, n), handing indices to workers through
// an atomic cursor. Use it instead of For when per-index cost is very uneven
// (triangular loops, cluster expansions) so fast workers steal the tail.
// Panic containment is per index: a panicking index does not stop the rest,
// every index is still evaluated, and the panic from the lowest index is
// re-raised on the caller as *PanicError — identical for any worker count.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	noteDispatch(n, w)
	var pc panicCapture
	if w == 1 {
		for i := 0; i < n; i++ {
			i := i
			pc.protect(i, func() { fn(i) })
		}
		pc.rethrow()
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				pc.protect(i, func() { fn(i) })
			}
		}()
	}
	wg.Wait()
	pc.rethrow()
}

// Map computes fn(i) for every i in [0, n) concurrently and returns the
// results in index order, so the output is independent of scheduling.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	Each(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce maps every index concurrently and folds the mapped values
// serially in index order — the fold order (and therefore any floating-point
// accumulation) is identical to a fully serial run.
func MapReduce[T, R any](n, workers int, m func(i int) T, init R, fold func(acc R, i int, v T) R) R {
	mapped := Map(n, workers, m)
	acc := init
	for i, v := range mapped {
		acc = fold(acc, i, v)
	}
	return acc
}

// TryEach runs fn(i) for every i in [0, n) concurrently and returns the
// error from the lowest failing index (nil when all succeed). Every index is
// evaluated even after a failure — no early abort — so the returned error is
// independent of worker count and scheduling. Panics are contained exactly
// as in Each.
func TryEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	Each(n, workers, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TryMap computes fn(i) for every i in [0, n) concurrently, returning the
// results in index order plus the error from the lowest failing index. On
// error the full result slice is still returned (failed slots hold whatever
// fn returned alongside its error), mirroring TryEach's evaluate-everything
// determinism.
func TryMap[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	err := TryEach(n, workers, func(i int) error {
		v, e := fn(i)
		out[i] = v
		return e
	})
	return out, err
}

// noteDispatch records one fan-out into the process-wide recorder: how
// many tasks were dispatched and how many workers served them. Both are
// additive, so the totals are identical for any scheduling; their ratio
// is the mean tasks-per-worker utilization. The single atomic load behind
// obs.Default dominates the disabled cost — one nil check per For/Each
// call, never per task.
func noteDispatch(n, w int) {
	rec := obs.Default()
	if rec == nil {
		return
	}
	obs.Count(rec, "parallel.dispatches", 1)
	obs.Count(rec, "parallel.tasks", int64(n))
	obs.Count(rec, "parallel.workers", int64(w))
}

func clampWorkers(workers, n int) int {
	w := workers
	if w <= 0 {
		w = Workers(0)
		// A resolved (defaulted) count is capped at the schedulable CPUs:
		// more pool goroutines than cores cannot run concurrently and only
		// add spawn/switch overhead — half of the CI-documented "slower at
		// workers=4" bug on small runners. An explicit per-call override is
		// honored verbatim (tests force fan-out this way to exercise the
		// concurrent paths under -race). Results are unaffected either way:
		// every wired hot path is byte-identical for any worker count (see
		// the package comment's determinism contract).
		if p := runtime.GOMAXPROCS(0); w > p {
			w = p
		}
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
