// Package parallel is the shared worker-pool layer of multiclust. Every hot
// path (pairwise distances, k-means assignment and restarts, DBSCAN region
// queries, spectral affinities, ensemble generation) funnels its fan-out
// through this package so one knob governs the whole library.
//
// Worker-count resolution, in priority order:
//
//  1. a positive per-call override (e.g. a Workers field on an algorithm
//     config),
//  2. the process-wide default installed with SetDefault (the facade's
//     multiclust.SetWorkers),
//  3. the MULTICLUST_WORKERS environment variable,
//  4. runtime.GOMAXPROCS(0).
//
// Determinism contract: the helpers here only decide WHERE work runs, never
// what it computes. Callers keep results independent of scheduling by
// pre-deriving per-task seeds and reducing in index order; every wired hot
// path in the library produces byte-identical output for any worker count.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvVar is the environment variable consulted when no explicit worker count
// is set.
const EnvVar = "MULTICLUST_WORKERS"

var defaultWorkers atomic.Int64

// SetDefault installs a process-wide default worker count, taking precedence
// over the environment and GOMAXPROCS. n <= 0 clears the default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the process-wide default set by SetDefault (0 when unset).
func Default() int { return int(defaultWorkers.Load()) }

// Workers resolves the effective worker count for one call site; see the
// package comment for the priority order. The result is always >= 1.
func Workers(override int) int {
	if override > 0 {
		return override
	}
	if d := Default(); d > 0 {
		return d
	}
	if s := os.Getenv(EnvVar); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// For splits the index range [0, n) into at most `workers` contiguous blocks
// and runs fn(lo, hi) on each block concurrently, returning when all blocks
// are done. workers <= 0 resolves via Workers(0). Block boundaries depend
// only on n and the resolved worker count, never on scheduling.
func For(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	if w == 1 {
		fn(0, n)
		return
	}
	chunk, rem := n/w, n%w
	var wg sync.WaitGroup
	lo := 0
	for i := 0; i < w; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
		lo = hi
	}
	wg.Wait()
}

// Each runs fn(i) for every i in [0, n), handing indices to workers through
// an atomic cursor. Use it instead of For when per-index cost is very uneven
// (triangular loops, cluster expansions) so fast workers steal the tail.
func Each(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := clampWorkers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map computes fn(i) for every i in [0, n) concurrently and returns the
// results in index order, so the output is independent of scheduling.
func Map[T any](n, workers int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	Each(n, workers, func(i int) { out[i] = fn(i) })
	return out
}

// MapReduce maps every index concurrently and folds the mapped values
// serially in index order — the fold order (and therefore any floating-point
// accumulation) is identical to a fully serial run.
func MapReduce[T, R any](n, workers int, m func(i int) T, init R, fold func(acc R, i int, v T) R) R {
	mapped := Map(n, workers, m)
	acc := init
	for i, v := range mapped {
		acc = fold(acc, i, v)
	}
	return acc
}

func clampWorkers(workers, n int) int {
	w := workers
	if w <= 0 {
		w = Workers(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}
