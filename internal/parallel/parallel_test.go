package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	t.Setenv(EnvVar, "")
	SetDefault(0)
	if got := Workers(3); got != 3 {
		t.Errorf("override: Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("fallback: Workers(0) = %d, want GOMAXPROCS", got)
	}

	t.Setenv(EnvVar, "5")
	if got := Workers(0); got != 5 {
		t.Errorf("env: Workers(0) = %d, want 5", got)
	}
	if got := Workers(2); got != 2 {
		t.Errorf("override beats env: Workers(2) = %d", got)
	}

	SetDefault(7)
	defer SetDefault(0)
	if got := Workers(0); got != 7 {
		t.Errorf("SetDefault beats env: Workers(0) = %d, want 7", got)
	}
	if got := Default(); got != 7 {
		t.Errorf("Default() = %d, want 7", got)
	}

	t.Setenv(EnvVar, "not-a-number")
	SetDefault(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("bad env ignored: Workers(0) = %d", got)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, w := range []int{1, 2, 3, 16} {
			hits := make([]int32, n)
			For(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad block [%d,%d) for n=%d w=%d", lo, hi, n, w)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestEachCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		for _, w := range []int{1, 4, 100} {
			hits := make([]int32, n)
			Each(n, w, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	if Map(0, 4, func(i int) int { return i }) != nil {
		t.Error("Map(0, ...) should be nil")
	}
}

func TestMapReduceDeterministicFold(t *testing.T) {
	// The fold must run in index order regardless of worker count: build a
	// string so any reordering is visible.
	for _, w := range []int{1, 3, 8} {
		s := MapReduce(6, w, func(i int) byte { return byte('a' + i) }, "",
			func(acc string, _ int, v byte) string { return acc + string(v) })
		if s != "abcdef" {
			t.Errorf("w=%d: fold order broken: %q", w, s)
		}
	}
}
