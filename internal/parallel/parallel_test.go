package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	t.Setenv(EnvVar, "")
	SetDefault(0)
	if got := Workers(3); got != 3 {
		t.Errorf("override: Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("fallback: Workers(0) = %d, want GOMAXPROCS", got)
	}

	t.Setenv(EnvVar, "5")
	if got := Workers(0); got != 5 {
		t.Errorf("env: Workers(0) = %d, want 5", got)
	}
	if got := Workers(2); got != 2 {
		t.Errorf("override beats env: Workers(2) = %d", got)
	}

	SetDefault(7)
	defer SetDefault(0)
	if got := Workers(0); got != 7 {
		t.Errorf("SetDefault beats env: Workers(0) = %d, want 7", got)
	}
	if got := Default(); got != 7 {
		t.Errorf("Default() = %d, want 7", got)
	}

	t.Setenv(EnvVar, "not-a-number")
	SetDefault(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("bad env ignored: Workers(0) = %d", got)
	}
}

func TestForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100} {
		for _, w := range []int{1, 2, 3, 16} {
			hits := make([]int32, n)
			For(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad block [%d,%d) for n=%d w=%d", lo, hi, n, w)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestEachCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64} {
		for _, w := range []int{1, 4, 100} {
			hits := make([]int32, n)
			Each(n, w, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, h)
				}
			}
		}
	}
}

func TestMapOrdered(t *testing.T) {
	got := Map(10, 4, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("Map[%d] = %d", i, v)
		}
	}
	if Map(0, 4, func(i int) int { return i }) != nil {
		t.Error("Map(0, ...) should be nil")
	}
}

func TestEachPanicContained(t *testing.T) {
	for _, w := range []int{1, 2, 4, 8} {
		var visited atomic.Int32
		func() {
			defer func() {
				r := recover()
				pe, ok := r.(*PanicError)
				if !ok {
					t.Fatalf("w=%d: recovered %T (%v), want *PanicError", w, r, r)
				}
				// Indices 3 and 11 both panic; the lowest must win for
				// every worker count.
				if pe.Index != 3 {
					t.Errorf("w=%d: panic index %d, want 3", w, pe.Index)
				}
				if fmt.Sprint(pe.Value) != "boom 3" {
					t.Errorf("w=%d: panic value %v", w, pe.Value)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("w=%d: missing worker stack", w)
				}
				if !strings.Contains(pe.Error(), "task 3") {
					t.Errorf("w=%d: Error() = %q", w, pe.Error())
				}
			}()
			Each(16, w, func(i int) {
				visited.Add(1)
				if i == 3 || i == 11 {
					panic(fmt.Sprintf("boom %d", i))
				}
			})
			t.Fatalf("w=%d: Each should have re-panicked", w)
		}()
		if visited.Load() != 16 {
			t.Errorf("w=%d: visited %d indices, want all 16 despite panics", w, visited.Load())
		}
	}
}

func TestForPanicContained(t *testing.T) {
	for _, w := range []int{1, 3} {
		func() {
			defer func() {
				pe, ok := recover().(*PanicError)
				if !ok || fmt.Sprint(pe.Value) != "block boom" {
					t.Fatalf("w=%d: unexpected recover %v", w, pe)
				}
			}()
			For(12, w, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == 5 {
						panic("block boom")
					}
				}
			})
			t.Fatalf("w=%d: For should have re-panicked", w)
		}()
	}
}

func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("inner")
	pe := &PanicError{Index: 0, Value: sentinel}
	if !errors.Is(pe, sentinel) {
		t.Error("PanicError should unwrap an error panic value")
	}
	if (&PanicError{Value: "text"}).Unwrap() != nil {
		t.Error("non-error panic value should unwrap to nil")
	}
}

func TestTryEachLowestError(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		var visited atomic.Int32
		err := TryEach(20, w, func(i int) error {
			visited.Add(1)
			if i == 7 || i == 13 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 7" {
			t.Errorf("w=%d: err = %v, want fail 7", w, err)
		}
		if visited.Load() != 20 {
			t.Errorf("w=%d: visited %d, want 20 (no early abort)", w, visited.Load())
		}
	}
	if err := TryEach(5, 2, func(int) error { return nil }); err != nil {
		t.Errorf("all-success TryEach: %v", err)
	}
	if err := TryEach(0, 2, func(int) error { return errors.New("x") }); err != nil {
		t.Errorf("empty TryEach: %v", err)
	}
}

func TestTryMap(t *testing.T) {
	out, err := TryMap(6, 3, func(i int) (int, error) {
		if i == 4 {
			return -1, errors.New("bad 4")
		}
		return i * 2, nil
	})
	if err == nil || err.Error() != "bad 4" {
		t.Fatalf("err = %v", err)
	}
	if len(out) != 6 || out[2] != 4 || out[4] != -1 {
		t.Fatalf("out = %v", out)
	}
	ok, err := TryMap(4, 2, func(i int) (int, error) { return i, nil })
	if err != nil || fmt.Sprint(ok) != "[0 1 2 3]" {
		t.Fatalf("ok = %v err = %v", ok, err)
	}
	nilOut, err := TryMap(0, 2, func(int) (int, error) { return 0, nil })
	if nilOut != nil || err != nil {
		t.Fatalf("empty TryMap = %v, %v", nilOut, err)
	}
}

func TestMapReduceDeterministicFold(t *testing.T) {
	// The fold must run in index order regardless of worker count: build a
	// string so any reordering is visible.
	for _, w := range []int{1, 3, 8} {
		s := MapReduce(6, w, func(i int) byte { return byte('a' + i) }, "",
			func(acc string, _ int, v byte) string { return acc + string(v) })
		if s != "abcdef" {
			t.Errorf("w=%d: fold order broken: %q", w, s)
		}
	}
}
