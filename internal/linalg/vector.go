package linalg

import "math"

// Dot returns the inner product of x and y. Panics on length mismatch.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm returns the Euclidean norm of x.
func Norm(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// ScaleVec multiplies x by a in place.
func ScaleVec(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// SubVec returns x - y (allocates).
func SubVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: SubVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] - y[i]
	}
	return out
}

// AddVec returns x + y (allocates).
func AddVec(x, y []float64) []float64 {
	if len(x) != len(y) {
		panic("linalg: AddVec length mismatch")
	}
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i] + y[i]
	}
	return out
}

// Normalize scales x in place to unit Euclidean norm. A zero vector is left
// unchanged. It returns the original norm.
func Normalize(x []float64) float64 {
	n := Norm(x)
	if n > 0 {
		ScaleVec(1/n, x)
	}
	return n
}

// CosineSim returns the cosine similarity of x and y, or 0 if either has
// zero norm.
func CosineSim(x, y []float64) float64 {
	nx, ny := Norm(x), Norm(y)
	if nx == 0 || ny == 0 {
		return 0
	}
	return Dot(x, y) / (nx * ny)
}

// Mean returns the element-wise mean of the given vectors (allocates).
// Panics if vecs is empty or ragged.
func Mean(vecs [][]float64) []float64 {
	if len(vecs) == 0 {
		panic("linalg: Mean of no vectors")
	}
	out := make([]float64, len(vecs[0]))
	for _, v := range vecs {
		Axpy(1, v, out)
	}
	ScaleVec(1/float64(len(vecs)), out)
	return out
}
