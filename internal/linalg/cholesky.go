package linalg

import (
	"errors"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization is
// requested for a matrix that is not (numerically) positive definite.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L*L^T.
type Cholesky struct {
	L *Matrix
}

// CholeskyDecompose factorizes the symmetric positive-definite matrix a.
func CholeskyDecompose(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrNotPositiveDefinite
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A*x = b via the factorization.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve length mismatch")
	}
	// Forward: L*y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		ri := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= ri[k] * y[k]
		}
		y[i] = s / ri[i]
	}
	// Backward: L^T*x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// LogDet returns log(det(A)) = 2 * sum(log(L_ii)).
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.L.Rows; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// QuadForm returns x^T * A^{-1} * x, the squared Mahalanobis form, using the
// triangular solve L*y = x so only one substitution pass is needed.
func (c *Cholesky) QuadForm(x []float64) float64 {
	n := c.L.Rows
	if len(x) != n {
		panic("linalg: Cholesky.QuadForm length mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := x[i]
		ri := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= ri[k] * y[k]
		}
		y[i] = s / ri[i]
	}
	return Dot(y, y)
}

// RegularizeInPlace adds eps to the diagonal of a square matrix. Used to keep
// empirical covariances positive definite.
func RegularizeInPlace(a *Matrix, eps float64) {
	for i := 0; i < a.Rows; i++ {
		a.Data[i*a.Cols+i] += eps
	}
}
