package linalg

import "errors"

// Covariance returns the d×d sample covariance matrix of the n×d data matrix
// (rows are observations), together with the column means. With fewer than
// two rows the covariance is the zero matrix.
func Covariance(x *Matrix) (*Matrix, []float64) {
	n, d := x.Rows, x.Cols
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		Axpy(1, x.Row(i), mean)
	}
	if n > 0 {
		ScaleVec(1/float64(n), mean)
	}
	cov := NewMatrix(d, d)
	if n < 2 {
		return cov, mean
	}
	centered := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		for j := 0; j < d; j++ {
			centered[j] = row[j] - mean[j]
		}
		cov.OuterInto(1, centered, centered)
	}
	for i := range cov.Data {
		cov.Data[i] /= float64(n - 1)
	}
	return cov, mean
}

// PCA holds a principal component analysis of a data matrix.
type PCA struct {
	Mean       []float64
	Components *Matrix   // d×d, column i is the i-th principal direction
	Variances  []float64 // descending eigenvalues of the covariance
}

// ComputePCA runs PCA on the n×d data matrix (rows are observations).
func ComputePCA(x *Matrix) (*PCA, error) {
	if x.Rows == 0 || x.Cols == 0 {
		return nil, errors.New("linalg: PCA of empty matrix")
	}
	cov, mean := Covariance(x)
	e, err := SymEigen(cov)
	if err != nil {
		return nil, err
	}
	return &PCA{Mean: mean, Components: e.Vectors, Variances: e.Values}, nil
}

// Project maps the n×d data matrix onto the first k principal components,
// returning an n×k matrix of scores.
func (p *PCA) Project(x *Matrix, k int) *Matrix {
	if k > x.Cols {
		k = x.Cols
	}
	out := NewMatrix(x.Rows, k)
	centered := make([]float64, x.Cols)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j := range centered {
			centered[j] = row[j] - p.Mean[j]
		}
		for c := 0; c < k; c++ {
			var s float64
			for j := 0; j < x.Cols; j++ {
				s += centered[j] * p.Components.At(j, c)
			}
			out.Set(i, c, s)
		}
	}
	return out
}

// TopComponents returns the d×k matrix whose columns are the first k
// principal directions.
func (p *PCA) TopComponents(k int) *Matrix {
	d := p.Components.Rows
	if k > d {
		k = d
	}
	out := NewMatrix(d, k)
	for i := 0; i < d; i++ {
		for j := 0; j < k; j++ {
			out.Set(i, j, p.Components.At(i, j))
		}
	}
	return out
}

// OrthogonalProjector returns the d×d matrix I - A (A^T A)^{-1} A^T that
// projects onto the orthogonal complement of the column space of a. This is
// the space transformation of Cui, Fern & Dy (2007): after projecting the
// data with it, structure captured by the columns of a (e.g. the principal
// components of the current clustering's means) is removed.
func OrthogonalProjector(a *Matrix) (*Matrix, error) {
	ata := a.T().Mul(a)
	inv, err := Inverse(ata)
	if err != nil {
		return nil, err
	}
	p := a.Mul(inv).Mul(a.T())
	return Identity(a.Rows).Sub(p), nil
}
