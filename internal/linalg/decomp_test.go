package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	x, err := Solve(a, []float64{3, 5})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	// 2x + y = 3, x + 3y = 5 -> x = 4/5, y = 7/5
	if !approxEq(x[0], 0.8, 1e-12) || !approxEq(x[1], 1.4, 1e-12) {
		t.Errorf("Solve = %v, want [0.8 1.4]", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); err == nil {
		t.Error("Solve of singular matrix should fail")
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		RegularizeInPlace(a, 2) // keep well-conditioned
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		if !matricesApproxEq(a.Mul(inv), Identity(n), 1e-8) {
			t.Fatalf("A*A^{-1} != I for n=%d", n)
		}
	}
}

func TestDetKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if !approxEq(Det(a), -2, 1e-12) {
		t.Errorf("Det = %v, want -2", Det(a))
	}
	sing, _ := FromRows([][]float64{{1, 1}, {1, 1}})
	if Det(sing) != 0 {
		t.Errorf("Det(singular) = %v, want 0", Det(sing))
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(6)
		a := randomSPD(rng, n)
		ch, err := CholeskyDecompose(a)
		if err != nil {
			t.Fatalf("Cholesky: %v", err)
		}
		if !matricesApproxEq(ch.L.Mul(ch.L.T()), a, 1e-8) {
			t.Fatalf("L L^T != A for n=%d", n)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := ch.Solve(b)
		ax := a.MulVec(x)
		for i := range b {
			if !approxEq(ax[i], b[i], 1e-8) {
				t.Fatalf("Cholesky solve residual too large at %d", i)
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := CholeskyDecompose(a); err == nil {
		t.Error("Cholesky of indefinite matrix should fail")
	}
}

func TestCholeskyLogDetMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomSPD(rng, 5)
	ch, err := CholeskyDecompose(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(ch.LogDet(), math.Log(Det(a)), 1e-8) {
		t.Errorf("LogDet = %v, want %v", ch.LogDet(), math.Log(Det(a)))
	}
}

func TestCholeskyQuadForm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomSPD(rng, 4)
	ch, _ := CholeskyDecompose(a)
	inv, _ := Inverse(a)
	x := []float64{1, -1, 2, 0.5}
	want := Dot(x, inv.MulVec(x))
	if got := ch.QuadForm(x); !approxEq(got, want, 1e-8) {
		t.Errorf("QuadForm = %v, want %v", got, want)
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(8)
		a := randomSPD(rng, n)
		e, err := SymEigen(a)
		if err != nil {
			t.Fatalf("SymEigen: %v", err)
		}
		rec := e.Vectors.Mul(Diag(e.Values)).Mul(e.Vectors.T())
		if !matricesApproxEq(rec, a, 1e-7) {
			t.Fatalf("eigendecomposition does not reconstruct A (n=%d)", n)
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if e.Values[i] > e.Values[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", e.Values)
			}
		}
		// Eigenvectors orthonormal.
		vtv := e.Vectors.T().Mul(e.Vectors)
		if !matricesApproxEq(vtv, Identity(n), 1e-7) {
			t.Fatal("eigenvectors not orthonormal")
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 2}})
	e, err := SymEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(e.Values[0], 3, 1e-10) || !approxEq(e.Values[1], 1, 1e-10) {
		t.Errorf("eigenvalues = %v, want [3 1]", e.Values)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 5}, {0, 1}})
	if _, err := SymEigen(a); err == nil {
		t.Error("SymEigen of asymmetric matrix should fail")
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	shapes := [][2]int{{4, 4}, {6, 3}, {3, 6}, {1, 5}, {5, 1}}
	for _, sh := range shapes {
		a := randomMatrix(rng, sh[0], sh[1])
		s, err := ComputeSVD(a)
		if err != nil {
			t.Fatalf("SVD(%v): %v", sh, err)
		}
		if !matricesApproxEq(s.Reconstruct(), a, 1e-8) {
			t.Fatalf("SVD does not reconstruct for shape %v", sh)
		}
		for i := 1; i < len(s.S); i++ {
			if s.S[i] > s.S[i-1]+1e-12 {
				t.Fatalf("singular values not sorted: %v", s.S)
			}
		}
		for _, v := range s.S {
			if v < 0 {
				t.Fatalf("negative singular value: %v", s.S)
			}
		}
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// Singular values of A are sqrt of eigenvalues of A^T A.
	rng := rand.New(rand.NewSource(16))
	a := randomMatrix(rng, 5, 3)
	s, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	e, err := SymEigen(a.T().Mul(a))
	if err != nil {
		t.Fatal(err)
	}
	for i := range s.S {
		if !approxEq(s.S[i]*s.S[i], e.Values[i], 1e-7) {
			t.Errorf("sv[%d]^2 = %v, eig = %v", i, s.S[i]*s.S[i], e.Values[i])
		}
	}
}

func TestInvertStretch(t *testing.T) {
	// For the worked example in the tutorial (slide 51): D = H S A with
	// inverted stretch M = H S^{-1} A. Check M * D has the same singular
	// vectors but unit-ish products of stretches: SVD(D).InvertStretch
	// applied to a diagonal matrix inverts the diagonal.
	d := Diag([]float64{4, 0.25})
	s, err := ComputeSVD(d)
	if err != nil {
		t.Fatal(err)
	}
	m := s.InvertStretch(1e-12)
	want := Diag([]float64{0.25, 4})
	if !matricesApproxEq(m, want, 1e-8) {
		t.Errorf("InvertStretch = %v, want %v", m, want)
	}
}

func TestInvSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomSPD(rng, 4)
	is, err := InvSqrt(a, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// (A^{-1/2})^2 * A should be I.
	if !matricesApproxEq(is.Mul(is).Mul(a), Identity(4), 1e-6) {
		t.Error("InvSqrt squared times A is not the identity")
	}
}

func TestSqrt(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	a := randomSPD(rng, 4)
	r, err := Sqrt(a)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesApproxEq(r.Mul(r), a, 1e-7) {
		t.Error("Sqrt squared is not A")
	}
}

// Property: solving then multiplying returns the original vector.
func TestQuickSolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if !approxEq(ax[i], b[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
