package linalg

import (
	"errors"
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * V^T for an
// m×n matrix with m >= n: U is m×n with orthonormal columns, S has length n
// with non-negative values in descending order, and V is n×n orthogonal.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// ComputeSVD computes the thin SVD of a using the one-sided Jacobi method,
// which orthogonalizes the columns of a working copy of A by plane rotations.
// For m < n the decomposition of A^T is computed and the factors swapped.
// One-sided Jacobi is slow for large matrices but very accurate, which is the
// right trade-off for the small metric/scatter matrices used in this module.
func ComputeSVD(a *Matrix) (*SVD, error) {
	if a.Rows == 0 || a.Cols == 0 {
		return nil, errors.New("linalg: SVD of empty matrix")
	}
	if a.Rows < a.Cols {
		s, err := ComputeSVD(a.T())
		if err != nil {
			return nil, err
		}
		return &SVD{U: s.V, S: s.S, V: s.U}, nil
	}
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	tol := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rotated := false
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Column inner products.
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				rotated = true
				zeta := (beta - alpha) / (2 * gamma)
				var t float64
				if zeta >= 0 {
					t = 1 / (zeta + math.Sqrt(1+zeta*zeta))
				} else {
					t = -1 / (-zeta + math.Sqrt(1+zeta*zeta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				for i := 0; i < m; i++ {
					up, uq := u.At(i, p), u.At(i, q)
					u.Set(i, p, c*up-s*uq)
					u.Set(i, q, s*up+c*uq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if !rotated {
			break
		}
	}

	// Column norms are the singular values; normalize U's columns.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += u.At(i, j) * u.At(i, j)
		}
		norm = math.Sqrt(norm)
		sv[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)/norm)
			}
		}
	}
	// Sort by descending singular value.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return sv[idx[i]] > sv[idx[j]] })
	su := NewMatrix(m, n)
	ss := make([]float64, n)
	vv := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		ss[newCol] = sv[oldCol]
		for i := 0; i < m; i++ {
			su.Set(i, newCol, u.At(i, oldCol))
		}
		for i := 0; i < n; i++ {
			vv.Set(i, newCol, v.At(i, oldCol))
		}
	}
	return &SVD{U: su, S: ss, V: vv}, nil
}

// Reconstruct returns U * diag(S) * V^T.
func (s *SVD) Reconstruct() *Matrix {
	return s.U.Mul(Diag(s.S)).Mul(s.V.T())
}

// InvertStretch returns U * diag(S)^{-1} * V^T: the same rotations with the
// stretch inverted. This is the "alternative transformation" of Davidson &
// Qi (2008): directions the learned metric stretched are compressed and vice
// versa, hiding the known clustering and revealing the orthogonal one.
// Singular values below eps are clamped to eps before inversion.
func (s *SVD) InvertStretch(eps float64) *Matrix {
	inv := make([]float64, len(s.S))
	for i, v := range s.S {
		if v < eps {
			v = eps
		}
		inv[i] = 1 / v
	}
	return s.U.Mul(Diag(inv)).Mul(s.V.T())
}
