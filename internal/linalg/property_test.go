package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: det(A*B) == det(A)*det(B).
func TestQuickDetMultiplicative(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a := randomMatrix(r, n, n)
		b := randomMatrix(r, n, n)
		da, db, dab := Det(a), Det(b), Det(a.Mul(b))
		return math.Abs(dab-da*db) <= 1e-6*(1+math.Abs(da*db))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: (A^{-1})^T == (A^T)^{-1}.
func TestQuickInverseTransposeCommute(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a := randomMatrix(r, n, n)
		RegularizeInPlace(a, 2)
		invA, err := Inverse(a)
		if err != nil {
			return false
		}
		invAT, err := Inverse(a.T())
		if err != nil {
			return false
		}
		return matricesApproxEq(invA.T(), invAT, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: eigenvalues of an SPD matrix are positive and their sum equals
// the trace.
func TestQuickEigenTrace(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		a := randomSPD(r, n)
		e, err := SymEigen(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range e.Values {
			if v <= 0 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-a.Trace()) <= 1e-7*(1+math.Abs(a.Trace()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the product of singular values equals |det| for square matrices.
func TestQuickSVDDet(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a := randomMatrix(r, n, n)
		s, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		prod := 1.0
		for _, v := range s.S {
			prod *= v
		}
		return math.Abs(prod-math.Abs(Det(a))) <= 1e-6*(1+prod)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: OrthogonalProjector output P satisfies P^2 = P and P*A = 0.
func TestQuickProjectorAnnihilates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := 2 + r.Intn(4)
		k := 1 + r.Intn(d-1)
		a := randomMatrix(r, d, k)
		p, err := OrthogonalProjector(a)
		if err != nil {
			return true // singular A^T A: acceptable rejection
		}
		if !matricesApproxEq(p.Mul(p), p, 1e-7) {
			return false
		}
		pa := p.Mul(a)
		return pa.FrobeniusNorm() <= 1e-7*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
