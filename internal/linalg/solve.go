package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix is singular (or numerically so) and
// the requested factorization or solve cannot proceed.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Matrix
	piv  []int
	sign float64
}

// Factorize computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular if a pivot is exactly zero.
func Factorize(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: Factorize requires a square matrix")
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1.0
	for k := 0; k < n; k++ {
		// Partial pivot: pick the row with the largest |value| in column k.
		p := k
		maxv := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > maxv {
				maxv, p = v, i
			}
		}
		if maxv == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b using the factorization (allocates x).
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU.Solve length mismatch")
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		for j := 0; j < i; j++ {
			x[i] -= ri[j] * x[j]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		for j := i + 1; j < n; j++ {
			x[i] -= ri[j] * x[j]
		}
		x[i] /= ri[i]
	}
	return x
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := f.sign
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve solves the linear system a*x = b.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of the square matrix a.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := Factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.Solve(e)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}

// Det returns the determinant of the square matrix a, or 0 if a is singular.
func Det(a *Matrix) float64 {
	f, err := Factorize(a)
	if err != nil {
		return 0
	}
	return f.Det()
}
