package linalg

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// Eigen holds a symmetric eigendecomposition A = V * diag(Values) * V^T with
// eigenvalues sorted in descending order and eigenvectors as the columns of
// Vectors.
type Eigen struct {
	Values  []float64
	Vectors *Matrix // column i is the eigenvector of Values[i]
}

// SymEigen computes the eigendecomposition of the symmetric matrix a using
// the cyclic Jacobi rotation method. It returns an error when a is not
// square or not symmetric. The input is not modified.
func SymEigen(a *Matrix) (*Eigen, error) {
	return SymEigenContext(context.Background(), a)
}

// SymEigenContext is SymEigen with cancellation: the Jacobi loop polls ctx
// at each sweep boundary and, when the context is done, returns the
// partially-converged decomposition wrapped in core.ErrInterrupted. With a
// background context the output is byte-identical to SymEigen.
func SymEigenContext(ctx context.Context, a *Matrix) (*Eigen, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: SymEigen requires a square matrix")
	}
	if !a.IsSymmetric(1e-8 * (1 + a.FrobeniusNorm())) {
		return nil, errors.New("linalg: SymEigen requires a symmetric matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	rec := obs.From(ctx)
	var interrupted error
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sweep-boundary cancellation: w and v always hold a consistent
		// (if not fully converged) rotation product.
		if err := ctx.Err(); err != nil {
			interrupted = err
			break
		}
		obs.Count(rec, "linalg.eigen_sweeps", 1)
		// Sum of off-diagonal magnitudes; convergence criterion.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += math.Abs(w.At(i, j))
			}
		}
		if off == 0 || off < 1e-14*(1+w.FrobeniusNorm()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle that zeroes w[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply rotation J(p,q,theta): W = J^T W J, V = V J.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = vals[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	e := &Eigen{Values: sortedVals, Vectors: sortedVecs}
	if interrupted != nil {
		return e, fmt.Errorf("linalg: eigensolve interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return e, nil
}

// InvSqrt returns A^{-1/2} for a symmetric positive-definite matrix, computed
// via the eigendecomposition: V diag(1/sqrt(lambda)) V^T. Eigenvalues below
// eps are clamped to eps so nearly-singular scatter matrices stay usable; this
// is the standard regularization for the Qi & Davidson (2009) closed-form
// alternative transform.
func InvSqrt(a *Matrix, eps float64) (*Matrix, error) {
	e, err := SymEigen(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	d := make([]float64, n)
	for i, v := range e.Values {
		if v < eps {
			v = eps
		}
		d[i] = 1 / math.Sqrt(v)
	}
	return e.Vectors.Mul(Diag(d)).Mul(e.Vectors.T()), nil
}

// Sqrt returns A^{1/2} for a symmetric positive semi-definite matrix.
// Negative eigenvalues (numerical noise) are clamped to zero.
func Sqrt(a *Matrix) (*Matrix, error) {
	e, err := SymEigen(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	d := make([]float64, n)
	for i, v := range e.Values {
		if v < 0 {
			v = 0
		}
		d[i] = math.Sqrt(v)
	}
	return e.Vectors.Mul(Diag(d)).Mul(e.Vectors.T()), nil
}
