package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm(x) != 5 {
		t.Errorf("Norm = %v, want 5", Norm(x))
	}
	if Dot(x, []float64{1, 2}) != 11 {
		t.Errorf("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v, want [7 9]", y)
	}
	d := SubVec([]float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Errorf("SubVec = %v", d)
	}
	a := AddVec([]float64{1, 2}, []float64{3, 4})
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("AddVec = %v", a)
	}
	u := []float64{0, 3}
	if n := Normalize(u); n != 3 || u[1] != 1 {
		t.Errorf("Normalize returned %v, vec %v", n, u)
	}
	z := []float64{0, 0}
	if n := Normalize(z); n != 0 || z[0] != 0 {
		t.Errorf("Normalize of zero vector changed it")
	}
	if cs := CosineSim([]float64{1, 0}, []float64{0, 1}); cs != 0 {
		t.Errorf("orthogonal cosine = %v", cs)
	}
	if cs := CosineSim([]float64{2, 0}, []float64{5, 0}); !approxEq(cs, 1, 1e-12) {
		t.Errorf("parallel cosine = %v", cs)
	}
	if cs := CosineSim([]float64{0, 0}, []float64{1, 1}); cs != 0 {
		t.Errorf("zero-vector cosine = %v", cs)
	}
	m := Mean([][]float64{{1, 2}, {3, 4}})
	if m[0] != 2 || m[1] != 3 {
		t.Errorf("Mean = %v", m)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two perfectly correlated dims.
	x, _ := FromRows([][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	cov, mean := Covariance(x)
	if !approxEq(mean[0], 1.5, 1e-12) || !approxEq(mean[1], 1.5, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	// Sample variance of {0,1,2,3} is 5/3.
	want := 5.0 / 3.0
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approxEq(cov.At(i, j), want, 1e-12) {
				t.Errorf("cov[%d][%d] = %v, want %v", i, j, cov.At(i, j), want)
			}
		}
	}
}

func TestCovarianceDegenerate(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 2}})
	cov, mean := Covariance(x)
	if mean[0] != 1 || mean[1] != 2 {
		t.Errorf("mean = %v", mean)
	}
	if cov.FrobeniusNorm() != 0 {
		t.Error("single-point covariance should be zero")
	}
}

func TestPCARecoverDominantDirection(t *testing.T) {
	// Points along the (1,1)/sqrt2 direction with small orthogonal noise.
	rng := rand.New(rand.NewSource(20))
	rows := make([][]float64, 200)
	for i := range rows {
		tt := rng.NormFloat64() * 5
		n := rng.NormFloat64() * 0.1
		rows[i] = []float64{tt + n, tt - n}
	}
	x, _ := FromRows(rows)
	p, err := ComputePCA(x)
	if err != nil {
		t.Fatal(err)
	}
	dir := p.Components.Col(0)
	// Should be ±(1,1)/sqrt2.
	want := 1 / math.Sqrt2
	if !approxEq(math.Abs(dir[0]), want, 0.02) || !approxEq(math.Abs(dir[1]), want, 0.02) {
		t.Errorf("dominant direction = %v, want ±[0.707 0.707]", dir)
	}
	if p.Variances[0] < 10*p.Variances[1] {
		t.Errorf("variance ratio too small: %v", p.Variances)
	}
	// Projection onto 1 component keeps most variance.
	proj := p.Project(x, 1)
	if proj.Rows != 200 || proj.Cols != 1 {
		t.Fatalf("projection shape %dx%d", proj.Rows, proj.Cols)
	}
}

func TestTopComponentsClamp(t *testing.T) {
	x, _ := FromRows([][]float64{{1, 2}, {2, 1}, {0, 0}})
	p, err := ComputePCA(x)
	if err != nil {
		t.Fatal(err)
	}
	c := p.TopComponents(10)
	if c.Cols != 2 {
		t.Errorf("TopComponents should clamp to d, got %d cols", c.Cols)
	}
}

func TestOrthogonalProjector(t *testing.T) {
	// Projector orthogonal to e1 in R^3 should zero the first coordinate.
	a := NewMatrix(3, 1)
	a.Set(0, 0, 1)
	p, err := OrthogonalProjector(a)
	if err != nil {
		t.Fatal(err)
	}
	v := p.MulVec([]float64{5, 2, 3})
	if !approxEq(v[0], 0, 1e-12) || !approxEq(v[1], 2, 1e-12) || !approxEq(v[2], 3, 1e-12) {
		t.Errorf("projection = %v, want [0 2 3]", v)
	}
	// Projector is idempotent.
	if !matricesApproxEq(p.Mul(p), p, 1e-10) {
		t.Error("projector not idempotent")
	}
}

func TestOrthogonalProjectorGeneralSubspace(t *testing.T) {
	// Subspace spanned by (1,1)/sqrt2 in R^2: the residual of any vector
	// must be orthogonal to the subspace.
	a := NewMatrix(2, 1)
	a.Set(0, 0, 1)
	a.Set(1, 0, 1)
	p, err := OrthogonalProjector(a)
	if err != nil {
		t.Fatal(err)
	}
	v := p.MulVec([]float64{3, 1})
	if !approxEq(v[0]+v[1], 0, 1e-12) {
		t.Errorf("residual %v not orthogonal to span{(1,1)}", v)
	}
}
