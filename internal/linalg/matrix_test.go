package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matricesApproxEq(a, b *Matrix, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.Data {
		if !approxEq(a.Data[i], b.Data[i], tol) {
			return false
		}
	}
	return true
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	a := randomMatrix(rng, n, n)
	spd := a.Mul(a.T())
	RegularizeInPlace(spd, 0.5)
	return spd
}

func TestFromRowsAndAccess(t *testing.T) {
	m, err := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set did not stick")
	}
	col := m.Col(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Col(1) = %v, want [2 5]", col)
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) should fail")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows with ragged rows should fail")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 4)
	if !matricesApproxEq(a.Mul(Identity(4)), a, 1e-12) {
		t.Error("A*I != A")
	}
	if !matricesApproxEq(Identity(4).Mul(a), a, 1e-12) {
		t.Error("I*A != A")
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if got := a.Mul(b); !matricesApproxEq(got, want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 3, 5)
	if !matricesApproxEq(a.T().T(), a, 0) {
		t.Error("(A^T)^T != A")
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 4, 3)
	x := []float64{1, -2, 0.5}
	xm := NewMatrix(3, 1)
	copy(xm.Data, x)
	got := a.MulVec(x)
	want := a.Mul(xm)
	for i := range got {
		if !approxEq(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d] = %v, want %v", i, got[i], want.At(i, 0))
		}
	}
}

func TestOuterInto(t *testing.T) {
	m := NewMatrix(2, 3)
	m.OuterInto(2, []float64{1, 2}, []float64{3, 4, 5})
	want, _ := FromRows([][]float64{{6, 8, 10}, {12, 16, 20}})
	if !matricesApproxEq(m, want, 1e-12) {
		t.Errorf("OuterInto = %v, want %v", m, want)
	}
}

func TestTraceAndNorm(t *testing.T) {
	a, _ := FromRows([][]float64{{3, 0}, {0, 4}})
	if a.Trace() != 7 {
		t.Errorf("Trace = %v, want 7", a.Trace())
	}
	if !approxEq(a.FrobeniusNorm(), 5, 1e-12) {
		t.Errorf("FrobeniusNorm = %v, want 5", a.FrobeniusNorm())
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum := a.Add(b)
	want, _ := FromRows([][]float64{{5, 5}, {5, 5}})
	if !matricesApproxEq(sum, want, 0) {
		t.Errorf("Add = %v", sum)
	}
	if !matricesApproxEq(sum.Sub(b), a, 0) {
		t.Error("Add then Sub is not identity")
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Errorf("Scale(2)[1,1] = %v, want 8", got)
	}
}

// Property: matrix multiplication distributes over addition.
func TestQuickMulDistributes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 4)
		b := randomMatrix(r, 4, 2)
		c := randomMatrix(r, 4, 2)
		left := a.Mul(b.Add(c))
		right := a.Mul(b).Add(a.Mul(c))
		return matricesApproxEq(left, right, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: (A*B)^T == B^T * A^T.
func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomMatrix(r, 3, 5)
		b := randomMatrix(r, 5, 2)
		return matricesApproxEq(a.Mul(b).T(), b.T().Mul(a.T()), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsSymmetric(t *testing.T) {
	s, _ := FromRows([][]float64{{1, 2}, {2, 3}})
	if !s.IsSymmetric(1e-12) {
		t.Error("symmetric matrix not recognized")
	}
	a, _ := FromRows([][]float64{{1, 2}, {0, 3}})
	if a.IsSymmetric(1e-12) {
		t.Error("asymmetric matrix misclassified")
	}
	r := NewMatrix(2, 3)
	if r.IsSymmetric(1e-12) {
		t.Error("non-square matrix cannot be symmetric")
	}
}

func TestDiag(t *testing.T) {
	d := Diag([]float64{1, 2, 3})
	if d.At(1, 1) != 2 || d.At(0, 1) != 0 {
		t.Errorf("Diag wrong: %v", d)
	}
}
