// Package linalg provides the dense linear algebra needed by the clustering
// algorithms in this module: matrix arithmetic, Gaussian-elimination solves,
// Cholesky factorization, a cyclic-Jacobi symmetric eigendecomposition, a
// one-sided Jacobi SVD, and PCA helpers.
//
// All matrices are small (dimensions on the order of the data dimensionality,
// d <= a few hundred), so the implementations favour numerical robustness and
// clarity over asymptotic tricks. Everything is pure Go and allocation-honest:
// methods that can reuse a destination take one, and the rest document that
// they allocate.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-filled r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return nil, errors.New("linalg: FromRows requires at least one row")
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", c, i, len(row))
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d []float64) *Matrix {
	n := len(d)
	m := NewMatrix(n, n)
	for i, v := range d {
		m.Data[i*n+i] = v
	}
	return m
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m (allocates).
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return out
}

// Add returns m + b (allocates). Panics on shape mismatch.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] += v
	}
	return out
}

// Sub returns m - b (allocates). Panics on shape mismatch.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := m.Clone()
	for i, v := range b.Data {
		out.Data[i] -= v
	}
	return out
}

// Scale returns s*m (allocates).
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// Mul returns the matrix product m*b (allocates). Panics on shape mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Row(i)
		orow := out.Row(i)
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x (allocates).
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out
}

// OuterInto adds s * x*y^T into m in place. Used to accumulate covariance
// and scatter matrices without intermediate allocations.
func (m *Matrix) OuterInto(s float64, x, y []float64) {
	if m.Rows != len(x) || m.Cols != len(y) {
		panic("linalg: OuterInto shape mismatch")
	}
	for i, xv := range x {
		row := m.Row(i)
		sx := s * xv
		for j, yv := range y {
			row[j] += sx * yv
		}
	}
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.Rows != m.Cols {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.Data[i*m.Cols+i]
	}
	return t
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// IsSymmetric reports whether m is symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		fmt.Fprintf(&b, "%v\n", m.Row(i))
	}
	return b.String()
}

func (m *Matrix) mustSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
