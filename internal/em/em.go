// Package em implements expectation–maximization for Gaussian mixture models
// with diagonal covariances. It is the generative base for CAMI (Dang &
// Bailey 2010a), co-EM (Bickel & Scheffer 2004), and the random-projection
// consensus ensemble (Fern & Brodley 2003).
package em

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/kmeans"
	"multiclust/internal/obs"
	"multiclust/internal/stats"
)

// Model is a k-component diagonal-covariance Gaussian mixture.
type Model struct {
	Pi    []float64   // component weights, sum to 1
	Means [][]float64 // k × d
	Vars  [][]float64 // k × d diagonal variances
}

// Config controls an EM fit.
type Config struct {
	K       int
	MaxIter int     // default 200
	Tol     float64 // default 1e-6 relative log-likelihood change
	Seed    int64
	MinVar  float64 // variance floor, default 1e-6
}

// Result of an EM fit.
type Result struct {
	Model      *Model
	Posterior  [][]float64 // n × k responsibilities
	LogLik     float64
	Iterations int
	Clustering *core.Clustering // hard assignment by max posterior
}

func (cfg *Config) defaults() {
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}
	if cfg.MinVar <= 0 {
		cfg.MinVar = 1e-6
	}
}

// Fit runs EM from a k-means initialization.
func Fit(points [][]float64, cfg Config) (*Result, error) {
	return FitContext(context.Background(), points, cfg)
}

// FitContext is Fit with cancellation: the EM loop polls ctx after every
// E+M iteration and, when the context is done, returns the current (valid)
// model and posteriors wrapped in core.ErrInterrupted. With a background
// context the output is byte-identical to Fit.
func FitContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("em: invalid K=%d for n=%d: %w", cfg.K, n, core.ErrInvalidInput)
	}
	cfg.defaults()
	m := initFromKMeans(points, cfg)
	return FitFromContext(ctx, points, m, cfg)
}

// FitFrom runs EM from an explicit starting model; co-EM uses this to hand
// one view's parameters to the other view.
func FitFrom(points [][]float64, m *Model, cfg Config) (*Result, error) {
	return FitFromContext(context.Background(), points, m, cfg)
}

// FitFromContext is FitFrom with iteration-boundary cancellation; see
// FitContext.
func FitFromContext(ctx context.Context, points [][]float64, m *Model, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	cfg.defaults()
	k := len(m.Pi)
	post := make([][]float64, n)
	for i := range post {
		post[i] = make([]float64, k)
	}
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "em.fit")
	defer endSpan()
	prev := math.Inf(-1)
	var ll float64
	var interrupted error
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		ll = EStep(points, m, post, cfg.MinVar)
		MStep(points, post, m, cfg.MinVar)
		if rec != nil {
			obs.Count(rec, "em.iterations", 1)
			obs.Observe(rec, "em.loglik", iter, ll)
		}
		if math.Abs(ll-prev) <= cfg.Tol*(1+math.Abs(ll)) {
			break
		}
		prev = ll
		// Iteration-boundary cancellation: post was filled by the E-step, so
		// the partial result below is structurally valid.
		if err := ctx.Err(); err != nil {
			interrupted = err
			iter++
			break
		}
	}
	res := &Result{
		Model:      m,
		Posterior:  post,
		LogLik:     ll,
		Iterations: iter,
		Clustering: Harden(post),
	}
	if interrupted != nil {
		return res, fmt.Errorf("em: interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return res, nil
}

// EStep fills post with responsibilities and returns the log-likelihood.
func EStep(points [][]float64, m *Model, post [][]float64, minVar float64) float64 {
	k := len(m.Pi)
	var ll float64
	logp := make([]float64, k)
	for i, x := range points {
		for c := 0; c < k; c++ {
			lw := math.Inf(-1)
			if m.Pi[c] > 0 {
				lw = math.Log(m.Pi[c])
			}
			logp[c] = lw + stats.DiagGaussianLogPDF(x, m.Means[c], m.Vars[c], minVar)
		}
		lse := stats.LogSumExp(logp)
		ll += lse
		for c := 0; c < k; c++ {
			post[i][c] = math.Exp(logp[c] - lse)
		}
	}
	return ll
}

// MStep re-estimates the model from responsibilities.
func MStep(points [][]float64, post [][]float64, m *Model, minVar float64) {
	n := len(points)
	k := len(m.Pi)
	d := len(points[0])
	for c := 0; c < k; c++ {
		var nc float64
		mean := make([]float64, d)
		for i, x := range points {
			r := post[i][c]
			nc += r
			for j, v := range x {
				mean[j] += r * v
			}
		}
		if nc < 1e-12 {
			// Dead component: keep previous parameters, shrink weight.
			m.Pi[c] = 1e-12
			continue
		}
		for j := range mean {
			mean[j] /= nc
		}
		vars := make([]float64, d)
		for i, x := range points {
			r := post[i][c]
			for j, v := range x {
				diff := v - mean[j]
				vars[j] += r * diff * diff
			}
		}
		for j := range vars {
			vars[j] /= nc
			if vars[j] < minVar {
				vars[j] = minVar
			}
		}
		m.Pi[c] = nc / float64(n)
		m.Means[c] = mean
		m.Vars[c] = vars
	}
	// Renormalize weights (dead components may have broken the sum).
	var s float64
	for _, w := range m.Pi {
		s += w
	}
	for c := range m.Pi {
		m.Pi[c] /= s
	}
}

// Harden converts responsibilities to a hard clustering by max posterior.
func Harden(post [][]float64) *core.Clustering {
	labels := make([]int, len(post))
	for i, row := range post {
		best, bestV := 0, math.Inf(-1)
		for c, v := range row {
			if v > bestV {
				best, bestV = c, v
			}
		}
		labels[i] = best
	}
	return core.NewClustering(labels)
}

// LogLikelihood evaluates the model's total log-likelihood on points.
func LogLikelihood(points [][]float64, m *Model, minVar float64) float64 {
	if minVar <= 0 {
		minVar = 1e-6
	}
	k := len(m.Pi)
	logp := make([]float64, k)
	var ll float64
	for _, x := range points {
		for c := 0; c < k; c++ {
			lw := math.Inf(-1)
			if m.Pi[c] > 0 {
				lw = math.Log(m.Pi[c])
			}
			logp[c] = lw + stats.DiagGaussianLogPDF(x, m.Means[c], m.Vars[c], minVar)
		}
		ll += stats.LogSumExp(logp)
	}
	return ll
}

// BIC returns the Bayesian information criterion (lower is better):
// -2 ln L + params * ln n, with params = k-1 + k*d (means) + k*d (vars).
func BIC(points [][]float64, m *Model, ll float64) float64 {
	n := float64(len(points))
	k := float64(len(m.Pi))
	d := float64(len(m.Means[0]))
	params := (k - 1) + 2*k*d
	return -2*ll + params*math.Log(n)
}

func initFromKMeans(points [][]float64, cfg Config) *Model {
	res, err := kmeans.Run(points, kmeans.Config{K: cfg.K, Seed: cfg.Seed, Restarts: 3})
	if err != nil {
		// K was validated by the caller; fall back to random init.
		return RandomModel(points, cfg.K, cfg.Seed)
	}
	d := len(points[0])
	m := &Model{
		Pi:    make([]float64, cfg.K),
		Means: res.Centers,
		Vars:  make([][]float64, cfg.K),
	}
	counts := make([]float64, cfg.K)
	for i, x := range points {
		c := res.Clustering.Labels[i]
		counts[c]++
		if m.Vars[c] == nil {
			m.Vars[c] = make([]float64, d)
		}
		for j, v := range x {
			diff := v - res.Centers[c][j]
			m.Vars[c][j] += diff * diff
		}
	}
	for c := 0; c < cfg.K; c++ {
		if m.Vars[c] == nil {
			m.Vars[c] = make([]float64, d)
		}
		for j := range m.Vars[c] {
			if counts[c] > 0 {
				m.Vars[c][j] /= counts[c]
			}
			if m.Vars[c][j] < cfg.MinVar {
				m.Vars[c][j] = cfg.MinVar
			}
		}
		m.Pi[c] = (counts[c] + 1) / (float64(len(points)) + float64(cfg.K))
	}
	return m
}

// RandomModel builds a mixture with means sampled from the data and unit
// variances — a crude but always-valid initialization.
func RandomModel(points [][]float64, k int, seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	d := len(points[0])
	m := &Model{Pi: make([]float64, k), Means: make([][]float64, k), Vars: make([][]float64, k)}
	for c := 0; c < k; c++ {
		m.Pi[c] = 1 / float64(k)
		m.Means[c] = append([]float64(nil), points[rng.Intn(len(points))]...)
		vars := make([]float64, d)
		for j := range vars {
			vars[j] = 1
		}
		m.Vars[c] = vars
	}
	return m
}

// Clone deep-copies a model.
func (m *Model) Clone() *Model {
	out := &Model{Pi: append([]float64(nil), m.Pi...)}
	out.Means = make([][]float64, len(m.Means))
	out.Vars = make([][]float64, len(m.Vars))
	for i := range m.Means {
		out.Means[i] = append([]float64(nil), m.Means[i]...)
		out.Vars[i] = append([]float64(nil), m.Vars[i]...)
	}
	return out
}

// Validate checks structural consistency of the model.
func (m *Model) Validate() error {
	k := len(m.Pi)
	if k == 0 || len(m.Means) != k || len(m.Vars) != k {
		return errors.New("em: inconsistent model shapes")
	}
	return nil
}
