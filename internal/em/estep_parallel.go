package em

import (
	"math"

	"multiclust/internal/parallel"
	"multiclust/internal/stats"
)

// EStepParallel is EStep with the row loop fanned out over
// internal/parallel. Every row's responsibilities and log-likelihood term
// are computed independently into that row's own slots, and the total
// log-likelihood is reduced in index order afterwards — the identical
// floating-point additions EStep performs — so the result is byte-identical
// to EStep for any worker count. The streaming co-EM path uses it to keep
// per-chunk E-steps parallel without forking the snapshot bytes.
func EStepParallel(points [][]float64, m *Model, post [][]float64, minVar float64, workers int) float64 {
	k := len(m.Pi)
	n := len(points)
	rowLL := make([]float64, n)
	parallel.For(n, workers, func(lo, hi int) {
		logp := make([]float64, k)
		for i := lo; i < hi; i++ {
			x := points[i]
			for c := 0; c < k; c++ {
				lw := math.Inf(-1)
				if m.Pi[c] > 0 {
					lw = math.Log(m.Pi[c])
				}
				logp[c] = lw + stats.DiagGaussianLogPDF(x, m.Means[c], m.Vars[c], minVar)
			}
			lse := stats.LogSumExp(logp)
			rowLL[i] = lse
			for c := 0; c < k; c++ {
				post[i][c] = math.Exp(logp[c] - lse)
			}
		}
	})
	var ll float64
	for _, v := range rowLL {
		ll += v
	}
	return ll
}
