package em

// SuffStats holds the additive sufficient statistics of a diagonal Gaussian
// mixture: per-component responsibility mass, responsibility-weighted
// coordinate sums, and responsibility-weighted squared-coordinate sums. They
// are the mergeable core of the streaming EM path (internal/stream's online
// co-EM): statistics of two row batches add, and exponential forgetting is a
// single Scale call, so an online M-step is Scale + Add + ModelInto.
//
// The closed-form moments (var = E[x²] − mean²) differ in floating point
// from the batch MStep's two-pass variance, so SuffStats is deliberately NOT
// used by MStep — the batch trajectory stays byte-identical to the historic
// implementation, and the streaming trajectory is documented as its own
// deterministic sequence.
type SuffStats struct {
	W  []float64   // per-component responsibility mass   Σ_i r_ic
	X  [][]float64 // per-component weighted sums          Σ_i r_ic·x_i
	XX [][]float64 // per-component weighted squared sums  Σ_i r_ic·x_i²
	N  float64     // total (possibly decayed) row mass
}

// NewSuffStats allocates zeroed statistics for k components in d dimensions.
func NewSuffStats(k, d int) *SuffStats {
	s := &SuffStats{
		W:  make([]float64, k),
		X:  make([][]float64, k),
		XX: make([][]float64, k),
	}
	for c := 0; c < k; c++ {
		s.X[c] = make([]float64, d)
		s.XX[c] = make([]float64, d)
	}
	return s
}

// Scale multiplies every statistic by lambda — exponential forgetting with
// factor lambda in (0, 1]. Scale(1) is the identity; the call is a pure
// function of the receiver and lambda, never of wall-clock time.
func (s *SuffStats) Scale(lambda float64) {
	s.N *= lambda
	for c := range s.W {
		s.W[c] *= lambda
		for j := range s.X[c] {
			s.X[c][j] *= lambda
			s.XX[c][j] *= lambda
		}
	}
}

// Add accumulates one batch of rows with their responsibilities, in row
// order — the accumulation order is part of the determinism contract, so
// the same (rows, post) pair always produces bit-identical statistics.
func (s *SuffStats) Add(points [][]float64, post [][]float64) {
	for i, x := range points {
		r := post[i]
		s.N++
		for c := range s.W {
			rc := r[c]
			s.W[c] += rc
			xc, xxc := s.X[c], s.XX[c]
			for j, v := range x {
				xc[j] += rc * v
				xxc[j] += rc * v * v
			}
		}
	}
}

// ModelInto re-estimates m from the accumulated statistics: the streaming
// M-step. Components whose mass has decayed away (below 1e-12) keep their
// previous parameters at weight 1e-12, mirroring the batch MStep's
// dead-component rule; variances are floored at minVar. Mixture weights are
// renormalized at the end exactly as MStep does.
func (s *SuffStats) ModelInto(m *Model, minVar float64) {
	for c := range s.W {
		nc := s.W[c]
		if nc < 1e-12 {
			m.Pi[c] = 1e-12
			continue
		}
		d := len(s.X[c])
		mean := make([]float64, d)
		vars := make([]float64, d)
		for j := 0; j < d; j++ {
			mean[j] = s.X[c][j] / nc
			v := s.XX[c][j]/nc - mean[j]*mean[j]
			if v < minVar {
				v = minVar
			}
			vars[j] = v
		}
		m.Pi[c] = nc / s.N
		m.Means[c] = mean
		m.Vars[c] = vars
	}
	var sum float64
	for _, w := range m.Pi {
		sum += w
	}
	for c := range m.Pi {
		m.Pi[c] /= sum
	}
}

// Clone deep-copies the statistics.
func (s *SuffStats) Clone() *SuffStats {
	out := NewSuffStats(len(s.W), len(s.X[0]))
	out.N = s.N
	copy(out.W, s.W)
	for c := range s.X {
		copy(out.X[c], s.X[c])
		copy(out.XX[c], s.XX[c])
	}
	return out
}
