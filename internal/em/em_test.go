package em

import (
	"math"
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestFitSeparatesBlobs(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(1, 200, [][]float64{{0, 0}, {8, 8}}, 0.7)
	res, err := Fit(ds.Points, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(truth, res.Clustering.Labels); ari < 0.95 {
		t.Errorf("ARI = %v", ari)
	}
	// Posteriors are proper distributions.
	for i, row := range res.Posterior {
		var s float64
		for _, v := range row {
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("posterior out of range at %d: %v", i, row)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("posterior row %d sums to %v", i, s)
		}
	}
	// Weights sum to 1 and are roughly balanced.
	var ws float64
	for _, w := range res.Model.Pi {
		ws += w
	}
	if math.Abs(ws-1) > 1e-9 {
		t.Errorf("weights sum to %v", ws)
	}
	if res.Model.Pi[0] < 0.3 || res.Model.Pi[0] > 0.7 {
		t.Errorf("weights = %v, want about 0.5 each", res.Model.Pi)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Fit([][]float64{{0}}, Config{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Fit([][]float64{{0}}, Config{K: 5}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestLogLikelihoodIncreasesDuringEM(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(2, 150, [][]float64{{0, 0}, {5, 5}, {10, 0}}, 0.6)
	m := RandomModel(ds.Points, 3, 1)
	cfg := Config{K: 3}
	cfg.defaults()
	post := make([][]float64, ds.N())
	for i := range post {
		post[i] = make([]float64, 3)
	}
	prev := math.Inf(-1)
	for iter := 0; iter < 15; iter++ {
		ll := EStep(ds.Points, m, post, cfg.MinVar)
		if ll < prev-1e-6 {
			t.Fatalf("log-likelihood decreased at iter %d: %v -> %v", iter, prev, ll)
		}
		prev = ll
		MStep(ds.Points, post, m, cfg.MinVar)
	}
}

func TestFitFromContinuesImproving(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(3, 100, [][]float64{{0, 0}, {6, 6}}, 0.5)
	start := RandomModel(ds.Points, 2, 9)
	startLL := LogLikelihood(ds.Points, start, 1e-6)
	res, err := FitFrom(ds.Points, start, Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.LogLik < startLL {
		t.Errorf("EM decreased likelihood: %v -> %v", startLL, res.LogLik)
	}
}

func TestBICPrefersTrueK(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(4, 240, [][]float64{{0, 0}, {7, 0}, {0, 7}}, 0.5)
	bics := map[int]float64{}
	for _, k := range []int{1, 3, 6} {
		res, err := Fit(ds.Points, Config{K: k, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		bics[k] = BIC(ds.Points, res.Model, res.LogLik)
	}
	if bics[3] >= bics[1] {
		t.Errorf("BIC should prefer k=3 over k=1: %v", bics)
	}
	if bics[3] >= bics[6] {
		t.Errorf("BIC should prefer k=3 over k=6: %v", bics)
	}
}

func TestHarden(t *testing.T) {
	post := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	c := Harden(post)
	if c.Labels[0] != 0 || c.Labels[1] != 1 {
		t.Errorf("Harden = %v", c.Labels)
	}
}

func TestModelCloneAndValidate(t *testing.T) {
	m := RandomModel([][]float64{{1, 2}, {3, 4}}, 2, 1)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Means[0][0] = 99
	if m.Means[0][0] == 99 {
		t.Error("Clone aliases means")
	}
	bad := &Model{Pi: []float64{1}}
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent model should fail validation")
	}
}

func TestDeadComponentSurvives(t *testing.T) {
	// All points identical: one component will starve; EM must not NaN.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	res, err := Fit(pts, Config{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.LogLik) {
		t.Error("log-likelihood is NaN")
	}
	for _, w := range res.Model.Pi {
		if math.IsNaN(w) {
			t.Error("weight is NaN")
		}
	}
}
