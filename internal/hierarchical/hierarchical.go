// Package hierarchical implements agglomerative clustering with single,
// complete and average linkage. The average-link variant is the base of
// COALA (Bae & Bailey 2006), which interleaves its merges with cannot-link
// constraints to produce an alternative clustering.
package hierarchical

import (
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// Linkage selects the inter-group distance used for merging.
type Linkage int

const (
	SingleLink Linkage = iota
	CompleteLink
	AverageLink
)

func (l Linkage) String() string {
	switch l {
	case SingleLink:
		return "single"
	case CompleteLink:
		return "complete"
	case AverageLink:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step.
type Merge struct {
	A, B     int     // merged group ids (initial points are 0..n-1; merge i creates group n+i)
	Distance float64 // linkage distance at which the merge happened
}

// Dendrogram is the full merge history of an agglomerative run.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Run builds the dendrogram of points under the distance d.
func Run(points [][]float64, d dist.Func, linkage Linkage) (*Dendrogram, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	// active groups: map group id -> member point indices.
	members := map[int][]int{}
	for i := 0; i < n; i++ {
		members[i] = []int{i}
	}
	pd := dist.PairwiseMatrix(points, d)
	linkDist := func(a, b []int) float64 {
		switch linkage {
		case SingleLink:
			best := math.Inf(1)
			for _, i := range a {
				for _, j := range b {
					if v := pd.At(i, j); v < best {
						best = v
					}
				}
			}
			return best
		case CompleteLink:
			worst := 0.0
			for _, i := range a {
				for _, j := range b {
					if v := pd.At(i, j); v > worst {
						worst = v
					}
				}
			}
			return worst
		default: // AverageLink
			var s float64
			for _, i := range a {
				for _, j := range b {
					s += pd.At(i, j)
				}
			}
			return s / float64(len(a)*len(b))
		}
	}
	dg := &Dendrogram{N: n}
	nextID := n
	for len(members) > 1 {
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		ids := make([]int, 0, len(members))
		for id := range members {
			ids = append(ids, id)
		}
		// Deterministic order.
		sort.Ints(ids)
		for x := 0; x < len(ids); x++ {
			for y := x + 1; y < len(ids); y++ {
				dd := linkDist(members[ids[x]], members[ids[y]])
				if dd < bestD {
					bestA, bestB, bestD = ids[x], ids[y], dd
				}
			}
		}
		merged := append(append([]int(nil), members[bestA]...), members[bestB]...)
		delete(members, bestA)
		delete(members, bestB)
		members[nextID] = merged
		dg.Merges = append(dg.Merges, Merge{A: bestA, B: bestB, Distance: bestD})
		nextID++
	}
	return dg, nil
}

// Cut returns the flat clustering with exactly k groups, obtained by undoing
// the last k-1 merges.
func (d *Dendrogram) Cut(k int) (*core.Clustering, error) {
	if k <= 0 || k > d.N {
		return nil, fmt.Errorf("hierarchical: cannot cut %d points into %d clusters", d.N, k)
	}
	// Union-find replay of the first n-k merges.
	parent := make(map[int]int, 2*d.N)
	var find func(int) int
	find = func(x int) int {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	nextID := d.N
	for i := 0; i < d.N-k; i++ {
		m := d.Merges[i]
		parent[find(m.A)] = nextID
		parent[find(m.B)] = nextID
		nextID++
	}
	labels := make([]int, d.N)
	idmap := map[int]int{}
	for i := 0; i < d.N; i++ {
		root := find(i)
		l, ok := idmap[root]
		if !ok {
			l = len(idmap)
			idmap[root] = l
		}
		labels[i] = l
	}
	return core.NewClustering(labels), nil
}

