package hierarchical

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/dist"
)

func TestRunAndCutTwoBlobs(t *testing.T) {
	ds, truth := dataset.GaussianBlobs(1, 40, [][]float64{{0, 0}, {10, 10}}, 0.3)
	for _, link := range []Linkage{SingleLink, CompleteLink, AverageLink} {
		dg, err := Run(ds.Points, dist.Euclidean, link)
		if err != nil {
			t.Fatalf("%v: %v", link, err)
		}
		if len(dg.Merges) != ds.N()-1 {
			t.Fatalf("%v: merges = %d, want %d", link, len(dg.Merges), ds.N()-1)
		}
		c, err := dg.Cut(2)
		if err != nil {
			t.Fatal(err)
		}
		if c.K() != 2 {
			t.Fatalf("%v: K = %d", link, c.K())
		}
		// Must match the ground-truth split exactly on well-separated blobs.
		for i := range truth {
			if (truth[i] == truth[0]) != (c.Labels[i] == c.Labels[0]) {
				t.Fatalf("%v: wrong split at %d", link, i)
			}
		}
	}
}

func TestCutExtremes(t *testing.T) {
	pts := [][]float64{{0}, {1}, {5}}
	dg, err := Run(pts, dist.Euclidean, AverageLink)
	if err != nil {
		t.Fatal(err)
	}
	cAll, err := dg.Cut(3)
	if err != nil {
		t.Fatal(err)
	}
	if cAll.K() != 3 {
		t.Errorf("Cut(n) K = %d", cAll.K())
	}
	cOne, err := dg.Cut(1)
	if err != nil {
		t.Fatal(err)
	}
	if cOne.K() != 1 {
		t.Errorf("Cut(1) K = %d", cOne.K())
	}
	if _, err := dg.Cut(0); err == nil {
		t.Error("Cut(0) should fail")
	}
	if _, err := dg.Cut(4); err == nil {
		t.Error("Cut(n+1) should fail")
	}
}

func TestMergeOrderRespectsDistance(t *testing.T) {
	// Points on a line: 0, 1, 10 — first merge must join 0 and 1.
	pts := [][]float64{{0}, {1}, {10}}
	dg, err := Run(pts, dist.Euclidean, SingleLink)
	if err != nil {
		t.Fatal(err)
	}
	first := dg.Merges[0]
	if !(first.A == 0 && first.B == 1) {
		t.Errorf("first merge = %+v, want groups 0 and 1", first)
	}
	if first.Distance != 1 {
		t.Errorf("first merge distance = %v", first.Distance)
	}
	if dg.Merges[1].Distance < first.Distance {
		t.Error("merge distances should be non-decreasing for single link")
	}
}

func TestSingleVsCompleteLinkChains(t *testing.T) {
	// A chain with slightly growing gaps: single link chains left to right
	// and a 2-cut isolates only the last point (7/1), while complete link
	// merges adjacent pairs first and a 2-cut splits the chain 4/4.
	pts := make([][]float64, 8)
	x := 0.0
	for i := range pts {
		pts[i] = []float64{x}
		x += 1 + 0.01*float64(i)
	}
	single, _ := Run(pts, dist.Euclidean, SingleLink)
	sc, _ := single.Cut(2)
	// Single link cut of a uniform chain: one cluster holds 7 points.
	sizes := map[int]int{}
	for _, l := range sc.Labels {
		sizes[l]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize != 7 {
		t.Errorf("single link chain max cluster = %d, want 7", maxSize)
	}
	complete, _ := Run(pts, dist.Euclidean, CompleteLink)
	cc, _ := complete.Cut(2)
	sizes = map[int]int{}
	for _, l := range cc.Labels {
		sizes[l]++
	}
	for _, s := range sizes {
		if s != 4 {
			t.Errorf("complete link should split the chain 4/4, got %v", sizes)
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if _, err := Run(nil, dist.Euclidean, AverageLink); err == nil {
		t.Error("empty input should fail")
	}
}

func TestLinkageString(t *testing.T) {
	if SingleLink.String() != "single" || CompleteLink.String() != "complete" || AverageLink.String() != "average" {
		t.Error("Linkage names wrong")
	}
	if Linkage(9).String() == "" {
		t.Error("unknown linkage should still render")
	}
}
