package metrics

import "testing"

// FuzzComparisonMeasures drives the pair-counting and information-theoretic
// comparison measures with arbitrary labelings and asserts their ranges and
// symmetry, whatever the input.
func FuzzComparisonMeasures(f *testing.F) {
	f.Add([]byte{0, 0, 1, 1}, []byte{1, 1, 0, 0})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{255}, []byte{0})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		n := len(rawA)
		if len(rawB) < n {
			n = len(rawB)
		}
		if n > 64 {
			n = 64
		}
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = int(rawA[i]%5) - 1 // includes Noise
			b[i] = int(rawB[i]%5) - 1
		}
		ri := RandIndex(a, b)
		if ri < 0 || ri > 1 {
			t.Fatalf("Rand out of range: %v", ri)
		}
		if ri != RandIndex(b, a) {
			t.Fatal("Rand not symmetric")
		}
		ari := AdjustedRand(a, b)
		if ari > 1+1e-9 {
			t.Fatalf("ARI above 1: %v", ari)
		}
		nmi := NMI(a, b)
		if nmi < 0 || nmi > 1+1e-9 {
			t.Fatalf("NMI out of range: %v", nmi)
		}
		vi := VariationOfInformation(a, b)
		if vi < 0 {
			t.Fatalf("VI negative: %v", vi)
		}
		j := JaccardIndex(a, b)
		if j < 0 || j > 1 {
			t.Fatalf("Jaccard out of range: %v", j)
		}
		p := Purity(a, b)
		if p < 0 || p > 1 {
			t.Fatalf("Purity out of range: %v", p)
		}
		f1 := PairF1(a, b)
		if f1 < 0 || f1 > 1+1e-9 {
			t.Fatalf("PairF1 out of range: %v", f1)
		}
	})
}
