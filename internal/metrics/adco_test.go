package metrics

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
)

func TestADCOIdenticalClusteringsScoreZero(t *testing.T) {
	ds, hor, _ := dataset.FourBlobToy(1, 20)
	a := core.NewClustering(hor)
	v, err := ADCO(ds.Points, a, a, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Errorf("ADCO(a,a) = %v, want 0", v)
	}
}

func TestADCOLabelInvariance(t *testing.T) {
	// Same partition under permuted labels must still score ~0.
	ds, hor, _ := dataset.FourBlobToy(2, 20)
	a := core.NewClustering(hor)
	swapped := make([]int, len(hor))
	for i, l := range hor {
		swapped[i] = 1 - l
	}
	b := core.NewClustering(swapped)
	v, err := ADCO(ds.Points, a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v > 1e-9 {
		t.Errorf("ADCO under label permutation = %v, want 0", v)
	}
}

func TestADCOOrthogonalViewsScoreHigh(t *testing.T) {
	// Horizontal vs vertical split of the toy carve different attributes:
	// their density profiles differ, ADCO must be clearly positive, and
	// larger than the ADCO of two near-identical clusterings.
	ds, hor, ver := dataset.FourBlobToy(3, 20)
	a := core.NewClustering(hor)
	b := core.NewClustering(ver)
	cross, err := ADCO(ds.Points, a, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cross < 0.2 {
		t.Errorf("ADCO(hor, ver) = %v, want clearly positive", cross)
	}
	// Perturb a few labels of hor: still low dissimilarity.
	perturbed := append([]int(nil), hor...)
	for i := 0; i < 4; i++ {
		perturbed[i] = 1 - perturbed[i]
	}
	near, err := ADCO(ds.Points, a, core.NewClustering(perturbed), 5)
	if err != nil {
		t.Fatal(err)
	}
	if near >= cross {
		t.Errorf("near-identical ADCO %v should be below orthogonal ADCO %v", near, cross)
	}
}

func TestADCOErrors(t *testing.T) {
	if _, err := ADCO(nil, core.NewClustering(nil), core.NewClustering(nil), 5); err == nil {
		t.Error("empty dataset should fail")
	}
	pts := [][]float64{{0}, {1}}
	noise := core.NewClustering([]int{core.Noise, core.Noise})
	if _, err := ADCO(pts, noise, noise, 5); err == nil {
		t.Error("clustering without clusters should fail")
	}
}

func TestDensityProfileShape(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {0, 1}, {1, 0}}
	c := core.NewClustering([]int{0, 0, 1, 1})
	p, err := NewDensityProfile(pts, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Vectors) != 2 {
		t.Fatalf("vectors = %d", len(p.Vectors))
	}
	if len(p.Vectors[0]) != 4 { // 2 dims * 2 bins
		t.Fatalf("vector width = %d", len(p.Vectors[0]))
	}
	// Each cluster has 2 members, so each vector sums to members*dims = 4.
	for _, v := range p.Vectors {
		var s float64
		for _, x := range v {
			s += x
		}
		if s != 4 {
			t.Errorf("profile mass = %v, want 4", s)
		}
	}
	// Default bin count kicks in for bins<=0.
	p2, err := NewDensityProfile(pts, c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Bins != 5 {
		t.Errorf("default bins = %d", p2.Bins)
	}
}
