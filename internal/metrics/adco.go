package metrics

import (
	"errors"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
)

// DensityProfile is the attribute-bin occupancy representation of a
// clustering used by the ADCO measure of Bae, Bailey & Dong (2010, tutorial
// slide 34): for every cluster, the number of its members falling into each
// of Bins equal-width intervals of each attribute.
type DensityProfile struct {
	Bins    int
	Vectors [][]float64 // one concatenated (d*Bins) count vector per cluster
}

// NewDensityProfile builds the profile of clustering c over points.
func NewDensityProfile(points [][]float64, c *core.Clustering, bins int) (*DensityProfile, error) {
	if len(points) == 0 {
		return nil, errors.New("metrics: empty dataset")
	}
	if bins <= 0 {
		bins = 5
	}
	d := len(points[0])
	mins := make([]float64, d)
	maxs := make([]float64, d)
	for j := 0; j < d; j++ {
		mins[j], maxs[j] = points[0][j], points[0][j]
	}
	for _, p := range points {
		for j, v := range p {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	prof := &DensityProfile{Bins: bins}
	for _, members := range c.Clusters() {
		vec := make([]float64, d*bins)
		for _, o := range members {
			for j, v := range points[o] {
				span := maxs[j] - mins[j]
				b := 0
				if span > 0 {
					b = int((v - mins[j]) / span * float64(bins))
					if b >= bins {
						b = bins - 1
					}
				}
				vec[j*bins+b]++
			}
		}
		prof.Vectors = append(prof.Vectors, vec)
	}
	if len(prof.Vectors) == 0 {
		return nil, errors.New("metrics: clustering has no clusters")
	}
	return prof, nil
}

// ADCO returns the density-profile dissimilarity between two clusterings of
// the same points (Bae, Bailey & Dong 2010): clusters of one clustering are
// matched to clusters of the other by maximum profile dot-product
// (greedily), the matched similarity is normalized by the self-similarity
// max(sim(A,A), sim(B,B)), and the dissimilarity is 1 minus that value.
// Two clusterings with the same per-attribute density structure score near
// 0 even when their labels differ; clusterings carving the space along
// different attributes score near 1. Intended as a Diss function for
// alternative-clustering searches.
func ADCO(points [][]float64, a, b *core.Clustering, bins int) (float64, error) {
	pa, err := NewDensityProfile(points, a, bins)
	if err != nil {
		return 0, err
	}
	pb, err := NewDensityProfile(points, b, bins)
	if err != nil {
		return 0, err
	}
	sim := profileSim(pa, pb)
	self := profileSim(pa, pa)
	if s := profileSim(pb, pb); s > self {
		self = s
	}
	if self == 0 {
		return 0, nil
	}
	v := 1 - sim/self
	if v < 0 {
		v = 0
	}
	return v, nil
}

// profileSim greedily matches clusters across the two profiles by maximal
// dot product and sums the matched products.
func profileSim(a, b *DensityProfile) float64 {
	usedA := make([]bool, len(a.Vectors))
	usedB := make([]bool, len(b.Vectors))
	var total float64
	pairs := len(a.Vectors)
	if len(b.Vectors) < pairs {
		pairs = len(b.Vectors)
	}
	for p := 0; p < pairs; p++ {
		bi, bj, best := -1, -1, -1.0
		for i := range a.Vectors {
			if usedA[i] {
				continue
			}
			for j := range b.Vectors {
				if usedB[j] {
					continue
				}
				if dp := linalg.Dot(a.Vectors[i], b.Vectors[j]); dp > best {
					bi, bj, best = i, j, dp
				}
			}
		}
		if bi < 0 {
			break
		}
		usedA[bi] = true
		usedB[bj] = true
		total += best
	}
	return total
}
