package metrics

import (
	"multiclust/internal/core"
)

// This file instantiates the tutorial's abstract interface (slide 27):
// quality functions Q : Clusterings -> R and dissimilarity functions
// Diss : Clusterings x Clusterings -> R, as core.QualityFunc and
// core.DissimilarityFunc values ready to plug into search procedures.

// NegSSEQuality is the k-means-style quality: the negated sum of squared
// distances to cluster means, so that higher is better.
func NegSSEQuality() core.QualityFunc {
	return func(points [][]float64, c *core.Clustering) float64 {
		return -SSE(points, c)
	}
}

// SilhouetteQuality scores a clustering by its mean silhouette width.
func SilhouetteQuality() core.QualityFunc {
	return func(points [][]float64, c *core.Clustering) float64 {
		return Silhouette(points, c)
	}
}

// RandDissimilarity is 1 - Rand index: the pairwise-disagreement rate used
// by meta clustering (slide 29).
func RandDissimilarity() core.DissimilarityFunc {
	return func(a, b *core.Clustering) float64 {
		return 1 - RandIndex(a.Labels, b.Labels)
	}
}

// VIDissimilarity is the variation of information, a true metric on
// partitions.
func VIDissimilarity() core.DissimilarityFunc {
	return func(a, b *core.Clustering) float64 {
		return VariationOfInformation(a.Labels, b.Labels)
	}
}

// NMIDissimilarity is 1 - NMI, in [0,1].
func NMIDissimilarity() core.DissimilarityFunc {
	return func(a, b *core.Clustering) float64 {
		return 1 - NMI(a.Labels, b.Labels)
	}
}

// ADCODissimilarity is the density-profile dissimilarity of Bae, Bailey &
// Dong (2010) bound to a dataset and bin count. Unlike the label-based
// measures it looks at WHERE in attribute space the clusters sit, so two
// clusterings with different labels but the same per-attribute density
// structure count as similar.
func ADCODissimilarity(points [][]float64, bins int) core.DissimilarityFunc {
	return func(a, b *core.Clustering) float64 {
		v, err := ADCO(points, a, b, bins)
		if err != nil {
			return 0
		}
		return v
	}
}

// EvaluateSolutionSet scores a set of clusterings under the tutorial's twin
// objectives: the summed quality of the solutions and the summed pairwise
// dissimilarity between them (slide 39's combined objective).
func EvaluateSolutionSet(points [][]float64, sols []*core.Clustering, q core.QualityFunc, diss core.DissimilarityFunc) (quality, dissimilarity float64) {
	for _, s := range sols {
		quality += q(points, s)
	}
	for i := 0; i < len(sols); i++ {
		for j := i + 1; j < len(sols); j++ {
			dissimilarity += diss(sols[i], sols[j])
		}
	}
	return quality, dissimilarity
}
