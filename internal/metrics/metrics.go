// Package metrics implements the clustering comparison and quality measures
// the tutorial leans on: pair-counting indices (Rand, Adjusted Rand,
// Jaccard, pairwise F1), information-theoretic measures (NMI, variation of
// information, conditional entropy), purity, SSE/silhouette quality scores,
// and a best-match F1 for subspace clusterings. Comparison measures are the
// Diss functions of the abstract problem definition (slide 27); quality
// measures are the Q functions.
package metrics

import (
	"fmt"
	"math"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/stats"
)

// ValidatePair checks that two labelings cover the same objects; the typed
// error (wrapping core.ErrShape) is the precondition every comparison
// measure in this package assumes. The float64-returning metrics keep the
// core.DissimilarityFunc-compatible signature and instead return NaN — a
// detectable sentinel, never a panic — when the precondition is violated.
func ValidatePair(x, y []int) error {
	if len(x) != len(y) {
		return fmt.Errorf("metrics: labelings of length %d and %d: %w", len(x), len(y), core.ErrShape)
	}
	return nil
}

// PairCounts holds the four pair-counting cells for two labelings:
// a = pairs together in both, b = together in A only, c = together in B
// only, d = separated in both. Pairs involving noise objects are skipped.
type PairCounts struct{ A, B, C, D float64 }

// CountPairs tallies object pairs for two labelings of equal length.
// Mismatched lengths yield the zero PairCounts; the exported indices built
// on it return NaN in that case.
func CountPairs(x, y []int) PairCounts {
	var pc PairCounts
	if len(x) != len(y) {
		return pc
	}
	n := len(x)
	for i := 0; i < n; i++ {
		if x[i] < 0 || y[i] < 0 {
			continue
		}
		for j := i + 1; j < n; j++ {
			if x[j] < 0 || y[j] < 0 {
				continue
			}
			sx := x[i] == x[j]
			sy := y[i] == y[j]
			switch {
			case sx && sy:
				pc.A++
			case sx && !sy:
				pc.B++
			case !sx && sy:
				pc.C++
			default:
				pc.D++
			}
		}
	}
	return pc
}

// RandIndex returns (a+d)/(a+b+c+d) in [0,1]; 1 means identical partitions.
// This is the dissimilarity base used by meta clustering (slide 29).
// Mismatched labeling lengths return NaN.
func RandIndex(x, y []int) float64 {
	if ValidatePair(x, y) != nil {
		return math.NaN()
	}
	pc := CountPairs(x, y)
	tot := pc.A + pc.B + pc.C + pc.D
	if tot == 0 {
		return 1
	}
	return (pc.A + pc.D) / tot
}

// AdjustedRand returns the Hubert–Arabie adjusted Rand index, which is 0 in
// expectation for independent partitions and 1 for identical ones.
// Mismatched labeling lengths return NaN.
func AdjustedRand(x, y []int) float64 {
	ct, err := stats.NewContingencyTable(x, y)
	if err != nil {
		return math.NaN()
	}
	var sumComb, sumRow, sumCol float64
	for _, row := range ct.Counts {
		for _, nij := range row {
			sumComb += comb2(nij)
		}
	}
	for _, r := range ct.RowSums {
		sumRow += comb2(r)
	}
	for _, c := range ct.ColSums {
		sumCol += comb2(c)
	}
	total := comb2(ct.Total)
	if total == 0 {
		return 1
	}
	expected := sumRow * sumCol / total
	maxIdx := 0.5 * (sumRow + sumCol)
	den := maxIdx - expected
	if den == 0 {
		return 1 // both partitions trivial
	}
	return (sumComb - expected) / den
}

func comb2(n float64) float64 { return n * (n - 1) / 2 }

// JaccardIndex returns a/(a+b+c), ignoring jointly-separated pairs.
// Mismatched labeling lengths return NaN.
func JaccardIndex(x, y []int) float64 {
	if ValidatePair(x, y) != nil {
		return math.NaN()
	}
	pc := CountPairs(x, y)
	den := pc.A + pc.B + pc.C
	if den == 0 {
		return 1
	}
	return pc.A / den
}

// PairF1 treats "pair clustered together" as a retrieval task with x as
// truth: precision a/(a+c), recall a/(a+b), and returns their harmonic mean.
func PairF1(truth, found []int) float64 {
	if ValidatePair(truth, found) != nil {
		return math.NaN()
	}
	pc := CountPairs(truth, found)
	if pc.A == 0 {
		return 0
	}
	prec := pc.A / (pc.A + pc.C)
	rec := pc.A / (pc.A + pc.B)
	return 2 * prec * rec / (prec + rec)
}

// NMI returns the normalized mutual information of two labelings, in [0,1].
// Mismatched labeling lengths return NaN.
func NMI(x, y []int) float64 {
	ct, err := stats.NewContingencyTable(x, y)
	if err != nil {
		return math.NaN()
	}
	return stats.NMI(ct)
}

// VariationOfInformation returns VI(x,y) = H(x|y) + H(y|x) in nats; 0 means
// identical partitions and larger means more different. VI is a true metric
// on partitions, making it a principled Diss function. Mismatched labeling
// lengths return NaN.
func VariationOfInformation(x, y []int) float64 {
	ct, err := stats.NewContingencyTable(x, y)
	if err != nil {
		return math.NaN()
	}
	hxy := ct.JointEntropy()
	v := 2*hxy - ct.EntropyRow() - ct.EntropyCol()
	if v < 0 {
		v = 0
	}
	return v
}

// ConditionalEntropy returns H(x|y) in nats. Mismatched labeling lengths
// return NaN.
func ConditionalEntropy(x, y []int) float64 {
	ct, err := stats.NewContingencyTable(x, y)
	if err != nil {
		return math.NaN()
	}
	return ct.ConditionalEntropyRowGivenCol()
}

// MutualInformation returns I(x;y) in nats. Mismatched labeling lengths
// return NaN.
func MutualInformation(x, y []int) float64 {
	ct, err := stats.NewContingencyTable(x, y)
	if err != nil {
		return math.NaN()
	}
	return ct.MutualInformation()
}

// Purity returns the weighted fraction of objects in each found cluster that
// belong to that cluster's majority truth class. Noise objects in found are
// excluded. Mismatched labeling lengths return NaN.
func Purity(truth, found []int) float64 {
	if ValidatePair(truth, found) != nil {
		return math.NaN()
	}
	byCluster := map[int]map[int]int{}
	total := 0
	for i, f := range found {
		if f < 0 || truth[i] < 0 {
			continue
		}
		m, ok := byCluster[f]
		if !ok {
			m = map[int]int{}
			byCluster[f] = m
		}
		m[truth[i]]++
		total++
	}
	if total == 0 {
		return 0
	}
	var correct int
	for _, m := range byCluster {
		best := 0
		for _, c := range m {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	return float64(correct) / float64(total)
}

// SSE returns the sum of squared Euclidean distances of each clustered point
// to its cluster mean — the canonical Q for centroid methods. Noise points
// are ignored.
func SSE(points [][]float64, c *core.Clustering) float64 {
	if c.N() != len(points) {
		return math.NaN()
	}
	clusters := c.Clusters()
	var sse float64
	for _, members := range clusters {
		if len(members) == 0 {
			continue
		}
		d := len(points[members[0]])
		mean := make([]float64, d)
		for _, o := range members {
			for j, v := range points[o] {
				mean[j] += v
			}
		}
		for j := range mean {
			mean[j] /= float64(len(members))
		}
		for _, o := range members {
			sse += dist.SqEuclidean(points[o], mean)
		}
	}
	return sse
}

// Silhouette returns the mean silhouette coefficient over clustered points,
// in [-1, 1]; higher means tighter, better-separated clusters. Points in
// singleton clusters contribute 0; noise points are skipped.
func Silhouette(points [][]float64, c *core.Clustering) float64 {
	if c.N() != len(points) {
		return math.NaN()
	}
	clusters := c.Clusters()
	if len(clusters) < 2 {
		return 0
	}
	// Iterate clusters and members in index order: summing in map-iteration
	// order made the result depend on Go's randomized map ordering in the
	// last floating-point bits, which flipped argmax decisions downstream
	// (e.g. CondEns member selection) between identical runs.
	var sum float64
	var count int
	for ci, own := range clusters {
		for _, o := range own {
			if len(own) <= 1 {
				count++
				continue
			}
			var a float64
			for _, p := range own {
				if p != o {
					a += dist.Euclidean(points[o], points[p])
				}
			}
			a /= float64(len(own) - 1)
			b := math.Inf(1)
			for cj, other := range clusters {
				if cj == ci {
					continue
				}
				var s float64
				for _, p := range other {
					s += dist.Euclidean(points[o], points[p])
				}
				if avg := s / float64(len(other)); avg < b {
					b = avg
				}
			}
			den := math.Max(a, b)
			if den > 0 {
				sum += (b - a) / den
			}
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// AverageWithinDistance returns the mean pairwise distance inside clusters —
// COALA's dissimilarity-vs-quality experiments report this as cluster
// quality (lower is tighter).
func AverageWithinDistance(points [][]float64, c *core.Clustering, d dist.Func) float64 {
	if c.N() != len(points) {
		return math.NaN()
	}
	var sum float64
	var count int
	for _, members := range c.Clusters() {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				sum += d(points[members[i]], points[members[j]])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// SubspaceF1 scores a found subspace clustering against ground truth with
// best-match F1: each truth cluster is matched to the found cluster
// maximizing object-set F1, and the matched F1 values are averaged. The
// standard recall-oriented score of the subspace clustering evaluation study
// (Müller et al. 2009b).
func SubspaceF1(truth, found core.SubspaceClustering) float64 {
	if len(truth) == 0 {
		return 0
	}
	var total float64
	for _, tc := range truth {
		best := 0.0
		for _, fc := range found {
			inter := float64(tc.SharedObjects(fc))
			if inter == 0 {
				continue
			}
			prec := inter / float64(fc.Size())
			rec := inter / float64(tc.Size())
			f1 := 2 * prec * rec / (prec + rec)
			if f1 > best {
				best = f1
			}
		}
		total += best
	}
	return total / float64(len(truth))
}

// SubspaceDimPrecision measures how well the found clusters' dimension sets
// match their best-matching truth clusters (Jaccard of dim sets averaged
// over found clusters matched by objects).
func SubspaceDimPrecision(truth, found core.SubspaceClustering) float64 {
	if len(found) == 0 {
		return 0
	}
	var total float64
	for _, fc := range found {
		bestObj := 0
		var bestTruth *core.SubspaceCluster
		for ti := range truth {
			if inter := fc.SharedObjects(truth[ti]); inter > bestObj {
				bestObj = inter
				bestTruth = &truth[ti]
			}
		}
		if bestTruth == nil {
			continue
		}
		interDims := float64(fc.SharedDims(*bestTruth))
		unionDims := float64(len(fc.Dims)+len(bestTruth.Dims)) - interDims
		if unionDims > 0 {
			total += interDims / unionDims
		}
	}
	return total / float64(len(found))
}

// Redundancy measures the fraction of clusters in m that are near-duplicates
// of an earlier cluster: object-set Jaccard above the threshold. The
// redundancy pathology of slide 77 is exactly a high value here.
func Redundancy(m core.SubspaceClustering, jaccardThreshold float64) float64 {
	if len(m) <= 1 {
		return 0
	}
	redundant := 0
	for i := 1; i < len(m); i++ {
		for j := 0; j < i; j++ {
			inter := float64(m[i].SharedObjects(m[j]))
			union := float64(m[i].Size()+m[j].Size()) - inter
			if union > 0 && inter/union >= jaccardThreshold {
				redundant++
				break
			}
		}
	}
	return float64(redundant) / float64(len(m))
}
