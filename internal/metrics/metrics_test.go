package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"multiclust/internal/core"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCountPairsKnown(t *testing.T) {
	x := []int{0, 0, 1, 1}
	y := []int{0, 1, 0, 1}
	pc := CountPairs(x, y)
	// 6 pairs total: none together in both, 2 together in x only (01, 23),
	// 2 together in y only (02, 13), 2 separated in both (03, 12).
	if pc.A != 0 || pc.B != 2 || pc.C != 2 || pc.D != 2 {
		t.Errorf("pairs = %+v", pc)
	}
}

func TestCountPairsSkipsNoise(t *testing.T) {
	x := []int{0, 0, core.Noise}
	y := []int{0, 0, 0}
	pc := CountPairs(x, y)
	if pc.A != 1 || pc.B+pc.C+pc.D != 0 {
		t.Errorf("pairs with noise = %+v", pc)
	}
}

func TestRandIndex(t *testing.T) {
	x := []int{0, 0, 1, 1}
	if RandIndex(x, x) != 1 {
		t.Error("Rand(x,x) != 1")
	}
	y := []int{0, 1, 0, 1}
	if got := RandIndex(x, y); !approxEq(got, 1.0/3, 1e-12) {
		t.Errorf("Rand = %v, want 1/3", got)
	}
	// Relabeling does not change the index.
	z := []int{5, 5, 2, 2}
	if RandIndex(x, z) != 1 {
		t.Error("Rand should be label-invariant")
	}
}

func TestAdjustedRand(t *testing.T) {
	x := []int{0, 0, 1, 1, 2, 2}
	if got := AdjustedRand(x, x); !approxEq(got, 1, 1e-12) {
		t.Errorf("ARI(x,x) = %v", got)
	}
	// Independent labelings hover around 0 (exact value dataset-specific,
	// just check it is clearly below 0.5).
	y := []int{0, 1, 2, 0, 1, 2}
	if got := AdjustedRand(x, y); got > 0.5 {
		t.Errorf("ARI(independent) = %v", got)
	}
	// Trivial partitions: both all-one-cluster.
	ones := []int{0, 0, 0}
	if got := AdjustedRand(ones, ones); got != 1 {
		t.Errorf("ARI(trivial) = %v", got)
	}
}

func TestJaccardAndF1(t *testing.T) {
	x := []int{0, 0, 1, 1}
	if JaccardIndex(x, x) != 1 {
		t.Error("Jaccard(x,x) != 1")
	}
	y := []int{0, 1, 0, 1}
	if got := JaccardIndex(x, y); got != 0 {
		t.Errorf("Jaccard(disjoint pairs) = %v", got)
	}
	if got := PairF1(x, x); got != 1 {
		t.Errorf("PairF1(x,x) = %v", got)
	}
	if got := PairF1(x, y); got != 0 {
		t.Errorf("PairF1 disjoint = %v", got)
	}
	// Asymmetric case with partial overlap.
	found := []int{0, 0, 0, 1}
	got := PairF1(x, found)
	if got <= 0 || got >= 1 {
		t.Errorf("PairF1 partial = %v, want in (0,1)", got)
	}
}

func TestNMIAndVI(t *testing.T) {
	x := []int{0, 0, 1, 1}
	if !approxEq(NMI(x, x), 1, 1e-12) {
		t.Error("NMI(x,x) != 1")
	}
	y := []int{0, 1, 0, 1}
	if !approxEq(NMI(x, y), 0, 1e-12) {
		t.Error("NMI(independent) != 0")
	}
	if !approxEq(VariationOfInformation(x, x), 0, 1e-12) {
		t.Error("VI(x,x) != 0")
	}
	// VI of independent binary splits: H(x|y)+H(y|x) = 2 ln 2.
	if got := VariationOfInformation(x, y); !approxEq(got, 2*math.Ln2, 1e-12) {
		t.Errorf("VI = %v, want 2ln2", got)
	}
	if got := MutualInformation(x, y); !approxEq(got, 0, 1e-12) {
		t.Errorf("MI = %v", got)
	}
	if got := ConditionalEntropy(x, y); !approxEq(got, math.Ln2, 1e-12) {
		t.Errorf("H(x|y) = %v, want ln2", got)
	}
}

// Property: VI is symmetric and satisfies the triangle inequality.
func TestQuickVIMetric(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 8 + r.Intn(20)
		x := make([]int, n)
		y := make([]int, n)
		z := make([]int, n)
		for i := 0; i < n; i++ {
			x[i], y[i], z[i] = r.Intn(3), r.Intn(3), r.Intn(3)
		}
		if !approxEq(VariationOfInformation(x, y), VariationOfInformation(y, x), 1e-9) {
			return false
		}
		return VariationOfInformation(x, z) <= VariationOfInformation(x, y)+VariationOfInformation(y, z)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: Rand and ARI are symmetric; Rand within [0,1], ARI <= 1.
func TestQuickIndexRanges(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(20)
		x := make([]int, n)
		y := make([]int, n)
		for i := 0; i < n; i++ {
			x[i], y[i] = r.Intn(4), r.Intn(4)
		}
		ri := RandIndex(x, y)
		if ri < 0 || ri > 1 {
			return false
		}
		if !approxEq(ri, RandIndex(y, x), 1e-12) {
			return false
		}
		ari := AdjustedRand(x, y)
		if ari > 1+1e-12 {
			return false
		}
		return approxEq(ari, AdjustedRand(y, x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestPurity(t *testing.T) {
	truth := []int{0, 0, 1, 1}
	if got := Purity(truth, truth); got != 1 {
		t.Errorf("Purity(t,t) = %v", got)
	}
	found := []int{0, 0, 0, 0}
	if got := Purity(truth, found); got != 0.5 {
		t.Errorf("Purity(all-one) = %v, want 0.5", got)
	}
	if got := Purity(truth, []int{core.Noise, core.Noise, core.Noise, core.Noise}); got != 0 {
		t.Errorf("Purity(all noise) = %v", got)
	}
}

func TestSSEAndSilhouette(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {10, 0}, {10, 1}}
	good := core.NewClustering([]int{0, 0, 1, 1})
	bad := core.NewClustering([]int{0, 1, 0, 1})
	if SSE(pts, good) >= SSE(pts, bad) {
		t.Error("good clustering should have lower SSE")
	}
	sg := Silhouette(pts, good)
	sb := Silhouette(pts, bad)
	if sg <= sb {
		t.Errorf("silhouette good=%v <= bad=%v", sg, sb)
	}
	if sg < 0.8 {
		t.Errorf("silhouette of ideal split = %v", sg)
	}
	if got := Silhouette(pts, core.NewClustering([]int{0, 0, 0, 0})); got != 0 {
		t.Errorf("silhouette of single cluster = %v, want 0", got)
	}
}

func TestAverageWithinDistance(t *testing.T) {
	pts := [][]float64{{0}, {1}, {10}, {11}}
	tight := core.NewClustering([]int{0, 0, 1, 1})
	loose := core.NewClustering([]int{0, 1, 0, 1})
	dt := AverageWithinDistance(pts, tight, func(a, b []float64) float64 { return math.Abs(a[0] - b[0]) })
	dl := AverageWithinDistance(pts, loose, func(a, b []float64) float64 { return math.Abs(a[0] - b[0]) })
	if dt != 1 {
		t.Errorf("tight avg = %v, want 1", dt)
	}
	if dl != 10 {
		t.Errorf("loose avg = %v, want 10", dl)
	}
	empty := core.NewClustering([]int{core.Noise})
	if got := AverageWithinDistance([][]float64{{0}}, empty, nil); got != 0 {
		t.Errorf("empty avg = %v", got)
	}
}

func TestSubspaceF1(t *testing.T) {
	truth := core.SubspaceClustering{
		core.NewSubspaceCluster([]int{0, 1, 2, 3}, []int{0, 1}),
		core.NewSubspaceCluster([]int{4, 5, 6, 7}, []int{2, 3}),
	}
	if got := SubspaceF1(truth, truth); !approxEq(got, 1, 1e-12) {
		t.Errorf("SubspaceF1 self = %v", got)
	}
	// Half-overlapping found clusters.
	found := core.SubspaceClustering{
		core.NewSubspaceCluster([]int{0, 1}, []int{0, 1}),
	}
	got := SubspaceF1(truth, found)
	if got <= 0 || got >= 1 {
		t.Errorf("SubspaceF1 partial = %v", got)
	}
	if SubspaceF1(nil, found) != 0 {
		t.Error("empty truth should score 0")
	}
	if SubspaceF1(truth, nil) != 0 {
		t.Error("empty found should score 0")
	}
}

func TestSubspaceDimPrecision(t *testing.T) {
	truth := core.SubspaceClustering{
		core.NewSubspaceCluster([]int{0, 1, 2}, []int{0, 1}),
	}
	exact := core.SubspaceClustering{
		core.NewSubspaceCluster([]int{0, 1, 2}, []int{0, 1}),
	}
	if got := SubspaceDimPrecision(truth, exact); !approxEq(got, 1, 1e-12) {
		t.Errorf("dim precision exact = %v", got)
	}
	wrongDims := core.SubspaceClustering{
		core.NewSubspaceCluster([]int{0, 1, 2}, []int{3, 4}),
	}
	if got := SubspaceDimPrecision(truth, wrongDims); got != 0 {
		t.Errorf("dim precision disjoint = %v", got)
	}
	if SubspaceDimPrecision(truth, nil) != 0 {
		t.Error("empty found should score 0")
	}
}

func TestRedundancy(t *testing.T) {
	a := core.NewSubspaceCluster([]int{0, 1, 2, 3}, []int{0})
	aDup := core.NewSubspaceCluster([]int{0, 1, 2, 3}, []int{0, 1})
	b := core.NewSubspaceCluster([]int{10, 11, 12}, []int{2})
	if got := Redundancy(core.SubspaceClustering{a, aDup, b}, 0.9); !approxEq(got, 1.0/3, 1e-12) {
		t.Errorf("Redundancy = %v, want 1/3", got)
	}
	if Redundancy(core.SubspaceClustering{a}, 0.9) != 0 {
		t.Error("single cluster cannot be redundant")
	}
}

// Silhouette must be bit-for-bit reproducible across calls: the old
// implementation summed contributions in Go map-iteration order, whose
// randomization perturbed the last floating-point bits and flipped argmax
// decisions downstream (e.g. CondEns member selection).
func TestSilhouetteDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	n := 60
	pts := make([][]float64, n)
	labels := make([]int, n)
	for i := range pts {
		labels[i] = i % 4
		pts[i] = []float64{r.NormFloat64() + float64(labels[i]*3), r.NormFloat64()}
	}
	c := core.NewClustering(labels)
	first := Silhouette(pts, c)
	for i := 0; i < 10; i++ {
		if got := Silhouette(pts, c); got != first {
			t.Fatalf("call %d: Silhouette = %v, first call = %v", i, got, first)
		}
	}
}

func TestValidatePair(t *testing.T) {
	if err := ValidatePair([]int{0, 1}, []int{1, 0}); err != nil {
		t.Fatalf("equal lengths rejected: %v", err)
	}
	err := ValidatePair([]int{0, 1}, []int{0})
	if !errors.Is(err, core.ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

// Regression: mismatched labeling lengths used to panic inside the stats
// contingency table (or index out of range in CountPairs); every comparison
// measure must now return NaN instead.
func TestComparisonMeasuresMismatchedLengthsNaN(t *testing.T) {
	x := []int{0, 0, 1, 1}
	y := []int{0, 1}
	for name, f := range map[string]func(a, b []int) float64{
		"RandIndex":              RandIndex,
		"AdjustedRand":           AdjustedRand,
		"JaccardIndex":           JaccardIndex,
		"PairF1":                 PairF1,
		"NMI":                    NMI,
		"VariationOfInformation": VariationOfInformation,
		"ConditionalEntropy":     ConditionalEntropy,
		"MutualInformation":      MutualInformation,
		"Purity":                 Purity,
	} {
		if got := f(x, y); !math.IsNaN(got) {
			t.Errorf("%s on mismatched lengths = %v, want NaN", name, got)
		}
	}
}

// Regression: quality measures indexed points[o] for every clustered object,
// so a labeling longer than the dataset read out of range.
func TestQualityMeasuresMismatchedLengthsNaN(t *testing.T) {
	points := [][]float64{{0, 0}, {1, 1}}
	c := core.NewClustering([]int{0, 0, 1})
	if got := SSE(points, c); !math.IsNaN(got) {
		t.Errorf("SSE on mismatched lengths = %v, want NaN", got)
	}
	if got := Silhouette(points, c); !math.IsNaN(got) {
		t.Errorf("Silhouette on mismatched lengths = %v, want NaN", got)
	}
	d := func(a, b []float64) float64 { return 0 }
	if got := AverageWithinDistance(points, c, d); !math.IsNaN(got) {
		t.Errorf("AverageWithinDistance on mismatched lengths = %v, want NaN", got)
	}
}
