package metrics

import (
	"math"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
)

func TestQualityFunctions(t *testing.T) {
	pts := [][]float64{{0, 0}, {0, 1}, {10, 0}, {10, 1}}
	good := core.NewClustering([]int{0, 0, 1, 1})
	bad := core.NewClustering([]int{0, 1, 0, 1})
	for name, q := range map[string]core.QualityFunc{
		"negSSE":     NegSSEQuality(),
		"silhouette": SilhouetteQuality(),
	} {
		if q(pts, good) <= q(pts, bad) {
			t.Errorf("%s: good clustering should score higher", name)
		}
	}
}

func TestDissimilarityFunctions(t *testing.T) {
	a := core.NewClustering([]int{0, 0, 1, 1})
	same := core.NewClustering([]int{1, 1, 0, 0})
	indep := core.NewClustering([]int{0, 1, 0, 1})
	for name, d := range map[string]core.DissimilarityFunc{
		"rand": RandDissimilarity(),
		"vi":   VIDissimilarity(),
		"nmi":  NMIDissimilarity(),
	} {
		if v := d(a, same); math.Abs(v) > 1e-9 {
			t.Errorf("%s: identical partitions scored %v", name, v)
		}
		if d(a, indep) <= 0 {
			t.Errorf("%s: independent partitions should be dissimilar", name)
		}
		// Symmetry.
		if math.Abs(d(a, indep)-d(indep, a)) > 1e-12 {
			t.Errorf("%s not symmetric", name)
		}
	}
}

func TestADCODissimilarityFunc(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(1, 20)
	d := ADCODissimilarity(ds.Points, 5)
	a := core.NewClustering(hor)
	b := core.NewClustering(ver)
	if d(a, a) > 1e-9 {
		t.Error("ADCO(a,a) should be 0")
	}
	if d(a, b) < 0.2 {
		t.Errorf("ADCO of orthogonal views = %v", d(a, b))
	}
	// Degenerate clustering: the bound function returns 0 instead of error.
	noise := core.NewClustering(make([]int, 0))
	bad := ADCODissimilarity(nil, 5)
	if bad(noise, noise) != 0 {
		t.Error("error path should return 0")
	}
}

func TestEvaluateSolutionSet(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(2, 15)
	sols := []*core.Clustering{core.NewClustering(hor), core.NewClustering(ver)}
	q, diss := EvaluateSolutionSet(ds.Points, sols, SilhouetteQuality(), RandDissimilarity())
	if q <= 0 {
		t.Errorf("combined quality = %v", q)
	}
	if diss <= 0.3 {
		t.Errorf("combined dissimilarity = %v", diss)
	}
	// A redundant solution set has near-zero dissimilarity.
	dup := []*core.Clustering{core.NewClustering(hor), core.NewClustering(hor)}
	_, dupDiss := EvaluateSolutionSet(ds.Points, dup, SilhouetteQuality(), RandDissimilarity())
	if dupDiss > 1e-9 {
		t.Errorf("duplicate solutions dissimilarity = %v", dupDiss)
	}
}
