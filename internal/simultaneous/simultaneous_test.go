package simultaneous

import (
	"math"
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/linalg"
	"multiclust/internal/metrics"
)

func TestDecKMeansFindsBothToyViews(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(1, 25)
	res, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusterings) != 2 {
		t.Fatalf("clusterings = %d", len(res.Clusterings))
	}
	// One clustering should match the horizontal view, the other the
	// vertical, in either order.
	a0h := metrics.AdjustedRand(hor, res.Clusterings[0].Labels)
	a0v := metrics.AdjustedRand(ver, res.Clusterings[0].Labels)
	a1h := metrics.AdjustedRand(hor, res.Clusterings[1].Labels)
	a1v := metrics.AdjustedRand(ver, res.Clusterings[1].Labels)
	match := math.Max(math.Min(a0h, a1v), math.Min(a0v, a1h))
	if match < 0.8 {
		t.Errorf("views not recovered: %v %v %v %v", a0h, a0v, a1h, a1v)
	}
	// The two solutions must be nearly independent.
	if mi := metrics.NMI(res.Clusterings[0].Labels, res.Clusterings[1].Labels); mi > 0.3 {
		t.Errorf("solutions too correlated: NMI=%v", mi)
	}
}

func TestDecKMeansLambdaDecorrelates(t *testing.T) {
	// With lambda ~ 0 both clusterings are free to collapse onto the same
	// dominant structure; with large lambda the representative penalty
	// forces decorrelation. Compare NMI between the two solutions.
	ds, _, _ := dataset.FourBlobToy(3, 25)
	free, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Lambda: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tied, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nmiFree := metrics.NMI(free.Clusterings[0].Labels, free.Clusterings[1].Labels)
	nmiTied := metrics.NMI(tied.Clusterings[0].Labels, tied.Clusterings[1].Labels)
	if nmiTied > nmiFree+1e-9 {
		t.Errorf("lambda should not increase inter-solution NMI: free=%v tied=%v", nmiFree, nmiTied)
	}
}

func TestDecKMeansRepresentativesOrthogonal(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(5, 25)
	res, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// In centered coordinates the cross inner products (mean_j, r_i) should
	// be small; verify via the means returned (centered internally, shifted
	// back — recenter here).
	center := []float64{0.5, 0.5}
	var maxCos float64
	for _, r := range res.Representatives[0] {
		rc := linalg.SubVec(r, center)
		for _, m := range res.Means[1] {
			mc := linalg.SubVec(m, center)
			if c := math.Abs(linalg.CosineSim(rc, mc)); c > maxCos {
				maxCos = c
			}
		}
	}
	if maxCos > 0.5 {
		t.Errorf("representatives not decorrelated from other clustering's means: max |cos| = %v", maxCos)
	}
}

func TestDecKMeansThreeClusterings(t *testing.T) {
	// T=3 on a 3-view dataset: each solution should be valid and mutually
	// near-independent.
	ds, _, _ := dataset.MultiViewGaussians(7, 150, []dataset.ViewSpec{
		{Dims: 2, K: 2, Sep: 8, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 8, Sigma: 0.5},
		{Dims: 2, K: 2, Sep: 8, Sigma: 0.5},
	})
	res, err := DecKMeans(ds.Points, DecKMeansConfig{Ks: []int{2, 2, 2}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusterings) != 3 {
		t.Fatalf("clusterings = %d", len(res.Clusterings))
	}
	for t1 := 0; t1 < 3; t1++ {
		if res.Clusterings[t1].K() < 2 {
			t.Errorf("solution %d degenerate", t1)
		}
	}
}

func TestDecKMeansErrors(t *testing.T) {
	if _, err := DecKMeans(nil, DecKMeansConfig{Ks: []int{2, 2}}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	if _, err := DecKMeans(pts, DecKMeansConfig{Ks: []int{2}}); err == nil {
		t.Error("single clustering should fail")
	}
	if _, err := DecKMeans(pts, DecKMeansConfig{Ks: []int{2, 0}}); err == nil {
		t.Error("zero K should fail")
	}
	if _, err := DecKMeans(pts, DecKMeansConfig{Ks: []int{2, 2}, Lambda: -1}); err == nil {
		t.Error("negative lambda should fail")
	}
}

func TestCAMIFindsDecorrelatedPair(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(2, 30)
	res, err := CAMI(ds.Points, CAMIConfig{K1: 2, K2: 2, Mu: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// MI between the two solutions must be small.
	if res.MutualInfo > 0.15 {
		t.Errorf("CAMI solutions correlated: soft MI=%v", res.MutualInfo)
	}
	// Both natural views should be covered by the pair.
	bestH := math.Max(metrics.AdjustedRand(hor, res.Clustering1.Labels), metrics.AdjustedRand(hor, res.Clustering2.Labels))
	bestV := math.Max(metrics.AdjustedRand(ver, res.Clustering1.Labels), metrics.AdjustedRand(ver, res.Clustering2.Labels))
	if bestH < 0.7 || bestV < 0.7 {
		t.Errorf("views not both covered: hor=%v ver=%v", bestH, bestV)
	}
}

func TestCAMIMuReducesMI(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(4, 30)
	loose, err := CAMI(ds.Points, CAMIConfig{K1: 2, K2: 2, Mu: 0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := CAMI(ds.Points, CAMIConfig{K1: 2, K2: 2, Mu: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if tight.MutualInfo > loose.MutualInfo+1e-9 {
		t.Errorf("Mu should reduce MI: mu=0 -> %v, mu=10 -> %v", loose.MutualInfo, tight.MutualInfo)
	}
}

func TestCAMIErrors(t *testing.T) {
	if _, err := CAMI(nil, CAMIConfig{K1: 2, K2: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := CAMI(pts, CAMIConfig{K1: 0, K2: 2}); err == nil {
		t.Error("K1=0 should fail")
	}
	if _, err := CAMI(pts, CAMIConfig{K1: 2, K2: 2, Mu: -1}); err == nil {
		t.Error("negative Mu should fail")
	}
}

func TestContingencyUniformity(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(3, 20)
	res, err := Contingency(ds.Points, ContingencyConfig{K1: 2, K2: 2, Gamma: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The two solutions should be near-independent.
	if nmi := metrics.NMI(res.Clustering1.Labels, res.Clustering2.Labels); nmi > 0.3 {
		t.Errorf("solutions correlated: NMI=%v", nmi)
	}
	if res.Uniformity < 0.9 {
		t.Errorf("uniformity = %v", res.Uniformity)
	}
	// Quality preserved: each solution matches one of the natural views
	// reasonably well.
	bestH := math.Max(metrics.AdjustedRand(hor, res.Clustering1.Labels), metrics.AdjustedRand(hor, res.Clustering2.Labels))
	bestV := math.Max(metrics.AdjustedRand(ver, res.Clustering1.Labels), metrics.AdjustedRand(ver, res.Clustering2.Labels))
	if bestH < 0.6 || bestV < 0.6 {
		t.Errorf("prototype quality lost: hor=%v ver=%v", bestH, bestV)
	}
}

func TestContingencyErrors(t *testing.T) {
	if _, err := Contingency(nil, ContingencyConfig{K1: 2, K2: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}}
	if _, err := Contingency(pts, ContingencyConfig{K1: 0, K2: 2}); err == nil {
		t.Error("K1=0 should fail")
	}
	if _, err := Contingency(pts, ContingencyConfig{K1: 2, K2: 2, Gamma: -1}); err == nil {
		t.Error("negative Gamma should fail")
	}
}
