package simultaneous

import (
	"reflect"
	"testing"

	"multiclust/internal/dataset"
)

// Same-seed replay for the simultaneous paradigm: two runs with an
// identical config must produce byte-identical clusterings, objectives and
// prototypes. Exact comparison is deliberate — this is the guarantee the
// internal/lint analyzers protect.

func TestDecKMeansSameSeedReplay(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(1, 25)
	cfg := DecKMeansConfig{Ks: []int{2, 2}, Seed: 2}
	a, err := DecKMeans(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DecKMeans(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("DecKMeans: identical config produced different results across runs")
	}
}

func TestCAMISameSeedReplay(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(2, 30)
	cfg := CAMIConfig{K1: 2, K2: 2, Mu: 10, Seed: 1}
	a, err := CAMI(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CAMI(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("CAMI: identical config produced different results across runs")
	}
}

func TestContingencySameSeedReplay(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(3, 25)
	cfg := ContingencyConfig{K1: 2, K2: 2, Seed: 4}
	a, err := Contingency(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Contingency(ds.Points, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("Contingency: identical config produced different results across runs")
	}
}
