package simultaneous

import (
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// ContingencyConfig controls the disparate-clusterings run.
type ContingencyConfig struct {
	K1, K2   int
	Gamma    float64 // uniformity weight, default 1
	MaxIter  int     // sweeps, default 40
	Restarts int     // default 3
	Seed     int64
}

// ContingencyResult holds two prototype-based clusterings with a near-uniform
// contingency table.
type ContingencyResult struct {
	Clustering1, Clustering2 *core.Clustering
	Prototypes1, Prototypes2 [][]float64
	Uniformity               float64 // 1 - normalized deviation from independence
	SSE                      float64 // combined prototype SSE (quality term)
}

// Contingency implements the disparate-clustering idea of Hossain et al.
// (2010, slide 44): represent both clusterings by prototypes — which keeps
// them meaningful — and drive the contingency table between them toward the
// uniform (independent) profile. The joint objective minimized is
//
//	J = SSE_1 + SSE_2 + Gamma * n * sum_ij (p_ij - p_i q_j)^2
//
// via restarted first-improvement label moves with prototype re-estimation
// after each sweep.
func Contingency(points [][]float64, cfg ContingencyConfig) (*ContingencyResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K1 <= 0 || cfg.K2 <= 0 || cfg.K1 > n || cfg.K2 > n {
		return nil, fmt.Errorf("simultaneous: invalid K1=%d K2=%d", cfg.K1, cfg.K2)
	}
	if cfg.Gamma < 0 {
		return nil, fmt.Errorf("simultaneous: negative Gamma")
	}
	if cfg.Gamma == 0 {
		cfg.Gamma = 1
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 40
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 3
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	var best *ContingencyResult
	bestJ := math.Inf(1)
	for r := 0; r < cfg.Restarts; r++ {
		res, j := contingencyOnce(points, cfg, rng)
		if j < bestJ {
			best, bestJ = res, j
		}
	}
	return best, nil
}

func contingencyOnce(points [][]float64, cfg ContingencyConfig, rng *rand.Rand) (*ContingencyResult, float64) {
	n := len(points)
	d := len(points[0])
	l1 := make([]int, n)
	l2 := make([]int, n)
	for i := range l1 {
		l1[i] = rng.Intn(cfg.K1)
		l2[i] = rng.Intn(cfg.K2)
	}
	protos := func(lab []int, k int) [][]float64 {
		p := make([][]float64, k)
		counts := make([]float64, k)
		for c := range p {
			p[c] = make([]float64, d)
		}
		for i, x := range points {
			c := lab[i]
			counts[c]++
			for j, v := range x {
				p[c][j] += v
			}
		}
		for c := range p {
			if counts[c] > 0 {
				for j := range p[c] {
					p[c][j] /= counts[c]
				}
			} else {
				copy(p[c], points[rng.Intn(n)])
			}
		}
		return p
	}
	sse := func(lab []int, p [][]float64) float64 {
		var s float64
		for i, x := range points {
			s += dist.SqEuclidean(x, p[lab[i]])
		}
		return s
	}
	devFromIndependence := func() float64 {
		counts := make([][]float64, cfg.K1)
		for c := range counts {
			counts[c] = make([]float64, cfg.K2)
		}
		row := make([]float64, cfg.K1)
		col := make([]float64, cfg.K2)
		for i := range l1 {
			counts[l1[i]][l2[i]]++
			row[l1[i]]++
			col[l2[i]]++
		}
		var dev float64
		nn := float64(n)
		for a := 0; a < cfg.K1; a++ {
			for b := 0; b < cfg.K2; b++ {
				p := counts[a][b] / nn
				diff := p - (row[a]/nn)*(col[b]/nn)
				dev += diff * diff
			}
		}
		return dev
	}

	p1 := protos(l1, cfg.K1)
	p2 := protos(l2, cfg.K2)
	objective := func() float64 {
		return sse(l1, p1) + sse(l2, p2) + cfg.Gamma*float64(n)*devFromIndependence()
	}
	j := objective()
	for iter := 0; iter < cfg.MaxIter; iter++ {
		improved := false
		for i := 0; i < n; i++ {
			// Try moving object i in clustering 1.
			orig := l1[i]
			bestC, bestJ := orig, j
			for c := 0; c < cfg.K1; c++ {
				if c == orig {
					continue
				}
				l1[i] = c
				if cand := objective(); cand < bestJ-1e-12 {
					bestC, bestJ = c, cand
				}
			}
			l1[i] = bestC
			if bestC != orig {
				j = bestJ
				improved = true
			}
			// And in clustering 2.
			orig = l2[i]
			bestC, bestJ = orig, j
			for c := 0; c < cfg.K2; c++ {
				if c == orig {
					continue
				}
				l2[i] = c
				if cand := objective(); cand < bestJ-1e-12 {
					bestC, bestJ = c, cand
				}
			}
			l2[i] = bestC
			if bestC != orig {
				j = bestJ
				improved = true
			}
		}
		p1 = protos(l1, cfg.K1)
		p2 = protos(l2, cfg.K2)
		j = objective()
		if !improved {
			break
		}
	}
	maxDev := 1.0 // crude bound; uniformity reported relative to it
	res := &ContingencyResult{
		Clustering1: core.NewClustering(append([]int(nil), l1...)),
		Clustering2: core.NewClustering(append([]int(nil), l2...)),
		Prototypes1: p1,
		Prototypes2: p2,
		Uniformity:  1 - devFromIndependence()/maxDev,
		SSE:         sse(l1, p1) + sse(l2, p2),
	}
	return res, j
}
