// Package simultaneous implements the "no given knowledge, simultaneous
// computation" paradigm of the tutorial's section 2: decorrelated k-means
// (Jain, Meka & Dhillon 2008), the generative CAMI model (Dang & Bailey
// 2010a), and the contingency-table uniformity approach (Hossain et al.
// 2010). All three optimize one combined objective
//
//	maximize  sum_i Q(Clust_i) + sum_{i!=j} Diss(Clust_i, Clust_j)
//
// instead of extracting alternatives one at a time (slide 39).
package simultaneous

import (
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/linalg"
)

// DecKMeansConfig controls decorrelated k-means.
type DecKMeansConfig struct {
	Ks       []int   // cluster count of each of the T clusterings (len >= 2)
	Lambda   float64 // decorrelation weight (slide 41); default n, so the penalty competes with the SSE term
	MaxIter  int     // default 100
	Restarts int     // random initializations, best (lowest) objective wins; default 4
	Seed     int64
	Tol      float64 // relative objective tolerance, default 1e-7
}

// DecKMeansResult holds the T simultaneous clusterings.
type DecKMeansResult struct {
	Clusterings     []*core.Clustering
	Representatives [][][]float64 // [t][cluster][dim], in original coordinates
	Means           [][][]float64 // cluster means (alphas/betas of the paper)
	Objective       float64       // final value of G (lower is better)
	Iterations      int
}

// DecKMeans minimizes the Jain et al. (2008) objective
//
//	G = sum_t sum_{x in C_t,i} ||x - r_t,i||^2
//	  + lambda * sum_{t != t'} sum_{i,j} (mean_{t',j}^T r_t,i)^2
//
// by alternating nearest-representative assignment with the closed-form
// representative update (n_i I + lambda * B_t) r = sum of members, where B_t
// is the outer-product sum of the *other* clusterings' means. Data is
// centered internally, as the decorrelation term assumes.
func DecKMeans(points [][]float64, cfg DecKMeansConfig) (*DecKMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if len(cfg.Ks) < 2 {
		return nil, fmt.Errorf("simultaneous: DecKMeans needs at least 2 clusterings, got %d", len(cfg.Ks))
	}
	for _, k := range cfg.Ks {
		if k <= 0 || k > n {
			return nil, fmt.Errorf("simultaneous: invalid cluster count %d", k)
		}
	}
	if cfg.Lambda < 0 {
		return nil, fmt.Errorf("simultaneous: negative Lambda")
	}
	if cfg.Lambda == 0 {
		// The SSE term scales with n while the representative penalty does
		// not; defaulting Lambda to n keeps the two comparable, matching the
		// regime the paper's experiments operate in.
		cfg.Lambda = float64(n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-7
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	d := len(points[0])

	// Center the data.
	center := make([]float64, d)
	for _, p := range points {
		linalg.Axpy(1, p, center)
	}
	linalg.ScaleVec(1/float64(n), center)
	x := make([][]float64, n)
	for i, p := range points {
		x[i] = linalg.SubVec(p, center)
	}

	var best *DecKMeansResult
	for r := 0; r < cfg.Restarts; r++ {
		res := decKMeansOnce(x, center, cfg, cfg.Seed+int64(r)*7919)
		if best == nil || res.Objective < best.Objective {
			best = res
		}
	}
	return best, nil
}

// decKMeansOnce runs one random initialization of the alternating scheme.
func decKMeansOnce(x [][]float64, center []float64, cfg DecKMeansConfig, seed int64) *DecKMeansResult {
	n := len(x)
	d := len(x[0])
	T := len(cfg.Ks)
	rng := rand.New(rand.NewSource(seed))
	reps := make([][][]float64, T)
	for t, k := range cfg.Ks {
		reps[t] = make([][]float64, k)
		perm := rng.Perm(n)
		for c := 0; c < k; c++ {
			reps[t][c] = append([]float64(nil), x[perm[c%n]]...)
		}
	}
	labels := make([][]int, T)
	means := make([][][]float64, T)

	assign := func() {
		for t := range reps {
			lab := make([]int, n)
			for i, xi := range x {
				best, bestD := 0, math.Inf(1)
				for c, r := range reps[t] {
					if dd := dist.SqEuclidean(xi, r); dd < bestD {
						best, bestD = c, dd
					}
				}
				lab[i] = best
			}
			labels[t] = lab
		}
	}
	computeMeans := func() {
		for t, k := range cfg.Ks {
			m := make([][]float64, k)
			counts := make([]float64, k)
			for c := range m {
				m[c] = make([]float64, d)
			}
			for i, xi := range x {
				c := labels[t][i]
				counts[c]++
				linalg.Axpy(1, xi, m[c])
			}
			for c := range m {
				if counts[c] > 0 {
					linalg.ScaleVec(1/counts[c], m[c])
				}
			}
			means[t] = m
		}
	}
	objective := func() float64 {
		var g float64
		for t := range reps {
			for i, xi := range x {
				g += dist.SqEuclidean(xi, reps[t][labels[t][i]])
			}
		}
		for t := range reps {
			for u := range reps {
				if t == u {
					continue
				}
				for _, r := range reps[t] {
					for _, mu := range means[u] {
						ip := linalg.Dot(mu, r)
						g += cfg.Lambda * ip * ip
					}
				}
			}
		}
		return g
	}

	prev := math.Inf(1)
	var obj float64
	iter := 0
	for ; iter < cfg.MaxIter; iter++ {
		assign()
		computeMeans()
		// Representative update per clustering t: solve
		// (n_c I + lambda*B_t) r = sum_{x in cluster}
		for t, k := range cfg.Ks {
			b := linalg.NewMatrix(d, d)
			for u := range means {
				if u == t {
					continue
				}
				for _, mu := range means[u] {
					b.OuterInto(cfg.Lambda, mu, mu)
				}
			}
			sums := make([][]float64, k)
			counts := make([]float64, k)
			for c := range sums {
				sums[c] = make([]float64, d)
			}
			for i, xi := range x {
				c := labels[t][i]
				counts[c]++
				linalg.Axpy(1, xi, sums[c])
			}
			for c := 0; c < k; c++ {
				if counts[c] == 0 {
					// Dead representative: re-seed at a random point.
					reps[t][c] = append([]float64(nil), x[rng.Intn(n)]...)
					continue
				}
				a := b.Clone()
				for j := 0; j < d; j++ {
					a.Data[j*d+j] += counts[c]
				}
				r, err := linalg.Solve(a, sums[c])
				if err != nil {
					// Singular system cannot occur for counts>0 (diagonal
					// dominance), but fall back to the mean defensively.
					r = append([]float64(nil), sums[c]...)
					linalg.ScaleVec(1/counts[c], r)
				}
				reps[t][c] = r
			}
		}
		obj = objective()
		if math.Abs(prev-obj) <= cfg.Tol*(1+math.Abs(obj)) {
			break
		}
		prev = obj
	}
	assign()
	computeMeans()

	res := &DecKMeansResult{Objective: obj, Iterations: iter}
	for t := range labels {
		res.Clusterings = append(res.Clusterings, core.NewClustering(labels[t]))
		// Shift representatives and means back to original coordinates.
		rr := make([][]float64, len(reps[t]))
		mm := make([][]float64, len(means[t]))
		for c := range reps[t] {
			rr[c] = linalg.AddVec(reps[t][c], center)
		}
		for c := range means[t] {
			mm[c] = linalg.AddVec(means[t][c], center)
		}
		res.Representatives = append(res.Representatives, rr)
		res.Means = append(res.Means, mm)
	}
	return res
}
