package simultaneous

import (
	"fmt"
	"math"

	"multiclust/internal/core"
	"multiclust/internal/em"
	"multiclust/internal/kmeans"
	"multiclust/internal/stats"
)

// CAMIConfig controls the CAMI run.
type CAMIConfig struct {
	K1, K2   int     // component counts of the two mixtures
	Mu       float64 // mutual-information penalty weight (slide 43), default 5
	MaxIter  int     // default 100
	Restarts int     // default 6; the best penalized objective wins
	Seed     int64
	MinVar   float64 // variance floor, default 1e-6
	Tol      float64 // relative objective tolerance, default 1e-6
}

// CAMIResult holds the two decorrelated mixture clusterings.
type CAMIResult struct {
	Clustering1, Clustering2 *core.Clustering
	Model1, Model2           *em.Model
	LogLik1, LogLik2         float64
	MutualInfo               float64 // soft I(C1;C2) in nats at convergence
	Objective                float64 // L1 + L2 - Mu*n*I
	Iterations               int
}

// CAMI fits two Gaussian mixture models simultaneously, maximizing
//
//	L(Theta1) + L(Theta2) - Mu * n * I(C1; C2)
//
// (Dang & Bailey 2010a). The mutual information between the two clusterings
// is evaluated on the smoothed soft joint p(c1,c2) = (1/n) sum_x
// post1[x] post2[x]^T, and each mixture's E-step carries the penalty
// gradient term exp(-Mu * sum_j post_other[x][j] * log(p_cj/(p_c q_j))), so
// assignments that would correlate the clusterings are suppressed — a
// coordinate-ascent scheme on the penalized variational objective. Several
// restarts are taken and the best penalized objective kept, since the
// objective is non-convex and EM pairs can lock onto the same structure.
func CAMI(points [][]float64, cfg CAMIConfig) (*CAMIResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K1 <= 0 || cfg.K2 <= 0 || cfg.K1 > n || cfg.K2 > n {
		return nil, fmt.Errorf("simultaneous: invalid K1=%d K2=%d", cfg.K1, cfg.K2)
	}
	if cfg.Mu < 0 {
		return nil, fmt.Errorf("simultaneous: negative Mu")
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 200
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 6
	}
	if cfg.MinVar <= 0 {
		cfg.MinVar = 1e-6
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-6
	}

	var best *CAMIResult
	for r := 0; r < cfg.Restarts; r++ {
		var m1, m2 *em.Model
		if r == 0 {
			// First restart: both models from k-means fits (different
			// seeds), the strongest unpenalized starting point.
			m1 = kmeansModel(points, cfg.K1, cfg.Seed, cfg.MinVar)
			m2 = kmeansModel(points, cfg.K2, cfg.Seed+7919, cfg.MinVar)
		} else {
			m1 = em.RandomModel(points, cfg.K1, cfg.Seed+int64(2*r))
			m2 = em.RandomModel(points, cfg.K2, cfg.Seed+int64(2*r+1))
		}
		res := camiOnce(points, m1, m2, cfg)
		if best == nil || res.Objective > best.Objective {
			best = res
		}
	}
	return best, nil
}

func camiOnce(points [][]float64, m1, m2 *em.Model, cfg CAMIConfig) *CAMIResult {
	n := len(points)
	post1 := newPost(n, cfg.K1)
	post2 := newPost(n, cfg.K2)
	em.EStep(points, m1, post1, cfg.MinVar)
	em.EStep(points, m2, post2, cfg.MinVar)

	prevObj := math.Inf(-1)
	res := &CAMIResult{}
	// The penalty weight is annealed in over the first sweeps: a full-strength
	// MI penalty from a correlated start either oscillates or collapses a
	// mixture to one effective component (a degenerate zero-MI solution),
	// while a gently increasing penalty lets the pair decorrelate first.
	const annealIters = 60
	for iter := 0; iter < cfg.MaxIter; iter++ {
		mu := cfg.Mu
		if iter < annealIters {
			mu = cfg.Mu * float64(iter+1) / annealIters
		}
		ll1 := penalizedEStep(points, m1, post1, post2, mu, cfg.MinVar)
		em.MStep(points, post1, m1, cfg.MinVar)
		ll2 := penalizedEStep(points, m2, post2, post1, mu, cfg.MinVar)
		em.MStep(points, post2, m2, cfg.MinVar)

		mi := softMI(post1, post2)
		obj := ll1 + ll2 - cfg.Mu*float64(n)*mi
		res.Iterations = iter + 1
		res.LogLik1, res.LogLik2, res.MutualInfo, res.Objective = ll1, ll2, mi, obj
		if math.Abs(obj-prevObj) <= cfg.Tol*(1+math.Abs(obj)) {
			break
		}
		prevObj = obj
	}
	res.Model1, res.Model2 = m1, m2
	res.Clustering1 = em.Harden(post1)
	res.Clustering2 = em.Harden(post2)
	return res
}

// kmeansModel builds a diagonal GMM from a k-means fit.
func kmeansModel(points [][]float64, k int, seed int64, minVar float64) *em.Model {
	km, err := kmeans.Run(points, kmeans.Config{K: k, Seed: seed, Restarts: 3})
	if err != nil {
		return em.RandomModel(points, k, seed)
	}
	d := len(points[0])
	m := &em.Model{Pi: make([]float64, k), Means: km.Centers, Vars: make([][]float64, k)}
	counts := make([]float64, k)
	for i, x := range points {
		c := km.Clustering.Labels[i]
		counts[c]++
		if m.Vars[c] == nil {
			m.Vars[c] = make([]float64, d)
		}
		for j, v := range x {
			diff := v - km.Centers[c][j]
			m.Vars[c][j] += diff * diff
		}
	}
	for c := 0; c < k; c++ {
		if m.Vars[c] == nil {
			m.Vars[c] = make([]float64, d)
		}
		for j := range m.Vars[c] {
			if counts[c] > 0 {
				m.Vars[c][j] /= counts[c]
			}
			if m.Vars[c][j] < minVar {
				m.Vars[c][j] = minVar
			}
		}
		m.Pi[c] = (counts[c] + 1) / (float64(len(points)) + float64(k))
	}
	return m
}

func newPost(n, k int) [][]float64 {
	p := make([][]float64, n)
	for i := range p {
		p[i] = make([]float64, k)
	}
	return p
}

// jointSmoothing mixes the soft joint with the uniform table so the MI
// gradient stays bounded even for empty joint cells.
const jointSmoothing = 0.02

// penalizedEStep fills post with MI-penalized responsibilities for model m,
// given the other clustering's current responsibilities, and returns the
// (unpenalized) log-likelihood of the data under m.
func penalizedEStep(points [][]float64, m *em.Model, post, other [][]float64, mu, minVar float64) float64 {
	k := len(m.Pi)
	ko := len(other[0])

	joint, pc, qc := softJoint(post, other)
	// Smooth toward the uniform joint (marginals smoothed consistently).
	uJ := jointSmoothing / float64(k*ko)
	uC := jointSmoothing / float64(k)
	uO := jointSmoothing / float64(ko)
	for c := 0; c < k; c++ {
		for j := 0; j < ko; j++ {
			joint[c][j] = (1-jointSmoothing)*joint[c][j] + uJ
		}
	}
	for c := 0; c < k; c++ {
		pc[c] = (1-jointSmoothing)*pc[c] + uC
	}
	for j := 0; j < ko; j++ {
		qc[j] = (1-jointSmoothing)*qc[j] + uO
	}

	// Pointwise MI penalty: grad[c][j] = log(p_cj / (p_c q_j)).
	grad := make([][]float64, k)
	for c := 0; c < k; c++ {
		grad[c] = make([]float64, ko)
		for j := 0; j < ko; j++ {
			grad[c][j] = math.Log(joint[c][j] / (pc[c] * qc[j]))
		}
	}

	var ll float64
	logp := make([]float64, k)
	for i, x := range points {
		for c := 0; c < k; c++ {
			lw := math.Inf(-1)
			if m.Pi[c] > 0 {
				lw = math.Log(m.Pi[c])
			}
			logp[c] = lw + stats.DiagGaussianLogPDF(x, m.Means[c], m.Vars[c], minVar)
		}
		ll += stats.LogSumExp(logp)
		for c := 0; c < k; c++ {
			var pen float64
			for j := 0; j < ko; j++ {
				pen += other[i][j] * grad[c][j]
			}
			logp[c] -= mu * pen
		}
		lse := stats.LogSumExp(logp)
		for c := 0; c < k; c++ {
			post[i][c] = math.Exp(logp[c] - lse)
		}
	}
	return ll
}

// softJoint returns p(c1,c2), p(c1), p(c2) from two responsibility matrices.
func softJoint(a, b [][]float64) (joint [][]float64, pa, pb []float64) {
	n := len(a)
	ka, kb := len(a[0]), len(b[0])
	joint = make([][]float64, ka)
	for c := range joint {
		joint[c] = make([]float64, kb)
	}
	pa = make([]float64, ka)
	pb = make([]float64, kb)
	inv := 1 / float64(n)
	for i := 0; i < n; i++ {
		for c, av := range a[i] {
			pa[c] += av * inv
			for j, bv := range b[i] {
				joint[c][j] += av * bv * inv
			}
		}
	}
	for i := 0; i < n; i++ {
		for j, bv := range b[i] {
			pb[j] += bv * inv
		}
	}
	return joint, pa, pb
}

// softMI evaluates I(C1;C2) in nats from soft assignments.
func softMI(a, b [][]float64) float64 {
	joint, pa, pb := softJoint(a, b)
	var mi float64
	for c := range joint {
		for j := range joint[c] {
			p := joint[c][j]
			if p <= 1e-15 {
				continue
			}
			mi += p * math.Log(p/(pa[c]*pb[j]))
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}
