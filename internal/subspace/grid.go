// Package subspace implements the subspace-projection paradigm of the
// tutorial's section 4: bottom-up grid methods (CLIQUE, SCHISM), the
// density-based SUBCLU, the projected-clustering baselines PROCLUS and DOC,
// entropy-based subspace search (ENCLUS), and the result-optimization layer
// that turns the redundant set ALL into a meaningful set M (OSCLU, ASCLU,
// STATPC-lite, RESCU-lite).
package subspace

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// Unit is one dense grid cell: an axis-parallel hyper-rectangle defined by
// one interval per relevant dimension, with the objects it holds.
type Unit struct {
	Dims      []int // ascending dimension indices
	Intervals []int // interval index per dimension (parallel to Dims)
	Objects   []int // ascending object indices inside the cell
}

// GridStats reports the work done by the bottom-up lattice search; the
// pruning effectiveness of the apriori monotonicity (slide 71) is
// CandidatesPruned / (CandidatesGenerated + CandidatesPruned).
type GridStats struct {
	CandidatesGenerated int         // candidates whose support was counted
	CandidatesPruned    int         // candidates rejected by the monotonicity check alone
	DenseUnits          int         // total dense units found
	UnitsPerDim         map[int]int // dense units by subspace dimensionality
}

// ThresholdFunc returns the minimum support (as a fraction of the database)
// for a unit of the given dimensionality. CLIQUE uses a constant; SCHISM a
// decreasing function.
type ThresholdFunc func(dim int) float64

// gridConfig is the shared configuration of the lattice search.
type gridConfig struct {
	Xi        int // intervals per dimension
	Threshold ThresholdFunc
	MaxDim    int // cap on subspace dimensionality (<=0: no cap)
}

// denseUnits runs the bottom-up apriori search for dense units over points
// that must already be normalized to [0,1] per dimension.
func denseUnits(points [][]float64, cfg gridConfig) ([]Unit, GridStats, error) {
	n := len(points)
	if n == 0 {
		return nil, GridStats{}, core.ErrEmptyDataset
	}
	d := len(points[0])
	if cfg.Xi < 1 {
		return nil, GridStats{}, errors.New("subspace: Xi must be at least 1")
	}
	if cfg.MaxDim <= 0 || cfg.MaxDim > d {
		cfg.MaxDim = d
	}
	stats := GridStats{UnitsPerDim: map[int]int{}}
	minCount := func(s int) int {
		t := cfg.Threshold(s)
		c := int(t*float64(n) + 0.9999999)
		if c < 1 {
			c = 1
		}
		return c
	}

	// The lattice search is serial, so per-level observations land in
	// deterministic order; obs.Default is resolved once because the miners
	// have no context parameter. The root span wraps the whole bottom-up
	// search, with one child span per lattice level — the level count is a
	// pure function of the data, so the span tree is deterministic.
	rec := obs.Default()
	ctx, endSpan := obs.SpanCtx(context.Background(), rec, "subspace.grid.search")
	defer endSpan()

	// Level 1: one pass over the data per dimension.
	var all []Unit
	level := make(map[string]*Unit)
	func() {
		_, end := obs.SpanCtx(ctx, rec, "subspace.grid.level")
		defer end()
		for j := 0; j < d; j++ {
			buckets := make([][]int, cfg.Xi)
			for i, p := range points {
				b := interval(p[j], cfg.Xi)
				buckets[b] = append(buckets[b], i)
			}
			for b, objs := range buckets {
				stats.CandidatesGenerated++
				if len(objs) >= minCount(1) {
					u := &Unit{Dims: []int{j}, Intervals: []int{b}, Objects: objs}
					level[unitKey(u.Dims, u.Intervals)] = u
				}
			}
		}
	}()
	appendLevel(&all, level, &stats)
	observeLevel(rec, 1, stats, GridStats{})
	prev := level

	for s := 2; s <= cfg.MaxDim && len(prev) > 1; s++ {
		before := stats
		cur := make(map[string]*Unit)
		func() {
			_, end := obs.SpanCtx(ctx, rec, "subspace.grid.level")
			defer end()
			units := make([]*Unit, 0, len(prev))
			for _, u := range prev {
				units = append(units, u)
			}
			sort.Slice(units, func(i, j int) bool {
				return unitKey(units[i].Dims, units[i].Intervals) < unitKey(units[j].Dims, units[j].Intervals)
			})
			mc := minCount(s)
			for i := 0; i < len(units); i++ {
				for j := i + 1; j < len(units); j++ {
					a, b := units[i], units[j]
					if !joinable(a, b) {
						continue
					}
					dims, ivals := joinUnit(a, b)
					key := unitKey(dims, ivals)
					if _, seen := cur[key]; seen {
						continue
					}
					// Apriori prune: every (s-1)-subunit must be dense.
					if !allSubunitsDense(dims, ivals, prev) {
						stats.CandidatesPruned++
						continue
					}
					stats.CandidatesGenerated++
					objs := intersectSorted(a.Objects, b.Objects)
					if len(objs) >= mc {
						cur[key] = &Unit{Dims: dims, Intervals: ivals, Objects: objs}
					}
				}
			}
		}()
		appendLevel(&all, cur, &stats)
		observeLevel(rec, s, stats, before)
		prev = cur
	}
	if rec != nil {
		obs.Count(rec, "subspace.grid.searches", 1)
		obs.Count(rec, "subspace.grid.candidates", int64(stats.CandidatesGenerated))
		obs.Count(rec, "subspace.grid.pruned", int64(stats.CandidatesPruned))
		obs.Count(rec, "subspace.grid.dense_units", int64(stats.DenseUnits))
	}
	return all, stats, nil
}

// observeLevel emits the per-level trajectory of the apriori search — the
// slide-71 pruning curve — as (level, delta) samples. before holds the
// cumulative stats when the level started; UnitsPerDim is keyed by
// dimensionality, so the level's dense-unit count needs no delta.
func observeLevel(rec obs.Recorder, level int, after, before GridStats) {
	if rec == nil {
		return
	}
	obs.Observe(rec, "subspace.grid.level_candidates", level,
		float64(after.CandidatesGenerated-before.CandidatesGenerated))
	obs.Observe(rec, "subspace.grid.level_pruned", level,
		float64(after.CandidatesPruned-before.CandidatesPruned))
	obs.Observe(rec, "subspace.grid.level_dense", level, float64(after.UnitsPerDim[level]))
}

func appendLevel(all *[]Unit, level map[string]*Unit, stats *GridStats) {
	keys := make([]string, 0, len(level))
	for k := range level {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		u := level[k]
		*all = append(*all, *u)
		stats.DenseUnits++
		stats.UnitsPerDim[len(u.Dims)]++
	}
}

// interval maps a normalized coordinate to its grid interval.
func interval(v float64, xi int) int {
	b := int(v * float64(xi))
	if b < 0 {
		b = 0
	}
	if b >= xi {
		b = xi - 1
	}
	return b
}

func unitKey(dims, ivals []int) string {
	key := make([]byte, 0, 8*len(dims))
	for i := range dims {
		key = append(key, []byte(fmt.Sprintf("%d:%d;", dims[i], ivals[i]))...)
	}
	return string(key)
}

// joinable reports whether two s-1 units share their first s-2 (dim,
// interval) pairs and end in different dimensions — the apriori join.
func joinable(a, b *Unit) bool {
	s := len(a.Dims)
	for i := 0; i < s-1; i++ {
		if a.Dims[i] != b.Dims[i] || a.Intervals[i] != b.Intervals[i] {
			return false
		}
	}
	return a.Dims[s-1] != b.Dims[s-1]
}

func joinUnit(a, b *Unit) (dims, ivals []int) {
	s := len(a.Dims)
	dims = append(append([]int(nil), a.Dims...), b.Dims[s-1])
	ivals = append(append([]int(nil), a.Intervals...), b.Intervals[s-1])
	// Keep dims ascending (the last two may be out of order).
	if s >= 1 && dims[s] < dims[s-1] {
		dims[s], dims[s-1] = dims[s-1], dims[s]
		ivals[s], ivals[s-1] = ivals[s-1], ivals[s]
	}
	return dims, ivals
}

// allSubunitsDense checks the monotonicity condition: all (s-1)-dimensional
// projections of the candidate must themselves be dense.
func allSubunitsDense(dims, ivals []int, prev map[string]*Unit) bool {
	s := len(dims)
	subDims := make([]int, 0, s-1)
	subIvals := make([]int, 0, s-1)
	for drop := 0; drop < s; drop++ {
		subDims = subDims[:0]
		subIvals = subIvals[:0]
		for i := 0; i < s; i++ {
			if i == drop {
				continue
			}
			subDims = append(subDims, dims[i])
			subIvals = append(subIvals, ivals[i])
		}
		if _, ok := prev[unitKey(subDims, subIvals)]; !ok {
			return false
		}
	}
	return true
}

func intersectSorted(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// GridCluster is a subspace cluster assembled from adjacent dense units; it
// keeps the unit count and grid resolution so statistical selectors
// (STATPC) can compute the region's volume under the uniform null.
type GridCluster struct {
	core.SubspaceCluster
	Units int // dense units merged into this cluster
	Xi    int // grid resolution the units were found at
}

// unitsToClusters merges adjacent dense units per subspace into clusters
// (CLIQUE's cluster definition: connected dense units).
func unitsToClusters(units []Unit, xi int) []GridCluster {
	// Group units by subspace.
	bySub := map[string][]int{}
	subDims := map[string][]int{}
	for i, u := range units {
		k := fmt.Sprint(u.Dims)
		bySub[k] = append(bySub[k], i)
		subDims[k] = u.Dims
	}
	keys := make([]string, 0, len(bySub))
	for k := range bySub {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var out []GridCluster
	for _, k := range keys {
		idxs := bySub[k]
		// Union-find over adjacent units.
		parent := make([]int, len(idxs))
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			if parent[x] != x {
				parent[x] = find(parent[x])
			}
			return parent[x]
		}
		for i := 0; i < len(idxs); i++ {
			for j := i + 1; j < len(idxs); j++ {
				if adjacentUnits(&units[idxs[i]], &units[idxs[j]]) {
					parent[find(i)] = find(j)
				}
			}
		}
		comps := map[int][]int{}
		for i := range idxs {
			r := find(i)
			comps[r] = append(comps[r], idxs[i])
		}
		roots := make([]int, 0, len(comps))
		for r := range comps {
			roots = append(roots, r)
		}
		sort.Ints(roots)
		for _, r := range roots {
			objSet := map[int]bool{}
			for _, ui := range comps[r] {
				for _, o := range units[ui].Objects {
					objSet[o] = true
				}
			}
			objs := make([]int, 0, len(objSet))
			for o := range objSet {
				objs = append(objs, o)
			}
			sort.Ints(objs)
			out = append(out, GridCluster{
				SubspaceCluster: core.NewSubspaceCluster(objs, subDims[k]),
				Units:           len(comps[r]),
				Xi:              xi,
			})
		}
	}
	return out
}

// adjacentUnits reports whether two units of the same subspace share a face:
// intervals equal everywhere except one dimension where they differ by 1.
func adjacentUnits(a, b *Unit) bool {
	diff := 0
	for i := range a.Dims {
		d := a.Intervals[i] - b.Intervals[i]
		if d == 0 {
			continue
		}
		if d == 1 || d == -1 {
			diff++
			if diff > 1 {
				return false
			}
			continue
		}
		return false
	}
	return diff == 1
}

// Clusters converts grid clusters to the shared result type.
func Clusters(gcs []GridCluster) core.SubspaceClustering {
	out := make(core.SubspaceClustering, len(gcs))
	for i, g := range gcs {
		out[i] = g.SubspaceCluster
	}
	return out
}
