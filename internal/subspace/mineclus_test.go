package subspace

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestMineClusFindsProjectiveClusters(t *testing.T) {
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 60, Width: 0.08},
	}
	ds, truth, err := dataset.SubspaceData(5, 200, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineClus(ds.Points, MineClusConfig{W: 0.06, Alpha: 0.15, Beta: 0.25, MaxClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.7 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	if shared := res.Clusters[0].SharedDims(truth[0]); shared < 2 {
		t.Errorf("planted dims recovered %d/3", shared)
	}
	if len(res.Quality) != len(res.Clusters) {
		t.Error("quality bookkeeping inconsistent")
	}
}

func TestMineClusDeterministicVsDOCShape(t *testing.T) {
	// On the same data and parameters, MineClus (deterministic itemset
	// growth) should find a cluster at least as high-quality as DOC's
	// random search, measured by the shared mu function.
	ds, _, err := dataset.SubspaceData(6, 150, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 50, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MineClus(ds.Points, MineClusConfig{W: 0.06, Alpha: 0.1, Seed: 3, MaxClusters: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DOC(ds.Points, DOCConfig{W: 0.06, Alpha: 0.1, Seed: 3, MaxClusters: 1, OuterTrials: 5, InnerTrials: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(mc.Quality) == 0 {
		t.Fatal("MineClus found nothing")
	}
	if len(doc.Quality) > 0 && mc.Quality[0] < doc.Quality[0]*0.5 {
		t.Errorf("MineClus quality %v far below DOC %v", mc.Quality[0], doc.Quality[0])
	}
}

func TestMineClusDisjoint(t *testing.T) {
	ds, _, err := dataset.SubspaceData(7, 150, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 50, Width: 0.08},
		{Dims: []int{2, 3}, Size: 50, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineClus(ds.Points, MineClusConfig{W: 0.06, Alpha: 0.1, Seed: 1, MaxClusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, o := range c.Objects {
			if seen[o] {
				t.Fatalf("object %d in two clusters", o)
			}
			seen[o] = true
		}
	}
}

func TestMineClusErrors(t *testing.T) {
	if _, err := MineClus(nil, MineClusConfig{W: 0.1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := MineClus([][]float64{{0}}, MineClusConfig{W: 0}); err == nil {
		t.Error("W=0 should fail")
	}
}
