package subspace

import (
	"errors"
	"fmt"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/stats"
)

// EnclusConfig controls entropy-based subspace search (Cheng, Fu & Zhang
// 1999, slides 88–89).
type EnclusConfig struct {
	Xi          int     // grid intervals per dimension, default 8
	MaxEntropy  float64 // omega: subspaces with H(S) <= omega (bits) are interesting
	MinInterest float64 // epsilon: minimum interest (total correlation, bits), default 0
	MaxDim      int     // cap on subspace dimensionality
}

// SubspaceScore is one ranked subspace.
type SubspaceScore struct {
	Dims     []int
	Entropy  float64 // H(S) in bits
	Interest float64 // sum_d H({d}) - H(S) in bits (total correlation)
}

// Enclus ranks subspaces by grid entropy: a low-entropy subspace has most of
// its mass in few cells — high coverage, high density, correlated
// dimensions — exactly the tutorial's criteria for an interesting subspace.
// Candidate generation is bottom-up with the monotonicity
// H(S) <= H(S ∪ {d}): once a subspace exceeds MaxEntropy every superset
// does too, so it is pruned. Subspace clustering proper is then run on the
// surviving subspaces by the caller (the decoupled "subspace search"
// pipeline of slide 88).
func Enclus(points [][]float64, cfg EnclusConfig) ([]SubspaceScore, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Xi == 0 {
		cfg.Xi = 8
	}
	if cfg.Xi < 1 {
		return nil, errors.New("subspace: Xi must be positive")
	}
	if cfg.MaxEntropy <= 0 {
		return nil, errors.New("subspace: MaxEntropy must be positive")
	}
	d := len(points[0])
	if cfg.MaxDim <= 0 || cfg.MaxDim > d {
		cfg.MaxDim = d
	}

	entropyOf := func(dims []int) float64 {
		cells := map[string]float64{}
		var key []byte
		for _, p := range points {
			key = key[:0]
			for _, j := range dims {
				key = append(key, byte(interval(p[j], cfg.Xi)))
			}
			cells[string(key)]++
		}
		// Entropy2 sums floats; visit cells in sorted-key order so the
		// result does not wobble with map-iteration order between runs.
		keys := make([]string, 0, len(cells))
		for k := range cells {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		w := make([]float64, 0, len(cells))
		for _, k := range keys {
			w = append(w, cells[k])
		}
		return stats.Entropy2(w)
	}

	singles := make([]float64, d)
	var out []SubspaceScore
	level := map[string][]int{}
	for j := 0; j < d; j++ {
		h := entropyOf([]int{j})
		singles[j] = h
		if h <= cfg.MaxEntropy {
			level[fmt.Sprint([]int{j})] = []int{j}
			out = append(out, SubspaceScore{Dims: []int{j}, Entropy: h, Interest: 0})
		}
	}

	for s := 2; s <= cfg.MaxDim && len(level) > 1; s++ {
		next := map[string][]int{}
		keys := make([]string, 0, len(level))
		for k := range level {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				dims, ok := joinDims(level[keys[i]], level[keys[j]])
				if !ok {
					continue
				}
				key := fmt.Sprint(dims)
				if _, seen := next[key]; seen {
					continue
				}
				// Monotonicity prune: all subsets must be interesting.
				if !allDimSubsetsPresent(dims, level) {
					continue
				}
				h := entropyOf(dims)
				if h > cfg.MaxEntropy {
					continue
				}
				var sumSingles float64
				for _, dd := range dims {
					sumSingles += singles[dd]
				}
				interest := sumSingles - h
				if interest < cfg.MinInterest {
					continue
				}
				next[key] = dims
				out = append(out, SubspaceScore{Dims: dims, Entropy: h, Interest: interest})
			}
		}
		level = next
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Entropy != out[j].Entropy {
			return out[i].Entropy < out[j].Entropy
		}
		return fmt.Sprint(out[i].Dims) < fmt.Sprint(out[j].Dims)
	})
	return out, nil
}

func allDimSubsetsPresent(dims []int, level map[string][]int) bool {
	sub := make([]int, 0, len(dims)-1)
	for drop := range dims {
		sub = sub[:0]
		for i, d := range dims {
			if i != drop {
				sub = append(sub, d)
			}
		}
		if _, ok := level[fmt.Sprint(sub)]; !ok {
			return false
		}
	}
	return true
}
