package subspace

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"multiclust/internal/core"
)

// MineClusConfig controls a MineClus run (Yiu & Mamoulis 2003, slide 72).
type MineClusConfig struct {
	W           float64 // half-width of the cluster box per relevant dimension
	Alpha       float64 // minimum cluster size as a fraction of n, default 0.1
	Beta        float64 // size/dimensionality trade-off in (0,0.5], default 0.25
	MaxClusters int     // default 10
	Medoids     int     // medoid pivots tried per cluster, default 2/alpha
	Seed        int64
}

// MineClusResult carries the projective clusters and their qualities.
type MineClusResult struct {
	Clusters core.SubspaceClustering
	Quality  []float64
}

// MineClus is the frequent-pattern reformulation of DOC: around a pivot
// medoid p every point maps to the itemset of dimensions on which it lies
// within W of p, and the best projective cluster corresponds to the itemset
// maximizing mu(support, |itemset|) = support * (1/Beta)^|itemset|. The
// itemset search greedily grows the dimension set in support order,
// admitting a dimension only when it improves mu while the support stays
// above Alpha*n — the deterministic replacement for DOC's random
// discriminating sets. Found clusters are removed and the hunt repeats.
func MineClus(points [][]float64, cfg MineClusConfig) (*MineClusResult, error) {
	return MineClusContext(context.Background(), points, cfg)
}

// MineClusContext is MineClus with cancellation: ctx is polled at each
// cluster-hunt boundary (every discovered cluster is complete), returning
// the clusters found so far wrapped in core.ErrInterrupted. With a
// background context the output is byte-identical to MineClus.
func MineClusContext(ctx context.Context, points [][]float64, cfg MineClusConfig) (*MineClusResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.W <= 0 {
		return nil, errors.New("subspace: W must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.1
	}
	if cfg.Beta <= 0 || cfg.Beta > 0.5 {
		cfg.Beta = 0.25
	}
	if cfg.MaxClusters <= 0 {
		cfg.MaxClusters = 10
	}
	if cfg.Medoids <= 0 {
		cfg.Medoids = int(2/cfg.Alpha) + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	minSize := int(cfg.Alpha * float64(n))
	if minSize < 2 {
		minSize = 2
	}
	res := &MineClusResult{}

	for len(res.Clusters) < cfg.MaxClusters && len(active) >= minSize {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("subspace: mineclus interrupted: %v: %w", err, core.ErrInterrupted)
		}
		var bestObjs, bestDims []int
		bestQ := -1.0
		for m := 0; m < cfg.Medoids; m++ {
			p := points[active[rng.Intn(len(active))]]
			objs, dims, q := bestItemset(points, active, p, cfg.W, cfg.Beta, minSize)
			if q > bestQ {
				bestObjs, bestDims, bestQ = objs, dims, q
			}
		}
		if bestObjs == nil {
			break
		}
		res.Clusters = append(res.Clusters, core.NewSubspaceCluster(bestObjs, bestDims))
		res.Quality = append(res.Quality, bestQ)
		inCluster := map[int]bool{}
		for _, o := range bestObjs {
			inCluster[o] = true
		}
		var rest []int
		for _, o := range active {
			if !inCluster[o] {
				rest = append(rest, o)
			}
		}
		active = rest
	}
	return res, nil
}

// bestItemset finds, for pivot p, the dimension set maximizing
// mu = support * (1/beta)^|dims| subject to support >= minSize, by a
// greedy-then-improve search over dimensions ordered by support.
func bestItemset(points [][]float64, active []int, p []float64, w, beta float64, minSize int) (objs, dims []int, quality float64) {
	d := len(p)
	// Transaction sets: which active objects fall within w of p per dim.
	within := make([][]bool, d)
	supports := make([]int, d)
	for j := 0; j < d; j++ {
		within[j] = make([]bool, len(active))
		for ai, o := range active {
			if math.Abs(points[o][j]-p[j]) <= w {
				within[j][ai] = true
				supports[j]++
			}
		}
	}
	order := make([]int, d)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return supports[order[a]] > supports[order[b]] })

	gain := 1 / beta
	// Greedy: add dims in support order while the quality improves and the
	// support constraint holds.
	current := make([]bool, len(active))
	for i := range current {
		current[i] = true
	}
	count := len(active)
	var chosen []int
	bestQ := -1.0
	var bestDims []int
	var bestMask []bool
	for _, j := range order {
		// Support after adding dim j.
		newCount := 0
		for ai := range current {
			if current[ai] && within[j][ai] {
				newCount++
			}
		}
		if newCount < minSize {
			continue
		}
		// Quality gain test: adding j multiplies by gain and scales support.
		newQ := float64(newCount) * math.Pow(gain, float64(len(chosen)+1))
		curQ := float64(count) * math.Pow(gain, float64(len(chosen)))
		if len(chosen) > 0 && newQ <= curQ {
			continue
		}
		for ai := range current {
			current[ai] = current[ai] && within[j][ai]
		}
		count = newCount
		chosen = append(chosen, j)
		if q := float64(count) * math.Pow(gain, float64(len(chosen))); q > bestQ {
			bestQ = q
			bestDims = append([]int(nil), chosen...)
			bestMask = append([]bool(nil), current...)
		}
	}
	if bestDims == nil {
		return nil, nil, -1
	}
	for ai, in := range bestMask {
		if in {
			objs = append(objs, active[ai])
		}
	}
	sort.Ints(bestDims)
	return objs, bestDims, bestQ
}
