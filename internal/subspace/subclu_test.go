package subspace

import (
	"math"
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestSubcluFindsPlantedClusters(t *testing.T) {
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 50, Width: 0.06},
		{Dims: []int{3, 4}, Size: 40, Width: 0.06},
	}
	ds, truth, err := dataset.SubspaceData(1, 160, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Subclu(ds.Points, SubcluConfig{Eps: 0.05, MinPts: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.75 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	if res.SubspacesExamined == 0 || res.SubspacesWithClust == 0 {
		t.Error("bookkeeping missing")
	}
}

func TestSubcluArbitraryShape(t *testing.T) {
	// A ring living in dims {0,1} of a 4D dataset with uniform noise dims:
	// grid methods shatter the ring, SUBCLU keeps it as one cluster.
	ring, _ := dataset.RingAndBlob(2, 200, 0)
	n := ring.N()
	pts := make([][]float64, n)
	// Scale the ring into [0,1]^2 and append 2 noise dims.
	for i, p := range ring.Points {
		pts[i] = []float64{
			(p[0] + 1.5) / 3, (p[1] + 1.5) / 3,
			float64(i%17) / 17, float64(i%23) / 23,
		}
	}
	res, err := Subclu(pts, SubcluConfig{Eps: 0.06, MinPts: 4, MaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find the cluster in subspace {0,1} covering most ring points.
	best := 0
	for _, c := range res.Clusters {
		if len(c.Dims) == 2 && c.Dims[0] == 0 && c.Dims[1] == 1 && c.Size() > best {
			best = c.Size()
		}
	}
	if best < 180 {
		t.Errorf("ring not kept whole: best {0,1} cluster holds %d/200", best)
	}
}

func TestSubcluErrors(t *testing.T) {
	if _, err := Subclu(nil, SubcluConfig{Eps: 0.1, MinPts: 3}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0.1, 0.2}}
	if _, err := Subclu(pts, SubcluConfig{Eps: 0, MinPts: 3}); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := Subclu(pts, SubcluConfig{Eps: 0.1, MinPts: 0}); err == nil {
		t.Error("minPts=0 should fail")
	}
}

func TestProclusRecoversProjectedClusters(t *testing.T) {
	// Two disjoint projected clusters in different subspaces; PROCLUS is a
	// partitioning method, so make the object sets disjoint.
	objsA := make([]int, 60)
	objsB := make([]int, 60)
	for i := range objsA {
		objsA[i] = i
		objsB[i] = 60 + i
	}
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.08, Objects: objsA},
		{Dims: []int{2, 3}, Size: 60, Width: 0.08, Objects: objsB},
	}
	ds, truth, err := dataset.SubspaceData(3, 120, 5, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Proclus(ds.Points, ProclusConfig{K: 2, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K() != 2 {
		t.Fatalf("K = %d", res.Assignment.K())
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.7 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	// Dimension recovery: each found cluster's dims should overlap its
	// matched truth cluster's dims.
	if dp := metrics.SubspaceDimPrecision(truth, res.Clusters); dp < 0.4 {
		t.Errorf("dim precision = %v", dp)
	}
}

func TestProclusSinglePartition(t *testing.T) {
	// The tutorial's point (slide 66): PROCLUS yields ONE clustering — each
	// object in at most one cluster.
	ds, _, err := dataset.SubspaceData(4, 80, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 30, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Proclus(ds.Points, ProclusConfig{K: 3, L: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, c := range res.Clusters {
		for _, o := range c.Objects {
			seen[o]++
			if seen[o] > 1 {
				t.Fatalf("object %d in multiple projected clusters", o)
			}
		}
	}
}

func TestProclusErrors(t *testing.T) {
	if _, err := Proclus(nil, ProclusConfig{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Proclus([][]float64{{0, 0}}, ProclusConfig{K: 5}); err == nil {
		t.Error("K>n should fail")
	}
}

func TestDOCFindsProjectiveCluster(t *testing.T) {
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 60, Width: 0.08},
	}
	ds, truth, err := dataset.SubspaceData(5, 200, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DOC(ds.Points, DOCConfig{W: 0.06, Alpha: 0.15, Beta: 0.25, MaxClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.7 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	// First cluster's relevant dims should include the planted ones.
	shared := res.Clusters[0].SharedDims(truth[0])
	if shared < 2 {
		t.Errorf("planted dims poorly recovered: %d shared", shared)
	}
	if len(res.Quality) != len(res.Clusters) {
		t.Error("quality bookkeeping inconsistent")
	}
	for i := 1; i < len(res.Quality); i++ {
		if math.IsNaN(res.Quality[i]) {
			t.Error("NaN quality")
		}
	}
}

func TestDOCDisjointGreedy(t *testing.T) {
	ds, _, err := dataset.SubspaceData(6, 150, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 50, Width: 0.08},
		{Dims: []int{2, 3}, Size: 50, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DOC(ds.Points, DOCConfig{W: 0.06, Alpha: 0.1, Seed: 3, MaxClusters: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Greedy removal: returned clusters must be disjoint.
	seen := map[int]bool{}
	for _, c := range res.Clusters {
		for _, o := range c.Objects {
			if seen[o] {
				t.Fatalf("object %d in two DOC clusters", o)
			}
			seen[o] = true
		}
	}
}

func TestDOCErrors(t *testing.T) {
	if _, err := DOC(nil, DOCConfig{W: 0.1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := DOC([][]float64{{0}}, DOCConfig{W: 0}); err == nil {
		t.Error("W=0 should fail")
	}
}
