package subspace

import (
	"reflect"
	"testing"

	"multiclust/internal/dataset"
)

// Same-seed replay: two runs with an identical config must produce
// byte-identical results — the invariant the internal/lint suite
// (maporder/globalrand/sharedrng) enforces statically. reflect.DeepEqual
// compares every label, member list, dimension set and float exactly: any
// map-order or global-RNG leak shows up as a diff here.

func projectedData(t *testing.T) ([][]float64, []int) {
	t.Helper()
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 60, Width: 0.08},
		{Dims: []int{3, 4}, Size: 50, Width: 0.08},
	}
	ds, _, err := dataset.SubspaceData(5, 200, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	return ds.Points, nil
}

func TestProclusSameSeedReplay(t *testing.T) {
	pts, _ := projectedData(t)
	cfg := ProclusConfig{K: 3, L: 2, Seed: 7}
	a, err := Proclus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Proclus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("PROCLUS: identical config produced different results across runs")
	}
}

func TestOrclusSameSeedReplay(t *testing.T) {
	pts, _ := orientedClusters(3, 50)
	cfg := OrclusConfig{K: 2, L: 3, Seed: 9}
	a, err := Orclus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Orclus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("ORCLUS: identical config produced different results across runs")
	}
}

func TestDOCSameSeedReplay(t *testing.T) {
	pts, _ := projectedData(t)
	cfg := DOCConfig{W: 0.06, Alpha: 0.1, Seed: 11, MaxClusters: 3, OuterTrials: 5, InnerTrials: 16}
	a, err := DOC(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DOC(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("DOC: identical config produced different results across runs")
	}
}

func TestMineClusSameSeedReplay(t *testing.T) {
	pts, _ := projectedData(t)
	cfg := MineClusConfig{W: 0.06, Alpha: 0.1, Beta: 0.25, MaxClusters: 3, Seed: 13}
	a, err := MineClus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MineClus(pts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("MineClus: identical config produced different results across runs")
	}
}
