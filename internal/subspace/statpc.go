package subspace

import (
	"errors"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/stats"
)

// StatPCConfig controls the statistical cluster selection.
type StatPCConfig struct {
	// AlphaSig is the significance level: a candidate is significant when
	// the Chernoff bound on observing its support under the uniform null is
	// below AlphaSig. Default 1e-4.
	AlphaSig float64
	// ExplainOverlap: a candidate is explained by a selected cluster when at
	// least this fraction of its objects is already covered by one selected
	// cluster whose subspace overlaps. Default 0.5.
	ExplainOverlap float64
	// N is the database size (required, > 0).
	N int
}

// StatPCResult pairs the selected clusters with their null-model p-value
// bounds.
type StatPCResult struct {
	Clusters core.SubspaceClustering
	PValues  []float64
}

// StatPC is a reduced-form STATPC (Moise & Sander 2008, slide 78): from the
// redundant candidate set, keep clusters whose support is statistically
// significant under a uniform-data null model and that are not explained by
// the clusters already selected. Candidates are processed in ascending
// p-value order, so the most surprising regions anchor the explanation set.
//
// Deviation from the original: the null model is pure uniform (the original
// refits a mixture over the current selection), and "explained" is an
// object/dimension overlap test rather than a second significance test;
// both simplifications preserve the selection behaviour the tutorial
// discusses — a small set of representative, non-redundant clusters that
// explains all other clustered regions.
func StatPC(candidates []GridCluster, cfg StatPCConfig) (*StatPCResult, error) {
	if cfg.N <= 0 {
		return nil, errors.New("subspace: StatPC needs the database size N")
	}
	if cfg.AlphaSig == 0 {
		cfg.AlphaSig = 1e-4
	}
	if cfg.AlphaSig < 0 || cfg.AlphaSig >= 1 {
		return nil, errors.New("subspace: AlphaSig must be in (0,1)")
	}
	if cfg.ExplainOverlap == 0 {
		cfg.ExplainOverlap = 0.5
	}

	type scored struct {
		idx int
		p   float64
	}
	var scoredCands []scored
	for i, c := range candidates {
		if c.Xi <= 0 || c.Units <= 0 {
			continue
		}
		// Volume of the region under the uniform null: Units cells of side
		// 1/Xi in |Dims| dimensions.
		vol := float64(c.Units) * math.Pow(1/float64(c.Xi), float64(c.Dimensionality()))
		if vol > 1 {
			vol = 1
		}
		p := stats.BinomialTailUpper(cfg.N, c.Size(), vol)
		if p <= cfg.AlphaSig {
			scoredCands = append(scoredCands, scored{idx: i, p: p})
		}
	}
	sort.SliceStable(scoredCands, func(a, b int) bool {
		if scoredCands[a].p != scoredCands[b].p {
			return scoredCands[a].p < scoredCands[b].p
		}
		return candidates[scoredCands[a].idx].Size() > candidates[scoredCands[b].idx].Size()
	})

	res := &StatPCResult{}
	for _, sc := range scoredCands {
		c := candidates[sc.idx]
		if explained(c.SubspaceCluster, res.Clusters, cfg.ExplainOverlap) {
			continue
		}
		res.Clusters = append(res.Clusters, c.SubspaceCluster)
		res.PValues = append(res.PValues, sc.p)
	}
	return res, nil
}

// explained reports whether at least overlap of c's objects are covered by a
// single selected cluster sharing subspace dimensions with c.
func explained(c core.SubspaceCluster, selected core.SubspaceClustering, overlap float64) bool {
	for _, k := range selected {
		if c.SharedDims(k) == 0 {
			continue
		}
		if float64(c.SharedObjects(k)) >= overlap*float64(c.Size()) {
			return true
		}
	}
	return false
}

// RescuConfig controls the relevance-based selection.
type RescuConfig struct {
	// MinCoverageGain in (0,1]: a cluster joins the result only if at least
	// this fraction of its objects is not covered by ANY selected cluster
	// (regardless of subspace) — the global redundancy rule. Default 0.3.
	MinCoverageGain float64
	// Local ranks candidates; default DefaultIlocal.
	Local Ilocal
}

// Rescu is a reduced-form RESCU (Müller et al. 2009c, slide 79): an
// abstract relevance model that admits interesting clusters and excludes
// globally redundant ones. It differs from OSCLU in ignoring subspace
// similarity — redundancy is judged on object overlap alone — which is
// exactly the limitation the tutorial points out ("does not include
// similarity of subspaces").
func Rescu(all core.SubspaceClustering, cfg RescuConfig) (core.SubspaceClustering, error) {
	if cfg.MinCoverageGain == 0 {
		cfg.MinCoverageGain = 0.3
	}
	if cfg.MinCoverageGain < 0 || cfg.MinCoverageGain > 1 {
		return nil, errors.New("subspace: MinCoverageGain must be in (0,1]")
	}
	if cfg.Local == nil {
		cfg.Local = DefaultIlocal
	}
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Local(all[order[a]]) > cfg.Local(all[order[b]])
	})
	covered := map[int]bool{}
	var selected core.SubspaceClustering
	for _, idx := range order {
		c := all[idx]
		if c.Size() == 0 {
			continue
		}
		fresh := 0
		for _, o := range c.Objects {
			if !covered[o] {
				fresh++
			}
		}
		if float64(fresh) < cfg.MinCoverageGain*float64(c.Size()) {
			continue
		}
		selected = append(selected, c)
		for _, o := range c.Objects {
			covered[o] = true
		}
	}
	return selected, nil
}
