package subspace

import (
	"errors"
	"math"

	"multiclust/internal/core"
)

// DuscConfig controls dimensionality-unbiased density-based subspace
// clustering (Assent et al. 2007, tutorial slide 77).
type DuscConfig struct {
	Eps float64 // neighbourhood radius
	// Alpha is the density factor: an object is core when its
	// eps-neighbourhood holds at least Alpha times the count EXPECTED under
	// a uniform distribution at that dimensionality. Default 2. Note that
	// the SUBCLU search still prunes bottom-up, so Alpha must also be
	// satisfiable at 1D, where clusters are diluted by noise projections.
	Alpha  float64
	MaxDim int
	// MinPtsFloor keeps the derived threshold from collapsing below a sane
	// absolute minimum. Default 4.
	MinPtsFloor int
}

// Dusc runs the SUBCLU search with DUSC's dimensionality-unbiased density
// threshold: the fixed MinPts of plain density-based subspace clustering is
// biased — the volume of the eps-ball shrinks exponentially with the
// subspace dimensionality, so a constant threshold over-selects in low
// dimensions and starves high ones. DUSC replaces it with
//
//	minPts(s) = max(floor, Alpha * n * vol(eps-ball in s dims))
//
// so "dense" always means "Alpha times denser than uniform", independent of
// the subspace dimensionality. Points are expected in [0,1]^d.
func Dusc(points [][]float64, cfg DuscConfig) (*SubcluResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 {
		return nil, errors.New("subspace: Eps must be positive")
	}
	if cfg.Alpha <= 0 {
		cfg.Alpha = 2
	}
	if cfg.MinPtsFloor <= 0 {
		cfg.MinPtsFloor = 4
	}
	minPtsAt := func(s int) int {
		vol := math.Pow(math.Pi, float64(s)/2) / math.Gamma(float64(s)/2+1)
		vol *= math.Pow(cfg.Eps, float64(s))
		if vol > 1 {
			vol = 1
		}
		m := int(math.Ceil(cfg.Alpha * float64(n) * vol))
		if m < cfg.MinPtsFloor {
			m = cfg.MinPtsFloor
		}
		return m
	}
	return Subclu(points, SubcluConfig{
		Eps:      cfg.Eps,
		MinPts:   cfg.MinPtsFloor,
		MaxDim:   cfg.MaxDim,
		MinPtsAt: minPtsAt,
	})
}
