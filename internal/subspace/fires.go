package subspace

import (
	"errors"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dbscan"
)

// FiresConfig controls the approximate subspace clustering.
type FiresConfig struct {
	Eps    float64 // 1D DBSCAN radius for the base clusters
	MinPts int     // 1D DBSCAN core threshold
	// MergeOverlap in (0,1]: two base clusters merge when their object-set
	// Jaccard similarity reaches this value. Default 0.5.
	MergeOverlap float64
	// MinSize drops merged clusters smaller than this. Default MinPts.
	MinSize int
}

// FiresResult carries the approximate subspace clusters and the 1D base
// clusters they were assembled from.
type FiresResult struct {
	Clusters     core.SubspaceClustering
	BaseClusters core.SubspaceClustering // the 1D building blocks
}

// Fires implements the FIRES framework (Kriegel et al. 2005, tutorial slide
// 74) in its generic form: compute cheap one-dimensional base clusters
// (DBSCAN per dimension), then approximate the maximal-dimensional subspace
// clusters by merging base clusters whose OBJECT sets strongly overlap —
// objects clustered together along several dimensions are, with high
// probability, a subspace cluster in the union of those dimensions. The
// result is approximate (no exhaustive lattice search), trading recall for
// a runtime linear in the number of dimensions.
func Fires(points [][]float64, cfg FiresConfig) (*FiresResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("subspace: Eps and MinPts must be positive")
	}
	if cfg.MergeOverlap <= 0 || cfg.MergeOverlap > 1 {
		cfg.MergeOverlap = 0.5
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = cfg.MinPts
	}
	d := len(points[0])

	res := &FiresResult{}
	// Base clusters: DBSCAN in every single dimension.
	for j := 0; j < d; j++ {
		col := make([][]float64, n)
		for i, p := range points {
			col[i] = []float64{p[j]}
		}
		// nil distance: grid-indexed Euclidean — the per-dimension base
		// clusterings are 1-d, the grid's best case.
		c, err := dbscan.Run(col, nil, dbscan.Config{Eps: cfg.Eps, MinPts: cfg.MinPts})
		if err != nil {
			return nil, err
		}
		for _, members := range c.Clusters() {
			res.BaseClusters = append(res.BaseClusters, core.NewSubspaceCluster(members, []int{j}))
		}
	}

	// Merge phase: union-find over base clusters with Jaccard >= threshold.
	nb := len(res.BaseClusters)
	parent := make([]int, nb)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for i := 0; i < nb; i++ {
		for j := i + 1; j < nb; j++ {
			a, b := res.BaseClusters[i], res.BaseClusters[j]
			if a.Dims[0] == b.Dims[0] {
				continue // same dimension: alternatives, never merged
			}
			inter := float64(a.SharedObjects(b))
			union := float64(a.Size()+b.Size()) - inter
			if union > 0 && inter/union >= cfg.MergeOverlap {
				parent[find(i)] = find(j)
			}
		}
	}
	groups := map[int][]int{}
	for i := 0; i < nb; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	for _, r := range roots {
		members := groups[r]
		// Cluster objects: those present in the majority of the merged base
		// clusters (robust intersection).
		counts := map[int]int{}
		dimSet := map[int]bool{}
		for _, bi := range members {
			for _, o := range res.BaseClusters[bi].Objects {
				counts[o]++
			}
			dimSet[res.BaseClusters[bi].Dims[0]] = true
		}
		need := (len(members) + 1) / 2
		var objs []int
		for o, c := range counts {
			if c >= need {
				objs = append(objs, o)
			}
		}
		sort.Ints(objs)
		if len(objs) < cfg.MinSize {
			continue
		}
		var dims []int
		for dim := range dimSet {
			dims = append(dims, dim)
		}
		sort.Ints(dims)
		res.Clusters = append(res.Clusters, core.NewSubspaceCluster(objs, dims))
	}
	return res, nil
}
