package subspace

import (
	"testing"
	"testing/quick"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestCliqueFindsPlantedClusters(t *testing.T) {
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.08},
		{Dims: []int{3, 4}, Size: 50, Width: 0.08},
	}
	ds, truth, err := dataset.SubspaceData(1, 200, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clique(ds.Points, CliqueConfig{Xi: 10, Tau: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters found")
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.8 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	// The planted subspaces must appear among found dimension sets.
	foundDims := map[string]bool{}
	for _, c := range res.Clusters {
		foundDims[dimsKey(c.Dims)] = true
	}
	if !foundDims["[0 1]"] || !foundDims["[3 4]"] {
		t.Errorf("planted subspaces missing: %v", foundDims)
	}
}

func dimsKey(d []int) string {
	s := "["
	for i, v := range d {
		if i > 0 {
			s += " "
		}
		s += itoa(v)
	}
	return s + "]"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestCliquePruningEffective(t *testing.T) {
	ds, _, err := dataset.SubspaceData(2, 150, 8, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 50, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clique(ds.Points, CliqueConfig{Xi: 8, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	// The naive lattice has xi^s cells per subspace and 2^8 subspaces; the
	// apriori search must examine far fewer candidates.
	naive := 1 << 8 * 8 * 8 // loose lower bound on naive cell count
	if res.Stats.CandidatesGenerated >= naive {
		t.Errorf("apriori examined %d candidates, naive bound %d", res.Stats.CandidatesGenerated, naive)
	}
	if res.Stats.DenseUnits == 0 {
		t.Error("no dense units")
	}
}

func TestCliqueMonotonicityInvariant(t *testing.T) {
	// Property (slide 71): every dense unit's projection onto any subset of
	// its dimensions is dense. Verify support counts are monotone: each
	// (s)-dim unit's object count <= any (s-1)-projection's count. Since the
	// search stores all dense units we can check containment directly.
	ds, _, err := dataset.SubspaceData(3, 120, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 40, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clique(ds.Points, CliqueConfig{Xi: 6, Tau: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	index := map[string][]int{}
	for _, u := range res.Units {
		index[unitKey(u.Dims, u.Intervals)] = u.Objects
	}
	for _, u := range res.Units {
		s := len(u.Dims)
		if s == 1 {
			continue
		}
		for drop := 0; drop < s; drop++ {
			var sd, si []int
			for i := 0; i < s; i++ {
				if i != drop {
					sd = append(sd, u.Dims[i])
					si = append(si, u.Intervals[i])
				}
			}
			parent, ok := index[unitKey(sd, si)]
			if !ok {
				t.Fatalf("projection of dense unit not dense: %v/%v", sd, si)
			}
			if len(parent) < len(u.Objects) {
				t.Fatalf("support not monotone: %d > %d", len(u.Objects), len(parent))
			}
		}
	}
}

func TestCliqueErrors(t *testing.T) {
	if _, err := Clique(nil, CliqueConfig{}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0.5, 0.5}}
	if _, err := Clique(pts, CliqueConfig{Xi: -1}); err == nil {
		t.Error("negative Xi should fail")
	}
	if _, err := Clique(pts, CliqueConfig{Tau: 2}); err == nil {
		t.Error("Tau>1 should fail")
	}
}

func TestCliqueObjectInMultipleClusters(t *testing.T) {
	// One object set clustered in two disjoint subspaces: CLIQUE must report
	// the objects in both (slide 70: each object in multiple dense cells).
	objs := make([]int, 40)
	for i := range objs {
		objs[i] = i
	}
	ds, _, err := dataset.SubspaceData(4, 100, 4, []dataset.SubspaceSpec{
		{Dims: []int{0}, Size: 40, Width: 0.08, Objects: objs},
		{Dims: []int{2}, Size: 40, Width: 0.08, Objects: objs},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Clique(ds.Points, CliqueConfig{Xi: 10, Tau: 0.2, MaxDim: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, c := range res.Clusters {
		if containsInt(c.Objects, 0) {
			count++
		}
	}
	if count < 2 {
		t.Errorf("object 0 should appear in clusters of both subspaces, got %d", count)
	}
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func TestSchismRecoversHighDimClusterThatCliqueMisses(t *testing.T) {
	// A 5-dimensional cluster of 100/400 objects on a coarse grid. SCHISM's
	// level-1 threshold is high (expected 1D density 0.5 plus slack), and
	// decreases with dimensionality, so the deep cluster survives. CLIQUE
	// run with that same level-1 threshold at EVERY level misses it —
	// exactly the fixed-threshold starvation of slide 73.
	ds, truth, err := dataset.SubspaceData(1, 400, 8, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2, 3, 4}, Size: 100, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	schism, err := Schism(ds.Points, SchismConfig{Xi: 2, Tau: 0.01, MaxDim: 5})
	if err != nil {
		t.Fatal(err)
	}
	bestDim := func(m []GridCluster) int {
		best := 0
		for _, c := range m {
			if f := float64(c.SharedObjects(truth[0])) / float64(truth[0].Size()); f > 0.8 && len(c.Dims) > best {
				best = len(c.Dims)
			}
		}
		return best
	}
	if got := bestDim(schism.Grid); got < 5 {
		t.Errorf("SCHISM should recover the 5D cluster, best matching dim = %d", got)
	}
	clique, err := Clique(ds.Points, CliqueConfig{Xi: 2, Tau: schism.Threshold(1), MaxDim: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := bestDim(clique.Grid); got >= 5 {
		t.Errorf("fixed-threshold CLIQUE should miss the 5D cluster, found dim %d", got)
	}
	// The defining property: the threshold decreases with dimensionality.
	if schism.Threshold(1) <= schism.Threshold(5) {
		t.Error("SCHISM threshold must decrease with dimensionality")
	}
}

func TestSchismErrors(t *testing.T) {
	if _, err := Schism(nil, SchismConfig{}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0.5}}
	if _, err := Schism(pts, SchismConfig{Tau: 1.5}); err == nil {
		t.Error("invalid Tau should fail")
	}
}

// Property: intersectSorted returns a sorted subset of both inputs.
func TestQuickIntersectSorted(t *testing.T) {
	f := func(a, b []uint8) bool {
		sa := uniqueSortedInts(a)
		sb := uniqueSortedInts(b)
		got := intersectSorted(sa, sb)
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				return false
			}
		}
		for _, v := range got {
			if !containsInt(sa, v) || !containsInt(sb, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func uniqueSortedInts(v []uint8) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range v {
		seen[int(x)] = true
	}
	for x := 0; x < 256; x++ {
		if seen[x] {
			out = append(out, x)
		}
	}
	return out
}

func TestAdjacentUnits(t *testing.T) {
	a := &Unit{Dims: []int{0, 1}, Intervals: []int{2, 3}}
	b := &Unit{Dims: []int{0, 1}, Intervals: []int{2, 4}}
	if !adjacentUnits(a, b) {
		t.Error("face-sharing units should be adjacent")
	}
	c := &Unit{Dims: []int{0, 1}, Intervals: []int{3, 4}}
	if adjacentUnits(a, c) {
		t.Error("diagonal units are not adjacent")
	}
	d := &Unit{Dims: []int{0, 1}, Intervals: []int{2, 3}}
	if adjacentUnits(a, d) {
		t.Error("identical units are not adjacent")
	}
}
