package subspace

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
)

// OrclusConfig controls an ORCLUS run (Aggarwal & Yu 2000, slide 66).
type OrclusConfig struct {
	K       int // final number of clusters
	L       int // final subspace dimensionality per cluster
	K0      int // initial seed count, default 5*K
	Seed    int64
	Alpha   float64 // cluster-count decay per merge phase, default 0.5
	MaxIter int     // assignment/recompute rounds per phase, default 5
}

// OrclusCluster is one arbitrarily oriented projected cluster: objects plus
// the orthonormal basis (columns) of the low-variance subspace the cluster
// lives in.
type OrclusCluster struct {
	Objects []int
	Basis   *linalg.Matrix // d × l, columns = least-spread eigenvectors
	Center  []float64
}

// OrclusResult is the fitted model.
type OrclusResult struct {
	Clusters   []OrclusCluster
	Assignment *core.Clustering
	Energy     float64 // mean squared projected distance to assigned centers
}

// Orclus finds arbitrarily ORiented projected CLUSters: unlike the
// axis-parallel methods, each cluster's subspace is the span of the
// lowest-variance eigenvectors of its own covariance, so correlation
// structure (clusters spread along arbitrary directions) is captured.
// The algorithm interleaves k-means-style assignment in each cluster's
// current subspace with eigen-recomputation, while progressively merging
// seeds (k0 -> K) and shrinking dimensionality (d -> L), as in the paper.
func Orclus(points [][]float64, cfg OrclusConfig) (*OrclusResult, error) {
	return OrclusContext(context.Background(), points, cfg)
}

// OrclusContext is Orclus with cancellation: ctx is polled at each phase
// boundary (after the assignment/recompute rounds, before the merge work).
// On interruption the current centers and bases — valid from the very first
// phase — are finalized into a complete assignment and returned wrapped in
// core.ErrInterrupted. With a background context the output is
// byte-identical to Orclus.
func OrclusContext(ctx context.Context, points [][]float64, cfg OrclusConfig) (*OrclusResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, errors.New("subspace: invalid K")
	}
	d := len(points[0])
	if cfg.L <= 0 || cfg.L > d {
		return nil, errors.New("subspace: invalid L")
	}
	if cfg.K0 <= 0 {
		cfg.K0 = 5 * cfg.K
	}
	if cfg.K0 > n {
		cfg.K0 = n
	}
	if cfg.K0 < cfg.K {
		cfg.K0 = cfg.K
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = 0.5
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// State: current centers and per-cluster bases.
	kc := cfg.K0
	lc := d
	perm := rng.Perm(n)
	centers := make([][]float64, kc)
	for c := 0; c < kc; c++ {
		centers[c] = append([]float64(nil), points[perm[c]]...)
	}
	bases := make([]*linalg.Matrix, kc)
	for c := range bases {
		bases[c] = linalg.Identity(d) // full space initially
	}

	assign := func() [][]int {
		groups := make([][]int, len(centers))
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if dd := projectedSqDist(p, centers[c], bases[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			groups[best] = append(groups[best], i)
		}
		return groups
	}
	recompute := func(groups [][]int, l int) {
		for c, members := range groups {
			if len(members) == 0 {
				centers[c] = append([]float64(nil), points[rng.Intn(n)]...)
				bases[c] = linalg.Identity(d)
				continue
			}
			centers[c] = meanOf(points, members)
			bases[c] = lowVarianceBasis(points, members, l)
		}
	}

	var interrupted error
	for {
		// Iterate assignment + recomputation at the current (kc, lc).
		var groups [][]int
		for it := 0; it < cfg.MaxIter; it++ {
			groups = assign()
			recompute(groups, lc)
			if err := ctx.Err(); err != nil {
				interrupted = err
				break
			}
		}
		if kc == cfg.K && lc == cfg.L {
			break
		}
		// Phase-boundary cancellation: skip the remaining merge phases and
		// finalize at the current cluster count.
		if interrupted != nil {
			break
		}
		// Decay cluster count and dimensionality together, as in the paper:
		// knew = max(K, alpha*kc); l moves halfway toward its target L.
		knew := int(math.Max(float64(cfg.K), math.Floor(cfg.Alpha*float64(kc))))
		lnew := (lc + cfg.L) / 2
		if lnew < cfg.L {
			lnew = cfg.L
		}
		// Merge the closest center pairs (by projected energy of the union)
		// until knew remain.
		groups = assign()
		for len(centers) > knew {
			bi, bj, bestE := -1, -1, math.Inf(1)
			for i := 0; i < len(centers); i++ {
				for j := i + 1; j < len(centers); j++ {
					union := append(append([]int(nil), groups[i]...), groups[j]...)
					if len(union) == 0 {
						bi, bj, bestE = i, j, 0
						continue
					}
					ctr := meanOf(points, union)
					basis := lowVarianceBasis(points, union, lnew)
					var e float64
					for _, o := range union {
						e += projectedSqDist(points[o], ctr, basis)
					}
					e /= float64(len(union))
					if e < bestE {
						bi, bj, bestE = i, j, e
					}
				}
			}
			merged := append(append([]int(nil), groups[bi]...), groups[bj]...)
			groups[bi] = merged
			if len(merged) > 0 {
				centers[bi] = meanOf(points, merged)
				bases[bi] = lowVarianceBasis(points, merged, lnew)
			}
			groups = append(groups[:bj], groups[bj+1:]...)
			centers = append(centers[:bj], centers[bj+1:]...)
			bases = append(bases[:bj], bases[bj+1:]...)
		}
		kc = len(centers)
		lc = lnew
	}

	groups := assign()
	labels := make([]int, n)
	res := &OrclusResult{}
	var energy float64
	for c, members := range groups {
		for _, o := range members {
			labels[o] = c
			energy += projectedSqDist(points[o], centers[c], bases[c])
		}
		res.Clusters = append(res.Clusters, OrclusCluster{
			Objects: append([]int(nil), members...),
			Basis:   bases[c],
			Center:  centers[c],
		})
	}
	res.Assignment = core.NewClustering(labels)
	res.Energy = energy / float64(n)
	if interrupted != nil {
		return res, fmt.Errorf("subspace: orclus interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return res, nil
}

// projectedSqDist is the squared distance between p and center measured in
// the subspace spanned by the basis columns.
func projectedSqDist(p, center []float64, basis *linalg.Matrix) float64 {
	var s float64
	for c := 0; c < basis.Cols; c++ {
		var proj float64
		for r := 0; r < basis.Rows; r++ {
			proj += (p[r] - center[r]) * basis.At(r, c)
		}
		s += proj * proj
	}
	return s
}

func meanOf(points [][]float64, members []int) []float64 {
	d := len(points[0])
	mean := make([]float64, d)
	for _, o := range members {
		linalg.Axpy(1, points[o], mean)
	}
	linalg.ScaleVec(1/float64(len(members)), mean)
	return mean
}

// lowVarianceBasis returns the l eigenvectors of the members' covariance
// with the SMALLEST eigenvalues — the directions in which the cluster is
// tight, which define its projected subspace.
func lowVarianceBasis(points [][]float64, members []int, l int) *linalg.Matrix {
	d := len(points[0])
	if l >= d {
		return linalg.Identity(d)
	}
	rows := make([][]float64, len(members))
	for i, o := range members {
		rows[i] = points[o]
	}
	m, err := linalg.FromRows(rows)
	if err != nil {
		return linalg.Identity(d)
	}
	cov, _ := linalg.Covariance(m)
	eig, err := linalg.SymEigen(cov)
	if err != nil {
		return linalg.Identity(d)
	}
	// Eigenvalues are sorted descending; take the LAST l columns.
	basis := linalg.NewMatrix(d, l)
	for c := 0; c < l; c++ {
		src := d - l + c
		for r := 0; r < d; r++ {
			basis.Set(r, c, eig.Vectors.At(r, src))
		}
	}
	return basis
}
