package subspace

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dbscan"
	"multiclust/internal/obs"
)

// SubcluConfig controls a SUBCLU run (Kailing et al. 2004b, slide 74).
type SubcluConfig struct {
	Eps    float64 // DBSCAN radius (in the subspace distance)
	MinPts int     // DBSCAN core threshold
	MaxDim int     // cap on subspace dimensionality (<=0: data dimensionality)
	// MinPtsAt optionally overrides MinPts per subspace dimensionality —
	// the hook DUSC uses for its dimensionality-unbiased density threshold.
	MinPtsAt func(dim int) int
}

// SubcluResult carries the density-connected subspace clusters and the
// subspaces examined.
type SubcluResult struct {
	Clusters           core.SubspaceClustering
	SubspacesExamined  int
	SubspacesWithClust int
}

// Subclu finds density-connected clusters in all subspaces. It exploits the
// anti-monotonicity of density-connected sets: a cluster in subspace S is
// contained in clusters of every subset of S, so candidate subspaces are
// generated apriori-style from subspaces that contained clusters, and each
// DBSCAN run at level k is restricted to the objects clustered in the
// best (smallest) (k-1)-dimensional parent — the paper's main efficiency
// device. Unlike grid methods, arbitrarily shaped clusters survive.
func Subclu(points [][]float64, cfg SubcluConfig) (*SubcluResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("subspace: Eps and MinPts must be positive")
	}
	d := len(points[0])
	if cfg.MaxDim <= 0 || cfg.MaxDim > d {
		cfg.MaxDim = d
	}
	res := &SubcluResult{}

	// The apriori walk over subspaces is serial; the per-level examined
	// counts trace how hard the anti-monotonicity prune is working. The
	// root span wraps the whole walk with one child span per lattice
	// level, and each DBSCAN run receives the level's context so its own
	// span nests beneath the level that dispatched it.
	rec := obs.Default()
	ctx, endSpan := obs.SpanCtx(context.Background(), rec, "subspace.subclu.search")
	defer endSpan()

	// level[subspaceKey] = clusters (object sets) found in that subspace.
	level := map[string]*subInfo{}

	minPtsAt := func(s int) int {
		if cfg.MinPtsAt != nil {
			if v := cfg.MinPtsAt(s); v > 0 {
				return v
			}
		}
		return cfg.MinPts
	}

	runDBSCAN := func(ctx context.Context, dims []int, candidates []int) [][]int {
		// Cluster only the candidate objects, measuring distance in the
		// subspace. Candidate indices are into `points`.
		sub := make([][]float64, len(candidates))
		for i, o := range candidates {
			row := make([]float64, len(dims))
			for j, dim := range dims {
				row[j] = points[o][dim]
			}
			sub[i] = row
		}
		// A nil distance selects the grid-indexed Euclidean neighborhoods:
		// candidate subspaces are low-dimensional by construction, exactly
		// where the uniform grid turns the O(n) region scans into
		// adjacent-cell probes. Labels are identical to the linear scan.
		c, err := dbscan.RunContext(ctx, sub, nil, dbscan.Config{Eps: cfg.Eps, MinPts: minPtsAt(len(dims))})
		if err != nil {
			return nil
		}
		var out [][]int
		for _, members := range c.Clusters() {
			orig := make([]int, len(members))
			for i, m := range members {
				orig[i] = candidates[m]
			}
			out = append(out, orig)
		}
		return out
	}

	// Level 1: every single dimension over the full database.
	allObjects := make([]int, n)
	for i := range allObjects {
		allObjects[i] = i
	}
	func() {
		lctx, end := obs.SpanCtx(ctx, rec, "subspace.subclu.level")
		defer end()
		for j := 0; j < d; j++ {
			res.SubspacesExamined++
			clusters := runDBSCAN(lctx, []int{j}, allObjects)
			if len(clusters) > 0 {
				level[fmt.Sprint([]int{j})] = &subInfo{dims: []int{j}, clusters: clusters}
				res.SubspacesWithClust++
				for _, c := range clusters {
					res.Clusters = append(res.Clusters, core.NewSubspaceCluster(c, []int{j}))
				}
			}
		}
	}()
	obs.Observe(rec, "subspace.subclu.level_examined", 1, float64(res.SubspacesExamined))

	for s := 2; s <= cfg.MaxDim && len(level) > 1; s++ {
		examinedBefore := res.SubspacesExamined
		next := map[string]*subInfo{}
		func() {
			lctx, end := obs.SpanCtx(ctx, rec, "subspace.subclu.level")
			defer end()
			infos := make([]*subInfo, 0, len(level))
			for _, si := range level {
				infos = append(infos, si)
			}
			sort.Slice(infos, func(i, j int) bool { return fmt.Sprint(infos[i].dims) < fmt.Sprint(infos[j].dims) })
			for i := 0; i < len(infos); i++ {
				for j := i + 1; j < len(infos); j++ {
					dims, ok := joinDims(infos[i].dims, infos[j].dims)
					if !ok {
						continue
					}
					key := fmt.Sprint(dims)
					if _, seen := next[key]; seen {
						continue
					}
					// Apriori prune: all (s-1)-subsets must contain clusters.
					if !allSubspacesClustered(dims, level) {
						continue
					}
					// Restrict to the objects of the parent subspace with the
					// fewest clustered objects.
					cand := smallestParentObjects(dims, level)
					res.SubspacesExamined++
					clusters := runDBSCAN(lctx, dims, cand)
					if len(clusters) > 0 {
						next[key] = &subInfo{dims: dims, clusters: clusters}
						res.SubspacesWithClust++
						for _, c := range clusters {
							res.Clusters = append(res.Clusters, core.NewSubspaceCluster(c, dims))
						}
					}
				}
			}
		}()
		obs.Observe(rec, "subspace.subclu.level_examined", s, float64(res.SubspacesExamined-examinedBefore))
		level = next
	}
	if rec != nil {
		obs.Count(rec, "subspace.subclu.runs", 1)
		obs.Count(rec, "subspace.subclu.subspaces_examined", int64(res.SubspacesExamined))
		obs.Count(rec, "subspace.subclu.subspaces_clustered", int64(res.SubspacesWithClust))
	}
	return res, nil
}

// joinDims merges two ascending dim sets sharing all but their last element.
func joinDims(a, b []int) ([]int, bool) {
	s := len(a)
	for i := 0; i < s-1; i++ {
		if a[i] != b[i] {
			return nil, false
		}
	}
	if a[s-1] == b[s-1] {
		return nil, false
	}
	lo, hi := a[s-1], b[s-1]
	if lo > hi {
		lo, hi = hi, lo
	}
	out := append(append([]int(nil), a[:s-1]...), lo, hi)
	return out, true
}

// subInfo records the clusters found in one subspace.
type subInfo struct {
	dims     []int
	clusters [][]int
}

// allSubspacesClustered checks that every (s-1)-subset of dims produced
// clusters at the previous level — the anti-monotonicity prune.
func allSubspacesClustered(dims []int, level map[string]*subInfo) bool {
	sub := make([]int, 0, len(dims)-1)
	for drop := range dims {
		sub = sub[:0]
		for i, d := range dims {
			if i != drop {
				sub = append(sub, d)
			}
		}
		if _, ok := level[fmt.Sprint(sub)]; !ok {
			return false
		}
	}
	return true
}

// smallestParentObjects returns the union of clustered objects of the parent
// subspace (an (s-1)-subset of dims) with the fewest clustered objects.
func smallestParentObjects(dims []int, level map[string]*subInfo) []int {
	bestSize := -1
	var best []int
	sub := make([]int, 0, len(dims)-1)
	for drop := range dims {
		sub = sub[:0]
		for i, d := range dims {
			if i != drop {
				sub = append(sub, d)
			}
		}
		si, ok := level[fmt.Sprint(sub)]
		if !ok {
			continue
		}
		set := map[int]bool{}
		for _, c := range si.clusters {
			for _, o := range c {
				set[o] = true
			}
		}
		if bestSize < 0 || len(set) < bestSize {
			bestSize = len(set)
			best = best[:0]
			for o := range set {
				best = append(best, o)
			}
		}
	}
	sort.Ints(best)
	return best
}
