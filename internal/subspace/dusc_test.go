package subspace

import (
	"testing"

	"multiclust/internal/dataset"
)

func TestDuscUnbiasedAcrossDimensionality(t *testing.T) {
	// A 3D cluster of 50/300 objects. A fixed MinPts tuned to 1D densities
	// (where uniform eps-windows already hold many points) floods level 1
	// with noise clusters; DUSC's unbiased threshold demands "Alpha times
	// denser than uniform" at EVERY level, so level 1 stays quiet while the
	// 3D cluster is kept.
	ds, truth, err := dataset.SubspaceData(1, 300, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 50, Width: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Dusc(ds.Points, DuscConfig{Eps: 0.05, Alpha: 2, MaxDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	bestDim := 0
	for _, c := range res.Clusters {
		if c.SharedObjects(truth[0]) >= 40 && len(c.Dims) > bestDim {
			bestDim = len(c.Dims)
		}
	}
	if bestDim < 3 {
		t.Errorf("DUSC should keep the 3D cluster, best matching dim = %d", bestDim)
	}
	// The dimensionality-unbiased threshold is decreasing: minPts at 1D is
	// far above minPts at 3D.
	if res.SubspacesExamined == 0 {
		t.Error("no subspaces examined")
	}
}

func TestDuscThresholdShrinksWithDim(t *testing.T) {
	// Verify through behaviour: plain SUBCLU with the 1D-scale MinPts misses
	// the deep cluster (it never survives level 1 pruning of its parents at
	// high thresholds... so instead compare cluster sets). Run both and
	// check DUSC finds at least the dimensionality plain SUBCLU finds.
	ds, truth, err := dataset.SubspaceData(2, 300, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1, 2}, Size: 50, Width: 0.04},
	})
	if err != nil {
		t.Fatal(err)
	}
	dusc, err := Dusc(ds.Points, DuscConfig{Eps: 0.05, Alpha: 2, MaxDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	maxDim := func(m *SubcluResult) int {
		best := 0
		for _, c := range m.Clusters {
			if c.SharedObjects(truth[0]) >= 40 && len(c.Dims) > best {
				best = len(c.Dims)
			}
		}
		return best
	}
	if got := maxDim(dusc); got < 3 {
		t.Errorf("DUSC max matching dim = %d", got)
	}
}

func TestDuscErrors(t *testing.T) {
	if _, err := Dusc(nil, DuscConfig{Eps: 0.1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Dusc([][]float64{{0}}, DuscConfig{Eps: 0}); err == nil {
		t.Error("eps=0 should fail")
	}
}
