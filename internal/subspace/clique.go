package subspace

import (
	"errors"

	"multiclust/internal/core"
	"multiclust/internal/stats"
)

// CliqueConfig controls a CLIQUE run (Agrawal et al. 1998, slides 69–71).
type CliqueConfig struct {
	Xi     int     // intervals per dimension, default 10
	Tau    float64 // density threshold as a fraction of n, default 0.02
	MaxDim int     // cap on subspace dimensionality (<=0: data dimensionality)
}

// CliqueResult carries the clusters, the dense units, and search statistics.
type CliqueResult struct {
	Clusters core.SubspaceClustering
	Grid     []GridCluster
	Units    []Unit
	Stats    GridStats
}

// Clique finds all clusters as connected dense grid cells in every subspace,
// pruning the 2^d lattice with the apriori monotonicity: a region dense in S
// is dense in every subset of S, so candidates with a non-dense projection
// are never counted. Points are expected in [0,1]^d (use Dataset.Normalize);
// values outside are clamped into the border cells.
func Clique(points [][]float64, cfg CliqueConfig) (*CliqueResult, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Xi == 0 {
		cfg.Xi = 10
	}
	if cfg.Xi < 1 {
		return nil, errors.New("subspace: Xi must be positive")
	}
	if cfg.Tau == 0 {
		cfg.Tau = 0.02
	}
	if cfg.Tau < 0 || cfg.Tau > 1 {
		return nil, errors.New("subspace: Tau must be in (0,1]")
	}
	units, st, err := denseUnits(points, gridConfig{
		Xi:        cfg.Xi,
		Threshold: func(int) float64 { return cfg.Tau },
		MaxDim:    cfg.MaxDim,
	})
	if err != nil {
		return nil, err
	}
	grid := unitsToClusters(units, cfg.Xi)
	return &CliqueResult{
		Clusters: Clusters(grid),
		Grid:     grid,
		Units:    units,
		Stats:    st,
	}, nil
}

// SchismConfig controls a SCHISM run (Sequeira & Zaki 2004, slides 72–73).
type SchismConfig struct {
	Xi     int     // intervals per dimension, default 10
	Tau    float64 // significance level of the Chernoff–Hoeffding bound, default 0.01
	MaxDim int
}

// SchismResult mirrors CliqueResult; Threshold reports τ(s) per level so the
// decreasing-threshold figure can be regenerated.
type SchismResult struct {
	Clusters  core.SubspaceClustering
	Grid      []GridCluster
	Units     []Unit
	Stats     GridStats
	Threshold func(dim int) float64
}

// Schism runs the grid search with the dimensionality-adaptive support
// threshold τ(s) = (1/ξ)^s + sqrt(ln(1/τ)/(2n)): the expected density of an
// s-dimensional cell under the uniform null plus a Hoeffding slack, so a
// cell is kept only when its support is statistically surprising. Unlike
// CLIQUE's fixed Tau, the threshold decreases with dimensionality, keeping
// high-dimensional clusters that a fixed threshold starves.
func Schism(points [][]float64, cfg SchismConfig) (*SchismResult, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Xi == 0 {
		cfg.Xi = 10
	}
	if cfg.Xi < 1 {
		return nil, errors.New("subspace: Xi must be positive")
	}
	if cfg.Tau == 0 {
		cfg.Tau = 0.01
	}
	if cfg.Tau <= 0 || cfg.Tau >= 1 {
		return nil, errors.New("subspace: Tau must be in (0,1)")
	}
	n := len(points)
	thr := func(s int) float64 { return stats.SchismThreshold(s, cfg.Xi, n, cfg.Tau) }
	units, st, err := denseUnits(points, gridConfig{Xi: cfg.Xi, Threshold: thr, MaxDim: cfg.MaxDim})
	if err != nil {
		return nil, err
	}
	grid := unitsToClusters(units, cfg.Xi)
	return &SchismResult{
		Clusters:  Clusters(grid),
		Grid:      grid,
		Units:     units,
		Stats:     st,
		Threshold: thr,
	}, nil
}
