package subspace

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// ProclusConfig controls a PROCLUS run (Aggarwal et al. 1999, slide 66).
type ProclusConfig struct {
	K            int // number of projected clusters
	L            int // average dimensionality per cluster
	Seed         int64
	MaxIter      int // refinement iterations, default 20
	SampleFactor int // medoid candidate pool = SampleFactor*K, default 5
}

// ProclusResult is a disjoint projected clustering: one (objects, dims) pair
// per cluster plus an outlier set. PROCLUS is the tutorial's example of the
// projected-clustering paradigm: fast, but a single partition — each object
// in at most one cluster — so it cannot express multiple clustering
// solutions (slide 66).
type ProclusResult struct {
	Clusters   core.SubspaceClustering
	Assignment *core.Clustering // label per object; Noise = outlier
	Medoids    []int
	Dims       [][]int // dims chosen per cluster
}

// Proclus runs the k-medoid projected clustering: pick well-scattered
// medoids, select for each medoid the dimensions in which its locality is
// tightest (z-score of per-dimension average distances, at least 2 per
// medoid, K*L in total), assign every object to the medoid minimizing the
// segmental (per-dimension-averaged) Manhattan distance, and iterate by
// replacing the medoid of the worst cluster.
func Proclus(points [][]float64, cfg ProclusConfig) (*ProclusResult, error) {
	return ProclusContext(context.Background(), points, cfg)
}

// ProclusContext is Proclus with cancellation: the refinement loop polls ctx
// after each iteration (the first best assignment exists by then) and
// returns the best-so-far projected clustering wrapped in
// core.ErrInterrupted. With a background context the output is
// byte-identical to Proclus.
func ProclusContext(ctx context.Context, points [][]float64, cfg ProclusConfig) (*ProclusResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, errors.New("subspace: invalid K")
	}
	d := len(points[0])
	if cfg.L < 2 {
		cfg.L = 2
	}
	if cfg.L > d {
		cfg.L = d
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 20
	}
	if cfg.SampleFactor <= 0 {
		cfg.SampleFactor = 5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Candidate medoid pool: greedy farthest-point sampling.
	poolSize := cfg.SampleFactor * cfg.K
	if poolSize > n {
		poolSize = n
	}
	pool := farthestPointSample(points, poolSize, rng)

	medoids := append([]int(nil), pool[:cfg.K]...)
	bestCost := math.Inf(1)
	var best *ProclusResult
	var interrupted error
	for iter := 0; iter < cfg.MaxIter; iter++ {
		dims := chooseDimensions(points, medoids, cfg.L)
		labels, cost := assignSegmental(points, medoids, dims)
		if cost < bestCost {
			bestCost = cost
			best = buildProclusResult(points, medoids, dims, labels)
		}
		// Iteration-boundary cancellation: best holds a full assignment from
		// this iteration at the latest.
		if err := ctx.Err(); err != nil {
			interrupted = err
			break
		}
		// Replace the medoid of the smallest cluster with a random pool
		// candidate (the paper's bad-medoid replacement).
		counts := make([]int, cfg.K)
		for _, l := range labels {
			if l >= 0 {
				counts[l]++
			}
		}
		worst := 0
		for c := range counts {
			if counts[c] < counts[worst] {
				worst = c
			}
		}
		replacement := pool[rng.Intn(len(pool))]
		if containsIdx(medoids, replacement) {
			continue
		}
		trial := append([]int(nil), medoids...)
		trial[worst] = replacement
		tDims := chooseDimensions(points, trial, cfg.L)
		_, tCost := assignSegmental(points, trial, tDims)
		if tCost < cost {
			medoids = trial
		}
	}
	if best == nil {
		return nil, errors.New("subspace: PROCLUS found no assignment")
	}
	if interrupted != nil {
		return best, fmt.Errorf("subspace: proclus interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return best, nil
}

func farthestPointSample(points [][]float64, m int, rng *rand.Rand) []int {
	n := len(points)
	out := []int{rng.Intn(n)}
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist.Euclidean(points[i], points[out[0]])
	}
	for len(out) < m {
		far, farD := 0, -1.0
		for i, dd := range minD {
			if dd > farD {
				far, farD = i, dd
			}
		}
		out = append(out, far)
		for i := range minD {
			if dd := dist.Euclidean(points[i], points[far]); dd < minD[i] {
				minD[i] = dd
			}
		}
	}
	return out
}

// chooseDimensions implements the z-score dimension selection: for each
// medoid, compute the average distance along each dimension within its
// locality (points closer to it than to any other medoid half-way), then
// greedily pick the K*L most negative z-scores with at least 2 per medoid.
func chooseDimensions(points [][]float64, medoids []int, l int) [][]int {
	k := len(medoids)
	d := len(points[0])
	// Locality: points nearest to each medoid.
	x := make([][]float64, k) // average |coordinate difference| per dim
	counts := make([]int, k)
	for c := range x {
		x[c] = make([]float64, d)
	}
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, m := range medoids {
			if dd := dist.Euclidean(p, points[m]); dd < bestD {
				bestC, bestD = c, dd
			}
		}
		counts[bestC]++
		for j := 0; j < d; j++ {
			x[bestC][j] += math.Abs(p[j] - points[medoids[bestC]][j])
		}
		_ = i
	}
	type scored struct {
		c, j int
		z    float64
	}
	var all []scored
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		var mean, sd float64
		for j := 0; j < d; j++ {
			x[c][j] /= float64(counts[c])
			mean += x[c][j]
		}
		mean /= float64(d)
		for j := 0; j < d; j++ {
			sd += (x[c][j] - mean) * (x[c][j] - mean)
		}
		sd = math.Sqrt(sd / math.Max(1, float64(d-1)))
		if sd == 0 {
			sd = 1
		}
		for j := 0; j < d; j++ {
			all = append(all, scored{c: c, j: j, z: (x[c][j] - mean) / sd})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].z < all[j].z })

	dims := make([][]int, k)
	total := k * l
	// First guarantee 2 dims per medoid.
	for c := 0; c < k; c++ {
		taken := 0
		for _, s := range all {
			if s.c == c && taken < 2 {
				dims[c] = append(dims[c], s.j)
				taken++
			}
		}
	}
	used := 2 * k
	for _, s := range all {
		if used >= total {
			break
		}
		if containsIdx(dims[s.c], s.j) {
			continue
		}
		dims[s.c] = append(dims[s.c], s.j)
		used++
	}
	for c := range dims {
		sort.Ints(dims[c])
	}
	return dims
}

// assignSegmental assigns every object to the medoid with the smallest
// segmental distance (Manhattan distance averaged over the medoid's dims).
func assignSegmental(points [][]float64, medoids []int, dims [][]int) ([]int, float64) {
	n := len(points)
	labels := make([]int, n)
	var cost float64
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, m := range medoids {
			if len(dims[c]) == 0 {
				continue
			}
			var s float64
			for _, j := range dims[c] {
				s += math.Abs(p[j] - points[m][j])
			}
			s /= float64(len(dims[c]))
			if s < bestD {
				bestC, bestD = c, s
			}
		}
		labels[i] = bestC
		cost += bestD
	}
	return labels, cost
}

func buildProclusResult(points [][]float64, medoids []int, dims [][]int, labels []int) *ProclusResult {
	k := len(medoids)
	clusters := make([][]int, k)
	for i, l := range labels {
		clusters[l] = append(clusters[l], i)
	}
	res := &ProclusResult{
		Assignment: core.NewClustering(append([]int(nil), labels...)),
		Medoids:    append([]int(nil), medoids...),
		Dims:       dims,
	}
	for c := 0; c < k; c++ {
		if len(clusters[c]) == 0 {
			continue
		}
		res.Clusters = append(res.Clusters, core.NewSubspaceCluster(clusters[c], dims[c]))
	}
	return res
}

func containsIdx(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
