package subspace

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// RISConfig controls density-based subspace ranking (Kailing et al. 2003,
// tutorial slide 88).
type RISConfig struct {
	Eps    float64 // neighbourhood radius (subspace-restricted)
	MinPts int     // core-object threshold
	MaxDim int     // cap on subspace dimensionality
	// TopK truncates the ranking (<=0: return everything).
	TopK int
}

// RISScore is one ranked subspace.
type RISScore struct {
	Dims        []int
	CoreObjects int     // objects whose eps-neighbourhood in Dims holds >= MinPts objects
	Quality     float64 // core count normalized by the count expected under uniform scaling
}

// RIS ranks interesting subspaces by a density criterion: a subspace is
// interesting when many objects are core objects under the
// subspace-restricted epsilon-neighbourhood, normalized by what the same
// radius would collect in a uniform cube of that dimensionality (the volume
// of the eps-ball shrinks with dimensionality, so raw counts are biased
// toward low dimensions — the same bias SCHISM fights on the grid side).
// Candidates are generated bottom-up with the monotonicity that a core
// object in S stays core in every subset of S, mirroring the original RIS
// pruning. Clustering proper runs afterwards on the returned subspaces
// (the decoupled pipeline of slide 88).
func RIS(points [][]float64, cfg RISConfig) ([]RISScore, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("subspace: Eps and MinPts must be positive")
	}
	d := len(points[0])
	if cfg.MaxDim <= 0 || cfg.MaxDim > d {
		cfg.MaxDim = d
	}

	coreCount := func(dims []int) int {
		count := 0
		for i := 0; i < n; i++ {
			neighbors := 0
			for j := 0; j < n; j++ {
				if dist.SqEuclideanSubspace(points[i], points[j], dims) <= cfg.Eps*cfg.Eps {
					neighbors++
				}
			}
			if neighbors >= cfg.MinPts {
				count++
			}
		}
		return count
	}
	// Expected neighbours under uniform [0,1]^s scale like the eps-ball
	// volume; normalize by the fraction of objects a uniform model would
	// make core, approximated via the ball-volume ratio.
	expectedFrac := func(s int) float64 {
		// Volume of an s-ball of radius eps relative to the unit cube,
		// clamped to 1.
		v := math.Pow(math.Pi, float64(s)/2) / math.Gamma(float64(s)/2+1)
		v *= math.Pow(cfg.Eps, float64(s))
		if v > 1 {
			v = 1
		}
		return v
	}

	var out []RISScore
	level := map[string][]int{}
	for j := 0; j < d; j++ {
		dims := []int{j}
		c := coreCount(dims)
		if c == 0 {
			continue
		}
		level[fmt.Sprint(dims)] = dims
		out = append(out, RISScore{Dims: dims, CoreObjects: c, Quality: quality(c, n, expectedFrac(1))})
	}
	for s := 2; s <= cfg.MaxDim && len(level) > 1; s++ {
		next := map[string][]int{}
		keys := make([]string, 0, len(level))
		for k := range level {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				dims, ok := joinDims(level[keys[i]], level[keys[j]])
				if !ok {
					continue
				}
				key := fmt.Sprint(dims)
				if _, seen := next[key]; seen {
					continue
				}
				if !allDimSubsetsPresent(dims, level) {
					continue
				}
				c := coreCount(dims)
				if c == 0 {
					continue
				}
				next[key] = dims
				out = append(out, RISScore{Dims: dims, CoreObjects: c, Quality: quality(c, n, expectedFrac(s))})
			}
		}
		level = next
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Quality != out[b].Quality {
			return out[a].Quality > out[b].Quality
		}
		return fmt.Sprint(out[a].Dims) < fmt.Sprint(out[b].Dims)
	})
	if cfg.TopK > 0 && len(out) > cfg.TopK {
		out = out[:cfg.TopK]
	}
	return out, nil
}

// quality normalizes the core count by the uniform-model expectation: the
// expected neighbour count is n*vol, so the uniform model makes everything
// core when n*vol >= minPts and nothing otherwise; using the smooth ratio
// keeps the score comparable across dimensionalities.
func quality(coreObjects, n int, vol float64) float64 {
	expectedNeighbors := float64(n) * vol
	if expectedNeighbors < 1 {
		expectedNeighbors = 1
	}
	return float64(coreObjects) / expectedNeighbors
}
