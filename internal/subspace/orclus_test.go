package subspace

import (
	"math"
	"math/rand"
	"testing"

	"multiclust/internal/linalg"
	"multiclust/internal/metrics"
)

// orientedClusters builds two clusters stretched along arbitrary (rotated)
// directions in 4D — the case axis-parallel methods cannot describe.
func orientedClusters(seed int64, nPer int) (pts [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	// Cluster 0: spread along (1,1,0,0)/sqrt2, centered at origin.
	// Cluster 1: spread along (0,0,1,-1)/sqrt2, centered at (8,8,8,8).
	dirs := [][]float64{
		{1 / math.Sqrt2, 1 / math.Sqrt2, 0, 0},
		{0, 0, 1 / math.Sqrt2, -1 / math.Sqrt2},
	}
	centers := [][]float64{{0, 0, 0, 0}, {8, 8, 8, 8}}
	for c := 0; c < 2; c++ {
		for i := 0; i < nPer; i++ {
			t := rng.NormFloat64() * 4
			row := make([]float64, 4)
			for j := 0; j < 4; j++ {
				row[j] = centers[c][j] + t*dirs[c][j] + rng.NormFloat64()*0.1
			}
			pts = append(pts, row)
			labels = append(labels, c)
		}
	}
	return pts, labels
}

func TestOrclusRecoversOrientedClusters(t *testing.T) {
	pts, truth := orientedClusters(1, 60)
	res, err := Orclus(pts, OrclusConfig{K: 2, L: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ari := metrics.AdjustedRand(truth, res.Assignment.Labels); ari < 0.9 {
		t.Errorf("ORCLUS ARI = %v", ari)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("clusters = %d", len(res.Clusters))
	}
	// Each cluster's basis must be orthogonal to its spread direction: the
	// basis spans the LOW-variance subspace, so projecting the spread
	// direction onto it should be small.
	dirs := [][]float64{
		{1 / math.Sqrt2, 1 / math.Sqrt2, 0, 0},
		{0, 0, 1 / math.Sqrt2, -1 / math.Sqrt2},
	}
	for _, cl := range res.Clusters {
		// Find the matching truth cluster by majority.
		counts := [2]int{}
		for _, o := range cl.Objects {
			counts[truth[o]]++
		}
		dir := dirs[0]
		if counts[1] > counts[0] {
			dir = dirs[1]
		}
		var proj float64
		for c := 0; c < cl.Basis.Cols; c++ {
			var ip float64
			for r := 0; r < cl.Basis.Rows; r++ {
				ip += dir[r] * cl.Basis.At(r, c)
			}
			proj += ip * ip
		}
		if proj > 0.1 {
			t.Errorf("basis not orthogonal to the spread direction: |proj|^2 = %v", proj)
		}
	}
	if res.Energy < 0 {
		t.Errorf("energy = %v", res.Energy)
	}
}

func TestOrclusBasisOrthonormal(t *testing.T) {
	pts, _ := orientedClusters(2, 40)
	res, err := Orclus(pts, OrclusConfig{K: 2, L: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range res.Clusters {
		btb := cl.Basis.T().Mul(cl.Basis)
		for i := 0; i < btb.Rows; i++ {
			for j := 0; j < btb.Cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(btb.At(i, j)-want) > 1e-6 {
					t.Fatalf("basis not orthonormal at (%d,%d): %v", i, j, btb.At(i, j))
				}
			}
		}
	}
}

func TestOrclusErrors(t *testing.T) {
	if _, err := Orclus(nil, OrclusConfig{K: 2, L: 1}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0, 0}, {1, 1}}
	if _, err := Orclus(pts, OrclusConfig{K: 0, L: 1}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Orclus(pts, OrclusConfig{K: 2, L: 5}); err == nil {
		t.Error("L>d should fail")
	}
}

func TestProjectedSqDist(t *testing.T) {
	basis := linalg.NewMatrix(2, 1)
	basis.Set(0, 0, 1) // project onto x only
	got := projectedSqDist([]float64{3, 100}, []float64{0, 0}, basis)
	if got != 9 {
		t.Errorf("projected distance = %v, want 9", got)
	}
}
