package subspace

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestFiresApproximatesSubspaceClusters(t *testing.T) {
	specs := []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.05},
		{Dims: []int{3, 4}, Size: 50, Width: 0.05},
	}
	ds, truth, err := dataset.SubspaceData(1, 200, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fires(ds.Points, FiresConfig{Eps: 0.006, MinPts: 4, MergeOverlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BaseClusters) == 0 {
		t.Fatal("no base clusters")
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no merged clusters")
	}
	if f1 := metrics.SubspaceF1(truth, res.Clusters); f1 < 0.7 {
		t.Errorf("SubspaceF1 = %v", f1)
	}
	// The merged clusters recover the planted dimension pairs.
	foundDims := map[string]bool{}
	for _, c := range res.Clusters {
		foundDims[dimsKey(c.Dims)] = true
	}
	if !foundDims["[0 1]"] || !foundDims["[3 4]"] {
		t.Errorf("planted subspaces not assembled: %v", foundDims)
	}
}

func TestFiresBaseClustersAreOneDimensional(t *testing.T) {
	ds, _, err := dataset.SubspaceData(2, 120, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 40, Width: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fires(ds.Points, FiresConfig{Eps: 0.006, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range res.BaseClusters {
		if b.Dimensionality() != 1 {
			t.Fatalf("base cluster with %d dims", b.Dimensionality())
		}
	}
}

func TestFiresNoMergeAcrossWeakOverlap(t *testing.T) {
	// Two clusters in different dims with DISJOINT object sets: base
	// clusters must not merge (overlap 0), so every merged cluster stays 1D.
	objsA := rangeInts(0, 40)
	objsB := rangeInts(60, 100)
	ds, _, err := dataset.SubspaceData(3, 140, 4, []dataset.SubspaceSpec{
		{Dims: []int{0}, Size: 40, Width: 0.05, Objects: objsA},
		{Dims: []int{2}, Size: 40, Width: 0.05, Objects: objsB},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fires(ds.Points, FiresConfig{Eps: 0.006, MinPts: 4, MergeOverlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Clusters {
		if c.Dimensionality() > 1 {
			// A multi-dim cluster would require strong object overlap
			// between the two planted clusters — impossible here unless the
			// uniform noise conspired, which the seed avoids.
			t.Fatalf("unexpected merge: %v", c)
		}
	}
}

func TestFiresErrors(t *testing.T) {
	if _, err := Fires(nil, FiresConfig{Eps: 1, MinPts: 1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Fires([][]float64{{0}}, FiresConfig{Eps: 0, MinPts: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
}
