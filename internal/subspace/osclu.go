package subspace

import (
	"errors"
	"sort"

	"multiclust/internal/core"
)

// Ilocal scores the standalone interestingness of a candidate cluster.
// OSCLU leaves it application-defined (slide 84); the default rewards large,
// high-dimensional clusters: |O| * |S|.
type Ilocal func(c core.SubspaceCluster) float64

// DefaultIlocal is size × dimensionality.
func DefaultIlocal(c core.SubspaceCluster) float64 {
	return float64(c.Size() * c.Dimensionality())
}

// OscluConfig controls the orthogonal-concept selection.
type OscluConfig struct {
	// Alpha in (0,1]: minimum fraction of objects of an admitted cluster not
	// already covered by its concept group (global interestingness,
	// slide 83). Default 0.5.
	Alpha float64
	// Beta in (0,1]: subspace coverage parameter (slide 82) — T is covered
	// by S when |T ∩ S| >= Beta*|T|. Default 0.5.
	Beta float64
	// Local ranks candidates; default DefaultIlocal.
	Local Ilocal
}

// Osclu selects an (approximately) optimal orthogonal clustering out of the
// candidate set ALL: admit clusters greedily by descending local
// interestingness, rejecting any whose objects are mostly already covered by
// the selected clusters in similar subspaces (its concept group). The exact
// optimum is NP-hard (reduction from SetPacking, slide 85), so the greedy
// approximation is used, as in the paper.
func Osclu(all core.SubspaceClustering, cfg OscluConfig) (core.SubspaceClustering, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.5
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 || cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, errors.New("subspace: Alpha and Beta must be in (0,1]")
	}
	if cfg.Local == nil {
		cfg.Local = DefaultIlocal
	}
	order := make([]int, len(all))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return cfg.Local(all[order[a]]) > cfg.Local(all[order[b]])
	})

	var selected core.SubspaceClustering
	for _, idx := range order {
		c := all[idx]
		if c.Size() == 0 {
			continue
		}
		if globalInterestingness(c, selected, cfg.Beta) >= cfg.Alpha {
			selected = append(selected, c)
		}
	}
	return selected, nil
}

// SameConceptGroup reports whether the subspaces of a and b describe a
// similar concept under the coverage rule: one dimension set covers the
// other when they share at least beta of its dimensions.
func SameConceptGroup(a, b core.SubspaceCluster, beta float64) bool {
	shared := float64(a.SharedDims(b))
	return shared >= beta*float64(len(a.Dims)) || shared >= beta*float64(len(b.Dims))
}

// globalInterestingness is the fraction of c's objects not yet covered by
// selected clusters in c's concept group (slide 83).
func globalInterestingness(c core.SubspaceCluster, selected core.SubspaceClustering, beta float64) float64 {
	if c.Size() == 0 {
		return 0
	}
	covered := map[int]bool{}
	for _, k := range selected {
		if !SameConceptGroup(c, k, beta) {
			continue
		}
		for _, o := range k.Objects {
			covered[o] = true
		}
	}
	fresh := 0
	for _, o := range c.Objects {
		if !covered[o] {
			fresh++
		}
	}
	return float64(fresh) / float64(c.Size())
}

// AscluConfig controls alternative subspace clustering.
type AscluConfig struct {
	OscluConfig
	// Known is the given clustering (slides 86–87); admitted clusters must
	// be valid alternatives to it.
	Known core.SubspaceClustering
}

// Asclu extends Osclu with given knowledge: a candidate is a valid
// alternative iff at least Alpha of its objects are not already clustered by
// the Known clusters in its concept group, and the selected result must be
// orthogonal among itself as in OSCLU.
func Asclu(all core.SubspaceClustering, cfg AscluConfig) (core.SubspaceClustering, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Beta == 0 {
		cfg.Beta = 0.5
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 || cfg.Beta < 0 || cfg.Beta > 1 {
		return nil, errors.New("subspace: Alpha and Beta must be in (0,1]")
	}
	if cfg.Local == nil {
		cfg.Local = DefaultIlocal
	}
	// Filter to valid alternatives first, then run the orthogonal selection
	// on the survivors.
	var valid core.SubspaceClustering
	for _, c := range all {
		if c.Size() == 0 {
			continue
		}
		if globalInterestingness(c, cfg.Known, cfg.Beta) >= cfg.Alpha {
			valid = append(valid, c)
		}
	}
	return Osclu(valid, cfg.OscluConfig)
}
