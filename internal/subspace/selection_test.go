package subspace

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestEnclusRanksClusteredSubspacesFirst(t *testing.T) {
	ds, _, err := dataset.SubspaceData(1, 300, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 150, Width: 0.08},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := Enclus(ds.Points, EnclusConfig{Xi: 4, MaxEntropy: 6, MaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no subspaces scored")
	}
	// Among 2D subspaces, {0,1} must have minimal entropy and maximal
	// interest.
	var best *SubspaceScore
	for i := range scores {
		s := &scores[i]
		if len(s.Dims) != 2 {
			continue
		}
		if best == nil || s.Entropy < best.Entropy {
			best = s
		}
	}
	if best == nil {
		t.Fatal("no 2D subspaces")
	}
	if best.Dims[0] != 0 || best.Dims[1] != 1 {
		t.Errorf("lowest-entropy 2D subspace = %v, want [0 1]", best.Dims)
	}
	if best.Interest <= 0 {
		t.Errorf("clustered subspace interest = %v, want > 0", best.Interest)
	}
}

func TestEnclusMonotonicityPruning(t *testing.T) {
	// Entropy is monotone nondecreasing in the dimension set, so every
	// reported subspace's entropy must be >= the max of its single dims...
	// verify the weaker ordering property on the output directly.
	ds := dataset.UniformHypercube(2, 200, 4)
	scores, err := Enclus(ds.Points, EnclusConfig{Xi: 4, MaxEntropy: 100, MaxDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range scores {
		byKey[dimsKey(s.Dims)] = s.Entropy
	}
	for _, s := range scores {
		if len(s.Dims) < 2 {
			continue
		}
		for drop := range s.Dims {
			var sub []int
			for i, d := range s.Dims {
				if i != drop {
					sub = append(sub, d)
				}
			}
			if parent, ok := byKey[dimsKey(sub)]; ok && s.Entropy < parent-1e-9 {
				t.Fatalf("entropy not monotone: H(%v)=%v < H(%v)=%v", s.Dims, s.Entropy, sub, parent)
			}
		}
	}
}

func TestEnclusErrors(t *testing.T) {
	if _, err := Enclus(nil, EnclusConfig{MaxEntropy: 1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := Enclus([][]float64{{0.5}}, EnclusConfig{MaxEntropy: 0}); err == nil {
		t.Error("MaxEntropy=0 should fail")
	}
}

// candidateSet builds a redundant candidate pool: two true concepts plus
// many redundant projections of the first.
func candidateSet() core.SubspaceClustering {
	objsA := rangeInts(0, 50)
	objsB := rangeInts(60, 110)
	all := core.SubspaceClustering{
		core.NewSubspaceCluster(objsA, []int{0, 1, 2}),   // concept A
		core.NewSubspaceCluster(objsB, []int{5, 6}),      // concept B
		core.NewSubspaceCluster(objsA[:48], []int{0, 1}), // redundant proj of A
		core.NewSubspaceCluster(objsA[:45], []int{1, 2}), // redundant proj of A
		core.NewSubspaceCluster(objsA[:40], []int{0, 2}), // redundant proj of A
		core.NewSubspaceCluster(objsA[:30], []int{0}),    // redundant proj of A
		core.NewSubspaceCluster(objsB[:40], []int{5}),    // redundant proj of B
	}
	return all
}

func rangeInts(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

func TestOscluRemovesRedundantConcepts(t *testing.T) {
	all := candidateSet()
	sel, err := Osclu(all, OscluConfig{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d clusters, want the 2 concepts: %v", len(sel), sel)
	}
	if sel[0].Dimensionality() != 3 {
		t.Errorf("first selected should be the 3D concept, got %v", sel[0])
	}
	// Redundancy of the selection must be far below the candidates'.
	if r := metrics.Redundancy(sel, 0.5); r != 0 {
		t.Errorf("selection still redundant: %v", r)
	}
	if r := metrics.Redundancy(all, 0.5); r < 0.5 {
		t.Errorf("candidate pool should be redundant, got %v", r)
	}
}

func TestOscluOrthogonalConceptsKept(t *testing.T) {
	// Same objects clustered in two dissimilar subspaces: both are kept,
	// because concept groups are keyed on subspace similarity (slide 82).
	objs := rangeInts(0, 50)
	all := core.SubspaceClustering{
		core.NewSubspaceCluster(objs, []int{0, 1}),
		core.NewSubspaceCluster(objs, []int{4, 5}),
	}
	sel, err := Osclu(all, OscluConfig{Alpha: 0.5, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("orthogonal concepts should both survive, got %d", len(sel))
	}
}

func TestOscluAlphaOne(t *testing.T) {
	// Alpha=1 forbids any object overlap within a concept group (the
	// SetPacking extreme of the NP-hardness proof, slide 85).
	objs := rangeInts(0, 50)
	all := core.SubspaceClustering{
		core.NewSubspaceCluster(objs, []int{0, 1}),
		core.NewSubspaceCluster(objs[:25], []int{0, 1}),
		core.NewSubspaceCluster(rangeInts(50, 80), []int{0, 1}),
	}
	sel, err := Osclu(all, OscluConfig{Alpha: 1, Beta: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("want the two disjoint clusters, got %d", len(sel))
	}
}

func TestOscluErrors(t *testing.T) {
	if _, err := Osclu(nil, OscluConfig{Alpha: 2}); err == nil {
		t.Error("alpha>1 should fail")
	}
}

func TestAscluFindsAlternativesToKnown(t *testing.T) {
	objsA := rangeInts(0, 50)
	objsB := rangeInts(60, 110)
	known := core.SubspaceClustering{
		core.NewSubspaceCluster(objsA, []int{0, 1}),
	}
	all := core.SubspaceClustering{
		core.NewSubspaceCluster(objsA, []int{0, 1, 2}), // same concept as Known -> rejected
		core.NewSubspaceCluster(objsA, []int{5, 6}),    // same objects, different view -> valid
		core.NewSubspaceCluster(objsB, []int{0, 1}),    // same view, new objects -> valid
	}
	sel, err := Asclu(all, AscluConfig{OscluConfig: OscluConfig{Alpha: 0.5, Beta: 0.5}, Known: known})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d, want 2: %v", len(sel), sel)
	}
	for _, c := range sel {
		if c.Dimensionality() == 3 {
			t.Error("the Known-concept cluster must be rejected")
		}
	}
}

func TestAscluErrors(t *testing.T) {
	if _, err := Asclu(nil, AscluConfig{OscluConfig: OscluConfig{Beta: -1}}); err == nil {
		t.Error("beta<0 should fail")
	}
}

func TestStatPCSelectsSignificantUnexplained(t *testing.T) {
	// Build grid clusters: a large significant region, its redundant
	// sub-projection, and an insignificant sliver.
	objsA := rangeInts(0, 80)
	objsB := rangeInts(100, 172)
	gcs := []GridCluster{
		{SubspaceCluster: core.NewSubspaceCluster(objsA, []int{0, 1}), Units: 2, Xi: 10},
		{SubspaceCluster: core.NewSubspaceCluster(objsA[:70], []int{0}), Units: 1, Xi: 10},
		{SubspaceCluster: core.NewSubspaceCluster(objsB, []int{3, 4}), Units: 3, Xi: 10},
		{SubspaceCluster: core.NewSubspaceCluster(rangeInts(90, 96), []int{2}), Units: 2, Xi: 10},
	}
	res, err := StatPC(gcs, StatPCConfig{N: 400, AlphaSig: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 2 {
		t.Fatalf("selected %d clusters: %v", len(res.Clusters), res.Clusters)
	}
	// Both selected clusters are the 2D concepts.
	for _, c := range res.Clusters {
		if c.Dimensionality() != 2 {
			t.Errorf("selected cluster should be a 2D concept, got %v", c)
		}
	}
	if len(res.PValues) != 2 || res.PValues[0] > res.PValues[1] {
		t.Errorf("p-values not ascending: %v", res.PValues)
	}
	// The redundant projection is explained; the sliver is insignificant.
	for _, c := range res.Clusters {
		if c.Size() == 6 {
			t.Error("insignificant sliver selected")
		}
		if c.Size() == 70 {
			t.Error("explained projection selected")
		}
	}
}

func TestStatPCErrors(t *testing.T) {
	if _, err := StatPC(nil, StatPCConfig{}); err == nil {
		t.Error("missing N should fail")
	}
	if _, err := StatPC(nil, StatPCConfig{N: 10, AlphaSig: 2}); err == nil {
		t.Error("invalid AlphaSig should fail")
	}
}

func TestRescuCoverageSelection(t *testing.T) {
	all := candidateSet()
	sel, err := Rescu(all, RescuConfig{MinCoverageGain: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	// RESCU judges on object overlap only: the orthogonal-view duplicate of
	// concept A would be dropped (the limitation the tutorial notes).
	if len(sel) != 2 {
		t.Fatalf("selected %d clusters, want 2", len(sel))
	}
	covered := map[int]bool{}
	for _, c := range sel {
		for _, o := range c.Objects {
			covered[o] = true
		}
	}
	if len(covered) != 100 {
		t.Errorf("coverage = %d objects, want 100", len(covered))
	}
}

func TestRescuIgnoresSubspaceOrthogonality(t *testing.T) {
	objs := rangeInts(0, 50)
	all := core.SubspaceClustering{
		core.NewSubspaceCluster(objs, []int{0, 1}),
		core.NewSubspaceCluster(objs, []int{4, 5}), // different view, same objects
	}
	sel, err := Rescu(all, RescuConfig{MinCoverageGain: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 {
		t.Fatalf("RESCU should drop the same-object alternative view, got %d", len(sel))
	}
}

func TestRescuErrors(t *testing.T) {
	if _, err := Rescu(nil, RescuConfig{MinCoverageGain: 2}); err == nil {
		t.Error("invalid gain should fail")
	}
}
