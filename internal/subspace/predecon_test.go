package subspace

import (
	"math/rand"
	"testing"

	"multiclust/internal/metrics"
)

// preferenceData: two clusters, each tight in its own dimension pair and
// spread out in the other pair — local subspace preferences differ per
// cluster.
func preferenceData(seed int64, nPer int) (pts [][]float64, labels []int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nPer; i++ {
		// Cluster 0: tight in dims {0,1} at 0.5, spread in {2,3} over [0,1.5].
		pts = append(pts, []float64{
			0.5 + rng.NormFloat64()*0.02,
			0.5 + rng.NormFloat64()*0.02,
			rng.Float64() * 1.5,
			rng.Float64() * 1.5,
		})
		labels = append(labels, 0)
		// Cluster 1: tight in dims {2,3} at 3.5, spread in {0,1} over [2.5,4].
		pts = append(pts, []float64{
			2.5 + rng.Float64()*1.5,
			2.5 + rng.Float64()*1.5,
			3.5 + rng.NormFloat64()*0.02,
			3.5 + rng.NormFloat64()*0.02,
		})
		labels = append(labels, 1)
	}
	return pts, labels
}

func TestPredeconFindsPreferenceClusters(t *testing.T) {
	pts, truth := preferenceData(1, 60)
	res, err := Predecon(pts, PredeconConfig{Eps: 2.0, MinPts: 5, Delta: 0.05, Lambda: 2, Kappa: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.K() < 2 {
		t.Fatalf("K = %d", res.Assignment.K())
	}
	if p := metrics.Purity(truth, res.Assignment.Labels); p < 0.95 {
		t.Errorf("purity = %v", p)
	}
	// Cluster subspaces: one cluster prefers {0,1}, the other {2,3}.
	foundDims := map[string]bool{}
	for _, c := range res.Clusters {
		foundDims[dimsKey(c.Dims)] = true
	}
	if !foundDims["[0 1]"] && !foundDims["[2 3]"] {
		t.Errorf("preference subspaces not recovered: %v", foundDims)
	}
}

func TestPredeconPreferences(t *testing.T) {
	pts, truth := preferenceData(2, 50)
	res, err := Predecon(pts, PredeconConfig{Eps: 2.0, MinPts: 5, Delta: 0.05, Lambda: 2, Kappa: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Objects of cluster 0 should prefer dims 0 and 1.
	agree := 0
	total := 0
	for i, l := range truth {
		if l != 0 {
			continue
		}
		total++
		if res.Preferences[i][0] && res.Preferences[i][1] && !res.Preferences[i][2] && !res.Preferences[i][3] {
			agree++
		}
	}
	if float64(agree)/float64(total) < 0.9 {
		t.Errorf("preference vectors wrong for %d/%d objects", total-agree, total)
	}
}

func TestPredeconLambdaBound(t *testing.T) {
	// With Lambda=0 (invalid, defaults to d) everything is permitted; with a
	// very small Delta no dimension is preferred and the clustering falls
	// back to plain DBSCAN behaviour in the full space.
	pts, _ := preferenceData(3, 40)
	res, err := Predecon(pts, PredeconConfig{Eps: 2.0, MinPts: 5, Delta: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		for j := 0; j < 4; j++ {
			if res.Preferences[i][j] {
				t.Fatal("no dimension should be preferred with tiny Delta")
			}
		}
	}
}

func TestPredeconErrors(t *testing.T) {
	if _, err := Predecon(nil, PredeconConfig{Eps: 1, MinPts: 1, Delta: 1}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}}
	if _, err := Predecon(pts, PredeconConfig{Eps: 0, MinPts: 1, Delta: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := Predecon(pts, PredeconConfig{Eps: 1, MinPts: 0, Delta: 1}); err == nil {
		t.Error("minpts=0 should fail")
	}
	if _, err := Predecon(pts, PredeconConfig{Eps: 1, MinPts: 1, Delta: 0}); err == nil {
		t.Error("delta=0 should fail")
	}
}
