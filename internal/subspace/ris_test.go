package subspace

import (
	"testing"

	"multiclust/internal/dataset"
)

func TestRISRanksClusteredSubspaceFirst(t *testing.T) {
	ds, _, err := dataset.SubspaceData(1, 250, 5, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 100, Width: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := RIS(ds.Points, RISConfig{Eps: 0.05, MinPts: 8, MaxDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) == 0 {
		t.Fatal("no subspaces ranked")
	}
	// Subspaces touching the planted dims {0,1} are legitimately dense
	// (stripe projections), so the sharp claim is: [0 1] outranks every
	// subspace DISJOINT from the planted dims, and every 1D subspace.
	rank := map[string]int{}
	for i, s := range scores {
		rank[dimsKey(s.Dims)] = i
	}
	r01, ok := rank["[0 1]"]
	if !ok {
		t.Fatal("[0 1] missing from ranking")
	}
	for _, other := range []string{"[2]", "[3]", "[4]", "[2 3]", "[2 4]", "[3 4]", "[0]", "[1]"} {
		if rn, ok := rank[other]; ok && rn < r01 {
			t.Errorf("subspace %s outranks the planted [0 1]", other)
		}
	}
}

func TestRISMonotonicity(t *testing.T) {
	// Core objects in S stay core in subsets of S: every reported
	// multi-dim subspace's CoreObjects is <= the min over its 1D parts.
	ds, _, err := dataset.SubspaceData(2, 150, 4, []dataset.SubspaceSpec{
		{Dims: []int{0, 1}, Size: 60, Width: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	scores, err := RIS(ds.Points, RISConfig{Eps: 0.05, MinPts: 6, MaxDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	oneD := map[int]int{}
	for _, s := range scores {
		if len(s.Dims) == 1 {
			oneD[s.Dims[0]] = s.CoreObjects
		}
	}
	for _, s := range scores {
		if len(s.Dims) < 2 {
			continue
		}
		for _, dim := range s.Dims {
			if parent, ok := oneD[dim]; ok && s.CoreObjects > parent {
				t.Fatalf("core count not monotone: %v has %d > 1D[%d]=%d", s.Dims, s.CoreObjects, dim, parent)
			}
		}
	}
}

func TestRISTopK(t *testing.T) {
	ds := dataset.UniformHypercube(3, 100, 4)
	scores, err := RIS(ds.Points, RISConfig{Eps: 0.3, MinPts: 3, MaxDim: 2, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) > 3 {
		t.Errorf("TopK not applied: %d", len(scores))
	}
}

func TestRISErrors(t *testing.T) {
	if _, err := RIS(nil, RISConfig{Eps: 1, MinPts: 1}); err == nil {
		t.Error("empty data should fail")
	}
	if _, err := RIS([][]float64{{0}}, RISConfig{Eps: 0, MinPts: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
}
