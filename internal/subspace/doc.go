package subspace

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
)

// DOCConfig controls a DOC run (Procopiuc et al. 2002, slide 66).
type DOCConfig struct {
	W           float64 // half-width of the cluster box per relevant dimension
	Alpha       float64 // minimum cluster size as a fraction of n, default 0.1
	Beta        float64 // size/dimensionality trade-off in (0, 0.5], default 0.25
	MaxClusters int     // stop after this many clusters, default 10
	Seed        int64
	OuterTrials int // pivot draws per cluster; default 2/alpha
	InnerTrials int // discriminating-set draws per pivot; default computed from the paper's bound
}

// DOCResult carries the Monte-Carlo projective clusters.
type DOCResult struct {
	Clusters core.SubspaceClustering
	Quality  []float64 // mu(|C|, |D|) per cluster
}

// DOC finds axis-parallel projective clusters by Monte-Carlo sampling: draw
// a pivot p and a small discriminating set X; the relevant dimensions D are
// those on which every x in X stays within W of p; the cluster is every
// point inside the 2W-box around p on D. Candidate quality is
//
//	mu(a, b) = a * (1/Beta)^b
//
// which trades cluster size against dimensionality. The best candidate is
// accepted if it holds at least Alpha*n points; its points are removed and
// the hunt repeats (the greedy "find one, remove, repeat" of the paper).
func DOC(points [][]float64, cfg DOCConfig) (*DOCResult, error) {
	return DOCContext(context.Background(), points, cfg)
}

// DOCContext is DOC with cancellation: ctx is polled at each cluster-hunt
// boundary (every discovered cluster is complete), returning the clusters
// found so far wrapped in core.ErrInterrupted. With a background context
// the output is byte-identical to DOC.
func DOCContext(ctx context.Context, points [][]float64, cfg DOCConfig) (*DOCResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.W <= 0 {
		return nil, errors.New("subspace: W must be positive")
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = 0.1
	}
	if cfg.Beta <= 0 || cfg.Beta > 0.5 {
		cfg.Beta = 0.25
	}
	if cfg.MaxClusters <= 0 {
		cfg.MaxClusters = 10
	}
	d := len(points[0])
	if cfg.OuterTrials <= 0 {
		cfg.OuterTrials = int(2/cfg.Alpha) + 1
	}
	if cfg.InnerTrials <= 0 {
		// m = (2/alpha)^r * ln 4 with r = log(2d)/log(1/(2beta)), capped for
		// tractability.
		r := math.Log(2*float64(d)) / math.Log(1/(2*cfg.Beta))
		if r < 1 {
			r = 1
		}
		m := math.Pow(2/cfg.Alpha, r) * math.Log(4)
		if m > 256 {
			m = 256
		}
		cfg.InnerTrials = int(m) + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	res := &DOCResult{}
	minSize := int(cfg.Alpha * float64(n))
	if minSize < 2 {
		minSize = 2
	}
	rSize := int(math.Log(2*float64(d))/math.Log(1/(2*cfg.Beta))) + 1

	for len(res.Clusters) < cfg.MaxClusters && len(active) >= minSize {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("subspace: doc interrupted: %v: %w", err, core.ErrInterrupted)
		}
		var bestObjs []int
		var bestDims []int
		bestQ := -1.0
		for outer := 0; outer < cfg.OuterTrials; outer++ {
			p := points[active[rng.Intn(len(active))]]
			for inner := 0; inner < cfg.InnerTrials; inner++ {
				// Discriminating set X.
				dims := make([]int, 0, d)
				ok := true
				xset := make([][]float64, rSize)
				for i := range xset {
					xset[i] = points[active[rng.Intn(len(active))]]
				}
				for j := 0; j < d; j++ {
					within := true
					for _, x := range xset {
						if math.Abs(x[j]-p[j]) > cfg.W {
							within = false
							break
						}
					}
					if within {
						dims = append(dims, j)
					}
				}
				if len(dims) == 0 {
					ok = false
				}
				if !ok {
					continue
				}
				// Cluster: active points inside the 2W box on dims.
				var objs []int
				for _, o := range active {
					inside := true
					for _, j := range dims {
						if math.Abs(points[o][j]-p[j]) > cfg.W {
							inside = false
							break
						}
					}
					if inside {
						objs = append(objs, o)
					}
				}
				if len(objs) < minSize {
					continue
				}
				q := float64(len(objs)) * math.Pow(1/cfg.Beta, float64(len(dims)))
				if q > bestQ {
					bestQ = q
					bestObjs = objs
					bestDims = dims
				}
			}
		}
		if bestObjs == nil {
			break
		}
		res.Clusters = append(res.Clusters, core.NewSubspaceCluster(bestObjs, bestDims))
		res.Quality = append(res.Quality, bestQ)
		// Remove the clustered points and continue.
		inCluster := map[int]bool{}
		for _, o := range bestObjs {
			inCluster[o] = true
		}
		var rest []int
		for _, o := range active {
			if !inCluster[o] {
				rest = append(rest, o)
			}
		}
		active = rest
	}
	return res, nil
}
