package subspace

import (
	"math"
	"math/rand"
	"testing"
)

// bruteForceDenseUnits enumerates every cell of every subspace directly and
// returns the dense ones — exponential, usable only for tiny d, but an
// oracle for the apriori search.
func bruteForceDenseUnits(points [][]float64, xi int, tau float64, maxDim int) map[string]int {
	n := len(points)
	d := len(points[0])
	minCount := int(tau*float64(n) + 0.9999999)
	if minCount < 1 {
		minCount = 1
	}
	out := map[string]int{}
	// Enumerate non-empty dimension subsets.
	for mask := 1; mask < (1 << d); mask++ {
		var dims []int
		for j := 0; j < d; j++ {
			if mask&(1<<j) != 0 {
				dims = append(dims, j)
			}
		}
		if len(dims) > maxDim {
			continue
		}
		// Count objects per cell.
		cells := map[string][]int{}
		for i, p := range points {
			key := make([]byte, len(dims))
			for a, j := range dims {
				key[a] = byte(interval(p[j], xi))
			}
			cells[string(key)] = append(cells[string(key)], i)
		}
		for key, objs := range cells {
			if len(objs) >= minCount {
				ivals := make([]int, len(dims))
				for a := range dims {
					ivals[a] = int(key[a])
				}
				out[unitKey(dims, ivals)] = len(objs)
			}
		}
	}
	return out
}

// TestCliqueMatchesBruteForce verifies the apriori lattice search returns
// exactly the dense units a brute-force enumeration finds — the
// "without loss of results" guarantee of slide 70 — on random small data.
func TestCliqueMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		n := 30 + rng.Intn(40)
		d := 2 + rng.Intn(3) // 2..4 dims
		pts := make([][]float64, n)
		for i := range pts {
			row := make([]float64, d)
			for j := range row {
				// Mix of clumped and uniform mass so some units are dense.
				if rng.Float64() < 0.5 {
					row[j] = 0.2 + rng.Float64()*0.1
				} else {
					row[j] = rng.Float64()
				}
			}
			pts[i] = row
		}
		xi := 3 + rng.Intn(3)
		tau := 0.1 + rng.Float64()*0.15

		res, err := Clique(pts, CliqueConfig{Xi: xi, Tau: tau})
		if err != nil {
			t.Fatal(err)
		}
		oracle := bruteForceDenseUnits(pts, xi, tau, d)
		got := map[string]int{}
		for _, u := range res.Units {
			got[unitKey(u.Dims, u.Intervals)] = len(u.Objects)
		}
		if len(got) != len(oracle) {
			t.Fatalf("trial %d (n=%d d=%d xi=%d tau=%.2f): apriori found %d dense units, brute force %d",
				trial, n, d, xi, tau, len(got), len(oracle))
		}
		for k, cnt := range oracle {
			if got[k] != cnt {
				t.Fatalf("trial %d: unit %s support %d != oracle %d", trial, k, got[k], cnt)
			}
		}
	}
}

// TestEnclusMatchesBruteForceEntropy cross-checks the lattice entropies
// against direct recomputation.
func TestEnclusMatchesBruteForceEntropy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, d := 80, 3
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64()
		}
		pts[i] = row
	}
	scores, err := Enclus(pts, EnclusConfig{Xi: 4, MaxEntropy: 100, MaxDim: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With an unbounded MaxEntropy every subspace must appear: 2^3-1 = 7.
	if len(scores) != 7 {
		t.Fatalf("scored %d subspaces, want 7", len(scores))
	}
	for _, s := range scores {
		// Recompute the entropy directly.
		cells := map[string]float64{}
		for _, p := range pts {
			key := make([]byte, len(s.Dims))
			for a, j := range s.Dims {
				key[a] = byte(interval(p[j], 4))
			}
			cells[string(key)]++
		}
		var h float64
		for _, c := range cells {
			pr := c / float64(n)
			h -= pr * log2(pr)
		}
		if diff := h - s.Entropy; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("entropy of %v = %v, oracle %v", s.Dims, s.Entropy, h)
		}
	}
}

func log2(x float64) float64 { return math.Log2(x) }
