package subspace

import (
	"errors"

	"multiclust/internal/core"
	"multiclust/internal/dbscan"
)

// PredeconConfig controls a PreDeCon run (Böhm et al. 2004a, slide 66).
type PredeconConfig struct {
	Eps    float64 // neighbourhood radius (both for preferences and clustering)
	MinPts int     // core threshold
	Delta  float64 // variance threshold: a dimension is "preferred" when the neighbourhood variance along it is <= Delta
	Lambda int     // maximum preference dimensionality of a core object
	Kappa  float64 // weight boost for preferred dimensions, default 100
}

// PredeconResult carries the clustering plus the per-object subspace
// preferences that defined it.
type PredeconResult struct {
	Assignment  *core.Clustering
	Preferences [][]bool                // [object][dim] — true when the dimension is preferred (low local variance)
	Clusters    core.SubspaceClustering // one entry per cluster, dims = preferences shared by most members
}

// Predecon implements density-connected clustering with local subspace
// preferences: each object's epsilon-neighbourhood defines a preference
// vector (dimensions with variance below Delta are "preferred" and weighted
// by Kappa in the distance), and DBSCAN's core-object property is evaluated
// under the preference-weighted distance with the additional constraint
// that a core object has at most Lambda preferred dimensions.
func Predecon(points [][]float64, cfg PredeconConfig) (*PredeconResult, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 || cfg.Delta <= 0 {
		return nil, errors.New("subspace: Eps, MinPts and Delta must be positive")
	}
	d := len(points[0])
	if cfg.Lambda <= 0 || cfg.Lambda > d {
		cfg.Lambda = d
	}
	if cfg.Kappa <= 1 {
		cfg.Kappa = 100
	}

	// Plain epsilon-neighbourhoods (unweighted) define the local variance.
	neighbors := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if sqDist(points[i], points[j]) <= cfg.Eps*cfg.Eps {
				neighbors[i] = append(neighbors[i], j)
			}
		}
	}
	prefs := make([][]bool, n)
	prefDim := make([]int, n)
	weights := make([][]float64, n)
	for i := 0; i < n; i++ {
		prefs[i] = make([]bool, d)
		weights[i] = make([]float64, d)
		for j := 0; j < d; j++ {
			// Variance along dim j within the neighbourhood of i, relative
			// to point i (the paper's VAR definition).
			var v float64
			for _, o := range neighbors[i] {
				diff := points[o][j] - points[i][j]
				v += diff * diff
			}
			v /= float64(len(neighbors[i]))
			if v <= cfg.Delta {
				prefs[i][j] = true
				prefDim[i]++
				weights[i][j] = cfg.Kappa
			} else {
				weights[i][j] = 1
			}
		}
	}

	// Preference-weighted symmetric distance: the paper uses
	// max(dist_p(i,j), dist_p(j,i)) with dist_p the weighted Euclidean.
	wdist := func(i, j int) float64 {
		var a, b float64
		for dim := 0; dim < d; dim++ {
			diff := points[i][dim] - points[j][dim]
			a += weights[i][dim] * diff * diff
			b += weights[j][dim] * diff * diff
		}
		if b > a {
			a = b
		}
		return a // squared
	}
	// The radius stays Eps: the Kappa weighting shrinks the reach along
	// preferred dimensions (neighbours must be within Eps/sqrt(Kappa)
	// there), which is exactly what makes the clusters subspace-specific.
	epsSq := cfg.Eps * cfg.Eps

	nf := func(o int) []int {
		// A core object must also satisfy the preference-dimensionality
		// bound; objects violating it get an empty neighbourhood so they
		// can only be border points.
		if prefDim[o] > cfg.Lambda {
			return []int{o}
		}
		var out []int
		for j := 0; j < n; j++ {
			if wdist(o, j) <= epsSq {
				out = append(out, j)
			}
		}
		return out
	}
	c, err := dbscan.RunGeneric(n, nf, cfg.MinPts)
	if err != nil {
		return nil, err
	}

	res := &PredeconResult{Assignment: c, Preferences: prefs}
	for _, members := range c.Clusters() {
		// Cluster subspace: dimensions preferred by a majority of members.
		counts := make([]int, d)
		for _, o := range members {
			for j := 0; j < d; j++ {
				if prefs[o][j] {
					counts[j]++
				}
			}
		}
		var dims []int
		for j := 0; j < d; j++ {
			if counts[j]*2 > len(members) {
				dims = append(dims, j)
			}
		}
		if dims == nil {
			for j := 0; j < d; j++ {
				dims = append(dims, j)
			}
		}
		res.Clusters = append(res.Clusters, core.NewSubspaceCluster(members, dims))
	}
	return res, nil
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
