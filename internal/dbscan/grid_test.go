package dbscan

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"multiclust/internal/dist"
	"multiclust/internal/obs"
)

// randomPoints draws n seeded points in [0, spread)^dims.
func randomPoints(seed int64, n, dims int, spread float64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, dims)
		for j := range row {
			row[j] = rng.Float64() * spread
		}
		pts[i] = row
	}
	return pts
}

// linearNeighbors is the oracle: the plain ascending Euclidean scan.
func linearNeighbors(points [][]float64, o int, eps float64) []int {
	var out []int
	for i, p := range points {
		if dist.Euclidean(points[o], p) <= eps {
			out = append(out, i)
		}
	}
	return out
}

// TestGridEqualsLinear is the deterministic differential sweep: for a range
// of sizes, dimensionalities and radii, every object's grid neighbor list
// must be identical (same members, same ascending order) to the linear
// scan's.
func TestGridEqualsLinear(t *testing.T) {
	cases := []struct {
		seed   int64
		n, dim int
		eps    float64
		spread float64
	}{
		{1, 50, 1, 0.1, 1},
		{2, 120, 2, 0.15, 1},
		{3, 200, 3, 0.3, 2},
		{4, 80, 4, 0.5, 1},
		{5, 60, 6, 0.9, 1},
		{6, 40, 2, 5, 1},    // eps larger than the spread: everything neighbors
		{7, 30, 2, 1e-6, 1}, // eps tiny: mostly singletons
		{8, 100, 2, 0.25, 100},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d_n=%d_d=%d", tc.seed, tc.n, tc.dim), func(t *testing.T) {
			pts := randomPoints(tc.seed, tc.n, tc.dim, tc.spread)
			g := NewGridIndex(pts, tc.eps)
			if g == nil {
				t.Fatalf("grid declined n=%d dims=%d", tc.n, tc.dim)
			}
			for o := range pts {
				got := g.Neighbors(o)
				want := linearNeighbors(pts, o, tc.eps)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("object %d: grid %v != linear %v", o, got, want)
				}
			}
		})
	}
}

// TestGridBoundaryDistances pins the exact-eps edge: pairs at distance
// exactly eps must appear in each other's lists, even when they land in
// adjacent cells.
func TestGridBoundaryDistances(t *testing.T) {
	eps := 0.5
	pts := [][]float64{{0, 0}, {eps, 0}, {0, eps}, {2 * eps, 0}, {eps + 1e-12, eps}}
	g := NewGridIndex(pts, eps)
	if g == nil {
		t.Fatal("grid declined")
	}
	for o := range pts {
		got := g.Neighbors(o)
		want := linearNeighbors(pts, o, eps)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("object %d: grid %v != linear %v", o, got, want)
		}
	}
}

// TestGridDeclines checks the fallback gates: high dimensionality and empty
// input must return nil so callers use the linear scan.
func TestGridDeclines(t *testing.T) {
	if g := NewGridIndex(randomPoints(1, 10, maxGridDims+1, 1), 0.5); g != nil {
		t.Error("grid should decline past maxGridDims")
	}
	if g := NewGridIndex(nil, 0.5); g != nil {
		t.Error("grid should decline an empty point set")
	}
	if g := NewGridIndex(randomPoints(1, 10, 2, 1), 0); g != nil {
		t.Error("grid should decline eps<=0")
	}
	// Degenerate range/eps ratio: falls back rather than overflowing.
	pts := [][]float64{{0}, {1e18}}
	if g := NewGridIndex(pts, 1e-9); g != nil {
		t.Error("grid should decline an overflowing cell span")
	}
}

// TestRunNilDistanceEqualsLinear pins the wiring: RunContext with a nil
// distance (grid-indexed Euclidean) must produce byte-identical labels to
// the explicit linear Euclidean scan.
func TestRunNilDistanceEqualsLinear(t *testing.T) {
	pts := randomPoints(9, 300, 3, 1)
	cfg := Config{Eps: 0.2, MinPts: 4}
	linear, err := Run(pts, dist.Euclidean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Run(pts, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(linear.Labels, grid.Labels) {
		t.Error("grid-indexed run diverges from linear run")
	}
}

// TestRegionQueriesReachContextRecorder is the recorder-split regression
// test: RunContext must record dbscan.region_queries on the SAME recorder
// as the expansion-loop counters (the one resolved from ctx), not on the
// process default — a per-run Collector previously lost the region-query
// counts entirely.
func TestRegionQueriesReachContextRecorder(t *testing.T) {
	pts := randomPoints(10, 100, 2, 1)
	cfg := Config{Eps: 0.2, MinPts: 3}
	for _, d := range []dist.Func{nil, dist.Euclidean} {
		col := obs.NewCollector()
		ctx := obs.NewContext(context.Background(), col)
		if _, err := RunContext(ctx, pts, d, cfg); err != nil {
			t.Fatal(err)
		}
		if got := col.Counter("dbscan.region_queries"); got != int64(len(pts)) {
			t.Errorf("d=%v: context collector saw %d region queries, want %d", d == nil, got, len(pts))
		}
		if col.Counter("dbscan.neighborhood_lookups") == 0 {
			t.Errorf("expansion-loop counters missing from the same collector")
		}
	}
}

// TestEpsNeighborsRecThreading checks the per-call variant of the same fix.
func TestEpsNeighborsRecThreading(t *testing.T) {
	pts := randomPoints(11, 20, 2, 1)
	col := obs.NewCollector()
	nf := EpsNeighborsRec(col, pts, dist.Euclidean, 0.3)
	nf(0)
	nf(5)
	if got := col.Counter("dbscan.region_queries"); got != 2 {
		t.Errorf("EpsNeighborsRec recorded %d queries on the supplied recorder, want 2", got)
	}
}

// FuzzGridEqualsLinear fuzzes the differential property over the point
// geometry: whatever (n, dims, eps, spread, seed) the fuzzer finds, the
// grid index and the linear scan must agree on every neighbor list.
func FuzzGridEqualsLinear(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(2), 0.2, 1.0)
	f.Add(int64(7), uint8(15), uint8(1), 0.01, 3.0)
	f.Add(int64(9), uint8(64), uint8(5), 1.5, 0.5)
	f.Fuzz(func(t *testing.T, seed int64, n, dims uint8, eps, spread float64) {
		nn := int(n)%128 + 1
		dd := int(dims)%maxGridDims + 1
		if !(eps > 1e-12 && eps < 1e6) || !(spread > 1e-6 && spread < 1e6) {
			t.Skip()
		}
		pts := randomPoints(seed, nn, dd, spread)
		g := NewGridIndex(pts, eps)
		if g == nil {
			t.Skip() // geometry declined; linear fallback path
		}
		for o := range pts {
			got := g.Neighbors(o)
			want := linearNeighbors(pts, o, eps)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("object %d: grid %v != linear %v (n=%d dims=%d eps=%g)", o, got, want, nn, dd, eps)
			}
		}
	})
}
