package dbscan

import (
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dataset"
	"multiclust/internal/dist"
)

func TestRunRingAndBlob(t *testing.T) {
	ds, truth := dataset.RingAndBlob(1, 300, 80)
	c, err := Run(ds.Points, dist.Euclidean, Config{Eps: 0.25, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Fatalf("K = %d, want 2 (ring + blob)", c.K())
	}
	// Clusters must align with truth for non-noise points.
	agree := 0
	tot := 0
	for i := range truth {
		if c.Labels[i] < 0 {
			continue
		}
		tot++
		if (truth[i] == 0) == (c.Labels[i] == c.Labels[0]) {
			agree++
		}
	}
	if tot == 0 || float64(agree)/float64(tot) < 0.95 {
		t.Errorf("agreement %d/%d", agree, tot)
	}
}

func TestNoiseDetection(t *testing.T) {
	// Two dense pairs far apart plus one isolated point.
	pts := [][]float64{{0, 0}, {0, 0.1}, {0.1, 0}, {10, 10}, {10, 10.1}, {10.1, 10}, {100, 100}}
	c, err := Run(pts, dist.Euclidean, Config{Eps: 0.5, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Fatalf("K = %d", c.K())
	}
	if c.Labels[6] != core.Noise {
		t.Errorf("isolated point labelled %d, want Noise", c.Labels[6])
	}
}

func TestBorderAdoption(t *testing.T) {
	// A border point within eps of a core point but itself not core.
	pts := [][]float64{{0}, {0.1}, {0.2}, {0.55}}
	c, err := Run(pts, dist.Euclidean, Config{Eps: 0.4, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Labels[3] == core.Noise {
		t.Error("border point should be adopted by the cluster")
	}
	if c.K() != 1 {
		t.Errorf("K = %d", c.K())
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, dist.Euclidean, Config{Eps: 1, MinPts: 1}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}}
	if _, err := Run(pts, dist.Euclidean, Config{Eps: 0, MinPts: 1}); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := Run(pts, dist.Euclidean, Config{Eps: 1, MinPts: 0}); err == nil {
		t.Error("minPts=0 should fail")
	}
	if _, err := RunGeneric(0, nil, 1); err == nil {
		t.Error("RunGeneric n=0 should fail")
	}
	if _, err := RunGeneric(1, func(int) []int { return nil }, 0); err == nil {
		t.Error("RunGeneric minPts=0 should fail")
	}
}

func TestRunGenericCustomNeighborhood(t *testing.T) {
	// Neighbourhood defined by index adjacency, not geometry: a path graph.
	n := 6
	nf := func(o int) []int {
		out := []int{o}
		if o > 0 {
			out = append(out, o-1)
		}
		if o < n-1 {
			out = append(out, o+1)
		}
		return out
	}
	c, err := RunGeneric(n, nf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 1 {
		t.Errorf("path graph should form one cluster, K = %d", c.K())
	}
}
