package dbscan

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/dist"
)

// The region queries are precomputed concurrently; the expansion loop is
// serial, so the labeling must be exactly identical for any worker count.
func TestDBSCANWorkersDeterministic(t *testing.T) {
	ds, _ := dataset.GaussianBlobs(4, 200, [][]float64{{0, 0}, {8, 8}, {0, 8}}, 0.6)
	serial, err := Run(ds.Points, dist.Euclidean, Config{Eps: 1.2, MinPts: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 9} {
		par, err := Run(ds.Points, dist.Euclidean, Config{Eps: 1.2, MinPts: 4, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial.Labels {
			if par.Labels[i] != serial.Labels[i] {
				t.Fatalf("workers=%d: label %d differs: %d vs %d", w, i, par.Labels[i], serial.Labels[i])
			}
		}
	}
}
