// Package dbscan implements density-based clustering (Ester et al. 1996)
// over a pluggable neighbourhood function. The abstraction matters here:
// SUBCLU runs DBSCAN inside candidate subspaces, and the multi-represented
// DBSCAN of Kailing et al. (2004a) swaps in union/intersection
// neighbourhoods over several data sources, so the core expansion loop must
// not assume a concrete distance.
package dbscan

import (
	"errors"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/parallel"
)

// NeighborFunc returns the indices of all objects (including o itself) in
// the neighbourhood of object o.
type NeighborFunc func(o int) []int

// Config controls a run over points with a concrete distance.
type Config struct {
	Eps     float64
	MinPts  int
	Workers int // parallelism of the region queries; <=0 resolves via internal/parallel
}

// Run clusters points with plain DBSCAN under distance d. The ε-neighborhood
// of every object is precomputed concurrently up front — the region queries
// dominate the O(n²) cost and are independent per object — then the serial
// expansion loop consumes the precomputed lists, so the labeling is
// identical to a fully serial run.
func Run(points [][]float64, d dist.Func, cfg Config) (*core.Clustering, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("dbscan: Eps and MinPts must be positive")
	}
	nf := PrecomputeNeighbors(points, d, cfg.Eps, cfg.Workers)
	return RunGeneric(len(points), nf, cfg.MinPts)
}

// PrecomputeNeighbors materializes every object's ε-neighborhood with the
// given worker count and returns a lookup into the precomputed lists.
func PrecomputeNeighbors(points [][]float64, d dist.Func, eps float64, workers int) NeighborFunc {
	n := len(points)
	nbs := make([][]int, n)
	parallel.Each(n, workers, func(o int) {
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		nbs[o] = out
	})
	return func(o int) []int { return nbs[o] }
}

// EpsNeighbors builds the standard epsilon-ball neighbourhood function.
func EpsNeighbors(points [][]float64, d dist.Func, eps float64) NeighborFunc {
	return func(o int) []int {
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		return out
	}
}

// RunGeneric is the DBSCAN expansion loop over an abstract neighbourhood.
// An object is a core object when its neighbourhood holds at least minPts
// objects; clusters are the transitive closure of core-object reachability.
func RunGeneric(n int, neighbors NeighborFunc, minPts int) (*core.Clustering, error) {
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if minPts <= 0 {
		return nil, errors.New("dbscan: minPts must be positive")
	}
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = core.Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = clusterID
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			o := queue[qi]
			if labels[o] == core.Noise {
				labels[o] = clusterID // border object adopted by the cluster
			}
			if labels[o] != unvisited {
				continue
			}
			labels[o] = clusterID
			onb := neighbors(o)
			if len(onb) >= minPts {
				queue = append(queue, onb...)
			}
		}
		clusterID++
	}
	return core.NewClustering(labels), nil
}
