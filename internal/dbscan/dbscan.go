// Package dbscan implements density-based clustering (Ester et al. 1996)
// over a pluggable neighbourhood function. The abstraction matters here:
// SUBCLU runs DBSCAN inside candidate subspaces, and the multi-represented
// DBSCAN of Kailing et al. (2004a) swaps in union/intersection
// neighbourhoods over several data sources, so the core expansion loop must
// not assume a concrete distance.
package dbscan

import (
	"context"
	"errors"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// NeighborFunc returns the indices of all objects (including o itself) in
// the neighbourhood of object o.
type NeighborFunc func(o int) []int

// Config controls a run over points with a concrete distance.
type Config struct {
	Eps     float64
	MinPts  int
	Workers int // parallelism of the region queries; <=0 resolves via internal/parallel
}

// Run clusters points with plain DBSCAN under distance d. The ε-neighborhood
// of every object is precomputed concurrently up front — the region queries
// dominate the O(n²) cost and are independent per object — then the serial
// expansion loop consumes the precomputed lists, so the labeling is
// identical to a fully serial run. A nil d selects the Euclidean metric
// served by the uniform-grid spatial index (grid.go), which answers each
// region query from the 3^d adjacent cells instead of a full scan; the
// neighbor lists — and therefore the labeling — are identical to the
// linear Euclidean scan.
func Run(points [][]float64, d dist.Func, cfg Config) (*core.Clustering, error) {
	return RunContext(context.Background(), points, d, cfg)
}

// RunContext is Run with cancellation: the expansion loop polls ctx at each
// outer-object boundary and, when the context is done, labels every
// still-unvisited object Noise and returns the partial clustering wrapped
// in core.ErrInterrupted. With a background context the output is
// byte-identical to Run. Region-query counters land on the recorder
// resolved from ctx (falling back to the process default), matching where
// the expansion loop records, so per-run Collectors see both.
func RunContext(ctx context.Context, points [][]float64, d dist.Func, cfg Config) (*core.Clustering, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("dbscan: Eps and MinPts must be positive")
	}
	rec := obs.From(ctx)
	var nf NeighborFunc
	if d == nil {
		nf = precomputeGridNeighbors(rec, points, cfg.Eps, cfg.Workers)
	} else {
		nf = precomputeNeighbors(rec, points, d, cfg.Eps, cfg.Workers)
	}
	return RunGenericContext(ctx, len(points), nf, cfg.MinPts)
}

// PrecomputeNeighbors materializes every object's ε-neighborhood with the
// given worker count and returns a lookup into the precomputed lists.
// Counters land on the process-default recorder; RunContext threads its
// per-run recorder through the internal variant instead.
func PrecomputeNeighbors(points [][]float64, d dist.Func, eps float64, workers int) NeighborFunc {
	return precomputeNeighbors(obs.Default(), points, d, eps, workers)
}

func precomputeNeighbors(rec obs.Recorder, points [][]float64, d dist.Func, eps float64, workers int) NeighborFunc {
	n := len(points)
	nbs := make([][]int, n)
	parallel.Each(n, workers, func(o int) {
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		nbs[o] = out
	})
	// One O(n)-cost region query ran per object; count them as a batch so
	// the per-object fast path stays untouched.
	obs.Count(rec, "dbscan.region_queries", int64(n))
	return func(o int) []int { return nbs[o] }
}

// EpsNeighbors builds the standard epsilon-ball neighbourhood function.
// Unlike PrecomputeNeighbors it scans on every call, so each invocation
// counts as one region query against the process-default recorder; use
// EpsNeighborsRec to direct the counts at a per-run recorder.
func EpsNeighbors(points [][]float64, d dist.Func, eps float64) NeighborFunc {
	return func(o int) []int {
		obs.Count(obs.Default(), "dbscan.region_queries", 1)
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		return out
	}
}

// EpsNeighborsRec is EpsNeighbors recording each region query on rec
// instead of the process default, so callers that hold a per-run recorder
// (a context Collector) do not lose the counts to the global path.
func EpsNeighborsRec(rec obs.Recorder, points [][]float64, d dist.Func, eps float64) NeighborFunc {
	return func(o int) []int {
		obs.Count(rec, "dbscan.region_queries", 1)
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		return out
	}
}

// RunGeneric is the DBSCAN expansion loop over an abstract neighbourhood.
// An object is a core object when its neighbourhood holds at least minPts
// objects; clusters are the transitive closure of core-object reachability.
func RunGeneric(n int, neighbors NeighborFunc, minPts int) (*core.Clustering, error) {
	return RunGenericContext(context.Background(), n, neighbors, minPts)
}

// RunGenericContext is RunGeneric with cancellation at each outer-object
// boundary; see RunContext for the interruption semantics.
func RunGenericContext(ctx context.Context, n int, neighbors NeighborFunc, minPts int) (*core.Clustering, error) {
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if minPts <= 0 {
		return nil, errors.New("dbscan: minPts must be positive")
	}
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "dbscan.run")
	defer endSpan()
	var coreObjects, lookups int64
	var interrupted error
	clusterID := 0
	for i := 0; i < n; i++ {
		// Outer-boundary cancellation: a cluster expansion never stops
		// halfway, so every discovered cluster is complete.
		if err := ctx.Err(); err != nil {
			interrupted = err
			break
		}
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		lookups++
		if len(nb) < minPts {
			labels[i] = core.Noise
			continue
		}
		coreObjects++
		// Start a new cluster and expand it breadth-first.
		labels[i] = clusterID
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			o := queue[qi]
			if labels[o] == core.Noise {
				labels[o] = clusterID // border object adopted by the cluster
			}
			if labels[o] != unvisited {
				continue
			}
			labels[o] = clusterID
			onb := neighbors(o)
			lookups++
			if len(onb) >= minPts {
				coreObjects++
				queue = append(queue, onb...)
			}
		}
		clusterID++
	}
	if rec != nil {
		obs.Count(rec, "dbscan.neighborhood_lookups", lookups)
		obs.Count(rec, "dbscan.core_objects", coreObjects)
		obs.Count(rec, "dbscan.clusters", int64(clusterID))
	}
	if interrupted != nil {
		for i := range labels {
			if labels[i] == unvisited {
				labels[i] = core.Noise
			}
		}
		return core.NewClustering(labels),
			fmt.Errorf("dbscan: interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return core.NewClustering(labels), nil
}
