// Package dbscan implements density-based clustering (Ester et al. 1996)
// over a pluggable neighbourhood function. The abstraction matters here:
// SUBCLU runs DBSCAN inside candidate subspaces, and the multi-represented
// DBSCAN of Kailing et al. (2004a) swaps in union/intersection
// neighbourhoods over several data sources, so the core expansion loop must
// not assume a concrete distance.
package dbscan

import (
	"errors"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

// NeighborFunc returns the indices of all objects (including o itself) in
// the neighbourhood of object o.
type NeighborFunc func(o int) []int

// Config controls a run over points with a concrete distance.
type Config struct {
	Eps    float64
	MinPts int
}

// Run clusters points with plain DBSCAN under distance d.
func Run(points [][]float64, d dist.Func, cfg Config) (*core.Clustering, error) {
	if len(points) == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.Eps <= 0 || cfg.MinPts <= 0 {
		return nil, errors.New("dbscan: Eps and MinPts must be positive")
	}
	nf := EpsNeighbors(points, d, cfg.Eps)
	return RunGeneric(len(points), nf, cfg.MinPts)
}

// EpsNeighbors builds the standard epsilon-ball neighbourhood function.
func EpsNeighbors(points [][]float64, d dist.Func, eps float64) NeighborFunc {
	return func(o int) []int {
		var out []int
		for i, p := range points {
			if d(points[o], p) <= eps {
				out = append(out, i)
			}
		}
		return out
	}
}

// RunGeneric is the DBSCAN expansion loop over an abstract neighbourhood.
// An object is a core object when its neighbourhood holds at least minPts
// objects; clusters are the transitive closure of core-object reachability.
func RunGeneric(n int, neighbors NeighborFunc, minPts int) (*core.Clustering, error) {
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if minPts <= 0 {
		return nil, errors.New("dbscan: minPts must be positive")
	}
	const unvisited = -2
	labels := make([]int, n)
	for i := range labels {
		labels[i] = unvisited
	}
	clusterID := 0
	for i := 0; i < n; i++ {
		if labels[i] != unvisited {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = core.Noise
			continue
		}
		// Start a new cluster and expand it breadth-first.
		labels[i] = clusterID
		queue := append([]int(nil), nb...)
		for qi := 0; qi < len(queue); qi++ {
			o := queue[qi]
			if labels[o] == core.Noise {
				labels[o] = clusterID // border object adopted by the cluster
			}
			if labels[o] != unvisited {
				continue
			}
			labels[o] = clusterID
			onb := neighbors(o)
			if len(onb) >= minPts {
				queue = append(queue, onb...)
			}
		}
		clusterID++
	}
	return core.NewClustering(labels), nil
}
