package dbscan

import (
	"encoding/binary"
	"sort"

	"multiclust/internal/dist"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// maxGridDims bounds the dimensionality served by the uniform grid: a
// region query probes the 3^d cells surrounding the query point, so past
// this the probe count approaches (or exceeds) the linear scan it is meant
// to replace and NewGridIndex declines.
const maxGridDims = 6

// maxCellSpan bounds the per-dimension cell-coordinate range. Beyond it the
// int64 cell arithmetic could overflow (coordinate range / eps close to
// 2^63) and NewGridIndex declines in favor of the linear scan.
const maxCellSpan = 1e15

// GridIndex is a uniform-grid spatial index over a point set for Euclidean
// ε-region queries: every point is binned once into the cell of width
// slightly above eps containing it, and a query gathers candidates from the
// 3^d cells adjacent to the query point's cell before the exact distance
// filter. Two points within eps of each other differ by at most eps in
// every coordinate, so with cell width > eps their cells differ by at most
// one step per dimension — the adjacent-cell probe is exhaustive and the
// returned (ascending) neighbor lists are identical to the linear scan's.
// The cell width carries a small relative margin above eps so boundary
// rounding in the float64 binning can never push an in-range pair two cells
// apart.
type GridIndex struct {
	points   [][]float64
	eps      float64
	dims     int
	coords   []int64          // n*dims flattened cell coordinates, one row per point
	cells    map[string][]int // encoded cell coordinate → member indices, ascending
	cellKeys []string         // occupied cells, in first-occupant order (deterministic)
}

// NewGridIndex builds the index, or returns nil when the grid would not pay
// off (no points, dimensionality above maxGridDims, or a degenerate
// coordinate-range/eps ratio) — callers fall back to the linear scan.
func NewGridIndex(points [][]float64, eps float64) *GridIndex {
	n := len(points)
	if n == 0 || eps <= 0 {
		return nil
	}
	dims := len(points[0])
	if dims == 0 || dims > maxGridDims {
		return nil
	}
	mins := append([]float64(nil), points[0]...)
	maxs := append([]float64(nil), points[0]...)
	for _, p := range points[1:] {
		for j, v := range p {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	cw := eps * (1 + 1e-9)
	for j := range mins {
		if (maxs[j]-mins[j])/cw > maxCellSpan {
			return nil
		}
	}
	g := &GridIndex{
		points: points,
		eps:    eps,
		dims:   dims,
		coords: make([]int64, n*dims),
		cells:  make(map[string][]int, n),
	}
	key := make([]byte, 8*dims)
	for i, p := range points {
		row := g.coords[i*dims : (i+1)*dims]
		for j, v := range p {
			row[j] = int64((v - mins[j]) / cw)
		}
		encodeCell(key, row)
		members, seen := g.cells[string(key)]
		if !seen {
			g.cellKeys = append(g.cellKeys, string(key))
		}
		g.cells[string(key)] = append(members, i)
	}
	return g
}

// encodeCell writes the cell coordinate into key (8 bytes per dimension).
func encodeCell(key []byte, coord []int64) {
	for j, c := range coord {
		binary.LittleEndian.PutUint64(key[8*j:], uint64(c))
	}
}

// candidates gathers the members of the 3^dims cells adjacent to the cell
// with coordinate base into buf, sorted ascending. Every point within eps
// of any point in the base cell is among them (cell width > eps bounds
// the coordinate delta by one per dimension), so a distance filter over
// the returned slice — which visits candidates in ascending index order —
// yields the linear scan's neighbor list without any per-point sort.
func (g *GridIndex) candidates(base []int64, buf []int) []int {
	// Odometer over the 3^dims adjacent-cell offsets, each dimension
	// stepping through -1, 0, +1.
	off := make([]int64, g.dims)
	for j := range off {
		off[j] = -1
	}
	key := make([]byte, 8*g.dims)
	cell := make([]int64, g.dims)
	buf = buf[:0]
	for {
		for j := range cell {
			cell[j] = base[j] + off[j]
		}
		encodeCell(key, cell)
		buf = append(buf, g.cells[string(key)]...)
		j := 0
		for ; j < g.dims; j++ {
			off[j]++
			if off[j] <= 1 {
				break
			}
			off[j] = -1
		}
		if j == g.dims {
			break
		}
	}
	sort.Ints(buf)
	return buf
}

// Neighbors returns the ascending indices of all points within eps of point
// o (including o itself) — byte-identical to the linear Euclidean scan,
// enforced by the differential tests in grid_test.go.
func (g *GridIndex) Neighbors(o int) []int {
	p := g.points[o]
	base := g.coords[o*g.dims : (o+1)*g.dims]
	var out []int
	for _, i := range g.candidates(base, nil) {
		if dist.Euclidean(p, g.points[i]) <= g.eps {
			out = append(out, i)
		}
	}
	return out
}

// NeighborFunc adapts the index to the DBSCAN neighborhood abstraction.
// Each call runs one grid region query; use PrecomputeGridNeighbors to
// materialize all lists up front with a worker pool.
func (g *GridIndex) NeighborFunc() NeighborFunc {
	return func(o int) []int { return g.Neighbors(o) }
}

// PrecomputeGridNeighbors materializes every object's ε-neighborhood
// through a uniform-grid index (Euclidean metric), falling back to the
// linear scan when the grid declines the geometry. Counters land on the
// process-default recorder; RunContext threads its per-run recorder through
// the internal variant instead.
func PrecomputeGridNeighbors(points [][]float64, eps float64, workers int) NeighborFunc {
	return precomputeGridNeighbors(obs.Default(), points, eps, workers)
}

func precomputeGridNeighbors(rec obs.Recorder, points [][]float64, eps float64, workers int) NeighborFunc {
	g := NewGridIndex(points, eps)
	if g == nil {
		return precomputeNeighbors(rec, points, dist.Euclidean, eps, workers)
	}
	n := len(points)
	nbs := make([][]int, n)
	// Batch the queries per occupied cell: every point of a cell shares the
	// same 3^d candidate set, so the odometer walk, the map lookups, and
	// the candidate sort run once per CELL rather than once per point. The
	// per-point distance filter then visits candidates in ascending index
	// order, so each neighbor list comes out sorted for free.
	parallel.Each(len(g.cellKeys), workers, func(ci int) {
		members := g.cells[g.cellKeys[ci]]
		base := g.coords[members[0]*g.dims : members[0]*g.dims+g.dims]
		cand := g.candidates(base, nil)
		for _, o := range members {
			p := points[o]
			out := make([]int, 0, len(cand))
			for _, i := range cand {
				if dist.Euclidean(p, points[i]) <= g.eps {
					out = append(out, i)
				}
			}
			nbs[o] = out
		}
	})
	// One region query ran per object, exactly as in the linear precompute —
	// the counter tracks queries issued, not their internal cost, so the
	// linear and grid paths stay comparable in the bench reports.
	obs.Count(rec, "dbscan.region_queries", int64(n))
	obs.Count(rec, "dbscan.grid_indexes", 1)
	return func(o int) []int { return nbs[o] }
}
