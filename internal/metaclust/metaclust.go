// Package metaclust implements meta clustering (Caruana et al. 2006,
// tutorial slide 29): generate many base clusterings by perturbing the
// clustering process (random restarts, random feature weightings, varying
// k), measure pairwise dissimilarity between the solutions (1 - Rand index),
// group the solutions at the meta level with agglomerative clustering, and
// return one representative per meta cluster.
//
// The tutorial's criticism — blind generation yields many near-duplicate
// solutions — is observable in the result: Generated holds every base
// clustering, Representatives the few distinct ones.
//
// The pipeline is exposed in two exported stages — Generate (perturbed base
// solutions) and Group (dissimilarity matrix, agglomerative meta clustering,
// medoid representatives) — so the streaming sliding-window ensemble in
// internal/stream can generate per chunk and group per snapshot while a
// single-chunk stream stays byte-identical to RunContext.
package metaclust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/hierarchical"
	"multiclust/internal/kmeans"
	"multiclust/internal/metrics"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// Config controls the meta clustering run.
type Config struct {
	K             int     // clusters per base solution
	NumSolutions  int     // base clusterings to generate (default 20)
	MetaClusters  int     // distinct solutions to return (default 3)
	FeatureJitter float64 // stddev of the log-normal feature weights (default 1)
	Seed          int64
	Workers       int                    // parallelism; <=0 resolves via internal/parallel
	Diss          core.DissimilarityFunc // default 1 - Rand index
}

// normalize validates cfg against an n-point dataset and fills defaults.
func (cfg Config) normalize(n int) (Config, error) {
	if n == 0 {
		return cfg, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return cfg, fmt.Errorf("metaclust: invalid K=%d", cfg.K)
	}
	if cfg.NumSolutions <= 0 {
		cfg.NumSolutions = 20
	}
	if cfg.MetaClusters <= 0 {
		cfg.MetaClusters = 3
	}
	if cfg.MetaClusters > cfg.NumSolutions {
		return cfg, errors.New("metaclust: MetaClusters exceeds NumSolutions")
	}
	if cfg.FeatureJitter <= 0 {
		cfg.FeatureJitter = 1
	}
	if cfg.Diss == nil {
		cfg.Diss = func(a, b *core.Clustering) float64 {
			return 1 - metrics.RandIndex(a.Labels, b.Labels)
		}
	}
	return cfg, nil
}

// Result of a meta clustering run.
type Result struct {
	Generated       []*core.Clustering // all base solutions
	Weights         [][]float64        // feature weighting used per solution
	MetaLabels      []int              // meta-cluster id per base solution
	Representatives []*core.Clustering // one per meta cluster (medoid by Diss)
	MeanPairwise    float64            // mean pairwise dissimilarity of Generated
}

// BaseSolution is one perturbed base clustering: its labels, the feature
// weighting that produced it, the k-means centers in that weighted space
// (what a streaming consumer needs to extend the solution to rows it was
// not fitted on), and the k-means seed that ran it.
type BaseSolution struct {
	Clustering *core.Clustering
	Weights    []float64
	Centers    [][]float64
	Seed       int64
}

// Run generates and groups base clusterings of points.
func Run(points [][]float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation: ctx is threaded into every base
// k-means run (each polls at its own iteration boundary) and checked again
// between the pipeline stages. On interruption the generated solutions are
// still valid clusterings — k-means returns best-so-far — so the meta-level
// grouping completes on them and the result is wrapped in
// core.ErrInterrupted. With a background context the output is
// byte-identical to Run.
func RunContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	cfg, err := cfg.normalize(len(points))
	if err != nil {
		return nil, err
	}
	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "metaclust.run")
	defer endSpan()

	sols, interrupted := Generate(ctx, points, cfg)
	if sols == nil {
		return nil, interrupted
	}
	res := &Result{
		Generated: make([]*core.Clustering, len(sols)),
		Weights:   make([][]float64, len(sols)),
	}
	for i, s := range sols {
		res.Generated[i] = s.Clustering
		res.Weights[i] = s.Weights
	}

	g, err := Group(ctx, res.Generated, cfg.MetaClusters, cfg.Diss, cfg.Workers)
	if err != nil {
		return nil, err
	}
	res.MetaLabels = g.MetaLabels
	res.MeanPairwise = g.MeanPairwise
	for _, idx := range g.Representatives {
		res.Representatives = append(res.Representatives, res.Generated[idx])
	}
	if rec != nil {
		obs.Count(rec, "metaclust.representatives", int64(len(res.Representatives)))
		obs.Gauge(rec, "metaclust.mean_pairwise", res.MeanPairwise)
	}
	if interrupted != nil {
		return res, fmt.Errorf("metaclust: interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return res, nil
}

// Generate produces cfg.NumSolutions perturbed base solutions of points.
// The RNG draws (each member's feature weights, then its k-means seed)
// happen serially up front in exactly the order a serial loop would make
// them, so the generated ensemble is identical for any worker count; only
// the k-means runs fan out. On a hard failure the returned slice is nil; on
// interruption the slice holds valid best-so-far clusterings and the error
// is the raw cause (RunContext wraps it in core.ErrInterrupted).
func Generate(ctx context.Context, points [][]float64, cfg Config) ([]BaseSolution, error) {
	cfg, err := cfg.normalize(len(points))
	if err != nil {
		return nil, err
	}
	n, d := len(points), len(points[0])
	rng := rand.New(rand.NewSource(cfg.Seed))
	rec := obs.From(ctx)
	obs.Count(rec, "metaclust.base_solutions", int64(cfg.NumSolutions))

	sols := make([]BaseSolution, cfg.NumSolutions)
	for s := range sols {
		// Zipf-style random feature weighting, the diversity device of the
		// original paper: w_j = exp(jitter * N(0,1)).
		w := make([]float64, d)
		for j := range w {
			w[j] = expNorm(rng, cfg.FeatureJitter)
		}
		sols[s].Weights = w
		sols[s].Seed = rng.Int63()
	}
	workers := parallel.Workers(cfg.Workers)
	innerW := workers / cfg.NumSolutions
	if innerW < 1 {
		innerW = 1
	}
	type genOut struct {
		clustering *core.Clustering
		centers    [][]float64
		err        error
	}
	// Phase span: the base-run fan-out. Each k-means run receives the
	// generate-phase context, so its own span nests under the caller's span
	// in the trace tree.
	outs := func() []genOut {
		gctx, end := obs.SpanCtx(ctx, rec, "metaclust.generate")
		defer end()
		return parallel.Map(cfg.NumSolutions, workers, func(s int) genOut {
			w := sols[s].Weights
			weighted := make([][]float64, n)
			for i, p := range points {
				row := make([]float64, d)
				for j, v := range p {
					row[j] = v * w[j]
				}
				weighted[i] = row
			}
			km, err := kmeans.RunContext(gctx, weighted, kmeans.Config{K: cfg.K, Seed: sols[s].Seed, Workers: innerW})
			if km == nil {
				return genOut{err: err}
			}
			return genOut{clustering: km.Clustering, centers: km.Centers, err: err}
		})
	}()
	var interrupted error
	for s, o := range outs {
		if o.clustering == nil {
			return nil, o.err
		}
		if o.err != nil {
			interrupted = o.err
		}
		sols[s].Clustering = o.clustering
		sols[s].Centers = o.centers
	}
	return sols, interrupted
}

// Grouping is the meta-level structure over a set of base solutions.
type Grouping struct {
	MetaLabels      []int   // meta-cluster id per solution
	Representatives []int   // medoid solution index per meta cluster
	MeanPairwise    float64 // mean pairwise dissimilarity
}

// Group clusters the base solutions themselves: pairwise dissimilarities
// (default 1 − Rand index when dissFn is nil), average-link agglomerative
// grouping into metaClusters groups, and the medoid of each group as its
// representative. The triangular dissimilarity loop is sharded by row and
// the mean accumulated in row order afterwards, so the grouping is
// byte-identical for any worker count. All clusterings must label the same
// objects.
func Group(ctx context.Context, sols []*core.Clustering, metaClusters int, dissFn core.DissimilarityFunc, workers int) (*Grouping, error) {
	m := len(sols)
	if m == 0 {
		return nil, core.ErrEmptyDataset
	}
	if metaClusters <= 0 {
		metaClusters = 3
	}
	if metaClusters > m {
		return nil, errors.New("metaclust: MetaClusters exceeds NumSolutions")
	}
	if dissFn == nil {
		dissFn = func(a, b *core.Clustering) float64 {
			return 1 - metrics.RandIndex(a.Labels, b.Labels)
		}
	}
	workers = parallel.Workers(workers)
	rec := obs.From(ctx)
	_, end := obs.SpanCtx(ctx, rec, "metaclust.group")
	defer end()

	g := &Grouping{}
	diss := make([][]float64, m)
	var sum float64
	var cnt int
	for i := range diss {
		diss[i] = make([]float64, m)
	}
	parallel.Each(m, workers, func(i int) {
		for j := i + 1; j < m; j++ {
			v := dissFn(sols[i], sols[j])
			diss[i][j], diss[j][i] = v, v
		}
	})
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			sum += diss[i][j]
			cnt++
		}
	}
	if cnt > 0 {
		g.MeanPairwise = sum / float64(cnt)
	}

	// Group solutions: average-link agglomerative over the meta distance.
	// Each "point" is a solution index; the distance function looks up the
	// precomputed matrix.
	ids := make([][]float64, m)
	for i := range ids {
		ids[i] = []float64{float64(i)}
	}
	metaDist := dist.Func(func(a, b []float64) float64 { return diss[int(a[0])][int(b[0])] })
	dg, err := hierarchical.Run(ids, metaDist, hierarchical.AverageLink)
	if err != nil {
		return nil, err
	}
	metaC, err := dg.Cut(metaClusters)
	if err != nil {
		return nil, err
	}
	g.MetaLabels = metaC.Labels

	// Representative of each meta cluster: the medoid (min summed Diss to
	// the rest of its group).
	for _, group := range metaC.Clusters() {
		best, bestCost := group[0], -1.0
		for _, i := range group {
			var cost float64
			for _, j := range group {
				cost += diss[i][j]
			}
			if bestCost < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		g.Representatives = append(g.Representatives, best)
	}
	return g, nil
}

// expNorm returns exp(sigma * N(0,1)), clamped to avoid overflow.
func expNorm(rng *rand.Rand, sigma float64) float64 {
	x := rng.NormFloat64() * sigma
	if x > 6 {
		x = 6
	}
	if x < -6 {
		x = -6
	}
	return math.Exp(x)
}
