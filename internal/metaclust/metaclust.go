// Package metaclust implements meta clustering (Caruana et al. 2006,
// tutorial slide 29): generate many base clusterings by perturbing the
// clustering process (random restarts, random feature weightings, varying
// k), measure pairwise dissimilarity between the solutions (1 - Rand index),
// group the solutions at the meta level with agglomerative clustering, and
// return one representative per meta cluster.
//
// The tutorial's criticism — blind generation yields many near-duplicate
// solutions — is observable in the result: Generated holds every base
// clustering, Representatives the few distinct ones.
package metaclust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/dist"
	"multiclust/internal/hierarchical"
	"multiclust/internal/kmeans"
	"multiclust/internal/metrics"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
)

// Config controls the meta clustering run.
type Config struct {
	K             int     // clusters per base solution
	NumSolutions  int     // base clusterings to generate (default 20)
	MetaClusters  int     // distinct solutions to return (default 3)
	FeatureJitter float64 // stddev of the log-normal feature weights (default 1)
	Seed          int64
	Workers       int                    // parallelism; <=0 resolves via internal/parallel
	Diss          core.DissimilarityFunc // default 1 - Rand index
}

// Result of a meta clustering run.
type Result struct {
	Generated       []*core.Clustering // all base solutions
	Weights         [][]float64        // feature weighting used per solution
	MetaLabels      []int              // meta-cluster id per base solution
	Representatives []*core.Clustering // one per meta cluster (medoid by Diss)
	MeanPairwise    float64            // mean pairwise dissimilarity of Generated
}

// Run generates and groups base clusterings of points.
func Run(points [][]float64, cfg Config) (*Result, error) {
	return RunContext(context.Background(), points, cfg)
}

// RunContext is Run with cancellation: ctx is threaded into every base
// k-means run (each polls at its own iteration boundary) and checked again
// between the pipeline stages. On interruption the generated solutions are
// still valid clusterings — k-means returns best-so-far — so the meta-level
// grouping completes on them and the result is wrapped in
// core.ErrInterrupted. With a background context the output is
// byte-identical to Run.
func RunContext(ctx context.Context, points [][]float64, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, core.ErrEmptyDataset
	}
	if cfg.K <= 0 || cfg.K > n {
		return nil, fmt.Errorf("metaclust: invalid K=%d", cfg.K)
	}
	if cfg.NumSolutions <= 0 {
		cfg.NumSolutions = 20
	}
	if cfg.MetaClusters <= 0 {
		cfg.MetaClusters = 3
	}
	if cfg.MetaClusters > cfg.NumSolutions {
		return nil, errors.New("metaclust: MetaClusters exceeds NumSolutions")
	}
	if cfg.FeatureJitter <= 0 {
		cfg.FeatureJitter = 1
	}
	if cfg.Diss == nil {
		cfg.Diss = func(a, b *core.Clustering) float64 {
			return 1 - metrics.RandIndex(a.Labels, b.Labels)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := len(points[0])

	rec := obs.From(ctx)
	ctx, endSpan := obs.SpanCtx(ctx, rec, "metaclust.run")
	defer endSpan()
	obs.Count(rec, "metaclust.base_solutions", int64(cfg.NumSolutions))

	res := &Result{}
	// Base-solution generation is the hot path: every member reweights the
	// features and runs a full k-means. The RNG draws (weights, then the
	// member's k-means seed) happen serially up front in exactly the order
	// the serial loop made them, so the generated ensemble is identical for
	// any worker count; only the k-means runs fan out.
	weights := make([][]float64, cfg.NumSolutions)
	seeds := make([]int64, cfg.NumSolutions)
	for s := range weights {
		// Zipf-style random feature weighting, the diversity device of the
		// original paper: w_j = exp(jitter * N(0,1)).
		w := make([]float64, d)
		for j := range w {
			w[j] = expNorm(rng, cfg.FeatureJitter)
		}
		weights[s] = w
		seeds[s] = rng.Int63()
	}
	workers := parallel.Workers(cfg.Workers)
	innerW := workers / cfg.NumSolutions
	if innerW < 1 {
		innerW = 1
	}
	type genOut struct {
		clustering *core.Clustering
		err        error
	}
	// Phase span: the base-run fan-out. Each k-means run receives the
	// generate-phase context, so its own span nests under
	// metaclust.run/metaclust.generate in the trace tree.
	outs := func() []genOut {
		gctx, end := obs.SpanCtx(ctx, rec, "metaclust.generate")
		defer end()
		return parallel.Map(cfg.NumSolutions, workers, func(s int) genOut {
			w := weights[s]
			weighted := make([][]float64, n)
			for i, p := range points {
				row := make([]float64, d)
				for j, v := range p {
					row[j] = v * w[j]
				}
				weighted[i] = row
			}
			km, err := kmeans.RunContext(gctx, weighted, kmeans.Config{K: cfg.K, Seed: seeds[s], Workers: innerW})
			if km == nil {
				return genOut{err: err}
			}
			return genOut{clustering: km.Clustering, err: err}
		})
	}()
	var interrupted error
	for _, o := range outs {
		if o.clustering == nil {
			return nil, o.err
		}
		if o.err != nil {
			interrupted = o.err
		}
		res.Generated = append(res.Generated, o.clustering)
	}
	res.Weights = weights

	// Phase span: meta-level grouping — pairwise dissimilarities,
	// agglomerative meta clustering, and representative (medoid)
	// selection.
	if err := func() error {
		_, end := obs.SpanCtx(ctx, rec, "metaclust.group")
		defer end()
		// Pairwise dissimilarity at the meta level; the triangular loop is
		// sharded by row and the mean accumulated in row order afterwards.
		m := len(res.Generated)
		diss := make([][]float64, m)
		var sum float64
		var cnt int
		for i := range diss {
			diss[i] = make([]float64, m)
		}
		parallel.Each(m, workers, func(i int) {
			for j := i + 1; j < m; j++ {
				v := cfg.Diss(res.Generated[i], res.Generated[j])
				diss[i][j], diss[j][i] = v, v
			}
		})
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				sum += diss[i][j]
				cnt++
			}
		}
		if cnt > 0 {
			res.MeanPairwise = sum / float64(cnt)
		}

		// Group solutions: average-link agglomerative over the meta distance.
		// Each "point" is a solution index; the distance function looks up the
		// precomputed matrix.
		ids := make([][]float64, m)
		for i := range ids {
			ids[i] = []float64{float64(i)}
		}
		metaDist := dist.Func(func(a, b []float64) float64 { return diss[int(a[0])][int(b[0])] })
		dg, err := hierarchical.Run(ids, metaDist, hierarchical.AverageLink)
		if err != nil {
			return err
		}
		metaC, err := dg.Cut(cfg.MetaClusters)
		if err != nil {
			return err
		}
		res.MetaLabels = metaC.Labels

		// Representative of each meta cluster: the medoid (min summed Diss to
		// the rest of its group).
		for _, group := range metaC.Clusters() {
			best, bestCost := group[0], -1.0
			for _, i := range group {
				var cost float64
				for _, j := range group {
					cost += diss[i][j]
				}
				if bestCost < 0 || cost < bestCost {
					best, bestCost = i, cost
				}
			}
			res.Representatives = append(res.Representatives, res.Generated[best])
		}
		return nil
	}(); err != nil {
		return nil, err
	}
	if rec != nil {
		obs.Count(rec, "metaclust.representatives", int64(len(res.Representatives)))
		obs.Gauge(rec, "metaclust.mean_pairwise", res.MeanPairwise)
	}
	if interrupted != nil {
		return res, fmt.Errorf("metaclust: interrupted: %v: %w", interrupted, core.ErrInterrupted)
	}
	return res, nil
}

// expNorm returns exp(sigma * N(0,1)), clamped to avoid overflow.
func expNorm(rng *rand.Rand, sigma float64) float64 {
	x := rng.NormFloat64() * sigma
	if x > 6 {
		x = 6
	}
	if x < -6 {
		x = -6
	}
	return math.Exp(x)
}
