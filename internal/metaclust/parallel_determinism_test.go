package metaclust

import (
	"testing"

	"multiclust/internal/dataset"
)

// Ensemble generation fans out over the worker pool while the RNG draws stay
// serial, so every generated member, weight vector and representative must
// be exactly identical for any worker count.
func TestMetaClusteringWorkersDeterministic(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(1, 20)
	serial, err := Run(ds.Points, Config{K: 2, NumSolutions: 10, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ds.Points, Config{K: 2, NumSolutions: 10, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par.MeanPairwise != serial.MeanPairwise {
		t.Errorf("MeanPairwise %v != %v", par.MeanPairwise, serial.MeanPairwise)
	}
	for s := range serial.Generated {
		for i := range serial.Generated[s].Labels {
			if par.Generated[s].Labels[i] != serial.Generated[s].Labels[i] {
				t.Fatalf("solution %d label %d differs", s, i)
			}
		}
		for j := range serial.Weights[s] {
			if par.Weights[s][j] != serial.Weights[s][j] {
				t.Fatalf("solution %d weight %d differs", s, j)
			}
		}
	}
	for i := range serial.MetaLabels {
		if par.MetaLabels[i] != serial.MetaLabels[i] {
			t.Fatalf("meta label %d differs", i)
		}
	}
}
