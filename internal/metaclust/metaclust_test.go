package metaclust

import (
	"testing"

	"multiclust/internal/dataset"
	"multiclust/internal/metrics"
)

func TestRunRecoversBothToyViews(t *testing.T) {
	ds, hor, ver := dataset.FourBlobToy(1, 30)
	res, err := Run(ds.Points, Config{K: 2, NumSolutions: 30, MetaClusters: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Generated) != 30 {
		t.Fatalf("generated %d", len(res.Generated))
	}
	if len(res.Representatives) != 3 {
		t.Fatalf("representatives %d", len(res.Representatives))
	}
	// Among representatives there should be one close to the horizontal
	// split and one close to the vertical split.
	bestHor, bestVer := 0.0, 0.0
	for _, r := range res.Representatives {
		if a := metrics.AdjustedRand(hor, r.Labels); a > bestHor {
			bestHor = a
		}
		if a := metrics.AdjustedRand(ver, r.Labels); a > bestVer {
			bestVer = a
		}
	}
	if bestHor < 0.8 || bestVer < 0.8 {
		t.Errorf("representatives miss a view: hor=%v ver=%v", bestHor, bestVer)
	}
}

func TestBlindGenerationIsRedundant(t *testing.T) {
	// The tutorial's criticism (slide 29): many generated solutions are
	// near-duplicates. Verify redundancy exists: mean pairwise dissimilarity
	// of all generated solutions is much lower than 1, and at least two
	// generated solutions are near-identical.
	ds, _, _ := dataset.FourBlobToy(2, 25)
	res, err := Run(ds.Points, Config{K: 2, NumSolutions: 20, MetaClusters: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	foundDup := false
	for i := 0; i < len(res.Generated) && !foundDup; i++ {
		for j := i + 1; j < len(res.Generated); j++ {
			if metrics.RandIndex(res.Generated[i].Labels, res.Generated[j].Labels) > 0.99 {
				foundDup = true
				break
			}
		}
	}
	if !foundDup {
		t.Error("expected near-duplicate base solutions from blind generation")
	}
	if res.MeanPairwise <= 0 {
		t.Errorf("mean pairwise dissimilarity = %v, want > 0", res.MeanPairwise)
	}
}

func TestMetaLabelsPartitionSolutions(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(4, 20)
	res, err := Run(ds.Points, Config{K: 2, NumSolutions: 12, MetaClusters: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MetaLabels) != 12 {
		t.Fatalf("meta labels %d", len(res.MetaLabels))
	}
	seen := map[int]bool{}
	for _, l := range res.MetaLabels {
		if l < 0 {
			t.Fatal("meta labels must not contain noise")
		}
		seen[l] = true
	}
	if len(seen) != 4 {
		t.Errorf("meta clusters = %d, want 4", len(seen))
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run(nil, Config{K: 2}); err == nil {
		t.Error("empty data should fail")
	}
	pts := [][]float64{{0}, {1}, {2}}
	if _, err := Run(pts, Config{K: 0}); err == nil {
		t.Error("K=0 should fail")
	}
	if _, err := Run(pts, Config{K: 2, NumSolutions: 2, MetaClusters: 5}); err == nil {
		t.Error("MetaClusters > NumSolutions should fail")
	}
}

func TestDeterminism(t *testing.T) {
	ds, _, _ := dataset.FourBlobToy(5, 15)
	a, _ := Run(ds.Points, Config{K: 2, NumSolutions: 8, MetaClusters: 2, Seed: 11})
	b, _ := Run(ds.Points, Config{K: 2, NumSolutions: 8, MetaClusters: 2, Seed: 11})
	for i := range a.Generated {
		for j := range a.Generated[i].Labels {
			if a.Generated[i].Labels[j] != b.Generated[i].Labels[j] {
				t.Fatal("same seed must reproduce the same solutions")
			}
		}
	}
}
