package robust

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// Backoff is a deterministic wait schedule between degenerate-fit retry
// attempts: exponential growth from Base with seeded jitter. The zero value
// waits nothing between attempts — exactly the historic Retry behavior — so
// existing callers are unaffected.
//
// Determinism contract: Delay is a pure function of (Backoff, retry index).
// The jitter is drawn from a rand.Rand seeded with Seed+retry, never from
// wall-clock or global entropy, so two runs with the same schedule sleep the
// same durations in the same order (pinned by the detsource/globalrand lint
// rules). Only the *waiting* itself touches real time, and that is
// injectable via Sleep so tests run instantly.
type Backoff struct {
	// Base is the delay before the first retry (attempt 1). Zero or
	// negative disables waiting entirely.
	Base time.Duration
	// Factor multiplies the delay per further retry; values below 1
	// default to 2 (plain exponential doubling).
	Factor float64
	// Max caps every individual delay; zero means no cap.
	Max time.Duration
	// Jitter is the fraction of each delay drawn as a symmetric random
	// perturbation: delay *= 1 + Jitter*u with u uniform in [-1, 1).
	// Values are clamped to [0, 1].
	Jitter float64
	// Seed seeds the jitter sequence (retry r perturbs with Seed+r).
	Seed int64
	// Sleep replaces the real wait when non-nil, so tests can record the
	// schedule and return immediately. The default waits on a timer and
	// aborts early when the context fires.
	Sleep func(time.Duration)
}

// Delay returns the wait before the given retry (1-based; retry 0 — the
// original attempt — never waits). It is deterministic: same receiver and
// index, same duration, on every run and platform.
func (b Backoff) Delay(retry int) time.Duration {
	if b.Base <= 0 || retry <= 0 {
		return 0
	}
	f := b.Factor
	if f < 1 {
		f = 2
	}
	d := float64(b.Base) * math.Pow(f, float64(retry-1))
	if b.Max > 0 && d > float64(b.Max) {
		d = float64(b.Max)
	}
	if j := math.Min(math.Max(b.Jitter, 0), 1); j > 0 {
		rng := rand.New(rand.NewSource(b.Seed + int64(retry)))
		d *= 1 + j*(2*rng.Float64()-1)
	}
	if d <= 0 {
		return 0
	}
	return time.Duration(d)
}

// sleep waits Delay-style for d, honouring ctx. The injectable Sleep hook
// (tests) is called unconditionally; the default path selects between a
// timer and ctx.Done so a cancelled job never serves out a backoff.
func (b Backoff) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	if b.Sleep != nil {
		b.Sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// RetryBackoff runs fn up to budget times on the deterministic seed schedule
// seed, seed+1, ..., seed+budget-1, waiting b.Delay(attempt) between
// attempts, and returns on the first attempt whose error is nil or not a
// degenerate outcome (errors.Is ErrDegenerate). Attempt 0 uses the caller's
// original seed and never waits, so a run that succeeds first try is
// byte-identical with or without the wrapper. A context that fires during a
// backoff wait aborts the schedule with an error wrapping both
// ErrInterrupted and the last degenerate error.
func RetryBackoff(ctx context.Context, seed int64, budget int, b Backoff, fn func(seed int64) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if budget < 1 {
		budget = 1
	}
	var err error
	for attempt := 0; attempt < budget; attempt++ {
		if attempt > 0 {
			if serr := b.sleep(ctx, b.Delay(attempt)); serr != nil {
				return fmt.Errorf("robust: backoff interrupted before attempt %d (seed %d): %w (last: %w)",
					attempt, seed+int64(attempt), core.ErrInterrupted, err)
			}
		}
		err = fn(seed + int64(attempt))
		if err == nil || !errors.Is(err, core.ErrDegenerate) {
			return err
		}
		// Cold path: only degenerate outcomes reach here, so the recorder
		// lookup costs nothing on the success path.
		obs.Count(obs.Default(), "robust.degenerate_retries", 1)
	}
	return fmt.Errorf("robust: %d attempts with seeds %d..%d all degenerate: %w",
		budget, seed, seed+int64(budget-1), err)
}

// RetryValueBackoff is RetryBackoff for functions that produce a value
// alongside the error. On total failure (or an interrupted backoff) it
// returns the zero value and the wrapped last error.
func RetryValueBackoff[T any](ctx context.Context, seed int64, budget int, b Backoff, fn func(seed int64) (T, error)) (T, error) {
	var out T
	err := RetryBackoff(ctx, seed, budget, b, func(s int64) error {
		var e error
		out, e = fn(s)
		return e
	})
	if err != nil && errors.Is(err, core.ErrDegenerate) {
		var zero T
		return zero, err
	}
	return out, err
}

// Retry runs fn up to budget times with the deterministic seed schedule
// seed, seed+1, ..., seed+budget-1, returning on the first attempt whose
// error is nil or is not a degenerate outcome (errors.Is ErrDegenerate).
// Attempt 0 uses the caller's original seed, so a run that succeeds first
// try is byte-identical with or without Retry. The last attempt's error is
// returned if every attempt degenerates. Attempts follow each other
// immediately (the zero Backoff); use RetryBackoff to wait between them.
//
// The schedule is part of the determinism contract: identical inputs and
// seed produce the identical attempt sequence regardless of worker count.
func Retry(seed int64, budget int, fn func(seed int64) error) error {
	return RetryBackoff(context.Background(), seed, budget, Backoff{}, fn)
}

// RetryValue is Retry for functions that produce a value alongside the
// error. On total failure it returns the zero value and the wrapped last
// error.
func RetryValue[T any](seed int64, budget int, fn func(seed int64) (T, error)) (T, error) {
	return RetryValueBackoff(context.Background(), seed, budget, Backoff{}, fn)
}
