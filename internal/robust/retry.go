package robust

import (
	"errors"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/obs"
)

// Retry runs fn up to budget times with the deterministic seed schedule
// seed, seed+1, ..., seed+budget-1, returning on the first attempt whose
// error is nil or is not a degenerate outcome (errors.Is ErrDegenerate).
// Attempt 0 uses the caller's original seed, so a run that succeeds first
// try is byte-identical with or without Retry. The last attempt's error is
// returned if every attempt degenerates.
//
// The schedule is part of the determinism contract: identical inputs and
// seed produce the identical attempt sequence regardless of worker count.
func Retry(seed int64, budget int, fn func(seed int64) error) error {
	if budget < 1 {
		budget = 1
	}
	var err error
	for attempt := 0; attempt < budget; attempt++ {
		err = fn(seed + int64(attempt))
		if err == nil || !errors.Is(err, core.ErrDegenerate) {
			return err
		}
		// Cold path: only degenerate outcomes reach here, so the recorder
		// lookup costs nothing on the success path.
		obs.Count(obs.Default(), "robust.degenerate_retries", 1)
	}
	return fmt.Errorf("robust: %d attempts with seeds %d..%d all degenerate: %w",
		budget, seed, seed+int64(budget-1), err)
}

// RetryValue is Retry for functions that produce a value alongside the
// error. On total failure it returns the zero value and the wrapped last
// error.
func RetryValue[T any](seed int64, budget int, fn func(seed int64) (T, error)) (T, error) {
	var out T
	err := Retry(seed, budget, func(s int64) error {
		var e error
		out, e = fn(s)
		return e
	})
	if err != nil && errors.Is(err, core.ErrDegenerate) {
		var zero T
		return zero, err
	}
	return out, err
}
