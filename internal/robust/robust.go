// Package robust is the fault-tolerant execution layer of multiclust: a
// validation gate that keeps NaN/Inf-contaminated or structurally broken
// data out of every algorithm, deterministic repair policies for data that
// can be salvaged, budgeted retry-with-reseed for degenerate outcomes, and
// panic-to-error conversion for the facade boundary.
//
// The facade wires ValidateDataset / ValidateLabels in front of every
// exported algorithm and defers RecoverTo around every call, so no exported
// multiclust function can panic and no contaminated dataset silently poisons
// a result. The typed sentinels (ErrInvalidInput, ErrShape, ErrInterrupted,
// ErrDegenerate, ErrPanic) are defined in internal/core — the bottom of the
// import graph — and re-exported here; match them with errors.Is.
package robust

import (
	"fmt"
	"math"

	"multiclust/internal/core"
)

// Re-exported typed sentinels; see internal/core for the taxonomy.
var (
	ErrInvalidInput = core.ErrInvalidInput
	ErrShape        = core.ErrShape
	ErrInterrupted  = core.ErrInterrupted
	ErrDegenerate   = core.ErrDegenerate
	ErrPanic        = core.ErrPanic
	ErrEmptyDataset = core.ErrEmptyDataset
)

// ValidateDataset checks that points form a rectangular table of finite
// values: at least one row, at least one dimension, every row the same
// width, no NaN or Inf anywhere. Violations return a typed error carrying
// the first offending position (errors.Is: ErrEmptyDataset, ErrShape,
// ErrInvalidInput).
func ValidateDataset(points [][]float64) error {
	if len(points) == 0 {
		return core.ErrEmptyDataset
	}
	d := len(points[0])
	if d == 0 {
		return fmt.Errorf("robust: row 0 has zero dimensions: %w", core.ErrInvalidInput)
	}
	for i, p := range points {
		if len(p) != d {
			return fmt.Errorf("robust: row %d has %d dims, row 0 has %d: %w", i, len(p), d, core.ErrShape)
		}
		for j, v := range p {
			if math.IsNaN(v) {
				return fmt.Errorf("robust: NaN at row %d col %d: %w", i, j, core.ErrInvalidInput)
			}
			if math.IsInf(v, 0) {
				return fmt.Errorf("robust: Inf at row %d col %d: %w", i, j, core.ErrInvalidInput)
			}
		}
	}
	return nil
}

// ValidateViews applies ValidateDataset to every view and additionally
// requires all views to describe the same number of objects.
func ValidateViews(views ...[][]float64) error {
	if len(views) == 0 {
		return core.ErrEmptyDataset
	}
	for v, view := range views {
		if err := ValidateDataset(view); err != nil {
			return fmt.Errorf("robust: view %d: %w", v, err)
		}
		if len(view) != len(views[0]) {
			return fmt.Errorf("robust: view %d has %d objects, view 0 has %d: %w",
				v, len(view), len(views[0]), core.ErrShape)
		}
	}
	return nil
}

// ValidateLabels checks that a label vector covers exactly n objects.
// Negative labels are legal (core.Noise); nil is rejected.
func ValidateLabels(labels []int, n int) error {
	if labels == nil {
		return fmt.Errorf("robust: nil label vector: %w", core.ErrInvalidInput)
	}
	if len(labels) != n {
		return fmt.Errorf("robust: labeling covers %d objects, dataset has %d: %w",
			len(labels), n, core.ErrShape)
	}
	return nil
}

// ValidateClustering checks a clustering pointer against the object count.
func ValidateClustering(c *core.Clustering, n int) error {
	if c == nil {
		return fmt.Errorf("robust: nil clustering: %w", core.ErrInvalidInput)
	}
	return ValidateLabels(c.Labels, n)
}

// ValidateClusterings checks every clustering in a set against n.
func ValidateClusterings(cs []*core.Clustering, n int) error {
	for i, c := range cs {
		if err := ValidateClustering(c, n); err != nil {
			return fmt.Errorf("robust: clustering %d: %w", i, err)
		}
	}
	return nil
}

// Policy selects how Sanitize treats rows that fail validation.
type Policy int

const (
	// Reject performs no repair: Sanitize returns the validation error.
	Reject Policy = iota
	// DropRows removes every ragged row and every row containing a NaN or
	// Inf coordinate.
	DropRows
	// ImputeMean removes ragged rows, then replaces each NaN/Inf cell with
	// the mean of the finite values in its column (0 when a column has no
	// finite value at all).
	ImputeMean
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case Reject:
		return "reject"
	case DropRows:
		return "drop-rows"
	case ImputeMean:
		return "impute-mean"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Report records what a Sanitize pass changed. Kept maps each output row to
// its original index so labels and ground truths can be realigned.
type Report struct {
	Kept         []int // original index of every surviving row, ascending
	DroppedRows  []int // original indices removed, ascending
	ImputedCells int   // NaN/Inf cells replaced under ImputeMean
}

// Clean reports whether the pass changed nothing.
func (r *Report) Clean() bool {
	return len(r.DroppedRows) == 0 && r.ImputedCells == 0
}

// Sanitize returns a deep, repaired copy of points under the given policy,
// plus a report of what changed. It is fully deterministic: repairs depend
// only on the input, never on iteration or scheduling order. Under Reject
// the copy is nil whenever validation fails. An empty dataset — or one
// where every row is dropped — returns ErrEmptyDataset.
func Sanitize(points [][]float64, policy Policy) ([][]float64, *Report, error) {
	if policy == Reject {
		if err := ValidateDataset(points); err != nil {
			return nil, nil, err
		}
		out := make([][]float64, len(points))
		for i, p := range points {
			out[i] = append([]float64(nil), p...)
		}
		return out, &Report{Kept: iota0(len(points))}, nil
	}
	if len(points) == 0 {
		return nil, nil, core.ErrEmptyDataset
	}
	d := len(points[0])
	rep := &Report{}
	var kept [][]float64
	for i, p := range points {
		bad := len(p) != d || d == 0
		if !bad && policy == DropRows {
			for _, v := range p {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					bad = true
					break
				}
			}
		}
		if bad {
			rep.DroppedRows = append(rep.DroppedRows, i)
			continue
		}
		rep.Kept = append(rep.Kept, i)
		kept = append(kept, append([]float64(nil), p...))
	}
	if len(kept) == 0 {
		return nil, nil, fmt.Errorf("robust: no rows survive %v: %w", policy, core.ErrEmptyDataset)
	}
	if policy == ImputeMean {
		for j := 0; j < d; j++ {
			var sum float64
			var cnt int
			for _, p := range kept {
				if v := p[j]; !math.IsNaN(v) && !math.IsInf(v, 0) {
					sum += v
					cnt++
				}
			}
			mean := 0.0
			if cnt > 0 {
				mean = sum / float64(cnt)
			}
			for _, p := range kept {
				if v := p[j]; math.IsNaN(v) || math.IsInf(v, 0) {
					p[j] = mean
					rep.ImputedCells++
				}
			}
		}
	}
	return kept, rep, nil
}

func iota0(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RecoverTo is deferred at the facade boundary: it converts a panic into an
// error wrapping ErrPanic, so no exported multiclust call can crash the
// process. Worker-goroutine panics reach it because internal/parallel
// re-raises them on the calling goroutine (as *parallel.PanicError, whose
// message carries the task index).
func RecoverTo(err *error) {
	if r := recover(); r != nil {
		*err = fmt.Errorf("robust: recovered panic: %v: %w", r, core.ErrPanic)
	}
}
