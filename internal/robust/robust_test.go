package robust

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"multiclust/internal/core"
)

func TestValidateDatasetClean(t *testing.T) {
	if err := ValidateDataset([][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Fatalf("clean dataset rejected: %v", err)
	}
}

func TestValidateDatasetEmpty(t *testing.T) {
	if err := ValidateDataset(nil); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("want ErrEmptyDataset, got %v", err)
	}
	if err := ValidateDataset([][]float64{}); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("want ErrEmptyDataset, got %v", err)
	}
}

func TestValidateDatasetZeroDim(t *testing.T) {
	if err := ValidateDataset([][]float64{{}}); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput, got %v", err)
	}
}

func TestValidateDatasetRagged(t *testing.T) {
	err := ValidateDataset([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
	if !strings.Contains(err.Error(), "row 1") {
		t.Fatalf("error should carry the offending row: %v", err)
	}
}

func TestValidateDatasetNonFinite(t *testing.T) {
	for name, v := range map[string]float64{
		"nan":  math.NaN(),
		"+inf": math.Inf(1),
		"-inf": math.Inf(-1),
	} {
		err := ValidateDataset([][]float64{{0, 1}, {2, v}})
		if !errors.Is(err, ErrInvalidInput) {
			t.Fatalf("%s: want ErrInvalidInput, got %v", name, err)
		}
		if !strings.Contains(err.Error(), "row 1 col 1") {
			t.Fatalf("%s: error should carry the position: %v", name, err)
		}
	}
}

func TestValidateViews(t *testing.T) {
	a := [][]float64{{1}, {2}}
	b := [][]float64{{1, 1}, {2, 2}}
	if err := ValidateViews(a, b); err != nil {
		t.Fatalf("matched views rejected: %v", err)
	}
	if err := ValidateViews(a, b[:1]); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for mismatched object counts, got %v", err)
	}
	if err := ValidateViews(); !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("want ErrEmptyDataset for no views, got %v", err)
	}
}

func TestValidateLabels(t *testing.T) {
	if err := ValidateLabels([]int{0, 1, core.Noise}, 3); err != nil {
		t.Fatalf("valid labels rejected: %v", err)
	}
	if err := ValidateLabels(nil, 3); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput for nil labels, got %v", err)
	}
	if err := ValidateLabels([]int{0, 1}, 3); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape for short labels, got %v", err)
	}
}

func TestValidateClusterings(t *testing.T) {
	good := core.NewClustering([]int{0, 1})
	if err := ValidateClusterings([]*core.Clustering{good, good}, 2); err != nil {
		t.Fatalf("valid clusterings rejected: %v", err)
	}
	if err := ValidateClustering(nil, 2); !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput for nil clustering, got %v", err)
	}
	bad := core.NewClustering([]int{0})
	if err := ValidateClusterings([]*core.Clustering{good, bad}, 2); !errors.Is(err, ErrShape) {
		t.Fatalf("want ErrShape, got %v", err)
	}
}

func TestSanitizeRejectCopies(t *testing.T) {
	in := [][]float64{{1, 2}, {3, 4}}
	out, rep, err := Sanitize(in, Reject)
	if err != nil {
		t.Fatalf("Sanitize(Reject) on clean data: %v", err)
	}
	if !rep.Clean() || len(rep.Kept) != 2 {
		t.Fatalf("unexpected report %+v", rep)
	}
	out[0][0] = 99
	if in[0][0] != 1 {
		t.Fatal("Sanitize must deep-copy")
	}
}

func TestSanitizeRejectFails(t *testing.T) {
	_, _, err := Sanitize([][]float64{{math.NaN()}}, Reject)
	if !errors.Is(err, ErrInvalidInput) {
		t.Fatalf("want ErrInvalidInput, got %v", err)
	}
}

func TestSanitizeDropRows(t *testing.T) {
	in := [][]float64{{1, 2}, {math.NaN(), 3}, {4, math.Inf(1)}, {5, 6}, {7}}
	out, rep, err := Sanitize(in, DropRows)
	if err != nil {
		t.Fatalf("DropRows: %v", err)
	}
	if len(out) != 2 || out[0][0] != 1 || out[1][0] != 5 {
		t.Fatalf("unexpected surviving rows %v", out)
	}
	wantDropped := []int{1, 2, 4}
	if fmt.Sprint(rep.DroppedRows) != fmt.Sprint(wantDropped) {
		t.Fatalf("dropped %v, want %v", rep.DroppedRows, wantDropped)
	}
	if fmt.Sprint(rep.Kept) != fmt.Sprint([]int{0, 3}) {
		t.Fatalf("kept %v, want [0 3]", rep.Kept)
	}
	if err := ValidateDataset(out); err != nil {
		t.Fatalf("sanitized output should validate: %v", err)
	}
}

func TestSanitizeDropAllRows(t *testing.T) {
	_, _, err := Sanitize([][]float64{{math.NaN()}, {math.Inf(1)}}, DropRows)
	if !errors.Is(err, core.ErrEmptyDataset) {
		t.Fatalf("want ErrEmptyDataset when nothing survives, got %v", err)
	}
}

func TestSanitizeImputeMean(t *testing.T) {
	in := [][]float64{{1, 10}, {math.NaN(), 20}, {3, math.Inf(-1)}, {1, 2, 3}}
	out, rep, err := Sanitize(in, ImputeMean)
	if err != nil {
		t.Fatalf("ImputeMean: %v", err)
	}
	if len(out) != 3 {
		t.Fatalf("ragged row should be dropped, got %d rows", len(out))
	}
	if out[1][0] != 2 { // mean of finite column-0 values {1, 3}
		t.Fatalf("imputed col 0 = %v, want 2", out[1][0])
	}
	if out[2][1] != 15 { // mean of finite column-1 values {10, 20}
		t.Fatalf("imputed col 1 = %v, want 15", out[2][1])
	}
	if rep.ImputedCells != 2 || fmt.Sprint(rep.DroppedRows) != "[3]" {
		t.Fatalf("unexpected report %+v", rep)
	}
	if err := ValidateDataset(out); err != nil {
		t.Fatalf("imputed output should validate: %v", err)
	}
}

func TestSanitizeImputeAllNonFiniteColumn(t *testing.T) {
	out, _, err := Sanitize([][]float64{{math.NaN(), 1}, {math.Inf(1), 2}}, ImputeMean)
	if err != nil {
		t.Fatalf("ImputeMean: %v", err)
	}
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Fatalf("column with no finite values should impute to 0, got %v", out)
	}
}

func TestSanitizeDeterministic(t *testing.T) {
	in := [][]float64{{1, math.NaN()}, {2, 4}, {math.Inf(1), 6}}
	a, _, _ := Sanitize(in, ImputeMean)
	b, _, _ := Sanitize(in, ImputeMean)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("Sanitize not deterministic: %v vs %v", a, b)
	}
}

func TestPolicyString(t *testing.T) {
	if Reject.String() != "reject" || DropRows.String() != "drop-rows" || ImputeMean.String() != "impute-mean" {
		t.Fatal("unexpected Policy names")
	}
}

func TestRecoverTo(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo(&err)
		panic("boom")
	}
	err := f()
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("want ErrPanic, got %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("panic value should be in the message: %v", err)
	}
}

func TestRecoverToNoPanic(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo(&err)
		return nil
	}
	if err := f(); err != nil {
		t.Fatalf("no panic should leave err nil, got %v", err)
	}
}

func TestRetrySeedSchedule(t *testing.T) {
	var seeds []int64
	err := Retry(7, 4, func(s int64) error {
		seeds = append(seeds, s)
		if s < 9 {
			return fmt.Errorf("singular: %w", core.ErrDegenerate)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry should succeed on third attempt: %v", err)
	}
	if fmt.Sprint(seeds) != "[7 8 9]" {
		t.Fatalf("seed schedule %v, want [7 8 9]", seeds)
	}
}

func TestRetryFirstAttemptUsesOriginalSeed(t *testing.T) {
	var first int64 = -1
	_ = Retry(42, 3, func(s int64) error {
		if first == -1 {
			first = s
		}
		return nil
	})
	if first != 42 {
		t.Fatalf("first attempt seed = %d, want 42", first)
	}
}

func TestRetryNonDegenerateErrorStops(t *testing.T) {
	calls := 0
	sentinel := errors.New("hard failure")
	err := Retry(0, 5, func(int64) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 1 {
		t.Fatalf("non-degenerate error must not be retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	calls := 0
	err := Retry(3, 3, func(int64) error {
		calls++
		return core.ErrDegenerate
	})
	if calls != 3 || !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if !strings.Contains(err.Error(), "seeds 3..5") {
		t.Fatalf("exhaustion error should name the seed range: %v", err)
	}
}

func TestRetryValue(t *testing.T) {
	v, err := RetryValue(0, 3, func(s int64) (int, error) {
		if s == 0 {
			return 0, core.ErrDegenerate
		}
		return int(s) * 10, nil
	})
	if err != nil || v != 10 {
		t.Fatalf("v=%d err=%v, want 10 nil", v, err)
	}
	v2, err := RetryValue(0, 2, func(int64) (int, error) { return 5, core.ErrDegenerate })
	if !errors.Is(err, core.ErrDegenerate) || v2 != 0 {
		t.Fatalf("exhausted RetryValue should zero the value: v=%d err=%v", v2, err)
	}
}
