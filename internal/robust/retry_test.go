package robust

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"multiclust/internal/core"
)

func TestBackoffZeroValueNeverWaits(t *testing.T) {
	var b Backoff
	for retry := 0; retry < 10; retry++ {
		if d := b.Delay(retry); d != 0 {
			t.Fatalf("zero Backoff Delay(%d) = %v, want 0", retry, d)
		}
	}
}

func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Factor: 2, Max: time.Second, Jitter: 0.5, Seed: 42}
	for retry := 1; retry <= 6; retry++ {
		d1 := b.Delay(retry)
		d2 := b.Delay(retry)
		if d1 != d2 {
			t.Fatalf("Delay(%d) not deterministic: %v vs %v", retry, d1, d2)
		}
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond} // Factor defaults to 2, no jitter
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	for retry, w := range want {
		if d := b.Delay(retry); d != w {
			t.Fatalf("Delay(%d) = %v, want %v", retry, d, w)
		}
	}
}

func TestBackoffDelayCap(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 25 * time.Millisecond}
	if d := b.Delay(5); d != 25*time.Millisecond {
		t.Fatalf("capped Delay(5) = %v, want 25ms", d)
	}
}

func TestBackoffJitterBounded(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Factor: 1.0001, Jitter: 0.3, Seed: 7}
	for retry := 1; retry <= 20; retry++ {
		d := b.Delay(retry)
		lo, hi := 60*time.Millisecond, 140*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("Delay(%d) = %v outside jitter envelope [%v, %v]", retry, d, lo, hi)
		}
	}
	// Different seeds must produce different jitter draws somewhere.
	other := b
	other.Seed = 8
	same := true
	for retry := 1; retry <= 20; retry++ {
		if b.Delay(retry) != other.Delay(retry) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 20-delay jitter schedules")
	}
}

func TestRetryBackoffRecordsScheduleViaInjectedSleep(t *testing.T) {
	var slept []time.Duration
	b := Backoff{
		Base:  5 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	calls := 0
	err := RetryBackoff(context.Background(), 100, 4, b, func(seed int64) error {
		calls++
		if seed < 103 {
			return fmt.Errorf("still degenerate: %w", core.ErrDegenerate)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("RetryBackoff: %v", err)
	}
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept[%d] = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryBackoffFirstAttemptNeverWaits(t *testing.T) {
	b := Backoff{
		Base:  time.Hour,
		Sleep: func(time.Duration) { t.Fatal("slept before a successful first attempt") },
	}
	if err := RetryBackoff(context.Background(), 1, 3, b, func(int64) error { return nil }); err != nil {
		t.Fatalf("RetryBackoff: %v", err)
	}
}

func TestRetryBackoffInterruptedDuringWait(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := Backoff{
		Base:  time.Millisecond,
		Sleep: func(time.Duration) { cancel() }, // the wait is where the cut lands
	}
	calls := 0
	err := RetryBackoff(ctx, 10, 5, b, func(int64) error {
		calls++
		return fmt.Errorf("degenerate: %w", core.ErrDegenerate)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no attempt after the interrupted wait)", calls)
	}
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted in %v", err)
	}
	if !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("want the last degenerate error preserved in %v", err)
	}
}

func TestRetryBackoffCtxHonouredByDefaultSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already done: the default timer path must not serve the hour
	b := Backoff{Base: time.Hour}
	start := time.Now()
	err := RetryBackoff(ctx, 1, 3, b, func(int64) error {
		return fmt.Errorf("degenerate: %w", core.ErrDegenerate)
	})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff served %v of a cancelled wait", elapsed)
	}
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

func TestRetrySeedScheduleUnchanged(t *testing.T) {
	// The historic contract: seeds walk seed, seed+1, ... with no waiting,
	// and exhaustion reports the full range.
	var seeds []int64
	err := Retry(7, 3, func(seed int64) error {
		seeds = append(seeds, seed)
		return fmt.Errorf("degenerate: %w", core.ErrDegenerate)
	})
	want := []int64{7, 8, 9}
	if len(seeds) != len(want) {
		t.Fatalf("seeds %v, want %v", seeds, want)
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("seeds %v, want %v", seeds, want)
		}
	}
	if !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("want ErrDegenerate, got %v", err)
	}
	wantMsg := "robust: 3 attempts with seeds 7..9 all degenerate"
	if got := err.Error(); len(got) < len(wantMsg) || got[:len(wantMsg)] != wantMsg {
		t.Fatalf("error %q, want prefix %q", got, wantMsg)
	}
}

func TestRetryValueBackoffReturnsValueOnNonDegenerateError(t *testing.T) {
	// Interrupted algorithms return best-so-far alongside the error; the
	// retry wrapper must pass that pair through untouched.
	v, err := RetryValueBackoff(context.Background(), 1, 3, Backoff{}, func(int64) (int, error) {
		return 41, fmt.Errorf("cut short: %w", core.ErrInterrupted)
	})
	if v != 41 {
		t.Fatalf("value = %d, want the best-so-far 41", v)
	}
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
}

func TestRetryValueBackoffZeroOnExhaustion(t *testing.T) {
	v, err := RetryValueBackoff(context.Background(), 1, 2, Backoff{}, func(int64) (int, error) {
		return 99, fmt.Errorf("degenerate: %w", core.ErrDegenerate)
	})
	if v != 0 {
		t.Fatalf("value = %d, want zero after exhaustion", v)
	}
	if !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("want ErrDegenerate, got %v", err)
	}
}
