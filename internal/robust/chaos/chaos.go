// Package chaos is the deterministic fault-injection harness of the
// robustness suite: seeded corrupters that damage a clean dataset in the
// ways real ingestion pipelines do — NaN rows, Inf spikes, duplicated
// points, constant dimensions, permuted columns — so the property tests can
// assert every facade algorithm either rejects the damage with a typed
// error or returns a valid clustering, and never panics.
//
// Every corrupter is a pure function of (input, seed): it deep-copies the
// data, applies the fault, and returns the same damage for the same seed on
// every run and platform. That makes chaos failures replayable from the
// (corrupter, seed) pair alone.
package chaos

import (
	"math"
	"math/rand"
)

// Corrupter deterministically damages a copy of points using the seed.
// The input is never mutated.
type Corrupter struct {
	// Name identifies the fault in test output, e.g. "nan-rows".
	Name string
	// Valid reports whether the corrupted data is still a valid dataset
	// (finite, rectangular): validation-gated algorithms must succeed on
	// valid damage and return a typed error on invalid damage.
	Valid bool
	// Apply returns the damaged deep copy.
	Apply func(points [][]float64, seed int64) [][]float64
}

// clone deep-copies a point table.
func clone(points [][]float64) [][]float64 {
	out := make([][]float64, len(points))
	for i, p := range points {
		out[i] = append([]float64(nil), p...)
	}
	return out
}

// NaNRows overwrites every coordinate of up to k randomly chosen rows with
// NaN. Invalid damage: the validation gate must reject it.
func NaNRows(k int) Corrupter {
	return Corrupter{
		Name:  "nan-rows",
		Valid: false,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			rng := rand.New(rand.NewSource(seed))
			for t := 0; t < k && len(out) > 0; t++ {
				row := out[rng.Intn(len(out))]
				for j := range row {
					row[j] = math.NaN()
				}
			}
			return out
		},
	}
}

// InfSpikes replaces up to k randomly chosen single cells with ±Inf.
// Invalid damage.
func InfSpikes(k int) Corrupter {
	return Corrupter{
		Name:  "inf-spikes",
		Valid: false,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			rng := rand.New(rand.NewSource(seed))
			for t := 0; t < k && len(out) > 0; t++ {
				row := out[rng.Intn(len(out))]
				if len(row) == 0 {
					continue
				}
				sign := 1
				if rng.Intn(2) == 1 {
					sign = -1
				}
				row[rng.Intn(len(row))] = math.Inf(sign)
			}
			return out
		},
	}
}

// DuplicatePoints appends up to k exact copies of randomly chosen rows.
// Valid damage: algorithms must cluster it without error.
func DuplicatePoints(k int) Corrupter {
	return Corrupter{
		Name:  "duplicate-points",
		Valid: true,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			rng := rand.New(rand.NewSource(seed))
			n := len(out)
			for t := 0; t < k && n > 0; t++ {
				src := out[rng.Intn(n)]
				out = append(out, append([]float64(nil), src...))
			}
			return out
		},
	}
}

// ConstantDimension flattens one randomly chosen column to a single value.
// Valid damage: a zero-variance dimension must not break any algorithm.
func ConstantDimension() Corrupter {
	return Corrupter{
		Name:  "constant-dimension",
		Valid: true,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			if len(out) == 0 || len(out[0]) == 0 {
				return out
			}
			rng := rand.New(rand.NewSource(seed))
			j := rng.Intn(len(out[0]))
			v := float64(rng.Intn(7))
			for _, p := range out {
				if j < len(p) {
					p[j] = v
				}
			}
			return out
		},
	}
}

// PermuteColumns applies one random column permutation to every row. Valid
// damage: clustering structure is invariant under a global reordering of
// dimensions, so algorithms must still succeed.
func PermuteColumns() Corrupter {
	return Corrupter{
		Name:  "permute-columns",
		Valid: true,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			if len(out) == 0 || len(out[0]) == 0 {
				return out
			}
			rng := rand.New(rand.NewSource(seed))
			perm := rng.Perm(len(out[0]))
			for i, p := range out {
				np := make([]float64, len(p))
				for j := range p {
					np[j] = p[perm[j]]
				}
				out[i] = np
			}
			return out
		},
	}
}

// RaggedRows truncates up to k randomly chosen rows by one coordinate.
// Invalid damage: the shape gate must reject it.
func RaggedRows(k int) Corrupter {
	return Corrupter{
		Name:  "ragged-rows",
		Valid: false,
		Apply: func(points [][]float64, seed int64) [][]float64 {
			out := clone(points)
			rng := rand.New(rand.NewSource(seed))
			for t := 0; t < k && len(out) > 0; t++ {
				i := rng.Intn(len(out))
				if len(out[i]) > 0 {
					out[i] = out[i][:len(out[i])-1]
				}
			}
			return out
		},
	}
}

// Suite returns the standard corrupter battery used by the fault-injection
// property tests.
func Suite() []Corrupter {
	return []Corrupter{
		NaNRows(2),
		InfSpikes(3),
		DuplicatePoints(5),
		ConstantDimension(),
		PermuteColumns(),
		RaggedRows(2),
	}
}
