package chaos

import (
	"math"
	"testing"

	"multiclust/internal/robust"
)

func grid(n, d int) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = float64(i*d + j)
		}
	}
	return pts
}

// TestCorruptersDeterministic: same input and seed, identical damage; the
// input itself is never mutated.
func TestCorruptersDeterministic(t *testing.T) {
	for _, c := range Suite() {
		t.Run(c.Name, func(t *testing.T) {
			orig := grid(20, 4)
			snapshot := grid(20, 4)
			a := c.Apply(orig, 42)
			b := c.Apply(orig, 42)
			if len(a) != len(b) {
				t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
			}
			for i := range a {
				if len(a[i]) != len(b[i]) {
					t.Fatalf("row %d widths differ", i)
				}
				for j := range a[i] {
					av, bv := a[i][j], b[i][j]
					if av != bv && !(math.IsNaN(av) && math.IsNaN(bv)) {
						t.Fatalf("cell %d,%d differs: %v vs %v", i, j, av, bv)
					}
				}
			}
			for i := range orig {
				if len(orig[i]) != len(snapshot[i]) {
					t.Fatalf("corrupter mutated input row %d", i)
				}
				for j := range orig[i] {
					if orig[i][j] != snapshot[i][j] {
						t.Fatalf("corrupter mutated input cell %d,%d", i, j)
					}
				}
			}
		})
	}
}

// TestCorruptersSeedsDiffer: different seeds damage different places for
// the randomized corrupters.
func TestCorruptersSeedsDiffer(t *testing.T) {
	c := InfSpikes(1)
	orig := grid(30, 6)
	a := c.Apply(orig, 1)
	b := c.Apply(orig, 2)
	same := true
	for i := range a {
		for j := range a[i] {
			if math.IsInf(a[i][j], 0) != math.IsInf(b[i][j], 0) {
				same = false
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 spiked the identical cell")
	}
}

// TestCorruptersValidityFlag: the Valid flag matches what the validation
// gate actually says about the damage.
func TestCorruptersValidityFlag(t *testing.T) {
	for _, c := range Suite() {
		t.Run(c.Name, func(t *testing.T) {
			damaged := c.Apply(grid(20, 4), 7)
			err := robust.ValidateDataset(damaged)
			if c.Valid && err != nil {
				t.Errorf("%s marked valid but gate rejects: %v", c.Name, err)
			}
			if !c.Valid && err == nil {
				t.Errorf("%s marked invalid but gate accepts", c.Name)
			}
		})
	}
}

// TestPermuteColumnsIsPermutation: every row keeps the same multiset of
// values under the column permutation.
func TestPermuteColumnsIsPermutation(t *testing.T) {
	orig := grid(5, 6)
	out := PermuteColumns().Apply(orig, 9)
	for i := range orig {
		seen := map[float64]int{}
		for _, v := range orig[i] {
			seen[v]++
		}
		for _, v := range out[i] {
			seen[v]--
		}
		for v, cnt := range seen {
			if cnt != 0 {
				t.Fatalf("row %d: value %v count off by %d", i, v, cnt)
			}
		}
	}
}

// TestDuplicatePointsAppends: the first n rows are untouched and the
// appended rows are copies of originals.
func TestDuplicatePointsAppends(t *testing.T) {
	orig := grid(10, 3)
	out := DuplicatePoints(4).Apply(orig, 3)
	if len(out) != 14 {
		t.Fatalf("len = %d, want 14", len(out))
	}
	for _, dup := range out[10:] {
		found := false
		for _, p := range orig {
			match := true
			for j := range p {
				if p[j] != dup[j] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("appended row %v is not a copy of any original", dup)
		}
	}
}
