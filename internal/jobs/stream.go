package jobs

import (
	"context"
	"fmt"

	"multiclust/internal/core"
	"multiclust/internal/stream"
)

// StreamHandle is one live incremental learner behind a streaming job
// (Spec.Stream). The engine serializes calls — at most one PushChunk or
// Snapshot runs at a time per job — so implementations need no internal
// locking. PushChunk folds one chunk in, honoring ctx at chunk
// boundaries with errors wrapping core.ErrInterrupted; Snapshot
// materializes the current state as the flat wire Outcome. Both run
// under robust.RecoverTo, so a panicking handle fails the job without
// taking the worker down.
type StreamHandle interface {
	PushChunk(ctx context.Context, rows [][]float64) error
	Snapshot(ctx context.Context) (*Outcome, error)
}

// StreamFactory builds the handle for one admitted streaming job from
// its spec. Construction errors are admission errors: the engine wraps
// them in ErrBadSpec and refuses the job (HTTP 400).
type StreamFactory func(spec Spec) (StreamHandle, error)

// defaultStreams dispatches the streaming algorithm names onto
// internal/stream's incremental learners. The names deliberately mirror
// the batch registry where a streaming counterpart exists: a client that
// flips "stream": true on a kmeans or meta spec gets the incremental
// version of the same algorithm.
var defaultStreams = map[string]StreamFactory{
	"kmeans": streamKMeans,
	"meta":   streamMeta,
	"coem":   streamCoEM,
}

// StreamAlgorithms lists the service's built-in streaming algorithm
// names (sorted lexicographically, like Algorithms).
func StreamAlgorithms() []string {
	return []string{"coem", "kmeans", "meta"}
}

// streamKMeans wires Spec onto stream.MiniBatch: K, Seed, Restarts and
// MaxIter mean exactly what they mean for the batch kmeans algorithm
// (they configure the first-chunk batch solve).
func streamKMeans(spec Spec) (StreamHandle, error) {
	mb, err := stream.NewMiniBatch(stream.MiniBatchConfig{
		K: spec.K, Seed: spec.Seed, MaxIter: spec.MaxIter, Restarts: spec.Restarts,
	})
	if err != nil {
		return nil, err
	}
	return miniBatchHandle{mb}, nil
}

type miniBatchHandle struct{ mb *stream.MiniBatch }

func (h miniBatchHandle) PushChunk(ctx context.Context, rows [][]float64) error {
	return h.mb.PushContext(ctx, rows)
}

// Snapshot flattens the mini-batch state: Labels is the assignment of
// the most recent chunk (the wire Outcome has no centroid surface; the
// scalar summary rides in Stats).
func (h miniBatchHandle) Snapshot(ctx context.Context) (*Outcome, error) {
	snap, err := h.mb.SnapshotContext(ctx)
	if snap == nil {
		return nil, err
	}
	return &Outcome{
		Labels: snap.LastLabels,
		K:      len(snap.Centers),
		Stats: map[string]float64{
			"sse":       snap.LastSSE,
			"rows_seen": float64(snap.RowsSeen),
			"chunks":    float64(snap.Chunks),
			"reseeds":   float64(snap.Reseeds),
		},
	}, err
}

// streamMeta wires Spec onto the sliding-window ensemble:
// NumSolutions is the base solutions generated per chunk, MetaClusters
// the groups per snapshot, Window the chunks retained before FIFO
// eviction (0 defers to the stream-layer default).
func streamMeta(spec Spec) (StreamHandle, error) {
	ens, err := stream.NewEnsemble(stream.EnsembleConfig{
		K: spec.K, PerChunk: spec.NumSolutions, MetaClusters: spec.MetaClusters,
		Window: spec.Window, Seed: spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return ensembleHandle{ens}, nil
}

type ensembleHandle struct{ ens *stream.Ensemble }

func (h ensembleHandle) PushChunk(ctx context.Context, rows [][]float64) error {
	return h.ens.PushContext(ctx, rows)
}

// Snapshot flattens the window grouping like the batch meta runner:
// one label vector per representative, the first doubling as the flat
// Labels surface.
func (h ensembleHandle) Snapshot(ctx context.Context) (*Outcome, error) {
	snap, err := h.ens.SnapshotContext(ctx)
	if snap == nil {
		return nil, err
	}
	if len(snap.Representatives) == 0 {
		return nil, fmt.Errorf("jobs: streaming ensemble produced no representatives: %w", core.ErrDegenerate)
	}
	out := &Outcome{
		Solutions: make([][]int, len(snap.Representatives)),
		Labels:    snap.Representatives[0].Labels,
		K:         snap.Representatives[0].K(),
		Noise:     snap.Representatives[0].NoiseCount(),
		Stats: map[string]float64{
			"mean_pairwise": snap.MeanPairwise,
			"window_chunks": float64(snap.WindowChunks),
			"window_rows":   float64(snap.WindowRows),
			"evicted":       float64(snap.Evicted),
			"rows_seen":     float64(snap.RowsSeen),
		},
	}
	for i, c := range snap.Representatives {
		out.Solutions[i] = c.Labels
	}
	return out, err
}

// streamCoEM wires Spec onto online co-EM. The spec's feature matrix is
// column-split at d/2 into the two views; Seed and MaxIter configure
// the first-chunk batch solve.
func streamCoEM(spec Spec) (StreamHandle, error) {
	co, err := stream.NewCoEM(stream.CoEMConfig{
		K: spec.K, Seed: spec.Seed, MaxIter: spec.MaxIter,
	})
	if err != nil {
		return nil, err
	}
	return coEMHandle{co}, nil
}

type coEMHandle struct{ co *stream.CoEM }

func (h coEMHandle) PushChunk(ctx context.Context, rows [][]float64) error {
	return h.co.PushContext(ctx, rows)
}

// Snapshot serves the consensus clustering of the most recent chunk
// plus the scalar model summary; the models themselves stay in-process.
func (h coEMHandle) Snapshot(ctx context.Context) (*Outcome, error) {
	snap, err := h.co.SnapshotContext(ctx)
	if snap == nil {
		return nil, err
	}
	return &Outcome{
		Labels: snap.Clustering.Labels,
		K:      snap.Clustering.K(),
		Stats: map[string]float64{
			"agreement": snap.Agreement,
			"loglik_a":  snap.LogLikA,
			"loglik_b":  snap.LogLikB,
			"rows_seen": float64(snap.RowsSeen),
			"chunks":    float64(snap.Chunks),
		},
	}, err
}
