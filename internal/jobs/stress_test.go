package jobs

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"multiclust"
	"multiclust/internal/obs"
)

// TestConcurrentSubmitDeterministicPerJob floods the engine from many
// goroutines and then replays every job solo: same spec, same seed must give
// byte-identical labels and identical per-job work counters no matter what
// the other tenants were doing. This is the multi-tenant determinism
// contract, and under -race it doubles as the engine's data-race probe.
func TestConcurrentSubmitDeterministicPerJob(t *testing.T) {
	ds, _, _ := multiclust.FourBlobToy(1, 20)
	e := newTestEngine(t, Config{Workers: 4, QueueSize: 64})

	const n = 16
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		//lint:ignore nakedgo test-only fan-out joined by the WaitGroup two lines below
		go func(i int) {
			defer wg.Done()
			j, _, err := e.Submit(Spec{
				Algo: "kmeans", Points: ds.Points, K: 2 + i%3, Seed: int64(100 + i), Restarts: 2,
			})
			jobs[i], errs[i] = j, err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	for _, j := range jobs {
		waitTerminal(t, j)
		if j.State() != StateDone {
			t.Fatalf("job %s state = %s (err %v), want done", j.ID, j.State(), j.Err())
		}
	}

	// Solo replay: each job's labels and its recorded iteration count must
	// match a run of the same spec with the whole process to itself.
	for i, j := range jobs {
		col := obs.NewCollector()
		ctx := obs.NewContext(context.Background(), col)
		res, err := multiclust.KMeansContext(ctx, ds.Points, multiclust.KMeansConfig{
			K: 2 + i%3, Seed: int64(100 + i), Restarts: 2,
		})
		if err != nil {
			t.Fatalf("solo replay %d: %v", i, err)
		}
		got := j.Result()
		if got == nil || len(got.Labels) != len(res.Clustering.Labels) {
			t.Fatalf("job %d result shape mismatch", i)
		}
		for p := range got.Labels {
			if got.Labels[p] != res.Clustering.Labels[p] {
				t.Fatalf("job %d label[%d] = %d, solo run got %d — concurrency leaked into the result",
					i, p, got.Labels[p], res.Clustering.Labels[p])
			}
		}
		soloIters := col.Snapshot().Counters["kmeans.iterations"]
		jobIters := j.Status().Metrics["kmeans.iterations"]
		if soloIters != jobIters {
			t.Fatalf("job %d recorded %d kmeans iterations, solo run %d — per-job collectors are cross-talking",
				i, jobIters, soloIters)
		}
	}
}

// TestConcurrentSubmitPollCancel races submissions against polls and
// cancellations; the assertions are the structural invariants (exactly one
// terminal state, no lost jobs), with -race watching the memory model.
func TestConcurrentSubmitPollCancel(t *testing.T) {
	ds, _, _ := multiclust.FourBlobToy(2, 15)
	started := make(chan struct{}, 64)
	e := newTestEngine(t, Config{Workers: 3, QueueSize: 64, Runners: map[string]Runner{
		"slow": slowRunner(started),
	}})

	const n = 24
	jobs := make([]*Job, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		//lint:ignore nakedgo test-only fan-out joined by the WaitGroup below
		go func(i int) {
			defer wg.Done()
			algo := "kmeans"
			timeout := int64(0)
			if i%3 == 0 {
				algo, timeout = "slow", 60000
			}
			j, _, err := e.Submit(Spec{Algo: algo, Points: ds.Points, K: 2, Seed: int64(i), TimeoutMS: timeout})
			if err != nil {
				return // queue-full under stress is legitimate backpressure
			}
			jobs[i] = j
			if algo == "slow" {
				// Immediately race a cancel against the start.
				if _, cerr := e.Cancel(j.ID); cerr != nil {
					panic(fmt.Sprintf("Cancel(%s): %v", j.ID, cerr))
				}
			}
			for k := 0; k < 5; k++ {
				_ = j.Status()
				_ = e.List()
			}
		}(i)
	}
	wg.Wait()

	// Drain the start signals so no slow runner stays blocked on the
	// unread channel (cancelled-while-queued jobs never signal).
	for {
		select {
		case <-started:
			continue
		default:
		}
		break
	}

	admitted := 0
	for _, j := range jobs {
		if j == nil {
			continue
		}
		admitted++
		select {
		case <-j.Done():
		case <-time.After(30 * time.Second):
			t.Fatalf("job %s stuck in %s", j.ID, j.State())
		}
		if !j.State().Terminal() {
			t.Fatalf("job %s done-channel closed but state %s not terminal", j.ID, j.State())
		}
		if j.FinishCalls() != 1 {
			t.Fatalf("job %s finishCalls = %d, want exactly 1", j.ID, j.FinishCalls())
		}
	}
	if admitted == 0 {
		t.Fatal("no job was admitted at all")
	}
	if got := len(e.List()); got != admitted {
		t.Fatalf("engine lists %d jobs, %d were admitted — a job was lost", got, admitted)
	}
}
