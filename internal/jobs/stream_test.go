package jobs

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"multiclust/internal/kmeans"
)

// chunkA/chunkB are two tiny well-separated chunks sharing the blob
// structure of testPoints.
func chunkA() [][]float64 { return [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}} }
func chunkB() [][]float64 { return [][]float64{{0.5, 0.5}, {10.5, 10.5}} }

// waitRowsSeen polls the job until its snapshot covers the given row
// count — the only way to observe chunk progress without racing the
// worker.
func waitRowsSeen(t *testing.T, j *Job, rows float64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := j.Status()
		if st.Result != nil && st.Result.Stats["rows_seen"] >= rows {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never saw %v rows (status %+v)", j.ID, rows, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStreamSubmitAppendFinalize(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	j, dup, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 3, Points: chunkA()})
	if err != nil || dup {
		t.Fatalf("Submit: dup=%v err=%v", dup, err)
	}
	if _, err := e.Append(j.ID, chunkB(), false); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if _, err := e.Append(j.ID, nil, true); err != nil {
		t.Fatalf("final Append: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s, want done (err %v)", j.State(), j.Err())
	}
	out := j.Result()
	if out == nil || out.Stats["rows_seen"] != 6 || out.Stats["chunks"] != 2 {
		t.Fatalf("result = %+v, want rows_seen=6 chunks=2", out)
	}
	if j.FinishCalls() != 1 {
		t.Fatalf("finishCalls = %d, want 1", j.FinishCalls())
	}
	st := j.Status()
	if !st.Stream || st.ChunksAcked != 3 || st.RowsAcked != 6 {
		t.Fatalf("status bookkeeping = %+v, want stream=true chunks_acked=3 rows_acked=6", st)
	}
}

// TestStreamSingleChunkMatchesBatchKMeans pins the cross-layer
// equivalence contract at the service surface: a single-chunk streaming
// kmeans job finalizes to exactly the batch algorithm's labels.
func TestStreamSingleChunkMatchesBatchKMeans(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 11, Points: chunkA()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitRowsSeen(t, j, 4)
	if _, err := e.Append(j.ID, nil, true); err != nil {
		t.Fatalf("final Append: %v", err)
	}
	waitTerminal(t, j)
	batch, err := kmeans.RunContext(context.Background(), chunkA(), kmeans.Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatalf("batch kmeans: %v", err)
	}
	out := j.Result()
	if out == nil || !reflect.DeepEqual(out.Labels, batch.Clustering.Labels) {
		t.Fatalf("stream labels %v differ from batch %v", out, batch.Clustering.Labels)
	}
	if out.Stats["sse"] != batch.SSE {
		t.Fatalf("stream sse %v differs from batch %v", out.Stats["sse"], batch.SSE)
	}
}

// TestStreamGetServesLatestSnapshot: while the stream is open the job
// stays Running and its Status carries the latest snapshot.
func TestStreamGetServesLatestSnapshot(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 5, Points: chunkA()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitRowsSeen(t, j, 4)
	st := j.Status()
	if st.State != "running" || st.Result == nil || st.Partial {
		t.Fatalf("open stream status = %+v, want running with a snapshot", st)
	}
	if _, err := e.Append(j.ID, chunkB(), false); err != nil {
		t.Fatalf("Append: %v", err)
	}
	waitRowsSeen(t, j, 6)
	if st := j.Status(); st.Result.Stats["chunks"] != 2 {
		t.Fatalf("snapshot did not advance: %+v", st.Result)
	}
}

// TestStreamDrainYieldsPartial: a graceful drain settles an open stream
// as Partial with its last snapshot — the acknowledged chunks are all
// reflected in it, none lost.
func TestStreamDrainYieldsPartial(t *testing.T) {
	e := New(Config{Workers: 2})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 7, Points: chunkA()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := e.Append(j.ID, chunkB(), false); err != nil {
		t.Fatalf("Append: %v", err)
	}
	rep := e.Drain(context.Background())
	if rep.Truncated {
		t.Fatalf("graceful drain reported truncation: %+v", rep)
	}
	if j.State() != StatePartial {
		t.Fatalf("state = %s, want partial (err %v)", j.State(), j.Err())
	}
	st := j.Status()
	if !st.Partial || st.Result == nil || st.Result.Stats["rows_seen"] != 6 {
		t.Fatalf("drained stream status = %+v, want partial with all 6 acknowledged rows", st)
	}
	if j.FinishCalls() != 1 {
		t.Fatalf("finishCalls = %d, want 1", j.FinishCalls())
	}
	if rep.Partial != 1 {
		t.Fatalf("drain report %+v, want 1 partial", rep)
	}
}

// TestStreamDrainWithoutChunksCancels: a stream opened empty and never
// fed has no snapshot to serve; drain settles it Cancelled.
func TestStreamDrainWithoutChunksCancels(t *testing.T) {
	e := New(Config{Workers: 1})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rep := e.Drain(context.Background())
	if j.State() != StateCancelled || rep.Cancelled != 1 {
		t.Fatalf("state = %s report %+v, want cancelled", j.State(), rep)
	}
}

// TestStreamCancelIdle: DELETE on a stream idling between chunks settles
// it immediately, best-so-far snapshot attached.
func TestStreamCancelIdle(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 9, Points: chunkA()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitRowsSeen(t, j, 4)
	if _, err := e.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State())
	}
	if out := j.Result(); out == nil || out.Stats["rows_seen"] != 4 {
		t.Fatalf("cancelled stream lost its best-so-far: %+v", out)
	}
}

func TestStreamAppendConflicts(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 13, Points: chunkA()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := e.Append(j.ID, nil, true); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closed stream: refused before the job even terminalizes.
	if _, err := e.Append(j.ID, chunkB(), false); !errors.Is(err, ErrConflict) {
		t.Fatalf("append to closed stream = %v, want ErrConflict", err)
	}
	waitTerminal(t, j)
	if _, err := e.Append(j.ID, chunkB(), false); !errors.Is(err, ErrConflict) {
		t.Fatalf("append to terminal job = %v, want ErrConflict", err)
	}
	// Batch jobs have no append surface.
	b, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()})
	if err != nil {
		t.Fatalf("batch Submit: %v", err)
	}
	if _, err := e.Append(b.ID, chunkB(), false); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("append to batch job = %v, want ErrBadSpec", err)
	}
	if _, err := e.Append("j-404", chunkB(), false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("append to unknown job = %v, want ErrNotFound", err)
	}
	if _, err := e.Append(j.ID, nil, false); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty non-final append = %v, want ErrBadSpec", err)
	}
}

func TestStreamSpecValidation(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	cases := []Spec{
		{Algo: "dbscan", Stream: true, K: 2, Points: chunkA()},       // no streaming counterpart
		{Algo: "kmeans", Stream: true, K: 2, Window: -1},             // negative window
		{Algo: "kmeans", Stream: true, K: 0, Points: chunkA()},       // K required by the factory
		{Algo: "kmeans", K: 2, Points: chunkA(), TimeoutMS: 1 << 40}, // over the cap
	}
	for i, spec := range cases {
		if _, _, err := e.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d: err = %v, want ErrBadSpec", i, err)
		}
	}
}

func TestIdempotencyKeyConflictOnDifferentSpec(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	spec := Spec{Algo: "instant", Points: testPoints(), IdempotencyKey: "k"}
	if _, _, err := e.Submit(spec); err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	changed := spec
	changed.Seed = 99
	if _, _, err := e.Submit(changed); !errors.Is(err, ErrConflict) {
		t.Fatalf("conflicting Submit = %v, want ErrConflict", err)
	}
	// The identical spec still dedupes.
	if _, dup, err := e.Submit(spec); err != nil || !dup {
		t.Fatalf("identical Submit: dup=%v err=%v", dup, err)
	}
}

// TestStreamMetaAndCoEMFinalize exercises the other two streaming
// algorithms end to end through the engine.
func TestStreamMetaAndCoEMFinalize(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2})
	rows := make([][]float64, 0, 24)
	for i := 0; i < 12; i++ {
		c := float64(i % 2)
		rows = append(rows, []float64{10 * c, 10*c + 1, -5 * c, -5*c + 2})
	}
	meta, _, err := e.Submit(Spec{Algo: "meta", Stream: true, K: 2, Seed: 4, NumSolutions: 3, MetaClusters: 2, Window: 4, Points: rows})
	if err != nil {
		t.Fatalf("meta Submit: %v", err)
	}
	coem, _, err := e.Submit(Spec{Algo: "coem", Stream: true, K: 2, Seed: 4, Points: rows})
	if err != nil {
		t.Fatalf("coem Submit: %v", err)
	}
	for _, j := range []*Job{meta, coem} {
		if _, err := e.Append(j.ID, rows, false); err != nil {
			t.Fatalf("%s Append: %v", j.Spec.Algo, err)
		}
		if _, err := e.Append(j.ID, nil, true); err != nil {
			t.Fatalf("%s close: %v", j.Spec.Algo, err)
		}
		waitTerminal(t, j)
		if j.State() != StateDone {
			t.Fatalf("%s state = %s, want done (err %v)", j.Spec.Algo, j.State(), j.Err())
		}
		out := j.Result()
		if out == nil || len(out.Labels) == 0 || out.Stats["rows_seen"] != 24 {
			t.Fatalf("%s result = %+v", j.Spec.Algo, out)
		}
	}
	if j := meta.Result(); len(j.Solutions) == 0 {
		t.Fatalf("meta stream served no representative solutions: %+v", j)
	}
}
