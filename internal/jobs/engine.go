package jobs

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
	"multiclust/internal/robust"
)

// Config sizes the engine. The zero value resolves to conservative
// defaults; every bound exists so overload degrades into refusals (429/503)
// instead of unbounded memory or latency.
type Config struct {
	// Workers is the number of concurrent job executors; <=0 resolves via
	// the shared parallel-layer knob (MULTICLUST_WORKERS, then
	// GOMAXPROCS). This bounds service concurrency; the parallelism
	// *inside* one job is still governed by multiclust.SetWorkers.
	Workers int
	// QueueSize bounds the admission queue (default 64). Submit fails
	// with ErrQueueFull — never blocks, never grows — once it is full.
	QueueSize int
	// DefaultTimeout applies to jobs that request none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps every requested timeout (default 5m), so no tenant
	// can park a worker indefinitely.
	MaxTimeout time.Duration
	// RetryBudget is the number of deterministic reseed attempts for
	// degenerate fits (default 3; see robust.RetryBackoff).
	RetryBudget int
	// Backoff schedules the waits between degenerate-fit retries. Seed is
	// overridden per job with the job's spec seed, keeping the full retry
	// timeline a pure function of the spec. The zero value retries
	// immediately.
	Backoff robust.Backoff
	// MaxPoints bounds the dataset size admitted per job (default
	// 200000 rows); larger submissions are refused with ErrBadSpec.
	MaxPoints int
	// Runners extends or overrides the default algorithm registry —
	// the chaos suite injects faulty runners and the bench harness a
	// no-op runner through this seam. Nil entries delete a default.
	Runners map[string]Runner
	// Streams extends or overrides the streaming algorithm registry
	// (Spec.Stream jobs), the same seam Runners is for batch jobs. Nil
	// entries delete a default.
	Streams map[string]StreamFactory
	// OnTerminal, when non-nil, observes every terminal transition
	// (exactly one per admitted job). Used by the fault-injection suite
	// and available for operational logging.
	OnTerminal func(j *Job, s State)
	// Log, when non-nil, receives one job.state JSONL line per lifecycle
	// transition (queued, running, and the terminal state), carrying the
	// job id, state, trace id and — on terminal lines — attempt count
	// and error text. Failed transitions log at error level, partial at
	// warn, everything else at info.
	Log *obs.Logger
}

// DrainReport summarizes what graceful shutdown did with the admitted jobs.
type DrainReport struct {
	Done      int  `json:"done"`
	Partial   int  `json:"partial"`
	Failed    int  `json:"failed"`
	Cancelled int  `json:"cancelled"`
	Truncated bool `json:"truncated"` // drain deadline fired before the pool went idle
}

// Engine is the bounded async job engine. Create with New, feed with
// Submit (or the HTTP handler), stop with Drain.
type Engine struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]string // idempotency key -> job id
	draining bool
	seq      int64

	// stopped is set at the drain deadline: every job context still alive
	// is cancelled and jobs that start after it are cut immediately, so
	// the pool settles to best-so-far instead of serving out timeouts.
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New builds the engine and starts its worker pool. The pool runs until
// Drain; an Engine is not restartable.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.Workers(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 3
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 200000
	}
	runners := make(map[string]Runner, len(defaultRunners)+len(cfg.Runners))
	for name, r := range defaultRunners {
		runners[name] = r
	}
	for name, r := range cfg.Runners {
		if r == nil {
			delete(runners, name)
			continue
		}
		runners[name] = r
	}
	cfg.Runners = runners
	streams := make(map[string]StreamFactory, len(defaultStreams)+len(cfg.Streams))
	for name, f := range defaultStreams {
		streams[name] = f
	}
	for name, f := range cfg.Streams {
		if f == nil {
			delete(streams, name)
			continue
		}
		streams[name] = f
	}
	cfg.Streams = streams

	e := &Engine{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueSize),
		jobs:  make(map[string]*Job),
		byKey: make(map[string]string),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		//lint:ignore nakedgo job workers are service lifecycle, not compute fan-out: they only move jobs from the bounded queue to the facade's ...Context calls, whose results are seed-deterministic regardless of which worker runs them; compute inside a job still funnels through internal/parallel
		go func() {
			defer e.wg.Done()
			e.worker()
		}()
	}
	return e
}

// validate is the admission gate: everything that can be rejected
// synchronously with a 400 is rejected here, so the bounded queue holds
// only runnable work. Deeper failures (degenerate fits, interrupts) are
// legitimate terminal states, not admission errors.
func (e *Engine) validate(spec Spec) error {
	if spec.Stream {
		if _, ok := e.cfg.Streams[spec.Algo]; !ok {
			return fmt.Errorf("%w: unknown streaming algorithm %q (have %s)", ErrBadSpec, spec.Algo, e.algoNames(true))
		}
	} else if _, ok := e.cfg.Runners[spec.Algo]; !ok {
		return fmt.Errorf("%w: unknown algorithm %q (have %s)", ErrBadSpec, spec.Algo, e.algoNames(false))
	}
	if len(spec.Points) > e.cfg.MaxPoints {
		return fmt.Errorf("%w: %d points exceeds the %d-row admission bound", ErrBadSpec, len(spec.Points), e.cfg.MaxPoints)
	}
	// A streaming job may open with no rows at all — the first chunk
	// arrives by PATCH; a batch job's dataset is validated here in full.
	if !spec.Stream || len(spec.Points) > 0 {
		if err := robust.ValidateDataset(spec.Points); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	if spec.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrBadSpec, spec.TimeoutMS)
	}
	if max := e.cfg.MaxTimeout.Milliseconds(); spec.TimeoutMS > max {
		return fmt.Errorf("%w: timeout_ms %d exceeds the %dms cap", ErrBadSpec, spec.TimeoutMS, max)
	}
	if spec.K < 0 {
		return fmt.Errorf("%w: negative k %d", ErrBadSpec, spec.K)
	}
	if spec.Window < 0 {
		return fmt.Errorf("%w: negative window %d", ErrBadSpec, spec.Window)
	}
	return nil
}

func (e *Engine) algoNames(stream bool) string {
	names := make([]string, 0, len(e.cfg.Runners))
	if stream {
		for name := range e.cfg.Streams {
			names = append(names, name)
		}
	} else {
		for name := range e.cfg.Runners {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Submit admits one job. The returned bool is true when an idempotency key
// matched an existing job with the same spec (nothing new was enqueued).
// Errors: ErrBadSpec (refused outright), ErrConflict (idempotency key
// reused with a different spec), ErrQueueFull (queue at capacity — retry
// later), ErrDraining (engine shutting down).
func (e *Engine) Submit(spec Spec) (*Job, bool, error) {
	return e.SubmitTraced(spec, "")
}

// SubmitTraced is Submit with the creating request's trace id attached:
// the id sticks to the job for its whole async lifetime — the per-job
// collector, the JSONL trace behind /v1/jobs/{id}/trace, the job.state
// log lines and the Status all carry it. The HTTP handler threads the
// middleware's trace id through here; "" submits untraced (identical to
// Submit). The trace id is pure telemetry and deliberately excluded from
// idempotency comparison: a retried request with a fresh traceparent
// still deduplicates, keeping the original job's id.
func (e *Engine) SubmitTraced(spec Spec, traceID string) (*Job, bool, error) {
	if err := e.validate(spec); err != nil {
		return nil, false, err
	}
	// The streaming handle is built outside the engine lock — factory
	// errors are admission errors, surfaced as 400s like any bad spec.
	var handle StreamHandle
	if spec.Stream {
		h, err := e.cfg.Streams[spec.Algo](spec)
		if err != nil {
			return nil, false, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		handle = h
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.rejected_draining", 1)
		return nil, false, ErrDraining
	}
	if spec.IdempotencyKey != "" {
		if id, ok := e.byKey[spec.IdempotencyKey]; ok {
			j := e.jobs[id]
			e.mu.Unlock()
			if !reflect.DeepEqual(j.Spec, spec) {
				// Same key, different request: refusing loudly is the
				// only safe answer — silent dedup would hand the caller
				// a result for a spec it never sent.
				obs.Count(obs.Default(), "jobs.key_conflicts", 1)
				return nil, false, fmt.Errorf("%w: idempotency key %q was used with a different spec", ErrConflict, spec.IdempotencyKey)
			}
			obs.Count(obs.Default(), "jobs.duplicate_hits", 1)
			return j, true, nil
		}
	}
	e.seq++
	col := obs.NewCollector()
	buf := &traceBuf{}
	tw := obs.NewTraceWriter(buf)
	if traceID != "" {
		col.SetTraceID(traceID)
		tw.SetTraceID(traceID)
	}
	j := &Job{
		ID:         "j-" + strconv.FormatInt(e.seq, 10),
		Key:        spec.IdempotencyKey,
		Spec:       spec,
		TraceID:    traceID,
		col:        col,
		traceLog:   buf,
		trace:      tw,
		rec:        obs.Tee(col, tw),
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
		handle:     handle,
	}
	// A streaming job that opens with rows carries them as its first
	// chunk; one that opens empty holds no queue slot until a PATCH
	// appends work.
	needToken := true
	if spec.Stream {
		if len(spec.Points) > 0 {
			j.pending = []streamChunk{{rows: spec.Points}}
			j.chunksAcked = 1
			j.rowsAcked = int64(len(spec.Points))
		} else {
			needToken = false
		}
	}
	if needToken {
		select {
		case e.queue <- j:
		default:
			e.seq-- // nothing admitted; keep ids dense
			e.mu.Unlock()
			obs.Count(obs.Default(), "jobs.rejected_full", 1)
			return nil, false, ErrQueueFull
		}
	}
	e.jobs[j.ID] = j
	if j.Key != "" {
		e.byKey[j.Key] = j.ID
	}
	e.mu.Unlock()
	obs.Count(obs.Default(), "jobs.submitted", 1)
	e.logState(j, StateQueued, 0, nil)
	return j, false, nil
}

// logState emits one job.state line for a lifecycle transition. attempts
// and err are only rendered on terminal transitions (attempts > 0).
func (e *Engine) logState(j *Job, s State, attempts int, err error) {
	log := e.cfg.Log
	if log == nil {
		return
	}
	fields := make([]obs.LogField, 0, 5)
	fields = append(fields, obs.LStr("job", j.ID), obs.LStr("state", s.String()))
	if j.TraceID != "" {
		fields = append(fields, obs.LStr("trace", j.TraceID))
	}
	if attempts > 0 {
		fields = append(fields, obs.LInt("attempts", int64(attempts)))
	}
	if err != nil {
		fields = append(fields, obs.LStr("err", err.Error()))
	}
	level := obs.LogInfo
	switch s {
	case StateFailed:
		level = obs.LogError
	case StatePartial:
		level = obs.LogWarn
	}
	log.Log(level, "job.state", fields...)
}

// Append acknowledges one more chunk of a streaming job and enqueues its
// processing. Acknowledgement and backpressure are one decision: the
// chunk is accepted exactly when a queue slot is, so every acknowledged
// chunk has a worker token and a full queue refuses the chunk outright
// (ErrQueueFull, HTTP 429 — the caller retries, nothing is buffered).
// final closes the stream: after the final chunk is processed the job
// terminalizes (Done), and later appends are refused with ErrConflict.
// An empty final append is a pure close. Errors: ErrNotFound, ErrBadSpec
// (not a streaming job, empty or invalid chunk), ErrConflict (stream
// closed or job terminal), ErrDraining, ErrQueueFull.
func (e *Engine) Append(id string, rows [][]float64, final bool) (*Job, error) {
	if len(rows) == 0 && !final {
		return nil, fmt.Errorf("%w: empty chunk", ErrBadSpec)
	}
	if len(rows) > e.cfg.MaxPoints {
		return nil, fmt.Errorf("%w: %d rows exceeds the %d-row admission bound", ErrBadSpec, len(rows), e.cfg.MaxPoints)
	}
	if len(rows) > 0 {
		if err := robust.ValidateDataset(rows); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
	}
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if !j.Spec.Stream {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: job %s is not a streaming job", ErrBadSpec, id)
	}
	if e.draining {
		// Admission stops with drain exactly like Submit; chunks already
		// acknowledged still drain through the queue.
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.rejected_draining", 1)
		return nil, ErrDraining
	}
	j.mu.Lock()
	if j.state.Terminal() {
		st := j.state
		j.mu.Unlock()
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: job %s is already %s", ErrConflict, id, st)
	}
	if j.closed {
		j.mu.Unlock()
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: stream %s is closed", ErrConflict, id)
	}
	j.pending = append(j.pending, streamChunk{rows: rows, final: final})
	// The queue cannot be closed here: close happens under e.mu together
	// with the draining flag checked above.
	select {
	case e.queue <- j:
		j.closed = final
		j.chunksAcked++
		j.rowsAcked += int64(len(rows))
		j.mu.Unlock()
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.chunks_appended", 1)
		return j, nil
	default:
		j.pending = j.pending[:len(j.pending)-1] // not acknowledged
		j.mu.Unlock()
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.rejected_full", 1)
		return nil, ErrQueueFull
	}
}

// Get returns the job by id.
func (e *Engine) Get(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// List snapshots every known job, ordered by ascending id (admission
// order).
func (e *Engine) List() []Status {
	e.mu.Lock()
	all := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	e.mu.Unlock()
	sort.Slice(all, func(a, b int) bool {
		na, _ := strconv.Atoi(all[a].ID[2:])
		nb, _ := strconv.Atoi(all[b].ID[2:])
		return na < nb
	})
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of the job: a queued job transitions to
// Cancelled immediately; a running job has its context cancelled and
// settles (Cancelled, with any best-so-far result attached) as soon as the
// algorithm observes it. Cancelling a terminal job is a no-op. The returned
// state is the job's state after the request took effect.
func (e *Engine) Cancel(id string) (State, error) {
	j, err := e.Get(id)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.mu.Unlock()
		// The queued->cancelled transition goes through the single
		// terminal path; the worker that later pulls the job sees a
		// terminal state and skips it.
		e.finish(j, StateCancelled, nil, context.Canceled)
		obs.Count(obs.Default(), "jobs.cancelled_queued", 1)
	case j.state == StateRunning:
		j.userCancel = true
		cancel := j.cancel
		// A streaming job idling between chunks has no context to cancel
		// and no queue token that would sweep it; it settles here, with
		// its best-so-far snapshot attached.
		idle := j.Spec.Stream && !j.processing && len(j.pending) == 0
		best := j.result
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		if idle {
			e.finish(j, StateCancelled, best, context.Canceled)
		}
	default:
		j.mu.Unlock()
	}
	return j.State(), nil
}

// Ready reports whether the engine can admit work right now: an error
// while draining or while the queue is saturated, nil otherwise. Wired to
// the ops /readyz probe.
func (e *Engine) Ready() error {
	e.mu.Lock()
	draining := e.draining
	e.mu.Unlock()
	if draining {
		return ErrDraining
	}
	if len(e.queue) == cap(e.queue) {
		return ErrQueueFull
	}
	return nil
}

// Drain gracefully shuts the engine down: admission stops immediately
// (Submit returns ErrDraining), queued and in-flight jobs keep running
// until the pool is idle or ctx fires, at which point every remaining job
// context is cancelled so in-flight runs settle with their best-so-far
// (Partial) and still-queued jobs settle as the workers sweep them. No
// admitted job is lost: by return, every job is in exactly one terminal
// state. Drain is idempotent; later calls wait on the same shutdown.
func (e *Engine) Drain(ctx context.Context) DrainReport {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()

	idle := make(chan struct{})
	//lint:ignore nakedgo shutdown waiter, joined below on every path via the idle channel; it runs no algorithm code
	go func() { e.wg.Wait(); close(idle) }()

	rep := DrainReport{}
	select {
	case <-idle:
	case <-ctx.Done():
		rep.Truncated = true
		e.stop() // cut every in-flight job to best-so-far
		<-idle
	}

	// Open streams never see a final chunk once admission stops, so the
	// workers alone cannot terminalize them: every acknowledged chunk has
	// been processed by now (the pool is idle), and this sweep settles
	// each still-open stream with its last snapshot (Partial) — or
	// Cancelled when no chunk ever produced one.
	e.mu.Lock()
	ids := make([]string, 0, len(e.jobs))
	for id := range e.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var open []*Job
	for _, id := range ids {
		if j := e.jobs[id]; j.Spec.Stream && !j.State().Terminal() {
			open = append(open, j)
		}
	}
	e.mu.Unlock()
	for _, j := range open {
		j.mu.Lock()
		best := j.result
		j.mu.Unlock()
		if best != nil {
			e.finish(j, StatePartial, best, fmt.Errorf("jobs: stream cut short by drain: %w", core.ErrInterrupted))
		} else {
			e.finish(j, StateCancelled, nil, fmt.Errorf("jobs: stream drained before any snapshot: %w", core.ErrInterrupted))
		}
	}

	e.mu.Lock()
	for _, j := range e.jobs {
		switch j.State() {
		case StateDone:
			rep.Done++
		case StatePartial:
			rep.Partial++
		case StateFailed:
			rep.Failed++
		case StateCancelled:
			rep.Cancelled++
		}
	}
	e.mu.Unlock()
	if rep.Truncated {
		obs.Count(obs.Default(), "jobs.drain_truncated", 1)
	}
	return rep
}

// stop marks the drain deadline and cancels every job context still alive.
// The atomic flag and the per-job mutexes together close the race with a
// concurrently starting job: a job that installs its cancel hook after the
// sweep passed it must then observe stopped (sequentially consistent
// atomics) and cut itself in execute.
func (e *Engine) stop() {
	e.stopped.Store(true)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// worker moves jobs from the bounded queue into execute until Drain closes
// the queue and it runs dry. A streaming job appears once per
// acknowledged chunk; each token processes exactly one.
func (e *Engine) worker() {
	for j := range e.queue {
		if j.Spec.Stream {
			e.executeChunk(j)
		} else {
			e.execute(j)
		}
	}
}

// resolveTimeout maps a spec's requested per-run (or, for streams,
// per-chunk) budget onto the engine bounds.
func (e *Engine) resolveTimeout(ms int64) time.Duration {
	timeout := time.Duration(ms) * time.Millisecond
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > e.cfg.MaxTimeout {
		timeout = e.cfg.MaxTimeout
	}
	return timeout
}

// tryStart moves the job to Running and installs its cancel hook, or
// reports false when the job was cancelled while queued.
func (e *Engine) tryStart(j *Job, cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	return true
}

// execute runs one job to its terminal state. Panics cannot escape: every
// attempt is wrapped in robust.RecoverTo, so a panicking runner fails the
// job (ErrPanic) and the worker lives on.
func (e *Engine) execute(j *Job) {
	timeout := e.resolveTimeout(j.Spec.TimeoutMS)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !e.tryStart(j, cancel) {
		return // cancelled while queued; already terminal
	}
	e.logState(j, StateRunning, 0, nil)
	if e.stopped.Load() {
		// Swept from the queue at the drain deadline: the cancel hook is
		// installed, so cutting here (or by the stop sweep — whichever
		// observes the other) settles the run to best-so-far immediately.
		cancel()
	}
	wait := time.Since(j.enqueuedAt)
	obs.Gauge(obs.Default(), "jobs.dispatch_wait_ns", float64(wait.Nanoseconds()))
	obs.Histogram(obs.Default(), "jobs.queue_wait_seconds", wait.Seconds())
	tctx, tcancel := context.WithTimeout(ctx, timeout)
	defer tcancel()
	// The job's own recorder (collector + trace stream) is the context
	// recorder: every counter and span the algorithm records lands in this
	// job's telemetry and nowhere else. The trace id rides along so nested
	// SpanCtx trees stay correlated with the creating request.
	tctx = obs.NewContext(obs.WithTraceID(tctx, j.TraceID), j.rec)

	runner := e.cfg.Runners[j.Spec.Algo]
	backoff := e.cfg.Backoff
	backoff.Seed = j.Spec.Seed
	execStart := time.Now()
	out, err := robust.RetryValueBackoff(tctx, j.Spec.Seed, e.cfg.RetryBudget, backoff,
		func(seed int64) (o *Outcome, rerr error) {
			defer robust.RecoverTo(&rerr)
			j.mu.Lock()
			j.attempts++
			j.mu.Unlock()
			attemptStart := time.Now()
			defer func() {
				obs.Histogram(obs.Default(), "jobs.attempt_seconds", time.Since(attemptStart).Seconds())
			}()
			// One jobs.run span per attempt, on the job's own recorder, so
			// the /v1/jobs/{id}/trace tree roots every algorithm phase
			// under its attempt. The deferred end closes the span before
			// the terminal transition, keeping the trace stream complete by
			// the time /trace becomes servable.
			actx, end := obs.SpanCtx(tctx, j.rec, "jobs.run")
			defer end()
			return runner(actx, j.Spec, seed, j.rec)
		})
	obs.Histogram(obs.Default(), "jobs.exec_seconds", time.Since(execStart).Seconds())

	j.mu.Lock()
	userCancel := j.userCancel
	j.mu.Unlock()
	switch {
	case err == nil:
		e.finish(j, StateDone, out, nil)
	case userCancel:
		e.finish(j, StateCancelled, out, err)
	case errors.Is(err, core.ErrInterrupted) && out != nil:
		// Deadline or drain expiry: the contract is best-so-far, not
		// failure — the partial result is served with partial=true.
		e.finish(j, StatePartial, out, err)
	case errors.Is(err, core.ErrInterrupted):
		// Interrupted before any result existed (e.g. swept from the
		// queue at the drain deadline).
		e.finish(j, StateCancelled, nil, err)
	default:
		e.finish(j, StateFailed, out, err)
	}
}

// executeChunk consumes one queue token of a streaming job. The first
// token to arrive claims the job (j.processing) and its worker folds
// pending chunks in acknowledgement order until every delivered token is
// consumed; tokens landing on a claimed job just bump the owed count and
// free their worker. The claim is what makes a stream's result a pure
// function of its append sequence even when the pool is wide: the handle
// never sees two concurrent pushes, and chunks never reorder. The job
// terminalizes only on a final chunk (Done), a typed error (Failed), a
// cancel (Cancelled), or an interrupt with best-so-far (Partial);
// otherwise it stays Running between chunks.
func (e *Engine) executeChunk(j *Job) {
	j.mu.Lock()
	j.tokens++
	if j.processing {
		// Another worker holds the claim; it will consume this token
		// before letting go. Returning keeps this worker free for other
		// jobs instead of contending on one stream.
		j.mu.Unlock()
		return
	}
	j.processing = true
	for j.tokens > 0 && !j.state.Terminal() && len(j.pending) > 0 {
		j.tokens--
		chunk := j.pending[0]
		j.pending = j.pending[1:]
		if j.state == StateQueued {
			j.state = StateRunning
			wait := time.Since(j.enqueuedAt)
			obs.Gauge(obs.Default(), "jobs.dispatch_wait_ns", float64(wait.Nanoseconds()))
			obs.Histogram(obs.Default(), "jobs.queue_wait_seconds", wait.Seconds())
			e.logState(j, StateRunning, 0, nil)
		}
		if j.userCancel {
			best := j.result
			j.mu.Unlock()
			e.finish(j, StateCancelled, best, context.Canceled)
			j.mu.Lock()
			continue // terminal now; the loop condition drains the claim
		}
		j.attempts++
		j.mu.Unlock()
		e.runChunk(j, chunk)
		j.mu.Lock()
	}
	j.processing = false
	j.mu.Unlock()
}

// runChunk folds one popped chunk into the handle and settles the job if
// that chunk was terminal (final, faulty, cancelled, or interrupted).
// Called without j.mu held, by the worker holding the processing claim.
func (e *Engine) runChunk(j *Job, chunk streamChunk) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	if e.stopped.Load() {
		cancel() // swept at the drain deadline; settle to best-so-far
	}
	tctx, tcancel := context.WithTimeout(ctx, e.resolveTimeout(j.Spec.TimeoutMS))
	defer tcancel()
	tctx = obs.NewContext(obs.WithTraceID(tctx, j.TraceID), j.rec)

	var perr error
	if len(chunk.rows) > 0 {
		pushStart := time.Now()
		func() {
			defer robust.RecoverTo(&perr)
			pctx, end := obs.SpanCtx(tctx, j.rec, "jobs.chunk_push")
			defer end()
			perr = j.handle.PushChunk(pctx, chunk.rows)
		}()
		obs.Histogram(obs.Default(), "jobs.chunk_push_seconds", time.Since(pushStart).Seconds())
	}
	// The snapshot reflects whatever the handle accepted, including a
	// partial chunk cut by the deadline, so it runs on a fresh context:
	// a cancelled push must not also starve the best-so-far refresh.
	var out *Outcome
	var serr error
	func() {
		defer robust.RecoverTo(&serr)
		out, serr = j.handle.Snapshot(obs.NewContext(context.Background(), j.rec))
	}()

	j.mu.Lock()
	if out != nil {
		j.result = out
	}
	best := j.result
	userCancel := j.userCancel
	j.cancel = nil
	j.mu.Unlock()

	switch {
	case userCancel:
		e.finish(j, StateCancelled, best, context.Canceled)
	case perr == nil && serr != nil:
		// The push held but the snapshot did not (empty stream closed,
		// or a contained snapshot panic): the typed snapshot error is
		// the terminal error, with any earlier snapshot attached.
		e.finish(j, StateFailed, best, serr)
	case perr == nil && chunk.final:
		e.finish(j, StateDone, best, nil)
	case perr == nil:
		// Chunk folded in, stream stays open for the next append.
	case errors.Is(perr, core.ErrInterrupted) && best != nil:
		e.finish(j, StatePartial, best, perr)
	case errors.Is(perr, core.ErrInterrupted):
		e.finish(j, StateCancelled, nil, perr)
	default:
		e.finish(j, StateFailed, best, perr)
	}
}

// finish performs the terminal transition. It is the only place a job's
// state becomes terminal, and it refuses to run twice: the exactly-once
// property the fault-injection suite asserts is enforced here, not merely
// tested.
func (e *Engine) finish(j *Job, s State, out *Outcome, err error) {
	j.mu.Lock()
	j.finishCalls++
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.result = out
	j.err = err
	attempts := j.attempts
	close(j.done)
	j.mu.Unlock()

	e.logState(j, s, attempts, err)
	rec := obs.Default()
	switch s {
	case StateDone:
		obs.Count(rec, "jobs.done", 1)
	case StatePartial:
		obs.Count(rec, "jobs.partial", 1)
	case StateFailed:
		obs.Count(rec, "jobs.failed", 1)
		if errors.Is(err, core.ErrPanic) {
			obs.Count(rec, "jobs.panics_contained", 1)
		}
	case StateCancelled:
		obs.Count(rec, "jobs.cancelled", 1)
	}
	if e.cfg.OnTerminal != nil {
		e.cfg.OnTerminal(j, s)
	}
}
