package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/obs"
	"multiclust/internal/parallel"
	"multiclust/internal/robust"
)

// Config sizes the engine. The zero value resolves to conservative
// defaults; every bound exists so overload degrades into refusals (429/503)
// instead of unbounded memory or latency.
type Config struct {
	// Workers is the number of concurrent job executors; <=0 resolves via
	// the shared parallel-layer knob (MULTICLUST_WORKERS, then
	// GOMAXPROCS). This bounds service concurrency; the parallelism
	// *inside* one job is still governed by multiclust.SetWorkers.
	Workers int
	// QueueSize bounds the admission queue (default 64). Submit fails
	// with ErrQueueFull — never blocks, never grows — once it is full.
	QueueSize int
	// DefaultTimeout applies to jobs that request none (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps every requested timeout (default 5m), so no tenant
	// can park a worker indefinitely.
	MaxTimeout time.Duration
	// RetryBudget is the number of deterministic reseed attempts for
	// degenerate fits (default 3; see robust.RetryBackoff).
	RetryBudget int
	// Backoff schedules the waits between degenerate-fit retries. Seed is
	// overridden per job with the job's spec seed, keeping the full retry
	// timeline a pure function of the spec. The zero value retries
	// immediately.
	Backoff robust.Backoff
	// MaxPoints bounds the dataset size admitted per job (default
	// 200000 rows); larger submissions are refused with ErrBadSpec.
	MaxPoints int
	// Runners extends or overrides the default algorithm registry —
	// the chaos suite injects faulty runners and the bench harness a
	// no-op runner through this seam. Nil entries delete a default.
	Runners map[string]Runner
	// OnTerminal, when non-nil, observes every terminal transition
	// (exactly one per admitted job). Used by the fault-injection suite
	// and available for operational logging.
	OnTerminal func(j *Job, s State)
}

// DrainReport summarizes what graceful shutdown did with the admitted jobs.
type DrainReport struct {
	Done      int  `json:"done"`
	Partial   int  `json:"partial"`
	Failed    int  `json:"failed"`
	Cancelled int  `json:"cancelled"`
	Truncated bool `json:"truncated"` // drain deadline fired before the pool went idle
}

// Engine is the bounded async job engine. Create with New, feed with
// Submit (or the HTTP handler), stop with Drain.
type Engine struct {
	cfg   Config
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	byKey    map[string]string // idempotency key -> job id
	draining bool
	seq      int64

	// stopped is set at the drain deadline: every job context still alive
	// is cancelled and jobs that start after it are cut immediately, so
	// the pool settles to best-so-far instead of serving out timeouts.
	stopped atomic.Bool
	wg      sync.WaitGroup
}

// New builds the engine and starts its worker pool. The pool runs until
// Drain; an Engine is not restartable.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = parallel.Workers(0)
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 3
	}
	if cfg.MaxPoints <= 0 {
		cfg.MaxPoints = 200000
	}
	runners := make(map[string]Runner, len(defaultRunners)+len(cfg.Runners))
	for name, r := range defaultRunners {
		runners[name] = r
	}
	for name, r := range cfg.Runners {
		if r == nil {
			delete(runners, name)
			continue
		}
		runners[name] = r
	}
	cfg.Runners = runners

	e := &Engine{
		cfg:   cfg,
		queue: make(chan *Job, cfg.QueueSize),
		jobs:  make(map[string]*Job),
		byKey: make(map[string]string),
	}
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		//lint:ignore nakedgo job workers are service lifecycle, not compute fan-out: they only move jobs from the bounded queue to the facade's ...Context calls, whose results are seed-deterministic regardless of which worker runs them; compute inside a job still funnels through internal/parallel
		go func() {
			defer e.wg.Done()
			e.worker()
		}()
	}
	return e
}

// validate is the admission gate: everything that can be rejected
// synchronously with a 400 is rejected here, so the bounded queue holds
// only runnable work. Deeper failures (degenerate fits, interrupts) are
// legitimate terminal states, not admission errors.
func (e *Engine) validate(spec Spec) error {
	if _, ok := e.cfg.Runners[spec.Algo]; !ok {
		return fmt.Errorf("%w: unknown algorithm %q (have %s)", ErrBadSpec, spec.Algo, e.algoNames())
	}
	if len(spec.Points) > e.cfg.MaxPoints {
		return fmt.Errorf("%w: %d points exceeds the %d-row admission bound", ErrBadSpec, len(spec.Points), e.cfg.MaxPoints)
	}
	if err := robust.ValidateDataset(spec.Points); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if spec.TimeoutMS < 0 {
		return fmt.Errorf("%w: negative timeout_ms %d", ErrBadSpec, spec.TimeoutMS)
	}
	if spec.K < 0 {
		return fmt.Errorf("%w: negative k %d", ErrBadSpec, spec.K)
	}
	return nil
}

func (e *Engine) algoNames() string {
	names := make([]string, 0, len(e.cfg.Runners))
	for name := range e.cfg.Runners {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

// Submit admits one job. The returned bool is true when an idempotency key
// matched an existing job (nothing new was enqueued). Errors: ErrBadSpec
// (refused outright), ErrQueueFull (queue at capacity — retry later),
// ErrDraining (engine shutting down).
func (e *Engine) Submit(spec Spec) (*Job, bool, error) {
	if err := e.validate(spec); err != nil {
		return nil, false, err
	}
	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.rejected_draining", 1)
		return nil, false, ErrDraining
	}
	if spec.IdempotencyKey != "" {
		if id, ok := e.byKey[spec.IdempotencyKey]; ok {
			j := e.jobs[id]
			e.mu.Unlock()
			obs.Count(obs.Default(), "jobs.duplicate_hits", 1)
			return j, true, nil
		}
	}
	e.seq++
	j := &Job{
		ID:         "j-" + strconv.FormatInt(e.seq, 10),
		Key:        spec.IdempotencyKey,
		Spec:       spec,
		col:        obs.NewCollector(),
		enqueuedAt: time.Now(),
		done:       make(chan struct{}),
	}
	select {
	case e.queue <- j:
	default:
		e.seq-- // nothing admitted; keep ids dense
		e.mu.Unlock()
		obs.Count(obs.Default(), "jobs.rejected_full", 1)
		return nil, false, ErrQueueFull
	}
	e.jobs[j.ID] = j
	if j.Key != "" {
		e.byKey[j.Key] = j.ID
	}
	e.mu.Unlock()
	obs.Count(obs.Default(), "jobs.submitted", 1)
	return j, false, nil
}

// Get returns the job by id.
func (e *Engine) Get(id string) (*Job, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

// List snapshots every known job, ordered by ascending id (admission
// order).
func (e *Engine) List() []Status {
	e.mu.Lock()
	all := make([]*Job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	e.mu.Unlock()
	sort.Slice(all, func(a, b int) bool {
		na, _ := strconv.Atoi(all[a].ID[2:])
		nb, _ := strconv.Atoi(all[b].ID[2:])
		return na < nb
	})
	out := make([]Status, len(all))
	for i, j := range all {
		out[i] = j.Status()
	}
	return out
}

// Cancel requests cancellation of the job: a queued job transitions to
// Cancelled immediately; a running job has its context cancelled and
// settles (Cancelled, with any best-so-far result attached) as soon as the
// algorithm observes it. Cancelling a terminal job is a no-op. The returned
// state is the job's state after the request took effect.
func (e *Engine) Cancel(id string) (State, error) {
	j, err := e.Get(id)
	if err != nil {
		return 0, err
	}
	j.mu.Lock()
	switch {
	case j.state == StateQueued:
		j.mu.Unlock()
		// The queued->cancelled transition goes through the single
		// terminal path; the worker that later pulls the job sees a
		// terminal state and skips it.
		e.finish(j, StateCancelled, nil, context.Canceled)
		obs.Count(obs.Default(), "jobs.cancelled_queued", 1)
	case j.state == StateRunning:
		j.userCancel = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
	return j.State(), nil
}

// Ready reports whether the engine can admit work right now: an error
// while draining or while the queue is saturated, nil otherwise. Wired to
// the ops /readyz probe.
func (e *Engine) Ready() error {
	e.mu.Lock()
	draining := e.draining
	e.mu.Unlock()
	if draining {
		return ErrDraining
	}
	if len(e.queue) == cap(e.queue) {
		return ErrQueueFull
	}
	return nil
}

// Drain gracefully shuts the engine down: admission stops immediately
// (Submit returns ErrDraining), queued and in-flight jobs keep running
// until the pool is idle or ctx fires, at which point every remaining job
// context is cancelled so in-flight runs settle with their best-so-far
// (Partial) and still-queued jobs settle as the workers sweep them. No
// admitted job is lost: by return, every job is in exactly one terminal
// state. Drain is idempotent; later calls wait on the same shutdown.
func (e *Engine) Drain(ctx context.Context) DrainReport {
	e.mu.Lock()
	if !e.draining {
		e.draining = true
		close(e.queue)
	}
	e.mu.Unlock()

	idle := make(chan struct{})
	//lint:ignore nakedgo shutdown waiter, joined below on every path via the idle channel; it runs no algorithm code
	go func() { e.wg.Wait(); close(idle) }()

	rep := DrainReport{}
	select {
	case <-idle:
	case <-ctx.Done():
		rep.Truncated = true
		e.stop() // cut every in-flight job to best-so-far
		<-idle
	}

	e.mu.Lock()
	for _, j := range e.jobs {
		switch j.State() {
		case StateDone:
			rep.Done++
		case StatePartial:
			rep.Partial++
		case StateFailed:
			rep.Failed++
		case StateCancelled:
			rep.Cancelled++
		}
	}
	e.mu.Unlock()
	if rep.Truncated {
		obs.Count(obs.Default(), "jobs.drain_truncated", 1)
	}
	return rep
}

// stop marks the drain deadline and cancels every job context still alive.
// The atomic flag and the per-job mutexes together close the race with a
// concurrently starting job: a job that installs its cancel hook after the
// sweep passed it must then observe stopped (sequentially consistent
// atomics) and cut itself in execute.
func (e *Engine) stop() {
	e.stopped.Store(true)
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, j := range e.jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	}
}

// worker moves jobs from the bounded queue into execute until Drain closes
// the queue and it runs dry.
func (e *Engine) worker() {
	for j := range e.queue {
		e.execute(j)
	}
}

// tryStart moves the job to Running and installs its cancel hook, or
// reports false when the job was cancelled while queued.
func (e *Engine) tryStart(j *Job, cancel func()) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.cancel = cancel
	return true
}

// execute runs one job to its terminal state. Panics cannot escape: every
// attempt is wrapped in robust.RecoverTo, so a panicking runner fails the
// job (ErrPanic) and the worker lives on.
func (e *Engine) execute(j *Job) {
	timeout := time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = e.cfg.DefaultTimeout
	}
	if timeout > e.cfg.MaxTimeout {
		timeout = e.cfg.MaxTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !e.tryStart(j, cancel) {
		return // cancelled while queued; already terminal
	}
	if e.stopped.Load() {
		// Swept from the queue at the drain deadline: the cancel hook is
		// installed, so cutting here (or by the stop sweep — whichever
		// observes the other) settles the run to best-so-far immediately.
		cancel()
	}
	obs.Gauge(obs.Default(), "jobs.dispatch_wait_ns", float64(time.Since(j.enqueuedAt).Nanoseconds()))
	tctx, tcancel := context.WithTimeout(ctx, timeout)
	defer tcancel()
	// The job's own collector is the context recorder: every counter the
	// algorithm records lands in this job's metrics and nowhere else.
	tctx = obs.NewContext(tctx, j.col)

	runner := e.cfg.Runners[j.Spec.Algo]
	backoff := e.cfg.Backoff
	backoff.Seed = j.Spec.Seed
	out, err := robust.RetryValueBackoff(tctx, j.Spec.Seed, e.cfg.RetryBudget, backoff,
		func(seed int64) (o *Outcome, rerr error) {
			defer robust.RecoverTo(&rerr)
			j.mu.Lock()
			j.attempts++
			j.mu.Unlock()
			return runner(tctx, j.Spec, seed, j.col)
		})

	j.mu.Lock()
	userCancel := j.userCancel
	j.mu.Unlock()
	switch {
	case err == nil:
		e.finish(j, StateDone, out, nil)
	case userCancel:
		e.finish(j, StateCancelled, out, err)
	case errors.Is(err, core.ErrInterrupted) && out != nil:
		// Deadline or drain expiry: the contract is best-so-far, not
		// failure — the partial result is served with partial=true.
		e.finish(j, StatePartial, out, err)
	case errors.Is(err, core.ErrInterrupted):
		// Interrupted before any result existed (e.g. swept from the
		// queue at the drain deadline).
		e.finish(j, StateCancelled, nil, err)
	default:
		e.finish(j, StateFailed, out, err)
	}
}

// finish performs the terminal transition. It is the only place a job's
// state becomes terminal, and it refuses to run twice: the exactly-once
// property the fault-injection suite asserts is enforced here, not merely
// tested.
func (e *Engine) finish(j *Job, s State, out *Outcome, err error) {
	j.mu.Lock()
	j.finishCalls++
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = s
	j.result = out
	j.err = err
	close(j.done)
	j.mu.Unlock()

	rec := obs.Default()
	switch s {
	case StateDone:
		obs.Count(rec, "jobs.done", 1)
	case StatePartial:
		obs.Count(rec, "jobs.partial", 1)
	case StateFailed:
		obs.Count(rec, "jobs.failed", 1)
		if errors.Is(err, core.ErrPanic) {
			obs.Count(rec, "jobs.panics_contained", 1)
		}
	case StateCancelled:
		obs.Count(rec, "jobs.cancelled", 1)
	}
	if e.cfg.OnTerminal != nil {
		e.cfg.OnTerminal(j, s)
	}
}
