package jobs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// sendJSON issues a request with an arbitrary method and raw body —
// postJSON's cousin for PATCH and for deliberately malformed payloads.
func sendJSON(t *testing.T, srv *httptest.Server, method, path, raw string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(raw))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func TestHTTPMalformedBodies(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	for _, body := range []string{"{", `{"algo": 7}`, `{"algo":"instant","bogus":true}`, ""} {
		resp, out := sendJSON(t, srv, http.MethodPost, "/v1/jobs", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST body %q = %d %s, want 400", body, resp.StatusCode, out)
		}
	}
	// PATCH decodes before it resolves the id, so a malformed chunk body
	// is a 400 even against a missing job.
	resp, out := sendJSON(t, srv, http.MethodPatch, "/v1/jobs/j-1", `{"points": [[1`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("PATCH malformed body = %d %s, want 400", resp.StatusCode, out)
	}
}

func TestHTTPUnknownAlgorithm(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "nope", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown algorithm") {
		t.Fatalf("unknown algo = %d %s, want 400 naming the registry", resp.StatusCode, body)
	}
	// The streaming registry is its own namespace with its own error.
	resp, body = postJSON(t, srv, "/v1/jobs", Spec{Algo: "dbscan", Stream: true, K: 2, Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "unknown streaming algorithm") {
		t.Fatalf("unknown stream algo = %d %s, want 400 naming the streaming registry", resp.StatusCode, body)
	}
}

func TestHTTPTimeoutOverCap(t *testing.T) {
	// MaxTimeout defaults to 5 minutes; a 10-minute request is refused at
	// admission, not silently capped.
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints(), TimeoutMS: 600000}, nil)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "cap") {
		t.Fatalf("over-cap timeout = %d %s, want 400", resp.StatusCode, body)
	}
}

func TestHTTPIdempotencyKeyConflict(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	hdr := map[string]string{"Idempotency-Key": "edge-1"}
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints(), Seed: 1}, hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d %s", resp.StatusCode, body)
	}
	// Same key, different body: 409, never a silent dedupe onto the
	// first job's result.
	resp, body = postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints(), Seed: 2}, hdr)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("conflicting submit = %d %s, want 409", resp.StatusCode, body)
	}
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil || !strings.Contains(er.Error, "different spec") {
		t.Fatalf("conflict body %s: %v", body, err)
	}
}

func TestHTTPStreamLifecycle(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "kmeans", Stream: true, K: 2, Seed: 21, Points: chunkA()}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID,
		`{"points": [[0.5, 0.5], [10.5, 10.5]]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("append = %d %s, want 202", resp.StatusCode, body)
	}
	var app appendResponse
	if err := json.Unmarshal(body, &app); err != nil {
		t.Fatalf("unmarshal append: %v", err)
	}
	if app.ChunksAcked != 2 || app.RowsAcked != 6 {
		t.Fatalf("append ack %+v, want chunks_acked=2 rows_acked=6", app)
	}

	// GET serves the latest snapshot while the stream is open.
	deadline := time.Now().Add(10 * time.Second)
	var st Status
	for {
		resp, body = do(t, srv, http.MethodGet, "/v1/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get = %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal status: %v", err)
		}
		if st.Result != nil && st.Result.Stats["rows_seen"] == 6 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("snapshot never covered both chunks: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !st.Stream || st.State != "running" {
		t.Fatalf("open stream status %+v, want stream=true running", st)
	}

	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID, `{"final": true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("close = %d %s", resp.StatusCode, body)
	}
	for {
		resp, body = do(t, srv, http.MethodGet, "/v1/jobs/"+sub.ID)
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal status: %v", err)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream never finalized: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Result == nil || len(st.Result.Labels) == 0 {
		t.Fatalf("finalized stream lacks a result: %+v", st)
	}

	// Appending after the close is a conflict, not a 400 or a dedupe.
	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID, `{"points": [[1, 1], [2, 2]]}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append after close = %d %s, want 409", resp.StatusCode, body)
	}
}

func TestHTTPPatchEdges(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	// Unknown job.
	resp, body := sendJSON(t, srv, http.MethodPatch, "/v1/jobs/j-404", `{"points": [[1, 2]]}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("patch unknown = %d %s, want 404", resp.StatusCode, body)
	}
	// Batch job: no append surface.
	resp, body = postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID, `{"points": [[1, 2]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("patch batch job = %d %s, want 400", resp.StatusCode, body)
	}
	// Empty non-final chunk.
	resp, body = postJSON(t, srv, "/v1/jobs", Spec{Algo: "kmeans", Stream: true, K: 2, Points: chunkA()}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("stream submit = %d %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID, `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty chunk = %d %s, want 400", resp.StatusCode, body)
	}
	// Ragged rows are refused at the door with a typed 400.
	resp, body = sendJSON(t, srv, http.MethodPatch, "/v1/jobs/"+sub.ID, `{"points": [[1, 2], [3]]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ragged chunk = %d %s, want 400", resp.StatusCode, body)
	}
	// The method-not-allowed surface names PATCH now.
	resp, _ = sendJSON(t, srv, http.MethodPut, "/v1/jobs/"+sub.ID, `{}`)
	if resp.StatusCode != http.StatusMethodNotAllowed || !strings.Contains(resp.Header.Get("Allow"), "PATCH") {
		t.Fatalf("PUT = %d allow %q, want 405 allowing PATCH", resp.StatusCode, resp.Header.Get("Allow"))
	}
}
