package jobs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"multiclust/internal/obs"
	"multiclust/internal/ops"
)

const testTraceParent = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// newTracedServer mounts the engine's handler behind the ops Instrument
// middleware, the same stack the CLI serves, so the traceparent header
// actually reaches the submit path via the request context.
func newTracedServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, cfg)
	srv := httptest.NewServer(ops.Instrument(e.Handler(), nil))
	t.Cleanup(srv.Close)
	return e, srv
}

// chromeTrace mirrors the shape WriteChromeTrace emits, for assertions.
type chromeTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestTraceEndToEnd is the acceptance path from the issue: submit with a
// W3C traceparent, see the same trace id echoed on X-Trace-Id and carried
// by the job, and retrieve a Chrome trace whose events all bear that id.
func TestTraceEndToEnd(t *testing.T) {
	e, srv := newTracedServer(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	resp, body := postJSON(t, srv, "/v1/jobs",
		Spec{Algo: "instant", Points: testPoints(), Seed: 3},
		map[string]string{"traceparent": testTraceParent})
	if resp.StatusCode != 202 {
		t.Fatalf("submit status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Trace-Id"); got != testTraceID {
		t.Fatalf("X-Trace-Id = %q, want the traceparent's trace id %q", got, testTraceID)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	if sub.TraceID != testTraceID {
		t.Fatalf("submit response trace_id = %q, want %q", sub.TraceID, testTraceID)
	}
	if got := resp.Header.Get("X-Job-Id"); got != sub.ID {
		t.Fatalf("X-Job-Id = %q, want %q", got, sub.ID)
	}

	j, err := e.Get(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("job state = %s, want done (err %v)", j.State(), j.Err())
	}

	// The job's status surface reports the trace id for its whole
	// lifetime, and /spans leads with it.
	if st := j.Status(); st.TraceID != testTraceID {
		t.Fatalf("status trace_id = %q, want %q", st.TraceID, testTraceID)
	}
	resp, body = do(t, srv, "GET", "/v1/jobs/"+sub.ID+"/spans")
	if resp.StatusCode != 200 || !strings.HasPrefix(string(body), "trace_id "+testTraceID+"\n") {
		t.Fatalf("/spans = %d:\n%s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "jobs.run") {
		t.Fatalf("/spans missing the jobs.run span:\n%s", body)
	}

	resp, body = do(t, srv, "GET", "/v1/jobs/"+sub.ID+"/trace")
	if resp.StatusCode != 200 {
		t.Fatalf("/trace status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("/trace Content-Type = %q", ct)
	}
	var tr chromeTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatalf("/trace is not valid JSON: %v\n%s", err, body)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatalf("/trace has no events:\n%s", body)
	}
	for i, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %d (%s): ph = %q, want X", i, ev.Name, ev.Ph)
		}
		if got, _ := ev.Args["trace_id"].(string); got != testTraceID {
			t.Errorf("event %d (%s): args.trace_id = %q, want %q", i, ev.Name, got, testTraceID)
		}
	}
}

// An untraced submission still records spans and serves a trace — its
// events simply carry no trace id — so the retrieval surface does not
// depend on callers adopting trace propagation.
func TestTraceWithoutTraceParent(t *testing.T) {
	e, srv := newTracedServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	// Bypass the middleware entirely: submit straight through the engine.
	j, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints(), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	resp, body := do(t, srv, "GET", "/v1/jobs/"+j.ID+"/trace")
	if resp.StatusCode != 200 {
		t.Fatalf("/trace status = %d: %s", resp.StatusCode, body)
	}
	var tr chromeTrace
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("untraced job has no span events")
	}
	for i, ev := range tr.TraceEvents {
		if _, present := ev.Args["trace_id"]; present {
			t.Errorf("event %d carries a trace_id on an untraced job", i)
		}
	}
}

// /trace refuses with 409 while the job is still running: the stream is
// only complete and immutable once the job is terminal.
func TestTraceConflictUntilTerminal(t *testing.T) {
	started := make(chan struct{}, 1)
	e, srv := newTracedServer(t, Config{Workers: 1, Runners: map[string]Runner{"slow": slowRunner(started)}})
	j, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 200})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	resp, body := do(t, srv, "GET", "/v1/jobs/"+j.ID+"/trace")
	if resp.StatusCode != 409 {
		t.Fatalf("/trace on a running job = %d, want 409: %s", resp.StatusCode, body)
	}
	waitTerminal(t, j)
	resp, _ = do(t, srv, "GET", "/v1/jobs/"+j.ID+"/trace")
	if resp.StatusCode != 200 {
		t.Fatalf("/trace after terminal = %d, want 200", resp.StatusCode)
	}

	resp, _ = do(t, srv, "GET", "/v1/jobs/nope/trace")
	if resp.StatusCode != 404 {
		t.Fatalf("/trace on unknown job = %d, want 404", resp.StatusCode)
	}
	resp, _ = do(t, srv, "DELETE", "/v1/jobs/"+j.ID+"/trace")
	if resp.StatusCode != 405 || resp.Header.Get("Allow") != "GET" {
		t.Fatalf("DELETE /trace = %d (Allow %q), want 405 with Allow: GET",
			resp.StatusCode, resp.Header.Get("Allow"))
	}
}

// A duplicate idempotent submission reports the ORIGINAL job's trace id —
// its telemetry is the one that exists — regardless of the retry's header.
func TestDuplicateSubmitKeepsOriginalTraceID(t *testing.T) {
	_, srv := newTracedServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})
	spec := Spec{Algo: "instant", Points: testPoints(), Seed: 5, IdempotencyKey: "k-1"}
	resp, body := postJSON(t, srv, "/v1/jobs", spec, map[string]string{"traceparent": testTraceParent})
	if resp.StatusCode != 202 {
		t.Fatalf("first submit = %d: %s", resp.StatusCode, body)
	}
	retry, body := postJSON(t, srv, "/v1/jobs", spec, map[string]string{
		"traceparent": "00-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa-00f067aa0ba902b7-01",
	})
	if retry.StatusCode != 200 {
		t.Fatalf("duplicate submit = %d: %s", retry.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if !sub.Duplicate || sub.TraceID != testTraceID {
		t.Fatalf("duplicate response = %+v, want duplicate with original trace id %s", sub, testTraceID)
	}
}

// TestLogSchemaJobEvents pins the job.state JSONL contract end to end:
// every transition line the engine logs validates against the documented
// schema and walks queued -> running -> done in order.
func TestLogSchemaJobEvents(t *testing.T) {
	var sb strings.Builder
	log := obs.NewLogger(&sb, obs.LogDebug)
	e := New(Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}, Log: log})
	j, _, err := e.SubmitTraced(Spec{Algo: "instant", Points: testPoints(), Seed: 2}, testTraceID)
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	// The terminal log line lands after done closes; Drain joins the
	// worker so the buffer is quiescent before we read it.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e.Drain(ctx)

	lines := strings.Split(strings.TrimSuffix(sb.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 job.state lines, got %d:\n%s", len(lines), sb.String())
	}
	wantStates := []string{"queued", "running", "done"}
	for i, line := range lines {
		if err := obs.ValidateLogLine([]byte(line)); err != nil {
			t.Errorf("line %d fails schema: %v\n%s", i, err, line)
		}
		for _, want := range []string{
			`"event":"job.state"`,
			`"job":"` + j.ID + `"`,
			`"state":"` + wantStates[i] + `"`,
			`"trace":"` + testTraceID + `"`,
		} {
			if !strings.Contains(line, want) {
				t.Errorf("line %d missing %s:\n%s", i, want, line)
			}
		}
	}
	if !strings.Contains(lines[2], `"attempts":1`) {
		t.Fatalf("terminal line missing attempts:\n%s", lines[2])
	}
}
