package jobs

import (
	"context"
	"errors"

	"multiclust"
	"multiclust/internal/obs"
)

// Runner executes one attempt of a job: the spec's dataset under the
// spec's algorithm, with the attempt's seed (the engine walks the
// deterministic schedule spec.Seed, spec.Seed+1, ... on degenerate fits,
// so `seed - spec.Seed` is the attempt index). The context carries the
// deadline, the drain signal and the per-job recorder; a runner that is
// interrupted should return its best-so-far Outcome alongside an error
// wrapping core.ErrInterrupted — that pair is what the engine serves as a
// partial result. Runners are invoked under robust.RecoverTo, so a panic
// fails the job without taking the worker down.
type Runner func(ctx context.Context, spec Spec, seed int64, rec obs.Recorder) (*Outcome, error)

// defaultRunners dispatches the service's algorithm names onto the facade
// ...Context variants, inheriting their whole robustness envelope:
// validation gates, panic recovery, degenerate-fit detection, and
// best-so-far on interrupt.
var defaultRunners = map[string]Runner{
	"kmeans":   runKMeans,
	"em":       runEM,
	"spectral": runSpectral,
	"dbscan":   runDBSCAN,
	"meta":     runMeta,
}

// Algorithms lists the service's built-in algorithm names (sorted
// lexicographically in the engine's error texts).
func Algorithms() []string {
	return []string{"dbscan", "em", "kmeans", "meta", "spectral"}
}

// outcomeFromClustering flattens a label vector into the wire shape.
func outcomeFromClustering(c *multiclust.Clustering) *Outcome {
	if c == nil {
		return nil
	}
	return &Outcome{Labels: c.Labels, K: c.K(), Noise: c.NoiseCount()}
}

func runKMeans(ctx context.Context, spec Spec, seed int64, _ obs.Recorder) (*Outcome, error) {
	res, err := multiclust.KMeansContext(ctx, spec.Points, multiclust.KMeansConfig{
		K: spec.K, Seed: seed, Restarts: spec.Restarts, MaxIter: spec.MaxIter,
	})
	if res == nil {
		return nil, err
	}
	out := outcomeFromClustering(res.Clustering)
	if out != nil {
		out.Stats = map[string]float64{"sse": res.SSE, "iterations": float64(res.Iterations)}
	}
	return out, err
}

func runEM(ctx context.Context, spec Spec, seed int64, _ obs.Recorder) (*Outcome, error) {
	res, err := multiclust.EMContext(ctx, spec.Points, multiclust.EMConfig{
		K: spec.K, Seed: seed, MaxIter: spec.MaxIter,
	})
	if res == nil {
		return nil, err
	}
	out := outcomeFromClustering(res.Clustering)
	if out != nil {
		out.Stats = map[string]float64{"loglik": res.LogLik, "iterations": float64(res.Iterations)}
	}
	return out, err
}

func runSpectral(ctx context.Context, spec Spec, seed int64, _ obs.Recorder) (*Outcome, error) {
	res, err := multiclust.SpectralContext(ctx, spec.Points, multiclust.SpectralConfig{
		K: spec.K, Seed: seed,
	})
	if res == nil {
		return nil, err
	}
	out := outcomeFromClustering(res.Clustering)
	if out != nil {
		out.Stats = map[string]float64{"sigma": res.Sigma}
	}
	return out, err
}

func runDBSCAN(ctx context.Context, spec Spec, _ int64, _ obs.Recorder) (*Outcome, error) {
	// DBSCAN is deterministic without a seed; the retry schedule cannot
	// change its outcome, and it never reports ErrDegenerate.
	c, err := multiclust.DBSCANContext(ctx, spec.Points, multiclust.DBSCANConfig{
		Eps: spec.Eps, MinPts: spec.MinPts,
	})
	return outcomeFromClustering(c), err
}

func runMeta(ctx context.Context, spec Spec, seed int64, _ obs.Recorder) (*Outcome, error) {
	res, err := multiclust.MetaClusteringContext(ctx, spec.Points, multiclust.MetaClusteringConfig{
		K: spec.K, Seed: seed, NumSolutions: spec.NumSolutions, MetaClusters: spec.MetaClusters,
	})
	if res == nil {
		return nil, err
	}
	if len(res.Representatives) == 0 {
		if err == nil {
			err = errors.New("jobs: meta clustering produced no representatives")
		}
		return nil, err
	}
	out := &Outcome{
		Solutions: make([][]int, len(res.Representatives)),
		Stats:     map[string]float64{"mean_pairwise": res.MeanPairwise, "generated": float64(len(res.Generated))},
	}
	for i, c := range res.Representatives {
		out.Solutions[i] = c.Labels
	}
	// The first representative doubles as the flat label surface so
	// single-solution clients need no special casing.
	out.Labels = res.Representatives[0].Labels
	out.K = res.Representatives[0].K()
	out.Noise = res.Representatives[0].NoiseCount()
	return out, err
}
