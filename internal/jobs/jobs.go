// Package jobs is the resilience envelope that turns multiclust's one-shot
// clustering substrate into a service: a multi-tenant async job engine with
// a bounded queue, per-job deadlines, budgeted retry with deterministic
// backoff, idempotency keys, cooperative cancellation, and graceful drain.
//
// A job is one clustering run — dataset plus algorithm spec — executed by a
// bounded worker pool through the facade's ...Context variants, so every
// primitive the robust layer guarantees (validation gates, panic
// containment, best-so-far on interrupt, degenerate-fit reseed) holds per
// job. Each job records into its own obs.Collector; nothing leaks between
// tenants.
//
// Lifecycle (exactly one terminal state per admitted job):
//
//	queued ──► running ──► done        (ran to completion)
//	   │           ├─────► partial     (deadline/drain cut it short;
//	   │           │                    best-so-far result attached)
//	   │           ├─────► failed      (typed error, incl. contained panic)
//	   │           └─────► cancelled   (DELETE while running)
//	   └─────────────────► cancelled   (DELETE while still queued)
//
// Backpressure is structural: the queue is a bounded channel, Submit fails
// with ErrQueueFull the instant it is full (HTTP 429 + Retry-After), and
// admission stops with ErrDraining once Drain begins — the engine degrades
// by refusing work, never by growing without bound.
package jobs

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"time"

	"multiclust/internal/obs"
)

// Typed admission and lookup errors; the HTTP layer maps them to status
// codes (429, 503, 404, 400).
var (
	// ErrQueueFull rejects a Submit while the bounded queue is at
	// capacity. Maps to 429 Too Many Requests with a Retry-After hint.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining rejects a Submit after Drain has begun. Maps to 503.
	ErrDraining = errors.New("jobs: engine draining")
	// ErrNotFound reports an unknown job id. Maps to 404.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrBadSpec reports a spec the engine refuses to admit (unknown
	// algorithm, invalid dataset, negative or over-cap timeout). Maps
	// to 400.
	ErrBadSpec = errors.New("jobs: invalid spec")
	// ErrConflict reports a request that contradicts recorded state: an
	// idempotency key reused with a different spec body, or a chunk
	// appended to a stream that is already closed or terminal. Maps to
	// 409.
	ErrConflict = errors.New("jobs: conflict")
)

// Spec is the JSON body of POST /v1/jobs: one dataset plus the algorithm
// to run on it. Unused knobs may be omitted; zero values defer to the
// algorithm defaults. Seed is the determinism anchor — two jobs with the
// same spec (seed included) produce byte-identical results regardless of
// queue position, worker count, or what other tenants are doing.
type Spec struct {
	Algo         string      `json:"algo"`
	Points       [][]float64 `json:"points"`
	K            int         `json:"k,omitempty"`
	Seed         int64       `json:"seed,omitempty"`
	Eps          float64     `json:"eps,omitempty"`
	MinPts       int         `json:"min_pts,omitempty"`
	Restarts     int         `json:"restarts,omitempty"`
	MaxIter      int         `json:"max_iter,omitempty"`
	NumSolutions int         `json:"num_solutions,omitempty"`
	MetaClusters int         `json:"meta_clusters,omitempty"`
	// TimeoutMS bounds the job's wall-clock run; 0 selects the engine
	// default and every value is capped by the engine maximum. An expired
	// deadline does not fail the job: the algorithm returns its
	// best-so-far result and the job lands in StatePartial.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// IdempotencyKey deduplicates retried submissions: a second POST with
	// the same key and the same spec returns the job admitted by the
	// first instead of enqueueing a sibling; the same key with a
	// *different* spec is refused with ErrConflict (409), never silently
	// deduplicated. The Idempotency-Key HTTP header overrides it.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Stream marks an incremental job: Points (optional) is the first
	// chunk, PATCH /v1/jobs/{id} appends more, GET serves the latest
	// snapshot while the stream is open, and a final append — or a
	// graceful drain — terminalizes the job (Done, or Partial with the
	// last snapshot). Streaming algorithms live in their own registry;
	// see StreamAlgorithms. TimeoutMS bounds each chunk, not the stream.
	Stream bool `json:"stream,omitempty"`
	// Window bounds the sliding window of the streaming "meta" ensemble
	// (chunks retained before FIFO eviction); 0 defers to the
	// stream-layer default. Ignored by the other streaming algorithms.
	Window int `json:"window,omitempty"`
}

// State is a job's lifecycle position. Done, Partial, Failed and Cancelled
// are terminal; the engine guarantees every admitted job reaches exactly
// one of them exactly once.
type State int

// Lifecycle states.
const (
	StateQueued State = iota
	StateRunning
	StateDone
	StatePartial
	StateFailed
	StateCancelled
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s >= StateDone }

// String names the state as it appears on the wire.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	case StatePartial:
		return "partial"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Outcome is the result surface of a finished (or partially finished) job:
// the label vector (or one per representative solution for ensemble
// algorithms) plus scalar summary statistics. It is deliberately flat and
// JSON-friendly; rich in-process types stay behind the facade.
type Outcome struct {
	Labels    []int              `json:"labels,omitempty"`
	Solutions [][]int            `json:"solutions,omitempty"`
	K         int                `json:"k"`
	Noise     int                `json:"noise,omitempty"`
	Stats     map[string]float64 `json:"stats,omitempty"`
}

// Status is an immutable snapshot of one job, safe to hand across
// goroutines and to serialize. Result is non-nil for done and partial jobs
// (and for cancelled jobs whose algorithm had a best-so-far to return).
type Status struct {
	ID       string           `json:"id"`
	Algo     string           `json:"algo"`
	State    string           `json:"state"`
	Partial  bool             `json:"partial"`
	Attempts int              `json:"attempts,omitempty"`
	Error    string           `json:"error,omitempty"`
	Result   *Outcome         `json:"result,omitempty"`
	Metrics  map[string]int64 `json:"metrics,omitempty"`
	// Streaming bookkeeping (Spec.Stream jobs only): chunks and rows
	// acknowledged so far — acknowledged means the append was accepted
	// into the bounded queue, not necessarily processed yet.
	Stream      bool  `json:"stream,omitempty"`
	ChunksAcked int   `json:"chunks_acked,omitempty"`
	RowsAcked   int64 `json:"rows_acked,omitempty"`
	// TraceID is the W3C trace id of the request that created the job
	// ("" for jobs submitted without one). It is the caller's key into
	// GET /v1/jobs/{id}/spans and /trace.
	TraceID string `json:"trace_id,omitempty"`
}

// Job is one admitted clustering run. All mutable fields are guarded by mu;
// readers take snapshots via Status. The done channel closes exactly once,
// at the terminal transition.
type Job struct {
	ID   string
	Key  string // idempotency key, "" when none
	Spec Spec
	// TraceID is the trace id of the creating request, fixed at admission
	// for the job's whole async lifetime ("" when untraced).
	TraceID string

	col *obs.Collector // per-job recorder; no cross-tenant leakage
	// traceLog buffers the job's JSONL trace stream (written via trace)
	// so GET /v1/jobs/{id}/trace can replay it into Chrome trace-event
	// JSON after the job completes.
	traceLog *traceBuf
	trace    *obs.TraceWriter
	// rec tees col and trace; it is what runners and job spans record to.
	rec obs.Recorder

	mu          sync.Mutex
	state       State
	result      *Outcome
	err         error
	attempts    int
	cancel      func() // set when the job starts running
	userCancel  bool   // DELETE seen (distinguishes cancel from deadline)
	enqueuedAt  time.Time
	finishCalls int // total finish attempts; >1 would break exactly-once
	done        chan struct{}

	// Streaming state (Spec.Stream jobs only), also guarded by mu. Every
	// acknowledged chunk in pending has a matching token in the engine
	// queue, so pending is bounded by the queue capacity. Chunk
	// processing is serialized by a claim: the first worker whose token
	// arrives sets processing and consumes every owed token (tokens
	// counts the ones delivered meanwhile), so the handle never sees two
	// concurrent pushes and chunks fold in strictly in acknowledgement
	// order.
	handle      StreamHandle
	pending     []streamChunk
	closed      bool // a final append was acknowledged; no more chunks
	processing  bool // a worker holds the chunk-processing claim
	tokens      int  // queue tokens delivered but not yet consumed
	chunksAcked int
	rowsAcked   int64
}

// streamChunk is one acknowledged, not-yet-processed chunk of a
// streaming job. A final chunk (possibly with no rows) closes the
// stream: processing it terminalizes the job.
type streamChunk struct {
	rows  [][]float64
	final bool
}

// traceBuf is the mutex-guarded byte buffer behind a job's TraceWriter:
// span lines are written by whichever worker runs the job while the HTTP
// layer may concurrently snapshot the accumulated stream, so both sides
// go through the lock. Bytes returns a copy.
type traceBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (t *traceBuf) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.b.Write(p)
}

func (t *traceBuf) Bytes() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]byte, t.b.Len())
	copy(out, t.b.Bytes())
	return out
}

// Done returns a channel closed at the job's terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the terminal error (nil for done/partial-by-deadline jobs may
// still be non-nil: partial jobs keep the ErrInterrupted wrapper for
// inspection).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Result returns the outcome recorded at the terminal transition (nil when
// the job failed without a best-so-far).
func (j *Job) Result() *Outcome {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// FinishCalls reports how many terminal transitions were attempted on the
// job — the fault-injection suite asserts this is exactly 1 for every
// admitted job.
func (j *Job) FinishCalls() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishCalls
}

// Status snapshots the job, including its recorded per-job work counters.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		Algo:     j.Spec.Algo,
		State:    j.state.String(),
		Partial:  j.state == StatePartial,
		Attempts: j.attempts,
		Result:   j.result,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state.Terminal() {
		st.Metrics = j.col.Snapshot().Counters
	}
	if j.Spec.Stream {
		st.Stream = true
		st.ChunksAcked = j.chunksAcked
		st.RowsAcked = j.rowsAcked
	}
	st.TraceID = j.TraceID
	return st
}
