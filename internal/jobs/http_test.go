package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any, header map[string]string) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func do(t *testing.T, srv *httptest.Server, method, path string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, srv.URL+path, nil)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, buf.Bytes()
}

func newTestServer(t *testing.T, cfg Config) (*Engine, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, cfg)
	srv := httptest.NewServer(e.Handler())
	t.Cleanup(srv.Close)
	return e, srv
}

func TestHTTPSubmitPollResult(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints(), Seed: 1}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d body %s, want 202", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}

	var st Status
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = do(t, srv, http.MethodGet, "/v1/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get status = %d body %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal status: %v", err)
		}
		if st.State == "done" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Result == nil || len(st.Result.Labels) != 4 {
		t.Fatalf("terminal status %+v lacks the result", st)
	}
	if st.Partial {
		t.Fatalf("done job reported partial: %+v", st)
	}
}

func TestHTTPPartialIsSuccessSurface(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"slow": slowRunner(nil)}})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 30}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d body %s", resp.StatusCode, body)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = do(t, srv, http.MethodGet, "/v1/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("deadline-expired job answered %d, want 200 — partial is success", resp.StatusCode)
		}
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if st.State == "partial" {
			if !st.Partial || st.Result == nil {
				t.Fatalf("partial status %+v lacks flag or best-so-far result", st)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPBackpressure429(t *testing.T) {
	started := make(chan struct{}, 1)
	_, srv := newTestServer(t, Config{Workers: 1, QueueSize: 1, Runners: map[string]Runner{
		"slow":    slowRunner(started),
		"instant": instantRunner,
	}})
	resp, _ := postJSON(t, srv, "/v1/jobs", Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker status = %d", resp.StatusCode)
	}
	<-started
	resp, _ = postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("filler status = %d", resp.StatusCode)
	}
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d body %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}
}

func TestHTTPIdempotencyHeader(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	spec := Spec{Algo: "instant", Points: testPoints()}
	hdr := map[string]string{"Idempotency-Key": "k-1"}
	resp, body := postJSON(t, srv, "/v1/jobs", spec, hdr)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	var first submitResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	resp, body = postJSON(t, srv, "/v1/jobs", spec, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", resp.StatusCode)
	}
	var second submitResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !second.Duplicate || second.ID != first.ID {
		t.Fatalf("duplicate response %+v, want duplicate=true id=%s", second, first.ID)
	}
}

func TestHTTPCancel(t *testing.T) {
	started := make(chan struct{}, 1)
	_, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"slow": slowRunner(started)}})
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000}, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	<-started
	resp, body = do(t, srv, http.MethodDelete, "/v1/jobs/"+sub.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d body %s", resp.StatusCode, body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, body = do(t, srv, http.MethodGet, "/v1/jobs/"+sub.ID)
		var st Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if st.State == "cancelled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cancelled job stuck in state %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestHTTPList(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	for i := 0; i < 3; i++ {
		j, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints(), Seed: int64(i)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		waitTerminal(t, j)
	}
	resp, body := do(t, srv, http.MethodGet, "/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list = %d", resp.StatusCode)
	}
	var all []Status
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("unmarshal list: %v", err)
	}
	if len(all) != 3 {
		t.Fatalf("list has %d jobs, want 3", len(all))
	}
}

func TestHTTPErrorSurface(t *testing.T) {
	e, srv := newTestServer(t, Config{Workers: 1, Runners: map[string]Runner{"instant": instantRunner}})

	// Bad spec -> 400 with a structured error body.
	resp, body := postJSON(t, srv, "/v1/jobs", Spec{Algo: "no-such", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algo = %d, want 400", resp.StatusCode)
	}
	var e400 errorResponse
	if err := json.Unmarshal(body, &e400); err != nil || e400.Error == "" {
		t.Fatalf("400 body %s: %v", body, err)
	}

	// Unknown field -> 400 (DisallowUnknownFields).
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs",
		bytes.NewReader([]byte(`{"algo":"instant","points":[[1,2]],"bogus":1}`)))
	resp2, err := srv.Client().Do(req)
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", resp2.StatusCode)
	}

	// Unknown id -> 404; nested path -> 404.
	if resp, _ := do(t, srv, http.MethodGet, "/v1/jobs/j-999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, srv, http.MethodGet, "/v1/jobs/a/b"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("nested path = %d, want 404", resp.StatusCode)
	}

	// Wrong methods -> 405 with Allow.
	if resp, _ := do(t, srv, http.MethodDelete, "/v1/jobs"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE collection = %d, want 405", resp.StatusCode)
	} else if resp.Header.Get("Allow") == "" {
		t.Fatal("405 without Allow header")
	}
	if resp, _ := do(t, srv, http.MethodPut, "/v1/jobs/j-1"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT item = %d, want 405", resp.StatusCode)
	}

	// Draining -> 503.
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer dcancel()
	e.Drain(dctx)
	resp, _ = postJSON(t, srv, "/v1/jobs", Spec{Algo: "instant", Points: testPoints()}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", resp.StatusCode)
	}
}
