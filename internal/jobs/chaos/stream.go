package chaos

import (
	"context"
	"fmt"
	"sync"

	"multiclust/internal/core"
	"multiclust/internal/jobs"
)

// Streaming fault handles, the incremental counterpart of the batch
// fault runners above: injected through jobs.Config.Streams, they let
// the property tests race chunk appends against cancel and drain without
// paying for a real learner. Determinism rule unchanged — each handle's
// behavior is a pure function of its spec and the chunk sequence it is
// fed; no handle consults a clock or an unseeded RNG.

// countingHandle is the control-group stream: it accepts every chunk
// instantly and snapshots exact bookkeeping (rows_seen, chunks), which
// the accounting property compares against the acknowledged totals. The
// mutex only orders the engine's serialized calls with the test's final
// inspection barrier; there is no internal concurrency.
type countingHandle struct {
	mu     sync.Mutex
	rows   int64
	chunks int
}

func (h *countingHandle) PushChunk(_ context.Context, rows [][]float64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rows += int64(len(rows))
	h.chunks++
	return nil
}

func (h *countingHandle) Snapshot(context.Context) (*jobs.Outcome, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.chunks == 0 {
		return nil, fmt.Errorf("chaos: empty stream: %w", core.ErrEmptyDataset)
	}
	return &jobs.Outcome{K: 1, Stats: map[string]float64{
		"rows_seen": float64(h.rows), "chunks": float64(h.chunks),
	}}, nil
}

// InstantStream is the factory for the counting control handle.
func InstantStream() jobs.StreamFactory {
	return func(jobs.Spec) (jobs.StreamHandle, error) {
		return &countingHandle{}, nil
	}
}

// slowHandle blocks inside every push until the chunk context is cut —
// by deadline, DELETE, or the drain sweep — then reports the chunk
// half-eaten via core.ErrInterrupted, exactly as a real learner's chunk
// boundary would. Snapshots still serve the chunks folded in before.
type slowHandle struct{ countingHandle }

func (h *slowHandle) PushChunk(ctx context.Context, rows [][]float64) error {
	<-ctx.Done()
	return fmt.Errorf("chaos: slow stream chunk cut short: %w", core.ErrInterrupted)
}

// SlowStream is the factory for the stalling handle: the canonical probe
// for chunk appends racing cancels and drain deadlines.
func SlowStream() jobs.StreamFactory {
	return func(jobs.Spec) (jobs.StreamHandle, error) {
		return &slowHandle{}, nil
	}
}

// panicHandle panics on the n-th pushed chunk (0-based) and counts
// normally before that; the engine must contain the panic, fail the job,
// and keep the worker alive.
type panicHandle struct {
	countingHandle
	panicAt int
}

func (h *panicHandle) PushChunk(ctx context.Context, rows [][]float64) error {
	h.mu.Lock()
	n := h.chunks
	h.mu.Unlock()
	if n >= h.panicAt {
		panic(fmt.Sprintf("chaos: injected stream panic at chunk %d", n))
	}
	return h.countingHandle.PushChunk(ctx, rows)
}

// PanicStream is the factory for a handle that panics on chunk n.
func PanicStream(n int) jobs.StreamFactory {
	return func(jobs.Spec) (jobs.StreamHandle, error) {
		return &panicHandle{panicAt: n}, nil
	}
}

// StreamFaults is the streaming battery under stable names, the
// Config.Streams counterpart of TestRunners.
func StreamFaults() map[string]jobs.StreamFactory {
	return map[string]jobs.StreamFactory{
		"chaos-stream-instant": InstantStream(),
		"chaos-stream-slow":    SlowStream(),
		"chaos-stream-panic":   PanicStream(1),
	}
}
