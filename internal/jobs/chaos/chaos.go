// Package chaos is the service-layer fault-injection harness for the job
// engine: synthetic runners that panic, degenerate, stall, or finish
// instantly, injected through jobs.Config.Runners. The property tests built
// on them assert the engine's resilience invariants — no panic escapes a
// worker or handler, every admitted job reaches exactly one terminal
// state, 429 appears iff the bounded queue is full, and graceful drain
// loses no admitted job.
//
// Like the dataset corrupters in internal/robust/chaos, every fault here
// is deterministic: a runner's behavior is a pure function of the
// (spec, seed) pair it is handed — Degenerate counts attempts off the
// engine's documented seed schedule, Flaky draws from a seeded hash of the
// job seed — so any chaos failure replays from its spec alone.
package chaos

import (
	"context"
	"fmt"
	"math/rand"

	"multiclust/internal/core"
	"multiclust/internal/jobs"
	"multiclust/internal/obs"
)

// Instant returns a runner that succeeds immediately with a tiny fixed
// outcome — the control group, and the bench harness's dispatch-overhead
// probe.
func Instant() jobs.Runner {
	return func(_ context.Context, spec jobs.Spec, _ int64, _ obs.Recorder) (*jobs.Outcome, error) {
		labels := make([]int, len(spec.Points))
		return &jobs.Outcome{Labels: labels, K: 1}, nil
	}
}

// Panicky returns a runner that panics with msg on every attempt. The
// engine must contain it: the job fails with an error wrapping ErrPanic
// and the worker pool keeps serving.
func Panicky(msg string) jobs.Runner {
	return func(context.Context, jobs.Spec, int64, obs.Recorder) (*jobs.Outcome, error) {
		panic(msg)
	}
}

// Degenerate returns a runner that reports core.ErrDegenerate for the
// first n attempts of a job and succeeds afterwards. Attempts are counted
// deterministically off the engine's reseed schedule (seed - spec.Seed),
// so the runner needs no state and the retry path it exercises is
// replayable.
func Degenerate(n int) jobs.Runner {
	return func(_ context.Context, spec jobs.Spec, seed int64, _ obs.Recorder) (*jobs.Outcome, error) {
		attempt := int(seed - spec.Seed)
		if attempt < n {
			return nil, fmt.Errorf("chaos: injected degenerate fit (attempt %d of %d): %w", attempt, n, core.ErrDegenerate)
		}
		labels := make([]int, len(spec.Points))
		return &jobs.Outcome{Labels: labels, K: 1, Stats: map[string]float64{"attempts": float64(attempt + 1)}}, nil
	}
}

// Slow returns a runner that signals onStart (when non-nil), then blocks
// until its context is cancelled — by deadline, DELETE, or drain — and
// returns a best-so-far outcome wrapped in core.ErrInterrupted, exactly as
// the facade's ...Context algorithms do. It is the canonical stuck-job and
// drain-deadline probe.
func Slow(onStart chan<- string) jobs.Runner {
	return func(ctx context.Context, spec jobs.Spec, _ int64, _ obs.Recorder) (*jobs.Outcome, error) {
		if onStart != nil {
			onStart <- spec.Algo
		}
		<-ctx.Done()
		labels := make([]int, len(spec.Points))
		for i := range labels {
			labels[i] = core.Noise // nothing was clustered before the cut
		}
		return &jobs.Outcome{Labels: labels, K: 0, Noise: len(labels)},
			fmt.Errorf("chaos: slow job cut short: %w", core.ErrInterrupted)
	}
}

// Flaky returns a runner that fails — a plain error, not a degenerate fit,
// so the engine must NOT retry it — on the deterministic fraction p of job
// seeds, and succeeds on the rest. The decision hashes the job seed
// through a seeded RNG: same spec, same verdict, every run.
func Flaky(p float64) jobs.Runner {
	return func(_ context.Context, spec jobs.Spec, seed int64, _ obs.Recorder) (*jobs.Outcome, error) {
		rng := rand.New(rand.NewSource(seed))
		if rng.Float64() < p {
			return nil, fmt.Errorf("chaos: injected hard failure for seed %d", seed)
		}
		labels := make([]int, len(spec.Points))
		return &jobs.Outcome{Labels: labels, K: 1}, nil
	}
}

// TestRunners is the registry the CLI mounts when
// MULTICLUST_JOBS_TESTRUNNERS=1: the standard fault battery under stable
// names, for integration tests driving a real multiclust -serve process.
func TestRunners() map[string]jobs.Runner {
	return map[string]jobs.Runner{
		"chaos-instant":    Instant(),
		"chaos-panic":      Panicky("injected worker panic"),
		"chaos-degenerate": Degenerate(2),
		"chaos-slow":       Slow(nil),
		"chaos-flaky":      Flaky(0.5),
	}
}
