package chaos_test

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/jobs"
	"multiclust/internal/jobs/chaos"
)

// TestStreamPropertyAppendsRaceCancelAndDrain is the streaming half of
// the fault battery, run under -race in the chaos CI lane: concurrent
// goroutines hammer chunk appends at a mixed fleet of streaming jobs —
// counting controls, pushes that stall until cut, handles that panic
// mid-stream — while cancels land on a subset and a graceful drain ends
// the run. Properties asserted:
//
//   - exactly one terminal state per admitted job (FinishCalls and the
//     OnTerminal hook both count 1);
//   - a drained open stream surfaces its last snapshot with
//     "partial": true;
//   - no acknowledged chunk is lost: for every non-cancelled counting
//     job, the terminal snapshot's rows_seen equals the rows whose
//     appends were acknowledged (cancelled jobs may only undershoot);
//   - a panicking handle fails its job with a contained ErrPanic and
//     the worker pool survives.
func TestStreamPropertyAppendsRaceCancelAndDrain(t *testing.T) {
	log := newTerminalLog()
	e := jobs.New(jobs.Config{
		Workers: 4, QueueSize: 256,
		Streams:    chaos.StreamFaults(),
		OnTerminal: log.hook,
	})

	type tracked struct {
		j     *jobs.Job
		acked atomic.Int64 // rows whose Append returned nil
	}
	var fleet []*tracked
	admit := func(spec jobs.Spec) *tracked {
		t.Helper()
		j, _, err := e.Submit(spec)
		if err != nil {
			t.Fatalf("Submit %+v: %v", spec, err)
		}
		tr := &tracked{j: j}
		tr.acked.Store(int64(len(spec.Points)))
		fleet = append(fleet, tr)
		return tr
	}

	var instant, cancelled []*tracked
	for i := 0; i < 6; i++ {
		instant = append(instant, admit(jobs.Spec{
			Algo: "chaos-stream-instant", Stream: true, Seed: int64(i),
		}))
	}
	var slow []*tracked
	for i := 0; i < 3; i++ {
		// The 30ms per-chunk budget is what cuts the stalled push loose.
		slow = append(slow, admit(jobs.Spec{
			Algo: "chaos-stream-slow", Stream: true, Seed: int64(i), TimeoutMS: 30,
		}))
	}
	var panicky []*tracked
	for i := 0; i < 3; i++ {
		// First chunk at submit; the handle panics on the second.
		panicky = append(panicky, admit(jobs.Spec{
			Algo: "chaos-stream-panic", Stream: true, Seed: int64(i), Points: points(),
		}))
	}

	// Appenders: four goroutines spraying chunks round-robin, so every
	// job sees appends racing its own chunk processing and terminal
	// transition. Rejected appends (conflict after a fault, draining)
	// are simply not acknowledged.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				tr := fleet[(g+i)%len(fleet)]
				if _, err := e.Append(tr.j.ID, points(), false); err == nil {
					tr.acked.Add(int64(len(points())))
				}
			}
		}(g)
	}
	// Cancels racing the append storm on two of the counting jobs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, tr := range instant[:2] {
			if _, err := e.Cancel(tr.j.ID); err != nil {
				t.Errorf("Cancel %s: %v", tr.j.ID, err)
			}
			cancelled = append(cancelled, tr)
		}
	}()
	wg.Wait()

	rep := drainOrDie(t, e, 30*time.Second)
	if rep.Truncated {
		t.Fatalf("drain should settle gracefully, got %+v", rep)
	}

	// Exactly one terminal state per admitted job, by both counters.
	for _, tr := range fleet {
		if !tr.j.State().Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", tr.j.ID, tr.j.State())
		}
		if n := tr.j.FinishCalls(); n != 1 {
			t.Fatalf("job %s finishCalls = %d, want 1", tr.j.ID, n)
		}
		if n := log.count(tr.j.ID); n != 1 {
			t.Fatalf("job %s OnTerminal fired %d times, want 1", tr.j.ID, n)
		}
	}

	isCancelled := func(tr *tracked) bool {
		for _, c := range cancelled {
			if c == tr {
				return true
			}
		}
		return false
	}
	for _, tr := range instant {
		st := tr.j.Status()
		if isCancelled(tr) {
			if st.State != "cancelled" {
				t.Fatalf("cancelled job %s state = %s", tr.j.ID, st.State)
			}
			if st.Result != nil && st.Result.Stats["rows_seen"] > float64(tr.acked.Load()) {
				t.Fatalf("job %s snapshot outran its acks: %+v vs %d", tr.j.ID, st.Result, tr.acked.Load())
			}
			continue
		}
		// Open stream at drain: partial surface with the last snapshot,
		// and every acknowledged chunk accounted for.
		if st.State != "partial" || !st.Partial || st.Result == nil {
			t.Fatalf("drained stream %s status = %+v, want partial with a snapshot", tr.j.ID, st)
		}
		if got, want := st.Result.Stats["rows_seen"], float64(tr.acked.Load()); got != want {
			t.Fatalf("job %s lost acknowledged rows: snapshot %v, acked %v", tr.j.ID, got, want)
		}
	}
	for _, tr := range panicky {
		if tr.j.State() != jobs.StateFailed || !errors.Is(tr.j.Err(), core.ErrPanic) {
			t.Fatalf("panicking stream %s state = %s err = %v, want failed/ErrPanic", tr.j.ID, tr.j.State(), tr.j.Err())
		}
	}
	for _, tr := range slow {
		// A stalled push is cut by its per-chunk deadline before it ever
		// produces a snapshot: interrupted-without-best settles Cancelled
		// (or Partial if a snapshot sneaked in via the drain sweep).
		if s := tr.j.State(); s != jobs.StateCancelled && s != jobs.StatePartial {
			t.Fatalf("slow stream %s state = %s, want cancelled or partial", tr.j.ID, s)
		}
	}
}
