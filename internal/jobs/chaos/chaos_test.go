package chaos_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/jobs"
	"multiclust/internal/jobs/chaos"
)

func points() [][]float64 {
	return [][]float64{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
}

// terminalLog records every OnTerminal callback; the exactly-once property
// is asserted against it in addition to each job's own FinishCalls counter.
type terminalLog struct {
	mu   sync.Mutex
	seen map[string]int
}

func newTerminalLog() *terminalLog {
	return &terminalLog{seen: map[string]int{}}
}

func (l *terminalLog) hook(j *jobs.Job, _ jobs.State) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen[j.ID]++
}

func (l *terminalLog) count(id string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seen[id]
}

func drainOrDie(t *testing.T, e *jobs.Engine, timeout time.Duration) jobs.DrainReport {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return e.Drain(ctx)
}

// TestPropertyNoPanicEscapes floods every worker with panicking runners; the
// process must survive, every job must fail with a contained ErrPanic, and
// the pool must still serve ordinary work afterwards.
func TestPropertyNoPanicEscapes(t *testing.T) {
	e := jobs.New(jobs.Config{Workers: 3, QueueSize: 64, Runners: chaos.TestRunners()})
	defer drainOrDie(t, e, 10*time.Second)

	var panicky []*jobs.Job
	for i := 0; i < 12; i++ {
		j, _, err := e.Submit(jobs.Spec{Algo: "chaos-panic", Points: points(), Seed: int64(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		panicky = append(panicky, j)
	}
	for _, j := range panicky {
		<-j.Done()
		if j.State() != jobs.StateFailed {
			t.Fatalf("panicking job %s state = %s, want failed", j.ID, j.State())
		}
		if !errors.Is(j.Err(), core.ErrPanic) {
			t.Fatalf("job %s err = %v, want contained ErrPanic", j.ID, j.Err())
		}
		if j.FinishCalls() != 1 {
			t.Fatalf("job %s finishCalls = %d", j.ID, j.FinishCalls())
		}
	}
	// The pool survived: a normal job still completes.
	j, _, err := e.Submit(jobs.Spec{Algo: "chaos-instant", Points: points()})
	if err != nil {
		t.Fatalf("Submit after panics: %v", err)
	}
	<-j.Done()
	if j.State() != jobs.StateDone {
		t.Fatalf("post-panic job state = %s, want done", j.State())
	}
}

// TestPropertyExactlyOneTerminalState runs the whole fault battery — panics,
// degenerate retries, hard failures, slow jobs raced with cancels — and
// asserts every admitted job lands in exactly one terminal state exactly
// once, observed both by FinishCalls and the OnTerminal hook.
func TestPropertyExactlyOneTerminalState(t *testing.T) {
	log := newTerminalLog()
	runners := chaos.TestRunners()
	e := jobs.New(jobs.Config{
		Workers: 4, QueueSize: 128, RetryBudget: 3,
		Runners: runners, OnTerminal: log.hook,
	})

	battery := []string{"chaos-instant", "chaos-panic", "chaos-degenerate", "chaos-flaky", "chaos-slow"}
	var admitted []*jobs.Job
	for i := 0; i < 40; i++ {
		algo := battery[i%len(battery)]
		timeout := int64(0)
		if algo == "chaos-slow" {
			timeout = 40 // short deadline: the slow job settles as partial
		}
		j, _, err := e.Submit(jobs.Spec{Algo: algo, Points: points(), Seed: int64(i), TimeoutMS: timeout})
		if err != nil {
			t.Fatalf("Submit %d (%s): %v", i, algo, err)
		}
		admitted = append(admitted, j)
		if algo == "chaos-slow" && i%2 == 0 {
			// Race a user cancel against the deadline on half the slow jobs.
			if _, err := e.Cancel(j.ID); err != nil {
				t.Fatalf("Cancel %s: %v", j.ID, err)
			}
		}
	}

	rep := drainOrDie(t, e, 30*time.Second)
	if rep.Truncated {
		t.Fatalf("drain truncated: %+v", rep)
	}
	for _, j := range admitted {
		if !j.State().Terminal() {
			t.Fatalf("job %s (%s) not terminal after drain: %s", j.ID, j.Spec.Algo, j.State())
		}
		if j.FinishCalls() != 1 {
			t.Fatalf("job %s (%s) finishCalls = %d, want exactly 1", j.ID, j.Spec.Algo, j.FinishCalls())
		}
		if got := log.count(j.ID); got != 1 {
			t.Fatalf("job %s observed %d OnTerminal callbacks, want exactly 1", j.ID, got)
		}
	}
	if total := rep.Done + rep.Partial + rep.Failed + rep.Cancelled; total != len(admitted) {
		t.Fatalf("drain report %+v accounts for %d jobs, %d admitted", rep, total, len(admitted))
	}
}

// TestProperty429IffQueueFull pins the backpressure contract from both
// sides: every submit while the queue has room is admitted, the first
// submit against a full queue fails with ErrQueueFull, and room freed by a
// completing job admits again.
func TestProperty429IffQueueFull(t *testing.T) {
	const workers, queueSize = 2, 3
	started := make(chan string, workers)
	runners := chaos.TestRunners()
	runners["chaos-slow"] = chaos.Slow(started)
	e := jobs.New(jobs.Config{Workers: workers, QueueSize: queueSize, Runners: runners})
	// One blocker stays running on purpose; the deferred drain truncates
	// it to best-so-far rather than serving out its 60s timeout.
	defer drainOrDie(t, e, 300*time.Millisecond)

	// Occupy every worker.
	var blockers []*jobs.Job
	for i := 0; i < workers; i++ {
		j, _, err := e.Submit(jobs.Spec{Algo: "chaos-slow", Points: points(), TimeoutMS: 60000, Seed: int64(i)})
		if err != nil {
			t.Fatalf("Submit blocker %d: %v", i, err)
		}
		blockers = append(blockers, j)
	}
	for i := 0; i < workers; i++ {
		<-started
	}

	// Fill the queue exactly: each of these must be admitted (not yet full).
	for i := 0; i < queueSize; i++ {
		if err := e.Ready(); err != nil {
			t.Fatalf("Ready with %d/%d queued = %v, want nil", i, queueSize, err)
		}
		if _, _, err := e.Submit(jobs.Spec{Algo: "chaos-instant", Points: points(), Seed: int64(100 + i)}); err != nil {
			t.Fatalf("Submit fill %d: %v — rejected below capacity", i, err)
		}
	}
	// Now, and only now, the queue is full.
	if err := e.Ready(); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("Ready at capacity = %v, want ErrQueueFull", err)
	}
	if _, _, err := e.Submit(jobs.Spec{Algo: "chaos-instant", Points: points()}); !errors.Is(err, jobs.ErrQueueFull) {
		t.Fatalf("Submit at capacity = %v, want ErrQueueFull", err)
	}

	// Free a worker; the queue drains and admission resumes.
	if _, err := e.Cancel(blockers[0].ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, err := e.Submit(jobs.Spec{Algo: "chaos-instant", Points: points(), Seed: 999})
		if err == nil {
			break
		}
		if !errors.Is(err, jobs.ErrQueueFull) {
			t.Fatalf("Submit after freeing a worker: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never drained after a worker was freed")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPropertyDrainLosesNoJob checks the graceful-drain guarantee under the
// truncation path: stuck jobs plus a backlog, a deadline far shorter than
// any job, and still every admitted job must be terminal when Drain returns.
func TestPropertyDrainLosesNoJob(t *testing.T) {
	e := jobs.New(jobs.Config{Workers: 2, QueueSize: 32, Runners: chaos.TestRunners()})

	var admitted []*jobs.Job
	for i := 0; i < 10; i++ {
		j, _, err := e.Submit(jobs.Spec{Algo: "chaos-slow", Points: points(), TimeoutMS: 60000, Seed: int64(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		admitted = append(admitted, j)
	}

	rep := drainOrDie(t, e, 150*time.Millisecond)
	if !rep.Truncated {
		t.Fatal("a pool of 60s jobs drained without truncation in 150ms")
	}
	for _, j := range admitted {
		if !j.State().Terminal() {
			t.Fatalf("job %s lost by drain: state %s", j.ID, j.State())
		}
		if j.FinishCalls() != 1 {
			t.Fatalf("job %s finishCalls = %d", j.ID, j.FinishCalls())
		}
	}
	if total := rep.Done + rep.Partial + rep.Failed + rep.Cancelled; total != len(admitted) {
		t.Fatalf("report %+v accounts for %d of %d admitted jobs", rep, total, len(admitted))
	}
	// The slow runner hands back a best-so-far at the cut, so in-flight
	// jobs must surface as partial — the drain preserved their work.
	if rep.Partial == 0 {
		t.Fatalf("report %+v: no job kept its best-so-far through the truncated drain", rep)
	}
}

// TestPropertyDegenerateRetryDeterministic: the Degenerate runner counts
// attempts off the documented reseed schedule, so a budget larger than the
// fault depth always heals at the same attempt, and a smaller one always
// exhausts — no flakes in either direction.
func TestPropertyDegenerateRetryDeterministic(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		heal := jobs.New(jobs.Config{Workers: 1, RetryBudget: 3,
			Runners: map[string]jobs.Runner{"degen": chaos.Degenerate(2)}})
		j, _, err := heal.Submit(jobs.Spec{Algo: "degen", Points: points(), Seed: int64(trial * 10)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		<-j.Done()
		if j.State() != jobs.StateDone {
			t.Fatalf("trial %d: budget 3 vs depth 2: state %s, want done", trial, j.State())
		}
		if st := j.Status(); st.Attempts != 3 {
			t.Fatalf("trial %d: attempts = %d, want 3 (2 degenerate + 1 success)", trial, st.Attempts)
		}
		drainOrDie(t, heal, 5*time.Second)

		exhaust := jobs.New(jobs.Config{Workers: 1, RetryBudget: 2,
			Runners: map[string]jobs.Runner{"degen": chaos.Degenerate(2)}})
		j2, _, err := exhaust.Submit(jobs.Spec{Algo: "degen", Points: points(), Seed: int64(trial * 10)})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		<-j2.Done()
		if j2.State() != jobs.StateFailed || !errors.Is(j2.Err(), core.ErrDegenerate) {
			t.Fatalf("trial %d: budget 2 vs depth 2: state %s err %v, want failed/ErrDegenerate",
				trial, j2.State(), j2.Err())
		}
		drainOrDie(t, exhaust, 5*time.Second)
	}
}

// TestPropertyFlakyVerdictReplayable: the Flaky runner's pass/fail verdict
// is a pure function of the job seed, so the same battery submitted to two
// engines produces identical terminal states job for job.
func TestPropertyFlakyVerdictReplayable(t *testing.T) {
	run := func() map[int64]jobs.State {
		e := jobs.New(jobs.Config{Workers: 2, QueueSize: 64, RetryBudget: 1,
			Runners: map[string]jobs.Runner{"flaky": chaos.Flaky(0.5)}})
		defer drainOrDie(t, e, 10*time.Second)
		out := map[int64]jobs.State{}
		var js []*jobs.Job
		for seed := int64(0); seed < 20; seed++ {
			j, _, err := e.Submit(jobs.Spec{Algo: "flaky", Points: points(), Seed: seed})
			if err != nil {
				t.Fatalf("Submit seed %d: %v", seed, err)
			}
			js = append(js, j)
		}
		for _, j := range js {
			<-j.Done()
			out[j.Spec.Seed] = j.State()
		}
		return out
	}
	first, second := run(), run()
	var failed, done int
	for seed, st := range first {
		if second[seed] != st {
			t.Fatalf("seed %d: verdict %s vs %s across engines — chaos is not replayable", seed, st, second[seed])
		}
		switch st {
		case jobs.StateFailed:
			failed++
		case jobs.StateDone:
			done++
		}
	}
	if failed == 0 || done == 0 {
		t.Fatalf("flaky battery produced failed=%d done=%d; p=0.5 over 20 seeds should mix", failed, done)
	}
}

// TestTestRunnersBattery sanity-checks the named registry the CLI mounts
// under MULTICLUST_JOBS_TESTRUNNERS=1.
func TestTestRunnersBattery(t *testing.T) {
	reg := chaos.TestRunners()
	for _, name := range []string{"chaos-instant", "chaos-panic", "chaos-degenerate", "chaos-slow", "chaos-flaky"} {
		if reg[name] == nil {
			t.Fatalf("TestRunners missing %q", name)
		}
	}
	// The instant runner is the dispatch-overhead probe: label per point.
	out, err := reg["chaos-instant"](context.Background(), jobs.Spec{Points: points()}, 0, nil)
	if err != nil || len(out.Labels) != len(points()) {
		t.Fatalf("chaos-instant: out=%+v err=%v", out, err)
	}
	// The degenerate runner follows the engine's seed schedule.
	spec := jobs.Spec{Points: points(), Seed: 50}
	if _, err := reg["chaos-degenerate"](context.Background(), spec, 50, nil); !errors.Is(err, core.ErrDegenerate) {
		t.Fatalf("attempt 0 err = %v, want ErrDegenerate", err)
	}
	if out, err := reg["chaos-degenerate"](context.Background(), spec, 52, nil); err != nil || out == nil {
		t.Fatalf("attempt 2: out=%v err=%v, want healed", out, err)
	}
}
