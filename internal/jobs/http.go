package jobs

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// API wire shapes beyond Status (which GET returns verbatim).
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Duplicate bool   `json:"duplicate,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// maxBodyBytes bounds one POST body; a dataset bigger than this cannot be
// admitted anyway (MaxPoints), so reading further would only buy memory
// pressure.
const maxBodyBytes = 64 << 20

// Handler serves the job API:
//
//	POST   /v1/jobs        submit a Spec               -> 202 {id,state}
//	                       duplicate idempotency key   -> 200 {id,state,duplicate:true}
//	                       queue full                  -> 429 + Retry-After
//	                       draining                    -> 503
//	                       bad spec/body               -> 400
//	GET    /v1/jobs        list all job statuses       -> 200 [Status...]
//	GET    /v1/jobs/{id}   one status (+result,metrics)-> 200 Status | 404
//	DELETE /v1/jobs/{id}   cancel                      -> 200 {id,state} | 404
//
// Partial results are a success surface: a job cut short by its deadline
// reports state "partial" with "partial": true and the best-so-far result,
// status 200.
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs")
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "not found"})
			return
		}
		rest = strings.Trim(rest, "/")
		switch {
		case rest == "" && r.Method == http.MethodPost:
			e.handleSubmit(w, r)
		case rest == "" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, e.List())
		case rest == "":
			w.Header().Set("Allow", "GET, POST")
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		case strings.Contains(rest, "/"):
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "not found"})
		case r.Method == http.MethodGet:
			e.handleGet(w, rest)
		case r.Method == http.MethodDelete:
			e.handleCancel(w, rest)
		default:
			w.Header().Set("Allow", "GET, DELETE")
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		}
	})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: "decode spec: " + err.Error()})
		return
	}
	// The header wins over the body field, per the usual idempotency-key
	// convention; both feed the same dedup map.
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		spec.IdempotencyKey = key
	}
	j, duplicate, err := e.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		// A saturated queue drains at worker speed; one second is a
		// deliberately conservative static hint (no clock consulted).
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case duplicate:
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, State: j.State().String(), Duplicate: true})
	default:
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: j.State().String()})
	}
}

func (e *Engine) handleGet(w http.ResponseWriter, id string) {
	j, err := e.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (e *Engine) handleCancel(w http.ResponseWriter, id string) {
	state, err := e.Cancel(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, submitResponse{ID: id, State: state.String()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// A failed encode after WriteHeader has no recovery surface; the
	// connection is simply cut short.
	_ = json.NewEncoder(w).Encode(v)
}
