package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"multiclust/internal/obs"
)

// API wire shapes beyond Status (which GET returns verbatim).
type submitResponse struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Duplicate bool   `json:"duplicate,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// appendRequest is the body of PATCH /v1/jobs/{id}: one more chunk of a
// streaming job. final closes the stream (an empty final body is a pure
// close); the job terminalizes once the final chunk is processed.
type appendRequest struct {
	Points [][]float64 `json:"points,omitempty"`
	Final  bool        `json:"final,omitempty"`
}

// appendResponse acknowledges an accepted chunk. ChunksAcked and
// RowsAcked count everything accepted so far, this chunk included.
type appendResponse struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	ChunksAcked int    `json:"chunks_acked"`
	RowsAcked   int64  `json:"rows_acked"`
}

// maxBodyBytes bounds one POST body; a dataset bigger than this cannot be
// admitted anyway (MaxPoints), so reading further would only buy memory
// pressure.
const maxBodyBytes = 64 << 20

// Handler serves the job API:
//
//	POST   /v1/jobs        submit a Spec               -> 202 {id,state}
//	                       duplicate idempotency key   -> 200 {id,state,duplicate:true}
//	                       key reused, different spec  -> 409
//	                       queue full                  -> 429 + Retry-After
//	                       draining                    -> 503
//	                       bad spec/body               -> 400
//	GET    /v1/jobs        list all job statuses       -> 200 [Status...]
//	GET    /v1/jobs/{id}   one status (+result,metrics)-> 200 Status | 404
//	PATCH  /v1/jobs/{id}   append a chunk (stream job) -> 202 {id,state,chunks_acked,rows_acked}
//	                       stream closed/job terminal  -> 409
//	                       queue full                  -> 429 + Retry-After
//	                       draining                    -> 503
//	                       not a stream / bad chunk    -> 400
//	DELETE /v1/jobs/{id}   cancel                      -> 200 {id,state} | 404
//	GET    /v1/jobs/{id}/spans  recorded span tree     -> 200 text | 404
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON-> 200 | 404
//	                            job not terminal yet   -> 409
//
// Partial results are a success surface: a job cut short by its deadline
// reports state "partial" with "partial": true and the best-so-far result,
// status 200. While a streaming job is open, GET serves its latest
// snapshot in "result".
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest, ok := strings.CutPrefix(r.URL.Path, "/v1/jobs")
		if !ok {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "not found"})
			return
		}
		rest = strings.Trim(rest, "/")
		switch {
		case rest == "" && r.Method == http.MethodPost:
			e.handleSubmit(w, r)
		case rest == "" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, e.List())
		case rest == "":
			w.Header().Set("Allow", "GET, POST")
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		case strings.Contains(rest, "/"):
			id, sub, _ := strings.Cut(rest, "/")
			switch {
			case sub == "spans" && r.Method == http.MethodGet:
				e.handleSpans(w, id)
			case sub == "trace" && r.Method == http.MethodGet:
				e.handleTrace(w, id)
			case sub == "spans" || sub == "trace":
				w.Header().Set("Allow", "GET")
				writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
			default:
				writeJSON(w, http.StatusNotFound, errorResponse{Error: "not found"})
			}
		case r.Method == http.MethodGet:
			e.handleGet(w, rest)
		case r.Method == http.MethodPatch:
			e.handleAppend(w, r, rest)
		case r.Method == http.MethodDelete:
			e.handleCancel(w, rest)
		default:
			w.Header().Set("Allow", "GET, PATCH, DELETE")
			writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "method not allowed"})
		}
	})
}

func (e *Engine) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var spec Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: "decode spec: " + err.Error()})
		return
	}
	// The header wins over the body field, per the usual idempotency-key
	// convention; both feed the same dedup map.
	if key := r.Header.Get("Idempotency-Key"); key != "" {
		spec.IdempotencyKey = key
	}
	// The ops Instrument middleware put the request's trace id on the
	// context; the job carries it for its whole async lifetime.
	j, duplicate, err := e.SubmitTraced(spec, obs.TraceIDFrom(r.Context()))
	switch {
	case errors.Is(err, ErrQueueFull):
		// A saturated queue drains at worker speed; one second is a
		// deliberately conservative static hint (no clock consulted).
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrConflict):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	case duplicate:
		// A deduplicated submission reports the original job's trace id —
		// that is the one its telemetry carries.
		w.Header().Set("X-Job-Id", j.ID)
		writeJSON(w, http.StatusOK, submitResponse{ID: j.ID, State: j.State().String(), Duplicate: true, TraceID: j.TraceID})
	default:
		// X-Job-Id lets the access-log middleware correlate this request
		// with the job it admitted.
		w.Header().Set("X-Job-Id", j.ID)
		writeJSON(w, http.StatusAccepted, submitResponse{ID: j.ID, State: j.State().String(), TraceID: j.TraceID})
	}
}

func (e *Engine) handleGet(w http.ResponseWriter, id string) {
	j, err := e.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (e *Engine) handleAppend(w http.ResponseWriter, r *http.Request, id string) {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	var req appendRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeJSON(w, status, errorResponse{Error: "decode chunk: " + err.Error()})
		return
	}
	j, err := e.Append(id, req.Points, req.Final)
	switch {
	case errors.Is(err, ErrNotFound):
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrConflict):
		writeJSON(w, http.StatusConflict, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		st := j.Status()
		writeJSON(w, http.StatusAccepted, appendResponse{
			ID: j.ID, State: st.State, ChunksAcked: st.ChunksAcked, RowsAcked: st.RowsAcked,
		})
	}
}

// handleSpans serves the job's recorded span tree as indented text,
// prefixed with a trace_id line when the job was traced. Unlike /trace it
// is served at any lifecycle stage: it snapshots whatever has been
// aggregated so far, which is useful while a long job is still running.
func (e *Engine) handleSpans(w http.ResponseWriter, id string) {
	j, err := e.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if j.TraceID != "" {
		fmt.Fprintf(w, "trace_id %s\n", j.TraceID)
	}
	_ = j.col.Snapshot().WriteSpanTree(w)
}

// handleTrace serves the job's JSONL trace stream converted to Chrome
// trace-event JSON (loadable in chrome://tracing / Perfetto). It refuses
// with 409 until the job is terminal: spans close before the terminal
// transition, so a terminal job's stream is complete and immutable.
func (e *Engine) handleTrace(w http.ResponseWriter, id string) {
	j, err := e.Get(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	if !j.State().Terminal() {
		writeJSON(w, http.StatusConflict, errorResponse{
			Error: fmt.Sprintf("jobs: job %s is %s; the trace is served once the job is terminal", id, j.State()),
		})
		return
	}
	// Render into a buffer first so a conversion error can still become a
	// clean 500 instead of a half-written body.
	var out bytes.Buffer
	if err := obs.WriteChromeTrace(bytes.NewReader(j.traceLog.Bytes()), &out); err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(out.Bytes())
}

func (e *Engine) handleCancel(w http.ResponseWriter, id string) {
	state, err := e.Cancel(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, submitResponse{ID: id, State: state.String()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	// A failed encode after WriteHeader has no recovery surface; the
	// connection is simply cut short.
	_ = json.NewEncoder(w).Encode(v)
}
