package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"multiclust/internal/core"
	"multiclust/internal/obs"
	"multiclust/internal/robust"
)

// Small deterministic fault runners local to the package tests; the full
// battery lives in the chaos subpackage (which imports jobs and therefore
// cannot be imported from here).

func instantRunner(_ context.Context, spec Spec, _ int64, _ obs.Recorder) (*Outcome, error) {
	return &Outcome{Labels: make([]int, len(spec.Points)), K: 1}, nil
}

// slowRunner signals started (when non-nil) and blocks until the context is
// cut, then returns a best-so-far outcome wrapped in ErrInterrupted like the
// facade algorithms do.
func slowRunner(started chan<- struct{}) Runner {
	return func(ctx context.Context, spec Spec, _ int64, _ obs.Recorder) (*Outcome, error) {
		if started != nil {
			started <- struct{}{}
		}
		<-ctx.Done()
		return &Outcome{Labels: make([]int, len(spec.Points)), K: 1},
			fmt.Errorf("slow: %w", core.ErrInterrupted)
	}
}

func degenerateRunner(n int) Runner {
	return func(_ context.Context, spec Spec, seed int64, _ obs.Recorder) (*Outcome, error) {
		if int(seed-spec.Seed) < n {
			return nil, fmt.Errorf("degenerate: %w", core.ErrDegenerate)
		}
		return &Outcome{Labels: make([]int, len(spec.Points)), K: 1}, nil
	}
}

func panickyRunner(context.Context, Spec, int64, obs.Recorder) (*Outcome, error) {
	panic("injected")
}

func testPoints() [][]float64 {
	return [][]float64{{0, 0}, {0, 1}, {10, 10}, {10, 11}}
}

// newTestEngine builds an engine with the given fault runners merged in and
// registers a bounded drain as test cleanup.
func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := New(cfg)
	t.Cleanup(func() {
		// A short deadline is enough: tests that leave a blocked slow job
		// behind rely on the truncation path to cut it to best-so-far.
		ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
		defer cancel()
		e.Drain(ctx)
	})
	return e
}

func waitTerminal(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("job %s never reached a terminal state (state %s)", j.ID, j.State())
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	j, dup, err := e.Submit(Spec{Algo: "instant", Points: testPoints(), Seed: 1})
	if err != nil || dup {
		t.Fatalf("Submit: dup=%v err=%v", dup, err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s, want done (err %v)", j.State(), j.Err())
	}
	if r := j.Result(); r == nil || len(r.Labels) != 4 {
		t.Fatalf("result = %+v, want 4 labels", r)
	}
	if j.FinishCalls() != 1 {
		t.Fatalf("finishCalls = %d, want 1", j.FinishCalls())
	}
	st := j.Status()
	if st.State != "done" || st.Partial || st.Error != "" {
		t.Fatalf("status = %+v", st)
	}
}

func TestDeadlineYieldsPartialBestSoFar(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Runners: map[string]Runner{"slow": slowRunner(nil)}})
	j, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 30})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StatePartial {
		t.Fatalf("state = %s, want partial (err %v)", j.State(), j.Err())
	}
	if !errors.Is(j.Err(), core.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted preserved", j.Err())
	}
	if j.Result() == nil {
		t.Fatal("partial job lost its best-so-far result")
	}
	st := j.Status()
	if !st.Partial || st.State != "partial" || st.Result == nil {
		t.Fatalf("status = %+v, want partial with result", st)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	e := newTestEngine(t, Config{Workers: 1, Runners: map[string]Runner{"slow": slowRunner(started)}})
	j, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	<-started
	if _, err := e.Cancel(j.ID); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State())
	}
	if j.FinishCalls() != 1 {
		t.Fatalf("finishCalls = %d, want 1", j.FinishCalls())
	}
}

func TestCancelQueuedJobNeverRuns(t *testing.T) {
	started := make(chan struct{}, 1)
	e := newTestEngine(t, Config{Workers: 1, QueueSize: 4, Runners: map[string]Runner{
		"slow":    slowRunner(started),
		"instant": instantRunner,
	}})
	blocker, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000})
	if err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started // the single worker is now occupied
	queued, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	if state, err := e.Cancel(queued.ID); err != nil || state != StateCancelled {
		t.Fatalf("Cancel queued: state=%s err=%v", state, err)
	}
	waitTerminal(t, queued)
	if queued.Result() != nil {
		t.Fatal("queued-cancelled job has a result; it must never have run")
	}
	if _, err := e.Cancel(blocker.ID); err != nil {
		t.Fatalf("Cancel blocker: %v", err)
	}
	waitTerminal(t, blocker)
	// Cancelling an already-terminal job is a no-op, not a second finish.
	if _, err := e.Cancel(queued.ID); err != nil {
		t.Fatalf("re-Cancel: %v", err)
	}
	if queued.FinishCalls() != 1 {
		t.Fatalf("finishCalls = %d after double cancel, want 1", queued.FinishCalls())
	}
}

func TestQueueFullRejects(t *testing.T) {
	started := make(chan struct{}, 1)
	e := newTestEngine(t, Config{Workers: 1, QueueSize: 2, Runners: map[string]Runner{
		"slow":    slowRunner(started),
		"instant": instantRunner,
	}})
	if _, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000}); err != nil {
		t.Fatalf("Submit blocker: %v", err)
	}
	<-started
	for i := 0; i < 2; i++ {
		if _, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()}); err != nil {
			t.Fatalf("Submit fill %d: %v", i, err)
		}
	}
	if _, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if err := e.Ready(); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("Ready during saturation = %v, want ErrQueueFull", err)
	}
}

func TestIdempotencyKeyDeduplicates(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	spec := Spec{Algo: "instant", Points: testPoints(), IdempotencyKey: "abc"}
	j1, dup1, err := e.Submit(spec)
	if err != nil || dup1 {
		t.Fatalf("first Submit: dup=%v err=%v", dup1, err)
	}
	j2, dup2, err := e.Submit(spec)
	if err != nil || !dup2 {
		t.Fatalf("second Submit: dup=%v err=%v", dup2, err)
	}
	if j1.ID != j2.ID {
		t.Fatalf("idempotent submits produced different jobs: %s vs %s", j1.ID, j2.ID)
	}
	waitTerminal(t, j1)
	// The key keeps resolving after the job is terminal.
	j3, dup3, err := e.Submit(spec)
	if err != nil || !dup3 || j3.ID != j1.ID {
		t.Fatalf("post-terminal Submit: id=%s dup=%v err=%v", j3.ID, dup3, err)
	}
}

func TestDegenerateRetryWithinBudget(t *testing.T) {
	var slept []time.Duration
	e := newTestEngine(t, Config{
		Workers:     1,
		RetryBudget: 3,
		Backoff: robust.Backoff{
			Base:  4 * time.Millisecond,
			Sleep: func(d time.Duration) { slept = append(slept, d) },
		},
		Runners: map[string]Runner{"degen": degenerateRunner(2)},
	})
	j, _, err := e.Submit(Spec{Algo: "degen", Points: testPoints(), Seed: 10})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s, want done after retries (err %v)", j.State(), j.Err())
	}
	if st := j.Status(); st.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", st.Attempts)
	}
	want := []time.Duration{4 * time.Millisecond, 8 * time.Millisecond}
	if len(slept) != len(want) || slept[0] != want[0] || slept[1] != want[1] {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
}

func TestDegenerateBudgetExhaustionFails(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, RetryBudget: 2,
		Runners: map[string]Runner{"degen": degenerateRunner(100)}})
	j, _, err := e.Submit(Spec{Algo: "degen", Points: testPoints(), Seed: 5})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateFailed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if !errors.Is(j.Err(), core.ErrDegenerate) {
		t.Fatalf("err = %v, want ErrDegenerate", j.Err())
	}
}

func TestPanicContainedWorkerSurvives(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, Runners: map[string]Runner{
		"boom":    panickyRunner,
		"instant": instantRunner,
	}})
	j, _, err := e.Submit(Spec{Algo: "boom", Points: testPoints()})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateFailed {
		t.Fatalf("state = %s, want failed", j.State())
	}
	if !errors.Is(j.Err(), core.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", j.Err())
	}
	// The single worker must have survived the panic to run this one.
	j2, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()})
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	waitTerminal(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("post-panic job state = %s, want done", j2.State())
	}
}

func TestValidationRejects(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	cases := []Spec{
		{Algo: "no-such-algo", Points: testPoints()},
		{Algo: "kmeans"}, // empty dataset
		{Algo: "kmeans", Points: [][]float64{{1, 2}, {3}}},    // ragged
		{Algo: "kmeans", Points: testPoints(), TimeoutMS: -1}, // negative timeout
		{Algo: "kmeans", Points: testPoints(), K: -2},         // negative k
	}
	for i, spec := range cases {
		if _, _, err := e.Submit(spec); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d: want ErrBadSpec, got %v", i, err)
		}
	}
	if _, err := e.Get("j-999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get unknown: want ErrNotFound, got %v", err)
	}
	if _, err := e.Cancel("j-999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel unknown: want ErrNotFound, got %v", err)
	}
}

func TestMaxPointsBound(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1, MaxPoints: 3})
	if _, _, err := e.Submit(Spec{Algo: "kmeans", Points: testPoints()}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec for oversized dataset, got %v", err)
	}
}

func TestDrainCompletesQueuedWork(t *testing.T) {
	e := New(Config{Workers: 1, QueueSize: 8, Runners: map[string]Runner{"instant": instantRunner}})
	var jobs []*Job
	for i := 0; i < 5; i++ {
		j, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints(), Seed: int64(i)})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	rep := e.Drain(ctx)
	if rep.Truncated {
		t.Fatal("instant jobs truncated the drain")
	}
	if rep.Done != 5 {
		t.Fatalf("drain report %+v, want done=5", rep)
	}
	for _, j := range jobs {
		if j.State() != StateDone || j.FinishCalls() != 1 {
			t.Fatalf("job %s: state=%s finishCalls=%d", j.ID, j.State(), j.FinishCalls())
		}
	}
	if _, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()}); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: want ErrDraining, got %v", err)
	}
	if err := e.Ready(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Ready after drain = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCutsSlowJobsToBestSoFar(t *testing.T) {
	started := make(chan struct{}, 1)
	e := New(Config{Workers: 1, QueueSize: 8, Runners: map[string]Runner{"slow": slowRunner(started)}})
	running, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000})
	if err != nil {
		t.Fatalf("Submit running: %v", err)
	}
	<-started
	queued, _, err := e.Submit(Spec{Algo: "slow", Points: testPoints(), TimeoutMS: 60000})
	if err != nil {
		t.Fatalf("Submit queued: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep := e.Drain(ctx)
	if !rep.Truncated {
		t.Fatal("drain of a stuck job did not report truncation")
	}
	// Both jobs settled: the running one cut mid-flight, the queued one
	// swept as the worker reached it. Both carried a best-so-far outcome,
	// so both land in partial.
	for _, j := range []*Job{running, queued} {
		if !j.State().Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", j.ID, j.State())
		}
		if j.FinishCalls() != 1 {
			t.Fatalf("job %s finishCalls = %d, want 1", j.ID, j.FinishCalls())
		}
	}
	if rep.Done+rep.Partial+rep.Failed+rep.Cancelled != 2 {
		t.Fatalf("drain report %+v does not account for 2 jobs", rep)
	}
	if running.State() != StatePartial {
		t.Fatalf("running job state = %s, want partial", running.State())
	}
}

func TestPerJobCollectorIsolation(t *testing.T) {
	// Two concurrent jobs record into their own collectors; counters must
	// not bleed between them.
	rec := func(_ context.Context, spec Spec, _ int64, r obs.Recorder) (*Outcome, error) {
		obs.Count(r, "test.work", int64(spec.K))
		return &Outcome{Labels: make([]int, len(spec.Points)), K: 1}, nil
	}
	e := newTestEngine(t, Config{Workers: 2, Runners: map[string]Runner{"rec": rec}})
	j1, _, err := e.Submit(Spec{Algo: "rec", Points: testPoints(), K: 3})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	j2, _, err := e.Submit(Spec{Algo: "rec", Points: testPoints(), K: 7})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j1)
	waitTerminal(t, j2)
	if got := j1.Status().Metrics["test.work"]; got != 3 {
		t.Fatalf("job 1 test.work = %d, want 3", got)
	}
	if got := j2.Status().Metrics["test.work"]; got != 7 {
		t.Fatalf("job 2 test.work = %d, want 7", got)
	}
}

func TestListOrdersByAdmission(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 2, Runners: map[string]Runner{"instant": instantRunner}})
	var ids []string
	for i := 0; i < 12; i++ {
		j, _, err := e.Submit(Spec{Algo: "instant", Points: testPoints()})
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
		waitTerminal(t, j)
	}
	got := e.List()
	if len(got) != len(ids) {
		t.Fatalf("List returned %d jobs, want %d", len(got), len(ids))
	}
	for i, st := range got {
		if st.ID != ids[i] {
			t.Fatalf("List[%d] = %s, want %s (admission order)", i, st.ID, ids[i])
		}
	}
}

func TestRealKMeansJobEndToEnd(t *testing.T) {
	e := newTestEngine(t, Config{Workers: 1})
	j, _, err := e.Submit(Spec{Algo: "kmeans", Points: testPoints(), K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, j)
	if j.State() != StateDone {
		t.Fatalf("state = %s (err %v), want done", j.State(), j.Err())
	}
	r := j.Result()
	if r == nil || r.K != 2 || len(r.Labels) != 4 {
		t.Fatalf("result = %+v, want k=2 over 4 points", r)
	}
	if r.Labels[0] != r.Labels[1] || r.Labels[2] != r.Labels[3] || r.Labels[0] == r.Labels[2] {
		t.Fatalf("labels %v do not separate the two blobs", r.Labels)
	}
	if r.Stats["sse"] < 0 || r.Stats["iterations"] < 1 {
		t.Fatalf("stats %v implausible", r.Stats)
	}
}
