package dataset

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/linalg"
)

func TestDatasetBasics(t *testing.T) {
	ds := New([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if ds.N() != 3 || ds.Dim() != 2 {
		t.Fatalf("shape %dx%d", ds.N(), ds.Dim())
	}
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Points: [][]float64{{1}, {1, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("ragged dataset should fail validation")
	}
	empty := &Dataset{}
	if err := empty.Validate(); err == nil {
		t.Error("empty dataset should fail validation")
	}
	if empty.Dim() != 0 {
		t.Error("empty Dim should be 0")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	ds := New([][]float64{{1, 2}, {3, 4}})
	m := ds.Matrix()
	back := FromMatrix(m)
	for i := range ds.Points {
		for j := range ds.Points[i] {
			if back.Points[i][j] != ds.Points[i][j] {
				t.Fatal("matrix round trip mismatch")
			}
		}
	}
	// Matrix is a copy.
	m.Set(0, 0, 99)
	if ds.Points[0][0] == 99 {
		t.Error("Matrix aliases dataset")
	}
}

func TestSubspaceProjection(t *testing.T) {
	ds := New([][]float64{{1, 2, 3}, {4, 5, 6}})
	sub := ds.Subspace([]int{2, 0})
	if sub.Dim() != 2 {
		t.Fatalf("sub dim %d", sub.Dim())
	}
	if sub.Points[0][0] != 3 || sub.Points[0][1] != 1 {
		t.Errorf("sub row = %v", sub.Points[0])
	}
	if sub.Names[0] != "dim2" {
		t.Errorf("sub name = %v", sub.Names[0])
	}
}

func TestStandardize(t *testing.T) {
	ds := New([][]float64{{0, 5}, {2, 5}, {4, 5}})
	std := ds.Standardize()
	// Column 0: mean 2, sample sd 2 -> values -1, 0, 1.
	if math.Abs(std.Points[0][0]+1) > 1e-12 || std.Points[1][0] != 0 {
		t.Errorf("standardized col0 = %v %v %v", std.Points[0][0], std.Points[1][0], std.Points[2][0])
	}
	// Constant column centered to zero.
	if std.Points[0][1] != 0 {
		t.Errorf("constant column should center to 0, got %v", std.Points[0][1])
	}
	// Original untouched.
	if ds.Points[0][0] != 0 {
		t.Error("Standardize mutated the receiver")
	}
}

func TestNormalizeAndBounds(t *testing.T) {
	ds := New([][]float64{{-1, 7}, {1, 7}})
	mins, maxs := ds.Bounds()
	if mins[0] != -1 || maxs[0] != 1 || mins[1] != 7 || maxs[1] != 7 {
		t.Errorf("bounds = %v %v", mins, maxs)
	}
	norm := ds.Normalize()
	if norm.Points[0][0] != 0 || norm.Points[1][0] != 1 {
		t.Errorf("normalized col0 = %v %v", norm.Points[0][0], norm.Points[1][0])
	}
	if norm.Points[0][1] != 0 {
		t.Errorf("constant column should normalize to 0")
	}
}

func TestTransform(t *testing.T) {
	ds := New([][]float64{{1, 0}, {0, 1}})
	m, _ := linalg.FromRows([][]float64{{0, 1}, {1, 0}}) // swap coordinates
	out := ds.Transform(m)
	if out.Points[0][0] != 0 || out.Points[0][1] != 1 {
		t.Errorf("transform = %v", out.Points[0])
	}
}

func TestConcat(t *testing.T) {
	a := New([][]float64{{1}, {2}})
	b := New([][]float64{{3, 4}, {5, 6}})
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 3 || c.Points[1][2] != 6 {
		t.Errorf("concat = %v", c.Points)
	}
	if _, err := Concat(a, New([][]float64{{1}})); err == nil {
		t.Error("row-count mismatch should fail")
	}
	if _, err := Concat(); err == nil {
		t.Error("empty concat should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := New([][]float64{{1.5, -2}, {3, 4.25}})
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, true)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != 2 || back.Dim() != 2 {
		t.Fatalf("round trip shape %dx%d", back.N(), back.Dim())
	}
	for i := range ds.Points {
		for j := range ds.Points[i] {
			if back.Points[i][j] != ds.Points[i][j] {
				t.Fatalf("round trip value mismatch at %d,%d", i, j)
			}
		}
	}
	if back.Names[0] != "dim0" {
		t.Errorf("names = %v", back.Names)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), false); err == nil {
		t.Error("empty csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\n"), true); err == nil {
		t.Error("header-only csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n"), false); err == nil {
		t.Error("non-numeric csv should fail")
	}
	if _, err := ReadCSV(strings.NewReader("a\n1,2\n"), true); err == nil {
		t.Error("header/data width mismatch should fail")
	}
}

func TestReadCSVRejectsNonFinite(t *testing.T) {
	cases := []struct {
		in     string
		posMsg string
	}{
		{"NaN,1\n2,3\n", "row 1 col 1"},
		{"1,2\n3,Inf\n", "row 2 col 2"},
		{"1,2\n-Inf,4\n", "row 2 col 1"},
		{"1,2\n3,nan\n", "row 2 col 2"},
		{"1,+Inf\n", "row 1 col 2"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.in), false)
		if err == nil {
			t.Errorf("ReadCSV(%q) accepted non-finite input", c.in)
			continue
		}
		if !errors.Is(err, core.ErrInvalidInput) {
			t.Errorf("ReadCSV(%q) error %v, want wrap of core.ErrInvalidInput", c.in, err)
		}
		if !strings.Contains(err.Error(), c.posMsg) {
			t.Errorf("ReadCSV(%q) error %q missing position %q", c.in, err, c.posMsg)
		}
	}
}

func TestReadCSVRejectsRaggedRows(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("1,2\n3\n4,5\n"), false)
	if err == nil {
		t.Fatal("ragged csv accepted")
	}
	if !errors.Is(err, core.ErrShape) {
		t.Errorf("error %v, want wrap of core.ErrShape", err)
	}
	if !strings.Contains(err.Error(), "row 2 has 1 fields, row 1 has 2") {
		t.Errorf("error %q missing positional detail", err)
	}

	// With a header, data-row numbering still starts at 1.
	_, err = ReadCSV(strings.NewReader("a,b\n1,2\n3,4,5\n"), true)
	if err == nil {
		t.Fatal("ragged csv with header accepted")
	}
	if !strings.Contains(err.Error(), "row 2 has 3 fields, row 1 has 2") {
		t.Errorf("error %q missing positional detail", err)
	}
}
