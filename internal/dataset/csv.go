package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"multiclust/internal/core"
)

// ReadCSV parses numeric CSV into a dataset. When hasHeader is true, the
// first record supplies column names. Ragged rows are rejected with a
// positional error wrapping core.ErrShape, and non-finite values (NaN,
// ±Inf) with one wrapping core.ErrInvalidInput, so malformed files fail at
// ingestion rather than deep inside an algorithm.
func ReadCSV(r io.Reader, hasHeader bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	// Accept variable field counts here so ragged rows reach our own check
	// below, which reports the row position instead of csv's generic error.
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv is empty")
	}
	var names []string
	if hasHeader {
		names = records[0]
		records = records[1:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has a header but no data rows")
	}
	width := len(records[0])
	pts := make([][]float64, len(records))
	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("dataset: row %d has %d fields, row 1 has %d: %w",
				i+1, len(rec), width, core.ErrShape)
		}
		row := make([]float64, len(rec))
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", i+1, j+1, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("dataset: non-finite value %q at row %d col %d: %w",
					field, i+1, j+1, core.ErrInvalidInput)
			}
			row[j] = v
		}
		pts[i] = row
	}
	ds := New(pts)
	if names != nil {
		if len(names) != ds.Dim() {
			return nil, fmt.Errorf("dataset: header has %d names, data has %d columns", len(names), ds.Dim())
		}
		// Blank or whitespace-only names would not survive a write/read
		// round trip (the CSV layer trims them away); substitute generated
		// names.
		for i, name := range names {
			if strings.TrimSpace(name) == "" {
				names[i] = fmt.Sprintf("dim%d", i)
			}
		}
		ds.Names = names
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Names); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	rec := make([]string, d.Dim())
	for _, p := range d.Points {
		for j, v := range p {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
