package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV parses numeric CSV into a dataset. When hasHeader is true, the
// first record supplies column names.
func ReadCSV(r io.Reader, hasHeader bool) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv is empty")
	}
	var names []string
	if hasHeader {
		names = records[0]
		records = records[1:]
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataset: csv has a header but no data rows")
	}
	pts := make([][]float64, len(records))
	for i, rec := range records {
		row := make([]float64, len(rec))
		for j, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: row %d col %d: %w", i+1, j+1, err)
			}
			row[j] = v
		}
		pts[i] = row
	}
	ds := New(pts)
	if names != nil {
		if len(names) != ds.Dim() {
			return nil, fmt.Errorf("dataset: header has %d names, data has %d columns", len(names), ds.Dim())
		}
		// Blank or whitespace-only names would not survive a write/read
		// round trip (the CSV layer trims them away); substitute generated
		// names.
		for i, name := range names {
			if strings.TrimSpace(name) == "" {
				names[i] = fmt.Sprintf("dim%d", i)
			}
		}
		ds.Names = names
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// WriteCSV writes the dataset as CSV with a header row.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Names); err != nil {
		return fmt.Errorf("dataset: writing header: %w", err)
	}
	rec := make([]string, d.Dim())
	for _, p := range d.Points {
		for j, v := range p {
			rec[j] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: writing row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
