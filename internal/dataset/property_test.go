package dataset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Normalize maps every coordinate into [0,1].
func TestQuickNormalizeRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		d := 1 + r.Intn(5)
		pts := make([][]float64, n)
		for i := range pts {
			row := make([]float64, d)
			for j := range row {
				row[j] = r.NormFloat64() * 100
			}
			pts[i] = row
		}
		norm := New(pts).Normalize()
		for _, p := range norm.Points {
			for _, v := range p {
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Standardize leaves column means at ~0 and sample variance at
// ~1 for non-constant columns.
func TestQuickStandardizeMoments(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 3 + r.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{r.NormFloat64()*5 + 3}
		}
		std := New(pts).Standardize()
		var mean float64
		for _, p := range std.Points {
			mean += p[0]
		}
		mean /= float64(n)
		if mean > 1e-9 || mean < -1e-9 {
			return false
		}
		var variance float64
		for _, p := range std.Points {
			variance += (p[0] - mean) * (p[0] - mean)
		}
		variance /= float64(n - 1)
		// Constant columns (possible for tiny random draws) stay at 0.
		return variance < 1e-9 || (variance > 1-1e-6 && variance < 1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CombineLabels produces a labeling at least as fine as both
// inputs — co-membership in the product implies co-membership in each.
func TestQuickCombineLabelsRefines(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		a := make([]int, len(raw))
		b := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v % 3)
			b[i] = int(v / 3 % 3)
		}
		comb := CombineLabels(a, b)
		for i := range comb {
			for j := i + 1; j < len(comb); j++ {
				if comb[i] >= 0 && comb[i] == comb[j] {
					if a[i] != a[j] || b[i] != b[j] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: GaussianBlobs assigns labels round-robin, so cluster sizes
// differ by at most one.
func TestQuickBlobBalance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		n := k + r.Intn(50)
		centers := make([][]float64, k)
		for c := range centers {
			centers[c] = []float64{float64(c * 10)}
		}
		_, labels := GaussianBlobs(seed, n, centers, 0.1)
		counts := make([]int, k)
		for _, l := range labels {
			counts[l]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
