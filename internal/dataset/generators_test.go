package dataset

import (
	"math"
	"testing"

	"multiclust/internal/core"
	"multiclust/internal/dist"
)

func TestGaussianBlobsDeterministic(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}}
	a, la := GaussianBlobs(7, 50, centers, 0.5)
	b, lb := GaussianBlobs(7, 50, centers, 0.5)
	for i := range a.Points {
		if la[i] != lb[i] || a.Points[i][0] != b.Points[i][0] {
			t.Fatal("same seed must reproduce the same data")
		}
	}
	// Points near their center.
	for i, p := range a.Points {
		if dist.Euclidean(p, centers[la[i]]) > 4 {
			t.Fatalf("point %d too far from its center", i)
		}
	}
}

func TestFourBlobToyStructure(t *testing.T) {
	ds, hor, ver := FourBlobToy(1, 25)
	if ds.N() != 100 || len(hor) != 100 || len(ver) != 100 {
		t.Fatalf("sizes: %d %d %d", ds.N(), len(hor), len(ver))
	}
	// Horizontal label must match x side, vertical the y side.
	for i, p := range ds.Points {
		wantH := 0
		if p[0] > 0.5 {
			wantH = 1
		}
		wantV := 0
		if p[1] > 0.5 {
			wantV = 1
		}
		if hor[i] != wantH || ver[i] != wantV {
			t.Fatalf("labels inconsistent at %d: p=%v hor=%d ver=%d", i, p, hor[i], ver[i])
		}
	}
	// The two labelings are (nearly) independent: product has 4 groups.
	combined := CombineLabels(hor, ver)
	c := core.NewClustering(combined)
	if c.K() != 4 {
		t.Errorf("combined labeling has %d groups, want 4", c.K())
	}
}

func TestMultiViewGaussians(t *testing.T) {
	specs := []ViewSpec{
		{Dims: 3, K: 2, Sep: 6, Sigma: 0.4},
		{Dims: 2, K: 3, Sep: 6, Sigma: 0.4},
	}
	ds, labelings, viewDims := MultiViewGaussians(11, 200, specs)
	if ds.N() != 200 || ds.Dim() != 5 {
		t.Fatalf("shape %dx%d", ds.N(), ds.Dim())
	}
	if len(labelings) != 2 || len(viewDims) != 2 {
		t.Fatal("wrong number of views")
	}
	if len(viewDims[0]) != 3 || viewDims[1][0] != 3 {
		t.Errorf("viewDims = %v", viewDims)
	}
	// Each view's labels have the requested number of clusters.
	if core.NewClustering(labelings[0]).K() != 2 || core.NewClustering(labelings[1]).K() != 3 {
		t.Error("wrong cluster counts per view")
	}
	// Within a view, same-label points are closer (in that view's dims)
	// than different-label points on average.
	for v := range specs {
		sub := ds.Subspace(viewDims[v])
		var same, diff float64
		var ns, nd int
		for i := 0; i < 100; i++ {
			for j := i + 1; j < 100; j++ {
				d := dist.Euclidean(sub.Points[i], sub.Points[j])
				if labelings[v][i] == labelings[v][j] {
					same += d
					ns++
				} else {
					diff += d
					nd++
				}
			}
		}
		if ns == 0 || nd == 0 {
			t.Fatalf("degenerate labeling in view %d", v)
		}
		if same/float64(ns) >= diff/float64(nd) {
			t.Errorf("view %d: same-cluster distance not smaller", v)
		}
	}
}

func TestSubspaceData(t *testing.T) {
	specs := []SubspaceSpec{
		{Dims: []int{0, 1}, Size: 40, Width: 0.05},
		{Dims: []int{3, 4}, Size: 30, Width: 0.05},
	}
	ds, truth, err := SubspaceData(3, 100, 6, specs)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N() != 100 || ds.Dim() != 6 {
		t.Fatalf("shape %dx%d", ds.N(), ds.Dim())
	}
	if len(truth) != 2 || truth[0].Size() != 40 || truth[1].Size() != 30 {
		t.Fatalf("truth = %v", truth)
	}
	// Cluster members are tightly packed in the relevant dims.
	for _, sc := range truth {
		for _, d := range sc.Dims {
			lo, hi := 1.0, 0.0
			for _, o := range sc.Objects {
				v := ds.Points[o][d]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if hi-lo > 0.06 {
				t.Errorf("cluster spread in dim %d = %v, want <= width", d, hi-lo)
			}
		}
	}
	// Invalid specs rejected.
	if _, _, err := SubspaceData(1, 10, 3, []SubspaceSpec{{Dims: []int{5}, Size: 5, Width: 0.1}}); err == nil {
		t.Error("out-of-range dim should fail")
	}
	if _, _, err := SubspaceData(1, 10, 3, []SubspaceSpec{{Dims: []int{0}, Size: 50, Width: 0.1}}); err == nil {
		t.Error("oversized cluster should fail")
	}
}

func TestSubspaceDataExplicitObjects(t *testing.T) {
	objs := []int{1, 3, 5}
	_, truth, err := SubspaceData(9, 10, 4, []SubspaceSpec{{Dims: []int{0}, Size: 3, Width: 0.1, Objects: objs}})
	if err != nil {
		t.Fatal(err)
	}
	if truth[0].Objects[0] != 1 || truth[0].Objects[2] != 5 {
		t.Errorf("explicit objects not used: %v", truth[0].Objects)
	}
}

func TestTwoSourceViews(t *testing.T) {
	a, b, labels := TwoSourceViews(5, 300, 3, 2, 2, 0.3, 0)
	if a.N() != 300 || b.N() != 300 || len(labels) != 300 {
		t.Fatal("sizes wrong")
	}
	// Both views separate the latent classes.
	for _, view := range []*Dataset{a, b} {
		var same, diff float64
		var ns, nd int
		for i := 0; i < 150; i++ {
			for j := i + 1; j < 150; j++ {
				d := dist.Euclidean(view.Points[i], view.Points[j])
				if labels[i] == labels[j] {
					same, ns = same+d, ns+1
				} else {
					diff, nd = diff+d, nd+1
				}
			}
		}
		if same/float64(ns) >= diff/float64(nd) {
			t.Error("view does not separate latent classes")
		}
	}
	// Unreliable view: junk rows exist out of cluster range.
	_, bU, _ := TwoSourceViews(5, 300, 3, 2, 2, 0.3, 0.5)
	outliers := 0
	for _, p := range bU.Points {
		if math.Abs(p[0]) > 3.5 && p[0] < 0 { // junk is uniform over [-4,4]; centers are >= 0
			outliers++
		}
	}
	if outliers == 0 {
		t.Error("unreliable view should contain junk rows")
	}
}

func TestUniformHypercubeAndContrast(t *testing.T) {
	low := UniformHypercube(2, 200, 2)
	high := UniformHypercube(2, 200, 200)
	cLow := DistanceContrast(low, 0)
	cHigh := DistanceContrast(high, 0)
	if cLow <= cHigh {
		t.Errorf("contrast should shrink with dimensionality: low=%v high=%v", cLow, cHigh)
	}
	if cHigh > 1 {
		t.Errorf("high-dim contrast should be small, got %v", cHigh)
	}
	// Degenerate case: duplicated points give contrast 0.
	dup := New([][]float64{{1, 1}, {1, 1}, {1, 1}})
	if DistanceContrast(dup, 0) != 0 {
		t.Error("contrast of duplicates should be 0")
	}
}

func TestRingAndBlob(t *testing.T) {
	ds, labels := RingAndBlob(4, 100, 50)
	if ds.N() != 150 {
		t.Fatal("size wrong")
	}
	for i, p := range ds.Points {
		r := math.Hypot(p[0], p[1])
		if labels[i] == 0 && (r < 0.7 || r > 1.3) {
			t.Fatalf("ring point %d at radius %v", i, r)
		}
		if labels[i] == 1 && r > 0.6 {
			t.Fatalf("blob point %d at radius %v", i, r)
		}
	}
}

func TestCombineLabelsNoise(t *testing.T) {
	got := CombineLabels([]int{0, 0, -1, 1}, []int{0, 1, 0, 1})
	if got[2] != core.Noise {
		t.Error("noise should propagate")
	}
	if got[0] == got[1] {
		t.Error("different second labels must split")
	}
}
