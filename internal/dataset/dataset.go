// Package dataset provides the data container, CSV I/O, and the
// deterministic synthetic generators standing in for the real datasets the
// tutorial motivates with (gene expression, customer profiles, sensor
// networks, text). Every generator embeds a known ground truth — often
// several ground truths at once, one per hidden view — so the experiment
// harness can score what the slides only illustrate.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"multiclust/internal/linalg"
)

// Dataset is a table of n points in d dimensions with optional column names.
type Dataset struct {
	Points [][]float64
	Names  []string
}

// New wraps points (no copy) with generated column names.
func New(points [][]float64) *Dataset {
	d := &Dataset{Points: points}
	if len(points) > 0 {
		d.Names = make([]string, len(points[0]))
		for i := range d.Names {
			d.Names[i] = fmt.Sprintf("dim%d", i)
		}
	}
	return d
}

// N returns the number of points.
func (d *Dataset) N() int { return len(d.Points) }

// Dim returns the dimensionality (0 for an empty dataset).
func (d *Dataset) Dim() int {
	if len(d.Points) == 0 {
		return 0
	}
	return len(d.Points[0])
}

// Validate checks that all rows have equal length and returns an error
// otherwise.
func (d *Dataset) Validate() error {
	if len(d.Points) == 0 {
		return errors.New("dataset: empty")
	}
	w := len(d.Points[0])
	for i, p := range d.Points {
		if len(p) != w {
			return fmt.Errorf("dataset: row %d has %d dims, row 0 has %d", i, len(p), w)
		}
	}
	return nil
}

// Matrix returns the data as an n×d matrix (copies).
func (d *Dataset) Matrix() *linalg.Matrix {
	m := linalg.NewMatrix(d.N(), d.Dim())
	for i, p := range d.Points {
		copy(m.Row(i), p)
	}
	return m
}

// FromMatrix builds a dataset from an n×d matrix (copies).
func FromMatrix(m *linalg.Matrix) *Dataset {
	pts := make([][]float64, m.Rows)
	for i := range pts {
		pts[i] = append([]float64(nil), m.Row(i)...)
	}
	return New(pts)
}

// Subspace returns a copy restricted to the given dimensions.
func (d *Dataset) Subspace(dims []int) *Dataset {
	pts := make([][]float64, d.N())
	for i, p := range d.Points {
		row := make([]float64, len(dims))
		for j, dim := range dims {
			row[j] = p[dim]
		}
		pts[i] = row
	}
	out := New(pts)
	for j, dim := range dims {
		if dim < len(d.Names) {
			out.Names[j] = d.Names[dim]
		}
	}
	return out
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	pts := make([][]float64, len(d.Points))
	for i, p := range d.Points {
		pts[i] = append([]float64(nil), p...)
	}
	out := New(pts)
	copy(out.Names, d.Names)
	return out
}

// Transform returns a copy with every point mapped through the linear map m
// (d_out×d_in).
func (d *Dataset) Transform(m *linalg.Matrix) *Dataset {
	pts := make([][]float64, d.N())
	for i, p := range d.Points {
		pts[i] = m.MulVec(p)
	}
	return New(pts)
}

// Standardize returns a copy with each column shifted to zero mean and
// scaled to unit variance (columns with zero variance are left centered).
func (d *Dataset) Standardize() *Dataset {
	out := d.Clone()
	n, dim := d.N(), d.Dim()
	if n == 0 {
		return out
	}
	for j := 0; j < dim; j++ {
		var mean float64
		for i := 0; i < n; i++ {
			mean += d.Points[i][j]
		}
		mean /= float64(n)
		var variance float64
		for i := 0; i < n; i++ {
			diff := d.Points[i][j] - mean
			variance += diff * diff
		}
		if n > 1 {
			variance /= float64(n - 1)
		}
		sd := math.Sqrt(variance)
		for i := 0; i < n; i++ {
			out.Points[i][j] -= mean
			if sd > 0 {
				out.Points[i][j] /= sd
			}
		}
	}
	return out
}

// Bounds returns per-dimension [min, max] of the data.
func (d *Dataset) Bounds() (mins, maxs []float64) {
	dim := d.Dim()
	mins = make([]float64, dim)
	maxs = make([]float64, dim)
	for j := 0; j < dim; j++ {
		mins[j] = math.Inf(1)
		maxs[j] = math.Inf(-1)
	}
	for _, p := range d.Points {
		for j, v := range p {
			if v < mins[j] {
				mins[j] = v
			}
			if v > maxs[j] {
				maxs[j] = v
			}
		}
	}
	return mins, maxs
}

// Normalize returns a copy rescaled so every dimension spans [0,1]
// (constant dimensions map to 0). Grid-based subspace clustering assumes
// this normalization.
func (d *Dataset) Normalize() *Dataset {
	out := d.Clone()
	mins, maxs := d.Bounds()
	for _, p := range out.Points {
		for j := range p {
			span := maxs[j] - mins[j]
			if span > 0 {
				p[j] = (p[j] - mins[j]) / span
			} else {
				p[j] = 0
			}
		}
	}
	return out
}

// Concat horizontally concatenates datasets with equal point counts — the
// "merging multiple sources into one universal view" operation of slide 11.
func Concat(parts ...*Dataset) (*Dataset, error) {
	if len(parts) == 0 {
		return nil, errors.New("dataset: Concat of nothing")
	}
	n := parts[0].N()
	var width int
	for _, p := range parts {
		if p.N() != n {
			return nil, fmt.Errorf("dataset: Concat row mismatch %d vs %d", p.N(), n)
		}
		width += p.Dim()
	}
	pts := make([][]float64, n)
	for i := range pts {
		row := make([]float64, 0, width)
		for _, p := range parts {
			row = append(row, p.Points[i]...)
		}
		pts[i] = row
	}
	out := New(pts)
	idx := 0
	for pi, p := range parts {
		for j := 0; j < p.Dim(); j++ {
			name := fmt.Sprintf("v%d_%s", pi, p.Names[j])
			out.Names[idx] = name
			idx++
		}
	}
	return out, nil
}
